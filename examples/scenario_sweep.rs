//! Monte-Carlo scenario sweep through the [`Experiment`] facade: one
//! declarative spec describes the noisy inverter chain, 256 seeded
//! adversary draws, the worker fan-out and the output selection — the
//! event-driven counterpart of the paper's Section V noise experiments.
//!
//! Run with `cargo run --release --example scenario_sweep`.

use faithful::{
    ChannelSpec, DigitalSpec, Experiment, NoiseSpec, ScenarioSpec, SignalSpec, TopologySpec,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let stages = 8;
    let pulse_width = 6.0;

    // η-involution channels between stages; every scenario reseeds the
    // noise streams, so the seed parameter here is a placeholder.
    let channel = ChannelSpec::eta_exp(1.0, 0.5, 0.5, 0.02, 0.02, NoiseSpec::Uniform { seed: 0 });

    let mut spec = DigitalSpec::new(TopologySpec::InverterChain { stages, channel }, 100.0);
    for seed in 0..256u64 {
        spec = spec.with_scenario(
            ScenarioSpec::new(format!("draw{seed}"))
                .with_seed(seed)
                .with_input("a", SignalSpec::pulse(1.0, pulse_width)),
        );
    }

    let experiment = Experiment::digital(spec);
    let start = std::time::Instant::now();
    let result = experiment.run()?;
    let elapsed = start.elapsed();
    let sweep = result.digital().expect("digital workload");

    let stats = sweep.stats.as_ref().expect("stats selected by default");
    println!(
        "{} scenarios over a {stages}-stage noisy inverter chain in {elapsed:?}",
        sweep.outcomes.len()
    );
    println!(
        "  events: {} delivered / {} scheduled, failures: {}",
        stats.processed_events, stats.scheduled_events, stats.failures
    );

    // ensemble spread of the output pulse width around the input width
    let mut widths: Vec<f64> = sweep
        .outcomes
        .iter()
        .filter_map(|o| {
            let tr = o.signal("y")?.transitions();
            (tr.len() == 2).then(|| tr[1].time - tr[0].time)
        })
        .collect();
    widths.sort_by(f64::total_cmp);
    let (min, max) = (widths.first().unwrap(), widths.last().unwrap());
    let median = widths[widths.len() / 2];
    println!("  output pulse width: min {min:.4}  median {median:.4}  max {max:.4}");
    println!("  (input width {pulse_width}; η ∈ [−0.02, 0.02] per stage)");

    // seeded sweeps are reproducible: same spec ⇒ bitwise-equal stats
    let again = experiment.run()?;
    assert_eq!(
        sweep.stats,
        again.digital().expect("digital workload").stats
    );
    println!("  re-running the same spec is bitwise identical ✓");
    Ok(())
}
