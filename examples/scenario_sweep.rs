//! Monte-Carlo scenario sweep: fan hundreds of η-noise adversary draws
//! over a small inverter chain with a `ScenarioRunner`, and watch how
//! the noise ensemble spreads the output pulse width — the event-driven
//! counterpart of the paper's Section V noise experiments.
//!
//! Run with `cargo run --release --example scenario_sweep`.

use faithful::circuit::{CircuitBuilder, GateKind, Scenario, ScenarioRunner};
use faithful::core::channel::EtaInvolutionChannel;
use faithful::core::delay::ExpChannel;
use faithful::core::noise::{EtaBounds, UniformNoise};
use faithful::{Bit, Signal};

fn build_chain(stages: usize) -> Result<faithful::circuit::Circuit, Box<dyn std::error::Error>> {
    let delay = ExpChannel::new(1.0, 0.5, 0.5)?;
    let bounds = EtaBounds::new(0.02, 0.02)?;
    assert!(bounds.satisfies_constraint_c(&delay), "need constraint (C)");
    let mut b = CircuitBuilder::new();
    let a = b.input("a");
    let y = b.output("y");
    let mut prev = a;
    for i in 0..stages {
        let init = if i % 2 == 0 { Bit::One } else { Bit::Zero };
        let g = b.gate(&format!("inv{i}"), GateKind::Not, init);
        if i == 0 {
            b.connect_direct(prev, g, 0)?;
        } else {
            b.connect(
                prev,
                g,
                0,
                // the seed here is a placeholder: every scenario reseeds
                EtaInvolutionChannel::new(delay.clone(), bounds, UniformNoise::new(0)),
            )?;
        }
        prev = g;
    }
    b.connect(
        prev,
        y,
        0,
        EtaInvolutionChannel::new(delay.clone(), bounds, UniformNoise::new(0)),
    )?;
    Ok(b.build()?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let stages = 8;
    let pulse_width = 6.0;
    let scenarios: Vec<Scenario> = (0..256u64)
        .map(|seed| {
            Scenario::new(format!("draw{seed}"))
                .with_input("a", Signal::pulse(1.0, pulse_width).unwrap())
                .with_seed(seed)
        })
        .collect();

    let runner = ScenarioRunner::new(build_chain(stages)?, 100.0);
    let start = std::time::Instant::now();
    let sweep = runner.run(&scenarios);
    let elapsed = start.elapsed();

    let stats = sweep.stats();
    println!(
        "{} scenarios over a {stages}-stage noisy inverter chain in {elapsed:?}",
        sweep.len()
    );
    println!(
        "  events: {} delivered / {} scheduled, failures: {}",
        stats.processed_events, stats.scheduled_events, stats.failures
    );

    // ensemble spread of the output pulse width around the input width
    let mut widths: Vec<f64> = sweep
        .outcomes()
        .iter()
        .filter_map(|o| o.result().as_ref().ok())
        .filter_map(|run| {
            let tr = run.signal("y").ok()?.transitions();
            (tr.len() == 2).then(|| tr[1].time - tr[0].time)
        })
        .collect();
    widths.sort_by(f64::total_cmp);
    let (min, max) = (widths.first().unwrap(), widths.last().unwrap());
    let median = widths[widths.len() / 2];
    println!("  output pulse width: min {min:.4}  median {median:.4}  max {max:.4}");
    println!("  (input width {pulse_width}; η ∈ [−0.02, 0.02] per stage)");

    // seeded sweeps are reproducible: same seeds ⇒ bitwise-equal stats
    let again = runner.run(&scenarios);
    assert_eq!(sweep.stats(), again.stats());
    println!("  re-sweep with identical seeds is bitwise identical ✓");
    Ok(())
}
