//! The SPF circuit of Fig. 5: sweep the input pulse width across the
//! three regimes of Theorem 9 and show an adversarially sustained
//! metastable oscillation — every run dispatched as a declarative
//! [`Experiment`] over the `spf` workload.
//!
//! Run with `cargo run --example spf_circuit`.

use faithful::core::delay::ExpChannel;
use faithful::core::noise::EtaBounds;
use faithful::spf::{LoopOutcome, SpfRun, WorstCaseRecurrence};
use faithful::{Experiment, NoiseSpec, SignalSpec, SpfSpec, SpfTask};

const TAU: f64 = 1.0;
const T_P: f64 = 0.5;
const V_TH: f64 = 0.5;
const ETA: f64 = 0.02;

/// Runs the Fig. 5 circuit on a `d0`-wide input pulse via the facade.
fn simulate(noise: NoiseSpec, d0: f64, horizon: f64) -> Result<SpfRun, faithful::Error> {
    let spec = SpfSpec::exp(TAU, T_P, V_TH, ETA, ETA).with_task(SpfTask::Simulate {
        noise,
        input: SignalSpec::pulse(0.0, d0),
        horizon,
    });
    Ok(Experiment::spf(spec)
        .run()?
        .spf()
        .expect("spf workload")
        .run
        .clone()
        .expect("simulation requested"))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let theory_run = Experiment::spf(SpfSpec::exp(TAU, T_P, V_TH, ETA, ETA)).run()?;
    let th = theory_run.spf().expect("spf workload").theory;

    println!("Theory (Lemmas 1–8):");
    println!("  δ_min        = {:.4}", th.delta_min);
    println!("  τ = P        = {:.4}   (fixed point of eq. (6))", th.tau);
    println!(
        "  ∆            = {:.4}   (worst-case up-time bound)",
        th.delta_bar
    );
    println!("  γ            = {:.4}   (worst-case duty cycle)", th.gamma);
    println!("  filter bound = {:.4}   (Lemma 4)", th.filter_bound);
    println!(
        "  ∆̃₀           = {:.4}   (Lemma 8 threshold)",
        th.delta0_tilde
    );
    println!("  lock bound   = {:.4}   (Lemma 3)", th.lock_bound);
    println!("  growth a     = {:.4}   (Lemma 7)", th.growth);
    println!();

    let horizon = 300.0;
    println!("∆₀ sweep (worst-case adversary), Theorem 9 regimes:");
    println!(
        "{:>10} | {:>12} | {:>7} | output",
        "∆₀", "loop outcome", "pulses"
    );
    for frac in [0.5, 0.9, 0.99, 1.0, 1.001, 1.01, 1.2, 2.0] {
        let d0 = th.delta0_tilde * frac;
        let run = simulate(NoiseSpec::WorstCase, d0, horizon)?;
        let outcome = LoopOutcome::classify(&run.or_signal, horizon, 10.0);
        let (kind, pulses) = match outcome {
            LoopOutcome::Filtered { pulses } => ("filtered", pulses),
            LoopOutcome::Latched { pulses, .. } => ("latched", pulses),
            LoopOutcome::Oscillating { pulses } => ("oscillating", pulses),
        };
        let out = if run.output.is_zero() {
            "0".to_owned()
        } else {
            format!("rises at t = {:.2}", run.output.transitions()[0].time)
        };
        println!("{d0:>10.5} | {kind:>12} | {pulses:>7} | {out}");
    }

    println!("\nWorst-case recurrence (Eq. 2) vs simulation near ∆̃₀:");
    let delay = ExpChannel::new(TAU, T_P, V_TH)?;
    let bounds = EtaBounds::new(ETA, ETA)?;
    let rec = WorstCaseRecurrence::new(delay, bounds);
    let d0 = th.delta0_tilde + 0.01;
    let predicted = rec.trajectory(d0, 8);
    let run = simulate(NoiseSpec::WorstCase, d0, horizon)?;
    let simulated = faithful::PulseStats::of(&run.or_signal).up_times();
    println!(
        "{:>4} | {:>12} | {:>12}",
        "n", "predicted ∆n", "simulated ∆n"
    );
    for (i, p) in predicted.iter().enumerate() {
        let sim = simulated
            .get(i + 1)
            .map_or("—".to_owned(), |w| format!("{w:.6}"));
        println!("{:>4} | {:>12.6} | {:>12}", i + 1, p, sim);
    }

    println!("\nRandom adversaries resolve metastability in either direction:");
    for seed in 0..6 {
        let run = simulate(NoiseSpec::Uniform { seed }, th.delta0_tilde, horizon)?;
        let outcome = LoopOutcome::classify(&run.or_signal, horizon, 10.0);
        println!("  seed {seed}: {outcome:?}");
    }
    Ok(())
}
