//! Section V, question (a): can the admissible η-band absorb the delay
//! fluctuations caused by supply-voltage variation?
//!
//! Characterizes the nominal chain, computes the faithfulness-limited
//! η-band (η⁻ from constraint (C) given a chosen η⁺), measures the
//! deviation D(T) under a ±1 % V_DD sine with random phase, and reports
//! which samples the η-involution model can cover.
//!
//! Run with `cargo run --release --example adversary_coverage`.

use faithful::analog::chain::InverterChain;
use faithful::analog::characterize::{characterize, measure_deviations, to_empirical, SweepConfig};
use faithful::analog::supply::VddSource;
use faithful::core::delay::fit::fit_exp_channel;
use faithful::core::delay::DelayPair;
use faithful::core::noise::EtaBounds;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let chain = InverterChain::umc90_like(7)?;
    let nominal = VddSource::dc(1.0);
    let cfg = SweepConfig::default();

    println!("Characterizing the nominal chain …");
    let (up, down) = characterize(&chain, &nominal, &cfg)?;
    // Predictions use the measured per-edge polylines; the η-band needs
    // δ↓ near T ≈ −η⁺ and δ_min, which lie below the sampled range, so
    // compute it on the exp-channel fitted to the same data (the paper's
    // question (c) calibration).
    let reference = to_empirical(&up, &down)?;
    let ups: Vec<(f64, f64)> = up.iter().map(|s| (s.offset, s.delay)).collect();
    let downs: Vec<(f64, f64)> = down.iter().map(|s| (s.offset, s.delay)).collect();
    let fitted = fit_exp_channel(&ups, &downs, None)?.channel;

    // Faithfulness-limited η-band: pick η⁺, derive the largest η⁻
    // allowed by constraint (C): η⁻ = δ↓(−η⁺) − δ_min − η⁺.
    let eta_plus = 0.3; // ps
    let eta_minus = EtaBounds::max_minus_for_plus(eta_plus, &fitted)
        .expect("η⁺ small enough for constraint (C)");
    let bounds = EtaBounds::new(eta_minus * 0.999, eta_plus)?;
    println!(
        "η-band from constraint (C): [−{:.3}, +{:.3}] ps  (δ_min = {:.3} ps)",
        bounds.minus(),
        bounds.plus(),
        fitted.delta_min()
    );

    // ±1 % V_DD sine, random phase per pulse — the paper's stimulus.
    let mut rng = StdRng::seed_from_u64(2018);
    let mut covered = 0usize;
    let mut total = 0usize;
    println!(
        "\n{:>10} | {:>9} | {:>22} | covered?",
        "T (ps)", "D (ps)", "band"
    );
    for _round in 0..4 {
        let phase = rng.gen_range(0.0..360.0);
        let vdd = VddSource::with_sine(1.0, 0.01, 120.0, phase)?;
        for inverted in [false, true] {
            let devs = measure_deviations(&chain, &vdd, &cfg, &reference, inverted)?;
            for d in devs {
                total += 1;
                // The model may shift each output transition later by
                // η ∈ [−η⁻, η⁺]; it matches the analog crossing iff
                // η = D, i.e. D ∈ [−η⁻, η⁺].
                let ok = bounds.contains(d.deviation);
                if ok {
                    covered += 1;
                }
                if total.is_multiple_of(9) {
                    println!(
                        "{:>10.2} | {:>+9.3} | [−{:.3}, +{:.3}] | {}",
                        d.offset,
                        d.deviation,
                        bounds.minus(),
                        bounds.plus(),
                        if ok { "yes" } else { "NO" }
                    );
                }
            }
        }
    }
    println!(
        "\n{covered}/{total} deviation samples covered by the η-band \
         ({:.0} %).",
        100.0 * covered as f64 / total as f64
    );
    println!(
        "As in the paper, coverage is best near T ≈ 0 — the region that\n\
         matters for faithfulness — and degrades for large T."
    );
    Ok(())
}
