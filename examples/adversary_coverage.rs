//! Section V, question (a): can the admissible η-band absorb the delay
//! fluctuations caused by supply-voltage variation?
//!
//! Characterizes the nominal chain, computes the faithfulness-limited
//! η-band (η⁻ from constraint (C) given a chosen η⁺), measures the
//! deviation D(T) under a ±1 % V_DD sine with random phase, and reports
//! which samples the η-involution model can cover. Every sweep is a
//! declarative [`Experiment`] — the per-phase deviation runs embed the
//! measured reference samples and differ only in the supply's phase
//! field.
//!
//! Run with `cargo run --release --example adversary_coverage`.

use faithful::core::delay::fit::fit_exp_channel;
use faithful::core::delay::DelayPair;
use faithful::core::noise::EtaBounds;
use faithful::{AnalogSpec, AnalogTask, Experiment, Orientation, ReferenceSpec, SupplySpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Characterizing the nominal chain …");
    let result = Experiment::analog(AnalogSpec::new(7, AnalogTask::Characterize)).run()?;
    let (up, down) = result
        .analog()
        .expect("analog workload")
        .characterization()
        .expect("characterize task");
    // The η-band needs δ↓ near T ≈ −η⁺ and δ_min, which lie below the
    // sampled range, so compute it on the exp-channel fitted to the same
    // data (the paper's question (c) calibration).
    let ups: Vec<(f64, f64)> = up.iter().map(|s| (s.offset, s.delay)).collect();
    let downs: Vec<(f64, f64)> = down.iter().map(|s| (s.offset, s.delay)).collect();
    let fitted = fit_exp_channel(&ups, &downs, None)?.channel;

    // Faithfulness-limited η-band: pick η⁺, derive the largest η⁻
    // allowed by constraint (C): η⁻ = δ↓(−η⁺) − δ_min − η⁺.
    let eta_plus = 0.3; // ps
    let eta_minus = EtaBounds::max_minus_for_plus(eta_plus, &fitted)
        .expect("η⁺ small enough for constraint (C)");
    let bounds = EtaBounds::new(eta_minus * 0.999, eta_plus)?;
    println!(
        "η-band from constraint (C): [−{:.3}, +{:.3}] ps  (δ_min = {:.3} ps)",
        bounds.minus(),
        bounds.plus(),
        fitted.delta_min()
    );

    // ±1 % V_DD sine, random phase per round — the paper's stimulus.
    // The deviation experiments embed the measured samples of the one
    // characterization above as their reference, so nothing is
    // re-measured per phase.
    let mut rng = StdRng::seed_from_u64(2018);
    let mut covered = 0usize;
    let mut total = 0usize;
    println!(
        "\n{:>10} | {:>9} | {:>22} | covered?",
        "T (ps)", "D (ps)", "band"
    );
    for _round in 0..4 {
        let phase = rng.gen_range(0.0..360.0);
        let spec = AnalogSpec::new(
            7,
            AnalogTask::Deviations {
                reference: ReferenceSpec::empirical(up, down),
                orientation: Orientation::Both,
            },
        )
        .with_supply(SupplySpec::Sine {
            nominal: 1.0,
            amplitude: 0.01,
            period: 120.0,
            phase,
        });
        let result = Experiment::analog(spec).run()?;
        let devs = result
            .analog()
            .expect("analog workload")
            .deviations()
            .expect("deviation task");
        for d in devs {
            total += 1;
            // The model may shift each output transition later by
            // η ∈ [−η⁻, η⁺]; it matches the analog crossing iff
            // η = D, i.e. D ∈ [−η⁻, η⁺].
            let ok = bounds.contains(d.deviation);
            if ok {
                covered += 1;
            }
            if total.is_multiple_of(9) {
                println!(
                    "{:>10.2} | {:>+9.3} | [−{:.3}, +{:.3}] | {}",
                    d.offset,
                    d.deviation,
                    bounds.minus(),
                    bounds.plus(),
                    if ok { "yes" } else { "NO" }
                );
            }
        }
    }
    println!(
        "\n{covered}/{total} deviation samples covered by the η-band \
         ({:.0} %).",
        100.0 * covered as f64 / total as f64
    );
    println!(
        "As in the paper, coverage is best near T ≈ 0 — the region that\n\
         matters for faithfulness — and degrades for large T."
    );
    Ok(())
}
