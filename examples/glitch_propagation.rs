//! Compare how the classical channel models and the (η-)involution model
//! propagate a fast glitch train — the scenario of Figs. 1–4 of the
//! paper and the regime where non-faithful models go wrong.
//!
//! Run with `cargo run --example glitch_propagation`.

use faithful::core::channel::{
    Channel, DdmEdgeParams, DegradationDelay, EtaInvolutionChannel, InertialDelay,
    InvolutionChannel, PureDelay,
};
use faithful::core::delay::ExpChannel;
use faithful::core::noise::{EtaBounds, ExtendingAdversary, WorstCaseAdversary};
use faithful::{PulseStats, Signal};

fn describe(label: &str, s: &Signal, t0: f64, t1: f64) {
    let stats = PulseStats::of(s);
    println!(
        "{label:>14}: {}  ({} transitions, {} pulses)",
        s.render_ascii(t0, t1, 60),
        s.len(),
        stats.pulse_count(),
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A glitch train that gets progressively faster.
    let mut pulses = Vec::new();
    let mut t = 0.0;
    for i in 0..8 {
        let w = 2.0 / (1.0 + i as f64 * 0.45);
        pulses.push((t, w));
        t += w * 2.2;
    }
    let input = Signal::pulse_train(pulses)?;
    let (t0, t1) = (-0.5, t + 3.0);
    describe("input", &input, t0, t1);
    println!();

    // Pure delay: every glitch survives untouched — no attenuation at
    // all, physically impossible for fast trains.
    let mut pure = PureDelay::new(1.2)?;
    describe("pure", &pure.apply(&input), t0, t1);

    // Inertial delay: glitches below the window vanish entirely, wider
    // ones pass unchanged — a discontinuous all-or-nothing response.
    let mut inertial = InertialDelay::new(1.2, 1.0)?;
    describe("inertial", &inertial.apply(&input), t0, t1);

    // DDM: gradual attenuation, but a *bounded* delay function — the
    // class proven unfaithful in [IEEE TC 2016].
    let mut ddm = DegradationDelay::symmetric(DdmEdgeParams::new(1.2, 0.2, 1.0)?);
    describe("DDM", &ddm.apply(&input), t0, t1);

    // Involution: gradual attenuation with the involution property —
    // the faithful model.
    let delay = ExpChannel::new(1.0, 0.5, 0.5)?;
    let mut invol = InvolutionChannel::new(delay.clone());
    describe("involution", &invol.apply(&input), t0, t1);

    // η-involution under both extreme adversaries: the envelope of
    // feasible behaviours of the noisy physical channel.
    let bounds = EtaBounds::new(0.05, 0.05)?;
    let mut shrink = EtaInvolutionChannel::new(delay.clone(), bounds, WorstCaseAdversary);
    describe("η worst-case", &shrink.apply(&input), t0, t1);
    let mut extend = EtaInvolutionChannel::new(delay, bounds, ExtendingAdversary);
    describe("η extending", &extend.apply(&input), t0, t1);

    println!(
        "\nNote how the adversary can de-cancel pulses near the attenuation\n\
         boundary (compare the last two rows) — the freedom Fig. 4 shows,\n\
         which the faithfulness proof must (and does) tolerate."
    );
    Ok(())
}
