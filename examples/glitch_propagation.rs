//! Compare how the classical channel models and the (η-)involution model
//! propagate a fast glitch train — the scenario of Figs. 1–4 of the
//! paper and the regime where non-faithful models go wrong.
//!
//! Every model is described *by name* through the channel registry and
//! run through the [`Experiment`] facade — the whole comparison is a
//! list of specs.
//!
//! Run with `cargo run --example glitch_propagation`.

use faithful::{ChannelSpec, Experiment, NoiseSpec, PulseStats, Signal, SignalSpec};

fn describe(label: &str, s: &Signal, t0: f64, t1: f64) {
    let stats = PulseStats::of(s);
    println!(
        "{label:>14}: {}  ({} transitions, {} pulses)",
        s.render_ascii(t0, t1, 60),
        s.len(),
        stats.pulse_count(),
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A glitch train that gets progressively faster.
    let mut pulses = Vec::new();
    let mut t = 0.0;
    for i in 0..8 {
        let w = 2.0 / (1.0 + i as f64 * 0.45);
        pulses.push((t, w));
        t += w * 2.2;
    }
    let input = SignalSpec::train(pulses);
    let (t0, t1) = (-0.5, t + 3.0);
    describe("input", &input.build()?, t0, t1);
    println!();

    // One (label, channel-by-name) pair per model family. `pure`,
    // `inertial`, `ddm`, `involution` and `eta` are the registry's
    // built-in kinds.
    let models: Vec<(&str, ChannelSpec)> = vec![
        // Pure delay: every glitch survives untouched — no attenuation
        // at all, physically impossible for fast trains.
        ("pure", ChannelSpec::pure(1.2)),
        // Inertial delay: glitches below the window vanish entirely,
        // wider ones pass unchanged — all-or-nothing.
        ("inertial", ChannelSpec::inertial(1.2, 1.0)),
        // DDM: gradual attenuation, but a *bounded* delay function —
        // the class proven unfaithful in [IEEE TC 2016].
        ("DDM", ChannelSpec::ddm(1.2, 0.2, 1.0)),
        // Involution: gradual attenuation with the involution property
        // — the faithful model.
        ("involution", ChannelSpec::involution_exp(1.0, 0.5, 0.5)),
        // η-involution under both extreme adversaries: the envelope of
        // feasible behaviours of the noisy physical channel.
        (
            "η worst-case",
            ChannelSpec::eta_exp(1.0, 0.5, 0.5, 0.05, 0.05, NoiseSpec::WorstCase),
        ),
        (
            "η extending",
            ChannelSpec::eta_exp(1.0, 0.5, 0.5, 0.05, 0.05, NoiseSpec::Extending),
        ),
    ];

    for (label, channel) in models {
        let result = Experiment::channel(channel, input.clone()).run()?;
        describe(
            label,
            &result.channel().expect("channel workload").output,
            t0,
            t1,
        );
    }

    println!(
        "\nNote how the adversary can de-cancel pulses near the attenuation\n\
         boundary (compare the last two rows) — the freedom Fig. 4 shows,\n\
         which the faithfulness proof must (and does) tolerate."
    );
    Ok(())
}
