//! Quickstart: drive the η-involution model through the spec-driven
//! [`Experiment`] facade — describe a channel as data, run it, and
//! watch it attenuate, cancel, and adversarially shift glitches.
//!
//! Run with `cargo run --example quickstart`.

use faithful::core::delay::{DelayPair, ExpChannel};
use faithful::{ChannelSpec, Experiment, NoiseSpec, Signal, SignalSpec};

fn show(label: &str, s: &Signal, t0: f64, t1: f64) {
    println!("{label:>12}: {}  {}", s.render_ascii(t0, t1, 64), s);
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An exp-channel: the delay functions of a gate driving an RC load
    // with time constant τ = 1, pure delay T_p = 0.5, threshold V_DD/2.
    let delay = ExpChannel::new(1.0, 0.5, 0.5)?;
    println!(
        "exp-channel: δ↑∞ = {:.3}, δ↓∞ = {:.3}, δ_min = {:.3}",
        delay.delta_up_inf(),
        delay.delta_down_inf(),
        delay.delta_min()
    );

    // A glitch train: one comfortable pulse, one marginal, one hopeless.
    let input = SignalSpec::train([(0.0, 3.0), (6.0, 1.0), (9.0, 0.3)]);
    show("input", &input.build()?, -0.5, 14.0);

    // One facade call per model: the channel is described by name and
    // parameters, so the same description could be stored or queued.
    let run = |channel: ChannelSpec| -> Result<Signal, faithful::Error> {
        Ok(Experiment::channel(channel, input.clone())
            .run()?
            .channel()
            .expect("channel workload")
            .output
            .clone())
    };

    // The deterministic involution channel (DATE'15).
    show(
        "involution",
        &run(ChannelSpec::involution_exp(1.0, 0.5, 0.5))?,
        -0.5,
        14.0,
    );

    // Adversarial bounds satisfying constraint (C) — faithfulness holds.
    let eta = faithful::core::noise::EtaBounds::new(0.05, 0.05)?;
    assert!(eta.satisfies_constraint_c(&delay));

    // Worst-case adversary: rising maximally late, falling maximally
    // early — pulses shrink.
    show(
        "worst-case",
        &run(ChannelSpec::eta_exp(
            1.0,
            0.5,
            0.5,
            0.05,
            0.05,
            NoiseSpec::WorstCase,
        ))?,
        -0.5,
        14.0,
    );

    // Random bounded jitter, reproducible from the seed in the spec.
    show(
        "uniform η",
        &run(ChannelSpec::eta_exp(
            1.0,
            0.5,
            0.5,
            0.05,
            0.05,
            NoiseSpec::Uniform { seed: 42 },
        ))?,
        -0.5,
        14.0,
    );

    // The full experiment serializes: store it, diff it, ship it.
    let spec = Experiment::channel(
        ChannelSpec::eta_exp(1.0, 0.5, 0.5, 0.05, 0.05, NoiseSpec::Uniform { seed: 42 }),
        input,
    );
    let text = spec.spec().to_string();
    println!("\nThis experiment as a spec:\n{text}");
    let replayed = Experiment::parse(&text)?.run()?;
    assert_eq!(
        replayed.channel().expect("channel workload").output,
        spec.run()?.channel().expect("channel workload").output,
        "replaying the stored spec is bit-identical"
    );
    println!("replayed from text: bit-identical ✓");

    Ok(())
}
