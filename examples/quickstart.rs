//! Quickstart: build an η-involution channel and watch it attenuate,
//! cancel, and adversarially shift glitches.
//!
//! Run with `cargo run --example quickstart`.

use faithful::core::channel::{Channel, EtaInvolutionChannel, InvolutionChannel};
use faithful::core::delay::{DelayPair, ExpChannel};
use faithful::core::noise::{EtaBounds, UniformNoise, WorstCaseAdversary};
use faithful::Signal;

fn show(label: &str, s: &Signal, t0: f64, t1: f64) {
    println!("{label:>12}: {}  {}", s.render_ascii(t0, t1, 64), s);
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An exp-channel: the delay functions of a gate driving an RC load
    // with time constant τ = 1, pure delay T_p = 0.5, threshold V_DD/2.
    let delay = ExpChannel::new(1.0, 0.5, 0.5)?;
    println!(
        "exp-channel: δ↑∞ = {:.3}, δ↓∞ = {:.3}, δ_min = {:.3}",
        delay.delta_up_inf(),
        delay.delta_down_inf(),
        delay.delta_min()
    );

    // A glitch train: one comfortable pulse, one marginal, one hopeless.
    let input = Signal::pulse_train([(0.0, 3.0), (6.0, 1.0), (9.0, 0.3)])?;
    show("input", &input, -0.5, 14.0);

    // The deterministic involution channel (DATE'15).
    let mut det = InvolutionChannel::new(delay.clone());
    show("involution", &det.apply(&input), -0.5, 14.0);

    // Adversarial bounds satisfying constraint (C) — faithfulness holds.
    let bounds = EtaBounds::new(0.05, 0.05)?;
    assert!(bounds.satisfies_constraint_c(&delay));

    // Worst-case adversary: rising maximally late, falling maximally
    // early — pulses shrink.
    let mut worst = EtaInvolutionChannel::new(delay.clone(), bounds, WorstCaseAdversary);
    show("worst-case", &worst.apply(&input), -0.5, 14.0);

    // Random bounded jitter: a different trace every run of the stream.
    let mut noisy = EtaInvolutionChannel::new(delay, bounds, UniformNoise::new(42));
    show("uniform η", &noisy.apply(&input), -0.5, 14.0);
    show("uniform η", &noisy.apply(&input), -0.5, 14.0);

    Ok(())
}
