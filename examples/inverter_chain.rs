//! The validation setup of Fig. 6: simulate the UMC-90-like 7-stage
//! inverter chain at transistor level, record a stage through the
//! sense-amplifier model, characterize its delay functions, and compare
//! the digital abstraction with the analog ground truth.
//!
//! Run with `cargo run --release --example inverter_chain`.

use faithful::analog::chain::InverterChain;
use faithful::analog::characterize::to_empirical;
use faithful::analog::senseamp::SenseAmp;
use faithful::analog::stimulus::Pulse;
use faithful::analog::supply::VddSource;
use faithful::core::channel::{Channel, InvolutionChannel};
use faithful::core::delay::fit::fit_exp_channel;
use faithful::{AnalogSpec, AnalogTask, Experiment};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let chain = InverterChain::umc90_like(7)?;
    let vdd = VddSource::dc(1.0);

    // One transient: a 60 ps pulse through the chain.
    let stim = Pulse::new(60.0, 60.0, 10.0, 1.0)?;
    let run = chain.simulate(&stim, &vdd, 400.0, 0.05)?;
    println!("Analog waveforms (1 V rails, ASCII-sampled):");
    let render = |w: &faithful::analog::Waveform| {
        (0..64)
            .map(|i| {
                let t = 400.0 * i as f64 / 64.0;
                let v = w.value_at(t);
                if v > 0.75 {
                    '▔'
                } else if v > 0.25 {
                    '─'
                } else {
                    '▁'
                }
            })
            .collect::<String>()
    };
    println!("   input: {}", render(run.input()));
    for i in 0..7 {
        println!("  node {i}: {}", render(run.node(i)));
    }

    // The sense-amp tap (gain 0.15, 8.5 GHz) as the oscilloscope sees it.
    let amp = SenseAmp::umc90_like()?;
    let scoped = amp.apply(run.node(3))?;
    println!(
        "\nSense-amp output swing at node 3: {:.3} V (≈ 0.15 × rail)",
        scoped
            .samples()
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max)
            - scoped
                .samples()
                .iter()
                .cloned()
                .fold(f64::INFINITY, f64::min)
    );

    // Characterize stage 3's delay functions from pulse sweeps — one
    // declarative experiment dispatched through the facade.
    let characterization =
        Experiment::analog(AnalogSpec::new(7, AnalogTask::Characterize)).run()?;
    let (up, down) = characterization
        .analog()
        .expect("analog workload")
        .characterization()
        .expect("characterize task");
    let (up, down) = (up.to_vec(), down.to_vec());
    println!("\nMeasured δ↑ samples (stage 3): {} points", up.len());
    println!("Measured δ↓ samples (stage 3): {} points", down.len());
    let pair = to_empirical(&up, &down)?;
    println!(
        "Empirical delay pair built; sampled T ∈ [{:.1}, {:.1}] ps",
        pair.up_range().0,
        pair.up_range().1
    );

    // Fit an exp-channel to the same data (the Fig. 9 procedure).
    let ups: Vec<(f64, f64)> = up.iter().map(|s| (s.offset, s.delay)).collect();
    let downs: Vec<(f64, f64)> = down.iter().map(|s| (s.offset, s.delay)).collect();
    let fit = fit_exp_channel(&ups, &downs, None)?;
    println!(
        "\nExp-channel fit: τ = {:.2} ps, T_p = {:.2} ps, V_th = {:.3} (rms {:.3} ps)",
        fit.channel.tau(),
        fit.channel.t_p(),
        fit.channel.v_th(),
        fit.rms
    );

    // Digital prediction vs analog truth for a fresh pulse. The stage is
    // modeled as a zero-time NOT gate (complement) followed by the
    // measured delay channel.
    let input_sig = run.stage_input(3).digitize(0.5)?;
    let analog_out = run.node(3).digitize(0.5)?;
    let mut model = InvolutionChannel::new(pair);
    let predicted = model.apply(&input_sig.complemented());
    println!("\nStage-3 digital comparison for the 60 ps pulse:");
    println!("  analog crossings : {analog_out}");
    println!("  model prediction : {predicted}");
    if analog_out.len() == predicted.len() {
        for (a, p) in analog_out.transitions().iter().zip(predicted.transitions()) {
            println!(
                "    edge at {:8.3} ps — prediction off by {:+7.3} ps",
                a.time,
                p.time - a.time
            );
        }
    }

    // Delay at low supply voltage exploded (the Fig. 7 effect).
    println!("\nPer-stage delay vs V_DD (the Fig. 7 shift):");
    for v in [1.0, 0.8, 0.6, 0.4] {
        let vdd_v = VddSource::dc(v);
        let stim = Pulse::new(60.0, 2000.0, 10.0, v)?;
        let run = chain.simulate(&stim, &vdd_v, 12_000.0, 0.25)?;
        let t_out = run.node(6).falling_crossings(v / 2.0);
        match t_out.first() {
            Some(t) => println!("  V_DD = {v:.1} V: chain delay = {:8.1} ps", t - 60.0),
            None => println!("  V_DD = {v:.1} V: no crossing within horizon"),
        }
    }
    Ok(())
}
