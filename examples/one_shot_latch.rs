//! The one-shot latch built from the SPF circuit (the paper's Section I
//! remark: SPF and one-shot latches are mutually reducible, so
//! faithfulness transfers), with a VCD dump of a metastable capture.
//!
//! Run with `cargo run --example one_shot_latch`.

use faithful::circuit::vcd::write_vcd;
use faithful::core::delay::ExpChannel;
use faithful::core::noise::{EtaBounds, UniformNoise, WorstCaseAdversary, ZeroNoise};
use faithful::spf::latch::OneShotLatch;
use faithful::{Experiment, Signal, SpfSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let latch =
        OneShotLatch::dimensioned(ExpChannel::new(1.0, 0.5, 0.5)?, EtaBounds::new(0.02, 0.02)?)?;
    // SPF and one-shot latches are mutually reducible, so the latch's
    // storage-loop theory is exactly the facade's `spf` workload over
    // the same delay pair and bounds.
    let facade = Experiment::spf(SpfSpec::exp(1.0, 0.5, 0.5, 0.02, 0.02)).run()?;
    let th = facade.spf().expect("spf workload").theory;
    assert_eq!(th, latch.theory()?, "latch theory == SPF facade theory");
    let en = Signal::pulse(5.0, 10.0)?;

    println!("One-shot latch: enable window [5, 15), storage-loop theory:");
    println!(
        "  metastability threshold (loop-side ∆̃₀) = {:.4}\n",
        th.delta0_tilde
    );

    // clean captures
    let d1 = Signal::pulse(0.0, 30.0)?; // data high across the window
    let run1 = latch.capture(ZeroNoise, ZeroNoise, &d1, &en, 200.0)?;
    println!("data high across enable  → q: {}", run1.q);
    let run0 = latch.capture(ZeroNoise, ZeroNoise, &Signal::zero(), &en, 200.0)?;
    println!("data low                 → q: {}", run0.q);

    // a setup-time sweep: data arrives ever closer to the enable's fall
    println!("\nsetup sweep (data arrival vs enable fall at t = 15):");
    println!("{:>12} | {:>8} | {:>22}", "overlap", "loop act.", "q");
    let mut metastable_run = None;
    for i in 0..12 {
        let overlap = 0.4 + 0.18 * i as f64;
        let d = Signal::pulse(15.0 - overlap, overlap + 30.0)?;
        let run = latch.capture(WorstCaseAdversary, WorstCaseAdversary, &d, &en, 300.0)?;
        let pulses = faithful::PulseStats::of(&run.loop_signal).pulse_count();
        let q = if run.q.is_zero() {
            "0".to_owned()
        } else {
            format!("rises at {:.2}", run.q.transitions()[0].time)
        };
        println!("{overlap:>12.2} | {pulses:>8} | {q:>22}");
        if pulses >= 3 && metastable_run.is_none() {
            metastable_run = Some(run);
        }
    }

    // random adversaries at the decision boundary: always clean output
    println!("\nrandom adversaries at the boundary (q must stay clean):");
    for seed in 0..5 {
        let d = Signal::pulse(15.0 - 1.1, 40.0)?;
        let run = latch.capture(
            UniformNoise::new(seed),
            UniformNoise::new(seed + 100),
            &d,
            &en,
            300.0,
        )?;
        assert!(run.q.len() <= 1, "never a runt pulse at q");
        println!("  seed {seed}: q = {}", run.q);
    }

    // dump the most interesting (metastable) capture as VCD
    if let Some(run) = metastable_run {
        let doc = write_vcd(
            &[
                ("en", &en),
                ("overlap", &run.overlap),
                ("storage_loop", &run.loop_signal),
                ("q", &run.q),
            ],
            "1ps",
            0.01,
        )?;
        std::fs::create_dir_all("figures")?;
        std::fs::write("figures/one_shot_latch.vcd", &doc)?;
        println!("\nmetastable capture dumped to figures/one_shot_latch.vcd (view in GTKWave)");
    }
    Ok(())
}
