//! The event-driven simulator.
//!
//! # Architecture
//!
//! Pending output transitions live in a slab [`EventPool`]: a slot vector
//! plus a free list. Every event handle is a generation-stamped
//! [`EventId`], so cancelling (the channels' pairwise non-FIFO rule)
//! invalidates exactly the intended event — a stale handle (delivered,
//! cancelled, or reused slot) is detected by generation mismatch instead
//! of silently corrupting the waveform.
//!
//! All per-run working memory (pin values, recorders, the pool, the
//! event queue, the dirty set) is owned by a [`SimState`] that the
//! [`Simulator`] reuses across [`run`](Simulator::run) calls: after the
//! first run the hot loop performs no pool/recorder allocations — only
//! the returned [`SimResult`]'s signals are freshly allocated.
//!
//! Recording is selective: by default every node and edge gets a
//! waveform recorder (bit-identical to the historical behaviour), but a
//! [watch set](Simulator::set_watch) restricts recorders to the named
//! nodes, so a million-gate run holds recording memory proportional to
//! the watched nodes — not the netlist. A
//! [transition cap](Simulator::set_transition_cap) additionally bounds
//! each recorder: the first `cap` transitions are kept, the rest are
//! counted as [dropped](SimResult::dropped_transitions) instead of
//! growing an unbounded `Vec`.
//!
//! Pending events are ordered by a pluggable [`QueueBackend`]: a
//! bucketed calendar queue (sized from the channels' delay hints), the
//! reference binary heap, or the default [`QueueBackend::Auto`] which
//! measures both on the first runs of a workload and commits to the
//! faster one. Both concrete backends deliver bit-identical
//! `(time, seq)` order — so the Auto choice never changes results —
//! see the [`queue`](crate::queue) module docs.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use ivl_core::channel::{FeedEffect, OnlineChannel as _, SimChannel};
use ivl_core::{Bit, Signal, SignalBuilder, Transition};

use crate::error::SimError;
use crate::graph::{Circuit, EdgeId, NodeId, NodeTag};
use crate::queue::{CalendarConfig, EventKey, EventQueue, QueueBackend, QueueImpl};

/// Generation-stamped handle to a slot in the [`EventPool`].
///
/// The generation makes dangling references detectable: once a slot is
/// released (its event delivered or cancelled) its generation is bumped,
/// and any heap key or pending-queue entry still holding the old
/// generation no longer resolves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct EventId {
    slot: u32,
    gen: u32,
}

impl EventId {
    /// A handle that resolves to no slot; used where an [`EventKey`]
    /// needs a placeholder id (ordering never inspects the id).
    pub(crate) const TOMBSTONE: EventId = EventId {
        slot: u32::MAX,
        gen: u32::MAX,
    };
}

#[derive(Debug, Clone)]
struct Slot {
    gen: u32,
    live: bool,
    time: f64,
    value: Bit,
    edge: u32,
    /// The schedule sequence number of the resident event — lets a
    /// cancellation identify the exact queue key to discard eagerly.
    seq: u64,
}

/// Slab event pool with a free list. Slots are recycled, so a run's
/// memory high-water mark is the maximum number of *simultaneously
/// pending* events, not the total event count.
#[derive(Debug, Default)]
struct EventPool {
    slots: Vec<Slot>,
    free: Vec<u32>,
}

impl EventPool {
    fn clear(&mut self) {
        self.slots.clear();
        self.free.clear();
    }

    fn alloc(&mut self, time: f64, edge: usize, value: Bit, seq: u64) -> EventId {
        if let Some(slot) = self.free.pop() {
            let s = &mut self.slots[slot as usize];
            s.live = true;
            s.time = time;
            s.value = value;
            s.edge = edge as u32;
            s.seq = seq;
            EventId { slot, gen: s.gen }
        } else {
            let slot = u32::try_from(self.slots.len()).expect("event pool exceeds u32 slots");
            self.slots.push(Slot {
                gen: 0,
                live: true,
                time,
                value,
                edge: edge as u32,
                seq,
            });
            EventId { slot, gen: 0 }
        }
    }

    /// The slot for `id`, or `None` if the id is stale (its event was
    /// delivered or cancelled, and the slot possibly reused).
    fn get(&self, id: EventId) -> Option<&Slot> {
        self.slots
            .get(id.slot as usize)
            .filter(|s| s.live && s.gen == id.gen)
    }

    /// Releases the slot for `id` and returns its payload in one slot
    /// access, or `None` (no mutation) if the id is stale. The single
    /// random access matters: on large workloads a pool lookup is a
    /// cache miss, and `get` + `release` would pay it twice per event.
    fn take(&mut self, id: EventId) -> Option<(f64, Bit, usize)> {
        let s = self.slots.get_mut(id.slot as usize)?;
        if !(s.live && s.gen == id.gen) {
            return None;
        }
        s.live = false;
        s.gen = s.gen.wrapping_add(1);
        self.free.push(id.slot);
        Some((s.time, s.value, s.edge as usize))
    }

    /// Returns the slot to the free list and bumps its generation, so
    /// every outstanding handle to this event becomes stale.
    fn release(&mut self, id: EventId) {
        let s = &mut self.slots[id.slot as usize];
        debug_assert!(s.live && s.gen == id.gen, "double release of {id:?}");
        s.live = false;
        s.gen = s.gen.wrapping_add(1);
        self.free.push(id.slot);
    }

    /// Number of slots ever allocated (the pool's high-water mark).
    fn capacity(&self) -> usize {
        self.slots.len()
    }
}

/// Slot sentinel: this node/edge has no recorder this run.
const NO_REC: u32 = u32::MAX;

/// Pushes `tr` onto a recorder unless the per-recorder transition cap
/// is exhausted; capped pushes are counted instead of recorded, so the
/// kept prefix still alternates and the caller can see how much was
/// decimated.
#[inline]
fn record(rec: &mut SignalBuilder, tr: Transition, cap: usize, dropped: &mut usize, msg: &str) {
    if rec.len() < cap {
        rec.push(tr).expect(msg);
    } else {
        *dropped += 1;
    }
}

/// Per-run working memory, reused across [`Simulator::run`] calls.
///
/// `prepare` resizes and resets every buffer in place (keeping
/// capacity), so after a warmup run repeated simulations of the same
/// circuit allocate nothing here.
#[derive(Debug, Default)]
struct SimState {
    node_initial: Vec<Bit>,
    /// Flattened pin values, indexed by the topology's `pin_start` CSR.
    pins: Vec<Bit>,
    out_value: Vec<Bit>,
    /// Recorder slot per node (`NO_REC` = unwatched). Identity map in
    /// full-recording mode.
    node_slot: Vec<u32>,
    edge_slot: Vec<u32>,
    node_rec: Vec<SignalBuilder>,
    edge_rec: Vec<SignalBuilder>,
    dropped: usize,
    pool: EventPool,
    queue: QueueImpl,
    edge_pending: Vec<VecDeque<EventId>>,
    dirty: Vec<usize>,
    dirty_scratch: Vec<usize>,
    dirty_flag: Vec<bool>,
}

impl SimState {
    #[allow(clippy::cast_possible_truncation)]
    fn prepare(
        &mut self,
        circuit: &Circuit,
        inputs: &[Signal],
        backend: QueueBackend,
        calendar: CalendarConfig,
        watch: Option<&[NodeId]>,
    ) {
        let topo = &*circuit.topo;
        let n_nodes = topo.node_count();
        let n_edges = topo.edge_count();

        self.node_initial.clear();
        self.node_initial
            .extend((0..n_nodes).map(|i| match topo.node_tags[i] {
                NodeTag::Input => inputs[i].initial(),
                NodeTag::Gate => topo.node_initial[i],
                // output ports inherit their (unique) driver's initial
                NodeTag::Output => Bit::Zero, // fixed up below
            }));

        // flattened pin values: driver's initial value propagated
        // (channels keep the initial value)
        let n_pins = topo.pin_start[n_nodes] as usize;
        self.pins.clear();
        self.pins.resize(n_pins, Bit::Zero);
        for e in 0..n_edges {
            let to = topo.edge_to[e] as usize;
            self.pins[(topo.pin_start[to] + topo.edge_pin[e]) as usize] =
                self.node_initial[topo.edge_from[e] as usize];
        }
        for i in 0..n_nodes {
            if topo.node_tags[i] == NodeTag::Output {
                self.node_initial[i] = self.pins[topo.pin_start[i] as usize];
            }
        }

        self.out_value.clear();
        self.out_value.extend_from_slice(&self.node_initial);

        // recorders: full mode keeps one per node and edge
        // (bit-identical legacy behaviour); a watch set allocates
        // exactly one recorder per watched node and none per edge
        match watch {
            None => {
                self.node_slot.clear();
                self.node_slot.extend(0..n_nodes as u32);
                self.edge_slot.clear();
                self.edge_slot.extend(0..n_edges as u32);
                self.node_rec
                    .resize_with(n_nodes, || SignalBuilder::new(Bit::Zero));
                for (rec, &init) in self.node_rec.iter_mut().zip(&self.node_initial) {
                    rec.reset(init);
                }
                self.edge_rec
                    .resize_with(n_edges, || SignalBuilder::new(Bit::Zero));
                for (e, rec) in self.edge_rec.iter_mut().enumerate() {
                    rec.reset(self.node_initial[topo.edge_from[e] as usize]);
                }
            }
            Some(nodes) => {
                self.node_slot.clear();
                self.node_slot.resize(n_nodes, NO_REC);
                self.edge_slot.clear();
                self.edge_slot.resize(n_edges, NO_REC);
                self.node_rec
                    .resize_with(nodes.len(), || SignalBuilder::new(Bit::Zero));
                for (slot, id) in nodes.iter().enumerate() {
                    self.node_slot[id.index()] = slot as u32;
                    self.node_rec[slot].reset(self.node_initial[id.index()]);
                }
                self.edge_rec.clear();
            }
        }
        self.dropped = 0;

        self.pool.clear();
        self.queue.ensure(backend, calendar);
        self.edge_pending.resize_with(n_edges, VecDeque::new);
        for q in &mut self.edge_pending {
            q.clear();
        }

        self.dirty.clear();
        self.dirty_scratch.clear();
        self.dirty_flag.clear();
        self.dirty_flag.resize(n_nodes, false);
        for i in 0..n_nodes {
            if topo.node_tags[i] == NodeTag::Gate {
                self.dirty.push(i);
                self.dirty_flag[i] = true;
            }
        }
    }
}

/// Scheduling front-end over the pool/queue/pending queues; split out of
/// `run` so the borrow checker sees disjoint state.
struct Queue<'a> {
    pool: &'a mut EventPool,
    queue: &'a mut QueueImpl,
    edge_pending: &'a mut [VecDeque<EventId>],
    seq: u64,
    scheduled: usize,
    max_events: usize,
}

impl Queue<'_> {
    /// Schedules a transition on `edge`, charging it against the event
    /// budget — cancel-heavy churn is bounded even if nothing is ever
    /// delivered.
    fn schedule(&mut self, edge: usize, tr: Transition) -> Result<(), SimError> {
        self.scheduled += 1;
        if self.scheduled > self.max_events {
            return Err(SimError::MaxEventsExceeded {
                budget: self.max_events,
                time: tr.time,
            });
        }
        let id = self.pool.alloc(tr.time, edge, tr.value, self.seq);
        self.queue.push(EventKey {
            time: tr.time,
            seq: self.seq,
            id,
        });
        self.seq += 1;
        self.edge_pending[edge].push_back(id);
        Ok(())
    }

    /// Applies a channel feed effect for `edge`; `now` is the current
    /// simulation time (`None` during pre-scheduling of input-port
    /// signals, when causality cannot be violated).
    fn apply(&mut self, edge: usize, effect: FeedEffect, now: Option<f64>) -> Result<(), SimError> {
        match effect {
            FeedEffect::Scheduled(tr) => {
                if let Some(now) = now {
                    if tr.time <= now {
                        return Err(SimError::CausalityViolation { time: now, edge });
                    }
                }
                self.schedule(edge, tr)
            }
            FeedEffect::CancelledPair { cancelled } => {
                let Some(id) = self.edge_pending[edge].pop_back() else {
                    return Err(SimError::CancellationMismatch {
                        edge,
                        pending: None,
                        cancelled: cancelled.time,
                    });
                };
                // generation mismatch ⇒ the event was already delivered
                // (or cancelled): refusing here is what keeps a
                // misbehaving channel from corrupting the waveform.
                let Some(slot) = self.pool.get(id) else {
                    return Err(SimError::CancellationMismatch {
                        edge,
                        pending: None,
                        cancelled: cancelled.time,
                    });
                };
                if slot.time != cancelled.time || slot.value != cancelled.value {
                    return Err(SimError::CancellationMismatch {
                        edge,
                        pending: Some(slot.time),
                        cancelled: cancelled.time,
                    });
                }
                let (time, seq) = (slot.time, slot.seq);
                self.pool.release(id);
                // eager removal from the queue (the calendar backend
                // does; the heap falls back to lazy stale filtering)
                self.queue.discard(time, seq);
                Ok(())
            }
            FeedEffect::Dropped => Ok(()),
        }
    }
}

/// A selective-recording watch set: the sorted, deduplicated node ids
/// whose waveforms a run records. Shared by `Arc` into every
/// [`SimResult`], so result construction costs O(1) regardless of the
/// netlist size.
#[derive(Debug, Clone)]
struct Watch {
    nodes: Arc<Vec<NodeId>>,
}

/// Event-driven simulator over a [`Circuit`].
///
/// Owns the circuit (and hence the channels' adversary/noise state).
/// Typical use: [`set_input`](Simulator::set_input) for every input port,
/// then [`run`](Simulator::run).
///
/// # Run lifecycle and state reuse
///
/// Each `run` resets channel single-history state and rebuilds the
/// per-run working memory *in place* (the internal `SimState`: event
/// pool, scheduling heap, pin values, recorders). After a warmup run,
/// repeated runs of the same circuit perform no further pool/recorder
/// allocations; only the returned [`SimResult`] is freshly allocated.
///
/// Noise RNG streams are deliberately *not* reset between runs, so
/// repeated runs explore fresh adversary choices. For reproducible
/// sweeps, [`reseed_noise`](Simulator::reseed_noise) pins every
/// channel's stream to a scenario seed (this is what
/// [`ScenarioRunner`](crate::ScenarioRunner) does per scenario).
///
/// # Memory-bounded recording
///
/// By default every node and edge records its full waveform. On large
/// netlists, [`set_watch`](Simulator::set_watch) restricts recording to
/// the named nodes (recording memory ∝ watched nodes, not netlist
/// size), and [`set_transition_cap`](Simulator::set_transition_cap)
/// bounds each recorder to its first `cap` transitions, counting the
/// overflow in [`SimResult::dropped_transitions`]. Neither knob changes
/// what is *simulated* — event processing is bit-identical; only what
/// is *kept* differs.
pub struct Simulator {
    circuit: Circuit,
    inputs: Vec<Signal>,
    max_events: usize,
    backend: QueueBackend,
    calendar: CalendarConfig,
    probe: AutoProbe,
    state: SimState,
    cancel: Option<Arc<AtomicBool>>,
    watch: Option<Watch>,
    transition_cap: Option<usize>,
}

/// Calendar geometry for a circuit: bucket width from the channels'
/// delay hints (the involution channels' bounded delay ranges put
/// typical event horizons a small number of buckets ahead).
fn calendar_config_for(circuit: &Circuit) -> CalendarConfig {
    CalendarConfig::from_delay_hints(
        circuit
            .channels
            .iter()
            .flatten()
            .filter_map(|ch| ch.delay_hint()),
    )
}

/// Accumulated timing evidence for one backend: total timed seconds
/// and total scheduled events across every timed probe run so far.
#[derive(Debug, Clone, Copy, Default)]
struct ProbeAccum {
    secs: f64,
    scheduled: usize,
}

impl ProbeAccum {
    fn measured(&self) -> bool {
        self.scheduled >= AutoProbe::MIN_EVENTS
    }

    fn per_event(&self) -> f64 {
        self.secs / self.scheduled as f64
    }
}

/// Measure-and-switch state for [`QueueBackend::Auto`].
///
/// While unresolved, each run is a probe: the reference heap first,
/// then the calendar wheel, each timed and normalized per *scheduled*
/// event. Evidence is *accumulated* across runs — a workload of many
/// tiny runs (each too noisy to time alone) still resolves once a
/// backend has [`Self::MIN_EVENTS`] scheduled events on the books,
/// instead of probing forever. Resolution rules:
///
/// - the simulator's very first run is never *timed*: it pays one-off
///   costs (per-node state, pool growth, recorder setup) that would be
///   billed to whichever backend probes first and flip close races.
///   Its event counts still feed the cancel-rate shortcut below —
///   counts are exact regardless of warmth;
/// - while the heap is still unmeasured, the heap is also the backend
///   used — the unresolved default is the reference implementation, so
///   `Auto` cannot lose to the heap on workloads the probe never gets
///   enough evidence about (this is where the old wheel-first probe
///   shipped a persistent regression on short wide-fanout runs: tiny
///   runs never resolved, and the unresolved default was the wheel);
/// - a cancel rate above [`Self::CANCEL_COMMIT_RATE`] commits the
///   wheel immediately, from the run counts of *any* backend
///   (cancellation is a property of the workload, not the queue): the
///   wheel's eager `discard` beats the heap's lazy stale filtering by
///   construction on cancel-heavy workloads;
/// - otherwise, once both backends are measured, the heap wins unless
///   the wheel beat it *clearly*: the wheel is committed only when
///   `wheel ≤ heap × WHEEL_MARGIN` with a margin below 1. The heap is
///   the reference backend and the `Auto` contract is "never lose to
///   the heap", so ties and timing noise must fall back to the heap —
///   the wheel's one structural win (cancel-heavy churn) is already
///   caught by the cancel-rate shortcut above.
///
/// Both backends are bit-identical, so however the timing races
/// resolve, the simulation results are unaffected.
#[derive(Debug, Clone, Copy, Default)]
struct AutoProbe {
    heap: ProbeAccum,
    wheel: ProbeAccum,
    /// Scheduled/processed event totals across every probe run
    /// (including the untimed cold run) — the cancel-rate evidence.
    sched_total: usize,
    proc_total: usize,
    /// Whether the cold first run has already been absorbed.
    warmed: bool,
    resolved: Option<QueueBackend>,
}

impl AutoProbe {
    /// A backend is considered measured once its probe runs have
    /// accumulated this many scheduled events: a sub-64-event sample is
    /// dominated by timer granularity, and mispredicting on one is how
    /// the wheel used to get committed on topologies where it loses.
    const MIN_EVENTS: usize = 64;
    /// Cancel-rate threshold above which the wheel is committed
    /// outright, without a timed comparison.
    const CANCEL_COMMIT_RATE: f64 = 0.25;
    /// The wheel wins a timed comparison only when
    /// `wheel ≤ heap × WHEEL_MARGIN` (per scheduled event): it must be
    /// measurably *faster*, not merely tied, to displace the reference
    /// heap.
    const WHEEL_MARGIN: f64 = 0.95;

    /// The concrete backend the next run should use: the committed
    /// winner, or the next probe target (heap until measured, then the
    /// wheel).
    fn backend(&self) -> QueueBackend {
        self.resolved.unwrap_or(if self.heap.measured() {
            QueueBackend::Calendar
        } else {
            QueueBackend::Heap
        })
    }

    fn record(
        &mut self,
        backend: QueueBackend,
        elapsed: std::time::Duration,
        scheduled: usize,
        processed: usize,
    ) {
        if self.resolved.is_some() || scheduled == 0 {
            return;
        }
        self.sched_total += scheduled;
        self.proc_total += processed;
        if self.sched_total >= Self::MIN_EVENTS {
            // processed counts deliveries; the rest of the schedule
            // budget is cancellations (plus any beyond-horizon
            // leftovers — close enough for a heuristic)
            let cancel_rate = 1.0 - self.proc_total as f64 / self.sched_total as f64;
            if cancel_rate > Self::CANCEL_COMMIT_RATE {
                self.resolved = Some(QueueBackend::Calendar);
                return;
            }
        }
        if !self.warmed {
            // cold first run: counts recorded above, timing discarded
            self.warmed = true;
            return;
        }
        let acc = match backend {
            QueueBackend::Heap => &mut self.heap,
            QueueBackend::Calendar => &mut self.wheel,
            QueueBackend::Auto => unreachable!("probe runs use a concrete backend"),
        };
        acc.secs += elapsed.as_secs_f64();
        acc.scheduled += scheduled;
        if self.heap.measured() && self.wheel.measured() {
            self.resolved = Some(
                if self.wheel.per_event() <= self.heap.per_event() * Self::WHEEL_MARGIN {
                    QueueBackend::Calendar
                } else {
                    QueueBackend::Heap
                },
            );
        }
    }
}

impl Simulator {
    /// Creates a simulator; all inputs default to the zero signal.
    ///
    /// The pending-event queue backend defaults to
    /// [`QueueBackend::from_env`]: [`QueueBackend::Auto`] unless
    /// `IVL_QUEUE` / `IVL_FORCE_HEAP` pin a concrete backend.
    #[must_use]
    pub fn new(circuit: Circuit) -> Self {
        let inputs = vec![Signal::zero(); circuit.node_count()];
        let calendar = calendar_config_for(&circuit);
        Simulator {
            circuit,
            inputs,
            max_events: 10_000_000,
            backend: QueueBackend::from_env(),
            calendar,
            probe: AutoProbe::default(),
            state: SimState::default(),
            cancel: None,
            watch: None,
            transition_cap: None,
        }
    }

    /// Selects the pending-event queue backend (overriding the
    /// environment default). All backends produce bitwise identical
    /// runs; [`QueueBackend::Auto`] times the first runs and commits to
    /// the faster concrete backend for the rest of the workload.
    #[must_use]
    pub fn with_queue_backend(mut self, backend: QueueBackend) -> Self {
        self.backend = backend;
        self.probe = AutoProbe::default();
        self
    }

    /// The configured pending-event queue backend (possibly
    /// [`QueueBackend::Auto`]; see
    /// [`effective_backend`](Simulator::effective_backend) for what a
    /// run actually uses).
    #[must_use]
    pub fn queue_backend(&self) -> QueueBackend {
        self.backend
    }

    /// The concrete backend the next [`run`](Simulator::run) will use:
    /// the configured backend, or — under [`QueueBackend::Auto`] — the
    /// measured winner once the probe has resolved (before that, the
    /// probe's next measurement target).
    #[must_use]
    pub fn effective_backend(&self) -> QueueBackend {
        match self.backend {
            QueueBackend::Auto => self.probe.backend(),
            b => b,
        }
    }

    /// Replaces the channel on `edge` (which must be a channel edge),
    /// re-deriving the calendar-queue geometry from the new channel set.
    /// The circuit topology is untouched, so recorded state and node
    /// ids stay valid.
    ///
    /// # Panics
    ///
    /// Panics if `edge` is out of range or is a direct connection.
    pub fn replace_channel(&mut self, edge: EdgeId, channel: Box<dyn SimChannel>) {
        self.circuit.replace_channel(edge, channel);
        self.calendar = calendar_config_for(&self.circuit);
    }

    /// Caps the number of *scheduled* events per run (guards against
    /// unbounded oscillation; default 10 million).
    ///
    /// Scheduling is charged, not delivery, so a pathological
    /// schedule-then-cancel loop trips the guard even though it never
    /// delivers anything.
    #[must_use]
    pub fn with_max_events(mut self, max_events: usize) -> Self {
        self.max_events = max_events;
        self
    }

    /// Non-consuming form of [`with_max_events`](Simulator::with_max_events):
    /// sweep supervisors use it to tighten and restore the budget around
    /// a single scenario without rebuilding the simulator.
    pub fn set_max_events(&mut self, max_events: usize) {
        self.max_events = max_events;
    }

    /// The configured scheduled-event budget per run.
    #[must_use]
    pub fn max_events(&self) -> usize {
        self.max_events
    }

    /// Restricts waveform recording to the named nodes. Subsequent runs
    /// allocate one recorder per watched node and none per edge, so
    /// recording memory is proportional to the watch set — not the
    /// netlist. Unwatched nodes still *simulate* identically (event
    /// processing is unaffected); only [`SimResult`] queries against
    /// them fail with [`SimError::NotWatched`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownNode`] if a name does not resolve;
    /// the previous watch configuration is left unchanged.
    pub fn set_watch<I, S>(&mut self, names: I) -> Result<(), SimError>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut nodes = Vec::new();
        for name in names {
            let name = name.as_ref();
            let id = self
                .circuit
                .node(name)
                .ok_or_else(|| SimError::UnknownNode {
                    name: name.to_owned(),
                })?;
            nodes.push(id);
        }
        nodes.sort_unstable();
        nodes.dedup();
        self.watch = Some(Watch {
            nodes: Arc::new(nodes),
        });
        Ok(())
    }

    /// Consuming form of [`set_watch`](Simulator::set_watch).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownNode`] if a name does not resolve.
    pub fn with_watch<I, S>(mut self, names: I) -> Result<Self, SimError>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        self.set_watch(names)?;
        Ok(self)
    }

    /// Restores full recording: every node and edge gets a recorder
    /// again (the default).
    pub fn clear_watch(&mut self) {
        self.watch = None;
    }

    /// Bounds every recorder to its first `cap` transitions; overflow
    /// is counted in [`SimResult::dropped_transitions`] instead of
    /// growing the transition vector. `None` (the default) records
    /// everything. The kept prefix is exact — truncation, not
    /// sampling — so S1-alternation of the recorded waveform holds.
    pub fn set_transition_cap(&mut self, cap: Option<usize>) {
        self.transition_cap = cap;
    }

    /// Consuming form of [`set_transition_cap`](Simulator::set_transition_cap).
    #[must_use]
    pub fn with_transition_cap(mut self, cap: usize) -> Self {
        self.transition_cap = Some(cap);
        self
    }

    /// Attaches (or detaches) a cooperative cancellation flag.
    ///
    /// [`run`](Simulator::run) polls the flag once per event batch with
    /// relaxed ordering — negligible cost — and returns
    /// [`SimError::Cancelled`] as soon as it observes `true`. Sweep
    /// watchdogs use this to reclaim workers stuck on a pathological
    /// scenario; the flag is never cleared by the simulator itself, so
    /// the owner must reset it between runs.
    pub fn set_cancel_flag(&mut self, flag: Option<Arc<AtomicBool>>) {
        self.cancel = flag;
    }

    /// The circuit under simulation.
    #[must_use]
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// Assigns the signal of an input port.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownPort`] if `name` is not an input port
    /// and [`SimError::InputViolatesS1`] if the signal has transitions
    /// before time 0.
    pub fn set_input(&mut self, name: &str, signal: Signal) -> Result<(), SimError> {
        let id = self
            .circuit
            .node(name)
            .filter(|id| self.circuit.topo.node_tags[id.index()] == NodeTag::Input)
            .ok_or_else(|| SimError::UnknownPort {
                name: name.to_owned(),
            })?;
        if !signal.satisfies_s1() {
            return Err(SimError::InputViolatesS1 {
                name: name.to_owned(),
            });
        }
        self.inputs[id.index()] = signal;
        Ok(())
    }

    /// Resets every input port back to the zero signal (scenario sweeps
    /// call this between scenarios so stale stimuli don't leak through).
    pub fn reset_inputs(&mut self) {
        for s in &mut self.inputs {
            *s = Signal::zero();
        }
    }

    /// Reseeds every channel's noise stream from `seed`, mixed with the
    /// edge index so distinct channels draw decorrelated streams.
    /// Deterministic channels are unaffected.
    ///
    /// Two simulators over clones of the same circuit produce bitwise
    /// identical runs after `reseed_noise` with the same seed.
    pub fn reseed_noise(&mut self, seed: u64) {
        for (i, ch) in self.circuit.channels.iter_mut().enumerate() {
            if let Some(ch) = ch {
                ch.reseed(split_mix64(
                    seed ^ (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                ));
            }
        }
    }

    /// High-water mark of the internal event pool: the largest number of
    /// simultaneously pending events any run has needed so far. Stable
    /// across repeated runs of the same workload — the pool recycles
    /// slots instead of growing.
    #[must_use]
    pub fn event_pool_capacity(&self) -> usize {
        self.state.pool.capacity()
    }

    /// Runs the simulation up to and including time `horizon`.
    ///
    /// Events scheduled after the horizon are discarded; an oscillating
    /// circuit simply yields signals truncated at the horizon.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CausalityViolation`] if a channel's output
    /// would land in the simulation's past (adversary bounds too large
    /// for event-driven evaluation),
    /// [`SimError::CancellationMismatch`] if a channel cancels a
    /// transition that does not match the pending event on its edge, and
    /// [`SimError::MaxEventsExceeded`] if the scheduled-event budget runs
    /// out before the horizon.
    #[allow(clippy::too_many_lines)]
    pub fn run(&mut self, horizon: f64) -> Result<SimResult, SimError> {
        // resolve Auto to a concrete backend; time the run only while
        // the probe is still measuring (zero cost otherwise)
        let backend = self.effective_backend();
        let probing = self.backend == QueueBackend::Auto && self.probe.resolved.is_none();
        let probe_start = probing.then(std::time::Instant::now);
        let cancel = self.cancel.clone();
        let cap = self.transition_cap.unwrap_or(usize::MAX);

        let circuit = &mut self.circuit;
        let inputs = &self.inputs;
        let state = &mut self.state;
        state.prepare(
            circuit,
            inputs,
            backend,
            self.calendar,
            self.watch.as_ref().map(|w| w.nodes.as_slice()),
        );

        // reset channel history
        for ch in circuit.channels.iter_mut().flatten() {
            ch.reset();
        }

        let SimState {
            node_initial: _,
            pins,
            out_value,
            node_slot,
            edge_slot,
            node_rec,
            edge_rec,
            dropped,
            pool,
            queue: event_queue,
            edge_pending,
            dirty,
            dirty_scratch,
            dirty_flag,
        } = state;

        let mut queue = Queue {
            pool,
            queue: event_queue,
            edge_pending: edge_pending.as_mut_slice(),
            seq: 0,
            scheduled: 0,
            max_events: self.max_events,
        };

        // split the circuit into disjoint borrows so the hot loops
        // index the flat topology arrays directly: the Arc-shared
        // topology is read-only, only the channel boxes are mutated
        let Circuit { topo, channels } = circuit;
        let topo = &**topo;
        let channels = channels.as_mut_slice();

        // Pre-schedule all input-port signals. A channel driven by an
        // input port sees exactly that port's transitions, so feeding
        // them all upfront is equivalent to feeding them in global time
        // order.
        for i in 0..topo.node_count() {
            if topo.node_tags[i] != NodeTag::Input {
                continue;
            }
            let signal = &inputs[i];
            for &eid in topo.outgoing(i) {
                let e = eid as usize;
                match &mut channels[e] {
                    None => {
                        for tr in signal {
                            queue.schedule(e, *tr)?;
                        }
                    }
                    Some(ch) => {
                        for tr in signal {
                            let effect = ch.feed(*tr);
                            queue.apply(e, effect, None)?;
                        }
                    }
                }
            }
            // record the input signal itself
            let slot = node_slot[i];
            if slot != NO_REC {
                for tr in signal {
                    record(
                        &mut node_rec[slot as usize],
                        *tr,
                        cap,
                        dropped,
                        "input signal is already validated",
                    );
                }
            }
        }

        // main loop: process batches of equal-time events, then evaluate
        // affected gates, then feed their output transitions onward.
        let mut processed = 0usize;
        // the initial batch runs at t = 0 to surface inconsistent gate
        // initial values (the paper lets a gate's declared initial value
        // disagree with its function; the mismatch appears at time 0)
        let mut batch_time = 0.0_f64;

        loop {
            // cooperative cancellation: one relaxed load per batch
            if let Some(flag) = &cancel {
                if flag.load(Ordering::Relaxed) {
                    return Err(SimError::Cancelled { time: batch_time });
                }
            }
            // deliver every still-live event at batch_time: the whole
            // same-timestamp batch lands in the dirty set before any
            // gate is re-evaluated
            while let Some(key) = queue.queue.pop_at_or_before(batch_time) {
                // stale key ⇒ the event was cancelled after this key was
                // pushed; the generation mismatch filters it out (one
                // pool access releases the slot and yields the payload)
                let Some((time, value, edge_idx)) = queue.pool.take(key.id) else {
                    continue;
                };
                if queue.edge_pending[edge_idx].front() == Some(&key.id) {
                    queue.edge_pending[edge_idx].pop_front();
                }
                processed += 1;
                if let Some(ch) = &mut channels[edge_idx] {
                    ch.discard_delivered(time);
                }
                let eslot = edge_slot[edge_idx];
                if eslot != NO_REC {
                    record(
                        &mut edge_rec[eslot as usize],
                        Transition::new(time, value),
                        cap,
                        dropped,
                        "channel outputs alternate and increase",
                    );
                }
                let to = topo.edge_to[edge_idx] as usize;
                let pin = topo.edge_pin[edge_idx];
                pins[(topo.pin_start[to] + pin) as usize] = value;
                match topo.node_tags[to] {
                    NodeTag::Gate => {
                        if !dirty_flag[to] {
                            dirty_flag[to] = true;
                            dirty.push(to);
                        }
                    }
                    NodeTag::Output => {
                        if out_value[to] != value {
                            out_value[to] = value;
                            let slot = node_slot[to];
                            if slot != NO_REC {
                                record(
                                    &mut node_rec[slot as usize],
                                    Transition::new(time, value),
                                    cap,
                                    dropped,
                                    "output port deliveries alternate",
                                );
                            }
                        }
                    }
                    NodeTag::Input => unreachable!("edges cannot enter input ports"),
                }
            }

            // evaluate dirty gates and feed their transitions
            std::mem::swap(dirty, dirty_scratch);
            for &i in dirty_scratch.iter() {
                dirty_flag[i] = false;
            }
            for &i in dirty_scratch.iter() {
                if topo.node_tags[i] != NodeTag::Gate {
                    continue;
                }
                let new_value = topo.gate_kinds[i].eval(&pins[topo.pin_range(i)]);
                if new_value == out_value[i] {
                    continue;
                }
                out_value[i] = new_value;
                let tr = Transition::new(batch_time, new_value);
                let slot = node_slot[i];
                if slot != NO_REC {
                    record(
                        &mut node_rec[slot as usize],
                        tr,
                        cap,
                        dropped,
                        "gate output changes strictly after its previous change",
                    );
                }
                for &eid in topo.outgoing(i) {
                    let e = eid as usize;
                    match &mut channels[e] {
                        None => queue.schedule(e, tr)?,
                        Some(ch) => {
                            let effect = ch.feed(tr);
                            queue.apply(e, effect, Some(batch_time))?;
                        }
                    }
                }
            }
            dirty_scratch.clear();

            // next batch: earliest remaining live event
            let next = loop {
                match queue.queue.peek() {
                    None => break None,
                    Some(key) => {
                        if queue.pool.get(key.id).is_some() {
                            break Some(key.time);
                        }
                        queue.queue.pop();
                    }
                }
            };
            match next {
                Some(t) if t <= horizon => {
                    if t > batch_time {
                        batch_time = t;
                    }
                    // equal time: keep batching at the same time (newly
                    // scheduled same-time direct deliveries)
                }
                _ => break,
            }
        }

        let scheduled_events = queue.scheduled;
        if let Some(start) = probe_start {
            self.probe
                .record(backend, start.elapsed(), scheduled_events, processed);
        }
        let node_signals: Vec<Signal> = node_rec.iter().map(SignalBuilder::snapshot).collect();
        let edge_signals: Vec<Signal> = edge_rec.iter().map(SignalBuilder::snapshot).collect();
        Ok(SimResult {
            names: Arc::clone(&topo.names),
            watched: self.watch.as_ref().map(|w| Arc::clone(&w.nodes)),
            node_signals,
            edge_signals,
            dropped_transitions: *dropped,
            zero: Signal::zero(),
            horizon,
            processed_events: processed,
            scheduled_events,
        })
    }
}

impl Clone for Simulator {
    /// Clones the circuit — `Arc`-sharing the topology and deep-copying
    /// only the per-edge channel state — and the inputs; the clone
    /// starts with fresh, empty per-run state and (under
    /// [`QueueBackend::Auto`]) its own unresolved probe, so each sweep
    /// worker measures its own workload. Watch set and transition cap
    /// carry over (the watch `Arc` is shared, not deep-copied).
    fn clone(&self) -> Self {
        Simulator {
            circuit: self.circuit.clone(),
            inputs: self.inputs.clone(),
            max_events: self.max_events,
            backend: self.backend,
            calendar: self.calendar,
            probe: AutoProbe::default(),
            state: SimState::default(),
            cancel: None,
            watch: self.watch.clone(),
            transition_cap: self.transition_cap,
        }
    }
}

impl fmt::Debug for Simulator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulator")
            .field("circuit", &self.circuit)
            .field("max_events", &self.max_events)
            .finish_non_exhaustive()
    }
}

/// `SplitMix64` — used to derive decorrelated per-edge noise seeds.
pub(crate) fn split_mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The recorded signals of a completed run.
///
/// Under full recording (the default) every node and edge has a
/// waveform. Under a [watch set](Simulator::set_watch) only the watched
/// nodes do: queries against unwatched nodes return
/// [`SimError::NotWatched`] (by name) or the zero signal (by id), and
/// edge queries return the zero signal.
#[derive(Debug, Clone)]
pub struct SimResult {
    names: Arc<HashMap<String, NodeId>>,
    /// Sorted watched node ids; `None` = full recording. `node_signals`
    /// is indexed by position in this list when present, by raw node id
    /// otherwise.
    watched: Option<Arc<Vec<NodeId>>>,
    node_signals: Vec<Signal>,
    edge_signals: Vec<Signal>,
    dropped_transitions: usize,
    zero: Signal,
    horizon: f64,
    processed_events: usize,
    scheduled_events: usize,
}

impl SimResult {
    fn slot(&self, id: NodeId) -> Option<usize> {
        match &self.watched {
            None => Some(id.index()),
            Some(w) => w.binary_search(&id).ok(),
        }
    }

    /// The signal at the named node (input port, gate output, or output
    /// port).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownNode`] if the name does not resolve
    /// and [`SimError::NotWatched`] if the run recorded selectively and
    /// the node was not watched.
    pub fn signal(&self, name: &str) -> Result<&Signal, SimError> {
        let id = self
            .names
            .get(name)
            .copied()
            .ok_or_else(|| SimError::UnknownNode {
                name: name.to_owned(),
            })?;
        self.slot(id)
            .map(|s| &self.node_signals[s])
            .ok_or_else(|| SimError::NotWatched {
                name: name.to_owned(),
            })
    }

    /// The signal at a node id; the zero signal if the node was not
    /// watched.
    #[must_use]
    pub fn node_signal(&self, id: NodeId) -> &Signal {
        self.slot(id).map_or(&self.zero, |s| &self.node_signals[s])
    }

    /// The signal delivered at the *output* of an edge's channel; the
    /// zero signal if the run recorded selectively (watch sets record
    /// no edges).
    #[must_use]
    pub fn edge_signal(&self, id: EdgeId) -> &Signal {
        if self.watched.is_some() {
            &self.zero
        } else {
            &self.edge_signals[id.index()]
        }
    }

    /// Moves the named signal out of the result (no clone). Subsequent
    /// reads of the same node see the zero signal.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownNode`] if the name does not resolve
    /// and [`SimError::NotWatched`] if the node was not watched.
    pub fn take_signal(&mut self, name: &str) -> Result<Signal, SimError> {
        let id = self
            .names
            .get(name)
            .copied()
            .ok_or_else(|| SimError::UnknownNode {
                name: name.to_owned(),
            })?;
        match self.slot(id) {
            Some(s) => Ok(std::mem::replace(&mut self.node_signals[s], Signal::zero())),
            None => Err(SimError::NotWatched {
                name: name.to_owned(),
            }),
        }
    }

    /// Moves a node's signal out of the result (no clone). Subsequent
    /// reads of the same node see the zero signal; an unwatched node
    /// yields the zero signal.
    #[must_use]
    pub fn take_node_signal(&mut self, id: NodeId) -> Signal {
        match self.slot(id) {
            Some(s) => std::mem::replace(&mut self.node_signals[s], Signal::zero()),
            None => Signal::zero(),
        }
    }

    /// Moves an edge's delivered signal out of the result (no clone).
    /// Subsequent reads of the same edge see the zero signal; under
    /// selective recording the zero signal is all there is.
    #[must_use]
    pub fn take_edge_signal(&mut self, id: EdgeId) -> Signal {
        if self.watched.is_some() {
            Signal::zero()
        } else {
            std::mem::replace(&mut self.edge_signals[id.index()], Signal::zero())
        }
    }

    /// The simulation horizon this run used.
    #[must_use]
    pub fn horizon(&self) -> f64 {
        self.horizon
    }

    /// Number of events delivered.
    #[must_use]
    pub fn processed_events(&self) -> usize {
        self.processed_events
    }

    /// Number of events scheduled (delivered + cancelled + beyond the
    /// horizon); this is what [`Simulator::with_max_events`] budgets.
    #[must_use]
    pub fn scheduled_events(&self) -> usize {
        self.scheduled_events
    }

    /// Number of transitions the [transition
    /// cap](Simulator::set_transition_cap) refused to record this run
    /// (0 when uncapped or under the cap). The recorded waveforms are
    /// exact prefixes; a non-zero count means tails were truncated.
    #[must_use]
    pub fn dropped_transitions(&self) -> usize {
        self.dropped_transitions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::GateKind;
    use crate::graph::CircuitBuilder;
    use ivl_core::channel::{Channel, InertialDelay, InvolutionChannel, PureDelay};
    use ivl_core::delay::ExpChannel;

    fn pure(d: f64) -> PureDelay {
        PureDelay::new(d).unwrap()
    }

    #[test]
    fn wire_through() {
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let y = b.output("y");
        b.connect_direct(a, y, 0).unwrap();
        let mut sim = Simulator::new(b.build().unwrap());
        let s = Signal::pulse(1.0, 2.0).unwrap();
        sim.set_input("a", s.clone()).unwrap();
        let run = sim.run(10.0).unwrap();
        assert_eq!(run.signal("y").unwrap(), &s);
        assert_eq!(run.signal("a").unwrap(), &s);
        assert_eq!(run.processed_events(), 2);
        assert_eq!(run.scheduled_events(), 2);
        assert_eq!(run.dropped_transitions(), 0);
    }

    #[test]
    fn inverter_with_pure_delay() {
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let g = b.gate("inv", GateKind::Not, Bit::One);
        let y = b.output("y");
        b.connect_direct(a, g, 0).unwrap();
        b.connect(g, y, 0, pure(1.5)).unwrap();
        let mut sim = Simulator::new(b.build().unwrap());
        sim.set_input("a", Signal::pulse(1.0, 2.0).unwrap())
            .unwrap();
        let run = sim.run(10.0).unwrap();
        let y_sig = run.signal("y").unwrap();
        assert_eq!(y_sig.initial(), Bit::One);
        // input rises at 1 → inv falls at 1 → y falls at 2.5
        assert!(y_sig.approx_eq(
            &Signal::new(
                Bit::One,
                vec![
                    Transition::new(2.5, Bit::Zero),
                    Transition::new(4.5, Bit::One)
                ]
            )
            .unwrap(),
            1e-12
        ));
    }

    #[test]
    fn set_input_validation() {
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let y = b.output("y");
        b.connect_direct(a, y, 0).unwrap();
        let mut sim = Simulator::new(b.build().unwrap());
        assert!(matches!(
            sim.set_input("nope", Signal::zero()),
            Err(SimError::UnknownPort { .. })
        ));
        assert!(matches!(
            sim.set_input("y", Signal::zero()),
            Err(SimError::UnknownPort { .. })
        ));
        assert!(matches!(
            sim.set_input("a", Signal::pulse(-1.0, 0.5).unwrap()),
            Err(SimError::InputViolatesS1 { .. })
        ));
    }

    #[test]
    fn inconsistent_initial_value_fires_at_zero() {
        // NOT gate with initial 0 and input initial 0 → function value 1,
        // so the output must transition to 1 at t = 0
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let g = b.gate("inv", GateKind::Not, Bit::Zero);
        let y = b.output("y");
        b.connect_direct(a, g, 0).unwrap();
        b.connect(g, y, 0, pure(1.0)).unwrap();
        let mut sim = Simulator::new(b.build().unwrap());
        let run = sim.run(10.0).unwrap();
        let g_sig = run.signal("inv").unwrap();
        assert_eq!(g_sig.transitions(), &[Transition::new(0.0, Bit::One)]);
        let y_sig = run.signal("y").unwrap();
        assert_eq!(y_sig.transitions(), &[Transition::new(1.0, Bit::One)]);
    }

    #[test]
    fn two_gate_pipeline_matches_batch_channels() {
        // circuit: a -> inv1 -(involution)-> inv2 -(involution)-> y
        // must equal applying the channels in sequence with gate logic
        let d = ExpChannel::new(1.0, 0.5, 0.45).unwrap();
        let input = Signal::pulse_train([(0.0, 3.0), (5.0, 1.2), (8.0, 0.9)]).unwrap();

        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let g1 = b.gate("inv1", GateKind::Not, Bit::One);
        let g2 = b.gate("inv2", GateKind::Not, Bit::Zero);
        let y = b.output("y");
        b.connect_direct(a, g1, 0).unwrap();
        b.connect(g1, g2, 0, InvolutionChannel::new(d.clone()))
            .unwrap();
        b.connect(g2, y, 0, InvolutionChannel::new(d.clone()))
            .unwrap();
        let mut sim = Simulator::new(b.build().unwrap());
        sim.set_input("a", input.clone()).unwrap();
        let run = sim.run(100.0).unwrap();

        // reference: batch evaluation
        let mut c1 = InvolutionChannel::new(d.clone());
        let mut c2 = InvolutionChannel::new(d);
        let ref_out = c2.apply(&c1.apply(&input.complemented()).complemented());
        assert!(
            run.signal("y").unwrap().approx_eq(&ref_out, 1e-9),
            "sim: {}\nref: {}",
            run.signal("y").unwrap(),
            ref_out
        );
    }

    #[test]
    fn feedback_or_latches() {
        // the storage loop of Fig. 5 with a pure-delay channel: a pulse
        // latches the OR output to 1 forever
        let mut b = CircuitBuilder::new();
        let i = b.input("i");
        let or = b.gate("or", GateKind::Or, Bit::Zero);
        let y = b.output("y");
        b.connect_direct(i, or, 0).unwrap();
        b.connect(or, or, 1, pure(1.0)).unwrap();
        b.connect(or, y, 0, pure(0.5)).unwrap();
        let mut sim = Simulator::new(b.build().unwrap());
        sim.set_input("i", Signal::pulse(0.0, 2.0).unwrap())
            .unwrap();
        let run = sim.run(50.0).unwrap();
        let or_sig = run.signal("or").unwrap();
        assert_eq!(
            or_sig.transitions(),
            &[Transition::new(0.0, Bit::One)],
            "latched high: {or_sig}"
        );
        assert_eq!(run.signal("y").unwrap().final_value(), Bit::One);
    }

    #[test]
    fn feedback_or_oscillates_with_short_loop_pulse() {
        // pure-delay feedback with a pulse shorter than the loop delay
        // produces a periodic pulse train at the OR output
        let mut b = CircuitBuilder::new();
        let i = b.input("i");
        let or = b.gate("or", GateKind::Or, Bit::Zero);
        let y = b.output("y");
        b.connect_direct(i, or, 0).unwrap();
        b.connect(or, or, 1, pure(2.0)).unwrap();
        b.connect(or, y, 0, pure(0.5)).unwrap();
        let mut sim = Simulator::new(b.build().unwrap());
        sim.set_input("i", Signal::pulse(0.0, 0.5).unwrap())
            .unwrap();
        let run = sim.run(20.5).unwrap();
        let or_sig = run.signal("or").unwrap();
        // pulses at 0, 2, 4, … each 0.5 wide → 2 transitions per period
        assert!(or_sig.len() >= 20, "oscillation expected: {or_sig}");
        let stats = ivl_core::PulseStats::of(or_sig);
        assert!((stats.min_period().unwrap() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn max_events_guard_fires() {
        let mut b = CircuitBuilder::new();
        let i = b.input("i");
        let or = b.gate("or", GateKind::Or, Bit::Zero);
        let y = b.output("y");
        b.connect_direct(i, or, 0).unwrap();
        b.connect(or, or, 1, pure(0.001)).unwrap();
        b.connect(or, y, 0, pure(0.5)).unwrap();
        let mut sim = Simulator::new(b.build().unwrap()).with_max_events(100);
        sim.set_input("i", Signal::pulse(0.0, 0.0005).unwrap())
            .unwrap();
        assert!(matches!(
            sim.run(1e9),
            Err(SimError::MaxEventsExceeded { .. })
        ));
    }

    #[test]
    fn scheduled_churn_counts_against_budget() {
        // 200 pulses, every one of them rejected by the inertial window:
        // each pulse schedules an output transition and then cancels it,
        // so *nothing is ever delivered*. A budget that only counted
        // delivered events would never trip on this workload.
        let mut b = CircuitBuilder::new();
        let i = b.input("i");
        let g = b.gate("buf", GateKind::Buf, Bit::Zero);
        let y = b.output("y");
        b.connect(i, g, 0, InertialDelay::new(1.0, 10.0).unwrap())
            .unwrap();
        b.connect(g, y, 0, pure(0.5)).unwrap();
        let mut sim = Simulator::new(b.build().unwrap()).with_max_events(50);
        let input = Signal::pulse_train((0..200).map(|k| (k as f64 * 20.0, 0.5))).unwrap();
        sim.set_input("i", input.clone()).unwrap();
        assert!(matches!(
            sim.run(1e9),
            Err(SimError::MaxEventsExceeded { .. })
        ));

        // with a budget large enough the same run completes, delivering
        // nothing: pure scheduled-then-cancelled churn
        let mut sim = Simulator::new(
            {
                let mut b = CircuitBuilder::new();
                let i = b.input("i");
                let g = b.gate("buf", GateKind::Buf, Bit::Zero);
                let y = b.output("y");
                b.connect(i, g, 0, InertialDelay::new(1.0, 10.0).unwrap())
                    .unwrap();
                b.connect(g, y, 0, pure(0.5)).unwrap();
                b.build().unwrap()
            },
            // default budget
        );
        sim.set_input("i", input).unwrap();
        let run = sim.run(1e9).unwrap();
        assert_eq!(run.processed_events(), 0);
        assert_eq!(run.scheduled_events(), 200);
        assert!(run.signal("y").unwrap().is_zero());
    }

    #[test]
    fn multi_input_gate_and_fanout() {
        // y = a AND b, z = NOT(a AND b), both fed from one AND gate
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let bb = b.input("b");
        let and = b.gate("and", GateKind::And, Bit::Zero);
        let inv = b.gate("inv", GateKind::Not, Bit::One);
        let y = b.output("y");
        let z = b.output("z");
        b.connect_direct(a, and, 0).unwrap();
        b.connect_direct(bb, and, 1).unwrap();
        b.connect(and, y, 0, pure(0.1)).unwrap();
        b.connect(and, inv, 0, pure(0.1)).unwrap();
        b.connect(inv, z, 0, pure(0.1)).unwrap();
        let mut sim = Simulator::new(b.build().unwrap());
        sim.set_input("a", Signal::pulse(0.0, 4.0).unwrap())
            .unwrap();
        sim.set_input("b", Signal::pulse(2.0, 4.0).unwrap())
            .unwrap();
        let run = sim.run(10.0).unwrap();
        // overlap is [2, 4)
        assert!(run
            .signal("y")
            .unwrap()
            .approx_eq(&Signal::pulse(2.1, 2.0).unwrap(), 1e-12));
        let z_sig = run.signal("z").unwrap();
        assert_eq!(z_sig.initial(), Bit::One);
        assert_eq!(z_sig.value_at(3.0), Bit::Zero);
        assert_eq!(z_sig.final_value(), Bit::One);
    }

    #[test]
    fn edge_signals_are_recorded() {
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let g = b.gate("buf", GateKind::Buf, Bit::Zero);
        let y = b.output("y");
        b.connect_direct(a, g, 0).unwrap();
        let e = b.connect(g, y, 0, pure(1.0)).unwrap();
        let mut sim = Simulator::new(b.build().unwrap());
        sim.set_input("a", Signal::pulse(0.0, 1.0).unwrap())
            .unwrap();
        let run = sim.run(10.0).unwrap();
        assert!(run
            .edge_signal(e)
            .approx_eq(&Signal::pulse(1.0, 1.0).unwrap(), 1e-12));
    }

    #[test]
    fn horizon_truncates() {
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let y = b.output("y");
        b.connect_direct(a, y, 0).unwrap();
        let mut sim = Simulator::new(b.build().unwrap());
        sim.set_input("a", Signal::pulse_train([(0.0, 1.0), (5.0, 1.0)]).unwrap())
            .unwrap();
        let run = sim.run(3.0).unwrap();
        assert_eq!(run.signal("y").unwrap().len(), 2);
        assert_eq!(run.horizon(), 3.0);
    }

    #[test]
    fn rerun_with_different_input() {
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let g = b.gate("inv", GateKind::Not, Bit::One);
        let y = b.output("y");
        b.connect_direct(a, g, 0).unwrap();
        b.connect(
            g,
            y,
            0,
            InvolutionChannel::new(ExpChannel::new(1.0, 0.5, 0.5).unwrap()),
        )
        .unwrap();
        let mut sim = Simulator::new(b.build().unwrap());
        sim.set_input("a", Signal::pulse(0.0, 5.0).unwrap())
            .unwrap();
        let first = sim.run(20.0).unwrap();
        sim.set_input("a", Signal::pulse(1.0, 5.0).unwrap())
            .unwrap();
        let second = sim.run(20.0).unwrap();
        assert!(second
            .signal("y")
            .unwrap()
            .approx_eq(&first.signal("y").unwrap().shifted(1.0), 1e-9));
    }

    #[test]
    fn reused_state_matches_fresh_simulator() {
        // the SimState is rebuilt in place between runs; a reused
        // simulator must agree bitwise with a freshly constructed one
        let d = ExpChannel::new(1.0, 0.5, 0.5).unwrap();
        let build = || {
            let mut b = CircuitBuilder::new();
            let a = b.input("a");
            let g1 = b.gate("inv1", GateKind::Not, Bit::One);
            let g2 = b.gate("inv2", GateKind::Not, Bit::Zero);
            let y = b.output("y");
            b.connect_direct(a, g1, 0).unwrap();
            b.connect(g1, g2, 0, InvolutionChannel::new(d.clone()))
                .unwrap();
            b.connect(g2, y, 0, InvolutionChannel::new(d.clone()))
                .unwrap();
            b.build().unwrap()
        };
        let input = Signal::pulse_train([(0.0, 2.0), (5.0, 0.8)]).unwrap();

        let mut reused = Simulator::new(build());
        reused.set_input("a", input.clone()).unwrap();
        let warmup = reused.run(100.0).unwrap();
        let second = reused.run(100.0).unwrap();

        let mut fresh = Simulator::new(build());
        fresh.set_input("a", input).unwrap();
        let reference = fresh.run(100.0).unwrap();

        for name in ["a", "inv1", "inv2", "y"] {
            assert_eq!(
                warmup.signal(name).unwrap(),
                reference.signal(name).unwrap()
            );
            assert_eq!(
                second.signal(name).unwrap(),
                reference.signal(name).unwrap()
            );
        }
        assert_eq!(warmup.processed_events(), reference.processed_events());
        assert_eq!(second.processed_events(), reference.processed_events());
    }

    #[test]
    fn event_pool_capacity_is_stable_across_runs() {
        // the pool recycles slots: repeated identical runs must not grow
        // the slab
        let mut b = CircuitBuilder::new();
        let i = b.input("i");
        let or = b.gate("or", GateKind::Or, Bit::Zero);
        let y = b.output("y");
        b.connect_direct(i, or, 0).unwrap();
        b.connect(or, or, 1, pure(2.0)).unwrap();
        b.connect(or, y, 0, pure(0.5)).unwrap();
        let mut sim = Simulator::new(b.build().unwrap());
        sim.set_input("i", Signal::pulse(0.0, 0.5).unwrap())
            .unwrap();
        sim.run(200.5).unwrap();
        let after_warmup = sim.event_pool_capacity();
        assert!(after_warmup > 0);
        for _ in 0..3 {
            sim.run(200.5).unwrap();
            assert_eq!(sim.event_pool_capacity(), after_warmup);
        }
    }

    #[test]
    fn reset_inputs_restores_zero_signals() {
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let y = b.output("y");
        b.connect_direct(a, y, 0).unwrap();
        let mut sim = Simulator::new(b.build().unwrap());
        sim.set_input("a", Signal::pulse(1.0, 2.0).unwrap())
            .unwrap();
        sim.reset_inputs();
        let run = sim.run(10.0).unwrap();
        assert!(run.signal("y").unwrap().is_zero());
    }

    #[test]
    fn cloned_simulator_runs_independently() {
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let g = b.gate("inv", GateKind::Not, Bit::One);
        let y = b.output("y");
        b.connect_direct(a, g, 0).unwrap();
        b.connect(g, y, 0, pure(1.0)).unwrap();
        let mut sim = Simulator::new(b.build().unwrap());
        sim.set_input("a", Signal::pulse(0.0, 2.0).unwrap())
            .unwrap();
        let mut clone = sim.clone();
        let original = sim.run(10.0).unwrap();
        let cloned = clone.run(10.0).unwrap();
        assert_eq!(original.signal("y").unwrap(), cloned.signal("y").unwrap());
    }

    #[test]
    fn watched_run_matches_full_run_on_watched_nodes() {
        // selective recording must not change what is simulated: the
        // watched waveforms agree bitwise with a full-recording run
        let d = ExpChannel::new(1.0, 0.5, 0.5).unwrap();
        let build = || {
            let mut b = CircuitBuilder::new();
            let a = b.input("a");
            let g1 = b.gate("inv1", GateKind::Not, Bit::One);
            let g2 = b.gate("inv2", GateKind::Not, Bit::Zero);
            let y = b.output("y");
            b.connect_direct(a, g1, 0).unwrap();
            b.connect(g1, g2, 0, InvolutionChannel::new(d.clone()))
                .unwrap();
            b.connect(g2, y, 0, InvolutionChannel::new(d.clone()))
                .unwrap();
            b.build().unwrap()
        };
        let input = Signal::pulse_train([(0.0, 2.0), (5.0, 0.8)]).unwrap();

        let mut full = Simulator::new(build());
        full.reseed_noise(7);
        full.set_input("a", input.clone()).unwrap();
        let full_run = full.run(100.0).unwrap();

        let mut watched = Simulator::new(build()).with_watch(["y", "inv1"]).unwrap();
        watched.reseed_noise(7);
        watched.set_input("a", input).unwrap();
        let sel_run = watched.run(100.0).unwrap();

        for name in ["y", "inv1"] {
            assert_eq!(
                full_run.signal(name).unwrap(),
                sel_run.signal(name).unwrap()
            );
        }
        assert_eq!(
            full_run.processed_events(),
            sel_run.processed_events(),
            "watching must not change event processing"
        );
        // unwatched queries: typed error by name, zero signal by id
        assert!(matches!(
            sel_run.signal("inv2"),
            Err(SimError::NotWatched { .. })
        ));
        assert!(matches!(
            sel_run.signal("ghost"),
            Err(SimError::UnknownNode { .. })
        ));
        let g2 = watched.circuit().node("inv2").unwrap();
        assert!(sel_run.node_signal(g2).is_zero());
        assert!(sel_run.edge_signal(EdgeId(1)).is_zero());
    }

    #[test]
    fn watch_rejects_unknown_names() {
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let y = b.output("y");
        b.connect_direct(a, y, 0).unwrap();
        let mut sim = Simulator::new(b.build().unwrap());
        assert!(matches!(
            sim.set_watch(["nope"]),
            Err(SimError::UnknownNode { .. })
        ));
        sim.set_watch(["y"]).unwrap();
        sim.clear_watch();
        sim.set_input("a", Signal::pulse(0.0, 1.0).unwrap())
            .unwrap();
        let run = sim.run(10.0).unwrap();
        // clear_watch restores full recording
        assert!(run.signal("a").is_ok());
    }

    #[test]
    fn transition_cap_truncates_and_counts() {
        // oscillator producing ~20 transitions at the OR gate; a cap of
        // 4 must keep exactly the first 4 and count the rest
        let mut b = CircuitBuilder::new();
        let i = b.input("i");
        let or = b.gate("or", GateKind::Or, Bit::Zero);
        let y = b.output("y");
        b.connect_direct(i, or, 0).unwrap();
        b.connect(or, or, 1, pure(2.0)).unwrap();
        b.connect(or, y, 0, pure(0.5)).unwrap();
        let build_input = Signal::pulse(0.0, 0.5).unwrap();

        let mut uncapped = Simulator::new({
            let mut b2 = CircuitBuilder::new();
            let i = b2.input("i");
            let or = b2.gate("or", GateKind::Or, Bit::Zero);
            let y = b2.output("y");
            b2.connect_direct(i, or, 0).unwrap();
            b2.connect(or, or, 1, pure(2.0)).unwrap();
            b2.connect(or, y, 0, pure(0.5)).unwrap();
            b2.build().unwrap()
        });
        uncapped.set_input("i", build_input.clone()).unwrap();
        let full = uncapped.run(20.5).unwrap();
        let full_or = full.signal("or").unwrap().clone();
        assert!(full_or.len() > 4);

        let mut sim = Simulator::new(b.build().unwrap()).with_transition_cap(4);
        sim.set_input("i", build_input).unwrap();
        let run = sim.run(20.5).unwrap();
        let capped = run.signal("or").unwrap();
        assert_eq!(capped.len(), 4);
        assert_eq!(capped.transitions(), &full_or.transitions()[..4]);
        assert!(run.dropped_transitions() > 0);
        // event processing itself is unaffected by the cap
        assert_eq!(run.processed_events(), full.processed_events());
    }

    #[test]
    fn causality_violation_is_detected_not_miscomputed() {
        // An adversary far beyond any sane bound can shift an output
        // before an already *delivered* transition. Batch evaluation
        // handles this (the model is non-causal there); event-driven
        // simulation must refuse with a CausalityViolation instead of
        // silently producing wrong waveforms.
        use ivl_core::channel::EtaInvolutionChannel;
        use ivl_core::noise::{EtaBounds, RecordedChoices};

        let d = ExpChannel::new(1.0, 0.5, 0.5).unwrap();
        let bounds = EtaBounds::new(10.0, 10.0).unwrap(); // no (C) here!
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let g = b.gate("buf", GateKind::Buf, Bit::Zero);
        let y = b.output("y");
        b.connect_direct(a, g, 0).unwrap();
        // first transition unshifted (delivered at ≈1.19), second shifted
        // 9 time units early: lands at ≈ −3.3, before the committed one
        b.connect(
            g,
            y,
            0,
            EtaInvolutionChannel::new(d, bounds, RecordedChoices::new(vec![0.0, -9.0])),
        )
        .unwrap();
        let mut sim = Simulator::new(b.build().unwrap());
        sim.set_input("a", Signal::pulse(0.0, 5.0).unwrap())
            .unwrap();
        assert!(matches!(
            sim.run(100.0),
            Err(SimError::CausalityViolation { .. })
        ));
    }

    #[test]
    fn replace_channel_is_a_slot_swap_not_a_netlist_clone() {
        // the SPF circuit swaps a fresh noise channel in per simulate
        // call; that must not detach the simulator's circuit from the
        // shared topology (i.e. no netlist re-clone)
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let g = b.gate("buf", GateKind::Buf, Bit::Zero);
        let y = b.output("y");
        b.connect_direct(a, g, 0).unwrap();
        let e = b.connect(g, y, 0, pure(1.0)).unwrap();
        let circuit = b.build().unwrap();
        let template = circuit.clone();
        let mut sim = Simulator::new(circuit);
        sim.set_input("a", Signal::pulse(0.0, 1.0).unwrap())
            .unwrap();
        let before = sim.run(10.0).unwrap();
        sim.replace_channel(e, Box::new(pure(2.0)));
        assert!(sim.circuit().shares_topology_with(&template));
        let after = sim.run(10.0).unwrap();
        assert!(before
            .signal("y")
            .unwrap()
            .approx_eq(&Signal::pulse(1.0, 1.0).unwrap(), 1e-12));
        assert!(after
            .signal("y")
            .unwrap()
            .approx_eq(&Signal::pulse(2.0, 1.0).unwrap(), 1e-12));
    }

    #[test]
    fn auto_probe_resolves_to_a_concrete_backend() {
        // Auto must (a) run probes on concrete backends and (b) commit
        // after one untimed cold run plus one heap + one wheel
        // measurement on a workload big enough to time
        let mut b = CircuitBuilder::new();
        let i = b.input("i");
        let or = b.gate("or", GateKind::Or, Bit::Zero);
        let y = b.output("y");
        b.connect_direct(i, or, 0).unwrap();
        b.connect(or, or, 1, pure(2.0)).unwrap();
        b.connect(or, y, 0, pure(0.5)).unwrap();
        let mut sim = Simulator::new(b.build().unwrap()).with_queue_backend(QueueBackend::Auto);
        sim.set_input("i", Signal::pulse(0.0, 0.5).unwrap())
            .unwrap();
        assert_eq!(sim.queue_backend(), QueueBackend::Auto);
        assert_eq!(sim.effective_backend(), QueueBackend::Heap);
        let first = sim.run(200.5).unwrap();
        // the cold run is untimed: the heap is still being measured
        assert_eq!(sim.effective_backend(), QueueBackend::Heap);
        let second = sim.run(200.5).unwrap();
        assert_eq!(sim.effective_backend(), QueueBackend::Calendar);
        let third = sim.run(200.5).unwrap();
        let resolved = sim.effective_backend();
        assert_ne!(resolved, QueueBackend::Auto);
        let fourth = sim.run(200.5).unwrap();
        assert_eq!(sim.effective_backend(), resolved, "choice is committed");
        // and the probe phases are invisible in the results
        for run in [&second, &third, &fourth] {
            assert_eq!(first.signal("y").unwrap(), run.signal("y").unwrap());
            assert_eq!(first.processed_events(), run.processed_events());
        }
    }

    #[test]
    fn auto_probe_commits_wheel_on_cancel_heavy_workloads() {
        // every pulse is absorbed by the inertial window → ~100% cancel
        // rate → the wheel is committed straight from the heap probe's
        // accumulated counts, without ever timing the wheel
        let mut b = CircuitBuilder::new();
        let i = b.input("i");
        let g = b.gate("buf", GateKind::Buf, Bit::Zero);
        let y = b.output("y");
        b.connect(i, g, 0, InertialDelay::new(1.0, 10.0).unwrap())
            .unwrap();
        b.connect(g, y, 0, pure(0.5)).unwrap();
        let mut sim = Simulator::new(b.build().unwrap()).with_queue_backend(QueueBackend::Auto);
        let input = Signal::pulse_train((0..100).map(|k| (k as f64 * 20.0, 0.5))).unwrap();
        sim.set_input("i", input).unwrap();
        sim.run(1e9).unwrap();
        assert_eq!(sim.effective_backend(), QueueBackend::Calendar);
    }

    #[test]
    fn auto_probe_amortizes_tiny_runs_on_the_heap() {
        // a single run scheduling fewer than MIN_EVENTS events must not
        // resolve the probe — short noisy measurements are exactly how
        // the wheel used to get mispredicted onto losing topologies —
        // and while unmeasured, the backend in use must be the
        // reference heap, so `Auto` cannot lose to it. Evidence
        // accumulates across runs, so enough tiny runs still resolve
        // the probe instead of measuring forever.
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let y = b.output("y");
        b.connect_direct(a, y, 0).unwrap();
        let mut sim = Simulator::new(b.build().unwrap()).with_queue_backend(QueueBackend::Auto);
        sim.set_input("a", Signal::pulse(0.0, 1.0).unwrap())
            .unwrap();
        for _ in 0..4 {
            sim.run(10.0).unwrap();
            // still accumulating heap evidence: the heap stays in use
            assert_eq!(sim.effective_backend(), QueueBackend::Heap);
        }
        // with enough tiny runs the heap evidence reaches MIN_EVENTS
        // and the probe moves on to the wheel — it is not stuck
        let moved_on = (0..400).any(|_| {
            sim.run(10.0).unwrap();
            sim.effective_backend() == QueueBackend::Calendar
        });
        assert!(moved_on, "accumulated tiny runs never measured the heap");
    }

    #[test]
    fn debug_impl() {
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let y = b.output("y");
        b.connect_direct(a, y, 0).unwrap();
        let sim = Simulator::new(b.build().unwrap());
        assert!(!format!("{sim:?}").is_empty());
        assert_eq!(sim.circuit().node_count(), 2);
    }
}
