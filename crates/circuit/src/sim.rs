//! The event-driven simulator.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::fmt;

use ivl_core::channel::FeedEffect;
use ivl_core::{Bit, Signal, SignalBuilder, Transition};

use crate::error::SimError;
use crate::graph::{Circuit, Connection, EdgeId, NodeId, NodeKind};

/// Heap key ordering events by time, then by creation sequence (so causes
/// precede effects at equal times and runs are deterministic).
#[derive(Debug, Clone, Copy, PartialEq)]
struct HeapKey {
    time: f64,
    seq: usize,
}

impl Eq for HeapKey {}

impl PartialOrd for HeapKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .total_cmp(&other.time)
            .then(self.seq.cmp(&other.seq))
    }
}

struct Event {
    time: f64,
    edge: usize,
    value: Bit,
    valid: bool,
    delivered: bool,
}

/// Event-driven simulator over a [`Circuit`].
///
/// Owns the circuit (and hence the channels' adversary/noise state).
/// Typical use: [`set_input`](Simulator::set_input) for every input port,
/// then [`run`](Simulator::run). Re-running resets channel history but
/// deliberately *not* noise RNG streams, so repeated runs explore fresh
/// adversary choices.
pub struct Simulator {
    circuit: Circuit,
    inputs: Vec<Signal>,
    max_events: usize,
}

impl Simulator {
    /// Creates a simulator; all inputs default to the zero signal.
    #[must_use]
    pub fn new(circuit: Circuit) -> Self {
        let inputs = vec![Signal::zero(); circuit.node_count()];
        Simulator {
            circuit,
            inputs,
            max_events: 10_000_000,
        }
    }

    /// Caps the number of processed events per run (guards against
    /// unbounded oscillation; default 10 million).
    #[must_use]
    pub fn with_max_events(mut self, max_events: usize) -> Self {
        self.max_events = max_events;
        self
    }

    /// The circuit under simulation.
    #[must_use]
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// Assigns the signal of an input port.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownPort`] if `name` is not an input port
    /// and [`SimError::InputViolatesS1`] if the signal has transitions
    /// before time 0.
    pub fn set_input(&mut self, name: &str, signal: Signal) -> Result<(), SimError> {
        let id = self
            .circuit
            .node(name)
            .filter(|id| matches!(self.circuit.node_kind(*id), NodeKind::Input))
            .ok_or_else(|| SimError::UnknownPort {
                name: name.to_owned(),
            })?;
        if !signal.satisfies_s1() {
            return Err(SimError::InputViolatesS1 {
                name: name.to_owned(),
            });
        }
        self.inputs[id.index()] = signal;
        Ok(())
    }

    /// Runs the simulation up to and including time `horizon`.
    ///
    /// Events scheduled after the horizon are discarded; an oscillating
    /// circuit simply yields signals truncated at the horizon.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CausalityViolation`] if a channel's output
    /// would land in the simulation's past (adversary bounds too large
    /// for event-driven evaluation) and [`SimError::MaxEventsExceeded`]
    /// if the event budget runs out before the horizon.
    pub fn run(&mut self, horizon: f64) -> Result<SimResult, SimError> {
        let n_nodes = self.circuit.node_count();
        let n_edges = self.circuit.edge_count();

        // reset channel history
        for e in &mut self.circuit.edges {
            if let Connection::Channel(ch) = &mut e.conn {
                ch.reset();
            }
        }

        // node state
        let mut node_initial: Vec<Bit> = (0..n_nodes)
            .map(|i| match self.circuit.node_kind(NodeId(i)) {
                NodeKind::Input => self.inputs[i].initial(),
                NodeKind::Gate { initial, .. } => *initial,
                // output ports inherit their (unique) driver's initial
                NodeKind::Output => Bit::Zero, // fixed up below
            })
            .collect();
        // pin values: driver's initial value propagated (channels keep
        // the initial value)
        let mut pins: Vec<Vec<Bit>> = (0..n_nodes)
            .map(|i| match self.circuit.node_kind(NodeId(i)) {
                NodeKind::Gate { arity, .. } => vec![Bit::Zero; *arity],
                NodeKind::Output => vec![Bit::Zero; 1],
                NodeKind::Input => Vec::new(),
            })
            .collect();
        for e in &self.circuit.edges {
            pins[e.to.index()][e.pin] = node_initial[e.from.index()];
        }
        for i in 0..n_nodes {
            if matches!(self.circuit.node_kind(NodeId(i)), NodeKind::Output) {
                node_initial[i] = pins[i][0];
            }
        }

        let mut out_value = node_initial.clone();
        let mut node_rec: Vec<SignalBuilder> = node_initial
            .iter()
            .map(|&v| SignalBuilder::new(v))
            .collect();
        let mut edge_rec: Vec<SignalBuilder> = self
            .circuit
            .edges
            .iter()
            .map(|e| SignalBuilder::new(node_initial[e.from.index()]))
            .collect();

        // event machinery
        let mut events: Vec<Event> = Vec::new();
        let mut heap: BinaryHeap<Reverse<HeapKey>> = BinaryHeap::new();
        let mut edge_pending: Vec<VecDeque<usize>> = vec![VecDeque::new(); n_edges];

        // `schedule` and `feed_edge` as closures over the state would
        // fight the borrow checker; use small fns taking explicit state.
        struct Queue<'a> {
            events: &'a mut Vec<Event>,
            heap: &'a mut BinaryHeap<Reverse<HeapKey>>,
            edge_pending: &'a mut Vec<VecDeque<usize>>,
        }
        impl Queue<'_> {
            fn schedule(&mut self, edge: usize, tr: Transition) {
                let id = self.events.len();
                self.events.push(Event {
                    time: tr.time,
                    edge,
                    value: tr.value,
                    valid: true,
                    delivered: false,
                });
                self.heap.push(Reverse(HeapKey {
                    time: tr.time,
                    seq: id,
                }));
                self.edge_pending[edge].push_back(id);
            }

            /// Applies a channel feed effect for `edge`; `now` is the
            /// current simulation time (`None` during pre-scheduling of
            /// input-port signals, when causality cannot be violated).
            fn apply(
                &mut self,
                edge: usize,
                effect: FeedEffect,
                now: Option<f64>,
            ) -> Result<(), SimError> {
                match effect {
                    FeedEffect::Scheduled(tr) => {
                        if let Some(now) = now {
                            if tr.time <= now {
                                return Err(SimError::CausalityViolation { time: now, edge });
                            }
                        }
                        self.schedule(edge, tr);
                        Ok(())
                    }
                    FeedEffect::CancelledPair { cancelled } => {
                        let id = self.edge_pending[edge].pop_back().ok_or(
                            SimError::CausalityViolation {
                                time: now.unwrap_or(cancelled.time),
                                edge,
                            },
                        )?;
                        let ev = &mut self.events[id];
                        debug_assert_eq!(ev.time, cancelled.time);
                        if ev.delivered {
                            return Err(SimError::CausalityViolation {
                                time: now.unwrap_or(cancelled.time),
                                edge,
                            });
                        }
                        ev.valid = false;
                        Ok(())
                    }
                    FeedEffect::Dropped => Ok(()),
                }
            }
        }

        let mut queue = Queue {
            events: &mut events,
            heap: &mut heap,
            edge_pending: &mut edge_pending,
        };

        // Pre-schedule all input-port signals. A channel driven by an
        // input port sees exactly that port's transitions, so feeding
        // them all upfront is equivalent to feeding them in global time
        // order.
        for (i, rec) in node_rec.iter_mut().enumerate() {
            if !matches!(self.circuit.node_kind(NodeId(i)), NodeKind::Input) {
                continue;
            }
            let signal = self.inputs[i].clone();
            for eid in self.circuit.outgoing[i].clone() {
                let edge = &mut self.circuit.edges[eid.index()];
                match &mut edge.conn {
                    Connection::Direct => {
                        for tr in &signal {
                            queue.schedule(eid.index(), *tr);
                        }
                    }
                    Connection::Channel(ch) => {
                        for tr in &signal {
                            let effect = ch.feed(*tr);
                            queue.apply(eid.index(), effect, None)?;
                        }
                    }
                }
            }
            // record the input signal itself
            for tr in &signal {
                rec.push(*tr).expect("input signal is already validated");
            }
        }

        // main loop: process batches of equal-time events, then evaluate
        // affected gates, then feed their output transitions onward.
        let mut processed = 0usize;
        let mut dirty: Vec<usize> = (0..n_nodes)
            .filter(|&i| matches!(self.circuit.node_kind(NodeId(i)), NodeKind::Gate { .. }))
            .collect();
        let mut dirty_flag = vec![false; n_nodes];
        for &i in &dirty {
            dirty_flag[i] = true;
        }
        // the initial batch runs at t = 0 to surface inconsistent gate
        // initial values (the paper lets a gate's declared initial value
        // disagree with its function; the mismatch appears at time 0)
        let mut batch_time = 0.0_f64;

        loop {
            // deliver every valid event at batch_time
            while let Some(&Reverse(key)) = queue.heap.peek() {
                if key.time > batch_time {
                    break;
                }
                queue.heap.pop();
                let ev = &mut queue.events[key.seq];
                if !ev.valid || ev.delivered {
                    continue;
                }
                ev.delivered = true;
                processed += 1;
                if processed > self.max_events {
                    return Err(SimError::MaxEventsExceeded {
                        budget: self.max_events,
                        time: batch_time,
                    });
                }
                let edge_idx = ev.edge;
                let (value, time) = (ev.value, ev.time);
                // maintain the edge pending queue and channel bookkeeping
                if let Some(&front) = queue.edge_pending[edge_idx].front() {
                    if front == key.seq {
                        queue.edge_pending[edge_idx].pop_front();
                    }
                }
                let edge = &mut self.circuit.edges[edge_idx];
                if let Connection::Channel(ch) = &mut edge.conn {
                    ch.discard_delivered(time);
                }
                edge_rec[edge_idx]
                    .push(Transition::new(time, value))
                    .expect("channel outputs alternate and increase");
                let to = edge.to.index();
                let pin = edge.pin;
                pins[to][pin] = value;
                match self.circuit.node_kind(NodeId(to)) {
                    NodeKind::Gate { .. } => {
                        if !dirty_flag[to] {
                            dirty_flag[to] = true;
                            dirty.push(to);
                        }
                    }
                    NodeKind::Output => {
                        if out_value[to] != value {
                            out_value[to] = value;
                            node_rec[to]
                                .push(Transition::new(time, value))
                                .expect("output port deliveries alternate");
                        }
                    }
                    NodeKind::Input => unreachable!("edges cannot enter input ports"),
                }
            }

            // evaluate dirty gates and feed their transitions
            let batch_dirty = std::mem::take(&mut dirty);
            for i in &batch_dirty {
                dirty_flag[*i] = false;
            }
            for i in batch_dirty {
                let NodeKind::Gate { kind, .. } = self.circuit.node_kind(NodeId(i)) else {
                    continue;
                };
                let new_value = kind.eval(&pins[i]);
                if new_value == out_value[i] {
                    continue;
                }
                out_value[i] = new_value;
                let tr = Transition::new(batch_time, new_value);
                node_rec[i]
                    .push(tr)
                    .expect("gate output changes strictly after its previous change");
                for eid in self.circuit.outgoing[i].clone() {
                    let edge = &mut self.circuit.edges[eid.index()];
                    match &mut edge.conn {
                        Connection::Direct => queue.schedule(eid.index(), tr),
                        Connection::Channel(ch) => {
                            let effect = ch.feed(tr);
                            queue.apply(eid.index(), effect, Some(batch_time))?;
                        }
                    }
                }
            }

            // next batch: earliest remaining valid event
            let next = loop {
                match queue.heap.peek() {
                    None => break None,
                    Some(&Reverse(key)) => {
                        if queue.events[key.seq].valid && !queue.events[key.seq].delivered {
                            break Some(key.time);
                        }
                        queue.heap.pop();
                    }
                }
            };
            match next {
                Some(t) if t <= horizon => {
                    if t > batch_time {
                        batch_time = t;
                    }
                    // equal time: keep batching at the same time (newly
                    // scheduled same-time direct deliveries)
                }
                _ => break,
            }
        }

        let node_signals: Vec<Signal> = node_rec.into_iter().map(SignalBuilder::finish).collect();
        let edge_signals: Vec<Signal> = edge_rec.into_iter().map(SignalBuilder::finish).collect();
        Ok(SimResult {
            names: self.circuit.names.clone(),
            node_signals,
            edge_signals,
            horizon,
            processed_events: processed,
        })
    }
}

impl fmt::Debug for Simulator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulator")
            .field("circuit", &self.circuit)
            .field("max_events", &self.max_events)
            .finish_non_exhaustive()
    }
}

/// The recorded signals of a completed run.
#[derive(Debug, Clone)]
pub struct SimResult {
    names: HashMap<String, NodeId>,
    node_signals: Vec<Signal>,
    edge_signals: Vec<Signal>,
    horizon: f64,
    processed_events: usize,
}

impl SimResult {
    /// The signal at the named node (input port, gate output, or output
    /// port).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownNode`] if the name does not resolve.
    pub fn signal(&self, name: &str) -> Result<&Signal, SimError> {
        self.names
            .get(name)
            .map(|id| &self.node_signals[id.index()])
            .ok_or_else(|| SimError::UnknownNode {
                name: name.to_owned(),
            })
    }

    /// The signal at a node id.
    #[must_use]
    pub fn node_signal(&self, id: NodeId) -> &Signal {
        &self.node_signals[id.index()]
    }

    /// The signal delivered at the *output* of an edge's channel.
    #[must_use]
    pub fn edge_signal(&self, id: EdgeId) -> &Signal {
        &self.edge_signals[id.index()]
    }

    /// The simulation horizon this run used.
    #[must_use]
    pub fn horizon(&self) -> f64 {
        self.horizon
    }

    /// Number of events processed.
    #[must_use]
    pub fn processed_events(&self) -> usize {
        self.processed_events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::GateKind;
    use crate::graph::CircuitBuilder;
    use ivl_core::channel::{Channel, InvolutionChannel, PureDelay};
    use ivl_core::delay::ExpChannel;

    fn pure(d: f64) -> PureDelay {
        PureDelay::new(d).unwrap()
    }

    #[test]
    fn wire_through() {
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let y = b.output("y");
        b.connect_direct(a, y, 0).unwrap();
        let mut sim = Simulator::new(b.build().unwrap());
        let s = Signal::pulse(1.0, 2.0).unwrap();
        sim.set_input("a", s.clone()).unwrap();
        let run = sim.run(10.0).unwrap();
        assert_eq!(run.signal("y").unwrap(), &s);
        assert_eq!(run.signal("a").unwrap(), &s);
        assert_eq!(run.processed_events(), 2);
    }

    #[test]
    fn inverter_with_pure_delay() {
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let g = b.gate("inv", GateKind::Not, Bit::One);
        let y = b.output("y");
        b.connect_direct(a, g, 0).unwrap();
        b.connect(g, y, 0, pure(1.5)).unwrap();
        let mut sim = Simulator::new(b.build().unwrap());
        sim.set_input("a", Signal::pulse(1.0, 2.0).unwrap())
            .unwrap();
        let run = sim.run(10.0).unwrap();
        let y_sig = run.signal("y").unwrap();
        assert_eq!(y_sig.initial(), Bit::One);
        // input rises at 1 → inv falls at 1 → y falls at 2.5
        assert!(y_sig.approx_eq(
            &Signal::new(
                Bit::One,
                vec![
                    Transition::new(2.5, Bit::Zero),
                    Transition::new(4.5, Bit::One)
                ]
            )
            .unwrap(),
            1e-12
        ));
    }

    #[test]
    fn set_input_validation() {
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let y = b.output("y");
        b.connect_direct(a, y, 0).unwrap();
        let mut sim = Simulator::new(b.build().unwrap());
        assert!(matches!(
            sim.set_input("nope", Signal::zero()),
            Err(SimError::UnknownPort { .. })
        ));
        assert!(matches!(
            sim.set_input("y", Signal::zero()),
            Err(SimError::UnknownPort { .. })
        ));
        assert!(matches!(
            sim.set_input("a", Signal::pulse(-1.0, 0.5).unwrap()),
            Err(SimError::InputViolatesS1 { .. })
        ));
    }

    #[test]
    fn inconsistent_initial_value_fires_at_zero() {
        // NOT gate with initial 0 and input initial 0 → function value 1,
        // so the output must transition to 1 at t = 0
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let g = b.gate("inv", GateKind::Not, Bit::Zero);
        let y = b.output("y");
        b.connect_direct(a, g, 0).unwrap();
        b.connect(g, y, 0, pure(1.0)).unwrap();
        let mut sim = Simulator::new(b.build().unwrap());
        let run = sim.run(10.0).unwrap();
        let g_sig = run.signal("inv").unwrap();
        assert_eq!(g_sig.transitions(), &[Transition::new(0.0, Bit::One)]);
        let y_sig = run.signal("y").unwrap();
        assert_eq!(y_sig.transitions(), &[Transition::new(1.0, Bit::One)]);
    }

    #[test]
    fn two_gate_pipeline_matches_batch_channels() {
        // circuit: a -> inv1 -(involution)-> inv2 -(involution)-> y
        // must equal applying the channels in sequence with gate logic
        let d = ExpChannel::new(1.0, 0.5, 0.45).unwrap();
        let input = Signal::pulse_train([(0.0, 3.0), (5.0, 1.2), (8.0, 0.9)]).unwrap();

        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let g1 = b.gate("inv1", GateKind::Not, Bit::One);
        let g2 = b.gate("inv2", GateKind::Not, Bit::Zero);
        let y = b.output("y");
        b.connect_direct(a, g1, 0).unwrap();
        b.connect(g1, g2, 0, InvolutionChannel::new(d.clone()))
            .unwrap();
        b.connect(g2, y, 0, InvolutionChannel::new(d.clone()))
            .unwrap();
        let mut sim = Simulator::new(b.build().unwrap());
        sim.set_input("a", input.clone()).unwrap();
        let run = sim.run(100.0).unwrap();

        // reference: batch evaluation
        let mut c1 = InvolutionChannel::new(d.clone());
        let mut c2 = InvolutionChannel::new(d);
        let ref_out = c2.apply(&c1.apply(&input.complemented()).complemented());
        assert!(
            run.signal("y").unwrap().approx_eq(&ref_out, 1e-9),
            "sim: {}\nref: {}",
            run.signal("y").unwrap(),
            ref_out
        );
    }

    #[test]
    fn feedback_or_latches() {
        // the storage loop of Fig. 5 with a pure-delay channel: a pulse
        // latches the OR output to 1 forever
        let mut b = CircuitBuilder::new();
        let i = b.input("i");
        let or = b.gate("or", GateKind::Or, Bit::Zero);
        let y = b.output("y");
        b.connect_direct(i, or, 0).unwrap();
        b.connect(or, or, 1, pure(1.0)).unwrap();
        b.connect(or, y, 0, pure(0.5)).unwrap();
        let mut sim = Simulator::new(b.build().unwrap());
        sim.set_input("i", Signal::pulse(0.0, 2.0).unwrap())
            .unwrap();
        let run = sim.run(50.0).unwrap();
        let or_sig = run.signal("or").unwrap();
        assert_eq!(
            or_sig.transitions(),
            &[Transition::new(0.0, Bit::One)],
            "latched high: {or_sig}"
        );
        assert_eq!(run.signal("y").unwrap().final_value(), Bit::One);
    }

    #[test]
    fn feedback_or_oscillates_with_short_loop_pulse() {
        // pure-delay feedback with a pulse shorter than the loop delay
        // produces a periodic pulse train at the OR output
        let mut b = CircuitBuilder::new();
        let i = b.input("i");
        let or = b.gate("or", GateKind::Or, Bit::Zero);
        let y = b.output("y");
        b.connect_direct(i, or, 0).unwrap();
        b.connect(or, or, 1, pure(2.0)).unwrap();
        b.connect(or, y, 0, pure(0.5)).unwrap();
        let mut sim = Simulator::new(b.build().unwrap());
        sim.set_input("i", Signal::pulse(0.0, 0.5).unwrap())
            .unwrap();
        let run = sim.run(20.5).unwrap();
        let or_sig = run.signal("or").unwrap();
        // pulses at 0, 2, 4, … each 0.5 wide → 2 transitions per period
        assert!(or_sig.len() >= 20, "oscillation expected: {or_sig}");
        let stats = ivl_core::PulseStats::of(or_sig);
        assert!((stats.min_period().unwrap() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn max_events_guard_fires() {
        let mut b = CircuitBuilder::new();
        let i = b.input("i");
        let or = b.gate("or", GateKind::Or, Bit::Zero);
        let y = b.output("y");
        b.connect_direct(i, or, 0).unwrap();
        b.connect(or, or, 1, pure(0.001)).unwrap();
        b.connect(or, y, 0, pure(0.5)).unwrap();
        let mut sim = Simulator::new(b.build().unwrap()).with_max_events(100);
        sim.set_input("i", Signal::pulse(0.0, 0.0005).unwrap())
            .unwrap();
        assert!(matches!(
            sim.run(1e9),
            Err(SimError::MaxEventsExceeded { .. })
        ));
    }

    #[test]
    fn multi_input_gate_and_fanout() {
        // y = a AND b, z = NOT(a AND b), both fed from one AND gate
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let bb = b.input("b");
        let and = b.gate("and", GateKind::And, Bit::Zero);
        let inv = b.gate("inv", GateKind::Not, Bit::One);
        let y = b.output("y");
        let z = b.output("z");
        b.connect_direct(a, and, 0).unwrap();
        b.connect_direct(bb, and, 1).unwrap();
        b.connect(and, y, 0, pure(0.1)).unwrap();
        b.connect(and, inv, 0, pure(0.1)).unwrap();
        b.connect(inv, z, 0, pure(0.1)).unwrap();
        let mut sim = Simulator::new(b.build().unwrap());
        sim.set_input("a", Signal::pulse(0.0, 4.0).unwrap())
            .unwrap();
        sim.set_input("b", Signal::pulse(2.0, 4.0).unwrap())
            .unwrap();
        let run = sim.run(10.0).unwrap();
        // overlap is [2, 4)
        assert!(run
            .signal("y")
            .unwrap()
            .approx_eq(&Signal::pulse(2.1, 2.0).unwrap(), 1e-12));
        let z_sig = run.signal("z").unwrap();
        assert_eq!(z_sig.initial(), Bit::One);
        assert_eq!(z_sig.value_at(3.0), Bit::Zero);
        assert_eq!(z_sig.final_value(), Bit::One);
    }

    #[test]
    fn edge_signals_are_recorded() {
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let g = b.gate("buf", GateKind::Buf, Bit::Zero);
        let y = b.output("y");
        b.connect_direct(a, g, 0).unwrap();
        let e = b.connect(g, y, 0, pure(1.0)).unwrap();
        let mut sim = Simulator::new(b.build().unwrap());
        sim.set_input("a", Signal::pulse(0.0, 1.0).unwrap())
            .unwrap();
        let run = sim.run(10.0).unwrap();
        assert!(run
            .edge_signal(e)
            .approx_eq(&Signal::pulse(1.0, 1.0).unwrap(), 1e-12));
    }

    #[test]
    fn horizon_truncates() {
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let y = b.output("y");
        b.connect_direct(a, y, 0).unwrap();
        let mut sim = Simulator::new(b.build().unwrap());
        sim.set_input("a", Signal::pulse_train([(0.0, 1.0), (5.0, 1.0)]).unwrap())
            .unwrap();
        let run = sim.run(3.0).unwrap();
        assert_eq!(run.signal("y").unwrap().len(), 2);
        assert_eq!(run.horizon(), 3.0);
    }

    #[test]
    fn rerun_with_different_input() {
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let g = b.gate("inv", GateKind::Not, Bit::One);
        let y = b.output("y");
        b.connect_direct(a, g, 0).unwrap();
        b.connect(
            g,
            y,
            0,
            InvolutionChannel::new(ExpChannel::new(1.0, 0.5, 0.5).unwrap()),
        )
        .unwrap();
        let mut sim = Simulator::new(b.build().unwrap());
        sim.set_input("a", Signal::pulse(0.0, 5.0).unwrap())
            .unwrap();
        let first = sim.run(20.0).unwrap();
        sim.set_input("a", Signal::pulse(1.0, 5.0).unwrap())
            .unwrap();
        let second = sim.run(20.0).unwrap();
        assert!(second
            .signal("y")
            .unwrap()
            .approx_eq(&first.signal("y").unwrap().shifted(1.0), 1e-9));
    }

    #[test]
    fn causality_violation_is_detected_not_miscomputed() {
        // An adversary far beyond any sane bound can shift an output
        // before an already *delivered* transition. Batch evaluation
        // handles this (the model is non-causal there); event-driven
        // simulation must refuse with a CausalityViolation instead of
        // silently producing wrong waveforms.
        use ivl_core::channel::EtaInvolutionChannel;
        use ivl_core::noise::{EtaBounds, RecordedChoices};

        let d = ExpChannel::new(1.0, 0.5, 0.5).unwrap();
        let bounds = EtaBounds::new(10.0, 10.0).unwrap(); // no (C) here!
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let g = b.gate("buf", GateKind::Buf, Bit::Zero);
        let y = b.output("y");
        b.connect_direct(a, g, 0).unwrap();
        // first transition unshifted (delivered at ≈1.19), second shifted
        // 9 time units early: lands at ≈ −3.3, before the committed one
        b.connect(
            g,
            y,
            0,
            EtaInvolutionChannel::new(d, bounds, RecordedChoices::new(vec![0.0, -9.0])),
        )
        .unwrap();
        let mut sim = Simulator::new(b.build().unwrap());
        sim.set_input("a", Signal::pulse(0.0, 5.0).unwrap())
            .unwrap();
        assert!(matches!(
            sim.run(100.0),
            Err(SimError::CausalityViolation { .. })
        ));
    }

    #[test]
    fn debug_impl() {
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let y = b.output("y");
        b.connect_direct(a, y, 0).unwrap();
        let sim = Simulator::new(b.build().unwrap());
        assert!(!format!("{sim:?}").is_empty());
        assert_eq!(sim.circuit().node_count(), 2);
    }
}
