//! Zero-time Boolean gates.

use ivl_core::Bit;

/// A lookup table over `inputs` binary inputs (input 0 is the least
/// significant index bit).
///
/// ```
/// use ivl_circuit::TruthTable;
/// use ivl_core::Bit;
/// // a 2-input multiplexer-ish table: out = in0 AND NOT in1
/// let tt = TruthTable::new(2, vec![Bit::Zero, Bit::One, Bit::Zero, Bit::Zero]).unwrap();
/// assert_eq!(tt.eval(&[Bit::One, Bit::Zero]), Bit::One);
/// assert_eq!(tt.eval(&[Bit::One, Bit::One]), Bit::Zero);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TruthTable {
    inputs: usize,
    rows: Vec<Bit>,
}

impl TruthTable {
    /// Creates a truth table for `inputs` inputs from `2^inputs` rows.
    ///
    /// Returns `None` if `rows.len() != 2^inputs` or `inputs == 0` or
    /// `inputs > 16`.
    #[must_use]
    pub fn new(inputs: usize, rows: Vec<Bit>) -> Option<Self> {
        if inputs == 0 || inputs > 16 || rows.len() != 1 << inputs {
            return None;
        }
        Some(TruthTable { inputs, rows })
    }

    /// Number of inputs.
    #[must_use]
    pub fn inputs(&self) -> usize {
        self.inputs
    }

    /// Evaluates the table.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != self.inputs()`.
    #[must_use]
    pub fn eval(&self, values: &[Bit]) -> Bit {
        assert_eq!(values.len(), self.inputs, "truth table arity mismatch");
        let mut idx = 0usize;
        for (bit, v) in values.iter().enumerate() {
            if v.is_one() {
                idx |= 1 << bit;
            }
        }
        self.rows[idx]
    }
}

/// The Boolean function of a gate.
///
/// `And`/`Or`/`Nand`/`Nor`/`Xor`/`Xnor` accept any arity ≥ 1; `Buf` and
/// `Not` are unary; `Table` fixes its own arity.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GateKind {
    /// Identity.
    Buf,
    /// Negation.
    Not,
    /// Conjunction.
    And,
    /// Disjunction.
    Or,
    /// Negated conjunction.
    Nand,
    /// Negated disjunction.
    Nor,
    /// Parity.
    Xor,
    /// Negated parity.
    Xnor,
    /// Arbitrary lookup table.
    Table(TruthTable),
}

impl std::fmt::Display for GateKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GateKind::Buf => write!(f, "buf"),
            GateKind::Not => write!(f, "not"),
            GateKind::And => write!(f, "and"),
            GateKind::Or => write!(f, "or"),
            GateKind::Nand => write!(f, "nand"),
            GateKind::Nor => write!(f, "nor"),
            GateKind::Xor => write!(f, "xor"),
            GateKind::Xnor => write!(f, "xnor"),
            GateKind::Table(t) => write!(f, "table/{}", t.inputs()),
        }
    }
}

impl GateKind {
    /// Default arity for the kind: 1 for `Buf`/`Not`, the table's arity
    /// for `Table`, 2 otherwise.
    #[must_use]
    pub fn default_arity(&self) -> usize {
        match self {
            GateKind::Buf | GateKind::Not => 1,
            GateKind::Table(t) => t.inputs(),
            _ => 2,
        }
    }

    /// `true` if the kind supports the given input count.
    #[must_use]
    pub fn supports_arity(&self, arity: usize) -> bool {
        match self {
            GateKind::Buf | GateKind::Not => arity == 1,
            GateKind::Table(t) => arity == t.inputs(),
            _ => arity >= 1,
        }
    }

    /// Evaluates the Boolean function on `values`.
    ///
    /// # Panics
    ///
    /// Panics if the arity is unsupported (validated at circuit build
    /// time, so simulation never panics here).
    #[must_use]
    pub fn eval(&self, values: &[Bit]) -> Bit {
        debug_assert!(self.supports_arity(values.len()));
        match self {
            GateKind::Buf => values[0],
            GateKind::Not => !values[0],
            GateKind::And => Bit::from(values.iter().all(|v| v.is_one())),
            GateKind::Or => Bit::from(values.iter().any(|v| v.is_one())),
            GateKind::Nand => !Bit::from(values.iter().all(|v| v.is_one())),
            GateKind::Nor => !Bit::from(values.iter().any(|v| v.is_one())),
            GateKind::Xor => Bit::from(values.iter().filter(|v| v.is_one()).count() % 2 == 1),
            GateKind::Xnor => Bit::from(
                values
                    .iter()
                    .filter(|v| v.is_one())
                    .count()
                    .is_multiple_of(2),
            ),
            GateKind::Table(t) => t.eval(values),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Bit::{One, Zero};

    #[test]
    fn standard_gates_two_inputs() {
        let cases = [
            (GateKind::And, [Zero, Zero, Zero, One]),
            (GateKind::Or, [Zero, One, One, One]),
            (GateKind::Nand, [One, One, One, Zero]),
            (GateKind::Nor, [One, Zero, Zero, Zero]),
            (GateKind::Xor, [Zero, One, One, Zero]),
            (GateKind::Xnor, [One, Zero, Zero, One]),
        ];
        for (kind, expect) in cases {
            for (i, want) in expect.iter().enumerate() {
                let a = Bit::from(i & 1 == 1);
                let b = Bit::from(i & 2 == 2);
                assert_eq!(kind.eval(&[a, b]), *want, "{kind:?} on ({a},{b})");
            }
        }
    }

    #[test]
    fn unary_gates() {
        assert_eq!(GateKind::Buf.eval(&[One]), One);
        assert_eq!(GateKind::Buf.eval(&[Zero]), Zero);
        assert_eq!(GateKind::Not.eval(&[One]), Zero);
        assert_eq!(GateKind::Not.eval(&[Zero]), One);
    }

    #[test]
    fn multi_input_gates() {
        assert_eq!(GateKind::Or.eval(&[Zero, Zero, One]), One);
        assert_eq!(GateKind::And.eval(&[One, One, Zero]), Zero);
        assert_eq!(GateKind::Xor.eval(&[One, One, One]), One);
        assert_eq!(GateKind::Xnor.eval(&[One, One, One]), Zero);
    }

    #[test]
    fn arity_rules() {
        assert_eq!(GateKind::Not.default_arity(), 1);
        assert_eq!(GateKind::Or.default_arity(), 2);
        assert!(GateKind::Or.supports_arity(5));
        assert!(!GateKind::Or.supports_arity(0));
        assert!(!GateKind::Buf.supports_arity(2));
    }

    #[test]
    fn truth_table_validation_and_eval() {
        assert!(TruthTable::new(0, vec![]).is_none());
        assert!(TruthTable::new(1, vec![One]).is_none());
        assert!(TruthTable::new(17, vec![One; 1 << 17]).is_none());
        let tt = TruthTable::new(1, vec![One, Zero]).unwrap(); // NOT
        assert_eq!(tt.inputs(), 1);
        assert_eq!(tt.eval(&[Zero]), One);
        assert_eq!(tt.eval(&[One]), Zero);
        let kind = GateKind::Table(tt);
        assert_eq!(kind.default_arity(), 1);
        assert!(kind.supports_arity(1));
        assert!(!kind.supports_arity(2));
        assert_eq!(kind.eval(&[Zero]), One);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn truth_table_panics_on_wrong_arity() {
        let tt = TruthTable::new(1, vec![One, Zero]).unwrap();
        let _ = tt.eval(&[One, Zero]);
    }
}
