//! Circuit graphs: ports, gates and channel edges.
//!
//! The netlist is stored struct-of-arrays: node attributes live in flat
//! parallel vectors indexed by [`NodeId`], edge endpoints in parallel
//! vectors indexed by [`EdgeId`], and fanout adjacency in a CSR-style
//! (`out_start` offsets + `out_edges` indices) pair instead of one
//! `Vec<EdgeId>` allocation per node. Ids are compact `u32`, so a
//! million-gate netlist costs a handful of large allocations rather
//! than millions of small ones, and a clone-free `Arc` share between
//! sweep workers stays cache-friendly.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::ops::Range;
use std::sync::Arc;

use ivl_core::channel::SimChannel;
use ivl_core::Bit;

use crate::error::CircuitError;
use crate::gate::GateKind;

/// Identifier of a circuit node (input port, output port or gate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The raw index of the node.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of a circuit edge (a channel or a direct port connection).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub(crate) u32);

impl EdgeId {
    /// The raw index of the edge.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// What a node is.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NodeKind {
    /// An input port: a source whose signal the test bench provides.
    Input,
    /// An output port: a sink with a single implicit pin.
    Output,
    /// A zero-time Boolean gate with an initial output value.
    Gate {
        /// The Boolean function.
        kind: GateKind,
        /// Number of input pins.
        arity: usize,
        /// Output value "until time 0" (the paper's initial value).
        initial: Bit,
    },
}

/// Compact per-node discriminant stored in the struct-of-arrays
/// topology; the full [`NodeKind`] is reconstructed on demand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum NodeTag {
    Input,
    Output,
    Gate,
}

/// The immutable netlist of a [`Circuit`] in struct-of-arrays form:
/// parallel per-node attribute vectors, parallel per-edge endpoint
/// vectors, CSR fanout adjacency and the name index. Shared via `Arc`
/// between every clone of a circuit (and hence between all
/// scenario-sweep workers), so cloning a circuit copies only per-edge
/// channel state — never the topology.
pub(crate) struct Topology {
    // --- per node, indexed by NodeId ---
    pub(crate) node_names: Vec<String>,
    pub(crate) node_tags: Vec<NodeTag>,
    /// Boolean function per node; a `Buf` placeholder for ports.
    pub(crate) gate_kinds: Vec<GateKind>,
    /// Input-pin count: 0 for inputs, 1 for outputs, declared arity
    /// for gates.
    pub(crate) node_arity: Vec<u32>,
    /// Initial output value (the paper's value "until time 0");
    /// `Bit::Zero` placeholder for ports.
    pub(crate) node_initial: Vec<Bit>,
    /// CSR offsets into the flattened input-pin array: node `n`'s pins
    /// occupy `pin_start[n]..pin_start[n + 1]`.
    pub(crate) pin_start: Vec<u32>,
    // --- per edge, indexed by EdgeId ---
    pub(crate) edge_from: Vec<u32>,
    pub(crate) edge_to: Vec<u32>,
    pub(crate) edge_pin: Vec<u32>,
    // --- CSR fanout adjacency ---
    /// Node `n`'s outgoing edges are
    /// `out_edges[out_start[n]..out_start[n + 1]]`, in edge-creation
    /// order (the order the old per-node `Vec<EdgeId>` held them).
    pub(crate) out_start: Vec<u32>,
    pub(crate) out_edges: Vec<u32>,
    pub(crate) names: Arc<HashMap<String, NodeId>>,
}

impl Topology {
    pub(crate) fn node_count(&self) -> usize {
        self.node_tags.len()
    }

    pub(crate) fn edge_count(&self) -> usize {
        self.edge_from.len()
    }

    /// Outgoing edge indices of node `n`, in edge-creation order.
    pub(crate) fn outgoing(&self, n: usize) -> &[u32] {
        &self.out_edges[self.out_start[n] as usize..self.out_start[n + 1] as usize]
    }

    /// Range of node `n`'s pins in the flattened pin array.
    pub(crate) fn pin_range(&self, n: usize) -> Range<usize> {
        self.pin_start[n] as usize..self.pin_start[n + 1] as usize
    }

    /// Reconstructs the full [`NodeKind`] of node `n`.
    pub(crate) fn node_kind(&self, n: usize) -> NodeKind {
        match self.node_tags[n] {
            NodeTag::Input => NodeKind::Input,
            NodeTag::Output => NodeKind::Output,
            NodeTag::Gate => NodeKind::Gate {
                kind: self.gate_kinds[n].clone(),
                arity: self.node_arity[n] as usize,
                initial: self.node_initial[n],
            },
        }
    }
}

// builder-internal representation before the topology/channel split
enum Connection {
    Direct,
    Channel(Box<dyn SimChannel>),
}

/// Incremental circuit constructor.
///
/// Nodes are created with [`input`](CircuitBuilder::input),
/// [`output`](CircuitBuilder::output) and [`gate`](CircuitBuilder::gate);
/// connections with [`connect`](CircuitBuilder::connect) (through a
/// channel) or [`connect_direct`](CircuitBuilder::connect_direct)
/// (zero-delay, only next to ports). [`build`](CircuitBuilder::build)
/// validates the paper's well-formedness rules: every gate input pin and
/// output port is driven by exactly one connection, and gates and
/// channels alternate.
///
/// Validation is incremental and scale-friendly: double driving is
/// caught at connect time through an O(1) driven-pin set, and the
/// final unconnected-pin sweep is a single O(nodes + edges) pass —
/// no quadratic rescans, so million-gate netlists build in linear time.
pub struct CircuitBuilder {
    node_names: Vec<String>,
    node_tags: Vec<NodeTag>,
    gate_kinds: Vec<GateKind>,
    node_arity: Vec<u32>,
    node_initial: Vec<Bit>,
    edge_from: Vec<u32>,
    edge_to: Vec<u32>,
    edge_pin: Vec<u32>,
    conns: Vec<Connection>,
    names: HashMap<String, NodeId>,
    /// `(to, pin)` pairs already driven — O(1) double-driver checks.
    driven: HashSet<(u32, u32)>,
    deferred_error: Option<CircuitError>,
}

impl CircuitBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        CircuitBuilder {
            node_names: Vec::new(),
            node_tags: Vec::new(),
            gate_kinds: Vec::new(),
            node_arity: Vec::new(),
            node_initial: Vec::new(),
            edge_from: Vec::new(),
            edge_to: Vec::new(),
            edge_pin: Vec::new(),
            conns: Vec::new(),
            names: HashMap::new(),
            driven: HashSet::new(),
            deferred_error: None,
        }
    }

    fn add_node(
        &mut self,
        name: &str,
        tag: NodeTag,
        gate_kind: GateKind,
        arity: u32,
        initial: Bit,
    ) -> NodeId {
        let id = NodeId(u32::try_from(self.node_tags.len()).expect("more than u32::MAX nodes"));
        if self.names.insert(name.to_owned(), id).is_some() && self.deferred_error.is_none() {
            self.deferred_error = Some(CircuitError::DuplicateName {
                name: name.to_owned(),
            });
        }
        self.node_names.push(name.to_owned());
        self.node_tags.push(tag);
        self.gate_kinds.push(gate_kind);
        self.node_arity.push(arity);
        self.node_initial.push(initial);
        id
    }

    /// Adds an input port.
    pub fn input(&mut self, name: &str) -> NodeId {
        self.add_node(name, NodeTag::Input, GateKind::Buf, 0, Bit::Zero)
    }

    /// Adds an output port.
    pub fn output(&mut self, name: &str) -> NodeId {
        self.add_node(name, NodeTag::Output, GateKind::Buf, 1, Bit::Zero)
    }

    /// Adds a gate with the kind's default arity.
    pub fn gate(&mut self, name: &str, kind: GateKind, initial: Bit) -> NodeId {
        let arity = kind.default_arity();
        self.gate_with_arity(name, kind, initial, arity)
    }

    /// Adds a gate with an explicit input count.
    pub fn gate_with_arity(
        &mut self,
        name: &str,
        kind: GateKind,
        initial: Bit,
        arity: usize,
    ) -> NodeId {
        if !kind.supports_arity(arity) && self.deferred_error.is_none() {
            self.deferred_error = Some(CircuitError::BadArity {
                name: name.to_owned(),
                arity,
            });
        }
        let arity = u32::try_from(arity).expect("gate arity exceeds u32::MAX");
        self.add_node(name, NodeTag::Gate, kind, arity, initial)
    }

    fn check_endpoints(&self, from: NodeId, to: NodeId, pin: usize) -> Result<(), CircuitError> {
        let from_tag = *self
            .node_tags
            .get(from.index())
            .ok_or(CircuitError::UnknownNode {
                index: from.index(),
            })?;
        let to_tag = *self
            .node_tags
            .get(to.index())
            .ok_or(CircuitError::UnknownNode { index: to.index() })?;
        if from_tag == NodeTag::Output {
            return Err(CircuitError::WrongPortDirection {
                name: self.node_names[from.index()].clone(),
            });
        }
        if to_tag == NodeTag::Input {
            return Err(CircuitError::WrongPortDirection {
                name: self.node_names[to.index()].clone(),
            });
        }
        let arity = self.node_arity[to.index()] as usize;
        if pin >= arity {
            return Err(CircuitError::PinOutOfRange {
                node: self.node_names[to.index()].clone(),
                pin,
                arity,
            });
        }
        #[allow(clippy::cast_possible_truncation)]
        if self.driven.contains(&(to.0, pin as u32)) {
            return Err(CircuitError::PinAlreadyDriven {
                node: self.node_names[to.index()].clone(),
                pin,
            });
        }
        Ok(())
    }

    #[allow(clippy::cast_possible_truncation)]
    fn push_edge(&mut self, from: NodeId, to: NodeId, pin: usize, conn: Connection) -> EdgeId {
        let id = EdgeId(u32::try_from(self.edge_from.len()).expect("more than u32::MAX edges"));
        self.edge_from.push(from.0);
        self.edge_to.push(to.0);
        self.edge_pin.push(pin as u32);
        self.driven.insert((to.0, pin as u32));
        self.conns.push(conn);
        id
    }

    /// Connects `from` to pin `pin` of `to` through `channel`.
    ///
    /// Any [`OnlineChannel`](ivl_core::channel::OnlineChannel) that is
    /// also `Clone + Send` qualifies (the [`SimChannel`] blanket impl);
    /// clonability lets [`Circuit`]s be duplicated across scenario-sweep
    /// worker threads.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown nodes, out-of-range or doubly driven
    /// pins, or connections against port direction.
    pub fn connect<C>(
        &mut self,
        from: NodeId,
        to: NodeId,
        pin: usize,
        channel: C,
    ) -> Result<EdgeId, CircuitError>
    where
        C: SimChannel + 'static,
    {
        self.check_endpoints(from, to, pin)?;
        Ok(self.push_edge(from, to, pin, Connection::Channel(Box::new(channel))))
    }

    /// Connects `from` to pin `pin` of `to` through an already-boxed
    /// channel — the dynamic-dispatch twin of
    /// [`connect`](CircuitBuilder::connect), for callers that source
    /// channels from a factory (the parametric topology
    /// [`generate`](crate::generate) functions, spec-driven netlists).
    /// Avoids wrapping the box in a second box.
    ///
    /// # Errors
    ///
    /// As [`connect`](CircuitBuilder::connect).
    pub fn connect_boxed(
        &mut self,
        from: NodeId,
        to: NodeId,
        pin: usize,
        channel: Box<dyn SimChannel>,
    ) -> Result<EdgeId, CircuitError> {
        self.check_endpoints(from, to, pin)?;
        Ok(self.push_edge(from, to, pin, Connection::Channel(channel)))
    }

    /// Connects `from` to pin `pin` of `to` with zero delay. At least one
    /// endpoint must be a port (gates and channels must alternate).
    ///
    /// # Errors
    ///
    /// As [`connect`](CircuitBuilder::connect), plus
    /// [`CircuitError::DirectBetweenGates`] if both endpoints are gates.
    pub fn connect_direct(
        &mut self,
        from: NodeId,
        to: NodeId,
        pin: usize,
    ) -> Result<EdgeId, CircuitError> {
        self.check_endpoints(from, to, pin)?;
        if self.node_tags[from.index()] == NodeTag::Gate
            && self.node_tags[to.index()] == NodeTag::Gate
        {
            return Err(CircuitError::DirectBetweenGates {
                from: self.node_names[from.index()].clone(),
                to: self.node_names[to.index()].clone(),
            });
        }
        Ok(self.push_edge(from, to, pin, Connection::Direct))
    }

    /// Validates and finalizes the circuit.
    ///
    /// # Errors
    ///
    /// Returns the first well-formedness violation: duplicate names, bad
    /// gate arities, or unconnected gate pins / output ports.
    #[allow(clippy::cast_possible_truncation)]
    pub fn build(self) -> Result<Circuit, CircuitError> {
        if let Some(err) = self.deferred_error {
            return Err(err);
        }
        let n = self.node_tags.len();
        // flattened-pin CSR offsets (inputs contribute 0 pins)
        let mut pin_start = Vec::with_capacity(n + 1);
        pin_start.push(0u32);
        let mut total = 0u32;
        for &a in &self.node_arity {
            total = total.checked_add(a).expect("more than u32::MAX input pins");
            pin_start.push(total);
        }
        // every gate pin and output port must be driven (exactly once —
        // double driving was rejected at connect time): one linear mark
        // pass over the edges, one linear sweep over the pins
        let mut pin_driven = vec![false; total as usize];
        for (i, &to) in self.edge_to.iter().enumerate() {
            pin_driven[(pin_start[to as usize] + self.edge_pin[i]) as usize] = true;
        }
        for (node, &arity) in self.node_arity.iter().enumerate() {
            let base = pin_start[node];
            for pin in 0..arity {
                if !pin_driven[(base + pin) as usize] {
                    return Err(CircuitError::UnconnectedPin {
                        node: self.node_names[node].clone(),
                        pin: pin as usize,
                    });
                }
            }
        }
        // CSR fanout adjacency by counting sort: preserves edge-creation
        // order within each source node
        let e = self.edge_from.len();
        let mut out_start = vec![0u32; n + 1];
        for &f in &self.edge_from {
            out_start[f as usize + 1] += 1;
        }
        for i in 0..n {
            out_start[i + 1] += out_start[i];
        }
        let mut cursor = out_start.clone();
        let mut out_edges = vec![0u32; e];
        for (i, &f) in self.edge_from.iter().enumerate() {
            out_edges[cursor[f as usize] as usize] = i as u32;
            cursor[f as usize] += 1;
        }
        let channels = self
            .conns
            .into_iter()
            .map(|c| match c {
                Connection::Direct => None,
                Connection::Channel(ch) => Some(ch),
            })
            .collect();
        Ok(Circuit {
            topo: Arc::new(Topology {
                node_names: self.node_names,
                node_tags: self.node_tags,
                gate_kinds: self.gate_kinds,
                node_arity: self.node_arity,
                node_initial: self.node_initial,
                pin_start,
                edge_from: self.edge_from,
                edge_to: self.edge_to,
                edge_pin: self.edge_pin,
                out_start,
                out_edges,
                names: Arc::new(self.names),
            }),
            channels,
        })
    }
}

impl Default for CircuitBuilder {
    fn default() -> Self {
        CircuitBuilder::new()
    }
}

impl fmt::Debug for CircuitBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CircuitBuilder")
            .field("nodes", &self.node_tags.len())
            .field("edges", &self.edge_from.len())
            .finish_non_exhaustive()
    }
}

/// A validated circuit, ready to simulate.
///
/// A circuit is two layers: an immutable, `Arc`-shared netlist (flat
/// node-attribute arrays, edge endpoints, CSR adjacency, name index)
/// and per-instance channel state (`Box<dyn SimChannel>` per channel
/// edge, `None` for direct connections). Cloning deep-copies only the
/// channels — their single-history and noise/RNG state is what makes
/// clones simulate independently — while every clone keeps pointing at
/// the *same* netlist allocation. This is what lets the parallel
/// [`ScenarioRunner`](crate::ScenarioRunner) hand each worker its own
/// circuit without duplicating a million-gate topology per worker.
pub struct Circuit {
    pub(crate) topo: Arc<Topology>,
    /// Mutable per-edge channel state; `None` for direct connections.
    /// Indexed by [`EdgeId`], in lockstep with the topology's edge
    /// arrays.
    pub(crate) channels: Vec<Option<Box<dyn SimChannel>>>,
}

impl Clone for Circuit {
    fn clone(&self) -> Self {
        Circuit {
            topo: Arc::clone(&self.topo),
            channels: self.channels.clone(),
        }
    }
}

impl Circuit {
    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.topo.node_count()
    }

    /// Number of edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.topo.edge_count()
    }

    /// Looks a node up by name.
    #[must_use]
    pub fn node(&self, name: &str) -> Option<NodeId> {
        self.topo.names.get(name).copied()
    }

    /// The node's name.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this circuit.
    #[must_use]
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.topo.node_names[id.index()]
    }

    /// The node's kind, reconstructed from the packed attribute arrays.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this circuit.
    #[must_use]
    pub fn node_kind(&self, id: NodeId) -> NodeKind {
        self.topo.node_kind(id.index())
    }

    /// Names of every node (ports and gates), in creation order.
    #[must_use]
    pub fn node_names(&self) -> Vec<&str> {
        self.topo.node_names.iter().map(String::as_str).collect()
    }

    /// Names of all input ports, in creation order.
    #[must_use]
    pub fn input_names(&self) -> Vec<&str> {
        self.port_names(NodeTag::Input)
    }

    /// Names of all output ports, in creation order.
    #[must_use]
    pub fn output_names(&self) -> Vec<&str> {
        self.port_names(NodeTag::Output)
    }

    fn port_names(&self, tag: NodeTag) -> Vec<&str> {
        self.topo
            .node_tags
            .iter()
            .zip(&self.topo.node_names)
            .filter(|(t, _)| **t == tag)
            .map(|(_, n)| n.as_str())
            .collect()
    }

    /// Source, target and pin of an edge.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this circuit.
    #[must_use]
    pub fn edge_endpoints(&self, id: EdgeId) -> (NodeId, NodeId, usize) {
        let i = id.index();
        (
            NodeId(self.topo.edge_from[i]),
            NodeId(self.topo.edge_to[i]),
            self.topo.edge_pin[i] as usize,
        )
    }

    /// `true` if `self` and `other` were cloned from the same build and
    /// still share one netlist allocation (`Arc` pointer equality on the
    /// topology). Scenario-sweep workers rely on this: a sweep over any
    /// number of workers holds exactly one copy of the topology.
    #[must_use]
    pub fn shares_topology_with(&self, other: &Circuit) -> bool {
        Arc::ptr_eq(&self.topo, &other.topo)
    }

    /// Replaces the channel on an existing channel edge, keeping the
    /// topology (endpoints, pin, ids) intact. This is how callers swap
    /// an adversary/noise source into a prebuilt circuit without
    /// rebuilding the netlist (e.g. the SPF circuit's per-run noise).
    /// The channel lives outside the `Arc`-shared netlist, so the swap
    /// touches one box pointer — no part of the topology is cloned.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this circuit or refers to a
    /// direct (channel-free) connection — a direct edge can never
    /// legally carry a channel, because gates and channels alternate.
    pub fn replace_channel(&mut self, id: EdgeId, channel: Box<dyn SimChannel>) {
        let slot = &mut self.channels[id.index()];
        assert!(
            slot.is_some(),
            "edge {} is a direct connection, not a channel",
            id.0
        );
        *slot = Some(channel);
    }

    /// Number of live circuit clones (including this one) sharing this
    /// circuit's topology allocation. Worker-pool tests use this to pin
    /// that discarded pools *join* their threads (each worker holds
    /// clones) instead of leaking them.
    #[doc(hidden)]
    #[must_use]
    pub fn topology_refs(&self) -> usize {
        Arc::strong_count(&self.topo)
    }

    /// The lowest-index edge that carries a channel, if any.
    #[allow(clippy::cast_possible_truncation)]
    pub(crate) fn first_channel_edge(&self) -> Option<EdgeId> {
        self.channels
            .iter()
            .position(Option::is_some)
            .map(|i| EdgeId(i as u32))
    }

    /// A fresh box of the channel on `id`, if `id` carries one.
    pub(crate) fn clone_channel(&self, id: EdgeId) -> Option<Box<dyn SimChannel>> {
        self.channels.get(id.index()).and_then(Clone::clone)
    }
}

impl fmt::Debug for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Circuit")
            .field("nodes", &self.topo.node_count())
            .field("edges", &self.topo.edge_count())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivl_core::channel::PureDelay;

    fn delay() -> PureDelay {
        PureDelay::new(1.0).unwrap()
    }

    #[test]
    fn builds_simple_pipeline() {
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let g = b.gate("inv", GateKind::Not, Bit::One);
        let y = b.output("y");
        b.connect_direct(a, g, 0).unwrap();
        b.connect(g, y, 0, delay()).unwrap();
        let c = b.build().unwrap();
        assert_eq!(c.node_count(), 3);
        assert_eq!(c.edge_count(), 2);
        assert_eq!(c.node("inv"), Some(g));
        assert_eq!(c.node_name(g), "inv");
        assert_eq!(c.input_names(), vec!["a"]);
        assert_eq!(c.output_names(), vec!["y"]);
        assert!(matches!(c.node_kind(g), NodeKind::Gate { .. }));
        assert_eq!(c.edge_endpoints(EdgeId(0)), (a, g, 0));
    }

    #[test]
    fn csr_adjacency_matches_creation_order() {
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let root = b.gate("root", GateKind::Buf, Bit::Zero);
        b.connect_direct(a, root, 0).unwrap();
        let mut expect = Vec::new();
        for i in 0..4 {
            let g = b.gate(&format!("g{i}"), GateKind::Buf, Bit::Zero);
            expect.push(b.connect(root, g, 0, delay()).unwrap());
            let y = b.output(&format!("y{i}"));
            b.connect(g, y, 0, delay()).unwrap();
        }
        let c = b.build().unwrap();
        let got: Vec<u32> = c.topo.outgoing(root.index()).to_vec();
        let want: Vec<u32> = expect.iter().map(|e| e.0).collect();
        assert_eq!(got, want, "fanout must keep edge-creation order");
        // pin ranges: input has none, gates and outputs have one
        assert_eq!(c.topo.pin_range(a.index()).len(), 0);
        assert_eq!(c.topo.pin_range(root.index()).len(), 1);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut b = CircuitBuilder::new();
        b.input("x");
        b.output("x");
        assert!(matches!(b.build(), Err(CircuitError::DuplicateName { .. })));
    }

    #[test]
    fn bad_arity_rejected() {
        let mut b = CircuitBuilder::new();
        b.gate_with_arity("n", GateKind::Not, Bit::Zero, 2);
        assert!(matches!(b.build(), Err(CircuitError::BadArity { .. })));
    }

    #[test]
    fn unconnected_pin_rejected() {
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let g = b.gate("and", GateKind::And, Bit::Zero); // 2 pins
        let y = b.output("y");
        b.connect_direct(a, g, 0).unwrap();
        b.connect(g, y, 0, delay()).unwrap();
        assert!(matches!(
            b.build(),
            Err(CircuitError::UnconnectedPin { pin: 1, .. })
        ));
    }

    #[test]
    fn unconnected_output_rejected() {
        let mut b = CircuitBuilder::new();
        b.input("a");
        b.output("y");
        assert!(matches!(
            b.build(),
            Err(CircuitError::UnconnectedPin { .. })
        ));
    }

    #[test]
    fn double_driver_rejected_immediately() {
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let c = b.input("c");
        let g = b.gate("inv", GateKind::Not, Bit::One);
        b.connect_direct(a, g, 0).unwrap();
        assert!(matches!(
            b.connect_direct(c, g, 0),
            Err(CircuitError::PinAlreadyDriven { .. })
        ));
    }

    #[test]
    fn pin_out_of_range_rejected() {
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let g = b.gate("inv", GateKind::Not, Bit::One);
        assert!(matches!(
            b.connect_direct(a, g, 1),
            Err(CircuitError::PinOutOfRange { .. })
        ));
        let y = b.output("y");
        assert!(matches!(
            b.connect(g, y, 1, delay()),
            Err(CircuitError::PinOutOfRange { .. })
        ));
    }

    #[test]
    fn direct_between_gates_rejected() {
        let mut b = CircuitBuilder::new();
        let g1 = b.gate("g1", GateKind::Not, Bit::One);
        let g2 = b.gate("g2", GateKind::Not, Bit::Zero);
        assert!(matches!(
            b.connect_direct(g1, g2, 0),
            Err(CircuitError::DirectBetweenGates { .. })
        ));
        // but a channel between gates is fine
        assert!(b.connect(g1, g2, 0, delay()).is_ok());
    }

    #[test]
    fn port_direction_enforced() {
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let y = b.output("y");
        let g = b.gate("inv", GateKind::Not, Bit::One);
        assert!(matches!(
            b.connect(y, g, 0, delay()),
            Err(CircuitError::WrongPortDirection { .. })
        ));
        assert!(matches!(
            b.connect(g, a, 0, delay()),
            Err(CircuitError::WrongPortDirection { .. })
        ));
        // port-to-port direct wire-through is allowed
        assert!(b.connect_direct(a, y, 0).is_ok());
    }

    #[test]
    fn unknown_node_rejected() {
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let ghost = NodeId(99);
        assert!(matches!(
            b.connect_direct(a, ghost, 0),
            Err(CircuitError::UnknownNode { .. })
        ));
    }

    #[test]
    fn feedback_loop_is_legal() {
        let mut b = CircuitBuilder::new();
        let i = b.input("i");
        let or = b.gate("or", GateKind::Or, Bit::Zero);
        let y = b.output("y");
        b.connect_direct(i, or, 0).unwrap();
        b.connect(or, or, 1, delay()).unwrap(); // feedback
        b.connect(or, y, 0, delay()).unwrap();
        assert!(b.build().is_ok());
    }

    #[test]
    fn debug_impls() {
        let b = CircuitBuilder::new();
        assert!(!format!("{b:?}").is_empty());
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let y = b.output("y");
        b.connect_direct(a, y, 0).unwrap();
        let c = b.build().unwrap();
        assert!(!format!("{c:?}").is_empty());
        assert_eq!(NodeId(3).index(), 3);
        assert_eq!(EdgeId(2).index(), 2);
    }
}
