//! Circuit graphs: ports, gates and channel edges.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use ivl_core::channel::SimChannel;
use ivl_core::Bit;

use crate::error::CircuitError;
use crate::gate::GateKind;

/// Identifier of a circuit node (input port, output port or gate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The raw index of the node.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

/// Identifier of a circuit edge (a channel or a direct port connection).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub(crate) usize);

impl EdgeId {
    /// The raw index of the edge.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

/// What a node is.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NodeKind {
    /// An input port: a source whose signal the test bench provides.
    Input,
    /// An output port: a sink with a single implicit pin.
    Output,
    /// A zero-time Boolean gate with an initial output value.
    Gate {
        /// The Boolean function.
        kind: GateKind,
        /// Number of input pins.
        arity: usize,
        /// Output value "until time 0" (the paper's initial value).
        initial: Bit,
    },
}

#[derive(Clone)]
pub(crate) struct Node {
    pub(crate) name: String,
    pub(crate) kind: NodeKind,
}

/// The immutable endpoints of one edge. The channel (the only mutable
/// part of an edge) lives outside the shared topology, in
/// [`Circuit::channels`].
#[derive(Clone, Copy)]
pub(crate) struct Edge {
    pub(crate) from: NodeId,
    pub(crate) to: NodeId,
    pub(crate) pin: usize,
}

/// The immutable netlist of a [`Circuit`]: node table, edge endpoints,
/// adjacency and the name index. Shared via `Arc` between every clone
/// of a circuit (and hence between all scenario-sweep workers), so
/// cloning a circuit copies only per-edge channel state — never the
/// topology.
pub(crate) struct Topology {
    pub(crate) nodes: Vec<Node>,
    pub(crate) edges: Vec<Edge>,
    pub(crate) outgoing: Vec<Vec<EdgeId>>,
    pub(crate) names: Arc<HashMap<String, NodeId>>,
}

// builder-internal representation before the topology/channel split
enum Connection {
    Direct,
    Channel(Box<dyn SimChannel>),
}

/// Incremental circuit constructor.
///
/// Nodes are created with [`input`](CircuitBuilder::input),
/// [`output`](CircuitBuilder::output) and [`gate`](CircuitBuilder::gate);
/// connections with [`connect`](CircuitBuilder::connect) (through a
/// channel) or [`connect_direct`](CircuitBuilder::connect_direct)
/// (zero-delay, only next to ports). [`build`](CircuitBuilder::build)
/// validates the paper's well-formedness rules: every gate input pin and
/// output port is driven by exactly one connection, and gates and
/// channels alternate.
pub struct CircuitBuilder {
    nodes: Vec<Node>,
    edges: Vec<Edge>,
    conns: Vec<Connection>,
    names: HashMap<String, NodeId>,
    deferred_error: Option<CircuitError>,
}

impl CircuitBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        CircuitBuilder {
            nodes: Vec::new(),
            edges: Vec::new(),
            conns: Vec::new(),
            names: HashMap::new(),
            deferred_error: None,
        }
    }

    fn add_node(&mut self, name: &str, kind: NodeKind) -> NodeId {
        let id = NodeId(self.nodes.len());
        if self.names.insert(name.to_owned(), id).is_some() && self.deferred_error.is_none() {
            self.deferred_error = Some(CircuitError::DuplicateName {
                name: name.to_owned(),
            });
        }
        self.nodes.push(Node {
            name: name.to_owned(),
            kind,
        });
        id
    }

    /// Adds an input port.
    pub fn input(&mut self, name: &str) -> NodeId {
        self.add_node(name, NodeKind::Input)
    }

    /// Adds an output port.
    pub fn output(&mut self, name: &str) -> NodeId {
        self.add_node(name, NodeKind::Output)
    }

    /// Adds a gate with the kind's default arity.
    pub fn gate(&mut self, name: &str, kind: GateKind, initial: Bit) -> NodeId {
        let arity = kind.default_arity();
        self.gate_with_arity(name, kind, initial, arity)
    }

    /// Adds a gate with an explicit input count.
    pub fn gate_with_arity(
        &mut self,
        name: &str,
        kind: GateKind,
        initial: Bit,
        arity: usize,
    ) -> NodeId {
        if !kind.supports_arity(arity) && self.deferred_error.is_none() {
            self.deferred_error = Some(CircuitError::BadArity {
                name: name.to_owned(),
                arity,
            });
        }
        self.add_node(
            name,
            NodeKind::Gate {
                kind,
                arity,
                initial,
            },
        )
    }

    fn check_endpoints(&self, from: NodeId, to: NodeId, pin: usize) -> Result<(), CircuitError> {
        let from_node = self
            .nodes
            .get(from.0)
            .ok_or(CircuitError::UnknownNode { index: from.0 })?;
        let to_node = self
            .nodes
            .get(to.0)
            .ok_or(CircuitError::UnknownNode { index: to.0 })?;
        if matches!(from_node.kind, NodeKind::Output) {
            return Err(CircuitError::WrongPortDirection {
                name: from_node.name.clone(),
            });
        }
        if matches!(to_node.kind, NodeKind::Input) {
            return Err(CircuitError::WrongPortDirection {
                name: to_node.name.clone(),
            });
        }
        let arity = match &to_node.kind {
            NodeKind::Gate { arity, .. } => *arity,
            NodeKind::Output => 1,
            NodeKind::Input => unreachable!("rejected above"),
        };
        if pin >= arity {
            return Err(CircuitError::PinOutOfRange {
                node: to_node.name.clone(),
                pin,
                arity,
            });
        }
        if self.edges.iter().any(|e| e.to == to && e.pin == pin) {
            return Err(CircuitError::PinAlreadyDriven {
                node: to_node.name.clone(),
                pin,
            });
        }
        Ok(())
    }

    /// Connects `from` to pin `pin` of `to` through `channel`.
    ///
    /// Any [`OnlineChannel`](ivl_core::channel::OnlineChannel) that is
    /// also `Clone + Send` qualifies (the [`SimChannel`] blanket impl);
    /// clonability lets [`Circuit`]s be duplicated across scenario-sweep
    /// worker threads.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown nodes, out-of-range or doubly driven
    /// pins, or connections against port direction.
    pub fn connect<C>(
        &mut self,
        from: NodeId,
        to: NodeId,
        pin: usize,
        channel: C,
    ) -> Result<EdgeId, CircuitError>
    where
        C: SimChannel + 'static,
    {
        self.check_endpoints(from, to, pin)?;
        let id = EdgeId(self.edges.len());
        self.edges.push(Edge { from, to, pin });
        self.conns.push(Connection::Channel(Box::new(channel)));
        Ok(id)
    }

    /// Connects `from` to pin `pin` of `to` with zero delay. At least one
    /// endpoint must be a port (gates and channels must alternate).
    ///
    /// # Errors
    ///
    /// As [`connect`](CircuitBuilder::connect), plus
    /// [`CircuitError::DirectBetweenGates`] if both endpoints are gates.
    pub fn connect_direct(
        &mut self,
        from: NodeId,
        to: NodeId,
        pin: usize,
    ) -> Result<EdgeId, CircuitError> {
        self.check_endpoints(from, to, pin)?;
        let from_is_gate = matches!(self.nodes[from.0].kind, NodeKind::Gate { .. });
        let to_is_gate = matches!(self.nodes[to.0].kind, NodeKind::Gate { .. });
        if from_is_gate && to_is_gate {
            return Err(CircuitError::DirectBetweenGates {
                from: self.nodes[from.0].name.clone(),
                to: self.nodes[to.0].name.clone(),
            });
        }
        let id = EdgeId(self.edges.len());
        self.edges.push(Edge { from, to, pin });
        self.conns.push(Connection::Direct);
        Ok(id)
    }

    /// Validates and finalizes the circuit.
    ///
    /// # Errors
    ///
    /// Returns the first well-formedness violation: duplicate names, bad
    /// gate arities, or unconnected gate pins / output ports.
    pub fn build(self) -> Result<Circuit, CircuitError> {
        if let Some(err) = self.deferred_error {
            return Err(err);
        }
        // every gate pin and output port must be driven (exactly once —
        // double driving was rejected at connect time)
        for (i, node) in self.nodes.iter().enumerate() {
            let arity = match &node.kind {
                NodeKind::Gate { arity, .. } => *arity,
                NodeKind::Output => 1,
                NodeKind::Input => continue,
            };
            for pin in 0..arity {
                if !self.edges.iter().any(|e| e.to == NodeId(i) && e.pin == pin) {
                    return Err(CircuitError::UnconnectedPin {
                        node: node.name.clone(),
                        pin,
                    });
                }
            }
        }
        let mut outgoing = vec![Vec::new(); self.nodes.len()];
        for (i, e) in self.edges.iter().enumerate() {
            outgoing[e.from.0].push(EdgeId(i));
        }
        let channels = self
            .conns
            .into_iter()
            .map(|c| match c {
                Connection::Direct => None,
                Connection::Channel(ch) => Some(ch),
            })
            .collect();
        Ok(Circuit {
            topo: Arc::new(Topology {
                nodes: self.nodes,
                edges: self.edges,
                outgoing,
                names: Arc::new(self.names),
            }),
            channels,
        })
    }
}

impl Default for CircuitBuilder {
    fn default() -> Self {
        CircuitBuilder::new()
    }
}

impl fmt::Debug for CircuitBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CircuitBuilder")
            .field("nodes", &self.nodes.len())
            .field("edges", &self.edges.len())
            .finish_non_exhaustive()
    }
}

/// A validated circuit, ready to simulate.
///
/// A circuit is two layers: an immutable, `Arc`-shared netlist (nodes,
/// edge endpoints, adjacency, name index) and per-instance channel
/// state (`Box<dyn SimChannel>` per channel edge, `None` for direct
/// connections). Cloning deep-copies only the channels — their
/// single-history and noise/RNG state is what makes clones simulate
/// independently — while every clone keeps pointing at the *same*
/// netlist allocation. This is what lets the parallel
/// [`ScenarioRunner`](crate::ScenarioRunner) hand each worker its own
/// circuit without duplicating a 100k-gate topology per worker.
pub struct Circuit {
    pub(crate) topo: Arc<Topology>,
    /// Mutable per-edge channel state; `None` for direct connections.
    /// Indexed by [`EdgeId`], in lockstep with `topo.edges`.
    pub(crate) channels: Vec<Option<Box<dyn SimChannel>>>,
}

impl Clone for Circuit {
    fn clone(&self) -> Self {
        Circuit {
            topo: Arc::clone(&self.topo),
            channels: self.channels.clone(),
        }
    }
}

impl Circuit {
    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.topo.nodes.len()
    }

    /// Number of edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.topo.edges.len()
    }

    /// Looks a node up by name.
    #[must_use]
    pub fn node(&self, name: &str) -> Option<NodeId> {
        self.topo.names.get(name).copied()
    }

    /// The node's name.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this circuit.
    #[must_use]
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.topo.nodes[id.0].name
    }

    /// The node's kind.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this circuit.
    #[must_use]
    pub fn node_kind(&self, id: NodeId) -> &NodeKind {
        &self.topo.nodes[id.0].kind
    }

    /// Names of every node (ports and gates), in creation order.
    #[must_use]
    pub fn node_names(&self) -> Vec<&str> {
        self.topo.nodes.iter().map(|n| n.name.as_str()).collect()
    }

    /// Names of all input ports, in creation order.
    #[must_use]
    pub fn input_names(&self) -> Vec<&str> {
        self.topo
            .nodes
            .iter()
            .filter(|n| matches!(n.kind, NodeKind::Input))
            .map(|n| n.name.as_str())
            .collect()
    }

    /// Names of all output ports, in creation order.
    #[must_use]
    pub fn output_names(&self) -> Vec<&str> {
        self.topo
            .nodes
            .iter()
            .filter(|n| matches!(n.kind, NodeKind::Output))
            .map(|n| n.name.as_str())
            .collect()
    }

    /// Source, target and pin of an edge.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this circuit.
    #[must_use]
    pub fn edge_endpoints(&self, id: EdgeId) -> (NodeId, NodeId, usize) {
        let e = &self.topo.edges[id.0];
        (e.from, e.to, e.pin)
    }

    /// `true` if `self` and `other` were cloned from the same build and
    /// still share one netlist allocation (`Arc` pointer equality on the
    /// topology). Scenario-sweep workers rely on this: a sweep over any
    /// number of workers holds exactly one copy of the topology.
    #[must_use]
    pub fn shares_topology_with(&self, other: &Circuit) -> bool {
        Arc::ptr_eq(&self.topo, &other.topo)
    }

    /// Replaces the channel on an existing channel edge, keeping the
    /// topology (endpoints, pin, ids) intact. This is how callers swap
    /// an adversary/noise source into a prebuilt circuit without
    /// rebuilding the netlist (e.g. the SPF circuit's per-run noise).
    /// The channel lives outside the `Arc`-shared netlist, so the swap
    /// touches one box pointer — no part of the topology is cloned.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this circuit or refers to a
    /// direct (channel-free) connection — a direct edge can never
    /// legally carry a channel, because gates and channels alternate.
    pub fn replace_channel(&mut self, id: EdgeId, channel: Box<dyn SimChannel>) {
        let slot = &mut self.channels[id.0];
        assert!(
            slot.is_some(),
            "edge {} is a direct connection, not a channel",
            id.0
        );
        *slot = Some(channel);
    }

    /// Number of live circuit clones (including this one) sharing this
    /// circuit's topology allocation. Worker-pool tests use this to pin
    /// that discarded pools *join* their threads (each worker holds
    /// clones) instead of leaking them.
    #[doc(hidden)]
    #[must_use]
    pub fn topology_refs(&self) -> usize {
        Arc::strong_count(&self.topo)
    }

    /// The lowest-index edge that carries a channel, if any.
    pub(crate) fn first_channel_edge(&self) -> Option<EdgeId> {
        self.channels.iter().position(Option::is_some).map(EdgeId)
    }

    /// A fresh box of the channel on `id`, if `id` carries one.
    pub(crate) fn clone_channel(&self, id: EdgeId) -> Option<Box<dyn SimChannel>> {
        self.channels.get(id.0).and_then(Clone::clone)
    }
}

impl fmt::Debug for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Circuit")
            .field("nodes", &self.topo.nodes.len())
            .field("edges", &self.topo.edges.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivl_core::channel::PureDelay;

    fn delay() -> PureDelay {
        PureDelay::new(1.0).unwrap()
    }

    #[test]
    fn builds_simple_pipeline() {
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let g = b.gate("inv", GateKind::Not, Bit::One);
        let y = b.output("y");
        b.connect_direct(a, g, 0).unwrap();
        b.connect(g, y, 0, delay()).unwrap();
        let c = b.build().unwrap();
        assert_eq!(c.node_count(), 3);
        assert_eq!(c.edge_count(), 2);
        assert_eq!(c.node("inv"), Some(g));
        assert_eq!(c.node_name(g), "inv");
        assert_eq!(c.input_names(), vec!["a"]);
        assert_eq!(c.output_names(), vec!["y"]);
        assert!(matches!(c.node_kind(g), NodeKind::Gate { .. }));
        assert_eq!(c.edge_endpoints(EdgeId(0)), (a, g, 0));
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut b = CircuitBuilder::new();
        b.input("x");
        b.output("x");
        assert!(matches!(b.build(), Err(CircuitError::DuplicateName { .. })));
    }

    #[test]
    fn bad_arity_rejected() {
        let mut b = CircuitBuilder::new();
        b.gate_with_arity("n", GateKind::Not, Bit::Zero, 2);
        assert!(matches!(b.build(), Err(CircuitError::BadArity { .. })));
    }

    #[test]
    fn unconnected_pin_rejected() {
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let g = b.gate("and", GateKind::And, Bit::Zero); // 2 pins
        let y = b.output("y");
        b.connect_direct(a, g, 0).unwrap();
        b.connect(g, y, 0, delay()).unwrap();
        assert!(matches!(
            b.build(),
            Err(CircuitError::UnconnectedPin { pin: 1, .. })
        ));
    }

    #[test]
    fn unconnected_output_rejected() {
        let mut b = CircuitBuilder::new();
        b.input("a");
        b.output("y");
        assert!(matches!(
            b.build(),
            Err(CircuitError::UnconnectedPin { .. })
        ));
    }

    #[test]
    fn double_driver_rejected_immediately() {
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let c = b.input("c");
        let g = b.gate("inv", GateKind::Not, Bit::One);
        b.connect_direct(a, g, 0).unwrap();
        assert!(matches!(
            b.connect_direct(c, g, 0),
            Err(CircuitError::PinAlreadyDriven { .. })
        ));
    }

    #[test]
    fn pin_out_of_range_rejected() {
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let g = b.gate("inv", GateKind::Not, Bit::One);
        assert!(matches!(
            b.connect_direct(a, g, 1),
            Err(CircuitError::PinOutOfRange { .. })
        ));
        let y = b.output("y");
        assert!(matches!(
            b.connect(g, y, 1, delay()),
            Err(CircuitError::PinOutOfRange { .. })
        ));
    }

    #[test]
    fn direct_between_gates_rejected() {
        let mut b = CircuitBuilder::new();
        let g1 = b.gate("g1", GateKind::Not, Bit::One);
        let g2 = b.gate("g2", GateKind::Not, Bit::Zero);
        assert!(matches!(
            b.connect_direct(g1, g2, 0),
            Err(CircuitError::DirectBetweenGates { .. })
        ));
        // but a channel between gates is fine
        assert!(b.connect(g1, g2, 0, delay()).is_ok());
    }

    #[test]
    fn port_direction_enforced() {
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let y = b.output("y");
        let g = b.gate("inv", GateKind::Not, Bit::One);
        assert!(matches!(
            b.connect(y, g, 0, delay()),
            Err(CircuitError::WrongPortDirection { .. })
        ));
        assert!(matches!(
            b.connect(g, a, 0, delay()),
            Err(CircuitError::WrongPortDirection { .. })
        ));
        // port-to-port direct wire-through is allowed
        assert!(b.connect_direct(a, y, 0).is_ok());
    }

    #[test]
    fn unknown_node_rejected() {
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let ghost = NodeId(99);
        assert!(matches!(
            b.connect_direct(a, ghost, 0),
            Err(CircuitError::UnknownNode { .. })
        ));
    }

    #[test]
    fn feedback_loop_is_legal() {
        let mut b = CircuitBuilder::new();
        let i = b.input("i");
        let or = b.gate("or", GateKind::Or, Bit::Zero);
        let y = b.output("y");
        b.connect_direct(i, or, 0).unwrap();
        b.connect(or, or, 1, delay()).unwrap(); // feedback
        b.connect(or, y, 0, delay()).unwrap();
        assert!(b.build().is_ok());
    }

    #[test]
    fn debug_impls() {
        let b = CircuitBuilder::new();
        assert!(!format!("{b:?}").is_empty());
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let y = b.output("y");
        b.connect_direct(a, y, 0).unwrap();
        let c = b.build().unwrap();
        assert!(!format!("{c:?}").is_empty());
        assert_eq!(NodeId(3).index(), 3);
        assert_eq!(EdgeId(2).index(), 2);
    }
}
