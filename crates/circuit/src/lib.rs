//! # ivl-circuit
//!
//! Event-driven simulation of binary circuits built from zero-time
//! Boolean gates interconnected by single-history channels — the circuit
//! model of Section II of *"A Faithful Binary Circuit Model with
//! Adversarial Noise"* (DATE 2018).
//!
//! A circuit is a directed multigraph whose nodes are input ports, output
//! ports and gates, and whose edges are channels. Gates and channels
//! alternate on every path; port-adjacent connections may be direct
//! (zero-delay), matching the paper's composition convention.
//!
//! Feedback loops are fully supported — they are the whole point: the
//! SPF circuit of Fig. 5 is a fed-back OR gate. The simulator feeds each
//! channel its input transitions in time order and honours the pairwise
//! non-FIFO cancellation semantics of `ivl-core`, including *unscheduling*
//! pending output events that a later input transition cancels — via a
//! slab event pool with generation-stamped ids, so a mismatched
//! cancellation is a hard error rather than silent corruption.
//!
//! For Monte-Carlo batteries, [`ScenarioRunner`] fans scenarios (input
//! signals plus noise seeds) across worker threads, each simulating its
//! own clone of the circuit with fully reused per-run state.
//!
//! ```
//! use ivl_circuit::{CircuitBuilder, GateKind, Simulator};
//! use ivl_core::channel::PureDelay;
//! use ivl_core::{Bit, Signal};
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = CircuitBuilder::new();
//! let a = b.input("a");
//! let inv = b.gate("inv", GateKind::Not, Bit::One);
//! let y = b.output("y");
//! b.connect_direct(a, inv, 0)?;
//! b.connect(inv, y, 0, PureDelay::new(1.0)?)?;
//! let mut sim = Simulator::new(b.build()?);
//! sim.set_input("a", Signal::pulse(0.0, 2.0)?)?;
//! let run = sim.run(10.0)?;
//! let out = run.signal("y")?;
//! assert_eq!(out.initial(), Bit::One);
//! assert_eq!(out.len(), 2); // inverted pulse, delayed by 1
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod error;
mod gate;
pub mod generate;
mod graph;
mod queue;
mod runner;
mod sim;
pub mod vcd;

pub use error::{CircuitError, SimError};
pub use gate::{GateKind, TruthTable};
pub use graph::{Circuit, CircuitBuilder, EdgeId, NodeId, NodeKind};
pub use queue::QueueBackend;
pub use runner::{
    FailurePolicy, FaultKind, FaultPlan, Scenario, ScenarioFailure, ScenarioOutcome,
    ScenarioRunner, SweepAborted, SweepResult, SweepStats,
};
pub use sim::{SimResult, Simulator};
