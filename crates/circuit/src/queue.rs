//! Pending-event queues for the event-driven simulator.
//!
//! The simulator orders pending output transitions by `(time, seq)` —
//! time first, schedule sequence as the tie-break, so causes precede
//! effects at equal times and runs are deterministic. This module
//! provides two interchangeable implementations of that order behind the
//! [`EventQueue`] trait:
//!
//! * [`HeapQueue`] — the classic global `BinaryHeap`. `O(log n)` per
//!   operation, kept as the bit-exact reference backend
//!   ([`QueueBackend::Heap`], forced with the `IVL_FORCE_HEAP`
//!   environment variable).
//! * [`CalendarQueue`] — a bucketed calendar queue (timing wheel with a
//!   sorted drain buffer and an overflow level). Amortized `O(1)` push
//!   and pop: events land in a bucket chosen by integer division, only
//!   the *current* bucket is ever sorted, and events beyond the wheel
//!   horizon wait in an overflow list that is redistributed when the
//!   wheel catches up. Cancelled events are removed eagerly
//!   ([`EventQueue::discard`]) instead of lazily transiting the queue as
//!   stale keys.
//!
//! Both backends deliver *exactly* the same `(time, seq)` order, so a
//! simulation is bitwise identical under either — the
//! `queue_equivalence` proptest suite holds them to that bar. That
//! equivalence is what makes [`QueueBackend::Auto`] (the default) safe:
//! the simulator times both backends on the first runs of a workload and
//! commits to the faster one, and the choice can never change a result,
//! only its cost. The
//! calendar bucket width is sized from the circuit's channels via
//! [`OnlineChannel::delay_hint`](ivl_core::channel::OnlineChannel::delay_hint):
//! the involution channels' bounded delay ranges put typical event
//! horizons a small, known number of buckets ahead.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::sim::EventId;

/// Which pending-event queue implementation a simulator uses.
///
/// The default is [`Auto`](QueueBackend::Auto): the simulator probes the
/// calendar queue and the reference heap on its first runs of a workload
/// and commits to whichever is faster (both deliver bit-identical
/// results, so the choice is invisible in the output). A concrete
/// backend can be forced per simulator with
/// [`Simulator::with_queue_backend`](crate::Simulator::with_queue_backend)
/// or process-wide with the `IVL_QUEUE` / `IVL_FORCE_HEAP` environment
/// variables (see [`from_env`](QueueBackend::from_env)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum QueueBackend {
    /// Adaptive: probe both backends on the first runs of a workload
    /// (cancel-heavy runs commit to the wheel immediately) and commit to
    /// the faster one. Results are bit-identical either way.
    #[default]
    Auto,
    /// Bucketed calendar queue (timing wheel + sorted overflow): the
    /// fast choice on deep pipelines and cancel-heavy churn.
    Calendar,
    /// Global binary heap: the bit-exact reference implementation.
    Heap,
}

impl QueueBackend {
    /// The default backend, honouring the environment:
    ///
    /// * `IVL_FORCE_HEAP` set (to anything but `0` or the empty string)
    ///   forces [`Heap`](QueueBackend::Heap) — kept for compatibility,
    ///   and it wins over `IVL_QUEUE`.
    /// * `IVL_QUEUE=heap`, `IVL_QUEUE=wheel` (or `calendar`) and
    ///   `IVL_QUEUE=auto` select the matching backend; anything else
    ///   (including unset) yields [`Auto`](QueueBackend::Auto).
    #[must_use]
    pub fn from_env() -> Self {
        if let Ok(v) = std::env::var("IVL_FORCE_HEAP") {
            if !v.is_empty() && v != "0" {
                return QueueBackend::Heap;
            }
        }
        match std::env::var("IVL_QUEUE").as_deref() {
            Ok("heap") => QueueBackend::Heap,
            Ok("wheel" | "calendar") => QueueBackend::Calendar,
            _ => QueueBackend::Auto,
        }
    }
}

/// A pending event: its delivery time, schedule sequence number (the
/// total-order tie-break) and pool handle.
#[derive(Debug, Clone, Copy)]
pub(crate) struct EventKey {
    pub(crate) time: f64,
    pub(crate) seq: u64,
    pub(crate) id: EventId,
}

impl EventKey {
    fn order(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .total_cmp(&other.time)
            .then(self.seq.cmp(&other.seq))
    }
}

impl PartialEq for EventKey {
    fn eq(&self, other: &Self) -> bool {
        self.order(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for EventKey {}

impl PartialOrd for EventKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for EventKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.order(other)
    }
}

/// Minimum-first queue of pending events, ordered by `(time, seq)`.
///
/// `peek`/`pop` take `&mut self` because the calendar backend advances
/// its wheel (and sorts the next bucket) lazily on access.
pub(crate) trait EventQueue {
    /// Removes every event, keeping allocated capacity.
    fn clear(&mut self);
    /// Inserts an event. Times earlier than already-popped events are
    /// permitted and are delivered next, exactly as a heap would.
    fn push(&mut self, key: EventKey);
    /// The minimum event, without removing it.
    fn peek(&mut self) -> Option<EventKey>;
    /// Removes and returns the minimum event.
    fn pop(&mut self) -> Option<EventKey>;
    /// Removes and returns the minimum event if its time is `≤ time` —
    /// the fused peek-compare-pop of the simulator's delivery loop.
    fn pop_at_or_before(&mut self, time: f64) -> Option<EventKey>;
    /// Eagerly removes a cancelled event identified by its exact
    /// `(time, seq)`. Backends may decline (lazy deletion): the caller
    /// must still filter stale pops by pool generation.
    fn discard(&mut self, time: f64, seq: u64);
}

// ======================================================================
// Heap backend
// ======================================================================

/// The reference backend: a global binary min-heap.
#[derive(Debug, Default)]
pub(crate) struct HeapQueue {
    heap: BinaryHeap<Reverse<EventKey>>,
}

impl EventQueue for HeapQueue {
    fn clear(&mut self) {
        self.heap.clear();
    }

    fn push(&mut self, key: EventKey) {
        self.heap.push(Reverse(key));
    }

    fn peek(&mut self) -> Option<EventKey> {
        self.heap.peek().map(|Reverse(k)| *k)
    }

    fn pop(&mut self) -> Option<EventKey> {
        self.heap.pop().map(|Reverse(k)| k)
    }

    fn pop_at_or_before(&mut self, time: f64) -> Option<EventKey> {
        match self.heap.peek() {
            Some(Reverse(k)) if k.time <= time => self.heap.pop().map(|Reverse(k)| k),
            _ => None,
        }
    }

    fn discard(&mut self, _time: f64, _seq: u64) {
        // lazy deletion: the stale key is filtered at pop time by the
        // caller's generation check
    }
}

// ======================================================================
// Calendar backend
// ======================================================================

/// Bucket geometry for a [`CalendarQueue`], derived from a circuit's
/// channel delay hints.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct CalendarConfig {
    /// Bucket width in simulation time units.
    pub(crate) width: f64,
    /// Number of wheel buckets (a power of two).
    pub(crate) buckets: usize,
}

impl Default for CalendarConfig {
    fn default() -> Self {
        CalendarConfig {
            width: 0.5,
            buckets: 256,
        }
    }
}

impl CalendarConfig {
    /// Sizes the wheel from channel delay hints: the bucket width is
    /// the *smallest* hint — the finest timescale at which any gate can
    /// reschedule, hence a good static proxy for event spacing (a width
    /// keyed to the largest delay would pile every in-flight event of a
    /// wide-fanout circuit into one bucket). The wheel covers four
    /// times the largest hint before spilling to the overflow level, so
    /// the bounded delay ranges of the involution channels keep
    /// steady-state operation overflow-free.
    pub(crate) fn from_delay_hints(hints: impl IntoIterator<Item = f64>) -> Self {
        let mut min = f64::INFINITY;
        let mut max = 0.0f64;
        for d in hints {
            if d.is_finite() && d > 0.0 {
                min = min.min(d);
                max = max.max(d);
            }
        }
        if !min.is_finite() {
            return CalendarConfig::default();
        }
        let width = min;
        let span = (4.0 * max / width).ceil();
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let buckets = if span.is_finite() && span >= 1.0 {
            (span as usize).next_power_of_two().clamp(64, 16384)
        } else {
            256
        };
        CalendarConfig { width, buckets }
    }
}

/// The calendar-queue backend: a timing wheel of unsorted buckets, a
/// sorted drain buffer for the current bucket, and an overflow level for
/// events beyond the wheel horizon.
///
/// Every event is assigned the *absolute* bucket number
/// `⌊time / width⌋`. Because that partition is a pure, monotone function
/// of the timestamp (no arithmetic against a moving wheel origin), two
/// events always land in correctly ordered buckets regardless of when
/// they were pushed — which is what makes the pop order *bitwise*
/// identical to the reference heap rather than merely approximately
/// time-sorted.
///
/// Invariants (`cur` is the absolute bucket number being drained):
///
/// * `drain` holds every stored event with bucket `≤ cur`, sorted
///   *descending* by `(time, seq)` — the minimum pops from the back.
/// * ring slot `n % buckets.len()` holds events of absolute bucket `n`
///   for `cur < n < cur + buckets.len()`, unsorted.
/// * `overflow` holds events at or beyond the wheel horizon, unsorted;
///   `overflow_min_bucket` is a lower bound on their minimum bucket.
///
/// Pushes into the past (relative to the drain position) are legal and
/// binary-insert into `drain`, preserving the global `(time, seq)` pop
/// order exactly as a heap would.
#[derive(Debug)]
pub(crate) struct CalendarQueue {
    width: f64,
    /// `1 / width`: multiplying is ~5× cheaper than dividing in the
    /// per-event bucket computation (consistency, not the exact
    /// quotient, is what ordering needs).
    inv_width: f64,
    /// `buckets.len() - 1`; the length is a power of two, so `n & mask`
    /// is `n mod len` (also for negative `n` in two's complement).
    mask: i64,
    buckets: Vec<Vec<EventKey>>,
    /// Absolute bucket number currently feeding `drain`.
    cur: i64,
    /// Events resident in wheel buckets (excludes `drain` and
    /// `overflow`).
    wheel_len: usize,
    drain: Vec<EventKey>,
    overflow: Vec<EventKey>,
    overflow_min_bucket: i64,
}

impl CalendarQueue {
    /// How many tail entries `discard` inspects before giving up and
    /// leaving a lazy stale key.
    const DISCARD_SCAN: usize = 8;

    pub(crate) fn new(config: CalendarConfig) -> Self {
        debug_assert!(config.buckets.is_power_of_two());
        debug_assert!(config.width > 0.0);
        CalendarQueue {
            width: config.width,
            inv_width: config.width.recip(),
            mask: config.buckets as i64 - 1,
            buckets: (0..config.buckets).map(|_| Vec::new()).collect(),
            cur: 0,
            wheel_len: 0,
            drain: Vec::new(),
            overflow: Vec::new(),
            overflow_min_bucket: i64::MAX,
        }
    }

    /// The geometry this queue was built with.
    pub(crate) fn config(&self) -> CalendarConfig {
        CalendarConfig {
            width: self.width,
            buckets: self.buckets.len(),
        }
    }

    /// The absolute bucket number of `time` — a pure monotone function
    /// of the timestamp (saturating at the `i64` range ends, which only
    /// degrades bucketing granularity, never ordering).
    fn bucket_of(&self, time: f64) -> i64 {
        #[allow(clippy::cast_possible_truncation)]
        let n = (time * self.inv_width).floor() as i64;
        n
    }

    fn ring_slot(&self, bucket: i64) -> usize {
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let slot = (bucket & self.mask) as usize;
        slot
    }

    /// Moves the contents of the wheel slot for absolute bucket
    /// `bucket` into `drain` and sorts it for popping.
    fn load_bucket(&mut self, bucket: i64) {
        debug_assert!(self.drain.is_empty());
        let slot = self.ring_slot(bucket);
        std::mem::swap(&mut self.drain, &mut self.buckets[slot]);
        self.wheel_len -= self.drain.len();
        // descending: the minimum pops from the back in O(1)
        self.drain.sort_unstable_by(|a, b| b.order(a));
    }

    /// Re-pushes every overflow event (after recomputing nothing): the
    /// ones whose bucket now falls inside the wheel window move into
    /// the wheel/drain, the rest return to overflow with an exactly
    /// recomputed `overflow_min_bucket`.
    fn migrate_overflow(&mut self) {
        self.overflow_min_bucket = i64::MAX;
        let pending = std::mem::take(&mut self.overflow);
        for key in pending {
            self.push(key);
        }
    }

    /// Ensures `drain` holds the queue minimum (advancing the wheel and
    /// redistributing overflow as needed). Returns `false` if the queue
    /// is empty.
    ///
    /// The wheel advance must never pass `overflow_min_bucket`: the
    /// overflow boundary is relative to where `cur` stood at *push*
    /// time, so a recently pushed wheel event can occupy a *later*
    /// bucket than an old overflow event — overflow is migrated into
    /// the wheel before `cur` crosses it.
    fn fill_drain(&mut self) -> bool {
        if !self.drain.is_empty() {
            return true;
        }
        loop {
            if self.wheel_len > 0 {
                // bounded by one wheel revolution: wheel_len > 0
                // guarantees a non-empty slot within buckets.len()
                // steps (or we stop earlier at the overflow boundary)
                while self.cur.saturating_add(1) < self.overflow_min_bucket {
                    self.cur += 1;
                    let slot = self.ring_slot(self.cur);
                    if !self.buckets[slot].is_empty() {
                        self.load_bucket(self.cur);
                        return true;
                    }
                }
                // the next occupied wheel bucket lies at or beyond the
                // overflow minimum: fold the overflow in (its minimum
                // is within one bucket of `cur`, hence inside the
                // window) and rescan
                self.migrate_overflow();
                continue;
            }
            if self.overflow.is_empty() {
                return false;
            }
            // the wheel is empty: rebase it at the overflow minimum and
            // redistribute. overflow_min_bucket is a lower bound (eager
            // discards may have removed the true minimum), so one
            // redistribution round may land everything back in
            // overflow — but then the bound is recomputed exactly, and
            // the next round makes progress.
            self.cur = self.overflow_min_bucket;
            self.migrate_overflow();
            if !self.drain.is_empty() {
                return true;
            }
        }
    }

    /// Binary-searches `drain` (sorted descending) for the insertion
    /// point of `key`.
    fn drain_position(&self, key: &EventKey) -> usize {
        self.drain
            .partition_point(|e| e.order(key) == std::cmp::Ordering::Greater)
    }
}

impl EventQueue for CalendarQueue {
    fn clear(&mut self) {
        for b in &mut self.buckets {
            b.clear();
        }
        self.cur = 0;
        self.wheel_len = 0;
        self.drain.clear();
        self.overflow.clear();
        self.overflow_min_bucket = i64::MAX;
    }

    fn push(&mut self, key: EventKey) {
        let n = self.bucket_of(key.time);
        if n <= self.cur {
            let pos = self.drain_position(&key);
            self.drain.insert(pos, key);
        } else if n.saturating_sub(self.cur) < self.buckets.len() as i64 {
            let slot = self.ring_slot(n);
            self.buckets[slot].push(key);
            self.wheel_len += 1;
        } else {
            if n < self.overflow_min_bucket {
                self.overflow_min_bucket = n;
            }
            self.overflow.push(key);
        }
    }

    fn peek(&mut self) -> Option<EventKey> {
        if self.fill_drain() {
            self.drain.last().copied()
        } else {
            None
        }
    }

    fn pop(&mut self) -> Option<EventKey> {
        if self.fill_drain() {
            self.drain.pop()
        } else {
            None
        }
    }

    fn pop_at_or_before(&mut self, time: f64) -> Option<EventKey> {
        if self.fill_drain() && self.drain.last().is_some_and(|k| k.time <= time) {
            self.drain.pop()
        } else {
            None
        }
    }

    fn discard(&mut self, time: f64, seq: u64) {
        let n = self.bucket_of(time);
        if n <= self.cur {
            // exact key: the id is irrelevant for ordering
            let probe = EventKey {
                time,
                seq,
                id: EventId::TOMBSTONE,
            };
            let pos = self.drain_position(&probe);
            if self
                .drain
                .get(pos)
                .is_some_and(|e| e.time == time && e.seq == seq)
            {
                self.drain.remove(pos);
            }
        } else if n.saturating_sub(self.cur) < self.buckets.len() as i64 {
            // scan only the most recent pushes: cancellations
            // overwhelmingly target an event scheduled moments ago, and
            // an unbounded scan would make wide-fanout cancel storms
            // quadratic. A miss simply leaves a stale key for the
            // pop-time generation filter (the heap's discipline).
            let slot = self.ring_slot(n);
            let bucket = &mut self.buckets[slot];
            let start = bucket.len().saturating_sub(Self::DISCARD_SCAN);
            if let Some(pos) = bucket[start..].iter().position(|e| e.seq == seq) {
                bucket.swap_remove(start + pos);
                self.wheel_len -= 1;
            }
        } else {
            let start = self.overflow.len().saturating_sub(Self::DISCARD_SCAN);
            if let Some(pos) = self.overflow[start..].iter().position(|e| e.seq == seq) {
                self.overflow.swap_remove(start + pos);
                // overflow_min_bucket may now underestimate the
                // survivors' minimum; it is only ever used as a lower
                // bound, so leaving it is sound.
            }
        }
    }
}

// ======================================================================
// Backend dispatch
// ======================================================================

/// Enum dispatch over the two backends (no vtable in the hot loop).
#[derive(Debug)]
enum BackendQueue {
    Heap(HeapQueue),
    Calendar(CalendarQueue),
}

/// The simulator's queue slot: the active backend plus the most
/// recently retired one. Keeping the retired queue alive makes backend
/// switches allocation-free after each backend has been built once —
/// the [`QueueBackend::Auto`] probe bounces wheel → heap → winner
/// across a workload's first runs, and a steady-state run must not pay
/// a rebuild for that.
#[derive(Debug)]
pub(crate) struct QueueImpl {
    active: BackendQueue,
    spare: Option<BackendQueue>,
}

impl QueueImpl {
    /// Makes `backend` (which must be concrete — the simulator resolves
    /// [`QueueBackend::Auto`] before preparing a run) the active,
    /// emptied queue, reusing existing allocations when the backend and
    /// geometry already match.
    pub(crate) fn ensure(&mut self, backend: QueueBackend, config: CalendarConfig) {
        let want_heap = match backend {
            QueueBackend::Heap => true,
            QueueBackend::Calendar => false,
            QueueBackend::Auto => unreachable!("Auto is resolved before queue construction"),
        };
        if want_heap != matches!(self.active, BackendQueue::Heap(_)) {
            // retire the active backend instead of dropping it
            let incoming = self.spare.take().unwrap_or_else(|| {
                if want_heap {
                    BackendQueue::Heap(HeapQueue::default())
                } else {
                    BackendQueue::Calendar(CalendarQueue::new(config))
                }
            });
            self.spare = Some(std::mem::replace(&mut self.active, incoming));
        }
        match &mut self.active {
            BackendQueue::Heap(q) => q.clear(),
            BackendQueue::Calendar(q) => {
                if q.config() == config {
                    q.clear();
                } else {
                    self.active = BackendQueue::Calendar(CalendarQueue::new(config));
                }
            }
        }
    }

    #[cfg(test)]
    fn is_heap(&self) -> bool {
        matches!(self.active, BackendQueue::Heap(_))
    }
}

impl Default for QueueImpl {
    fn default() -> Self {
        QueueImpl {
            active: BackendQueue::Heap(HeapQueue::default()),
            spare: None,
        }
    }
}

impl EventQueue for QueueImpl {
    fn clear(&mut self) {
        match &mut self.active {
            BackendQueue::Heap(q) => q.clear(),
            BackendQueue::Calendar(q) => q.clear(),
        }
    }

    fn push(&mut self, key: EventKey) {
        match &mut self.active {
            BackendQueue::Heap(q) => q.push(key),
            BackendQueue::Calendar(q) => q.push(key),
        }
    }

    fn peek(&mut self) -> Option<EventKey> {
        match &mut self.active {
            BackendQueue::Heap(q) => q.peek(),
            BackendQueue::Calendar(q) => q.peek(),
        }
    }

    fn pop(&mut self) -> Option<EventKey> {
        match &mut self.active {
            BackendQueue::Heap(q) => q.pop(),
            BackendQueue::Calendar(q) => q.pop(),
        }
    }

    fn pop_at_or_before(&mut self, time: f64) -> Option<EventKey> {
        match &mut self.active {
            BackendQueue::Heap(q) => q.pop_at_or_before(time),
            BackendQueue::Calendar(q) => q.pop_at_or_before(time),
        }
    }

    fn discard(&mut self, time: f64, seq: u64) {
        match &mut self.active {
            BackendQueue::Heap(q) => q.discard(time, seq),
            BackendQueue::Calendar(q) => q.discard(time, seq),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(time: f64, seq: u64) -> EventKey {
        EventKey {
            time,
            seq,
            id: EventId::TOMBSTONE,
        }
    }

    fn drain_all(q: &mut impl EventQueue) -> Vec<(f64, u64)> {
        let mut out = Vec::new();
        while let Some(k) = q.pop() {
            out.push((k.time, k.seq));
        }
        out
    }

    fn both() -> (HeapQueue, CalendarQueue) {
        (
            HeapQueue::default(),
            CalendarQueue::new(CalendarConfig {
                width: 1.0,
                buckets: 8,
            }),
        )
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let (mut h, mut c) = both();
        let keys = [
            key(5.0, 0),
            key(1.0, 1),
            key(5.0, 2),
            key(0.0, 3),
            key(100.0, 4), // overflow (beyond the 8-bucket wheel)
            key(3.5, 5),
            key(3.5, 6),
        ];
        for k in keys {
            h.push(k);
            c.push(k);
        }
        let expect = vec![
            (0.0, 3),
            (1.0, 1),
            (3.5, 5),
            (3.5, 6),
            (5.0, 0),
            (5.0, 2),
            (100.0, 4),
        ];
        assert_eq!(drain_all(&mut h), expect);
        assert_eq!(drain_all(&mut c), expect);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let (mut h, mut c) = both();
        for k in [key(2.0, 0), key(4.0, 1), key(50.0, 2)] {
            h.push(k);
            c.push(k);
        }
        assert_eq!(h.pop().unwrap().seq, 0);
        assert_eq!(c.pop().unwrap().seq, 0);
        // same-time-as-last-popped push (direct gate fanout does this)
        for k in [key(2.0, 3), key(3.0, 4)] {
            h.push(k);
            c.push(k);
        }
        let expect = vec![(2.0, 3), (3.0, 4), (4.0, 1), (50.0, 2)];
        assert_eq!(drain_all(&mut h), expect);
        assert_eq!(drain_all(&mut c), expect);
    }

    #[test]
    fn peek_does_not_consume() {
        let (mut h, mut c) = both();
        for q in [&mut h as &mut dyn EventQueue, &mut c] {
            q.push(key(7.0, 0));
            q.push(key(3.0, 1));
            assert_eq!(q.peek().unwrap().time, 3.0);
            assert_eq!(q.peek().unwrap().time, 3.0);
            assert_eq!(q.pop().unwrap().time, 3.0);
            assert_eq!(q.peek().unwrap().time, 7.0);
        }
    }

    #[test]
    fn calendar_discard_removes_everywhere() {
        let mut c = CalendarQueue::new(CalendarConfig {
            width: 1.0,
            buckets: 8,
        });
        c.push(key(0.5, 0)); // drain region
        c.push(key(3.0, 1)); // wheel
        c.push(key(200.0, 2)); // overflow
        c.push(key(4.0, 3));
        // materialize the drain so the 0.5 key sits in the sorted buffer
        assert_eq!(c.peek().unwrap().seq, 0);
        c.discard(0.5, 0);
        c.discard(3.0, 1);
        c.discard(200.0, 2);
        assert_eq!(drain_all(&mut c), vec![(4.0, 3)]);
    }

    #[test]
    fn calendar_clear_resets_time_base() {
        let mut c = CalendarQueue::new(CalendarConfig {
            width: 1.0,
            buckets: 8,
        });
        c.push(key(1000.0, 0));
        assert_eq!(c.pop().unwrap().seq, 0);
        c.clear();
        // events at small times must be reachable again after clear
        c.push(key(0.25, 1));
        assert_eq!(c.pop().unwrap().seq, 1);
        assert!(c.pop().is_none());
    }

    #[test]
    fn overflow_rebase_handles_sparse_far_future() {
        let mut c = CalendarQueue::new(CalendarConfig {
            width: 1.0,
            buckets: 8,
        });
        // all far beyond the wheel, in reverse order
        for (i, t) in [1e6, 5e5, 2e6, 5e5 + 0.25].iter().enumerate() {
            c.push(key(*t, i as u64));
        }
        assert_eq!(
            drain_all(&mut c),
            vec![(5e5, 1), (5e5 + 0.25, 3), (1e6, 0), (2e6, 2)]
        );
    }

    #[test]
    fn late_wheel_events_cannot_overtake_overflow() {
        // Regression: the overflow boundary is relative to `cur` at push
        // time. An event pushed early lands in overflow (bucket 100 ≥
        // 0 + 8); after the wheel advances, a *later-timed* event can
        // land in the wheel (bucket 110 within 50 + 8·…), and a naive
        // advance would deliver it first. The wheel must stop at the
        // overflow minimum and migrate.
        let mut c = CalendarQueue::new(CalendarConfig {
            width: 1.0,
            buckets: 64,
        });
        c.push(key(100.5, 0)); // overflow relative to cur = 0 (100 ≥ 64)
        c.push(key(50.5, 1)); // wheel
        assert_eq!(c.pop().unwrap().seq, 1); // cur advances to bucket 50
                                             // bucket 110 is now inside the wheel window (110 − 50 < 64)
                                             // while the earlier event at 100.5 still sits in overflow
        c.push(key(110.0, 40));
        assert_eq!(
            c.pop().unwrap().seq,
            0,
            "overflow event at 100.5 must precede the wheel event at 110"
        );
        assert_eq!(c.pop().unwrap().seq, 40);
        assert!(c.pop().is_none());
    }

    #[test]
    fn config_from_hints() {
        let cfg = CalendarConfig::from_delay_hints([1.0, 2.0, 4.0]);
        assert_eq!(cfg.width, 1.0); // the smallest hint
        assert_eq!(cfg.buckets, 64); // span 4·4/1 = 16, clamped up to 64
                                     // degenerate hints fall back to the default geometry
        assert_eq!(
            CalendarConfig::from_delay_hints([f64::NAN, -1.0, 0.0]),
            CalendarConfig::default()
        );
        assert_eq!(
            CalendarConfig::from_delay_hints(std::iter::empty()),
            CalendarConfig::default()
        );
        // extreme spans clamp to the bucket bounds
        let wide = CalendarConfig::from_delay_hints([1e-9, 1e-9, 1e9]);
        assert_eq!(wide.buckets, 16384);
    }

    #[test]
    fn backend_from_env_contract() {
        // from_env is read in Simulator::new; exercising the parse here
        // keeps the contract pinned without racing other tests on the
        // process environment.
        assert_eq!(QueueBackend::default(), QueueBackend::Auto);
    }

    #[test]
    fn queue_impl_ensure_switches_backends() {
        let mut q = QueueImpl::default();
        assert!(q.is_heap());
        q.ensure(QueueBackend::Calendar, CalendarConfig::default());
        assert!(!q.is_heap());
        q.push(key(1.0, 0));
        q.ensure(QueueBackend::Calendar, CalendarConfig::default());
        assert!(q.pop().is_none(), "ensure clears the queue");
        q.ensure(QueueBackend::Heap, CalendarConfig::default());
        assert!(q.is_heap());
        // the retired calendar is kept as the spare: switching back must
        // reuse it (and still come up empty)
        q.push(key(2.0, 1));
        q.ensure(QueueBackend::Calendar, CalendarConfig::default());
        assert!(!q.is_heap());
        assert!(q.pop().is_none(), "spare comes back cleared");
    }
}
