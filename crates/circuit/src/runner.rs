//! Parallel multi-scenario sweeps over a **persistent, supervised
//! worker pool**: fan a batch of stimuli / noise seeds over worker
//! threads, each simulating its own clone of one circuit.
//!
//! The paper's Monte-Carlo experiments (adversary batteries, η-noise
//! sweeps) run the *same* circuit under thousands of slightly different
//! scenarios. A [`ScenarioRunner`] amortizes setup across the batch
//! *and across batches*: worker threads are spawned once (lazily, on
//! the first [`run`](ScenarioRunner::run)) and live for the runner's
//! lifetime. Every worker's circuit clone `Arc`-shares the immutable
//! netlist topology with the template — the only per-worker state is
//! the mutable channel boxes (single-history + noise RNG) and one
//! [`Simulator`] whose per-run working memory stays warm scenario after
//! scenario and sweep after sweep. A 10k-scenario sweep therefore
//! performs zero per-scenario allocation, zero thread spawns, and holds
//! one template plus one working copy of the netlist per worker — all
//! `Arc`-sharing a single topology no matter the worker count.
//!
//! Work is distributed dynamically: workers pull fixed-size index
//! chunks from a shared atomic cursor, so a scenario that simulates 100×
//! longer than its neighbours no longer stalls a statically assigned
//! stripe (the old `i % workers` discipline).
//!
//! # Supervision
//!
//! Every scenario executes under a per-scenario supervisor:
//!
//! * a **panic** in the simulator or a channel is contained by
//!   `catch_unwind`, the worker's simulator is rebuilt from the
//!   template, and the failure is recorded as a typed
//!   [`ScenarioFailure`] — the pool survives;
//! * a **wall-clock budget** ([`with_scenario_timeout`]) is enforced by
//!   a watchdog thread that cancels stragglers cooperatively (the
//!   simulator polls a cancel flag once per event batch);
//! * the **event budget** ([`with_max_events`]) is, as before, reported
//!   per scenario as [`SimError::MaxEventsExceeded`];
//! * the [`FailurePolicy`] decides what a failure does to the sweep:
//!   record and continue ([`FailurePolicy::Skip`], the default), retry
//!   with the same seed up to a bound ([`FailurePolicy::Retry`]), or
//!   stop dispatching and report the failing scenario's identity
//!   ([`FailurePolicy::Abort`] via [`try_run`]).
//!
//! A seeded [`FaultPlan`] can inject deterministic faults (panics,
//! budget exhaustion, stalls, corrupted channels) into chosen scenario
//! indices — the chaos-testing hook that proves the supervisor holds.
//!
//! Scenarios with a [`seed`](Scenario::with_seed) are bitwise
//! reproducible regardless of worker count, chunk scheduling, or how
//! many sweeps the runner has executed before: the seed pins every
//! channel's noise stream via [`Simulator::reseed_noise`]. Unseeded
//! scenarios on noisy circuits draw from whatever stream state their
//! worker's simulator has reached — which now also depends on dynamic
//! chunk assignment — so seed your scenarios when you need determinism.
//!
//! [`with_scenario_timeout`]: ScenarioRunner::with_scenario_timeout
//! [`with_max_events`]: ScenarioRunner::with_max_events
//! [`try_run`]: ScenarioRunner::try_run

use std::cell::UnsafeCell;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ivl_core::channel::{FeedEffect, OnlineChannel};
use ivl_core::{PulseStats, Signal, Transition};

use crate::error::SimError;
use crate::graph::Circuit;
use crate::queue::QueueBackend;
use crate::sim::{split_mix64, SimResult, Simulator};

/// One entry of a sweep: a label, input assignments, and an optional
/// noise seed.
#[derive(Debug, Clone)]
pub struct Scenario {
    label: String,
    inputs: Vec<(String, Signal)>,
    seed: Option<u64>,
}

impl Scenario {
    /// Creates an empty scenario (all inputs zero, no reseeding).
    #[must_use]
    pub fn new(label: impl Into<String>) -> Self {
        Scenario {
            label: label.into(),
            inputs: Vec::new(),
            seed: None,
        }
    }

    /// Assigns `signal` to the input port `port`. Ports not assigned in
    /// a scenario are driven with the zero signal — assignments never
    /// leak between scenarios.
    #[must_use]
    pub fn with_input(mut self, port: impl Into<String>, signal: Signal) -> Self {
        self.inputs.push((port.into(), signal));
        self
    }

    /// Pins every noise channel's RNG stream to `seed` for this scenario
    /// (mixed per edge), making the run reproducible independent of
    /// worker count.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// The scenario's label.
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The scenario's noise seed, if any.
    #[must_use]
    pub fn seed(&self) -> Option<u64> {
        self.seed
    }
}

/// The outcome of one scenario within a sweep.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    label: String,
    result: Result<SimResult, SimError>,
}

impl ScenarioOutcome {
    /// The label of the scenario that produced this outcome.
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The run result (a [`SimResult`] or the simulation error).
    pub fn result(&self) -> &Result<SimResult, SimError> {
        &self.result
    }
}

/// What a sweep does when a scenario fails (simulation error, contained
/// panic, or watchdog cancellation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FailurePolicy {
    /// Stop dispatching new scenarios on the first failure, cancel
    /// stragglers, and report the failing scenario's identity (index,
    /// label, seed, cause) through
    /// [`try_run`](ScenarioRunner::try_run)'s error.
    Abort,
    /// Record the failure in the scenario's outcome and keep sweeping
    /// (the default).
    #[default]
    Skip,
    /// Re-run a failing scenario up to this many extra times — with the
    /// *same* seed, so a real (deterministic) bug fails every attempt
    /// and is reported, while infrastructure flakes (a transient panic,
    /// a machine-load timeout) recover. Still-failing scenarios are
    /// then recorded as under [`FailurePolicy::Skip`].
    Retry(u32),
}

/// One scenario's failure, with everything needed to replay it: the
/// scenario's index in the sweep, its label and noise seed, the typed
/// cause, and how many retries were spent on it.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioFailure {
    /// Index of the scenario in the swept slice.
    pub index: usize,
    /// The scenario's label.
    pub label: String,
    /// The scenario's noise seed, if it had one.
    pub seed: Option<u64>,
    /// Why it failed: a simulation error, a contained worker panic
    /// ([`SimError::ScenarioPanicked`]), or a watchdog cancellation
    /// ([`SimError::Cancelled`]).
    pub cause: SimError,
    /// Retries spent before giving up (0 unless the policy is
    /// [`FailurePolicy::Retry`]).
    pub retries: u32,
}

impl fmt::Display for ScenarioFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "scenario {} ({:?}", self.index, self.label)?;
        match self.seed {
            Some(seed) => write!(f, ", seed {seed})")?,
            None => write!(f, ", unseeded)")?,
        }
        if self.retries > 0 {
            write!(f, " failed after {} retries: {}", self.retries, self.cause)
        } else {
            write!(f, " failed: {}", self.cause)
        }
    }
}

impl std::error::Error for ScenarioFailure {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.cause)
    }
}

/// A sweep stopped by [`FailurePolicy::Abort`]: the triggering failure
/// (index, label, seed, cause — nothing is lost) plus how many
/// scenarios had already completed successfully.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepAborted {
    /// The failure that tripped the abort.
    pub failure: ScenarioFailure,
    /// Scenarios that had completed successfully when the sweep stopped.
    pub completed: usize,
}

impl fmt::Display for SweepAborted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sweep aborted at {} ({} scenarios completed)",
            self.failure, self.completed
        )
    }
}

impl std::error::Error for SweepAborted {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.failure)
    }
}

/// A deterministic fault to inject at one scenario index (chaos
/// testing; see [`FaultPlan`]).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FaultKind {
    /// Panic on every attempt (a deterministic bug: retries cannot
    /// save it).
    Panic,
    /// Panic on the first `failures` attempts, then succeed — an
    /// infrastructure flake that [`FailurePolicy::Retry`] recovers.
    Flaky {
        /// Number of leading attempts that panic.
        failures: u32,
    },
    /// Clamp the scenario's event budget to 1 so it deterministically
    /// exhausts ([`SimError::MaxEventsExceeded`] with budget 1).
    ExhaustBudget,
    /// Block the worker until the sweep watchdog cancels it (requires
    /// [`ScenarioRunner::with_scenario_timeout`]; capped defensively at
    /// 30 s otherwise).
    Stall,
    /// Swap the first channel of the worker's circuit for one that
    /// reports an impossible pairwise cancellation, yielding a
    /// deterministic [`SimError::CancellationMismatch`]; the original
    /// channel is restored afterwards.
    CorruptChannel,
}

/// A deterministic fault-injection plan: which [`FaultKind`] fires at
/// which scenario index.
///
/// This is the test-only chaos hook behind
/// [`ScenarioRunner::with_fault_plan`]: it lets a test (or a CI chaos
/// job) prove that scenario supervision holds — injected panics,
/// budget blow-ups and stalls must degrade into typed
/// [`ScenarioFailure`]s while every surviving scenario stays bitwise
/// identical to a fault-free sweep.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    faults: Vec<(usize, FaultKind)>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    #[must_use]
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds a fault at `index`. The first fault registered for an index
    /// wins.
    #[must_use]
    pub fn with_fault(mut self, index: usize, kind: FaultKind) -> Self {
        self.faults.push((index, kind));
        self
    }

    /// Derives a reproducible three-fault plan (one panic, one budget
    /// exhaustion, one stall) at distinct indices below `scenarios`,
    /// from `seed` — the CI chaos matrix feeds `IVL_FAULT_SEED` through
    /// here.
    #[must_use]
    pub fn seeded(seed: u64, scenarios: usize) -> Self {
        let mut plan = FaultPlan::new();
        if scenarios == 0 {
            return plan;
        }
        let mut used: Vec<usize> = Vec::new();
        let mut state = seed;
        for kind in [FaultKind::Panic, FaultKind::ExhaustBudget, FaultKind::Stall] {
            if used.len() == scenarios {
                break;
            }
            let index = loop {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let candidate = usize::try_from(split_mix64(state) % scenarios as u64)
                    .expect("index below scenario count");
                if !used.contains(&candidate) {
                    break candidate;
                }
            };
            used.push(index);
            plan = plan.with_fault(index, kind);
        }
        plan
    }

    /// The registered faults, in registration order.
    #[must_use]
    pub fn faults(&self) -> &[(usize, FaultKind)] {
        &self.faults
    }

    fn kind_at(&self, index: usize) -> Option<&FaultKind> {
        self.faults
            .iter()
            .find(|(i, _)| *i == index)
            .map(|(_, k)| k)
    }
}

/// Aggregate pulse statistics over the *output ports* of every
/// successful scenario in a sweep.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SweepStats {
    /// Number of scenarios swept.
    pub scenarios: usize,
    /// Scenarios that ended in a [`SimError`] (including contained
    /// panics and watchdog cancellations).
    pub failures: usize,
    /// Retries spent across the whole sweep (0 unless the policy is
    /// [`FailurePolicy::Retry`]).
    pub retried: u64,
    /// Total events delivered across all successful runs.
    pub processed_events: u64,
    /// Total events scheduled across all successful runs.
    pub scheduled_events: u64,
    /// Total transitions observed on output ports.
    pub output_transitions: u64,
    /// Narrowest output pulse (up-time) seen anywhere in the sweep.
    pub min_pulse_width: Option<f64>,
    /// Widest output pulse seen anywhere in the sweep.
    pub max_pulse_width: Option<f64>,
    /// Smallest pulse period seen on any output port.
    pub min_period: Option<f64>,
}

impl SweepStats {
    /// Folds one output-port signal into the aggregate (transition
    /// count, pulse-width extrema, minimum period). Exposed so
    /// checkpoint-resume can rebuild sweep statistics from persisted
    /// per-scenario signals in exactly the order the runner would have
    /// used — bit-identical merges depend on it.
    pub fn absorb_signal(&mut self, signal: &Signal) {
        self.output_transitions += signal.len() as u64;
        let stats = PulseStats::of(signal);
        for w in stats.up_times() {
            self.min_pulse_width = Some(self.min_pulse_width.map_or(w, |m| m.min(w)));
            self.max_pulse_width = Some(self.max_pulse_width.map_or(w, |m| m.max(w)));
        }
        if let Some(p) = stats.min_period() {
            self.min_period = Some(self.min_period.map_or(p, |m| m.min(p)));
        }
    }
}

/// The outcomes and aggregate statistics of one sweep.
#[derive(Debug, Clone)]
pub struct SweepResult {
    outcomes: Vec<ScenarioOutcome>,
    stats: SweepStats,
    failures: Vec<ScenarioFailure>,
}

impl SweepResult {
    /// Per-scenario outcomes, in the order the scenarios were given.
    #[must_use]
    pub fn outcomes(&self) -> &[ScenarioOutcome] {
        &self.outcomes
    }

    /// Aggregate pulse statistics over all successful scenarios.
    #[must_use]
    pub fn stats(&self) -> &SweepStats {
        &self.stats
    }

    /// Every failed scenario, in index order, with label, seed, typed
    /// cause and retry count — the replayable failure report.
    #[must_use]
    pub fn failures(&self) -> &[ScenarioFailure] {
        &self.failures
    }

    /// Number of scenarios swept.
    #[must_use]
    pub fn len(&self) -> usize {
        self.outcomes.len()
    }

    /// `true` if the sweep contained no scenarios.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }
}

// ======================================================================
// Persistent worker pool
// ======================================================================

/// Per-worker supervision state, shared between the worker thread, the
/// job abort path, and the watchdog.
struct WorkerShared {
    /// `Some(start)` while the worker is inside a scenario. Guarded by
    /// a mutex so the watchdog never cancels a scenario that started
    /// after the stamp it read.
    busy_since: Mutex<Option<Instant>>,
    /// The cancel flag wired into the worker's simulator. Cleared at
    /// the start of every scenario attempt (under the `busy_since`
    /// lock), set by the watchdog or an aborting sweep.
    cancel: Arc<AtomicBool>,
}

impl WorkerShared {
    fn begin(&self) {
        let mut busy = self
            .busy_since
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        self.cancel.store(false, Ordering::SeqCst);
        *busy = Some(Instant::now());
    }

    fn end(&self) {
        *self
            .busy_since
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = None;
    }
}

/// Everything a worker needs besides the job: its template circuit (to
/// rebuild the simulator after a contained panic, and to restore
/// channels after a `CorruptChannel` fault), simulator knobs, and its
/// supervision handle.
struct WorkerCtx {
    template: Circuit,
    max_events: usize,
    backend: QueueBackend,
    watch: Option<Arc<Vec<String>>>,
    shared: Arc<WorkerShared>,
}

impl WorkerCtx {
    fn make_sim(&self) -> Simulator {
        let mut sim = Simulator::new(self.template.clone())
            .with_max_events(self.max_events)
            .with_queue_backend(self.backend);
        if let Some(watch) = &self.watch {
            sim.set_watch(watch.iter())
                .expect("watch names were validated against the template circuit");
        }
        sim.set_cancel_flag(Some(Arc::clone(&self.shared.cancel)));
        sim
    }
}

/// One sweep's shared state: the scenario slice (as a raw pointer whose
/// lifetime is guarded by `try_run` blocking until every worker reports
/// completion), the work-stealing cursor, one result slot per scenario,
/// and the failure-policy machinery.
struct Job {
    scenarios: *const Scenario,
    n: usize,
    horizon: f64,
    chunk: usize,
    policy: FailurePolicy,
    fault: Option<FaultPlan>,
    cursor: AtomicUsize,
    slots: Vec<ResultSlot>,
    completed: Mutex<usize>,
    done: Condvar,
    panicked: AtomicBool,
    aborted: AtomicBool,
    retried: AtomicU64,
    abort_failure: Mutex<Option<ScenarioFailure>>,
    /// Every worker's cancel flag, so an aborting failure can reclaim
    /// stragglers without waiting for them to finish naturally.
    worker_cancels: Vec<Arc<AtomicBool>>,
}

// SAFETY: `scenarios` is only dereferenced while the dispatching
// `try_run` call is blocked waiting for completion (so the borrow it
// was created from is alive), and each `slots[i]` is written by exactly
// one worker (the one that claimed index `i` from `cursor`).
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

/// A result slot: the scenario's outcome plus the retries spent on it.
struct ResultSlot(UnsafeCell<Option<(Result<SimResult, SimError>, u32)>>);

impl Job {
    /// Claims and runs chunks until the cursor is exhausted or the
    /// sweep aborts.
    fn work(&self, sim: &mut Simulator, ctx: &WorkerCtx) {
        loop {
            if self.aborted.load(Ordering::Relaxed) {
                return;
            }
            let start = self.cursor.fetch_add(self.chunk, Ordering::Relaxed);
            if start >= self.n {
                return;
            }
            let end = (start + self.chunk).min(self.n);
            for idx in start..end {
                if self.aborted.load(Ordering::Relaxed) {
                    return;
                }
                // SAFETY: see the `Send`/`Sync` impls above.
                let scenario = unsafe { &*self.scenarios.add(idx) };
                let (result, retries) = self.run_supervised(sim, ctx, idx, scenario);
                if let Err(cause) = &result {
                    if self.policy == FailurePolicy::Abort {
                        self.abort_with(ScenarioFailure {
                            index: idx,
                            label: scenario.label.clone(),
                            seed: scenario.seed,
                            cause: cause.clone(),
                            retries,
                        });
                    }
                }
                unsafe { *self.slots[idx].0.get() = Some((result, retries)) };
            }
        }
    }

    /// Runs one scenario under the failure policy: retry on failure (same
    /// seed) up to the policy's bound, counting retries globally.
    fn run_supervised(
        &self,
        sim: &mut Simulator,
        ctx: &WorkerCtx,
        idx: usize,
        scenario: &Scenario,
    ) -> (Result<SimResult, SimError>, u32) {
        let fault = self.fault.as_ref().and_then(|p| p.kind_at(idx));
        let extra = match self.policy {
            FailurePolicy::Retry(n) => n,
            _ => 0,
        };
        let mut attempt: u32 = 0;
        loop {
            let result = run_attempt(sim, ctx, idx, scenario, self.horizon, fault, attempt);
            if result.is_ok() || attempt >= extra || self.aborted.load(Ordering::Relaxed) {
                return (result, attempt);
            }
            attempt += 1;
            self.retried.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records the triggering failure (first writer wins), then stops
    /// dispatch and cancels every worker's in-flight scenario.
    fn abort_with(&self, failure: ScenarioFailure) {
        {
            let mut slot = self
                .abort_failure
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if slot.is_none() {
                *slot = Some(failure);
            }
        }
        self.aborted.store(true, Ordering::SeqCst);
        self.cursor.store(self.n, Ordering::Relaxed);
        for flag in &self.worker_cancels {
            flag.store(true, Ordering::SeqCst);
        }
    }
}

/// Runs one attempt of one scenario inside the panic supervisor.
fn run_attempt(
    sim: &mut Simulator,
    ctx: &WorkerCtx,
    idx: usize,
    scenario: &Scenario,
    horizon: f64,
    fault: Option<&FaultKind>,
    attempt: u32,
) -> Result<SimResult, SimError> {
    ctx.shared.begin();
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        run_with_fault(sim, ctx, idx, scenario, horizon, fault, attempt)
    }));
    ctx.shared.end();
    match outcome {
        Ok(result) => result,
        Err(payload) => {
            // the panic may have left the simulator (or its channel
            // boxes) inconsistent — rebuild from the template
            *sim = ctx.make_sim();
            Err(SimError::ScenarioPanicked {
                message: panic_message(payload.as_ref()),
            })
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Defensive cap on [`FaultKind::Stall`] when no watchdog is armed.
const STALL_CAP: Duration = Duration::from_secs(30);

fn run_with_fault(
    sim: &mut Simulator,
    ctx: &WorkerCtx,
    idx: usize,
    scenario: &Scenario,
    horizon: f64,
    fault: Option<&FaultKind>,
    attempt: u32,
) -> Result<SimResult, SimError> {
    match fault {
        Some(FaultKind::Panic) => panic!("injected fault: panic at scenario {idx}"),
        Some(FaultKind::Flaky { failures }) if attempt < *failures => {
            panic!("injected fault: flaky panic at scenario {idx} (attempt {attempt})")
        }
        Some(FaultKind::Stall) => {
            // block until the watchdog reclaims this worker (or the
            // defensive cap expires); the cancelled flag then surfaces
            // as `SimError::Cancelled` from the run below
            let start = Instant::now();
            while !ctx.shared.cancel.load(Ordering::Relaxed) && start.elapsed() < STALL_CAP {
                std::thread::sleep(Duration::from_millis(1));
            }
            run_scenario(sim, scenario, horizon)
        }
        Some(FaultKind::ExhaustBudget) => {
            let saved = sim.max_events();
            sim.set_max_events(1);
            let result = run_scenario(sim, scenario, horizon);
            sim.set_max_events(saved);
            result
        }
        Some(FaultKind::CorruptChannel) => {
            let Some(edge) = ctx.template.first_channel_edge() else {
                return run_scenario(sim, scenario, horizon);
            };
            sim.replace_channel(edge, Box::new(CorruptedChannel));
            let result = run_scenario(sim, scenario, horizon);
            let original = ctx
                .template
                .clone_channel(edge)
                .expect("template edge carries a channel");
            sim.replace_channel(edge, original);
            result
        }
        Some(FaultKind::Flaky { .. }) | None => run_scenario(sim, scenario, horizon),
    }
}

/// A deliberately broken channel: it claims a pairwise cancellation on
/// its very first input, which the simulator rejects as a hard
/// [`SimError::CancellationMismatch`] — the deterministic stand-in for
/// a corrupted channel parameter in a [`FaultPlan`].
#[derive(Debug, Clone)]
struct CorruptedChannel;

impl OnlineChannel for CorruptedChannel {
    fn feed(&mut self, input: Transition) -> FeedEffect {
        FeedEffect::CancelledPair { cancelled: input }
    }

    fn reset(&mut self) {}
}

/// Increments the job's completion count when dropped — *including*
/// during unwinding, so a panicking worker cannot leave `try_run`
/// waiting forever on the condvar.
struct CompletionGuard<'a>(&'a Job);

impl Drop for CompletionGuard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.panicked.store(true, Ordering::SeqCst);
        }
        let mut completed = self
            .0
            .completed
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        *completed += 1;
        self.0.done.notify_all();
    }
}

fn worker_loop(rx: &Receiver<Arc<Job>>, ctx: &WorkerCtx) {
    let mut sim = ctx.make_sim();
    while let Ok(job) = rx.recv() {
        let _guard = CompletionGuard(&job);
        job.work(&mut sim, ctx);
    }
}

/// The spawned threads, their job mailboxes and supervision handles.
/// Dropping the pool disconnects the mailboxes (workers exit their
/// receive loop) and joins every thread.
struct WorkerPool {
    senders: Vec<Sender<Arc<Job>>>,
    handles: Vec<JoinHandle<()>>,
    shared: Vec<Arc<WorkerShared>>,
}

impl WorkerPool {
    /// Spawns `workers` threads, each owning a lean clone of `circuit`
    /// (topology `Arc`-shared, channel state copied) with fully
    /// reusable simulator state. Under [`QueueBackend::Auto`] each
    /// worker's simulator measures its own first chunk of work and
    /// commits to the faster queue backend independently.
    fn spawn(
        circuit: &Circuit,
        workers: usize,
        max_events: usize,
        backend: QueueBackend,
        watch: Option<&Arc<Vec<String>>>,
    ) -> Self {
        let mut senders = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        let mut shareds = Vec::with_capacity(workers);
        for _ in 0..workers {
            let shared = Arc::new(WorkerShared {
                busy_since: Mutex::new(None),
                cancel: Arc::new(AtomicBool::new(false)),
            });
            let ctx = WorkerCtx {
                template: circuit.clone(),
                max_events,
                backend,
                watch: watch.map(Arc::clone),
                shared: Arc::clone(&shared),
            };
            let (tx, rx) = mpsc::channel::<Arc<Job>>();
            senders.push(tx);
            shareds.push(shared);
            handles.push(std::thread::spawn(move || worker_loop(&rx, &ctx)));
        }
        WorkerPool {
            senders,
            handles,
            shared: shareds,
        }
    }

    fn workers(&self) -> usize {
        self.senders.len()
    }

    fn cancel_flags(&self) -> Vec<Arc<AtomicBool>> {
        self.shared.iter().map(|s| Arc::clone(&s.cancel)).collect()
    }

    /// Hands the job to every worker and blocks until all of them have
    /// drained the cursor (or bailed out of an aborting sweep). Arms a
    /// watchdog for the duration if a scenario deadline is set. Returns
    /// `false` if a worker panicked *outside* the per-scenario
    /// supervisor (pool plumbing bug).
    fn execute(&self, job: &Arc<Job>, deadline: Option<Duration>) -> bool {
        // a send only fails if the worker already died; waiting counts
        // only the workers that actually received the job, so the wait
        // below always terminates
        let alive = self
            .senders
            .iter()
            .filter(|tx| tx.send(Arc::clone(job)).is_ok())
            .count();
        let watchdog = deadline.map(|d| self.spawn_watchdog(job, d, alive));
        let mut completed = job
            .completed
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        while *completed < alive {
            completed = job
                .done
                .wait(completed)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        drop(completed);
        if let Some(handle) = watchdog {
            // exits within one tick of the completion count reaching
            // `alive` — bounded by 50 ms
            let _ = handle.join();
        }
        !job.panicked.load(Ordering::SeqCst)
    }

    /// The per-scenario wall-clock enforcer: polls every worker's
    /// `busy_since` stamp and sets its cancel flag once the deadline is
    /// exceeded. The stamp and the flag are touched under the same
    /// mutex the worker uses, so a freshly started scenario can never
    /// be cancelled by a stale observation.
    fn spawn_watchdog(&self, job: &Arc<Job>, deadline: Duration, alive: usize) -> JoinHandle<()> {
        let job = Arc::clone(job);
        let shared: Vec<Arc<WorkerShared>> = self.shared.clone();
        std::thread::spawn(move || {
            let tick = (deadline / 8)
                .max(Duration::from_millis(1))
                .min(Duration::from_millis(50));
            loop {
                {
                    let completed = job
                        .completed
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    if *completed >= alive {
                        return;
                    }
                }
                std::thread::sleep(tick);
                for s in &shared {
                    let busy = s
                        .busy_since
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    if let Some(since) = *busy {
                        if since.elapsed() >= deadline {
                            s.cancel.store(true, Ordering::SeqCst);
                        }
                    }
                }
            }
        })
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.senders.clear();
        for handle in self.handles.drain(..) {
            // worker panics were already surfaced by `execute`
            let _ = handle.join();
        }
    }
}

/// Fans scenarios across a persistent pool of supervised worker
/// threads, each simulating its own clone of the circuit.
///
/// The pool is spawned lazily on the first [`run`](ScenarioRunner::run)
/// and reused for every subsequent sweep: each worker keeps one warm
/// [`Simulator`] (event pool, recorders, queue) for the runner's whole
/// lifetime. Workers claim scenario-index chunks from a shared atomic
/// cursor, so load imbalance between scenarios is absorbed dynamically.
/// Scenarios run supervised: panic containment, per-scenario
/// timeouts, [`FailurePolicy`] handling and [`FaultPlan`] injection.
///
/// ```
/// use ivl_circuit::{CircuitBuilder, GateKind, Scenario, ScenarioRunner, Simulator};
/// use ivl_core::channel::PureDelay;
/// use ivl_core::{Bit, Signal};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = CircuitBuilder::new();
/// let a = b.input("a");
/// let inv = b.gate("inv", GateKind::Not, Bit::One);
/// let y = b.output("y");
/// b.connect_direct(a, inv, 0)?;
/// b.connect(inv, y, 0, PureDelay::new(1.0)?)?;
///
/// let runner = ScenarioRunner::new(b.build()?, 100.0).with_workers(2);
/// let scenarios: Vec<Scenario> = (1..=8)
///     .map(|w| {
///         Scenario::new(format!("w{w}"))
///             .with_input("a", Signal::pulse(0.0, w as f64).unwrap())
///     })
///     .collect();
/// let sweep = runner.run(&scenarios);
/// assert_eq!(sweep.len(), 8);
/// assert_eq!(sweep.stats().failures, 0);
/// # Ok(())
/// # }
/// ```
pub struct ScenarioRunner {
    circuit: Circuit,
    horizon: f64,
    max_events: usize,
    workers: usize,
    backend: QueueBackend,
    policy: FailurePolicy,
    timeout: Option<Duration>,
    fault: Option<FaultPlan>,
    watch: Option<Arc<Vec<String>>>,
    pool: Mutex<Option<WorkerPool>>,
}

impl ScenarioRunner {
    /// Creates a runner sweeping `circuit` to `horizon`, with as many
    /// workers as the machine advertises.
    #[must_use]
    pub fn new(circuit: Circuit, horizon: f64) -> Self {
        let workers = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        ScenarioRunner {
            circuit,
            horizon,
            max_events: 10_000_000,
            workers,
            backend: QueueBackend::from_env(),
            policy: FailurePolicy::default(),
            timeout: None,
            fault: None,
            watch: None,
            pool: Mutex::new(None),
        }
    }

    /// Sets the number of worker threads (clamped to ≥ 1). Discards any
    /// already-spawned pool (joining, not leaking, its threads).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        *self
            .pool
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = None;
        self
    }

    /// Caps scheduled events per scenario run (see
    /// [`Simulator::with_max_events`]). The budget is enforced — and
    /// reported — per scenario: exhausting it fails that scenario with
    /// [`SimError::MaxEventsExceeded`], it never aborts the sweep by
    /// itself. Discards any already-spawned pool (joining, not leaking,
    /// its threads).
    #[must_use]
    pub fn with_max_events(mut self, max_events: usize) -> Self {
        self.max_events = max_events;
        *self
            .pool
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = None;
        self
    }

    /// Selects the workers' pending-event queue backend (see
    /// [`Simulator::with_queue_backend`]). Discards any already-spawned
    /// pool (joining, not leaking, its threads).
    #[must_use]
    pub fn with_queue_backend(mut self, backend: QueueBackend) -> Self {
        self.backend = backend;
        *self
            .pool
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = None;
        self
    }

    /// Restricts every worker's per-scenario recording to the named
    /// nodes (see [`Simulator::set_watch`]) — on large circuits this
    /// bounds sweep memory by the watch set instead of the netlist.
    /// The circuit's output ports are always added to the set, so
    /// [`SweepStats`] pulse statistics stay complete. Discards any
    /// already-spawned pool (joining, not leaking, its threads).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownNode`] if a name does not exist in
    /// the circuit.
    pub fn with_watch<I, S>(mut self, names: I) -> Result<Self, SimError>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut list: Vec<String> = Vec::new();
        for name in names {
            let name = name.as_ref();
            if self.circuit.node(name).is_none() {
                return Err(SimError::UnknownNode { name: name.into() });
            }
            list.push(name.to_string());
        }
        for port in self.circuit.output_names() {
            list.push(port.to_string());
        }
        list.sort_unstable();
        list.dedup();
        self.watch = Some(Arc::new(list));
        *self
            .pool
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = None;
        Ok(self)
    }

    /// Sets the sweep's [`FailurePolicy`] (default
    /// [`FailurePolicy::Skip`]). Per-job configuration: the worker pool
    /// is kept.
    #[must_use]
    pub fn with_failure_policy(mut self, policy: FailurePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Arms a per-scenario wall-clock budget: a watchdog thread cancels
    /// any scenario still running `timeout` after it started, failing
    /// it with [`SimError::Cancelled`]. Cancellation is cooperative
    /// (polled once per event batch), so enforcement granularity is one
    /// batch plus one watchdog tick (≤ 50 ms). Per-job configuration:
    /// the worker pool is kept.
    #[must_use]
    pub fn with_scenario_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Installs a deterministic [`FaultPlan`] (chaos testing). Faults
    /// fire by scenario index on every sweep this runner executes until
    /// the plan is replaced. Per-job configuration: the worker pool is
    /// kept.
    #[must_use]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault = Some(plan);
        self
    }

    /// Installs or clears the fault plan in place — the mutable twin of
    /// [`with_fault_plan`](ScenarioRunner::with_fault_plan), for callers
    /// that re-target the plan between runs (e.g. batch-local index
    /// remapping). Per-job configuration: the worker pool is kept.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.fault = plan;
    }

    /// The template circuit scenarios are swept over.
    #[must_use]
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// Sweeps `scenarios`, returning outcomes in input order plus
    /// aggregate pulse statistics over the circuit's output ports.
    ///
    /// Workers pull scenario-index chunks from a shared cursor; each
    /// worker reuses one simulator (and its event pool) for all of its
    /// scenarios, across every `run` call on this runner. Failures —
    /// simulation errors, contained worker panics, watchdog
    /// cancellations — are recorded per scenario under the default
    /// [`FailurePolicy::Skip`] (see [`SweepResult::failures`]); they do
    /// not abort the sweep and they do not kill the pool.
    ///
    /// # Panics
    ///
    /// Panics if the policy is [`FailurePolicy::Abort`] and a scenario
    /// failed — the message carries the failing scenario's index, label,
    /// seed and cause. Use [`try_run`](ScenarioRunner::try_run) to
    /// handle the abort as a typed [`SweepAborted`] instead.
    #[must_use]
    pub fn run(&self, scenarios: &[Scenario]) -> SweepResult {
        match self.try_run(scenarios) {
            Ok(sweep) => sweep,
            Err(aborted) => panic!("{aborted}"),
        }
    }

    /// Like [`run`](ScenarioRunner::run), but an
    /// [`FailurePolicy::Abort`] stop is returned as a typed
    /// [`SweepAborted`] — carrying the failing scenario's index, label,
    /// seed and cause — instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`SweepAborted`] when the policy is
    /// [`FailurePolicy::Abort`] and a scenario failed.
    pub fn try_run(&self, scenarios: &[Scenario]) -> Result<SweepResult, SweepAborted> {
        let n = scenarios.len();
        let mut slots: Vec<Option<(Result<SimResult, SimError>, u32)>> = Vec::new();
        let mut retried = 0u64;
        if n > 0 {
            let mut pool_guard = self
                .pool
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let pool = pool_guard.get_or_insert_with(|| {
                WorkerPool::spawn(
                    &self.circuit,
                    self.workers,
                    self.max_events,
                    self.backend,
                    self.watch.as_ref(),
                )
            });
            // ~4 chunks per worker balances stealing overhead against
            // load imbalance; a chunk is never empty
            let chunk = (n / (pool.workers() * 4)).clamp(1, 64);
            let job = Arc::new(Job {
                scenarios: scenarios.as_ptr(),
                n,
                horizon: self.horizon,
                chunk,
                policy: self.policy,
                fault: self.fault.clone(),
                cursor: AtomicUsize::new(0),
                slots: (0..n).map(|_| ResultSlot(UnsafeCell::new(None))).collect(),
                completed: Mutex::new(0),
                done: Condvar::new(),
                panicked: AtomicBool::new(false),
                aborted: AtomicBool::new(false),
                retried: AtomicU64::new(0),
                abort_failure: Mutex::new(None),
                worker_cancels: pool.cancel_flags(),
            });
            let ok = pool.execute(&job, self.timeout);
            if !ok {
                // a panic escaped the per-scenario supervisor: a pool
                // plumbing bug, not a scenario failure — discard the
                // pool so a subsequent run starts from fresh workers
                *pool_guard = None;
                panic!("scenario worker panicked outside scenario supervision");
            }
            drop(pool_guard);
            retried = job.retried.load(Ordering::Relaxed);
            // SAFETY: every worker has reported completion (with the
            // release/acquire ordering of the completion mutex), so the
            // slots are no longer aliased.
            if job.aborted.load(Ordering::SeqCst) {
                let failure = job
                    .abort_failure
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .take()
                    .expect("an aborted sweep records its triggering failure");
                let completed = job
                    .slots
                    .iter()
                    .filter(|slot| unsafe { matches!(&*slot.0.get(), Some((Ok(_), _))) })
                    .count();
                return Err(SweepAborted { failure, completed });
            }
            slots = job
                .slots
                .iter()
                .map(|slot| unsafe { (*slot.0.get()).take() })
                .collect();
        }

        let mut failures: Vec<ScenarioFailure> = Vec::new();
        let mut outcomes: Vec<ScenarioOutcome> = Vec::with_capacity(n);
        for (idx, (slot, sc)) in slots.into_iter().zip(scenarios).enumerate() {
            let (result, retries) = slot.expect("every scenario index is claimed by a worker");
            if let Err(cause) = &result {
                failures.push(ScenarioFailure {
                    index: idx,
                    label: sc.label.clone(),
                    seed: sc.seed,
                    cause: cause.clone(),
                    retries,
                });
            }
            outcomes.push(ScenarioOutcome {
                label: sc.label.clone(),
                result,
            });
        }

        let output_names: Vec<&str> = self.circuit.output_names();
        let mut stats = SweepStats {
            scenarios: n,
            retried,
            ..SweepStats::default()
        };
        for outcome in &outcomes {
            match &outcome.result {
                Ok(run) => {
                    stats.processed_events += run.processed_events() as u64;
                    stats.scheduled_events += run.scheduled_events() as u64;
                    for name in &output_names {
                        if let Ok(signal) = run.signal(name) {
                            stats.absorb_signal(signal);
                        }
                    }
                }
                Err(_) => stats.failures += 1,
            }
        }

        Ok(SweepResult {
            outcomes,
            stats,
            failures,
        })
    }
}

impl fmt::Debug for ScenarioRunner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let pool_spawned = self
            .pool
            .lock()
            .map(|guard| guard.is_some())
            .unwrap_or(false);
        f.debug_struct("ScenarioRunner")
            .field("circuit", &self.circuit)
            .field("horizon", &self.horizon)
            .field("max_events", &self.max_events)
            .field("workers", &self.workers)
            .field("backend", &self.backend)
            .field("policy", &self.policy)
            .field("timeout", &self.timeout)
            .field("pool_spawned", &pool_spawned)
            .finish()
    }
}

fn run_scenario(
    sim: &mut Simulator,
    scenario: &Scenario,
    horizon: f64,
) -> Result<SimResult, SimError> {
    sim.reset_inputs();
    if let Some(seed) = scenario.seed {
        sim.reseed_noise(seed);
    }
    for (port, signal) in &scenario.inputs {
        sim.set_input(port, signal.clone())?;
    }
    sim.run(horizon)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::GateKind;
    use crate::graph::CircuitBuilder;
    use ivl_core::channel::{EtaInvolutionChannel, PureDelay};
    use ivl_core::delay::ExpChannel;
    use ivl_core::noise::{EtaBounds, UniformNoise};
    use ivl_core::Bit;

    fn inverter_circuit() -> Circuit {
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let inv = b.gate("inv", GateKind::Not, Bit::One);
        let y = b.output("y");
        b.connect_direct(a, inv, 0).unwrap();
        b.connect(inv, y, 0, PureDelay::new(1.0).unwrap()).unwrap();
        b.build().unwrap()
    }

    fn noisy_circuit() -> Circuit {
        let d = ExpChannel::new(1.0, 0.5, 0.5).unwrap();
        let bounds = EtaBounds::new(0.02, 0.02).unwrap();
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let buf = b.gate("buf", GateKind::Buf, Bit::Zero);
        let y = b.output("y");
        b.connect_direct(a, buf, 0).unwrap();
        b.connect(
            buf,
            y,
            0,
            EtaInvolutionChannel::new(d, bounds, UniformNoise::new(0)),
        )
        .unwrap();
        b.build().unwrap()
    }

    fn pulse_scenarios(n: usize) -> Vec<Scenario> {
        (0..n)
            .map(|k| {
                Scenario::new(format!("s{k}"))
                    .with_input("a", Signal::pulse(0.0, 2.0 + k as f64).unwrap())
                    .with_seed(k as u64)
            })
            .collect()
    }

    #[test]
    fn sweep_preserves_scenario_order_and_labels() {
        let runner = ScenarioRunner::new(inverter_circuit(), 100.0).with_workers(3);
        let scenarios = pulse_scenarios(7);
        let sweep = runner.run(&scenarios);
        assert_eq!(sweep.len(), 7);
        assert!(!sweep.is_empty());
        for (k, outcome) in sweep.outcomes().iter().enumerate() {
            assert_eq!(outcome.label(), format!("s{k}"));
            let run = outcome.result().as_ref().unwrap();
            // inverted pulse of width 2 + k, delayed by 1
            let y = run.signal("y").unwrap();
            assert_eq!(y.len(), 2);
            let down = y.transitions()[1].time - y.transitions()[0].time;
            assert!((down - (2.0 + k as f64)).abs() < 1e-9);
        }
        assert_eq!(sweep.stats().scenarios, 7);
        assert_eq!(sweep.stats().failures, 0);
        assert_eq!(sweep.stats().retried, 0);
        assert!(sweep.failures().is_empty());
        assert!(sweep.stats().processed_events > 0);
    }

    #[test]
    fn seeded_sweeps_are_deterministic_across_worker_counts() {
        let scenarios: Vec<Scenario> = (0..12)
            .map(|k| {
                Scenario::new(format!("n{k}"))
                    .with_input("a", Signal::pulse(0.0, 3.0).unwrap())
                    .with_seed(1000 + k as u64)
            })
            .collect();
        let reference = ScenarioRunner::new(noisy_circuit(), 200.0)
            .with_workers(1)
            .run(&scenarios);
        for workers in [2, 4, 7] {
            let sweep = ScenarioRunner::new(noisy_circuit(), 200.0)
                .with_workers(workers)
                .run(&scenarios);
            for (a, b) in reference.outcomes().iter().zip(sweep.outcomes()) {
                assert_eq!(
                    a.result().as_ref().unwrap().signal("y").unwrap(),
                    b.result().as_ref().unwrap().signal("y").unwrap(),
                    "workers={workers} label={}",
                    a.label()
                );
            }
            assert_eq!(reference.stats(), sweep.stats(), "workers={workers}");
        }
    }

    #[test]
    fn distinct_seeds_draw_distinct_noise() {
        let mk = |seed| {
            Scenario::new("x")
                .with_input("a", Signal::pulse(0.0, 3.0).unwrap())
                .with_seed(seed)
        };
        let runner = ScenarioRunner::new(noisy_circuit(), 200.0).with_workers(1);
        let sweep = runner.run(&[mk(1), mk(2)]);
        let a = sweep.outcomes()[0].result().as_ref().unwrap();
        let b = sweep.outcomes()[1].result().as_ref().unwrap();
        assert_ne!(a.signal("y").unwrap(), b.signal("y").unwrap());
    }

    #[test]
    fn inputs_do_not_leak_between_scenarios() {
        // one worker runs both scenarios on the same simulator; the
        // second scenario assigns nothing and must see the zero input
        let runner = ScenarioRunner::new(inverter_circuit(), 100.0).with_workers(1);
        let scenarios = vec![
            Scenario::new("driven").with_input("a", Signal::pulse(0.0, 2.0).unwrap()),
            Scenario::new("quiet"),
        ];
        let sweep = runner.run(&scenarios);
        let quiet = sweep.outcomes()[1].result().as_ref().unwrap();
        assert!(quiet.signal("a").unwrap().is_zero());
        // constant input ⇒ the inverter output never leaves its initial 1
        assert_eq!(quiet.signal("y").unwrap().len(), 0);
        assert_eq!(quiet.signal("y").unwrap().final_value(), Bit::One);
    }

    #[test]
    fn per_scenario_failures_do_not_abort_the_sweep() {
        let runner = ScenarioRunner::new(inverter_circuit(), 100.0).with_workers(2);
        let scenarios = vec![
            Scenario::new("ok").with_input("a", Signal::pulse(0.0, 1.0).unwrap()),
            Scenario::new("bad-port").with_input("nope", Signal::pulse(0.0, 1.0).unwrap()),
            Scenario::new("also-ok").with_input("a", Signal::pulse(0.0, 2.0).unwrap()),
        ];
        let sweep = runner.run(&scenarios);
        assert!(sweep.outcomes()[0].result().is_ok());
        assert!(matches!(
            sweep.outcomes()[1].result(),
            Err(SimError::UnknownPort { .. })
        ));
        assert!(sweep.outcomes()[2].result().is_ok());
        assert_eq!(sweep.stats().failures, 1);
        assert_eq!(sweep.failures().len(), 1);
        let failure = &sweep.failures()[0];
        assert_eq!(failure.index, 1);
        assert_eq!(failure.label, "bad-port");
        assert_eq!(failure.seed, None);
        assert_eq!(failure.retries, 0);
        assert!(matches!(failure.cause, SimError::UnknownPort { .. }));
    }

    #[test]
    fn empty_sweep() {
        let runner = ScenarioRunner::new(inverter_circuit(), 100.0);
        let sweep = runner.run(&[]);
        assert!(sweep.is_empty());
        assert_eq!(sweep.stats(), &SweepStats::default());
        assert!(sweep.failures().is_empty());
    }

    #[test]
    fn aggregate_pulse_stats_cover_outputs() {
        let runner = ScenarioRunner::new(inverter_circuit(), 100.0).with_workers(2);
        let sweep = runner.run(&pulse_scenarios(4));
        let stats = sweep.stats();
        // output is an inverted pulse: one down-pulse → no up-pulse on y
        // until it returns high; widths 2..5 appear as down-times, the
        // signal starts high so up-times exist after recovery? The
        // inverted pulse gives y: 1→0 at 1, 0→1 at 3+k: no complete
        // up-pulse, so pulse widths may be absent — but transitions count.
        assert_eq!(stats.output_transitions, 4 * 2);
        assert_eq!(stats.scheduled_events, stats.processed_events);
    }

    #[test]
    fn worker_clones_share_one_topology() {
        // the scaling fix: cloning a circuit for a worker must not copy
        // the netlist — both clones point at the same Arc'd topology
        let circuit = noisy_circuit();
        let clone = circuit.clone();
        assert!(clone.shares_topology_with(&circuit));
        // while a freshly *built* identical circuit does not
        assert!(!noisy_circuit().shares_topology_with(&circuit));
    }

    #[test]
    fn scenario_accessors() {
        let s = Scenario::new("lbl")
            .with_input("a", Signal::zero())
            .with_seed(9);
        assert_eq!(s.label(), "lbl");
        assert_eq!(s.seed(), Some(9));
        let d = format!("{s:?}");
        assert!(d.contains("lbl"));
    }

    #[test]
    fn fault_plan_accessors_and_seeding() {
        let plan = FaultPlan::new()
            .with_fault(3, FaultKind::Panic)
            .with_fault(5, FaultKind::Stall);
        assert_eq!(plan.faults().len(), 2);
        assert_eq!(plan.kind_at(3), Some(&FaultKind::Panic));
        assert_eq!(plan.kind_at(4), None);

        // seeded plans are reproducible and hit distinct indices
        let a = FaultPlan::seeded(42, 100);
        let b = FaultPlan::seeded(42, 100);
        assert_eq!(a, b);
        assert_eq!(a.faults().len(), 3);
        let mut indices: Vec<usize> = a.faults().iter().map(|(i, _)| *i).collect();
        indices.dedup();
        assert_eq!(indices.len(), 3);
        assert!(indices.iter().all(|i| *i < 100));
        // tiny sweeps get as many faults as they have scenarios
        assert_eq!(FaultPlan::seeded(1, 2).faults().len(), 2);
        assert!(FaultPlan::seeded(1, 0).faults().is_empty());
    }

    #[test]
    fn failure_types_display_and_chain() {
        let failure = ScenarioFailure {
            index: 7,
            label: "s7".into(),
            seed: Some(7),
            cause: SimError::ScenarioPanicked {
                message: "boom".into(),
            },
            retries: 2,
        };
        let text = failure.to_string();
        assert!(text.contains("scenario 7"), "{text}");
        assert!(text.contains("seed 7"), "{text}");
        assert!(text.contains("2 retries"), "{text}");
        assert!(text.contains("boom"), "{text}");
        assert!(std::error::Error::source(&failure).is_some());

        let aborted = SweepAborted {
            failure,
            completed: 41,
        };
        let text = aborted.to_string();
        assert!(text.contains("41 scenarios completed"), "{text}");
        assert!(std::error::Error::source(&aborted).is_some());

        let unseeded = ScenarioFailure {
            index: 0,
            label: "u".into(),
            seed: None,
            cause: SimError::Cancelled { time: 1.0 },
            retries: 0,
        };
        assert!(unseeded.to_string().contains("unseeded"));
    }
}
