//! Parallel multi-scenario sweeps over a **persistent worker pool**:
//! fan a batch of stimuli / noise seeds over worker threads, each
//! simulating its own clone of one circuit.
//!
//! The paper's Monte-Carlo experiments (adversary batteries, η-noise
//! sweeps) run the *same* circuit under thousands of slightly different
//! scenarios. A [`ScenarioRunner`] amortizes setup across the batch
//! *and across batches*: worker threads are spawned once (lazily, on
//! the first [`run`](ScenarioRunner::run)) and live for the runner's
//! lifetime. Every worker's circuit clone `Arc`-shares the immutable
//! netlist topology with the template — the only per-worker state is
//! the mutable channel boxes (single-history + noise RNG) and one
//! [`Simulator`] whose per-run working memory stays warm scenario after
//! scenario and sweep after sweep. A 10k-scenario sweep therefore
//! performs zero per-scenario allocation, zero thread spawns, and holds
//! exactly one copy of the netlist no matter the worker count.
//!
//! Work is distributed dynamically: workers pull fixed-size index
//! chunks from a shared atomic cursor, so a scenario that simulates 100×
//! longer than its neighbours no longer stalls a statically assigned
//! stripe (the old `i % workers` discipline).
//!
//! Scenarios with a [`seed`](Scenario::with_seed) are bitwise
//! reproducible regardless of worker count, chunk scheduling, or how
//! many sweeps the runner has executed before: the seed pins every
//! channel's noise stream via [`Simulator::reseed_noise`]. Unseeded
//! scenarios on noisy circuits draw from whatever stream state their
//! worker's simulator has reached — which now also depends on dynamic
//! chunk assignment — so seed your scenarios when you need determinism.

use std::cell::UnsafeCell;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use ivl_core::{PulseStats, Signal};

use crate::error::SimError;
use crate::graph::Circuit;
use crate::queue::QueueBackend;
use crate::sim::{SimResult, Simulator};

/// One entry of a sweep: a label, input assignments, and an optional
/// noise seed.
#[derive(Debug, Clone)]
pub struct Scenario {
    label: String,
    inputs: Vec<(String, Signal)>,
    seed: Option<u64>,
}

impl Scenario {
    /// Creates an empty scenario (all inputs zero, no reseeding).
    #[must_use]
    pub fn new(label: impl Into<String>) -> Self {
        Scenario {
            label: label.into(),
            inputs: Vec::new(),
            seed: None,
        }
    }

    /// Assigns `signal` to the input port `port`. Ports not assigned in
    /// a scenario are driven with the zero signal — assignments never
    /// leak between scenarios.
    #[must_use]
    pub fn with_input(mut self, port: impl Into<String>, signal: Signal) -> Self {
        self.inputs.push((port.into(), signal));
        self
    }

    /// Pins every noise channel's RNG stream to `seed` for this scenario
    /// (mixed per edge), making the run reproducible independent of
    /// worker count.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// The scenario's label.
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The scenario's noise seed, if any.
    #[must_use]
    pub fn seed(&self) -> Option<u64> {
        self.seed
    }
}

/// The outcome of one scenario within a sweep.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    label: String,
    result: Result<SimResult, SimError>,
}

impl ScenarioOutcome {
    /// The label of the scenario that produced this outcome.
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The run result (a [`SimResult`] or the simulation error).
    pub fn result(&self) -> &Result<SimResult, SimError> {
        &self.result
    }
}

/// Aggregate pulse statistics over the *output ports* of every
/// successful scenario in a sweep.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SweepStats {
    /// Number of scenarios swept.
    pub scenarios: usize,
    /// Scenarios that ended in a [`SimError`].
    pub failures: usize,
    /// Total events delivered across all successful runs.
    pub processed_events: u64,
    /// Total events scheduled across all successful runs.
    pub scheduled_events: u64,
    /// Total transitions observed on output ports.
    pub output_transitions: u64,
    /// Narrowest output pulse (up-time) seen anywhere in the sweep.
    pub min_pulse_width: Option<f64>,
    /// Widest output pulse seen anywhere in the sweep.
    pub max_pulse_width: Option<f64>,
    /// Smallest pulse period seen on any output port.
    pub min_period: Option<f64>,
}

impl SweepStats {
    fn absorb_signal(&mut self, signal: &Signal) {
        self.output_transitions += signal.len() as u64;
        let stats = PulseStats::of(signal);
        for w in stats.up_times() {
            self.min_pulse_width = Some(self.min_pulse_width.map_or(w, |m| m.min(w)));
            self.max_pulse_width = Some(self.max_pulse_width.map_or(w, |m| m.max(w)));
        }
        if let Some(p) = stats.min_period() {
            self.min_period = Some(self.min_period.map_or(p, |m| m.min(p)));
        }
    }
}

/// The outcomes and aggregate statistics of one sweep.
#[derive(Debug, Clone)]
pub struct SweepResult {
    outcomes: Vec<ScenarioOutcome>,
    stats: SweepStats,
}

impl SweepResult {
    /// Per-scenario outcomes, in the order the scenarios were given.
    #[must_use]
    pub fn outcomes(&self) -> &[ScenarioOutcome] {
        &self.outcomes
    }

    /// Aggregate pulse statistics over all successful scenarios.
    #[must_use]
    pub fn stats(&self) -> &SweepStats {
        &self.stats
    }

    /// Number of scenarios swept.
    #[must_use]
    pub fn len(&self) -> usize {
        self.outcomes.len()
    }

    /// `true` if the sweep contained no scenarios.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }
}

// ======================================================================
// Persistent worker pool
// ======================================================================

/// One sweep's shared state: the scenario slice (as a raw pointer whose
/// lifetime is guarded by `run` blocking until every worker reports
/// completion), the work-stealing cursor, and one result slot per
/// scenario.
struct Job {
    scenarios: *const Scenario,
    n: usize,
    horizon: f64,
    chunk: usize,
    cursor: AtomicUsize,
    slots: Vec<ResultSlot>,
    completed: Mutex<usize>,
    done: Condvar,
    panicked: AtomicBool,
}

// SAFETY: `scenarios` is only dereferenced while the dispatching `run`
// call is blocked waiting for completion (so the borrow it was created
// from is alive), and each `slots[i]` is written by exactly one worker
// (the one that claimed index `i` from `cursor`).
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

struct ResultSlot(UnsafeCell<Option<Result<SimResult, SimError>>>);

impl Job {
    /// Claims and runs chunks until the cursor is exhausted.
    fn work(&self, sim: &mut Simulator) {
        loop {
            let start = self.cursor.fetch_add(self.chunk, Ordering::Relaxed);
            if start >= self.n {
                return;
            }
            let end = (start + self.chunk).min(self.n);
            for idx in start..end {
                // SAFETY: see the `Send`/`Sync` impls above.
                let scenario = unsafe { &*self.scenarios.add(idx) };
                let result = run_scenario(sim, scenario, self.horizon);
                unsafe { *self.slots[idx].0.get() = Some(result) };
            }
        }
    }
}

/// Increments the job's completion count when dropped — *including*
/// during unwinding, so a panicking worker cannot leave `run` waiting
/// forever on the condvar.
struct CompletionGuard<'a>(&'a Job);

impl Drop for CompletionGuard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.panicked.store(true, Ordering::SeqCst);
        }
        let mut completed = self
            .0
            .completed
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        *completed += 1;
        self.0.done.notify_all();
    }
}

fn worker_loop(rx: &Receiver<Arc<Job>>, mut sim: Simulator) {
    while let Ok(job) = rx.recv() {
        let _guard = CompletionGuard(&job);
        job.work(&mut sim);
    }
}

/// The spawned threads and their job mailboxes. Dropping the pool
/// disconnects the mailboxes (workers exit their receive loop) and
/// joins every thread.
struct WorkerPool {
    senders: Vec<Sender<Arc<Job>>>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` threads, each owning a lean clone of `circuit`
    /// (topology `Arc`-shared, channel state copied) with fully
    /// reusable simulator state. Under [`QueueBackend::Auto`] each
    /// worker's simulator measures its own first chunk of work and
    /// commits to the faster queue backend independently.
    fn spawn(circuit: &Circuit, workers: usize, max_events: usize, backend: QueueBackend) -> Self {
        let mut senders = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let sim = Simulator::new(circuit.clone())
                .with_max_events(max_events)
                .with_queue_backend(backend);
            let (tx, rx) = mpsc::channel::<Arc<Job>>();
            senders.push(tx);
            handles.push(std::thread::spawn(move || worker_loop(&rx, sim)));
        }
        WorkerPool { senders, handles }
    }

    fn workers(&self) -> usize {
        self.senders.len()
    }

    /// Hands the job to every worker and blocks until all of them have
    /// drained the cursor. Returns `false` if any worker panicked.
    fn execute(&self, job: &Arc<Job>) -> bool {
        // a send only fails if the worker already died; waiting counts
        // only the workers that actually received the job, so the wait
        // below always terminates
        let alive = self
            .senders
            .iter()
            .filter(|tx| tx.send(Arc::clone(job)).is_ok())
            .count();
        let mut completed = job
            .completed
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        while *completed < alive {
            completed = job
                .done
                .wait(completed)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        !job.panicked.load(Ordering::SeqCst)
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.senders.clear();
        for handle in self.handles.drain(..) {
            // worker panics were already surfaced by `execute`
            let _ = handle.join();
        }
    }
}

/// Fans scenarios across a persistent pool of worker threads, each
/// simulating its own clone of the circuit.
///
/// The pool is spawned lazily on the first [`run`](ScenarioRunner::run)
/// and reused for every subsequent sweep: each worker keeps one warm
/// [`Simulator`] (event pool, recorders, queue) for the runner's whole
/// lifetime. Workers claim scenario-index chunks from a shared atomic
/// cursor, so load imbalance between scenarios is absorbed dynamically.
///
/// ```
/// use ivl_circuit::{CircuitBuilder, GateKind, Scenario, ScenarioRunner, Simulator};
/// use ivl_core::channel::PureDelay;
/// use ivl_core::{Bit, Signal};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = CircuitBuilder::new();
/// let a = b.input("a");
/// let inv = b.gate("inv", GateKind::Not, Bit::One);
/// let y = b.output("y");
/// b.connect_direct(a, inv, 0)?;
/// b.connect(inv, y, 0, PureDelay::new(1.0)?)?;
///
/// let runner = ScenarioRunner::new(b.build()?, 100.0).with_workers(2);
/// let scenarios: Vec<Scenario> = (1..=8)
///     .map(|w| {
///         Scenario::new(format!("w{w}"))
///             .with_input("a", Signal::pulse(0.0, w as f64).unwrap())
///     })
///     .collect();
/// let sweep = runner.run(&scenarios);
/// assert_eq!(sweep.len(), 8);
/// assert_eq!(sweep.stats().failures, 0);
/// # Ok(())
/// # }
/// ```
pub struct ScenarioRunner {
    circuit: Circuit,
    horizon: f64,
    max_events: usize,
    workers: usize,
    backend: QueueBackend,
    pool: Mutex<Option<WorkerPool>>,
}

impl ScenarioRunner {
    /// Creates a runner sweeping `circuit` to `horizon`, with as many
    /// workers as the machine advertises.
    #[must_use]
    pub fn new(circuit: Circuit, horizon: f64) -> Self {
        let workers = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        ScenarioRunner {
            circuit,
            horizon,
            max_events: 10_000_000,
            workers,
            backend: QueueBackend::from_env(),
            pool: Mutex::new(None),
        }
    }

    /// Sets the number of worker threads (clamped to ≥ 1). Discards any
    /// already-spawned pool.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        *self
            .pool
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = None;
        self
    }

    /// Caps scheduled events per scenario run (see
    /// [`Simulator::with_max_events`]). Discards any already-spawned
    /// pool.
    #[must_use]
    pub fn with_max_events(mut self, max_events: usize) -> Self {
        self.max_events = max_events;
        *self
            .pool
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = None;
        self
    }

    /// Selects the workers' pending-event queue backend (see
    /// [`Simulator::with_queue_backend`]). Discards any already-spawned
    /// pool.
    #[must_use]
    pub fn with_queue_backend(mut self, backend: QueueBackend) -> Self {
        self.backend = backend;
        *self
            .pool
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = None;
        self
    }

    /// The template circuit scenarios are swept over.
    #[must_use]
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// Sweeps `scenarios`, returning outcomes in input order plus
    /// aggregate pulse statistics over the circuit's output ports.
    ///
    /// Workers pull scenario-index chunks from a shared cursor; each
    /// worker reuses one simulator (and its event pool) for all of its
    /// scenarios, across every `run` call on this runner. Simulation
    /// failures are recorded per scenario, they do not abort the sweep.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panics (i.e. a bug in the simulator
    /// itself, not a simulation error). The pool is discarded, so a
    /// subsequent `run` starts from fresh workers.
    #[must_use]
    pub fn run(&self, scenarios: &[Scenario]) -> SweepResult {
        let n = scenarios.len();
        let mut slots: Vec<Option<Result<SimResult, SimError>>> = Vec::new();
        if n > 0 {
            let mut pool_guard = self
                .pool
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let pool = pool_guard.get_or_insert_with(|| {
                WorkerPool::spawn(&self.circuit, self.workers, self.max_events, self.backend)
            });
            // ~4 chunks per worker balances stealing overhead against
            // load imbalance; a chunk is never empty
            let chunk = (n / (pool.workers() * 4)).clamp(1, 64);
            let job = Arc::new(Job {
                scenarios: scenarios.as_ptr(),
                n,
                horizon: self.horizon,
                chunk,
                cursor: AtomicUsize::new(0),
                slots: (0..n).map(|_| ResultSlot(UnsafeCell::new(None))).collect(),
                completed: Mutex::new(0),
                done: Condvar::new(),
                panicked: AtomicBool::new(false),
            });
            let ok = pool.execute(&job);
            if !ok {
                *pool_guard = None;
                panic!("scenario worker panicked");
            }
            drop(pool_guard);
            // SAFETY: every worker has reported completion (with the
            // release/acquire ordering of the completion mutex), so the
            // slots are no longer aliased.
            slots = job
                .slots
                .iter()
                .map(|slot| unsafe { (*slot.0.get()).take() })
                .collect();
        }

        let outcomes: Vec<ScenarioOutcome> = slots
            .into_iter()
            .zip(scenarios)
            .map(|(slot, sc)| ScenarioOutcome {
                label: sc.label.clone(),
                result: slot.expect("every scenario index is claimed by a worker"),
            })
            .collect();

        let output_names: Vec<&str> = self.circuit.output_names();
        let mut stats = SweepStats {
            scenarios: n,
            ..SweepStats::default()
        };
        for outcome in &outcomes {
            match &outcome.result {
                Ok(run) => {
                    stats.processed_events += run.processed_events() as u64;
                    stats.scheduled_events += run.scheduled_events() as u64;
                    for name in &output_names {
                        if let Ok(signal) = run.signal(name) {
                            stats.absorb_signal(signal);
                        }
                    }
                }
                Err(_) => stats.failures += 1,
            }
        }

        SweepResult { outcomes, stats }
    }
}

impl fmt::Debug for ScenarioRunner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let pool_spawned = self
            .pool
            .lock()
            .map(|guard| guard.is_some())
            .unwrap_or(false);
        f.debug_struct("ScenarioRunner")
            .field("circuit", &self.circuit)
            .field("horizon", &self.horizon)
            .field("max_events", &self.max_events)
            .field("workers", &self.workers)
            .field("backend", &self.backend)
            .field("pool_spawned", &pool_spawned)
            .finish()
    }
}

fn run_scenario(
    sim: &mut Simulator,
    scenario: &Scenario,
    horizon: f64,
) -> Result<SimResult, SimError> {
    sim.reset_inputs();
    if let Some(seed) = scenario.seed {
        sim.reseed_noise(seed);
    }
    for (port, signal) in &scenario.inputs {
        sim.set_input(port, signal.clone())?;
    }
    sim.run(horizon)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::GateKind;
    use crate::graph::CircuitBuilder;
    use ivl_core::channel::{EtaInvolutionChannel, PureDelay};
    use ivl_core::delay::ExpChannel;
    use ivl_core::noise::{EtaBounds, UniformNoise};
    use ivl_core::Bit;

    fn inverter_circuit() -> Circuit {
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let inv = b.gate("inv", GateKind::Not, Bit::One);
        let y = b.output("y");
        b.connect_direct(a, inv, 0).unwrap();
        b.connect(inv, y, 0, PureDelay::new(1.0).unwrap()).unwrap();
        b.build().unwrap()
    }

    fn noisy_circuit() -> Circuit {
        let d = ExpChannel::new(1.0, 0.5, 0.5).unwrap();
        let bounds = EtaBounds::new(0.02, 0.02).unwrap();
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let buf = b.gate("buf", GateKind::Buf, Bit::Zero);
        let y = b.output("y");
        b.connect_direct(a, buf, 0).unwrap();
        b.connect(
            buf,
            y,
            0,
            EtaInvolutionChannel::new(d, bounds, UniformNoise::new(0)),
        )
        .unwrap();
        b.build().unwrap()
    }

    fn pulse_scenarios(n: usize) -> Vec<Scenario> {
        (0..n)
            .map(|k| {
                Scenario::new(format!("s{k}"))
                    .with_input("a", Signal::pulse(0.0, 2.0 + k as f64).unwrap())
                    .with_seed(k as u64)
            })
            .collect()
    }

    #[test]
    fn sweep_preserves_scenario_order_and_labels() {
        let runner = ScenarioRunner::new(inverter_circuit(), 100.0).with_workers(3);
        let scenarios = pulse_scenarios(7);
        let sweep = runner.run(&scenarios);
        assert_eq!(sweep.len(), 7);
        assert!(!sweep.is_empty());
        for (k, outcome) in sweep.outcomes().iter().enumerate() {
            assert_eq!(outcome.label(), format!("s{k}"));
            let run = outcome.result().as_ref().unwrap();
            // inverted pulse of width 2 + k, delayed by 1
            let y = run.signal("y").unwrap();
            assert_eq!(y.len(), 2);
            let down = y.transitions()[1].time - y.transitions()[0].time;
            assert!((down - (2.0 + k as f64)).abs() < 1e-9);
        }
        assert_eq!(sweep.stats().scenarios, 7);
        assert_eq!(sweep.stats().failures, 0);
        assert!(sweep.stats().processed_events > 0);
    }

    #[test]
    fn seeded_sweeps_are_deterministic_across_worker_counts() {
        let scenarios: Vec<Scenario> = (0..12)
            .map(|k| {
                Scenario::new(format!("n{k}"))
                    .with_input("a", Signal::pulse(0.0, 3.0).unwrap())
                    .with_seed(1000 + k as u64)
            })
            .collect();
        let reference = ScenarioRunner::new(noisy_circuit(), 200.0)
            .with_workers(1)
            .run(&scenarios);
        for workers in [2, 4, 7] {
            let sweep = ScenarioRunner::new(noisy_circuit(), 200.0)
                .with_workers(workers)
                .run(&scenarios);
            for (a, b) in reference.outcomes().iter().zip(sweep.outcomes()) {
                assert_eq!(
                    a.result().as_ref().unwrap().signal("y").unwrap(),
                    b.result().as_ref().unwrap().signal("y").unwrap(),
                    "workers={workers} label={}",
                    a.label()
                );
            }
            assert_eq!(reference.stats(), sweep.stats(), "workers={workers}");
        }
    }

    #[test]
    fn distinct_seeds_draw_distinct_noise() {
        let mk = |seed| {
            Scenario::new("x")
                .with_input("a", Signal::pulse(0.0, 3.0).unwrap())
                .with_seed(seed)
        };
        let runner = ScenarioRunner::new(noisy_circuit(), 200.0).with_workers(1);
        let sweep = runner.run(&[mk(1), mk(2)]);
        let a = sweep.outcomes()[0].result().as_ref().unwrap();
        let b = sweep.outcomes()[1].result().as_ref().unwrap();
        assert_ne!(a.signal("y").unwrap(), b.signal("y").unwrap());
    }

    #[test]
    fn inputs_do_not_leak_between_scenarios() {
        // one worker runs both scenarios on the same simulator; the
        // second scenario assigns nothing and must see the zero input
        let runner = ScenarioRunner::new(inverter_circuit(), 100.0).with_workers(1);
        let scenarios = vec![
            Scenario::new("driven").with_input("a", Signal::pulse(0.0, 2.0).unwrap()),
            Scenario::new("quiet"),
        ];
        let sweep = runner.run(&scenarios);
        let quiet = sweep.outcomes()[1].result().as_ref().unwrap();
        assert!(quiet.signal("a").unwrap().is_zero());
        // constant input ⇒ the inverter output never leaves its initial 1
        assert_eq!(quiet.signal("y").unwrap().len(), 0);
        assert_eq!(quiet.signal("y").unwrap().final_value(), Bit::One);
    }

    #[test]
    fn per_scenario_failures_do_not_abort_the_sweep() {
        let runner = ScenarioRunner::new(inverter_circuit(), 100.0).with_workers(2);
        let scenarios = vec![
            Scenario::new("ok").with_input("a", Signal::pulse(0.0, 1.0).unwrap()),
            Scenario::new("bad-port").with_input("nope", Signal::pulse(0.0, 1.0).unwrap()),
            Scenario::new("also-ok").with_input("a", Signal::pulse(0.0, 2.0).unwrap()),
        ];
        let sweep = runner.run(&scenarios);
        assert!(sweep.outcomes()[0].result().is_ok());
        assert!(matches!(
            sweep.outcomes()[1].result(),
            Err(SimError::UnknownPort { .. })
        ));
        assert!(sweep.outcomes()[2].result().is_ok());
        assert_eq!(sweep.stats().failures, 1);
    }

    #[test]
    fn empty_sweep() {
        let runner = ScenarioRunner::new(inverter_circuit(), 100.0);
        let sweep = runner.run(&[]);
        assert!(sweep.is_empty());
        assert_eq!(sweep.stats(), &SweepStats::default());
    }

    #[test]
    fn aggregate_pulse_stats_cover_outputs() {
        let runner = ScenarioRunner::new(inverter_circuit(), 100.0).with_workers(2);
        let sweep = runner.run(&pulse_scenarios(4));
        let stats = sweep.stats();
        // output is an inverted pulse: one down-pulse → no up-pulse on y
        // until it returns high; widths 2..5 appear as down-times, the
        // signal starts high so up-times exist after recovery? The
        // inverted pulse gives y: 1→0 at 1, 0→1 at 3+k: no complete
        // up-pulse, so pulse widths may be absent — but transitions count.
        assert_eq!(stats.output_transitions, 4 * 2);
        assert_eq!(stats.scheduled_events, stats.processed_events);
    }

    #[test]
    fn worker_clones_share_one_topology() {
        // the scaling fix: cloning a circuit for a worker must not copy
        // the netlist — both clones point at the same Arc'd topology
        let circuit = noisy_circuit();
        let clone = circuit.clone();
        assert!(clone.shares_topology_with(&circuit));
        // while a freshly *built* identical circuit does not
        assert!(!noisy_circuit().shares_topology_with(&circuit));
    }

    #[test]
    fn scenario_accessors() {
        let s = Scenario::new("lbl")
            .with_input("a", Signal::zero())
            .with_seed(9);
        assert_eq!(s.label(), "lbl");
        assert_eq!(s.seed(), Some(9));
        let d = format!("{s:?}");
        assert!(d.contains("lbl"));
    }
}
