use std::fmt;

/// Errors detected while constructing or validating a circuit.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CircuitError {
    /// Two nodes were given the same name.
    DuplicateName {
        /// The offending name.
        name: String,
    },
    /// A node id did not belong to this builder/circuit.
    UnknownNode {
        /// The offending id (raw index).
        index: usize,
    },
    /// A connection targeted a pin beyond the gate's input count.
    PinOutOfRange {
        /// Target node name.
        node: String,
        /// The offending pin.
        pin: usize,
        /// Number of pins the node actually has.
        arity: usize,
    },
    /// A gate input pin or output port is driven by two connections.
    PinAlreadyDriven {
        /// Target node name.
        node: String,
        /// The doubly driven pin.
        pin: usize,
    },
    /// A gate input pin or output port has no driver.
    UnconnectedPin {
        /// Target node name.
        node: String,
        /// The dangling pin.
        pin: usize,
    },
    /// A direct (zero-delay) connection was used between two gates;
    /// gates and channels must alternate (Section II of the paper).
    DirectBetweenGates {
        /// Source gate name.
        from: String,
        /// Target gate name.
        to: String,
    },
    /// A connection started at an output port or ended at an input port.
    WrongPortDirection {
        /// The port's name.
        name: String,
    },
    /// A gate was declared with an arity its kind does not support.
    BadArity {
        /// The gate's name.
        name: String,
        /// The declared input count.
        arity: usize,
    },
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::DuplicateName { name } => write!(f, "duplicate node name {name:?}"),
            CircuitError::UnknownNode { index } => write!(f, "unknown node id {index}"),
            CircuitError::PinOutOfRange { node, pin, arity } => {
                write!(f, "pin {pin} out of range for {node:?} with {arity} pins")
            }
            CircuitError::PinAlreadyDriven { node, pin } => {
                write!(f, "pin {pin} of {node:?} is driven twice")
            }
            CircuitError::UnconnectedPin { node, pin } => {
                write!(f, "pin {pin} of {node:?} has no driver")
            }
            CircuitError::DirectBetweenGates { from, to } => write!(
                f,
                "direct connection between gates {from:?} and {to:?}: gates and channels must alternate"
            ),
            CircuitError::WrongPortDirection { name } => {
                write!(f, "port {name:?} used against its direction")
            }
            CircuitError::BadArity { name, arity } => {
                write!(f, "gate {name:?} cannot have {arity} inputs")
            }
        }
    }
}

impl std::error::Error for CircuitError {}

/// Errors raised during simulation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// No port with the given name exists.
    UnknownPort {
        /// The name that failed to resolve.
        name: String,
    },
    /// An input signal violates condition S1 (transitions before time 0).
    InputViolatesS1 {
        /// The input port's name.
        name: String,
    },
    /// A channel scheduled an output transition at or before the current
    /// simulation time, or cancelled an already delivered one. The
    /// mathematical channel function is non-causal at this point (e.g.
    /// η⁻ too large), so event-driven simulation cannot proceed.
    CausalityViolation {
        /// Simulation time at which the violation occurred.
        time: f64,
        /// The offending edge (for diagnosis).
        edge: usize,
    },
    /// A channel reported a pairwise cancellation that does not match the
    /// event the simulator has pending for that edge (wrong time or
    /// value), or targets an event that was already delivered or
    /// cancelled. Before this was a hard error, a release build would
    /// silently invalidate the *wrong* pending event and corrupt the
    /// waveform.
    CancellationMismatch {
        /// The offending edge (for diagnosis).
        edge: usize,
        /// Time of the event the simulator would have cancelled, if any.
        pending: Option<f64>,
        /// Time of the transition the channel claims to cancel.
        cancelled: f64,
    },
    /// The event budget was exhausted (oscillation guard).
    ///
    /// The budget counts *scheduled* events, so cancel-heavy churn
    /// (schedule-then-cancel loops that deliver nothing) trips the guard
    /// too.
    MaxEventsExceeded {
        /// The configured budget.
        budget: usize,
        /// Simulation time reached when the budget ran out.
        time: f64,
    },
    /// A node name did not resolve when querying results.
    UnknownNode {
        /// The name that failed to resolve.
        name: String,
    },
    /// The node exists but the run recorded signals selectively (a
    /// watch set was configured) and this node was not in it, so no
    /// waveform is available.
    NotWatched {
        /// The node whose signal was requested.
        name: String,
    },
    /// The run was cancelled from outside (a sweep watchdog enforcing a
    /// per-scenario wall-clock budget, or an aborting sweep reclaiming
    /// its stragglers). The simulation state is discarded; rerunning the
    /// same scenario without the cancellation reproduces the full run.
    Cancelled {
        /// Simulation time reached when the cancellation was observed.
        time: f64,
    },
    /// The worker thread running this scenario panicked (a bug in the
    /// simulator or a channel implementation, not a simulation error).
    /// The panic was contained by the sweep supervisor: the worker's
    /// simulator was rebuilt and the sweep carried on.
    ScenarioPanicked {
        /// The panic payload, rendered to text.
        message: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnknownPort { name } => write!(f, "unknown input port {name:?}"),
            SimError::InputViolatesS1 { name } => write!(
                f,
                "input signal on {name:?} has transitions before time 0 (condition S1)"
            ),
            SimError::CausalityViolation { time, edge } => write!(
                f,
                "causality violation on edge {edge} at time {time}: channel output would land in the past"
            ),
            SimError::CancellationMismatch {
                edge,
                pending,
                cancelled,
            } => match pending {
                Some(pending) => write!(
                    f,
                    "cancellation mismatch on edge {edge}: channel cancelled the transition at \
                     {cancelled} but the pending event is at {pending}"
                ),
                None => write!(
                    f,
                    "cancellation mismatch on edge {edge}: channel cancelled the transition at \
                     {cancelled} but no event is pending"
                ),
            },
            SimError::MaxEventsExceeded { budget, time } => {
                write!(f, "event budget of {budget} exhausted at time {time}")
            }
            SimError::UnknownNode { name } => write!(f, "unknown node {name:?}"),
            SimError::NotWatched { name } => write!(
                f,
                "node {name:?} was not in the run's watch set, so its signal was not recorded"
            ),
            SimError::Cancelled { time } => {
                write!(f, "run cancelled at time {time} (watchdog or sweep abort)")
            }
            SimError::ScenarioPanicked { message } => {
                write!(f, "scenario worker panicked: {message}")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_nonempty() {
        let errs: Vec<Box<dyn std::error::Error>> = vec![
            Box::new(CircuitError::DuplicateName { name: "x".into() }),
            Box::new(CircuitError::UnknownNode { index: 3 }),
            Box::new(CircuitError::PinOutOfRange {
                node: "g".into(),
                pin: 2,
                arity: 2,
            }),
            Box::new(CircuitError::PinAlreadyDriven {
                node: "g".into(),
                pin: 0,
            }),
            Box::new(CircuitError::UnconnectedPin {
                node: "g".into(),
                pin: 1,
            }),
            Box::new(CircuitError::DirectBetweenGates {
                from: "a".into(),
                to: "b".into(),
            }),
            Box::new(CircuitError::WrongPortDirection { name: "o".into() }),
            Box::new(CircuitError::BadArity {
                name: "n".into(),
                arity: 0,
            }),
            Box::new(SimError::UnknownPort { name: "i".into() }),
            Box::new(SimError::InputViolatesS1 { name: "i".into() }),
            Box::new(SimError::CausalityViolation { time: 1.0, edge: 0 }),
            Box::new(SimError::CancellationMismatch {
                edge: 1,
                pending: Some(2.0),
                cancelled: 3.0,
            }),
            Box::new(SimError::CancellationMismatch {
                edge: 1,
                pending: None,
                cancelled: 3.0,
            }),
            Box::new(SimError::MaxEventsExceeded {
                budget: 10,
                time: 5.0,
            }),
            Box::new(SimError::UnknownNode { name: "g".into() }),
            Box::new(SimError::NotWatched { name: "g".into() }),
            Box::new(SimError::Cancelled { time: 4.5 }),
            Box::new(SimError::ScenarioPanicked {
                message: "boom".into(),
            }),
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
