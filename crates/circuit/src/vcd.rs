//! Value-change-dump (VCD) export of simulation results, for viewing
//! traces in GTKWave & friends.

use std::fmt::Write as _;

use ivl_core::Signal;

use crate::sim::SimResult;

/// Writes named signals as an IEEE-1364 VCD document.
///
/// Times are scaled by `time_scale` (simulation time units per VCD tick)
/// and rounded to integer ticks; pick a scale fine enough for your
/// shortest pulse. The `timescale` text (e.g. `"1ps"`) is emitted
/// verbatim.
///
/// Whitespace in names is replaced by `_`; if two sanitized names
/// collide (e.g. `"a b"` and `"a_b"`), later ones get a numeric suffix
/// so every `$var` stays distinct. A pulse shorter than half a tick
/// rounds both edges to the same tick; such same-tick runs are collapsed
/// to their final value (and dropped entirely if that equals the value
/// already dumped), so readers never see contradictory changes at one
/// `#tick`.
///
/// ```
/// use ivl_circuit::vcd::write_vcd;
/// use ivl_core::Signal;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let s = Signal::pulse(1.0, 2.0)?;
/// let doc = write_vcd(&[("clk", &s)], "1ps", 0.001)?;
/// assert!(doc.contains("$var wire 1"));
/// assert!(doc.contains("#1000"));
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Returns an error message if `time_scale` is not positive or more than
/// 94 signals are given (VCD one-character identifiers).
pub fn write_vcd(
    signals: &[(&str, &Signal)],
    timescale: &str,
    time_scale: f64,
) -> Result<String, String> {
    if !(time_scale.is_finite() && time_scale > 0.0) {
        return Err(format!("time_scale must be positive, got {time_scale}"));
    }
    if signals.len() > 94 {
        return Err(format!(
            "at most 94 signals supported, got {}",
            signals.len()
        ));
    }
    let ident = |i: usize| char::from(b'!' + i as u8);
    // one preallocated output buffer: header (~64 bytes per signal) plus
    // a conservative ~16 bytes per change line ("#<tick>\n<v><id>\n")
    let total_transitions: usize = signals.iter().map(|(_, s)| s.len()).sum();
    let mut out = String::with_capacity(128 + 64 * signals.len() + 16 * total_transitions);
    let _ = writeln!(out, "$timescale {timescale} $end");
    let _ = writeln!(out, "$scope module faithful $end");
    let mut used: std::collections::HashSet<String> = std::collections::HashSet::new();
    for (i, (name, _)) in signals.iter().enumerate() {
        let base: String = name
            .chars()
            .map(|c| if c.is_whitespace() { '_' } else { c })
            .collect();
        let mut sanitized = base.clone();
        let mut suffix = 1usize;
        while !used.insert(sanitized.clone()) {
            sanitized = format!("{base}_{suffix}");
            suffix += 1;
        }
        let _ = writeln!(out, "$var wire 1 {} {sanitized} $end", ident(i));
    }
    let _ = writeln!(out, "$upscope $end");
    let _ = writeln!(out, "$enddefinitions $end");
    let _ = writeln!(out, "$dumpvars");
    for (i, (_, s)) in signals.iter().enumerate() {
        let _ = writeln!(out, "{}{}", s.initial().as_u8(), ident(i));
    }
    let _ = writeln!(out, "$end");

    // stream all transitions in one merged time-ordered pass: each
    // signal is already sorted, so a per-signal cursor plus a linear
    // min-scan (≤ 94 signals) yields ascending (tick, signal) order
    // without materializing or sorting a global event list. Equal-tick
    // runs of one signal collapse to their final value, so readers never
    // see contradictory changes at one `#tick`.
    #[allow(clippy::cast_possible_truncation)]
    let tick_of = |time: f64| (time / time_scale).round() as i64;
    let mut cursor: Vec<usize> = vec![0; signals.len()];
    let mut last_value: Vec<u8> = signals.iter().map(|(_, s)| s.initial().as_u8()).collect();
    let mut last_tick = None;
    loop {
        // earliest (tick, signal) among the cursors; scanning i in
        // ascending order keeps equal ticks in signal order
        let mut best: Option<(i64, usize)> = None;
        for (i, (_, s)) in signals.iter().enumerate() {
            let trs = s.transitions();
            if cursor[i] < trs.len() {
                let tick = tick_of(trs[cursor[i]].time);
                if best.is_none_or(|(bt, _)| tick < bt) {
                    best = Some((tick, i));
                }
            }
        }
        let Some((tick, i)) = best else { break };
        let trs = signals[i].1.transitions();
        // a pulse shorter than time_scale/2 rounds both edges onto this
        // tick: collapse the run to its final value
        let mut v = trs[cursor[i]].value.as_u8();
        cursor[i] += 1;
        while cursor[i] < trs.len() && tick_of(trs[cursor[i]].time) == tick {
            v = trs[cursor[i]].value.as_u8();
            cursor[i] += 1;
        }
        if v == last_value[i] {
            continue; // collapsed run ended where it started: no change
        }
        last_value[i] = v;
        if last_tick != Some(tick) {
            let _ = writeln!(out, "#{tick}");
            last_tick = Some(tick);
        }
        let _ = writeln!(out, "{v}{}", ident(i));
    }
    Ok(out)
}

/// Convenience: dumps every named node of a [`SimResult`].
///
/// # Errors
///
/// As [`write_vcd`].
pub fn sim_result_to_vcd(
    result: &SimResult,
    names: &[&str],
    timescale: &str,
    time_scale: f64,
) -> Result<String, String> {
    let mut pairs = Vec::with_capacity(names.len());
    for &name in names {
        let signal = result
            .signal(name)
            .map_err(|e| format!("unknown node {name:?}: {e}"))?;
        pairs.push((name, signal));
    }
    write_vcd(&pairs, timescale, time_scale)
}

/// Parses a (single-scope, single-bit) VCD document back into named
/// signals, inverting [`write_vcd`]: times are multiplied by
/// `time_scale` (the same value used when writing).
///
/// Only the subset emitted by [`write_vcd`] is supported: one scope,
/// 1-bit wires, scalar value changes.
///
/// # Errors
///
/// Returns a message describing the first malformed line.
pub fn read_vcd(doc: &str, time_scale: f64) -> Result<Vec<(String, Signal)>, String> {
    use ivl_core::{Bit, SignalBuilder};
    use std::collections::HashMap;

    if !(time_scale.is_finite() && time_scale > 0.0) {
        return Err(format!("time_scale must be positive, got {time_scale}"));
    }
    // each signal streams into its own builder as change lines are
    // parsed — the document is walked once and no global change list is
    // materialized, so parsing a 100k-node dump holds one builder per
    // signal, not every transition twice
    struct Sig {
        builder: SignalBuilder,
        current: Bit,
    }
    let mut order: Vec<(char, String)> = Vec::new();
    let mut initial: HashMap<char, Bit> = HashMap::new();
    let mut sigs: HashMap<char, Sig> = HashMap::new();
    let mut time = 0.0_f64;
    let mut in_dumpvars = false;
    let mut header_done = false;
    for line in doc.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("$var wire 1 ") {
            let mut parts = rest.split_whitespace();
            let ident = parts
                .next()
                .and_then(|x| x.chars().next())
                .ok_or_else(|| format!("malformed $var line: {line}"))?;
            let name = parts
                .next()
                .ok_or_else(|| format!("malformed $var line: {line}"))?;
            order.push((ident, name.to_owned()));
            if header_done {
                // late declaration: no initial value can follow, start
                // from the default
                let init = initial.get(&ident).copied().unwrap_or(Bit::Zero);
                sigs.insert(
                    ident,
                    Sig {
                        builder: SignalBuilder::new(init),
                        current: init,
                    },
                );
            }
            continue;
        }
        match line {
            "$dumpvars" => {
                in_dumpvars = true;
                continue;
            }
            "$end" if in_dumpvars => {
                in_dumpvars = false;
                header_done = true;
                // initial values are now known: open one builder per
                // declared signal
                for (ident, _) in &order {
                    let init = initial.get(ident).copied().unwrap_or(Bit::Zero);
                    sigs.insert(
                        *ident,
                        Sig {
                            builder: SignalBuilder::new(init),
                            current: init,
                        },
                    );
                }
                continue;
            }
            "$upscope $end" | "$enddefinitions $end" => continue,
            _ => {}
        }
        if line.starts_with("$timescale") || line.starts_with("$scope") {
            continue;
        }
        if let Some(tick) = line.strip_prefix('#') {
            let tick: i64 = tick
                .parse()
                .map_err(|_| format!("malformed timestamp: {line}"))?;
            time = tick as f64 * time_scale;
            continue;
        }
        // value change: "<0|1><ident>"
        let mut chars = line.chars();
        let value = match chars.next() {
            Some('0') => Bit::Zero,
            Some('1') => Bit::One,
            _ => return Err(format!("unsupported value change: {line}")),
        };
        let ident = chars
            .next()
            .ok_or_else(|| format!("missing identifier: {line}"))?;
        if in_dumpvars || !header_done {
            initial.insert(ident, value);
        } else {
            let sig = sigs
                .get_mut(&ident)
                .ok_or_else(|| format!("unknown identifier: {line}"))?;
            if value != sig.current {
                sig.builder.push_time(time).map_err(|e| {
                    let name = order
                        .iter()
                        .find(|(i, _)| *i == ident)
                        .map_or("?", |(_, n)| n.as_str());
                    format!("signal {name:?}: {e}")
                })?;
                sig.current = value;
            }
        }
    }
    let mut out = Vec::with_capacity(order.len());
    for (ident, name) in order {
        let signal = match sigs.remove(&ident) {
            Some(sig) => sig.builder.finish(),
            // the header never completed: only initial values exist
            None => SignalBuilder::new(initial.get(&ident).copied().unwrap_or(Bit::Zero)).finish(),
        };
        out.push((name, signal));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CircuitBuilder, GateKind, Simulator};
    use ivl_core::channel::PureDelay;
    use ivl_core::Bit;

    #[test]
    fn header_and_transitions() {
        let a = Signal::pulse(1.0, 2.0).unwrap();
        let b = Signal::constant(Bit::One);
        let doc = write_vcd(&[("a", &a), ("b busy", &b)], "1ns", 0.5).unwrap();
        assert!(doc.contains("$timescale 1ns $end"));
        assert!(doc.contains("$var wire 1 ! a $end"));
        assert!(doc.contains("$var wire 1 \" b_busy $end"));
        // initial values
        assert!(doc.contains("0!"));
        assert!(doc.contains("1\""));
        // transitions at ticks 2 and 6 (time/0.5)
        assert!(doc.contains("#2\n1!"));
        assert!(doc.contains("#6\n0!"));
    }

    #[test]
    fn validation() {
        let s = Signal::zero();
        assert!(write_vcd(&[("s", &s)], "1ps", 0.0).is_err());
        assert!(write_vcd(&[("s", &s)], "1ps", -1.0).is_err());
        let many: Vec<(&str, &Signal)> = (0..95).map(|_| ("x", &s)).collect();
        assert!(write_vcd(&many, "1ps", 1.0).is_err());
    }

    #[test]
    fn colliding_sanitized_names_are_deduplicated() {
        // "a b" sanitizes to "a_b" — it must not shadow the real "a_b"
        let s1 = Signal::pulse(1.0, 1.0).unwrap();
        let s2 = Signal::pulse(2.0, 1.0).unwrap();
        let doc = write_vcd(&[("a b", &s1), ("a_b", &s2)], "1ps", 1.0).unwrap();
        assert!(doc.contains("$var wire 1 ! a_b $end"));
        assert!(doc.contains("$var wire 1 \" a_b_1 $end"));
        // both remain readable and distinct
        let parsed = read_vcd(&doc, 1.0).unwrap();
        assert_eq!(parsed[0].0, "a_b");
        assert_eq!(parsed[1].0, "a_b_1");
        assert!(parsed[0].1.approx_eq(&s1, 1e-9));
        assert!(parsed[1].1.approx_eq(&s2, 1e-9));
        // a triple collision keeps counting
        let doc = write_vcd(&[("x y", &s1), ("x_y", &s1), ("x_y_1", &s1)], "1ps", 1.0).unwrap();
        assert!(doc.contains(" x_y $end"));
        assert!(doc.contains(" x_y_1 $end"));
        assert!(doc.contains(" x_y_1_1 $end"));
    }

    #[test]
    fn sub_tick_pulse_collapses_to_final_value() {
        // a 0.2-wide pulse at t = 1 rounds both edges to tick 1: the two
        // changes must collapse (final value == initial ⇒ nothing emitted)
        let s = Signal::pulse_train([(1.0, 0.2), (3.0, 2.0)]).unwrap();
        let doc = write_vcd(&[("s", &s)], "1ps", 1.0).unwrap();
        assert!(!doc.contains("#1\n"), "collapsed pulse leaked: {doc}");
        assert!(doc.contains("#3\n1!"));
        assert!(doc.contains("#5\n0!"));
        // the document stays parseable (no same-tick contradictions)
        let parsed = read_vcd(&doc, 1.0).unwrap();
        assert!(parsed[0]
            .1
            .approx_eq(&Signal::pulse(3.0, 2.0).unwrap(), 1e-9));
    }

    #[test]
    fn same_tick_run_keeps_final_value_when_it_differs() {
        // three transitions all rounding to tick 1: 0→1→0→1 ends at 1
        let s = Signal::from_times(Bit::Zero, &[0.9, 1.0, 1.1]).unwrap();
        let doc = write_vcd(&[("s", &s)], "1ps", 1.0).unwrap();
        assert_eq!(doc.matches("#1\n").count(), 1);
        assert!(doc.contains("#1\n1!"));
        // after the dumpvars header, the intermediate 0 must not appear
        let changes = doc.rsplit("$end\n").next().unwrap();
        assert!(!changes.contains("0!"), "intermediate value leaked: {doc}");
        let parsed = read_vcd(&doc, 1.0).unwrap();
        assert!(parsed[0]
            .1
            .approx_eq(&Signal::from_times(Bit::Zero, &[1.0]).unwrap(), 1e-9));
    }

    #[test]
    fn simultaneous_events_share_a_timestamp() {
        let a = Signal::pulse(1.0, 1.0).unwrap();
        let b = Signal::pulse(1.0, 2.0).unwrap();
        let doc = write_vcd(&[("a", &a), ("b", &b)], "1ps", 1.0).unwrap();
        // only one "#1" header for the two simultaneous rises
        assert_eq!(doc.matches("#1\n").count(), 1);
    }

    #[test]
    fn from_sim_result() {
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let g = b.gate("inv", GateKind::Not, Bit::One);
        let y = b.output("y");
        b.connect_direct(a, g, 0).unwrap();
        b.connect(g, y, 0, PureDelay::new(1.0).unwrap()).unwrap();
        let mut sim = Simulator::new(b.build().unwrap());
        sim.set_input("a", Signal::pulse(0.0, 2.0).unwrap())
            .unwrap();
        let run = sim.run(10.0).unwrap();
        let doc = sim_result_to_vcd(&run, &["a", "inv", "y"], "1ps", 0.001).unwrap();
        assert!(doc.contains("$var wire 1 ! a $end"));
        assert!(doc.contains("$var wire 1 # y $end"));
        assert!(sim_result_to_vcd(&run, &["nope"], "1ps", 1.0).is_err());
    }

    #[test]
    fn golden_document_is_byte_identical() {
        // Pinned output of the streaming writer. This document was
        // produced by the pre-streaming (sort-based) implementation;
        // the single-pass merge must reproduce it byte for byte:
        // ascending ticks, signals in declaration order within a tick,
        // same-tick runs collapsed to their final value.
        let a = Signal::pulse_train([(1.0, 2.0), (4.0, 0.2)]).unwrap(); // sub-tick pulse at 4
        let b = Signal::from_times(Bit::One, &[1.0, 7.5]).unwrap();
        let c = Signal::constant(Bit::Zero);
        let doc = write_vcd(&[("a", &a), ("b sig", &b), ("c", &c)], "1ns", 1.0).unwrap();
        let expected = "$timescale 1ns $end\n\
                        $scope module faithful $end\n\
                        $var wire 1 ! a $end\n\
                        $var wire 1 \" b_sig $end\n\
                        $var wire 1 # c $end\n\
                        $upscope $end\n\
                        $enddefinitions $end\n\
                        $dumpvars\n\
                        0!\n\
                        1\"\n\
                        0#\n\
                        $end\n\
                        #1\n\
                        1!\n\
                        0\"\n\
                        #3\n\
                        0!\n\
                        #8\n\
                        1\"\n";
        assert_eq!(doc, expected);
    }

    #[test]
    fn roundtrip_write_read() {
        let a = Signal::pulse_train([(1.0, 2.0), (5.0, 0.5)]).unwrap();
        let b = Signal::from_times(ivl_core::Bit::One, &[2.5, 7.0]).unwrap();
        let doc = write_vcd(&[("a", &a), ("b", &b)], "1ps", 0.001).unwrap();
        let parsed = read_vcd(&doc, 0.001).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].0, "a");
        assert_eq!(parsed[1].0, "b");
        assert!(parsed[0].1.approx_eq(&a, 1e-9), "{}", parsed[0].1);
        assert!(parsed[1].1.approx_eq(&b, 1e-9), "{}", parsed[1].1);
    }

    #[test]
    fn read_rejects_malformed_documents() {
        assert!(read_vcd("#notanumber", 1.0).is_err());
        assert!(read_vcd("$var wire 1", 1.0).is_err());
        assert!(read_vcd("xq", 1.0).is_err());
        assert!(read_vcd("", 0.0).is_err());
        // value change for an undeclared identifier after the header
        let doc = "$enddefinitions $end\n$dumpvars\n$end\n#1\n1Z";
        assert!(read_vcd(doc, 1.0).is_err());
    }
}
