//! Parametric netlist generators for scale experiments.
//!
//! Hand-written netlists top out at a few dozen gates; the million-gate
//! tier needs topology *families* parameterized by size. Each generator
//! here builds a well-formed [`Circuit`] (gates and channels alternate,
//! every pin driven) with exactly one input port `"a"` and one output
//! port `"y"`, so the same scenarios drive every family:
//!
//! * [`inverter_chain`] — the paper's workhorse: `stages` inverters in
//!   series. Depth scales, width stays 1.
//! * [`grid`] — a `width × height` 2-D lattice where every interior
//!   cell NANDs its left and upper neighbours. Both depth **and**
//!   fanout scale: each cell feeds up to two successors, so event
//!   wavefronts widen as they propagate.
//! * [`random_dag`] — a seeded random DAG: each gate draws 1–2
//!   predecessors uniformly from the gates before it. Irregular fanout
//!   and depth exercise queue backends that topological regularity
//!   would flatter.
//! * [`fat_tree`] — a binary reduction tree of depth `depth`: wide at
//!   the leaves, single root. The extreme fanout-then-fan-in shape.
//!
//! Channels come from a caller-supplied factory closure (one call per
//! edge), so generators stay agnostic of the channel algebra: pass
//! `|| PureDelay::new(1.0).unwrap().clone_box()` or a closure cloning a
//! registry-built prototype.
//!
//! Gate initial values are computed by forward propagation assuming the
//! input port starts at [`Bit::Zero`], so a scenario whose input signal
//! has initial value `Zero` starts quiescent: the first event is the
//! input's first transition, not an initialization avalanche.

use crate::error::CircuitError;
use crate::gate::GateKind;
use crate::graph::{Circuit, CircuitBuilder, NodeId};
use ivl_core::channel::SimChannel;
use ivl_core::Bit;

/// A channel factory: called once per generated edge.
pub trait ChannelFactory: FnMut() -> Box<dyn SimChannel> {}
impl<F: FnMut() -> Box<dyn SimChannel>> ChannelFactory for F {}

/// `stages` inverters in series between input `"a"` and output `"y"`.
///
/// Gates are named `inv0..inv{stages-1}`; the input connects directly
/// (zero delay) to `inv0`, every other connection goes through a
/// factory-built channel. Initial values alternate starting from
/// `One` (`Not` of the quiescent `Zero` input).
///
/// # Errors
///
/// Propagates [`CircuitError`] from circuit construction (`stages` of 0
/// leaves the output port undriven only through the direct wire rule;
/// a zero-stage chain degenerates to `a → y` through one channel).
pub fn inverter_chain(
    stages: u32,
    mut channel: impl ChannelFactory,
) -> Result<Circuit, CircuitError> {
    let mut b = CircuitBuilder::new();
    let a = b.input("a");
    let y = b.output("y");
    let mut prev = a;
    for i in 0..stages {
        let init = if i % 2 == 0 { Bit::One } else { Bit::Zero };
        let g = b.gate(&format!("inv{i}"), GateKind::Not, init);
        if i == 0 {
            b.connect_direct(prev, g, 0)?;
        } else {
            b.connect_boxed(prev, g, 0, channel())?;
        }
        prev = g;
    }
    b.connect_boxed(prev, y, 0, channel())?;
    b.build()
}

/// A `width × height` lattice of gates between `"a"` and `"y"`.
///
/// Cell `(x, y)` is named `g{x}_{y}`. The origin `g0_0` is a `Not`
/// driven directly by the input; cells on the top row or left column
/// have one predecessor (a `Not` on the neighbour toward the origin);
/// interior cells are 2-input `Nand`s of their left (`pin 0`) and upper
/// (`pin 1`) neighbours. All lattice edges are factory-built channels.
/// The output port hangs off the far corner `g{width-1}_{height-1}`.
///
/// Total gate count is exactly `width * height` — `grid(1000, 1000,
/// ..)` is the million-gate tier.
///
/// # Errors
///
/// Returns [`CircuitError`] from construction; a zero `width` or
/// `height` produces an undriven output port
/// ([`CircuitError::UnconnectedPin`]).
pub fn grid(
    width: u32,
    height: u32,
    mut channel: impl ChannelFactory,
) -> Result<Circuit, CircuitError> {
    let mut b = CircuitBuilder::new();
    let a = b.input("a");
    let y = b.output("y");
    if width == 0 || height == 0 {
        // fall through to build() so the caller gets the canonical
        // UnconnectedPin diagnosis for the dangling output port
        return b.build();
    }
    let w = width as usize;
    let mut ids: Vec<NodeId> = Vec::with_capacity(w * height as usize);
    let mut inits: Vec<Bit> = Vec::with_capacity(w * height as usize);
    for gy in 0..height {
        for gx in 0..width {
            let name = format!("g{gx}_{gy}");
            let left = gx.checked_sub(1).map(|px| (gy as usize) * w + px as usize);
            let up = gy.checked_sub(1).map(|py| (py as usize) * w + gx as usize);
            let (kind, init) = match (left, up) {
                (None, None) => (GateKind::Not, GateKind::Not.eval(&[Bit::Zero])),
                (Some(p), None) | (None, Some(p)) => {
                    (GateKind::Not, GateKind::Not.eval(&[inits[p]]))
                }
                (Some(l), Some(u)) => (GateKind::Nand, GateKind::Nand.eval(&[inits[l], inits[u]])),
            };
            let g = b.gate(&name, kind.clone(), init);
            match (left, up) {
                (None, None) => {
                    b.connect_direct(a, g, 0)?;
                }
                (Some(p), None) | (None, Some(p)) => {
                    b.connect_boxed(ids[p], g, 0, channel())?;
                }
                (Some(l), Some(u)) => {
                    b.connect_boxed(ids[l], g, 0, channel())?;
                    b.connect_boxed(ids[u], g, 1, channel())?;
                }
            }
            ids.push(g);
            inits.push(init);
        }
    }
    let corner = ids[ids.len() - 1];
    b.connect_boxed(corner, y, 0, channel())?;
    b.build()
}

/// A seeded random DAG of `nodes` gates between `"a"` and `"y"`.
///
/// Gate `n{i}` draws its predecessors uniformly from `n0..n{i-1}` using
/// a `SplitMix64` stream over `seed`: one predecessor (a `Not`) or two
/// (a `Nand`), with equal probability once two candidates exist. `n0`
/// is a `Not` driven directly by the input; the output port hangs off
/// the last gate. The same `(nodes, seed)` pair reproduces the same
/// netlist bit for bit on every platform.
///
/// # Errors
///
/// Returns [`CircuitError`] from construction; `nodes` of 0 produces an
/// undriven output port ([`CircuitError::UnconnectedPin`]).
pub fn random_dag(
    nodes: u32,
    seed: u64,
    mut channel: impl ChannelFactory,
) -> Result<Circuit, CircuitError> {
    let mut b = CircuitBuilder::new();
    let a = b.input("a");
    let y = b.output("y");
    if nodes == 0 {
        return b.build();
    }
    let mut rng = SplitMix64::new(seed);
    let mut ids: Vec<NodeId> = Vec::with_capacity(nodes as usize);
    let mut inits: Vec<Bit> = Vec::with_capacity(nodes as usize);
    for i in 0..nodes {
        let name = format!("n{i}");
        if i == 0 {
            let init = GateKind::Not.eval(&[Bit::Zero]);
            let g = b.gate(&name, GateKind::Not, init);
            b.connect_direct(a, g, 0)?;
            ids.push(g);
            inits.push(init);
            continue;
        }
        let two = i >= 2 && rng.next() & 1 == 1;
        if two {
            let l = (rng.next() % u64::from(i)) as usize;
            let u = (rng.next() % u64::from(i)) as usize;
            let init = GateKind::Nand.eval(&[inits[l], inits[u]]);
            let g = b.gate(&name, GateKind::Nand, init);
            b.connect_boxed(ids[l], g, 0, channel())?;
            b.connect_boxed(ids[u], g, 1, channel())?;
            ids.push(g);
            inits.push(init);
        } else {
            let p = (rng.next() % u64::from(i)) as usize;
            let init = GateKind::Not.eval(&[inits[p]]);
            let g = b.gate(&name, GateKind::Not, init);
            b.connect_boxed(ids[p], g, 0, channel())?;
            ids.push(g);
            inits.push(init);
        }
    }
    let last = ids[ids.len() - 1];
    b.connect_boxed(last, y, 0, channel())?;
    b.build()
}

/// A binary reduction tree of depth `depth` between `"a"` and `"y"`.
///
/// Level 0 holds `2^depth` `Not` leaves named `t0_0..`, each driven
/// directly by the input port (the input fans out); level `l > 0` holds
/// `2^(depth-l)` `Nand`s named `t{l}_{i}`, each fed through channels by
/// its two children `t{l-1}_{2i}` (`pin 0`) and `t{l-1}_{2i+1}`
/// (`pin 1`). The single root at level `depth` drives the output port.
/// Total gate count is `2^(depth+1) - 1`.
///
/// # Errors
///
/// Returns [`CircuitError`] from construction.
///
/// # Panics
///
/// Panics if `depth > 24` (≈ 33 M gates — beyond that a fat tree is
/// never what you want; use [`grid`]. The lint layer rejects such
/// specs earlier).
pub fn fat_tree(depth: u32, mut channel: impl ChannelFactory) -> Result<Circuit, CircuitError> {
    assert!(
        depth <= 24,
        "fat_tree depth {depth} exceeds the 2^24-leaf cap"
    );
    let mut b = CircuitBuilder::new();
    let a = b.input("a");
    let y = b.output("y");
    let leaves = 1usize << depth;
    let mut level_ids: Vec<NodeId> = Vec::with_capacity(leaves);
    let mut level_inits: Vec<Bit> = Vec::with_capacity(leaves);
    for i in 0..leaves {
        let init = GateKind::Not.eval(&[Bit::Zero]);
        let g = b.gate(&format!("t0_{i}"), GateKind::Not, init);
        b.connect_direct(a, g, 0)?;
        level_ids.push(g);
        level_inits.push(init);
    }
    for l in 1..=depth {
        let count = 1usize << (depth - l);
        let mut next_ids = Vec::with_capacity(count);
        let mut next_inits = Vec::with_capacity(count);
        for i in 0..count {
            let (cl, cr) = (2 * i, 2 * i + 1);
            let init = GateKind::Nand.eval(&[level_inits[cl], level_inits[cr]]);
            let g = b.gate(&format!("t{l}_{i}"), GateKind::Nand, init);
            b.connect_boxed(level_ids[cl], g, 0, channel())?;
            b.connect_boxed(level_ids[cr], g, 1, channel())?;
            next_ids.push(g);
            next_inits.push(init);
        }
        level_ids = next_ids;
        level_inits = next_inits;
    }
    b.connect_boxed(level_ids[0], y, 0, channel())?;
    b.build()
}

/// Sebastiano Vigna's `SplitMix64` — tiny, seedable, and identical on
/// every platform, which is all a reproducible netlist needs.
struct SplitMix64(u64);

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulator;
    use ivl_core::channel::{PureDelay, SimChannel};
    use ivl_core::Signal;

    fn delay() -> Box<dyn SimChannel> {
        PureDelay::new(1.0).unwrap().clone_box()
    }

    #[test]
    fn chain_matches_hand_built() {
        let c = inverter_chain(3, delay).unwrap();
        assert_eq!(c.node_count(), 5); // a, y, inv0..inv2
        assert_eq!(c.edge_count(), 4);
        let mut sim = Simulator::new(c);
        sim.set_input("a", Signal::pulse(0.0, 2.0).unwrap())
            .unwrap();
        let run = sim.run(20.0).unwrap();
        // odd stage count inverts: initial One, pulse comes through
        let out = run.signal("y").unwrap();
        assert_eq!(out.initial(), Bit::One);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn grid_counts_and_runs() {
        let c = grid(4, 3, delay).unwrap();
        assert_eq!(c.node_count(), 2 + 12);
        // edges: 1 direct + (per cell with parents) + 1 to output
        // top row: 3 single-parent, left col: 2 single-parent,
        // interior: 6 cells * 2 = 12 → 1 + 3 + 2 + 12 + 1 = 19
        assert_eq!(c.edge_count(), 19);
        assert!(c.node("g3_2").is_some());
        let mut sim = Simulator::new(c);
        sim.set_input("a", Signal::pulse(0.0, 5.0).unwrap())
            .unwrap();
        let run = sim.run(100.0).unwrap();
        assert!(run.processed_events() > 0);
    }

    #[test]
    fn grid_zero_size_is_unconnected_output() {
        match grid(0, 5, delay) {
            Err(CircuitError::UnconnectedPin { node, .. }) => assert_eq!(node, "y"),
            other => panic!("expected UnconnectedPin, got {other:?}"),
        }
    }

    #[test]
    fn random_dag_is_reproducible() {
        let c1 = random_dag(50, 7, delay).unwrap();
        let c2 = random_dag(50, 7, delay).unwrap();
        assert_eq!(c1.node_count(), c2.node_count());
        assert_eq!(c1.edge_count(), c2.edge_count());
        for i in 0..c1.edge_count() {
            let e1 = c1.edge_endpoints(crate::graph::EdgeId(i as u32));
            let e2 = c2.edge_endpoints(crate::graph::EdgeId(i as u32));
            assert_eq!(e1, e2);
        }
        let c3 = random_dag(50, 8, delay).unwrap();
        let differs = (0..c1.edge_count().min(c3.edge_count())).any(|i| {
            c1.edge_endpoints(crate::graph::EdgeId(i as u32))
                != c3.edge_endpoints(crate::graph::EdgeId(i as u32))
        });
        assert!(differs || c1.edge_count() != c3.edge_count());
    }

    #[test]
    fn random_dag_runs() {
        let c = random_dag(64, 42, delay).unwrap();
        let mut sim = Simulator::new(c);
        sim.set_input("a", Signal::pulse(0.0, 3.0).unwrap())
            .unwrap();
        let run = sim.run(200.0).unwrap();
        assert!(run.processed_events() > 0);
    }

    #[test]
    fn fat_tree_counts_and_runs() {
        let c = fat_tree(3, delay).unwrap();
        assert_eq!(c.node_count(), 2 + (1 << 4) - 1); // 15 gates
        let mut sim = Simulator::new(c);
        sim.set_input("a", Signal::pulse(0.0, 4.0).unwrap())
            .unwrap();
        let run = sim.run(100.0).unwrap();
        assert!(run.processed_events() > 0);
        assert!(run.signal("y").is_ok());
    }

    #[test]
    fn quiescent_start_schedules_no_gate_events_on_chain() {
        // initial values are consistent with a Zero input, so a run whose
        // input never changes processes zero transitions
        let c = inverter_chain(10, delay).unwrap();
        let mut sim = Simulator::new(c);
        sim.set_input("a", Signal::constant(Bit::Zero)).unwrap();
        let run = sim.run(50.0).unwrap();
        assert_eq!(run.processed_events(), 0);
        assert_eq!(run.signal("y").unwrap().len(), 0);
    }
}
