//! Scenario supervision: panic containment, failure policies, retries,
//! watchdog timeouts, fault injection, and pool lifecycle.

use std::time::Duration;

use ivl_circuit::{
    CircuitBuilder, FailurePolicy, FaultKind, FaultPlan, GateKind, Scenario, ScenarioRunner,
    SimError,
};
use ivl_core::channel::{EtaInvolutionChannel, PureDelay};
use ivl_core::delay::ExpChannel;
use ivl_core::noise::{EtaBounds, UniformNoise};
use ivl_core::{Bit, Signal};

fn inverter_circuit() -> ivl_circuit::Circuit {
    let mut b = CircuitBuilder::new();
    let a = b.input("a");
    let inv = b.gate("inv", GateKind::Not, Bit::One);
    let y = b.output("y");
    b.connect_direct(a, inv, 0).unwrap();
    b.connect(inv, y, 0, PureDelay::new(1.0).unwrap()).unwrap();
    b.build().unwrap()
}

fn noisy_circuit() -> ivl_circuit::Circuit {
    let d = ExpChannel::new(1.0, 0.5, 0.5).unwrap();
    let bounds = EtaBounds::new(0.02, 0.02).unwrap();
    let mut b = CircuitBuilder::new();
    let a = b.input("a");
    let buf = b.gate("buf", GateKind::Buf, Bit::Zero);
    let y = b.output("y");
    b.connect_direct(a, buf, 0).unwrap();
    b.connect(
        buf,
        y,
        0,
        EtaInvolutionChannel::new(d, bounds, UniformNoise::new(0)),
    )
    .unwrap();
    b.build().unwrap()
}

fn seeded_scenarios(n: usize) -> Vec<Scenario> {
    (0..n)
        .map(|k| {
            Scenario::new(format!("s{k}"))
                .with_input("a", Signal::pulse(0.0, 2.0 + (k % 7) as f64).unwrap())
                .with_seed(500 + k as u64)
        })
        .collect()
}

#[test]
fn injected_panic_becomes_a_typed_failure_and_the_pool_survives() {
    let runner = ScenarioRunner::new(noisy_circuit(), 200.0)
        .with_workers(2)
        .with_fault_plan(FaultPlan::new().with_fault(3, FaultKind::Panic));
    let scenarios = seeded_scenarios(8);
    let sweep = runner.run(&scenarios);

    assert_eq!(sweep.failures().len(), 1);
    let failure = &sweep.failures()[0];
    assert_eq!(failure.index, 3);
    assert_eq!(failure.label, "s3");
    assert_eq!(failure.seed, Some(503));
    match &failure.cause {
        SimError::ScenarioPanicked { message } => {
            assert!(message.contains("injected fault"), "{message}");
        }
        other => panic!("expected ScenarioPanicked, got {other:?}"),
    }

    // the pool is still alive: the very same runner sweeps again, and a
    // fault-free reference run matches every surviving scenario bitwise
    let again = runner.run(&scenarios);
    assert_eq!(again.failures().len(), 1);
    let reference = ScenarioRunner::new(noisy_circuit(), 200.0)
        .with_workers(1)
        .run(&scenarios);
    for (i, (a, b)) in reference
        .outcomes()
        .iter()
        .zip(sweep.outcomes())
        .enumerate()
    {
        if i == 3 {
            continue;
        }
        assert_eq!(
            a.result().as_ref().unwrap().signal("y").unwrap(),
            b.result().as_ref().unwrap().signal("y").unwrap(),
            "scenario {i}"
        );
    }
}

#[test]
fn retry_policy_recovers_flaky_scenarios_with_the_same_seed() {
    let runner = ScenarioRunner::new(noisy_circuit(), 200.0)
        .with_workers(2)
        .with_failure_policy(FailurePolicy::Retry(2))
        .with_fault_plan(FaultPlan::new().with_fault(1, FaultKind::Flaky { failures: 2 }));
    let scenarios = seeded_scenarios(4);
    let sweep = runner.run(&scenarios);

    // two flaky attempts, recovered on the third — same seed, so the
    // recovered result matches the fault-free reference bitwise
    assert!(sweep.failures().is_empty());
    assert_eq!(sweep.stats().retried, 2);
    let reference = ScenarioRunner::new(noisy_circuit(), 200.0)
        .with_workers(1)
        .run(&scenarios);
    assert_eq!(
        reference.outcomes()[1]
            .result()
            .as_ref()
            .unwrap()
            .signal("y")
            .unwrap(),
        sweep.outcomes()[1]
            .result()
            .as_ref()
            .unwrap()
            .signal("y")
            .unwrap(),
    );
}

#[test]
fn retry_policy_gives_up_on_deterministic_bugs() {
    let runner = ScenarioRunner::new(inverter_circuit(), 100.0)
        .with_workers(2)
        .with_failure_policy(FailurePolicy::Retry(3))
        .with_fault_plan(FaultPlan::new().with_fault(0, FaultKind::Panic));
    let sweep = runner.run(&seeded_scenarios(2));
    assert_eq!(sweep.failures().len(), 1);
    assert_eq!(sweep.failures()[0].retries, 3);
    assert_eq!(sweep.stats().retried, 3);
}

#[test]
fn abort_policy_surfaces_index_seed_and_cause() {
    let runner = ScenarioRunner::new(inverter_circuit(), 100.0)
        .with_workers(2)
        .with_failure_policy(FailurePolicy::Abort)
        .with_fault_plan(FaultPlan::new().with_fault(5, FaultKind::Panic));
    let scenarios = seeded_scenarios(16);
    let aborted = runner.try_run(&scenarios).unwrap_err();
    assert_eq!(aborted.failure.index, 5);
    assert_eq!(aborted.failure.label, "s5");
    assert_eq!(aborted.failure.seed, Some(505));
    assert!(matches!(
        aborted.failure.cause,
        SimError::ScenarioPanicked { .. }
    ));
    let text = aborted.to_string();
    assert!(text.contains("scenario 5"), "{text}");
    assert!(text.contains("seed 505"), "{text}");

    // run() reports the same identity through its panic message
    let panic = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| runner.run(&scenarios)))
        .unwrap_err();
    let message = panic.downcast_ref::<String>().unwrap();
    assert!(message.contains("scenario 5"), "{message}");
    assert!(message.contains("seed 505"), "{message}");
}

#[test]
fn abort_is_clean_on_a_healthy_sweep() {
    let runner = ScenarioRunner::new(inverter_circuit(), 100.0)
        .with_workers(2)
        .with_failure_policy(FailurePolicy::Abort);
    let sweep = runner.try_run(&seeded_scenarios(6)).unwrap();
    assert_eq!(sweep.stats().failures, 0);
}

#[test]
fn exhaust_budget_fault_reports_max_events_per_scenario() {
    let runner = ScenarioRunner::new(inverter_circuit(), 100.0)
        .with_workers(2)
        .with_fault_plan(FaultPlan::new().with_fault(2, FaultKind::ExhaustBudget));
    let scenarios = seeded_scenarios(6);
    let sweep = runner.run(&scenarios);
    assert_eq!(sweep.failures().len(), 1);
    let failure = &sweep.failures()[0];
    assert_eq!(failure.index, 2);
    assert!(
        matches!(failure.cause, SimError::MaxEventsExceeded { budget: 1, .. }),
        "{:?}",
        failure.cause
    );
    // the clamped budget does not leak into later scenarios on the same
    // worker: everything else succeeded
    assert_eq!(sweep.stats().failures, 1);
}

#[test]
fn corrupt_channel_fault_is_a_deterministic_cancellation_mismatch() {
    let runner = ScenarioRunner::new(inverter_circuit(), 100.0)
        .with_workers(1)
        .with_fault_plan(FaultPlan::new().with_fault(0, FaultKind::CorruptChannel));
    let scenarios = seeded_scenarios(3);
    let sweep = runner.run(&scenarios);
    assert_eq!(sweep.failures().len(), 1);
    assert!(
        matches!(
            sweep.failures()[0].cause,
            SimError::CancellationMismatch { .. }
        ),
        "{:?}",
        sweep.failures()[0].cause
    );
    // the original channel was restored afterwards
    assert!(sweep.outcomes()[1].result().is_ok());
    assert!(sweep.outcomes()[2].result().is_ok());
}

#[test]
fn watchdog_cancels_stalled_scenarios() {
    let runner = ScenarioRunner::new(noisy_circuit(), 200.0)
        .with_workers(2)
        .with_scenario_timeout(Duration::from_millis(100))
        .with_fault_plan(FaultPlan::new().with_fault(1, FaultKind::Stall));
    let scenarios = seeded_scenarios(6);
    let start = std::time::Instant::now();
    let sweep = runner.run(&scenarios);
    // well under the 30 s defensive stall cap: the watchdog reclaimed it
    assert!(start.elapsed() < Duration::from_secs(10));
    assert_eq!(sweep.failures().len(), 1);
    let failure = &sweep.failures()[0];
    assert_eq!(failure.index, 1);
    assert!(
        matches!(failure.cause, SimError::Cancelled { .. }),
        "{:?}",
        failure.cause
    );
    // untimed scenarios on the same workers were not cancelled
    assert_eq!(sweep.stats().failures, 1);
}

#[test]
fn reconfiguration_joins_the_old_pool_instead_of_leaking_it() {
    let circuit = inverter_circuit();
    let runner = ScenarioRunner::new(circuit, 100.0).with_workers(3);
    assert_eq!(runner.circuit().topology_refs(), 1);

    // first run spawns the pool: each worker holds a template clone and
    // a simulator clone, all Arc-sharing the runner's topology
    let sweep = runner.run(&seeded_scenarios(4));
    assert_eq!(sweep.stats().failures, 0);
    assert_eq!(runner.circuit().topology_refs(), 1 + 2 * 3);

    // reconfiguring must join the old workers — every worker-held
    // topology reference is dropped, not leaked
    let runner = runner.with_max_events(1_000_000);
    assert_eq!(runner.circuit().topology_refs(), 1);
    let runner = runner.with_queue_backend(ivl_circuit::QueueBackend::Heap);
    assert_eq!(runner.circuit().topology_refs(), 1);

    // and the runner still works afterwards
    let sweep = runner.run(&seeded_scenarios(4));
    assert_eq!(sweep.stats().failures, 0);
    assert_eq!(runner.circuit().topology_refs(), 1 + 2 * 3);
    drop(runner);
}

#[test]
fn dropping_the_runner_joins_all_workers() {
    let circuit = inverter_circuit();
    let probe = circuit.clone();
    let runner = ScenarioRunner::new(circuit, 100.0).with_workers(4);
    let _ = runner.run(&seeded_scenarios(8));
    assert!(probe.topology_refs() > 2);
    drop(runner);
    // only the probe's reference remains: every worker thread exited
    assert_eq!(probe.topology_refs(), 1);
}

#[test]
fn survivors_are_bit_identical_across_worker_counts_under_faults() {
    let scenarios = seeded_scenarios(32);
    let plan = FaultPlan::new()
        .with_fault(4, FaultKind::Panic)
        .with_fault(11, FaultKind::ExhaustBudget);
    let reference = ScenarioRunner::new(noisy_circuit(), 200.0)
        .with_workers(1)
        .run(&scenarios);
    for workers in [1, 2, 4] {
        let sweep = ScenarioRunner::new(noisy_circuit(), 200.0)
            .with_workers(workers)
            .with_fault_plan(plan.clone())
            .run(&scenarios);
        let failed: Vec<usize> = sweep.failures().iter().map(|f| f.index).collect();
        assert_eq!(failed, vec![4, 11], "workers={workers}");
        for (i, (a, b)) in reference
            .outcomes()
            .iter()
            .zip(sweep.outcomes())
            .enumerate()
        {
            if failed.contains(&i) {
                continue;
            }
            assert_eq!(
                a.result().as_ref().unwrap().signal("y").unwrap(),
                b.result().as_ref().unwrap().signal("y").unwrap(),
                "workers={workers} scenario {i}"
            );
        }
    }
}
