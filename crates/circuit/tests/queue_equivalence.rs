//! The calendar queue's correctness bar: **bit-identical** runs against
//! the reference binary heap, under every workload class that stresses
//! the queue differently — involution pipelines (non-FIFO
//! cancellation), cancel-heavy inertial churn (eager discard + stale
//! generations), feedback oscillation (far-future pushes + overflow),
//! and seeded adversarial noise. [`QueueBackend::Auto`] gets the same
//! bar: its probe runs (wheel, then heap, then the committed winner)
//! must be indistinguishable from the reference heap on every workload
//! class — including wide fanout, the wheel's historical regression
//! case. Plus the persistent worker pool's determinism bar: identical
//! `SweepResult`s across 1/2/4/7/8 workers and across repeated `run()`
//! calls on one runner.

use ivl_circuit::{
    Circuit, CircuitBuilder, GateKind, QueueBackend, Scenario, ScenarioRunner, SimResult, Simulator,
};
use ivl_core::channel::{EtaInvolutionChannel, InertialDelay, InvolutionChannel, PureDelay};
use ivl_core::delay::ExpChannel;
use ivl_core::noise::{EtaBounds, UniformNoise};
use ivl_core::{Bit, Signal};
use proptest::prelude::*;

// ======================================================================
// Circuit generators
// ======================================================================

fn involution_chain(stages: usize) -> Circuit {
    let d = ExpChannel::new(1.0, 0.5, 0.5).unwrap();
    let mut b = CircuitBuilder::new();
    let a = b.input("a");
    let y = b.output("y");
    let mut prev = a;
    for i in 0..stages {
        let init = if i % 2 == 0 { Bit::One } else { Bit::Zero };
        let g = b.gate(&format!("inv{i}"), GateKind::Not, init);
        if i == 0 {
            b.connect_direct(prev, g, 0).unwrap();
        } else {
            b.connect(prev, g, 0, InvolutionChannel::new(d.clone()))
                .unwrap();
        }
        prev = g;
    }
    b.connect(prev, y, 0, InvolutionChannel::new(d)).unwrap();
    b.build().unwrap()
}

/// Inertial chain whose narrow input pulses are rejected in-channel:
/// heavy schedule-then-cancel churn, recycling pool slots and leaving
/// stale generations behind in the queue.
fn inertial_chain(stages: usize, window: f64) -> Circuit {
    let mut b = CircuitBuilder::new();
    let a = b.input("a");
    let mut prev = a;
    for i in 0..stages {
        let g = b.gate(&format!("buf{i}"), GateKind::Buf, Bit::Zero);
        if i == 0 {
            b.connect_direct(prev, g, 0).unwrap();
        } else {
            b.connect(prev, g, 0, InertialDelay::new(0.5, window).unwrap())
                .unwrap();
        }
        prev = g;
    }
    let y = b.output("y");
    b.connect(prev, y, 0, InertialDelay::new(0.5, window).unwrap())
        .unwrap();
    b.build().unwrap()
}

/// The Fig. 5-style feedback loop: a fed-back OR oscillates, pushing
/// events one loop-delay ahead forever (exercises wheel advancement and
/// the overflow level for long horizons).
fn feedback_loop(loop_delay: f64) -> Circuit {
    let mut b = CircuitBuilder::new();
    let i = b.input("i");
    let or = b.gate("or", GateKind::Or, Bit::Zero);
    let y = b.output("y");
    b.connect_direct(i, or, 0).unwrap();
    b.connect(or, or, 1, PureDelay::new(loop_delay).unwrap())
        .unwrap();
    b.connect(or, y, 0, PureDelay::new(0.5).unwrap()).unwrap();
    b.build().unwrap()
}

/// One driver fanning out to `branches` parallel buffers through
/// channels with widely spread delays: every batch scatters events over
/// many sparse calendar buckets (the `fanout_grid` regression shape).
fn fanout_star(branches: usize) -> Circuit {
    let mut b = CircuitBuilder::new();
    let a = b.input("a");
    let drv = b.gate("drv", GateKind::Buf, Bit::Zero);
    b.connect_direct(a, drv, 0).unwrap();
    for i in 0..branches {
        let g = b.gate(&format!("b{i}"), GateKind::Buf, Bit::Zero);
        b.connect(drv, g, 0, PureDelay::new(0.3 + 1.7 * i as f64).unwrap())
            .unwrap();
        let y = b.output(&format!("y{i}"));
        b.connect(g, y, 0, PureDelay::new(0.2).unwrap()).unwrap();
    }
    b.build().unwrap()
}

/// η-involution channel with a seeded uniform adversary: noise draws
/// must line up transition for transition across backends.
fn noisy_circuit() -> Circuit {
    let d = ExpChannel::new(1.0, 0.5, 0.5).unwrap();
    let bounds = EtaBounds::new(0.02, 0.02).unwrap();
    let mut b = CircuitBuilder::new();
    let a = b.input("a");
    let buf = b.gate("buf", GateKind::Buf, Bit::Zero);
    let y = b.output("y");
    b.connect_direct(a, buf, 0).unwrap();
    b.connect(
        buf,
        y,
        0,
        EtaInvolutionChannel::new(d, bounds, UniformNoise::new(0)),
    )
    .unwrap();
    b.build().unwrap()
}

// ======================================================================
// Comparison helpers
// ======================================================================

/// Runs the same circuit + input on both backends and demands bitwise
/// identical results (every node signal, every counter).
fn assert_backends_agree(circuit: &Circuit, input: &Signal, horizon: f64, seed: Option<u64>) {
    let run = |backend: QueueBackend| -> SimResult {
        let mut sim = Simulator::new(circuit.clone()).with_queue_backend(backend);
        if let Some(seed) = seed {
            sim.reseed_noise(seed);
        }
        sim.set_input("a", input.clone()).unwrap();
        sim.run(horizon).unwrap()
    };
    let heap = run(QueueBackend::Heap);
    let calendar = run(QueueBackend::Calendar);
    assert_eq!(heap.processed_events(), calendar.processed_events());
    assert_eq!(heap.scheduled_events(), calendar.scheduled_events());
    for name in circuit.node_names() {
        assert_eq!(
            heap.signal(name).unwrap(),
            calendar.signal(name).unwrap(),
            "node {name} diverges"
        );
    }
}

/// Runs the circuit once on the reference heap, then **three times** on
/// one `Auto` simulator — crossing the wheel probe, the heap probe, and
/// the committed winner — and demands every run match the reference
/// bitwise. However the timing races resolve, Auto must be invisible.
fn assert_auto_is_invisible(
    circuit: &Circuit,
    port: &str,
    input: &Signal,
    horizon: f64,
    seed: Option<u64>,
) {
    let reference = {
        let mut sim = Simulator::new(circuit.clone()).with_queue_backend(QueueBackend::Heap);
        if let Some(seed) = seed {
            sim.reseed_noise(seed);
        }
        sim.set_input(port, input.clone()).unwrap();
        sim.run(horizon).unwrap()
    };
    let mut auto = Simulator::new(circuit.clone()).with_queue_backend(QueueBackend::Auto);
    auto.set_input(port, input.clone()).unwrap();
    for round in 0..3 {
        if let Some(seed) = seed {
            auto.reseed_noise(seed);
        }
        let run = auto.run(horizon).unwrap();
        for name in circuit.node_names() {
            assert_eq!(
                reference.signal(name).unwrap(),
                run.signal(name).unwrap(),
                "auto round {round}: node {name} diverges"
            );
        }
        assert_eq!(reference.processed_events(), run.processed_events());
        assert_eq!(reference.scheduled_events(), run.scheduled_events());
    }
}

fn pulse_train(gaps: &[f64], widths: &[f64]) -> Signal {
    let mut t = 0.0;
    let mut pulses = Vec::new();
    for (gap, width) in gaps.iter().zip(widths) {
        t += gap;
        pulses.push((t, *width));
        t += width;
    }
    Signal::pulse_train(pulses).unwrap()
}

// ======================================================================
// Property tests
// ======================================================================

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Involution pipelines: non-FIFO cancellation, variable stage
    /// counts, irregular stimuli.
    #[test]
    fn calendar_matches_heap_on_involution_chains(
        stages in 1usize..24,
        gaps in proptest::collection::vec(0.1f64..6.0, 1..12),
        widths in proptest::collection::vec(0.05f64..4.0, 12),
    ) {
        let circuit = involution_chain(stages);
        let input = pulse_train(&gaps, &widths);
        assert_backends_agree(&circuit, &input, 500.0, None);
    }

    /// Cancel-heavy inertial churn: most pulses are rejected inside the
    /// channels, so the queue is dominated by eagerly-discarded (or
    /// stale) events and recycled pool generations.
    #[test]
    fn calendar_matches_heap_on_cancel_heavy_inertial(
        stages in 1usize..12,
        window in 0.6f64..3.0,
        gaps in proptest::collection::vec(0.5f64..4.0, 1..20),
        // most widths are below any sampled window: heavy rejection
        widths in proptest::collection::vec(0.01f64..0.7, 20),
    ) {
        let circuit = inertial_chain(stages, window);
        let input = pulse_train(&gaps, &widths);
        assert_backends_agree(&circuit, &input, 500.0, None);
    }

    /// Feedback oscillation: unbounded event generation until the
    /// horizon, wheel revolutions and far-future overflow.
    #[test]
    fn calendar_matches_heap_on_feedback_loops(
        loop_delay in 0.3f64..50.0,
        pulse_width in 0.05f64..10.0,
        horizon in 50.0f64..2000.0,
    ) {
        let circuit = feedback_loop(loop_delay);
        let pick = |backend| {
            let mut sim = Simulator::new(circuit.clone())
                .with_queue_backend(backend)
                .with_max_events(200_000);
            sim.set_input("i", Signal::pulse(0.0, pulse_width).unwrap()).unwrap();
            sim.run(horizon)
        };
        match (pick(QueueBackend::Heap), pick(QueueBackend::Calendar)) {
            (Ok(h), Ok(c)) => {
                prop_assert_eq!(h.signal("or").unwrap(), c.signal("or").unwrap());
                prop_assert_eq!(h.signal("y").unwrap(), c.signal("y").unwrap());
                prop_assert_eq!(h.processed_events(), c.processed_events());
            }
            // budget exhaustion must strike both backends identically
            (Err(h), Err(c)) => prop_assert_eq!(format!("{h}"), format!("{c}")),
            (h, c) => prop_assert!(false, "backends diverge: heap {h:?} vs calendar {c:?}"),
        }
    }

    /// Seeded adversarial noise: the η draws are consumed in feed order,
    /// so any delivery-order divergence would desynchronize the streams
    /// and show up as different waveforms.
    #[test]
    fn calendar_matches_heap_under_noise(
        seed in 0u64..1000,
        gaps in proptest::collection::vec(0.5f64..5.0, 1..10),
        widths in proptest::collection::vec(0.5f64..4.0, 10),
    ) {
        let circuit = noisy_circuit();
        let input = pulse_train(&gaps, &widths);
        assert_backends_agree(&circuit, &input, 500.0, Some(seed));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Auto on involution pipelines: every probe phase bit-identical to
    /// the reference heap.
    #[test]
    fn auto_matches_heap_on_involution_chains(
        stages in 1usize..16,
        gaps in proptest::collection::vec(0.1f64..6.0, 1..10),
        widths in proptest::collection::vec(0.05f64..4.0, 10),
    ) {
        let circuit = involution_chain(stages);
        let input = pulse_train(&gaps, &widths);
        assert_auto_is_invisible(&circuit, "a", &input, 500.0, None);
    }

    /// Auto on wide fanout — the shape where the wheel historically
    /// *lost* to the heap, so this is exactly where the probe's choice
    /// matters and must stay invisible in the results.
    #[test]
    fn auto_matches_heap_on_fanout_stars(
        branches in 2usize..24,
        gaps in proptest::collection::vec(0.5f64..8.0, 1..8),
        widths in proptest::collection::vec(0.2f64..5.0, 8),
    ) {
        let circuit = fanout_star(branches);
        let input = pulse_train(&gaps, &widths);
        assert_auto_is_invisible(&circuit, "a", &input, 500.0, None);
        assert_backends_agree(&circuit, &input, 500.0, None);
    }

    /// Auto on cancel-heavy churn: the probe's cancel-rate shortcut
    /// commits the wheel early; results must not notice.
    #[test]
    fn auto_matches_heap_on_cancel_heavy_inertial(
        stages in 1usize..10,
        window in 0.6f64..3.0,
        gaps in proptest::collection::vec(0.5f64..4.0, 1..16),
        widths in proptest::collection::vec(0.01f64..0.7, 16),
    ) {
        let circuit = inertial_chain(stages, window);
        let input = pulse_train(&gaps, &widths);
        assert_auto_is_invisible(&circuit, "a", &input, 500.0, None);
    }

    /// Auto on feedback oscillation (far-future pushes, overflow) and
    /// under seeded noise: probe phases must track the heap reference
    /// transition for transition.
    #[test]
    fn auto_matches_heap_on_feedback_loops(
        loop_delay in 0.3f64..50.0,
        pulse_width in 0.05f64..10.0,
        horizon in 50.0f64..1000.0,
    ) {
        let circuit = feedback_loop(loop_delay);
        assert_auto_is_invisible(
            &circuit,
            "i",
            &Signal::pulse(0.0, pulse_width).unwrap(),
            horizon,
            None,
        );
    }

    /// Auto under seeded adversarial noise.
    #[test]
    fn auto_matches_heap_under_noise(
        seed in 0u64..1000,
        gaps in proptest::collection::vec(0.5f64..5.0, 1..8),
        widths in proptest::collection::vec(0.5f64..4.0, 8),
    ) {
        let circuit = noisy_circuit();
        let input = pulse_train(&gaps, &widths);
        assert_auto_is_invisible(&circuit, "a", &input, 500.0, Some(seed));
    }
}

// ======================================================================
// Sweep-level equivalence and pool determinism
// ======================================================================

fn sweep_scenarios(n: usize) -> Vec<Scenario> {
    (0..n)
        .map(|k| {
            Scenario::new(format!("s{k}"))
                .with_input(
                    "a",
                    pulse_train(
                        &[0.5 + 0.1 * k as f64, 1.0, 2.0],
                        &[3.0, 0.2, 1.0 + 0.05 * k as f64],
                    ),
                )
                .with_seed(k as u64)
        })
        .collect()
}

fn assert_sweeps_identical(a: &ivl_circuit::SweepResult, b: &ivl_circuit::SweepResult, ctx: &str) {
    assert_eq!(a.stats(), b.stats(), "{ctx}: stats diverge");
    for (x, y) in a.outcomes().iter().zip(b.outcomes()) {
        assert_eq!(x.label(), y.label(), "{ctx}");
        match (x.result(), y.result()) {
            (Ok(rx), Ok(ry)) => {
                assert_eq!(
                    rx.signal("y").unwrap(),
                    ry.signal("y").unwrap(),
                    "{ctx}: scenario {} diverges",
                    x.label()
                );
                assert_eq!(rx.processed_events(), ry.processed_events(), "{ctx}");
            }
            (Err(ex), Err(ey)) => assert_eq!(format!("{ex}"), format!("{ey}"), "{ctx}"),
            _ => panic!("{ctx}: ok/err mismatch on {}", x.label()),
        }
    }
}

/// `SweepResult`s must be bit-identical between queue backends —
/// Calendar *and* Auto (whose workers probe and commit independently,
/// mid-sweep) — for every worker count.
#[test]
fn sweep_results_identical_across_backends_and_worker_counts() {
    let scenarios = sweep_scenarios(16);
    let reference = ScenarioRunner::new(noisy_circuit(), 300.0)
        .with_workers(1)
        .with_queue_backend(QueueBackend::Heap)
        .run(&scenarios);
    for backend in [QueueBackend::Calendar, QueueBackend::Auto] {
        for workers in [1, 2, 4, 7, 8] {
            let sweep = ScenarioRunner::new(noisy_circuit(), 300.0)
                .with_workers(workers)
                .with_queue_backend(backend)
                .run(&scenarios);
            assert_sweeps_identical(
                &reference,
                &sweep,
                &format!("{backend:?} workers={workers}"),
            );
        }
    }
}

/// The persistent pool keeps worker simulators warm across `run()`
/// calls; repeated sweeps on one runner must stay bit-identical, for
/// every worker count.
#[test]
fn pool_is_deterministic_across_repeated_runs_and_worker_counts() {
    let scenarios = sweep_scenarios(13);
    let reference = ScenarioRunner::new(noisy_circuit(), 300.0)
        .with_workers(1)
        .run(&scenarios);
    for workers in [1, 2, 4, 7, 8] {
        let runner = ScenarioRunner::new(noisy_circuit(), 300.0).with_workers(workers);
        for round in 0..3 {
            let sweep = runner.run(&scenarios);
            assert_sweeps_identical(
                &reference,
                &sweep,
                &format!("workers={workers} round={round}"),
            );
        }
    }
}

/// Cancel-heavy inertial sweeps through the pool: the eager-discard
/// path and slab recycling under parallel, repeated execution.
#[test]
fn pool_sweeps_cancel_heavy_identical_across_backends() {
    let circuit = inertial_chain(6, 1.0);
    let scenarios: Vec<Scenario> = (0..10)
        .map(|k| {
            Scenario::new(format!("c{k}")).with_input(
                "a",
                pulse_train(
                    &[1.0, 2.0, 0.8, 3.0],
                    &[0.3, 4.0, 0.2, 0.4 + 0.01 * k as f64],
                ),
            )
        })
        .collect();
    let heap = ScenarioRunner::new(circuit.clone(), 400.0)
        .with_workers(2)
        .with_queue_backend(QueueBackend::Heap)
        .run(&scenarios);
    let calendar = ScenarioRunner::new(circuit, 400.0)
        .with_workers(2)
        .with_queue_backend(QueueBackend::Calendar)
        .run(&scenarios);
    assert_sweeps_identical(&heap, &calendar, "cancel-heavy pool");
}
