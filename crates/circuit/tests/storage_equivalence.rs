//! Equivalence battery for the struct-of-arrays circuit core and the
//! selective recorder: a run that records only a watch set must return
//! bit-identical signals and event counts to a run that records
//! everything, across channel families (involution, inertial,
//! cancel-heavy pure-delay) and across 1/2/4/8-worker sweeps.
//!
//! These tests pin the tentpole invariant of the scale refactor: watch
//! sets and bounded recording change *what is kept*, never *what is
//! computed*.

use proptest::prelude::*;

use ivl_circuit::{
    Circuit, CircuitBuilder, GateKind, QueueBackend, Scenario, ScenarioRunner, Simulator,
};
use ivl_core::channel::{InertialDelay, InvolutionChannel, PureDelay, SimChannel};
use ivl_core::delay::ExpChannel;
use ivl_core::{Bit, Signal};

#[derive(Debug, Clone, Copy)]
enum Family {
    /// Involution channels over an exponential delay pair — the
    /// paper's canonical model, cancellation-capable.
    Involution,
    /// Inertial delays with a rejection window — drops short pulses.
    Inertial,
    /// Pure delays driven by narrow pulse trains — the cancel-heavy
    /// regime lives in the stimulus, not the channel.
    Pure,
}

fn make_channel(family: Family) -> Box<dyn SimChannel> {
    match family {
        Family::Involution => {
            InvolutionChannel::new(ExpChannel::new(1.0, 0.5, 0.5).unwrap()).clone_box()
        }
        Family::Inertial => InertialDelay::new(1.0, 0.4).unwrap().clone_box(),
        Family::Pure => PureDelay::new(0.7).unwrap().clone_box(),
    }
}

/// An `stages`-deep chain with a mid-chain 2-gate fanout diamond, so
/// selective recording skips fanned-out edges too, not just chain links.
fn build_circuit(stages: u32, family: Family) -> Circuit {
    let mut b = CircuitBuilder::new();
    let a = b.input("a");
    let y = b.output("y");
    let mut prev = a;
    for i in 0..stages {
        let init = if i % 2 == 0 { Bit::One } else { Bit::Zero };
        let g = b.gate(&format!("inv{i}"), GateKind::Not, init);
        if i == 0 {
            b.connect_direct(prev, g, 0).unwrap();
        } else {
            b.connect_boxed(prev, g, 0, make_channel(family)).unwrap();
        }
        prev = g;
    }
    // diamond: prev fans out into two NANDed branches
    let l = b.gate("dia_l", GateKind::Not, Bit::Zero);
    let r = b.gate("dia_r", GateKind::Not, Bit::Zero);
    let j = b.gate("dia_j", GateKind::Nand, Bit::One);
    b.connect_boxed(prev, l, 0, make_channel(family)).unwrap();
    b.connect_boxed(prev, r, 0, make_channel(family)).unwrap();
    b.connect_boxed(l, j, 0, make_channel(family)).unwrap();
    b.connect_boxed(r, j, 1, make_channel(family)).unwrap();
    b.connect_boxed(j, y, 0, make_channel(family)).unwrap();
    b.build().unwrap()
}

fn stimulus(pulses: &[(f64, f64)]) -> Signal {
    Signal::pulse_train(pulses.iter().copied()).unwrap()
}

fn pulse_train_strategy() -> impl Strategy<Value = Vec<(f64, f64)>> {
    // start offsets and widths chosen so consecutive pulses never
    // overlap: pulse k lives in [4k, 4k+3.5]
    proptest::collection::vec((0.0..0.5f64, 0.2..3.5f64), 1..6).prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(k, (jitter, width))| (4.0 * k as f64 + jitter, width))
            .collect()
    })
}

fn family_strategy() -> impl Strategy<Value = Family> {
    prop_oneof![
        Just(Family::Involution),
        Just(Family::Inertial),
        Just(Family::Pure),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A watched run returns exactly the signals (and event counts) of
    /// a record-everything run, for every channel family and backend.
    #[test]
    fn selective_recording_is_bit_identical(
        stages in 1u32..10,
        family in family_strategy(),
        pulses in pulse_train_strategy(),
        backend in prop_oneof![
            Just(QueueBackend::Heap),
            Just(QueueBackend::Calendar),
            Just(QueueBackend::Auto),
        ],
    ) {
        let input = stimulus(&pulses);
        let watch = ["y", "inv0", "dia_j"];

        let mut full = Simulator::new(build_circuit(stages, family))
            .with_queue_backend(backend);
        full.set_input("a", input.clone()).unwrap();
        let full_run = full.run(1e4).unwrap();

        let mut sel = Simulator::new(build_circuit(stages, family))
            .with_queue_backend(backend);
        sel.set_watch(watch).unwrap();
        sel.set_input("a", input).unwrap();
        let sel_run = sel.run(1e4).unwrap();

        prop_assert_eq!(full_run.processed_events(), sel_run.processed_events());
        prop_assert_eq!(full_run.scheduled_events(), sel_run.scheduled_events());
        prop_assert_eq!(sel_run.dropped_transitions(), 0);
        for name in watch {
            prop_assert_eq!(
                full_run.signal(name).unwrap(),
                sel_run.signal(name).unwrap(),
                "signal {} diverged", name
            );
        }
    }

    /// Watched sweeps across 1/2/4/8 workers agree with the
    /// single-threaded record-everything sweep: same per-scenario
    /// output signals, same aggregate statistics.
    #[test]
    fn watched_sweeps_match_across_worker_counts(
        stages in 1u32..8,
        family in family_strategy(),
        widths in proptest::collection::vec(0.2..3.0f64, 1..5),
    ) {
        let scenarios: Vec<Scenario> = widths
            .iter()
            .enumerate()
            .map(|(k, w)| {
                Scenario::new(format!("s{k}"))
                    .with_input("a", Signal::pulse(k as f64, *w).unwrap())
            })
            .collect();

        let reference = ScenarioRunner::new(build_circuit(stages, family), 1e4)
            .with_workers(1)
            .run(&scenarios);
        let ref_signals: Vec<Signal> = reference
            .outcomes()
            .iter()
            .map(|o| o.result().as_ref().unwrap().signal("y").unwrap().clone())
            .collect();

        for workers in [1usize, 2, 4, 8] {
            let sweep = ScenarioRunner::new(build_circuit(stages, family), 1e4)
                .with_workers(workers)
                .with_watch(["inv0"])
                .unwrap()
                .run(&scenarios);
            prop_assert_eq!(sweep.stats().failures, 0);
            prop_assert_eq!(
                sweep.stats().processed_events,
                reference.stats().processed_events,
                "worker count {} diverged", workers
            );
            prop_assert_eq!(
                sweep.stats().output_transitions,
                reference.stats().output_transitions
            );
            prop_assert_eq!(sweep.stats().min_pulse_width, reference.stats().min_pulse_width);
            for (o, expected) in sweep.outcomes().iter().zip(&ref_signals) {
                let run = o.result().as_ref().unwrap();
                prop_assert_eq!(run.signal("y").unwrap(), expected);
                // the explicitly watched interior node is recorded too
                let _ = run.signal("inv0").unwrap();
            }
        }
    }
}

/// The generators produce identical simulations through the facade and
/// directly — anchored here with the grid family to also pin SoA CSR
/// adjacency on a fanout-heavy topology.
#[test]
fn grid_selective_matches_full() {
    let make = || ivl_circuit::generate::grid(6, 5, || PureDelay::new(0.9).unwrap().clone_box());
    let input = Signal::pulse_train([(0.0, 2.0), (6.0, 1.0), (11.0, 3.0)]).unwrap();

    let mut full = Simulator::new(make().unwrap());
    full.set_input("a", input.clone()).unwrap();
    let full_run = full.run(1e4).unwrap();

    let mut sel = Simulator::new(make().unwrap());
    sel.set_watch(["y", "g3_2"]).unwrap();
    sel.set_input("a", input).unwrap();
    let sel_run = sel.run(1e4).unwrap();

    assert_eq!(full_run.processed_events(), sel_run.processed_events());
    assert_eq!(full_run.signal("y").unwrap(), sel_run.signal("y").unwrap());
    assert_eq!(
        full_run.signal("g3_2").unwrap(),
        sel_run.signal("g3_2").unwrap()
    );
    // unwatched nodes answer with a typed error, not a panic
    assert!(matches!(
        sel_run.signal("g0_0"),
        Err(ivl_circuit::SimError::NotWatched { .. })
    ));
}
