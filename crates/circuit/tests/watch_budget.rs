//! Memory-boundedness of selective recording: with a 2-node watch set,
//! the steady-state allocations per run must be a small constant that
//! does **not** scale with the size of the netlist. This is the
//! memory-side contract of the scale tier — a million-gate grid with
//! two watched nodes costs two recorders, not a million.
//!
//! Keep this file to a single test: the counting allocator is global.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use ivl_circuit::{generate, QueueBackend, Simulator};
use ivl_core::channel::{PureDelay, SimChannel};
use ivl_core::Signal;

struct CountingAlloc;

static ALLOC_CALLS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn alloc_calls<R>(f: impl FnOnce() -> R) -> (usize, R) {
    let before = ALLOC_CALLS.load(Ordering::Relaxed);
    let r = f();
    (ALLOC_CALLS.load(Ordering::Relaxed) - before, r)
}

/// Steady-state allocations of a watched run on a `stages`-deep chain.
fn steady_allocs(stages: u32) -> usize {
    let channel = || PureDelay::new(0.01).unwrap().clone_box();
    let circuit = generate::inverter_chain(stages, channel).unwrap();

    // Pin the reference heap: this test measures *recording* memory,
    // and the Auto prober's timed wheel-vs-heap choice on a chain this
    // small is a coin flip — the wheel's bucket array does not reach a
    // run-stable allocation count as quickly as the heap does.
    let mut sim = Simulator::new(circuit).with_queue_backend(QueueBackend::Heap);
    sim.set_watch(["y", "inv0"]).unwrap();
    let input = Signal::pulse_train((0..8).map(|k| (k as f64 * 40.0, 20.0))).unwrap();
    sim.set_input("a", input).unwrap();

    // warmup: grows the pool, queue and recorders to their high-water
    // marks
    for _ in 0..4 {
        sim.run(1e9).unwrap();
    }

    let (steady, run) = alloc_calls(|| sim.run(1e9).unwrap());
    let (again, run2) = alloc_calls(|| sim.run(1e9).unwrap());
    assert_eq!(run.processed_events(), run2.processed_events());
    assert!(
        run.processed_events() > 8 * stages as usize,
        "chain saturated"
    );
    assert_eq!(steady, again, "allocation count must not drift");
    steady
}

#[test]
fn watched_runs_allocate_a_size_independent_constant() {
    // Two chains an order of magnitude apart. If recording cost scaled
    // with the netlist, the larger chain would allocate thousands more.
    let small = steady_allocs(128);
    let large = steady_allocs(2048);

    // The budget covers the SimResult scaffolding plus exact-sized
    // transition buffers for the two watched recorders — nothing that
    // tracks node or edge count.
    const BUDGET: usize = 96;
    assert!(
        small <= BUDGET,
        "{small} allocations per watched run exceeds the fixed budget {BUDGET}"
    );
    assert!(
        large <= BUDGET,
        "{large} allocations per watched run exceeds the fixed budget {BUDGET}"
    );
    assert_eq!(
        small, large,
        "per-run allocations must not depend on netlist size"
    );
}
