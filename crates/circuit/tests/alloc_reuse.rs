//! Allocation behaviour of the reused simulator state: after a warmup
//! run, repeated runs on a ≥1k-gate inverter chain must hit an
//! allocation steady state — the event pool, heap, pending queues and
//! recorders are all recycled, so the only per-run allocations are the
//! exact-sized signal copies in the returned `SimResult`.
//!
//! Keep this file to a single test: the counting allocator is global.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use ivl_circuit::{CircuitBuilder, GateKind, Simulator};
use ivl_core::channel::PureDelay;
use ivl_core::{Bit, Signal};

struct CountingAlloc;

static ALLOC_CALLS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn alloc_calls<R>(f: impl FnOnce() -> R) -> (usize, R) {
    let before = ALLOC_CALLS.load(Ordering::Relaxed);
    let r = f();
    (ALLOC_CALLS.load(Ordering::Relaxed) - before, r)
}

#[test]
fn repeated_runs_reach_an_allocation_steady_state() {
    const STAGES: usize = 1024;

    let mut b = CircuitBuilder::new();
    let a = b.input("a");
    let y = b.output("y");
    let mut prev = a;
    for i in 0..STAGES {
        let init = if i % 2 == 0 { Bit::One } else { Bit::Zero };
        let g = b.gate(&format!("inv{i}"), GateKind::Not, init);
        if i == 0 {
            b.connect_direct(prev, g, 0).unwrap();
        } else {
            b.connect(prev, g, 0, PureDelay::new(0.01).unwrap())
                .unwrap();
        }
        prev = g;
    }
    b.connect(prev, y, 0, PureDelay::new(0.01).unwrap())
        .unwrap();
    let circuit = b.build().unwrap();
    let n_nodes = circuit.node_count();
    let n_edges = circuit.edge_count();

    let mut sim = Simulator::new(circuit);
    let input = Signal::pulse_train((0..20).map(|k| (k as f64 * 40.0, 20.0))).unwrap();
    sim.set_input("a", input).unwrap();

    // warmup: grows every buffer to its high-water mark, and — under
    // the default Auto backend — carries the simulator all the way
    // through its probe phases (cold run, heap probe, wheel probe,
    // committed winner), so the steady-state runs below never pay a
    // backend-switch allocation
    for _ in 0..4 {
        sim.run(1e9).unwrap();
    }
    let pool_capacity = sim.event_pool_capacity();

    let (steady, run3) = alloc_calls(|| sim.run(1e9).unwrap());
    let (again, run4) = alloc_calls(|| sim.run(1e9).unwrap());
    assert_eq!(run3.processed_events(), run4.processed_events());
    assert!(run3.processed_events() > 20 * STAGES, "chain saturated");

    // steady state: run N and run N+1 allocate identically — nothing
    // grows with repetition
    assert_eq!(steady, again, "allocation count must not drift");

    // and the count is bounded by the SimResult construction (a handful
    // of vectors plus one exact-sized transition buffer per signal),
    // NOT by the tens of thousands of events processed
    let result_bound = 3 * (n_nodes + n_edges) + 64;
    assert!(
        steady <= result_bound,
        "{steady} allocations per run exceeds the result-only bound {result_bound}"
    );

    // the slab never grows after warmup either
    assert_eq!(sim.event_pool_capacity(), pool_capacity);
}
