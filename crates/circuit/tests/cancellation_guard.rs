//! Regression tests for the generation-stamped cancellation guard.
//!
//! The pre-slab simulator verified a channel's `CancelledPair` only with
//! a `debug_assert_eq!` on the cancelled time: in a **release** build a
//! mismatched cancellation silently invalidated the *newest* pending
//! event on the edge — whatever it was — and the run completed with a
//! corrupted waveform. These tests drive deliberately misbehaving
//! channels through the public API and demand a hard [`SimError`]; they
//! fail on the old simulator when compiled with `--release`.

use ivl_circuit::{CircuitBuilder, GateKind, SimError, Simulator};
use ivl_core::channel::{FeedEffect, OnlineChannel};
use ivl_core::{Bit, Signal, Transition};

/// A channel that schedules its first two outputs normally and then
/// "cancels" a transition that is *not* the pending one.
#[derive(Debug, Clone)]
struct RogueChannel {
    fed: usize,
    /// What the third feed claims to cancel.
    bogus_cancel: Transition,
}

impl RogueChannel {
    fn new(bogus_cancel: Transition) -> Self {
        RogueChannel {
            fed: 0,
            bogus_cancel,
        }
    }
}

impl OnlineChannel for RogueChannel {
    fn feed(&mut self, input: Transition) -> FeedEffect {
        self.fed += 1;
        if self.fed <= 2 {
            FeedEffect::Scheduled(Transition::new(input.time + 2.0, input.value))
        } else {
            FeedEffect::CancelledPair {
                cancelled: self.bogus_cancel,
            }
        }
    }

    fn reset(&mut self) {
        self.fed = 0;
    }
}

/// Builds `a → buf → (rogue channel) → y` and feeds three transitions
/// (t = 0 rise, 1 fall, 2 rise), so the rogue cancel fires on the third.
fn run_with(rogue: RogueChannel) -> Result<(), SimError> {
    let mut b = CircuitBuilder::new();
    let a = b.input("a");
    let g = b.gate("buf", GateKind::Buf, Bit::Zero);
    let y = b.output("y");
    b.connect_direct(a, g, 0).unwrap();
    b.connect(g, y, 0, rogue).unwrap();
    let mut sim = Simulator::new(b.build().unwrap());
    // rise at 0, fall at 1, rise at 2 — the rogue cancel is the last feed
    sim.set_input(
        "a",
        Signal::from_times(Bit::Zero, &[0.0, 1.0, 2.0]).unwrap(),
    )
    .unwrap();
    sim.run(100.0).map(|run| {
        // Reaching here means the mismatch was absorbed silently. The old
        // release-mode simulator did exactly that, leaving y latched high
        // (the fall at t = 3 was the event it wrongly invalidated).
        assert!(
            run.signal("y").unwrap().len() >= 2,
            "wrong pending event silently cancelled: y = {}",
            run.signal("y").unwrap()
        );
    })
}

#[test]
fn wrong_time_cancellation_is_a_hard_error() {
    // pending event on the edge is the fall at t = 3; the channel claims
    // to cancel the (already delivered) rise at t = 2
    let res = run_with(RogueChannel::new(Transition::new(2.0, Bit::One)));
    assert!(res.is_err(), "mismatched cancellation must not pass");
    assert!(matches!(
        res,
        Err(SimError::CancellationMismatch {
            pending: Some(_),
            ..
        })
    ));
}

#[test]
fn wrong_value_cancellation_is_a_hard_error() {
    // time matches the pending fall at t = 3 but the value does not —
    // the old debug_assert compared only times, so even debug builds
    // absorbed this one
    let res = run_with(RogueChannel::new(Transition::new(3.0, Bit::One)));
    assert!(res.is_err(), "value-mismatched cancellation must not pass");
    assert!(matches!(res, Err(SimError::CancellationMismatch { .. })));
}

#[test]
fn cancellation_with_nothing_pending_is_a_hard_error() {
    /// Cancels on the very first feed, with nothing scheduled.
    #[derive(Debug, Clone)]
    struct CancelFirst;
    impl OnlineChannel for CancelFirst {
        fn feed(&mut self, input: Transition) -> FeedEffect {
            FeedEffect::CancelledPair {
                cancelled: Transition::new(input.time + 1.0, input.value),
            }
        }
        fn reset(&mut self) {}
    }

    let mut b = CircuitBuilder::new();
    let a = b.input("a");
    let g = b.gate("buf", GateKind::Buf, Bit::Zero);
    let y = b.output("y");
    b.connect_direct(a, g, 0).unwrap();
    b.connect(g, y, 0, CancelFirst).unwrap();
    let mut sim = Simulator::new(b.build().unwrap());
    sim.set_input("a", Signal::pulse(0.0, 1.0).unwrap())
        .unwrap();
    assert!(matches!(
        sim.run(100.0),
        Err(SimError::CancellationMismatch { pending: None, .. })
    ));
}

#[test]
fn well_behaved_cancellation_still_works() {
    // sanity: the guard must not reject legitimate pairwise cancellation
    use ivl_core::channel::InvolutionChannel;
    use ivl_core::delay::ExpChannel;

    let d = ExpChannel::new(1.0, 0.5, 0.5).unwrap();
    let mut b = CircuitBuilder::new();
    let a = b.input("a");
    let g = b.gate("buf", GateKind::Buf, Bit::Zero);
    let y = b.output("y");
    b.connect_direct(a, g, 0).unwrap();
    b.connect(g, y, 0, InvolutionChannel::new(d)).unwrap();
    let mut sim = Simulator::new(b.build().unwrap());
    // a pulse short enough to cancel inside the channel
    sim.set_input("a", Signal::pulse(0.0, 0.05).unwrap())
        .unwrap();
    let run = sim.run(100.0).unwrap();
    assert!(run.signal("y").unwrap().is_zero());
    assert!(run.scheduled_events() > run.processed_events());
}
