use std::fmt;

/// Errors of the analog substrate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// A device or simulation parameter was out of range.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Offending value.
        value: f64,
        /// Constraint description.
        constraint: &'static str,
    },
    /// A waveform was too short or degenerate for the requested analysis.
    DegenerateWaveform {
        /// Human-readable reason.
        reason: &'static str,
    },
    /// A sweep configuration that cannot produce a meaningful result
    /// (empty width axis, non-finite or non-positive knobs).
    InvalidSweep {
        /// What is wrong with the configuration.
        reason: String,
    },
    /// A characterization sweep failed to observe an expected crossing.
    MissingCrossing {
        /// Which crossing was missing.
        what: &'static str,
        /// The pulse width (ps) being characterized.
        pulse_width: f64,
    },
    /// The adaptive integrator failed to advance (step-size underflow
    /// or step budget exhausted).
    Integration {
        /// What went wrong.
        what: &'static str,
        /// Simulation time (ps) at which the integrator gave up.
        t: f64,
    },
    /// A sweep worker panicked while running one job. The panic was
    /// contained: only this job's slot carries the failure, every other
    /// width's result is intact.
    WorkerPanic {
        /// Index of the job (width/orientation slot) that panicked.
        index: usize,
        /// The panic payload, rendered to text.
        message: String,
    },
    /// Propagated core error (e.g. invalid extracted signal).
    Core(ivl_core::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidParameter {
                name,
                value,
                constraint,
            } => write!(f, "parameter {name} = {value} invalid: {constraint}"),
            Error::DegenerateWaveform { reason } => write!(f, "degenerate waveform: {reason}"),
            Error::InvalidSweep { reason } => {
                write!(f, "invalid sweep configuration: {reason}")
            }
            Error::MissingCrossing { what, pulse_width } => write!(
                f,
                "missing {what} crossing while characterizing a {pulse_width} ps pulse"
            ),
            Error::Integration { what, t } => {
                write!(f, "adaptive integration failed at t = {t} ps: {what}")
            }
            Error::WorkerPanic { index, message } => {
                write!(f, "sweep worker panicked on job {index}: {message}")
            }
            Error::Core(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ivl_core::Error> for Error {
    fn from(e: ivl_core::Error) -> Self {
        Error::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let errs = [
            Error::InvalidParameter {
                name: "c_load",
                value: -1.0,
                constraint: "must be > 0",
            },
            Error::DegenerateWaveform { reason: "empty" },
            Error::MissingCrossing {
                what: "output rise",
                pulse_width: 10.0,
            },
            Error::Integration {
                what: "step size underflow",
                t: 12.5,
            },
            Error::WorkerPanic {
                index: 3,
                message: "boom".into(),
            },
            Error::Core(ivl_core::Error::SolverFailed { what: "x" }),
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
