//! The 7-stage inverter chain of the paper's validation ASIC (Fig. 6).

use ivl_core::{Bit, Edge, Signal, SignalBuilder};

use crate::error::Error;
use crate::inverter::Inverter;
use crate::ode::{rk45, rk4_with, Rk45Options, Rk45Stats};
use crate::stimulus::Pulse;
use crate::supply::{GroundSource, VddSource};
use crate::waveform::Waveform;

/// An inverter chain: stage `i`'s output drives stage `i+1`'s input.
/// Every stage output additionally carries a sense-amplifier load (the
/// paper's amplifiers present an input load equivalent to three inverter
/// inputs).
#[derive(Debug, Clone, PartialEq)]
pub struct InverterChain {
    stages: Vec<Inverter>,
}

/// The waveforms of one chain simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainRun {
    input: Waveform,
    nodes: Vec<Waveform>,
}

impl ChainRun {
    /// The sampled input stimulus.
    #[must_use]
    pub fn input(&self) -> &Waveform {
        &self.input
    }

    /// Output waveform of stage `i` (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn node(&self, i: usize) -> &Waveform {
        &self.nodes[i]
    }

    /// Number of stages.
    #[must_use]
    pub fn stage_count(&self) -> usize {
        self.nodes.len()
    }

    /// The input waveform of stage `i`: the stimulus for stage 0, the
    /// previous stage's output otherwise.
    #[must_use]
    pub fn stage_input(&self, i: usize) -> &Waveform {
        if i == 0 {
            &self.input
        } else {
            &self.nodes[i - 1]
        }
    }
}

/// The threshold-crossing events of one chain simulation, already
/// digitized: the crossings-only output of the adaptive fast path
/// ([`InverterChain::simulate_crossings`]). No dense waveforms are ever
/// materialized — every [`Signal`] is built directly from event
/// detection on the integrator's dense output (nodes) or from the
/// analytic trapezoid crossings (input).
#[derive(Debug, Clone, PartialEq)]
pub struct ChainCrossings {
    threshold: f64,
    input: Signal,
    nodes: Vec<Signal>,
    stats: Rk45Stats,
}

impl ChainCrossings {
    /// The digitization threshold the events were detected at.
    #[must_use]
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The digitized input stimulus.
    #[must_use]
    pub fn input(&self) -> &Signal {
        &self.input
    }

    /// Digitized output of stage `i` (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn node(&self, i: usize) -> &Signal {
        &self.nodes[i]
    }

    /// Number of stages.
    #[must_use]
    pub fn stage_count(&self) -> usize {
        self.nodes.len()
    }

    /// The digitized input of stage `i`: the stimulus for stage 0, the
    /// previous stage's output otherwise.
    #[must_use]
    pub fn stage_input(&self, i: usize) -> &Signal {
        if i == 0 {
            &self.input
        } else {
            &self.nodes[i - 1]
        }
    }

    /// Integrator step statistics of the underlying run.
    #[must_use]
    pub fn stats(&self) -> Rk45Stats {
        self.stats
    }
}

impl InverterChain {
    /// Builds a chain from explicit stages.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] if `stages` is empty.
    pub fn new(stages: Vec<Inverter>) -> Result<Self, Error> {
        if stages.is_empty() {
            return Err(Error::InvalidParameter {
                name: "stages",
                value: 0.0,
                constraint: "need at least one stage",
            });
        }
        Ok(InverterChain { stages })
    }

    /// The UMC-90-like chain of Fig. 6: `n` identical inverters, each
    /// output loaded with the next gate, wire parasitics and the
    /// sense-amp tap (≈ 5 fF total; the last stage drives the output
    /// load).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] if `n == 0`.
    pub fn umc90_like(n: usize) -> Result<Self, Error> {
        let stages = (0..n)
            .map(|_| Inverter::umc90_like(5.0))
            .collect::<Result<Vec<_>, _>>()?;
        InverterChain::new(stages)
    }

    /// The stages.
    #[must_use]
    pub fn stages(&self) -> &[Inverter] {
        &self.stages
    }

    /// Returns a copy with every stage's transistor widths scaled by
    /// `factor` (chip-wide process variation).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] if `factor ≤ 0`.
    pub fn scaled_width(&self, factor: f64) -> Result<Self, Error> {
        let stages = self
            .stages
            .iter()
            .map(|s| s.scaled_width(factor))
            .collect::<Result<Vec<_>, _>>()?;
        InverterChain::new(stages)
    }

    /// Simulates the chain with RK4 from `t = 0` to `t_end` at step `dt`
    /// under the given stimulus and supply.
    ///
    /// The initial state is the DC solution for the stimulus value at
    /// `t = 0` (alternating rails).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for non-positive `t_end`/`dt`.
    pub fn simulate(
        &self,
        stimulus: &Pulse,
        vdd: &VddSource,
        t_end: f64,
        dt: f64,
    ) -> Result<ChainRun, Error> {
        self.simulate_with_ground(stimulus, vdd, &GroundSource::ideal(), t_end, dt)
    }

    /// Like [`simulate`](InverterChain::simulate) but with a bouncing
    /// ground rail (the paper's "varying the ground level" remark: the
    /// edge sensitivity of Fig. 8a reverses).
    ///
    /// # Errors
    ///
    /// As [`simulate`](InverterChain::simulate).
    pub fn simulate_with_ground(
        &self,
        stimulus: &Pulse,
        vdd: &VddSource,
        gnd: &GroundSource,
        t_end: f64,
        dt: f64,
    ) -> Result<ChainRun, Error> {
        validate_grid(t_end, dt)?;
        let n = self.stages.len();
        let y0 = self.dc_initial_state(stimulus, vdd);
        let steps = (t_end / dt).ceil() as usize;
        // One flat row-major state buffer plus the input samples, both
        // filled by the recorder in a single pass: the stimulus is
        // evaluated exactly once per accepted step for recording (the
        // RHS memoizes its own per-stage-time evaluation separately).
        let mut flat = Vec::with_capacity((steps + 1) * n);
        let mut samples_in = Vec::with_capacity(steps + 1);
        rk4_with(
            0.0,
            &y0,
            dt,
            steps,
            self.rhs(stimulus, vdd, gnd),
            |_k, t, y| {
                samples_in.push(stimulus.value_at(t));
                flat.extend_from_slice(y);
            },
        );
        let input = Waveform::new(0.0, dt, samples_in)?;
        let nodes = (0..n)
            .map(|i| Waveform::from_strided(0.0, dt, &flat, i, n))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ChainRun { input, nodes })
    }

    /// Like [`simulate`](InverterChain::simulate) but with the adaptive
    /// Dormand–Prince RK45 integrator: integration restarts at the
    /// stimulus corner times (so no step straddles a slope
    /// discontinuity) and the returned waveforms are sampled from the
    /// cubic-Hermite dense output on a uniform `out_dt` grid — the
    /// expensive right-hand side only runs where the error controller
    /// demands it.
    ///
    /// # Errors
    ///
    /// As [`simulate`](InverterChain::simulate), plus
    /// [`Error::Integration`] if the step controller fails.
    pub fn simulate_adaptive(
        &self,
        stimulus: &Pulse,
        vdd: &VddSource,
        t_end: f64,
        out_dt: f64,
        opts: &Rk45Options,
    ) -> Result<ChainRun, Error> {
        self.simulate_adaptive_with_ground(
            stimulus,
            vdd,
            &GroundSource::ideal(),
            t_end,
            out_dt,
            opts,
        )
    }

    /// [`simulate_adaptive`](InverterChain::simulate_adaptive) with a
    /// bouncing ground rail.
    ///
    /// # Errors
    ///
    /// As [`simulate_adaptive`](InverterChain::simulate_adaptive).
    pub fn simulate_adaptive_with_ground(
        &self,
        stimulus: &Pulse,
        vdd: &VddSource,
        gnd: &GroundSource,
        t_end: f64,
        out_dt: f64,
        opts: &Rk45Options,
    ) -> Result<ChainRun, Error> {
        validate_grid(t_end, out_dt)?;
        let n = self.stages.len();
        let y0 = self.dc_initial_state(stimulus, vdd);
        // the same output grid the RK4 path would produce
        let steps = (t_end / out_dt).ceil() as usize;
        let t_final = steps as f64 * out_dt;
        let mut flat = Vec::with_capacity((steps + 1) * n);
        let mut samples_in = Vec::with_capacity(steps + 1);
        flat.extend_from_slice(&y0);
        samples_in.push(stimulus.value_at(0.0));
        let mut next_k = 1usize;
        let mut rhs = self.rhs(stimulus, vdd, gnd);
        let mut y = y0;
        for (a, b) in segments(stimulus, t_final) {
            let (y_end, _) = rk45(a, b, &y, opts, &mut rhs, |step| {
                while next_k <= steps {
                    let t_k = next_k as f64 * out_dt;
                    if t_k > step.t1 + 1e-9 * out_dt {
                        break;
                    }
                    let row_start = flat.len();
                    flat.resize(row_start + n, 0.0);
                    step.eval_into(t_k, &mut flat[row_start..]);
                    samples_in.push(stimulus.value_at(t_k));
                    next_k += 1;
                }
            })?;
            y = y_end;
        }
        // a grid point can fall on t_final itself and be missed by a
        // hair of floating-point noise — it holds the final state
        while next_k <= steps {
            flat.extend_from_slice(&y);
            samples_in.push(stimulus.value_at(next_k as f64 * out_dt));
            next_k += 1;
        }
        let input = Waveform::new(0.0, out_dt, samples_in)?;
        let nodes = (0..n)
            .map(|i| Waveform::from_strided(0.0, out_dt, &flat, i, n))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ChainRun { input, nodes })
    }

    /// The crossings-only fast path: adaptively integrates the chain
    /// and detects `threshold` crossings of every node by root-finding
    /// on the dense interpolant, without ever materializing a sampled
    /// [`Waveform`]. The input signal's crossings are computed
    /// analytically from the trapezoid.
    ///
    /// This is what makes characterization sweeps interactive: a run
    /// that RK4 resolves with ~10⁴ fixed steps typically needs a few
    /// hundred adaptive steps, and the crossing times still agree to
    /// ≈ 1e-6 ps at the default tolerances.
    ///
    /// # Errors
    ///
    /// As [`simulate_adaptive`](InverterChain::simulate_adaptive);
    /// [`Error::Core`] if the detected crossings do not form a valid
    /// signal.
    pub fn simulate_crossings(
        &self,
        stimulus: &Pulse,
        vdd: &VddSource,
        t_end: f64,
        threshold: f64,
        opts: &Rk45Options,
    ) -> Result<ChainCrossings, Error> {
        self.simulate_crossings_with_ground(
            stimulus,
            vdd,
            &GroundSource::ideal(),
            t_end,
            threshold,
            opts,
        )
    }

    /// [`simulate_crossings`](InverterChain::simulate_crossings) with a
    /// bouncing ground rail.
    ///
    /// # Errors
    ///
    /// As [`simulate_crossings`](InverterChain::simulate_crossings).
    pub fn simulate_crossings_with_ground(
        &self,
        stimulus: &Pulse,
        vdd: &VddSource,
        gnd: &GroundSource,
        t_end: f64,
        threshold: f64,
        opts: &Rk45Options,
    ) -> Result<ChainCrossings, Error> {
        if !(t_end.is_finite() && t_end > 0.0) {
            return Err(Error::InvalidParameter {
                name: "t_end",
                value: t_end,
                constraint: "must be finite and > 0",
            });
        }
        if !threshold.is_finite() {
            return Err(Error::InvalidParameter {
                name: "threshold",
                value: threshold,
                constraint: "must be finite",
            });
        }
        let y0 = self.dc_initial_state(stimulus, vdd);
        let mut builders: Vec<SignalBuilder> = y0
            .iter()
            .map(|&v| SignalBuilder::new(Bit::from(v >= threshold)))
            .collect();
        let mut rhs = self.rhs(stimulus, vdd, gnd);
        let mut y = y0;
        let mut stats = Rk45Stats::default();
        let mut push_err: Option<ivl_core::Error> = None;
        for (a, b) in segments(stimulus, t_end) {
            let (y_end, seg_stats) = rk45(a, b, &y, opts, &mut rhs, |step| {
                for (i, builder) in builders.iter_mut().enumerate() {
                    // harvest *all* alternating crossings inside the
                    // step: a marginal glitch can cross the threshold
                    // and return within one accepted step, and missing
                    // its second edge would invert the signal's parity
                    // for the rest of the run
                    let mut from = step.t0;
                    loop {
                        let rising = builder.current_value() == Bit::Zero;
                        let Some(t) = step.find_crossing_after(i, threshold, rising, from) else {
                            break;
                        };
                        if t <= from && from > step.t0 {
                            break; // no sub-resolution progress
                        }
                        if let Err(e) = builder.push_time(t) {
                            push_err.get_or_insert(e);
                            break;
                        }
                        from = t;
                    }
                }
            })?;
            y = y_end;
            stats.accepted += seg_stats.accepted;
            stats.rejected += seg_stats.rejected;
            stats.rhs_evals += seg_stats.rhs_evals;
        }
        if let Some(e) = push_err {
            return Err(Error::Core(e));
        }
        let mut input = SignalBuilder::new(Bit::from(stimulus.value_at(0.0) >= threshold));
        for (t, edge) in stimulus.crossings(threshold) {
            let flips = match edge {
                Edge::Rising => input.current_value() == Bit::Zero,
                Edge::Falling => input.current_value() == Bit::One,
            };
            if t > 0.0 && t <= t_end && flips {
                input.push_time(t).map_err(Error::Core)?;
            }
        }
        Ok(ChainCrossings {
            threshold,
            input: input.finish(),
            nodes: builders.into_iter().map(SignalBuilder::finish).collect(),
            stats,
        })
    }

    /// DC initial condition: alternating rails from the stimulus value
    /// at `t = 0`.
    fn dc_initial_state(&self, stimulus: &Pulse, vdd: &VddSource) -> Vec<f64> {
        let vdd0 = vdd.value_at(0.0);
        let mut y0 = vec![0.0; self.stages.len()];
        let mut v = stimulus.value_at(0.0);
        for y in y0.iter_mut() {
            v = if v > vdd0 / 2.0 { 0.0 } else { vdd0 };
            *y = v;
        }
        y0
    }

    /// The chain's right-hand side `dy/dt = f(t, y)`. The stimulus is
    /// memoized per evaluation time, so integrator stages sharing a
    /// stage time (RK4's two midpoint stages) evaluate it once.
    fn rhs<'a>(
        &'a self,
        stimulus: &'a Pulse,
        vdd: &'a VddSource,
        gnd: &'a GroundSource,
    ) -> impl FnMut(f64, &[f64], &mut [f64]) + 'a {
        let n = self.stages.len();
        let mut memo = (f64::NAN, 0.0);
        move |t, y: &[f64], dy: &mut [f64]| {
            if memo.0 != t {
                memo = (t, stimulus.value_at(t));
            }
            let v_stim = memo.1;
            let vdd_t = vdd.value_at(t);
            let vss_t = gnd.value_at(t);
            for i in 0..n {
                let v_in = if i == 0 { v_stim } else { y[i - 1] };
                dy[i] = self.stages[i].dv_out_rails(v_in, y[i], vdd_t, vss_t);
            }
        }
    }
}

/// Splits `[0, t_end]` at the stimulus corner times so adaptive
/// integration never steps across a slope discontinuity of the input.
fn segments(stimulus: &Pulse, t_end: f64) -> Vec<(f64, f64)> {
    let mut cuts = vec![0.0];
    for c in stimulus.corner_times() {
        if c > 0.0 && c < t_end && c > cuts[cuts.len() - 1] {
            cuts.push(c);
        }
    }
    cuts.push(t_end);
    cuts.windows(2).map(|w| (w[0], w[1])).collect()
}

fn validate_grid(t_end: f64, dt: f64) -> Result<(), Error> {
    if !(dt.is_finite() && dt > 0.0) {
        return Err(Error::InvalidParameter {
            name: "dt",
            value: dt,
            constraint: "must be finite and > 0",
        });
    }
    if !(t_end.is_finite() && t_end > dt) {
        return Err(Error::InvalidParameter {
            name: "t_end",
            value: t_end,
            constraint: "must be finite and > dt",
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pulse(width: f64) -> Pulse {
        Pulse::new(50.0, width, 10.0, 1.0).unwrap()
    }

    #[test]
    fn construction() {
        assert!(InverterChain::new(vec![]).is_err());
        let c = InverterChain::umc90_like(7).unwrap();
        assert_eq!(c.stages().len(), 7);
        assert!(InverterChain::umc90_like(0).is_err());
    }

    #[test]
    fn dc_levels_alternate() {
        let c = InverterChain::umc90_like(7).unwrap();
        let run = c
            .simulate(&pulse(100.0), &VddSource::dc(1.0), 40.0, 0.1)
            .unwrap();
        // before the pulse (t < 45 ps) the nodes sit at alternating rails
        for i in 0..7 {
            let v = run.node(i).value_at(30.0);
            if i.is_multiple_of(2) {
                assert!(v > 0.95, "node {i} = {v}");
            } else {
                assert!(v < 0.05, "node {i} = {v}");
            }
        }
        assert_eq!(run.stage_count(), 7);
    }

    #[test]
    fn wide_pulse_propagates_through_all_stages() {
        let c = InverterChain::umc90_like(7).unwrap();
        let run = c
            .simulate(&pulse(150.0), &VddSource::dc(1.0), 500.0, 0.1)
            .unwrap();
        for i in 0..7 {
            let w = run.node(i);
            let expected_edges = if i.is_multiple_of(2) {
                // even stages (0-based) invert the input pulse: fall, rise
                (
                    w.falling_crossings(0.5).len(),
                    w.rising_crossings(0.5).len(),
                )
            } else {
                (
                    w.rising_crossings(0.5).len(),
                    w.falling_crossings(0.5).len(),
                )
            };
            assert_eq!(expected_edges, (1, 1), "stage {i}");
        }
    }

    #[test]
    fn per_stage_delay_is_plausible() {
        let c = InverterChain::umc90_like(7).unwrap();
        let run = c
            .simulate(&pulse(200.0), &VddSource::dc(1.0), 600.0, 0.1)
            .unwrap();
        // first edge at the input crosses 0.5 at t = 50; track its
        // arrival at the last stage
        let t_in = 50.0;
        let last = run.node(6);
        let t_out = if 7 % 2 == 0 {
            last.rising_crossings(0.5)[0]
        } else {
            last.falling_crossings(0.5)[0]
        };
        let per_stage = (t_out - t_in) / 7.0;
        assert!(
            (2.0..60.0).contains(&per_stage),
            "per-stage delay {per_stage} ps"
        );
    }

    #[test]
    fn short_pulse_attenuates_along_the_chain() {
        let c = InverterChain::umc90_like(7).unwrap();
        let width_at = |run: &ChainRun, i: usize| -> Option<f64> {
            let w = run.node(i);
            let (first, second) = if i.is_multiple_of(2) {
                (w.falling_crossings(0.5), w.rising_crossings(0.5))
            } else {
                (w.rising_crossings(0.5), w.falling_crossings(0.5))
            };
            match (first.first(), second.first()) {
                (Some(&a), Some(&b)) if b > a => Some(b - a),
                _ => None,
            }
        };
        // find a pulse short enough to attenuate but wide enough to
        // survive the first stage, then check it shrinks down the chain
        let mut checked = false;
        for w_in in [45.0, 35.0, 28.0, 22.0, 16.0] {
            let run = c
                .simulate(&pulse(w_in), &VddSource::dc(1.0), 500.0, 0.05)
                .unwrap();
            let Some(w0) = width_at(&run, 0) else {
                continue;
            };
            match width_at(&run, 6) {
                Some(w6) => {
                    if w6 < w0 - 0.05 {
                        checked = true;
                        break;
                    }
                }
                None => {
                    // fully swallowed along the chain: strongest attenuation
                    checked = true;
                    break;
                }
            }
        }
        assert!(checked, "no attenuating pulse width found");
    }

    #[test]
    fn width_scaling_changes_speed() {
        let nominal = InverterChain::umc90_like(3).unwrap();
        let fast = nominal.scaled_width(1.1).unwrap();
        let slow = nominal.scaled_width(0.9).unwrap();
        let delay = |c: &InverterChain| {
            let run = c
                .simulate(&pulse(100.0), &VddSource::dc(1.0), 400.0, 0.1)
                .unwrap();
            run.node(2).falling_crossings(0.5)[0]
        };
        let d_nom = delay(&nominal);
        assert!(delay(&fast) < d_nom);
        assert!(delay(&slow) > d_nom);
    }

    #[test]
    fn supply_sine_modulates_delay() {
        let c = InverterChain::umc90_like(3).unwrap();
        let d = |phase: f64| {
            let vdd = VddSource::with_sine(1.0, 0.05, 80.0, phase).unwrap();
            let run = c.simulate(&pulse(100.0), &vdd, 400.0, 0.1).unwrap();
            run.node(2).falling_crossings(0.5)[0]
        };
        let delays: Vec<f64> = (0..8).map(|k| d(k as f64 * 45.0)).collect();
        let min = delays.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = delays.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(max - min > 0.05, "phase must matter: {delays:?}");
    }

    #[test]
    fn ground_bounce_modulates_delay_like_supply_does() {
        let c = InverterChain::umc90_like(3).unwrap();
        let vdd = VddSource::dc(1.0);
        let d = |phase: f64| {
            let gnd = GroundSource::with_sine(0.05, 80.0, phase).unwrap();
            let run = c
                .simulate_with_ground(&pulse(100.0), &vdd, &gnd, 400.0, 0.1)
                .unwrap();
            run.node(2).falling_crossings(0.5)[0]
        };
        let delays: Vec<f64> = (0..8).map(|k| d(k as f64 * 45.0)).collect();
        let min = delays.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = delays.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(max - min > 0.05, "ground phase must matter: {delays:?}");
        // ideal ground reproduces plain simulate exactly
        let a = c
            .simulate_with_ground(&pulse(100.0), &vdd, &GroundSource::ideal(), 200.0, 0.1)
            .unwrap();
        let b = c.simulate(&pulse(100.0), &vdd, 200.0, 0.1).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn adaptive_dense_run_matches_rk4() {
        let c = InverterChain::umc90_like(7).unwrap();
        let vdd = VddSource::dc(1.0);
        let stim = pulse(80.0);
        let rk4_run = c.simulate(&stim, &vdd, 400.0, 0.1).unwrap();
        let ad_run = c
            .simulate_adaptive(&stim, &vdd, 400.0, 0.1, &Rk45Options::default())
            .unwrap();
        assert_eq!(ad_run.stage_count(), rk4_run.stage_count());
        for i in 0..7 {
            assert_eq!(
                ad_run.node(i).samples().len(),
                rk4_run.node(i).samples().len()
            );
            let rms = ad_run.node(i).rms_difference(rk4_run.node(i));
            assert!(rms < 1e-3, "node {i} rms {rms}");
        }
        // the sampled input stimulus is identical (same grid, same pulse)
        assert_eq!(ad_run.input(), rk4_run.input());
    }

    #[test]
    fn crossings_fast_path_matches_digitized_rk4() {
        let c = InverterChain::umc90_like(7).unwrap();
        let vdd = VddSource::dc(1.0);
        let stim = pulse(80.0);
        let rk4_run = c.simulate(&stim, &vdd, 400.0, 0.05).unwrap();
        let x = c
            .simulate_crossings(&stim, &vdd, 400.0, 0.5, &Rk45Options::default())
            .unwrap();
        assert_eq!(x.threshold(), 0.5);
        assert_eq!(x.stage_count(), 7);
        assert!(x.stats().accepted > 0);
        for i in 0..7 {
            let dense = rk4_run.node(i).digitize(0.5).unwrap();
            let fast = x.node(i);
            assert_eq!(fast.initial(), dense.initial(), "node {i}");
            assert_eq!(fast.len(), dense.len(), "node {i}");
            for (a, b) in fast.transitions().iter().zip(dense.transitions()) {
                assert_eq!(a.value, b.value);
                // RK4 @ 0.05 + linear interpolation carries ~1e-3 ps of
                // its own crossing error; the paths must agree to that
                assert!((a.time - b.time).abs() < 5e-3, "node {i}: {a:?} vs {b:?}");
            }
        }
        // the analytic input crossings match the digitized trapezoid
        let dense_in = rk4_run.input().digitize(0.5).unwrap();
        assert_eq!(x.input().len(), dense_in.len());
        for (a, b) in x.input().transitions().iter().zip(dense_in.transitions()) {
            assert!((a.time - b.time).abs() < 1e-9, "{a:?} vs {b:?}");
        }
        // stage_input stitches input and nodes together
        assert_eq!(x.stage_input(0), x.input());
        assert_eq!(x.stage_input(1), x.node(0));
    }

    #[test]
    fn adaptive_needs_far_fewer_steps_than_rk4() {
        let c = InverterChain::umc90_like(7).unwrap();
        let x = c
            .simulate_crossings(
                &pulse(80.0),
                &VddSource::dc(1.0),
                400.0,
                0.5,
                &Rk45Options::default(),
            )
            .unwrap();
        let rk4_steps = (400.0 / 0.05) as usize;
        let adaptive = x.stats().accepted + x.stats().rejected;
        assert!(
            adaptive * 10 < rk4_steps,
            "adaptive used {adaptive} steps vs RK4's {rk4_steps}"
        );
    }

    #[test]
    fn adaptive_ground_bounce_matches_rk4_qualitatively() {
        let c = InverterChain::umc90_like(3).unwrap();
        let vdd = VddSource::dc(1.0);
        let gnd = GroundSource::with_sine(0.05, 80.0, 90.0).unwrap();
        let a = c
            .simulate_with_ground(&pulse(100.0), &vdd, &gnd, 400.0, 0.1)
            .unwrap();
        let b = c
            .simulate_adaptive_with_ground(
                &pulse(100.0),
                &vdd,
                &gnd,
                400.0,
                0.1,
                &Rk45Options::default(),
            )
            .unwrap();
        let ta = a.node(2).falling_crossings(0.5)[0];
        let tb = b.node(2).falling_crossings(0.5)[0];
        assert!((ta - tb).abs() < 0.01, "{ta} vs {tb}");
    }

    #[test]
    fn adaptive_validates() {
        let c = InverterChain::umc90_like(1).unwrap();
        let vdd = VddSource::dc(1.0);
        let opts = Rk45Options::default();
        assert!(c
            .simulate_adaptive(&pulse(50.0), &vdd, 0.0, 0.1, &opts)
            .is_err());
        assert!(c
            .simulate_adaptive(&pulse(50.0), &vdd, 100.0, 0.0, &opts)
            .is_err());
        assert!(c
            .simulate_crossings(&pulse(50.0), &vdd, -1.0, 0.5, &opts)
            .is_err());
        assert!(c
            .simulate_crossings(&pulse(50.0), &vdd, 100.0, f64::NAN, &opts)
            .is_err());
        // an impossible step budget surfaces as an integration error
        let starved = Rk45Options {
            max_steps: 1,
            ..Rk45Options::default()
        };
        assert!(matches!(
            c.simulate_crossings(&pulse(50.0), &vdd, 100.0, 0.5, &starved),
            Err(Error::Integration { .. })
        ));
    }

    #[test]
    fn stage_input_accessor() {
        let c = InverterChain::umc90_like(2).unwrap();
        let run = c
            .simulate(&pulse(50.0), &VddSource::dc(1.0), 200.0, 0.1)
            .unwrap();
        assert_eq!(run.stage_input(0), run.input());
        assert_eq!(run.stage_input(1), run.node(0));
    }

    #[test]
    fn simulate_validates() {
        let c = InverterChain::umc90_like(1).unwrap();
        assert!(c
            .simulate(&pulse(50.0), &VddSource::dc(1.0), 0.0, 0.1)
            .is_err());
        assert!(c
            .simulate(&pulse(50.0), &VddSource::dc(1.0), 100.0, 0.0)
            .is_err());
    }
}
