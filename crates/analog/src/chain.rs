//! The 7-stage inverter chain of the paper's validation ASIC (Fig. 6).

use crate::error::Error;
use crate::inverter::Inverter;
use crate::ode::rk4;
use crate::stimulus::Pulse;
use crate::supply::{GroundSource, VddSource};
use crate::waveform::Waveform;

/// An inverter chain: stage `i`'s output drives stage `i+1`'s input.
/// Every stage output additionally carries a sense-amplifier load (the
/// paper's amplifiers present an input load equivalent to three inverter
/// inputs).
#[derive(Debug, Clone, PartialEq)]
pub struct InverterChain {
    stages: Vec<Inverter>,
}

/// The waveforms of one chain simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainRun {
    input: Waveform,
    nodes: Vec<Waveform>,
}

impl ChainRun {
    /// The sampled input stimulus.
    #[must_use]
    pub fn input(&self) -> &Waveform {
        &self.input
    }

    /// Output waveform of stage `i` (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn node(&self, i: usize) -> &Waveform {
        &self.nodes[i]
    }

    /// Number of stages.
    #[must_use]
    pub fn stage_count(&self) -> usize {
        self.nodes.len()
    }

    /// The input waveform of stage `i`: the stimulus for stage 0, the
    /// previous stage's output otherwise.
    #[must_use]
    pub fn stage_input(&self, i: usize) -> &Waveform {
        if i == 0 {
            &self.input
        } else {
            &self.nodes[i - 1]
        }
    }
}

impl InverterChain {
    /// Builds a chain from explicit stages.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] if `stages` is empty.
    pub fn new(stages: Vec<Inverter>) -> Result<Self, Error> {
        if stages.is_empty() {
            return Err(Error::InvalidParameter {
                name: "stages",
                value: 0.0,
                constraint: "need at least one stage",
            });
        }
        Ok(InverterChain { stages })
    }

    /// The UMC-90-like chain of Fig. 6: `n` identical inverters, each
    /// output loaded with the next gate, wire parasitics and the
    /// sense-amp tap (≈ 5 fF total; the last stage drives the output
    /// load).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] if `n == 0`.
    pub fn umc90_like(n: usize) -> Result<Self, Error> {
        let stages = (0..n)
            .map(|_| Inverter::umc90_like(5.0))
            .collect::<Result<Vec<_>, _>>()?;
        InverterChain::new(stages)
    }

    /// The stages.
    #[must_use]
    pub fn stages(&self) -> &[Inverter] {
        &self.stages
    }

    /// Returns a copy with every stage's transistor widths scaled by
    /// `factor` (chip-wide process variation).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] if `factor ≤ 0`.
    pub fn scaled_width(&self, factor: f64) -> Result<Self, Error> {
        let stages = self
            .stages
            .iter()
            .map(|s| s.scaled_width(factor))
            .collect::<Result<Vec<_>, _>>()?;
        InverterChain::new(stages)
    }

    /// Simulates the chain with RK4 from `t = 0` to `t_end` at step `dt`
    /// under the given stimulus and supply.
    ///
    /// The initial state is the DC solution for the stimulus value at
    /// `t = 0` (alternating rails).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for non-positive `t_end`/`dt`.
    pub fn simulate(
        &self,
        stimulus: &Pulse,
        vdd: &VddSource,
        t_end: f64,
        dt: f64,
    ) -> Result<ChainRun, Error> {
        self.simulate_with_ground(stimulus, vdd, &GroundSource::ideal(), t_end, dt)
    }

    /// Like [`simulate`](InverterChain::simulate) but with a bouncing
    /// ground rail (the paper's "varying the ground level" remark: the
    /// edge sensitivity of Fig. 8a reverses).
    ///
    /// # Errors
    ///
    /// As [`simulate`](InverterChain::simulate).
    pub fn simulate_with_ground(
        &self,
        stimulus: &Pulse,
        vdd: &VddSource,
        gnd: &GroundSource,
        t_end: f64,
        dt: f64,
    ) -> Result<ChainRun, Error> {
        if !(dt.is_finite() && dt > 0.0) {
            return Err(Error::InvalidParameter {
                name: "dt",
                value: dt,
                constraint: "must be finite and > 0",
            });
        }
        if !(t_end.is_finite() && t_end > dt) {
            return Err(Error::InvalidParameter {
                name: "t_end",
                value: t_end,
                constraint: "must be finite and > dt",
            });
        }
        let n = self.stages.len();
        let vdd0 = vdd.value_at(0.0);
        // DC initial condition: alternating rails
        let mut y0 = vec![0.0; n];
        let mut v = stimulus.value_at(0.0);
        for y in y0.iter_mut() {
            v = if v > vdd0 / 2.0 { 0.0 } else { vdd0 };
            *y = v;
        }
        let steps = (t_end / dt).ceil() as usize;
        let trace = rk4(0.0, &y0, dt, steps, |t, y, dy| {
            let vdd_t = vdd.value_at(t);
            let vss_t = gnd.value_at(t);
            for i in 0..n {
                let v_in = if i == 0 {
                    stimulus.value_at(t)
                } else {
                    y[i - 1]
                };
                dy[i] = self.stages[i].dv_out_rails(v_in, y[i], vdd_t, vss_t);
            }
        });
        let samples_in = (0..trace.len())
            .map(|k| stimulus.value_at(k as f64 * dt))
            .collect();
        let input = Waveform::new(0.0, dt, samples_in)?;
        let nodes = (0..n)
            .map(|i| {
                let samples = trace.iter().map(|s| s[i]).collect();
                Waveform::new(0.0, dt, samples)
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ChainRun { input, nodes })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pulse(width: f64) -> Pulse {
        Pulse::new(50.0, width, 10.0, 1.0).unwrap()
    }

    #[test]
    fn construction() {
        assert!(InverterChain::new(vec![]).is_err());
        let c = InverterChain::umc90_like(7).unwrap();
        assert_eq!(c.stages().len(), 7);
        assert!(InverterChain::umc90_like(0).is_err());
    }

    #[test]
    fn dc_levels_alternate() {
        let c = InverterChain::umc90_like(7).unwrap();
        let run = c
            .simulate(&pulse(100.0), &VddSource::dc(1.0), 40.0, 0.1)
            .unwrap();
        // before the pulse (t < 45 ps) the nodes sit at alternating rails
        for i in 0..7 {
            let v = run.node(i).value_at(30.0);
            if i.is_multiple_of(2) {
                assert!(v > 0.95, "node {i} = {v}");
            } else {
                assert!(v < 0.05, "node {i} = {v}");
            }
        }
        assert_eq!(run.stage_count(), 7);
    }

    #[test]
    fn wide_pulse_propagates_through_all_stages() {
        let c = InverterChain::umc90_like(7).unwrap();
        let run = c
            .simulate(&pulse(150.0), &VddSource::dc(1.0), 500.0, 0.1)
            .unwrap();
        for i in 0..7 {
            let w = run.node(i);
            let expected_edges = if i.is_multiple_of(2) {
                // even stages (0-based) invert the input pulse: fall, rise
                (
                    w.falling_crossings(0.5).len(),
                    w.rising_crossings(0.5).len(),
                )
            } else {
                (
                    w.rising_crossings(0.5).len(),
                    w.falling_crossings(0.5).len(),
                )
            };
            assert_eq!(expected_edges, (1, 1), "stage {i}");
        }
    }

    #[test]
    fn per_stage_delay_is_plausible() {
        let c = InverterChain::umc90_like(7).unwrap();
        let run = c
            .simulate(&pulse(200.0), &VddSource::dc(1.0), 600.0, 0.1)
            .unwrap();
        // first edge at the input crosses 0.5 at t = 50; track its
        // arrival at the last stage
        let t_in = 50.0;
        let last = run.node(6);
        let t_out = if 7 % 2 == 0 {
            last.rising_crossings(0.5)[0]
        } else {
            last.falling_crossings(0.5)[0]
        };
        let per_stage = (t_out - t_in) / 7.0;
        assert!(
            (2.0..60.0).contains(&per_stage),
            "per-stage delay {per_stage} ps"
        );
    }

    #[test]
    fn short_pulse_attenuates_along_the_chain() {
        let c = InverterChain::umc90_like(7).unwrap();
        let width_at = |run: &ChainRun, i: usize| -> Option<f64> {
            let w = run.node(i);
            let (first, second) = if i.is_multiple_of(2) {
                (w.falling_crossings(0.5), w.rising_crossings(0.5))
            } else {
                (w.rising_crossings(0.5), w.falling_crossings(0.5))
            };
            match (first.first(), second.first()) {
                (Some(&a), Some(&b)) if b > a => Some(b - a),
                _ => None,
            }
        };
        // find a pulse short enough to attenuate but wide enough to
        // survive the first stage, then check it shrinks down the chain
        let mut checked = false;
        for w_in in [45.0, 35.0, 28.0, 22.0, 16.0] {
            let run = c
                .simulate(&pulse(w_in), &VddSource::dc(1.0), 500.0, 0.05)
                .unwrap();
            let Some(w0) = width_at(&run, 0) else {
                continue;
            };
            match width_at(&run, 6) {
                Some(w6) => {
                    if w6 < w0 - 0.05 {
                        checked = true;
                        break;
                    }
                }
                None => {
                    // fully swallowed along the chain: strongest attenuation
                    checked = true;
                    break;
                }
            }
        }
        assert!(checked, "no attenuating pulse width found");
    }

    #[test]
    fn width_scaling_changes_speed() {
        let nominal = InverterChain::umc90_like(3).unwrap();
        let fast = nominal.scaled_width(1.1).unwrap();
        let slow = nominal.scaled_width(0.9).unwrap();
        let delay = |c: &InverterChain| {
            let run = c
                .simulate(&pulse(100.0), &VddSource::dc(1.0), 400.0, 0.1)
                .unwrap();
            run.node(2).falling_crossings(0.5)[0]
        };
        let d_nom = delay(&nominal);
        assert!(delay(&fast) < d_nom);
        assert!(delay(&slow) > d_nom);
    }

    #[test]
    fn supply_sine_modulates_delay() {
        let c = InverterChain::umc90_like(3).unwrap();
        let d = |phase: f64| {
            let vdd = VddSource::with_sine(1.0, 0.05, 80.0, phase).unwrap();
            let run = c.simulate(&pulse(100.0), &vdd, 400.0, 0.1).unwrap();
            run.node(2).falling_crossings(0.5)[0]
        };
        let delays: Vec<f64> = (0..8).map(|k| d(k as f64 * 45.0)).collect();
        let min = delays.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = delays.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(max - min > 0.05, "phase must matter: {delays:?}");
    }

    #[test]
    fn ground_bounce_modulates_delay_like_supply_does() {
        let c = InverterChain::umc90_like(3).unwrap();
        let vdd = VddSource::dc(1.0);
        let d = |phase: f64| {
            let gnd = GroundSource::with_sine(0.05, 80.0, phase).unwrap();
            let run = c
                .simulate_with_ground(&pulse(100.0), &vdd, &gnd, 400.0, 0.1)
                .unwrap();
            run.node(2).falling_crossings(0.5)[0]
        };
        let delays: Vec<f64> = (0..8).map(|k| d(k as f64 * 45.0)).collect();
        let min = delays.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = delays.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(max - min > 0.05, "ground phase must matter: {delays:?}");
        // ideal ground reproduces plain simulate exactly
        let a = c
            .simulate_with_ground(&pulse(100.0), &vdd, &GroundSource::ideal(), 200.0, 0.1)
            .unwrap();
        let b = c.simulate(&pulse(100.0), &vdd, 200.0, 0.1).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn stage_input_accessor() {
        let c = InverterChain::umc90_like(2).unwrap();
        let run = c
            .simulate(&pulse(50.0), &VddSource::dc(1.0), 200.0, 0.1)
            .unwrap();
        assert_eq!(run.stage_input(0), run.input());
        assert_eq!(run.stage_input(1), run.node(0));
    }

    #[test]
    fn simulate_validates() {
        let c = InverterChain::umc90_like(1).unwrap();
        assert!(c
            .simulate(&pulse(50.0), &VddSource::dc(1.0), 0.0, 0.1)
            .is_err());
        assert!(c
            .simulate(&pulse(50.0), &VddSource::dc(1.0), 100.0, 0.0)
            .is_err());
    }
}
