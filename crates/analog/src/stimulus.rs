//! Input voltage stimuli (trapezoid pulses).

use crate::error::Error;

/// A trapezoidal voltage pulse: low until `start`, linear rise over
/// `slew`, high for `width` (measured at the 50 % points), linear fall
/// over `slew`, low afterwards.
///
/// ```
/// use ivl_analog::stimulus::Pulse;
/// # fn main() -> Result<(), ivl_analog::Error> {
/// let p = Pulse::new(10.0, 50.0, 4.0, 1.0)?;
/// assert_eq!(p.value_at(0.0), 0.0);
/// assert_eq!(p.value_at(30.0), 1.0);
/// assert!((p.value_at(10.0) - 0.5).abs() < 1e-12); // 50 % at `start`
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pulse {
    start: f64,
    width: f64,
    slew: f64,
    high: f64,
    low: f64,
    inverted: bool,
}

impl Pulse {
    /// Creates a positive pulse from `low = 0` to `high`, with 50 %
    /// crossings at `start` and `start + width`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] unless `width > slew > 0` and
    /// `high > 0`.
    pub fn new(start: f64, width: f64, slew: f64, high: f64) -> Result<Self, Error> {
        if !(slew.is_finite() && slew > 0.0) {
            return Err(Error::InvalidParameter {
                name: "slew",
                value: slew,
                constraint: "must be finite and > 0",
            });
        }
        if !(width.is_finite() && width > slew) {
            return Err(Error::InvalidParameter {
                name: "width",
                value: width,
                constraint: "must be finite and > slew",
            });
        }
        if !(high.is_finite() && high > 0.0) {
            return Err(Error::InvalidParameter {
                name: "high",
                value: high,
                constraint: "must be finite and > 0",
            });
        }
        Ok(Pulse {
            start,
            width,
            slew,
            high,
            low: 0.0,
            inverted: false,
        })
    }

    /// An inverted ("anti") pulse: high until `start`, low for `width`,
    /// high afterwards. Used to characterize the opposite edge pair.
    ///
    /// # Errors
    ///
    /// As [`Pulse::new`].
    pub fn inverted(start: f64, width: f64, slew: f64, high: f64) -> Result<Self, Error> {
        let mut p = Pulse::new(start, width, slew, high)?;
        p.inverted = true;
        Ok(p)
    }

    /// Time of the first 50 % crossing.
    #[must_use]
    pub fn start(&self) -> f64 {
        self.start
    }

    /// Pulse width between 50 % crossings.
    #[must_use]
    pub fn width(&self) -> f64 {
        self.width
    }

    /// The voltage at time `t`.
    #[must_use]
    pub fn value_at(&self, t: f64) -> f64 {
        // 50 % crossing at `start` means the ramp spans
        // [start − slew/2, start + slew/2]
        let ramp = |x: f64| x.clamp(0.0, 1.0);
        let up = ramp((t - (self.start - self.slew / 2.0)) / self.slew);
        let down = ramp((t - (self.start + self.width - self.slew / 2.0)) / self.slew);
        let v01 = up - down; // in [0, 1]
        let v = self.low + (self.high - self.low) * v01;
        if self.inverted {
            self.high - v
        } else {
            v
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(Pulse::new(0.0, 10.0, 0.0, 1.0).is_err());
        assert!(Pulse::new(0.0, 1.0, 2.0, 1.0).is_err());
        assert!(Pulse::new(0.0, 10.0, 1.0, 0.0).is_err());
        assert!(Pulse::new(0.0, 10.0, 1.0, 1.0).is_ok());
    }

    #[test]
    fn trapezoid_shape() {
        let p = Pulse::new(10.0, 20.0, 2.0, 1.0).unwrap();
        assert_eq!(p.value_at(5.0), 0.0);
        assert_eq!(p.value_at(8.9), 0.0);
        assert!((p.value_at(10.0) - 0.5).abs() < 1e-12);
        assert_eq!(p.value_at(11.1), 1.0);
        assert_eq!(p.value_at(20.0), 1.0);
        assert!((p.value_at(30.0) - 0.5).abs() < 1e-12);
        assert_eq!(p.value_at(31.1), 0.0);
        assert_eq!(p.start(), 10.0);
        assert_eq!(p.width(), 20.0);
    }

    #[test]
    fn inverted_shape() {
        let p = Pulse::inverted(10.0, 20.0, 2.0, 1.0).unwrap();
        assert_eq!(p.value_at(0.0), 1.0);
        assert!((p.value_at(10.0) - 0.5).abs() < 1e-12);
        assert_eq!(p.value_at(20.0), 0.0);
        assert_eq!(p.value_at(40.0), 1.0);
    }

    #[test]
    fn slew_is_linear() {
        let p = Pulse::new(10.0, 20.0, 4.0, 2.0).unwrap();
        // ramp spans [8, 12]; value at 9 must be a quarter of 2.0
        assert!((p.value_at(9.0) - 0.5).abs() < 1e-12);
        assert!((p.value_at(11.0) - 1.5).abs() < 1e-12);
    }
}
