//! Input voltage stimuli (trapezoid pulses).

use ivl_core::Edge;

use crate::error::Error;

/// A trapezoidal voltage pulse: low until `start`, linear rise over
/// `slew`, high for `width` (measured at the 50 % points), linear fall
/// over `slew`, low afterwards.
///
/// ```
/// use ivl_analog::stimulus::Pulse;
/// # fn main() -> Result<(), ivl_analog::Error> {
/// let p = Pulse::new(10.0, 50.0, 4.0, 1.0)?;
/// assert_eq!(p.value_at(0.0), 0.0);
/// assert_eq!(p.value_at(30.0), 1.0);
/// assert!((p.value_at(10.0) - 0.5).abs() < 1e-12); // 50 % at `start`
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pulse {
    start: f64,
    width: f64,
    slew: f64,
    high: f64,
    low: f64,
    inverted: bool,
}

impl Pulse {
    /// Creates a positive pulse from `low = 0` to `high`, with 50 %
    /// crossings at `start` and `start + width`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] unless `width > slew > 0` and
    /// `high > 0`.
    pub fn new(start: f64, width: f64, slew: f64, high: f64) -> Result<Self, Error> {
        if !(slew.is_finite() && slew > 0.0) {
            return Err(Error::InvalidParameter {
                name: "slew",
                value: slew,
                constraint: "must be finite and > 0",
            });
        }
        if !(width.is_finite() && width > slew) {
            return Err(Error::InvalidParameter {
                name: "width",
                value: width,
                constraint: "must be finite and > slew",
            });
        }
        if !(high.is_finite() && high > 0.0) {
            return Err(Error::InvalidParameter {
                name: "high",
                value: high,
                constraint: "must be finite and > 0",
            });
        }
        Ok(Pulse {
            start,
            width,
            slew,
            high,
            low: 0.0,
            inverted: false,
        })
    }

    /// An inverted ("anti") pulse: high until `start`, low for `width`,
    /// high afterwards. Used to characterize the opposite edge pair.
    ///
    /// # Errors
    ///
    /// As [`Pulse::new`].
    pub fn inverted(start: f64, width: f64, slew: f64, high: f64) -> Result<Self, Error> {
        let mut p = Pulse::new(start, width, slew, high)?;
        p.inverted = true;
        Ok(p)
    }

    /// Time of the first 50 % crossing.
    #[must_use]
    pub fn start(&self) -> f64 {
        self.start
    }

    /// Pulse width between 50 % crossings.
    #[must_use]
    pub fn width(&self) -> f64 {
        self.width
    }

    /// The voltage before the pulse (`t → −∞`): `low` for a positive
    /// pulse, `high` for an inverted one.
    #[must_use]
    pub fn initial_value(&self) -> f64 {
        if self.inverted {
            self.high
        } else {
            self.low
        }
    }

    /// The four corner times of the trapezoid, in increasing order:
    /// ramp starts and ends of the leading and trailing edges. The
    /// pulse is piecewise-linear between (and constant outside of)
    /// these times — adaptive integrators restart at them so no step
    /// straddles a slope discontinuity.
    #[must_use]
    pub fn corner_times(&self) -> [f64; 4] {
        let half = self.slew / 2.0;
        [
            self.start - half,
            self.start + half,
            self.start + self.width - half,
            self.start + self.width + half,
        ]
    }

    /// Exact threshold-crossing times of the trapezoid, each tagged
    /// with its direction. Empty if `threshold` is outside the pulse's
    /// voltage range. A positive pulse yields `[Rising, Falling]`, an
    /// inverted one `[Falling, Rising]`.
    #[must_use]
    pub fn crossings(&self, threshold: f64) -> Vec<(f64, Edge)> {
        if threshold <= self.low || threshold >= self.high {
            return Vec::new();
        }
        // fraction of the underlying (non-inverted) ramp at which the
        // stimulus passes `threshold`
        let x = if self.inverted {
            (self.high - threshold - self.low) / (self.high - self.low)
        } else {
            (threshold - self.low) / (self.high - self.low)
        };
        let t_lead = self.start - self.slew / 2.0 + self.slew * x;
        let t_trail = self.start + self.width - self.slew / 2.0 + self.slew * (1.0 - x);
        if self.inverted {
            vec![(t_lead, Edge::Falling), (t_trail, Edge::Rising)]
        } else {
            vec![(t_lead, Edge::Rising), (t_trail, Edge::Falling)]
        }
    }

    /// The voltage at time `t`.
    #[must_use]
    pub fn value_at(&self, t: f64) -> f64 {
        // 50 % crossing at `start` means the ramp spans
        // [start − slew/2, start + slew/2]
        let ramp = |x: f64| x.clamp(0.0, 1.0);
        let up = ramp((t - (self.start - self.slew / 2.0)) / self.slew);
        let down = ramp((t - (self.start + self.width - self.slew / 2.0)) / self.slew);
        let v01 = up - down; // in [0, 1]
        let v = self.low + (self.high - self.low) * v01;
        if self.inverted {
            self.high - v
        } else {
            v
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(Pulse::new(0.0, 10.0, 0.0, 1.0).is_err());
        assert!(Pulse::new(0.0, 1.0, 2.0, 1.0).is_err());
        assert!(Pulse::new(0.0, 10.0, 1.0, 0.0).is_err());
        assert!(Pulse::new(0.0, 10.0, 1.0, 1.0).is_ok());
    }

    #[test]
    fn trapezoid_shape() {
        let p = Pulse::new(10.0, 20.0, 2.0, 1.0).unwrap();
        assert_eq!(p.value_at(5.0), 0.0);
        assert_eq!(p.value_at(8.9), 0.0);
        assert!((p.value_at(10.0) - 0.5).abs() < 1e-12);
        assert_eq!(p.value_at(11.1), 1.0);
        assert_eq!(p.value_at(20.0), 1.0);
        assert!((p.value_at(30.0) - 0.5).abs() < 1e-12);
        assert_eq!(p.value_at(31.1), 0.0);
        assert_eq!(p.start(), 10.0);
        assert_eq!(p.width(), 20.0);
    }

    #[test]
    fn inverted_shape() {
        let p = Pulse::inverted(10.0, 20.0, 2.0, 1.0).unwrap();
        assert_eq!(p.value_at(0.0), 1.0);
        assert!((p.value_at(10.0) - 0.5).abs() < 1e-12);
        assert_eq!(p.value_at(20.0), 0.0);
        assert_eq!(p.value_at(40.0), 1.0);
    }

    #[test]
    fn analytic_crossings_match_value_at() {
        for (p, edges) in [
            (
                Pulse::new(10.0, 20.0, 4.0, 1.0).unwrap(),
                [Edge::Rising, Edge::Falling],
            ),
            (
                Pulse::inverted(10.0, 20.0, 4.0, 1.0).unwrap(),
                [Edge::Falling, Edge::Rising],
            ),
        ] {
            for thr in [0.25, 0.5, 0.8] {
                let xs = p.crossings(thr);
                assert_eq!(xs.len(), 2);
                assert_eq!(xs[0].1, edges[0]);
                assert_eq!(xs[1].1, edges[1]);
                for (t, _) in xs {
                    assert!((p.value_at(t) - thr).abs() < 1e-12, "thr {thr} at {t}");
                }
            }
            // thresholds outside the swing never cross
            assert!(p.crossings(0.0).is_empty());
            assert!(p.crossings(1.0).is_empty());
        }
        // the 50 % crossings sit exactly at start and start + width
        let p = Pulse::new(10.0, 20.0, 4.0, 1.0).unwrap();
        let xs = p.crossings(0.5);
        assert!((xs[0].0 - 10.0).abs() < 1e-12);
        assert!((xs[1].0 - 30.0).abs() < 1e-12);
        assert_eq!(p.initial_value(), 0.0);
        assert_eq!(
            Pulse::inverted(10.0, 20.0, 4.0, 1.0)
                .unwrap()
                .initial_value(),
            1.0
        );
    }

    #[test]
    fn corner_times_bracket_the_ramps() {
        let p = Pulse::new(10.0, 20.0, 4.0, 1.0).unwrap();
        assert_eq!(p.corner_times(), [8.0, 12.0, 28.0, 32.0]);
        // constant outside, mid-ramp inside
        assert_eq!(p.value_at(8.0), 0.0);
        assert_eq!(p.value_at(12.0), 1.0);
        assert!(p.value_at(10.0) > 0.0 && p.value_at(10.0) < 1.0);
    }

    #[test]
    fn slew_is_linear() {
        let p = Pulse::new(10.0, 20.0, 4.0, 2.0).unwrap();
        // ramp spans [8, 12]; value at 9 must be a quarter of 2.0
        assert!((p.value_at(9.0) - 0.5).abs() < 1e-12);
        assert!((p.value_at(11.0) - 1.5).abs() < 1e-12);
    }
}
