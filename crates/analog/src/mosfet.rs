//! The alpha-power-law MOSFET model (Sakurai–Newton).
//!
//! The alpha-power law captures short-channel velocity saturation with
//! three parameters: threshold voltage `V_T`, drive strength `k`, and
//! the saturation exponent `α` (≈ 2 for long channels, ≈ 1.2–1.4 for
//! deep-submicron devices like the paper's UMC-90 transistors):
//!
//! ```text
//! I_D = 0                                   for V_GS ≤ V_T      (cutoff)
//! I_D = W·k·(V_GS − V_T)^α                  for V_DS ≥ V_DSAT   (saturation)
//! I_D = I_DSAT·(2 − V_DS/V_DSAT)·(V_DS/V_DSAT)  otherwise       (linear)
//! ```
//!
//! with `V_DSAT = k_v·(V_GS − V_T)^{α/2}`.

use crate::error::Error;

/// Parameters of an alpha-power-law transistor (NMOS convention; the
/// inverter mirrors them for the PMOS).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlphaPowerParams {
    /// Threshold voltage `V_T` in volts.
    pub v_t: f64,
    /// Drive coefficient `k` in mA/V^α per unit width.
    pub k: f64,
    /// Saturation exponent `α`.
    pub alpha: f64,
    /// Saturation-voltage coefficient `k_v` in V^(1−α/2).
    pub k_v: f64,
}

impl AlphaPowerParams {
    /// Creates validated parameters.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] unless `v_t ≥ 0`, `k > 0`,
    /// `1 ≤ alpha ≤ 2`, `k_v > 0`.
    pub fn new(v_t: f64, k: f64, alpha: f64, k_v: f64) -> Result<Self, Error> {
        if !(v_t.is_finite() && v_t >= 0.0) {
            return Err(Error::InvalidParameter {
                name: "v_t",
                value: v_t,
                constraint: "must be finite and >= 0",
            });
        }
        if !(k.is_finite() && k > 0.0) {
            return Err(Error::InvalidParameter {
                name: "k",
                value: k,
                constraint: "must be finite and > 0",
            });
        }
        if !(alpha.is_finite() && (1.0..=2.0).contains(&alpha)) {
            return Err(Error::InvalidParameter {
                name: "alpha",
                value: alpha,
                constraint: "must be in [1, 2]",
            });
        }
        if !(k_v.is_finite() && k_v > 0.0) {
            return Err(Error::InvalidParameter {
                name: "k_v",
                value: k_v,
                constraint: "must be finite and > 0",
            });
        }
        Ok(AlphaPowerParams { v_t, k, alpha, k_v })
    }

    /// UMC-90-like NMOS: `V_T = 0.26 V` (the paper's value), drive tuned
    /// so a 0.36 µm device sources ≈ 0.2 mA at full gate drive,
    /// `α = 1.3`.
    #[must_use]
    pub fn umc90_nmos() -> Self {
        AlphaPowerParams {
            v_t: 0.26,
            k: 0.85, // mA/V^α per µm width
            alpha: 1.3,
            k_v: 0.9,
        }
    }

    /// UMC-90-like PMOS (mirrored convention): `V_T = 0.29 V`, roughly
    /// half the electron mobility compensated by the paper's ~2× wider
    /// pMOS (0.70 µm vs 0.36 µm).
    #[must_use]
    pub fn umc90_pmos() -> Self {
        AlphaPowerParams {
            v_t: 0.29,
            k: 0.42,
            alpha: 1.35,
            k_v: 0.95,
        }
    }
}

/// A transistor instance: parameters plus channel width (µm).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mosfet {
    params: AlphaPowerParams,
    width: f64,
}

impl Mosfet {
    /// Creates a transistor of the given width (µm).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] if `width ≤ 0`.
    pub fn new(params: AlphaPowerParams, width: f64) -> Result<Self, Error> {
        if !(width.is_finite() && width > 0.0) {
            return Err(Error::InvalidParameter {
                name: "width",
                value: width,
                constraint: "must be finite and > 0",
            });
        }
        Ok(Mosfet { params, width })
    }

    /// The channel width in µm.
    #[must_use]
    pub fn width(&self) -> f64 {
        self.width
    }

    /// The device parameters.
    #[must_use]
    pub fn params(&self) -> AlphaPowerParams {
        self.params
    }

    /// Returns a copy with the width scaled by `factor` (process
    /// variation; the ±10 % experiments of Figs. 8b/8c).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] if the scaled width is not
    /// positive.
    pub fn scaled_width(&self, factor: f64) -> Result<Self, Error> {
        Mosfet::new(self.params, self.width * factor)
    }

    /// Drain current in mA for gate-source voltage `v_gs` and
    /// drain-source voltage `v_ds ≥ 0` (NMOS convention; clamp the
    /// caller's values accordingly).
    #[must_use]
    pub fn drain_current(&self, v_gs: f64, v_ds: f64) -> f64 {
        let p = self.params;
        let v_gt = v_gs - p.v_t;
        if v_gt <= 0.0 || v_ds <= 0.0 {
            return 0.0;
        }
        let i_dsat = self.width * p.k * v_gt.powf(p.alpha);
        let v_dsat = p.k_v * v_gt.powf(p.alpha / 2.0);
        if v_ds >= v_dsat {
            i_dsat
        } else {
            let x = v_ds / v_dsat;
            i_dsat * (2.0 - x) * x
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nmos() -> Mosfet {
        Mosfet::new(AlphaPowerParams::umc90_nmos(), 0.36).unwrap()
    }

    #[test]
    fn parameter_validation() {
        assert!(AlphaPowerParams::new(-0.1, 1.0, 1.3, 0.9).is_err());
        assert!(AlphaPowerParams::new(0.3, 0.0, 1.3, 0.9).is_err());
        assert!(AlphaPowerParams::new(0.3, 1.0, 0.5, 0.9).is_err());
        assert!(AlphaPowerParams::new(0.3, 1.0, 2.5, 0.9).is_err());
        assert!(AlphaPowerParams::new(0.3, 1.0, 1.3, 0.0).is_err());
        assert!(AlphaPowerParams::new(0.3, 1.0, 1.3, 0.9).is_ok());
        assert!(Mosfet::new(AlphaPowerParams::umc90_nmos(), 0.0).is_err());
    }

    #[test]
    fn cutoff_region() {
        let m = nmos();
        assert_eq!(m.drain_current(0.2, 1.0), 0.0); // below V_T = 0.26
        assert_eq!(m.drain_current(0.26, 1.0), 0.0);
        assert_eq!(m.drain_current(1.0, 0.0), 0.0); // no V_DS
        assert_eq!(m.drain_current(1.0, -0.5), 0.0);
    }

    #[test]
    fn saturation_current_scale() {
        // ≈ 0.2 mA for a 0.36 µm device at full drive (1 V), per the
        // UMC-90 calibration target
        let m = nmos();
        let i = m.drain_current(1.0, 1.0);
        assert!((0.1..0.4).contains(&i), "I_DSAT = {i} mA");
    }

    #[test]
    fn monotone_in_vgs_and_vds() {
        let m = nmos();
        let mut prev = 0.0;
        for i in 1..=10 {
            let vgs = 0.26 + i as f64 * 0.07;
            let cur = m.drain_current(vgs, 1.0);
            assert!(cur > prev);
            prev = cur;
        }
        let mut prev = 0.0;
        for i in 1..=20 {
            let vds = i as f64 * 0.05;
            let cur = m.drain_current(0.8, vds);
            assert!(cur >= prev, "vds={vds}");
            prev = cur;
        }
    }

    #[test]
    fn linear_region_continuity_at_vdsat() {
        let m = nmos();
        let p = m.params();
        let vgs = 0.9;
        let v_dsat = p.k_v * (vgs - p.v_t).powf(p.alpha / 2.0);
        let below = m.drain_current(vgs, v_dsat * 0.999);
        let at = m.drain_current(vgs, v_dsat);
        assert!((below - at).abs() < 1e-3 * at, "{below} vs {at}");
    }

    #[test]
    fn current_scales_with_width() {
        let m = nmos();
        let wide = m.scaled_width(1.1).unwrap();
        let narrow = m.scaled_width(0.9).unwrap();
        let i = m.drain_current(1.0, 1.0);
        assert!((wide.drain_current(1.0, 1.0) - 1.1 * i).abs() < 1e-12);
        assert!((narrow.drain_current(1.0, 1.0) - 0.9 * i).abs() < 1e-12);
        assert!((wide.width() - 0.396).abs() < 1e-12);
        assert!(m.scaled_width(0.0).is_err());
    }

    #[test]
    fn pmos_params_reasonable() {
        let p = Mosfet::new(AlphaPowerParams::umc90_pmos(), 0.70).unwrap();
        let n = nmos();
        // the 2× wider pMOS roughly balances the weaker hole mobility
        let ip = p.drain_current(1.0 - 0.0, 1.0); // |V_GS| = VDD
        let in_ = n.drain_current(1.0, 1.0);
        let ratio = ip / in_;
        assert!((0.5..2.0).contains(&ratio), "ratio = {ratio}");
    }
}
