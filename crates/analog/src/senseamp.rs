//! The on-chip sense amplifier of the paper's ASIC (Fig. 6): gain 0.15,
//! −3 dB cutoff 8.5 GHz, modeled as a one-pole low-pass.

use crate::error::Error;
use crate::waveform::Waveform;

/// A first-order (one-pole) sense amplifier.
///
/// ```
/// use ivl_analog::senseamp::SenseAmp;
/// use ivl_analog::Waveform;
/// # fn main() -> Result<(), ivl_analog::Error> {
/// let amp = SenseAmp::umc90_like()?;
/// let step = Waveform::from_fn(0.0, 0.1, 2000, |t| if t < 10.0 { 0.0 } else { 1.0 });
/// let out = amp.apply(&step)?;
/// // settles to gain × input
/// assert!((out.value_at(199.0) - 0.15).abs() < 1e-3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SenseAmp {
    gain: f64,
    cutoff_ghz: f64,
}

impl SenseAmp {
    /// Creates a sense amp with the given DC gain and −3 dB cutoff (GHz).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] unless both are positive.
    pub fn new(gain: f64, cutoff_ghz: f64) -> Result<Self, Error> {
        if !(gain.is_finite() && gain > 0.0) {
            return Err(Error::InvalidParameter {
                name: "gain",
                value: gain,
                constraint: "must be finite and > 0",
            });
        }
        if !(cutoff_ghz.is_finite() && cutoff_ghz > 0.0) {
            return Err(Error::InvalidParameter {
                name: "cutoff_ghz",
                value: cutoff_ghz,
                constraint: "must be finite and > 0",
            });
        }
        Ok(SenseAmp { gain, cutoff_ghz })
    }

    /// The paper's amplifier: gain 0.15, 8.5 GHz cutoff.
    ///
    /// # Errors
    ///
    /// Never fails in practice (constants are valid).
    pub fn umc90_like() -> Result<Self, Error> {
        SenseAmp::new(0.15, 8.5)
    }

    /// The DC gain.
    #[must_use]
    pub fn gain(&self) -> f64 {
        self.gain
    }

    /// The −3 dB cutoff in GHz.
    #[must_use]
    pub fn cutoff_ghz(&self) -> f64 {
        self.cutoff_ghz
    }

    /// Filters a waveform through the amplifier (exact exponential
    /// stepping of the one-pole filter on the waveform's grid).
    ///
    /// # Errors
    ///
    /// Propagates waveform construction errors.
    pub fn apply(&self, input: &Waveform) -> Result<Waveform, Error> {
        // ω = 2π f; f in GHz, t in ps → ω in rad/ps = 2π·f·1e−3
        let omega = std::f64::consts::TAU * self.cutoff_ghz * 1e-3;
        let a = (-input.dt() * omega).exp();
        let mut state = self.gain * input.samples()[0];
        let samples = input
            .samples()
            .iter()
            .map(|&x| {
                state = a * state + (1.0 - a) * self.gain * x;
                state
            })
            .collect();
        Waveform::new(input.t0(), input.dt(), samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(SenseAmp::new(0.0, 8.5).is_err());
        assert!(SenseAmp::new(0.15, 0.0).is_err());
        assert!(SenseAmp::new(f64::NAN, 8.5).is_err());
        let a = SenseAmp::umc90_like().unwrap();
        assert_eq!(a.gain(), 0.15);
        assert_eq!(a.cutoff_ghz(), 8.5);
    }

    #[test]
    fn dc_gain() {
        let amp = SenseAmp::new(0.15, 8.5).unwrap();
        let dc = Waveform::from_fn(0.0, 0.1, 5000, |_| 1.0);
        let out = amp.apply(&dc).unwrap();
        assert!((out.value_at(400.0) - 0.15).abs() < 1e-6);
    }

    #[test]
    fn step_response_time_constant() {
        // τ = 1/ω ≈ 18.7 ps for 8.5 GHz
        let amp = SenseAmp::new(1.0, 8.5).unwrap();
        let step = Waveform::from_fn(0.0, 0.01, 20000, |t| if t < 1.0 { 0.0 } else { 1.0 });
        let out = amp.apply(&step).unwrap();
        let tau = 1.0 / (std::f64::consts::TAU * 8.5e-3);
        let v_at_tau = out.value_at(1.0 + tau);
        assert!(
            (v_at_tau - (1.0 - (-1.0f64).exp())).abs() < 0.01,
            "{v_at_tau}"
        );
    }

    #[test]
    fn attenuates_fast_wiggle_more_than_slow() {
        let amp = SenseAmp::new(1.0, 8.5).unwrap();
        let amplitude_after = |period_ps: f64| {
            let w = Waveform::from_fn(0.0, 0.01, 100_000, |t| {
                (std::f64::consts::TAU * t / period_ps).sin()
            });
            let out = amp.apply(&w).unwrap();
            out.samples()
                .iter()
                .skip(50_000)
                .fold(0.0f64, |m, &v| m.max(v.abs()))
        };
        let slow = amplitude_after(1000.0); // 1 GHz
        let fast = amplitude_after(10.0); // 100 GHz
        assert!(slow > 0.9);
        assert!(fast < 0.2, "fast wiggle must be attenuated: {fast}");
    }
}
