//! Parallel characterization sweeps: fan pulse widths over worker
//! threads (the analog twin of `ivl_circuit`'s `ScenarioRunner`).
//!
//! Every pulse width of a [`SweepConfig`] is an independent chain
//! simulation, so a sweep parallelizes embarrassingly: workers pull
//! index chunks from a shared atomic cursor (narrow pulses integrate
//! faster than wide ones, so static striping left workers idle at the
//! tail) and the results are assembled back in width order. The chain
//! itself is only ever *borrowed* — per-worker state is one result
//! vector, nothing else. Because the simulations are pure (no RNG), a
//! sweep's output is **bitwise identical for every worker count** —
//! unlike `ScenarioRunner`, no seeds are needed for determinism.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

use ivl_core::delay::DelayPair;
use ivl_core::Signal;

use crate::chain::InverterChain;
use crate::characterize::{
    apply_reference, collect_samples, partition_by_edge, run_one, DelaySample, DeviationSample,
    SweepConfig,
};
use crate::error::Error;
use crate::supply::VddSource;

/// Fans the pulse widths of characterization sweeps across worker
/// threads, with deterministic, order-independent result assembly.
///
/// ```
/// use ivl_analog::chain::InverterChain;
/// use ivl_analog::characterize::SweepConfig;
/// use ivl_analog::supply::VddSource;
/// use ivl_analog::sweep::SweepRunner;
/// # fn main() -> Result<(), ivl_analog::Error> {
/// let chain = InverterChain::umc90_like(7)?;
/// let vdd = VddSource::dc(1.0);
/// let cfg = SweepConfig {
///     widths: vec![40.0, 70.0, 100.0],
///     ..SweepConfig::default()
/// };
/// let samples = SweepRunner::new()
///     .with_workers(2)
///     .sweep_samples(&chain, &vdd, &cfg, false)?;
/// assert!(!samples.is_empty());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SweepRunner {
    workers: usize,
}

impl Default for SweepRunner {
    fn default() -> Self {
        SweepRunner::new()
    }
}

impl SweepRunner {
    /// Creates a runner with as many workers as the machine advertises.
    #[must_use]
    pub fn new() -> Self {
        let workers = thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        SweepRunner { workers }
    }

    /// Sets the number of worker threads (clamped to ≥ 1).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// The configured worker count.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Parallel [`sweep_samples`](crate::characterize::sweep_samples):
    /// identical output, widths fanned across workers.
    ///
    /// # Errors
    ///
    /// As [`sweep_samples`](crate::characterize::sweep_samples).
    pub fn sweep_samples(
        &self,
        chain: &InverterChain,
        vdd: &VddSource,
        config: &SweepConfig,
        inverted: bool,
    ) -> Result<Vec<DelaySample>, Error> {
        config.validate()?;
        let runs = self.run_widths(chain, vdd, config, inverted);
        collect_samples(runs, config)
    }

    /// Parallel [`characterize`](crate::characterize::characterize):
    /// both orientations of every width run concurrently, returning
    /// `(δ↑ samples, δ↓ samples)` sorted by offset.
    ///
    /// # Errors
    ///
    /// As [`characterize`](crate::characterize::characterize).
    pub fn characterize(
        &self,
        chain: &InverterChain,
        vdd: &VddSource,
        config: &SweepConfig,
    ) -> Result<(Vec<DelaySample>, Vec<DelaySample>), Error> {
        config.validate()?;
        let w = config.widths.len();
        let results = self.run_jobs(2 * w, |j| {
            let inverted = j >= w;
            run_one(chain, vdd, config, config.widths[j % w], inverted)
        });
        let mut results = results.into_iter();
        let mut all = Vec::new();
        for _inverted in [false, true] {
            let orientation: Vec<_> = results.by_ref().take(w).collect();
            all.extend(collect_samples(orientation, config)?);
        }
        Ok(partition_by_edge(all))
    }

    /// Parallel
    /// [`measure_deviations`](crate::characterize::measure_deviations):
    /// the sweep fans out, the reference model is applied serially to
    /// the assembled samples.
    ///
    /// # Errors
    ///
    /// As [`measure_deviations`](crate::characterize::measure_deviations).
    pub fn measure_deviations<D: DelayPair + ?Sized>(
        &self,
        chain: &InverterChain,
        vdd: &VddSource,
        config: &SweepConfig,
        reference: &D,
        inverted: bool,
    ) -> Result<Vec<DeviationSample>, Error> {
        let samples = self.sweep_samples(chain, vdd, config, inverted)?;
        Ok(apply_reference(&samples, reference))
    }

    /// Runs one orientation of every width, in width order.
    fn run_widths(
        &self,
        chain: &InverterChain,
        vdd: &VddSource,
        config: &SweepConfig,
        inverted: bool,
    ) -> Vec<Result<(Signal, Signal), Error>> {
        self.run_jobs(config.widths.len(), |j| {
            run_one(chain, vdd, config, config.widths[j], inverted)
        })
    }

    /// Work-stealing fan-out: workers claim fixed-size index chunks
    /// from a shared atomic cursor (a slow job no longer stalls a
    /// statically assigned stripe); results are returned in job order
    /// regardless of scheduling.
    ///
    /// Every job runs inside a panic supervisor: a panicking job is
    /// contained as [`Error::WorkerPanic`] in its own result slot (with
    /// the job index and the panic payload) instead of tearing down the
    /// whole sweep and poisoning every other width's result.
    fn run_jobs<T, F>(&self, jobs: usize, job: F) -> Vec<Result<T, Error>>
    where
        T: Send,
        F: Fn(usize) -> Result<T, Error> + Sync,
    {
        let supervised = |idx: usize| -> Result<T, Error> {
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| job(idx))) {
                Ok(result) => result,
                Err(payload) => Err(Error::WorkerPanic {
                    index: idx,
                    message: panic_message(payload.as_ref()),
                }),
            }
        };
        let workers = self.workers.min(jobs.max(1));
        if workers <= 1 {
            return (0..jobs).map(supervised).collect();
        }
        // ~4 chunks per worker balances cursor contention against load
        // imbalance; a chunk is never empty
        let chunk = (jobs / (workers * 4)).clamp(1, 16);
        let cursor = AtomicUsize::new(0);
        let mut slots: Vec<Option<Result<T, Error>>> = Vec::new();
        slots.resize_with(jobs, || None);
        thread::scope(|scope| {
            let (supervised, cursor) = (&supervised, &cursor);
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(move || {
                        let mut out = Vec::new();
                        loop {
                            let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                            if start >= jobs {
                                return out;
                            }
                            for idx in start..(start + chunk).min(jobs) {
                                out.push((idx, supervised(idx)));
                            }
                        }
                    })
                })
                .collect();
            for h in handles {
                // job panics are contained above; a failed join would be
                // a bug in the fan-out plumbing itself
                for (idx, res) in h.join().expect("sweep worker exited cleanly") {
                    slots[idx] = Some(res);
                }
            }
        });
        slots
            .into_iter()
            .map(|s| s.expect("every job index is claimed by a worker"))
            .collect()
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
#[allow(deprecated)] // serial-vs-parallel equivalence deliberately uses the compat wrappers
mod tests {
    use super::*;
    use crate::characterize::{characterize, measure_deviations, sweep_samples, to_piecewise};

    fn chain() -> InverterChain {
        InverterChain::umc90_like(7).unwrap()
    }

    fn cfg() -> SweepConfig {
        SweepConfig {
            widths: (0..7).map(|i| 24.0 + 12.0 * i as f64).collect(),
            ..SweepConfig::default()
        }
    }

    #[test]
    fn parallel_sweep_matches_serial_bitwise() {
        let vdd = VddSource::dc(1.0);
        let serial = sweep_samples(&chain(), &vdd, &cfg(), false).unwrap();
        for workers in [1, 2, 4] {
            let par = SweepRunner::new()
                .with_workers(workers)
                .sweep_samples(&chain(), &vdd, &cfg(), false)
                .unwrap();
            assert_eq!(serial, par, "workers = {workers}");
        }
    }

    #[test]
    fn parallel_characterize_matches_serial_bitwise() {
        let vdd = VddSource::dc(1.0);
        let (up_s, down_s) = characterize(&chain(), &vdd, &cfg()).unwrap();
        let (up_p, down_p) = SweepRunner::new()
            .with_workers(3)
            .characterize(&chain(), &vdd, &cfg())
            .unwrap();
        assert_eq!(up_s, up_p);
        assert_eq!(down_s, down_p);
    }

    #[test]
    fn parallel_deviations_match_serial_bitwise() {
        let c = chain();
        let vdd = VddSource::dc(1.0);
        let config = cfg();
        let (up, _) = characterize(&c, &vdd, &config).unwrap();
        let pair = to_piecewise(&up).unwrap();
        let serial = measure_deviations(&c, &vdd, &config, &pair, true).unwrap();
        let par = SweepRunner::new()
            .with_workers(4)
            .measure_deviations(&c, &vdd, &config, &pair, true)
            .unwrap();
        assert_eq!(serial, par);
    }

    #[test]
    fn empty_width_list_reports_invalid_sweep() {
        let vdd = VddSource::dc(1.0);
        let config = SweepConfig {
            widths: vec![],
            ..SweepConfig::default()
        };
        let err = SweepRunner::new()
            .sweep_samples(&chain(), &vdd, &config, false)
            .unwrap_err();
        assert!(matches!(err, Error::InvalidSweep { .. }), "{err:?}");
    }

    #[test]
    fn non_finite_sweep_knobs_report_invalid_sweep() {
        let vdd = VddSource::dc(1.0);
        for config in [
            SweepConfig {
                widths: vec![20.0, f64::NAN],
                ..SweepConfig::default()
            },
            SweepConfig {
                widths: vec![-5.0],
                ..SweepConfig::default()
            },
            SweepConfig {
                settle: f64::INFINITY,
                ..SweepConfig::default()
            },
            SweepConfig {
                dt: 0.0,
                ..SweepConfig::default()
            },
        ] {
            let err = SweepRunner::new()
                .sweep_samples(&chain(), &vdd, &config, false)
                .unwrap_err();
            assert!(matches!(err, Error::InvalidSweep { .. }), "{err:?}");
            assert!(!err.to_string().is_empty());
        }
    }

    #[test]
    fn panicking_jobs_are_contained_per_slot() {
        for workers in [1, 3] {
            let runner = SweepRunner::new().with_workers(workers);
            let results = runner.run_jobs(8, |j| {
                if j == 5 {
                    panic!("job {j} exploded");
                }
                Ok::<usize, Error>(j * 2)
            });
            assert_eq!(results.len(), 8);
            for (j, r) in results.iter().enumerate() {
                if j == 5 {
                    match r {
                        Err(Error::WorkerPanic { index, message }) => {
                            assert_eq!(*index, 5);
                            assert!(message.contains("exploded"), "{message}");
                        }
                        other => panic!("expected WorkerPanic, got {other:?}"),
                    }
                } else {
                    assert_eq!(*r.as_ref().unwrap(), j * 2, "workers={workers}");
                }
            }
        }
    }

    #[test]
    fn accessors_and_clamping() {
        let r = SweepRunner::new().with_workers(0);
        assert_eq!(r.workers(), 1);
        assert!(SweepRunner::default().workers() >= 1);
    }
}
