//! # ivl-analog
//!
//! A small transistor-level analog simulator standing in for the SPICE
//! simulations and UMC-90 ASIC measurements of Section V of *"A Faithful
//! Binary Circuit Model with Adversarial Noise"* (DATE 2018).
//!
//! The paper validates the η-involution model against the analog
//! threshold-crossing times of a 7-stage CMOS inverter chain under
//! supply-voltage and process variations (Figs. 6–9). This crate builds
//! the equivalent "ground truth" in pure Rust:
//!
//! * [`mosfet`] — the alpha-power-law (Sakurai–Newton) MOSFET model;
//! * [`inverter`] / [`chain`] — CMOS inverters and the 7-stage chain of
//!   Fig. 6, integrated with classic RK4 or adaptive Dormand–Prince
//!   RK45 with dense output and crossing events ([`ode`]);
//! * [`supply`] — DC and sine-modulated supplies (the ±1 % VDD
//!   experiment of Fig. 8a);
//! * [`senseamp`] — the on-chip sense-amplifier model (gain 0.15,
//!   8.5 GHz one-pole low-pass);
//! * [`waveform`] — sampled waveforms with interpolated threshold
//!   crossings and digitization to `ivl-core` [`Signal`]s;
//! * [`characterize`] — pulse-width sweeps extracting `(T, δ)` delay
//!   samples and model-vs-analog deviations `D(T)`;
//! * [`sweep`] — a [`SweepRunner`] fanning characterization sweeps
//!   across worker threads with deterministic result assembly.
//!
//! Units: time in **ps**, voltage in **V**, current in **mA**,
//! capacitance in **fF** (so `I = C·dV/dt` is consistent without
//! conversion factors).
//!
//! ```
//! use ivl_analog::chain::InverterChain;
//! use ivl_analog::stimulus::Pulse;
//! use ivl_analog::supply::VddSource;
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let chain = InverterChain::umc90_like(7)?;
//! let vdd = VddSource::dc(1.0);
//! let stim = Pulse::new(50.0, 100.0, 10.0, 1.0)?; // 100 ps pulse, 10 ps slew
//! let run = chain.simulate(&stim, &vdd, 400.0, 0.1)?;
//! // the chain inverts an odd number of times: stage 7 starts high
//! assert!(run.node(6).value_at(0.0) > 0.9);
//! # Ok(())
//! # }
//! ```
//!
//! [`Signal`]: ivl_core::Signal

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod chain;
pub mod characterize;
mod error;
pub mod inverter;
pub mod mosfet;
pub mod ode;
pub mod senseamp;
pub mod stimulus;
pub mod supply;
pub mod sweep;
pub mod waveform;

pub use error::Error;
pub use sweep::SweepRunner;
pub use waveform::Waveform;
