//! Supply-voltage sources: DC and sine-modulated (the ±1 % VDD
//! experiment of Fig. 8a).

use crate::error::Error;

/// A time-varying supply voltage `V_DD(t)`.
///
/// ```
/// use ivl_analog::supply::VddSource;
/// # fn main() -> Result<(), ivl_analog::Error> {
/// let dc = VddSource::dc(1.2);
/// assert_eq!(dc.value_at(123.0), 1.2);
/// // 1 % sine at 5 GHz (period 200 ps), phase 90°
/// let wobble = VddSource::with_sine(1.2, 0.012, 200.0, 90.0)?;
/// assert!((wobble.value_at(0.0) - 1.212).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VddSource {
    nominal: f64,
    amplitude: f64,
    period: f64,
    phase_rad: f64,
}

impl VddSource {
    /// A constant supply.
    #[must_use]
    pub fn dc(nominal: f64) -> Self {
        VddSource {
            nominal,
            amplitude: 0.0,
            period: 1.0,
            phase_rad: 0.0,
        }
    }

    /// A supply with an added sine:
    /// `V_DD(t) = nominal + amplitude·sin(2π t/period + phase)`.
    ///
    /// `phase_deg` is in degrees (the paper randomizes it over 0–360°
    /// per applied pulse).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] unless `nominal > 0`,
    /// `amplitude ≥ 0`, `period > 0`.
    pub fn with_sine(
        nominal: f64,
        amplitude: f64,
        period: f64,
        phase_deg: f64,
    ) -> Result<Self, Error> {
        if !(nominal.is_finite() && nominal > 0.0) {
            return Err(Error::InvalidParameter {
                name: "nominal",
                value: nominal,
                constraint: "must be finite and > 0",
            });
        }
        if !(amplitude.is_finite() && amplitude >= 0.0 && amplitude < nominal) {
            return Err(Error::InvalidParameter {
                name: "amplitude",
                value: amplitude,
                constraint: "must be finite, >= 0 and below nominal",
            });
        }
        if !(period.is_finite() && period > 0.0) {
            return Err(Error::InvalidParameter {
                name: "period",
                value: period,
                constraint: "must be finite and > 0",
            });
        }
        if !phase_deg.is_finite() {
            return Err(Error::InvalidParameter {
                name: "phase_deg",
                value: phase_deg,
                constraint: "must be finite",
            });
        }
        Ok(VddSource {
            nominal,
            amplitude,
            period,
            phase_rad: phase_deg.to_radians(),
        })
    }

    /// The nominal (DC) level.
    #[must_use]
    pub fn nominal(&self) -> f64 {
        self.nominal
    }

    /// Returns a copy with a different phase (degrees) — convenient for
    /// the per-pulse random-phase procedure of Section V.
    #[must_use]
    pub fn with_phase_deg(mut self, phase_deg: f64) -> Self {
        self.phase_rad = phase_deg.to_radians();
        self
    }

    /// The supply voltage at time `t` (ps).
    #[must_use]
    pub fn value_at(&self, t: f64) -> f64 {
        self.nominal
            + self.amplitude * (std::f64::consts::TAU * t / self.period + self.phase_rad).sin()
    }
}

/// A time-varying ground (V_SS) level around 0 V — the paper's remark
/// after the Fig. 8a discussion: varying the ground instead of the
/// supply reverses which edge is affected.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroundSource {
    amplitude: f64,
    period: f64,
    phase_rad: f64,
}

impl GroundSource {
    /// Ideal ground (0 V).
    #[must_use]
    pub fn ideal() -> Self {
        GroundSource {
            amplitude: 0.0,
            period: 1.0,
            phase_rad: 0.0,
        }
    }

    /// Ground with a sine bounce:
    /// `V_SS(t) = amplitude·sin(2π t/period + phase)`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] unless `amplitude ≥ 0` and
    /// `period > 0` (both finite) and `phase_deg` is finite.
    pub fn with_sine(amplitude: f64, period: f64, phase_deg: f64) -> Result<Self, Error> {
        if !(amplitude.is_finite() && amplitude >= 0.0) {
            return Err(Error::InvalidParameter {
                name: "amplitude",
                value: amplitude,
                constraint: "must be finite and >= 0",
            });
        }
        if !(period.is_finite() && period > 0.0) {
            return Err(Error::InvalidParameter {
                name: "period",
                value: period,
                constraint: "must be finite and > 0",
            });
        }
        if !phase_deg.is_finite() {
            return Err(Error::InvalidParameter {
                name: "phase_deg",
                value: phase_deg,
                constraint: "must be finite",
            });
        }
        Ok(GroundSource {
            amplitude,
            period,
            phase_rad: phase_deg.to_radians(),
        })
    }

    /// Returns a copy with a different phase (degrees).
    #[must_use]
    pub fn with_phase_deg(mut self, phase_deg: f64) -> Self {
        self.phase_rad = phase_deg.to_radians();
        self
    }

    /// The ground level at time `t` (ps).
    #[must_use]
    pub fn value_at(&self, t: f64) -> f64 {
        self.amplitude * (std::f64::consts::TAU * t / self.period + self.phase_rad).sin()
    }
}

impl Default for GroundSource {
    /// Ideal ground.
    fn default() -> Self {
        GroundSource::ideal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ground_source_ideal_and_sine() {
        let g = GroundSource::ideal();
        assert_eq!(g.value_at(123.0), 0.0);
        assert_eq!(GroundSource::default(), g);
        let b = GroundSource::with_sine(0.01, 100.0, 90.0).unwrap();
        assert!((b.value_at(0.0) - 0.01).abs() < 1e-12);
        assert!((b.with_phase_deg(270.0).value_at(0.0) + 0.01).abs() < 1e-12);
        assert!(GroundSource::with_sine(-0.01, 100.0, 0.0).is_err());
        assert!(GroundSource::with_sine(0.01, 0.0, 0.0).is_err());
        assert!(GroundSource::with_sine(0.01, 1.0, f64::NAN).is_err());
    }

    #[test]
    fn dc_is_constant() {
        let s = VddSource::dc(1.0);
        for t in [0.0, 17.3, -5.0, 1e6] {
            assert_eq!(s.value_at(t), 1.0);
        }
        assert_eq!(s.nominal(), 1.0);
    }

    #[test]
    fn sine_modulation_bounds_and_period() {
        let s = VddSource::with_sine(1.2, 0.012, 100.0, 0.0).unwrap();
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for i in 0..1000 {
            let v = s.value_at(i as f64 * 0.5);
            min = min.min(v);
            max = max.max(v);
        }
        assert!((max - 1.212).abs() < 1e-4);
        assert!((min - 1.188).abs() < 1e-4);
        // periodicity
        assert!((s.value_at(13.0) - s.value_at(113.0)).abs() < 1e-12);
    }

    #[test]
    fn phase_shifts() {
        let base = VddSource::with_sine(1.0, 0.01, 100.0, 0.0).unwrap();
        let shifted = base.with_phase_deg(180.0);
        assert!((base.value_at(10.0) + shifted.value_at(10.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn validation() {
        assert!(VddSource::with_sine(0.0, 0.01, 100.0, 0.0).is_err());
        assert!(VddSource::with_sine(1.0, -0.01, 100.0, 0.0).is_err());
        assert!(VddSource::with_sine(1.0, 1.5, 100.0, 0.0).is_err());
        assert!(VddSource::with_sine(1.0, 0.01, 0.0, 0.0).is_err());
        assert!(VddSource::with_sine(1.0, 0.01, 100.0, f64::NAN).is_err());
    }
}
