//! ODE integration for small systems: fixed-step RK4 and adaptive
//! Dormand–Prince RK45 with dense output and threshold-crossing events.
//!
//! The fixed-step integrator ([`rk4_with`]) streams accepted states into
//! a caller-provided recorder, so hot paths can fill flat row-major
//! buffers instead of allocating a `Vec<Vec<f64>>` per step; [`rk4`]
//! remains as a thin compatibility wrapper with the original signature.
//!
//! The adaptive integrator ([`rk45`]) is an embedded Dormand–Prince
//! 5(4) pair with a PI step-size controller. Every accepted step is
//! handed to the caller as a [`DenseStep`] carrying the cubic-Hermite
//! interpolant of the step, which supports cheap intra-step evaluation
//! ([`DenseStep::eval`]) and threshold-crossing root-finding
//! ([`DenseStep::find_crossing`]) — the basis of the crossings-only
//! fast path used by the characterization pipeline.

use crate::error::Error;

/// Integrates `dy/dt = f(t, y)` from `t0` with fixed step `dt` for
/// `steps` steps using classic fourth-order Runge–Kutta, handing every
/// state (including the initial one) to `record(step_index, t, y)`.
///
/// `f` writes the derivative of `y` into its third argument. The
/// recorder owns layout: it may copy `y` into a flat buffer, extract a
/// single component, or drop it entirely.
///
/// ```
/// use ivl_analog::ode::rk4_with;
/// // dy/dt = -y, y(0) = 1 → y(t) = e^{-t}; record only the last state
/// let mut last = 0.0;
/// rk4_with(0.0, &[1.0], 0.01, 500, |_t, y, dy| dy[0] = -y[0], |_k, _t, y| last = y[0]);
/// assert!((last - (-5.0f64).exp()).abs() < 1e-9);
/// ```
pub fn rk4_with<F, R>(t0: f64, y0: &[f64], dt: f64, steps: usize, mut f: F, mut record: R)
where
    F: FnMut(f64, &[f64], &mut [f64]),
    R: FnMut(usize, f64, &[f64]),
{
    let n = y0.len();
    let mut y = y0.to_vec();
    record(0, t0, &y);
    let mut k1 = vec![0.0; n];
    let mut k2 = vec![0.0; n];
    let mut k3 = vec![0.0; n];
    let mut k4 = vec![0.0; n];
    let mut tmp = vec![0.0; n];
    for step in 0..steps {
        let t = t0 + step as f64 * dt;
        f(t, &y, &mut k1);
        for i in 0..n {
            tmp[i] = y[i] + 0.5 * dt * k1[i];
        }
        f(t + 0.5 * dt, &tmp, &mut k2);
        for i in 0..n {
            tmp[i] = y[i] + 0.5 * dt * k2[i];
        }
        f(t + 0.5 * dt, &tmp, &mut k3);
        for i in 0..n {
            tmp[i] = y[i] + dt * k3[i];
        }
        f(t + dt, &tmp, &mut k4);
        for i in 0..n {
            y[i] += dt / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
        }
        record(step + 1, t0 + (step + 1) as f64 * dt, &y);
    }
}

/// Like [`rk4_with`], recording every state into one flat row-major
/// buffer of `(steps + 1) · n` values (row `k` holds the state after
/// `k` steps).
pub fn rk4_flat<F>(t0: f64, y0: &[f64], dt: f64, steps: usize, f: F) -> Vec<f64>
where
    F: FnMut(f64, &[f64], &mut [f64]),
{
    let mut out = Vec::with_capacity((steps + 1) * y0.len());
    rk4_with(t0, y0, dt, steps, f, |_k, _t, y| out.extend_from_slice(y));
    out
}

/// Compatibility wrapper around [`rk4_with`] returning one `Vec<f64>`
/// per recorded state (the original allocation-heavy signature).
///
/// ```
/// use ivl_analog::ode::rk4;
/// // dy/dt = -y, y(0) = 1 → y(t) = e^{-t}
/// let trace = rk4(0.0, &[1.0], 0.01, 500, |_t, y, dy| dy[0] = -y[0]);
/// let y_final = trace.last().unwrap()[0];
/// assert!((y_final - (-5.0f64).exp()).abs() < 1e-9);
/// ```
pub fn rk4<F>(t0: f64, y0: &[f64], dt: f64, steps: usize, f: F) -> Vec<Vec<f64>>
where
    F: FnMut(f64, &[f64], &mut [f64]),
{
    let mut out = Vec::with_capacity(steps + 1);
    rk4_with(t0, y0, dt, steps, f, |_k, _t, y| out.push(y.to_vec()));
    out
}

/// Tuning knobs of the adaptive [`rk45`] integrator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rk45Options {
    /// Relative tolerance per component.
    pub rtol: f64,
    /// Absolute tolerance per component (same unit as the state — volts
    /// for the inverter chain).
    pub atol: f64,
    /// Initial step size; `None` picks one from the initial derivative.
    pub h_init: Option<f64>,
    /// Hard cap on the step size; `None` allows steps up to the span.
    pub h_max: Option<f64>,
    /// Budget of accepted + rejected steps before the integrator gives
    /// up with [`Error::Integration`].
    pub max_steps: usize,
}

impl Default for Rk45Options {
    /// `rtol = 1e-6`, `atol = 1e-9` — tight enough that dense-output
    /// crossing times match a fine-step RK4 reference to ≈ 1e-6 ps on
    /// the UMC-90-like chain, while still taking multi-ps steps on
    /// quiescent rails.
    fn default() -> Self {
        Rk45Options {
            rtol: 1e-6,
            atol: 1e-9,
            h_init: None,
            h_max: None,
            max_steps: 1_000_000,
        }
    }
}

impl Rk45Options {
    /// Options with the given tolerances and defaults elsewhere.
    #[must_use]
    pub fn with_tolerances(rtol: f64, atol: f64) -> Self {
        Rk45Options {
            rtol,
            atol,
            ..Rk45Options::default()
        }
    }
}

/// Step statistics of one [`rk45`] integration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Rk45Stats {
    /// Accepted steps.
    pub accepted: usize,
    /// Rejected (re-tried) steps.
    pub rejected: usize,
    /// Right-hand-side evaluations.
    pub rhs_evals: usize,
}

/// One accepted step of [`rk45`] together with its cubic-Hermite
/// interpolant: states and derivatives at both step ends.
#[derive(Debug)]
pub struct DenseStep<'a> {
    /// Step start time.
    pub t0: f64,
    /// Step end time.
    pub t1: f64,
    /// State at `t0`.
    pub y0: &'a [f64],
    /// State at `t1`.
    pub y1: &'a [f64],
    /// Derivative at `t0`.
    pub f0: &'a [f64],
    /// Derivative at `t1`.
    pub f1: &'a [f64],
}

impl DenseStep<'_> {
    /// Cubic-Hermite value of component `i` at `t ∈ [t0, t1]`.
    #[must_use]
    pub fn eval(&self, i: usize, t: f64) -> f64 {
        let h = self.t1 - self.t0;
        let s = (t - self.t0) / h;
        let s2 = s * s;
        let s3 = s2 * s;
        (2.0 * s3 - 3.0 * s2 + 1.0) * self.y0[i]
            + (s3 - 2.0 * s2 + s) * h * self.f0[i]
            + (-2.0 * s3 + 3.0 * s2) * self.y1[i]
            + (s3 - s2) * h * self.f1[i]
    }

    /// Evaluates the whole state at `t ∈ [t0, t1]` into `out`.
    pub fn eval_into(&self, t: f64, out: &mut [f64]) {
        for (i, v) in out.iter_mut().enumerate() {
            *v = self.eval(i, t);
        }
    }

    /// Time at which component `i` crosses `threshold` in the given
    /// direction within this step, if it does.
    ///
    /// The endpoint test matches
    /// [`Waveform::rising_crossings`](crate::Waveform::rising_crossings)
    /// exactly (`a < thr && b ≥ thr` for rising), and the crossing time
    /// is refined by bisection on the Hermite interpolant of the
    /// bracketing quarter of the step — sub-step double crossings are
    /// caught by scanning the step in four segments.
    #[must_use]
    pub fn find_crossing(&self, i: usize, threshold: f64, rising: bool) -> Option<f64> {
        self.find_crossing_after(i, threshold, rising, self.t0)
    }

    /// Like [`find_crossing`](DenseStep::find_crossing), but only
    /// considers `t ∈ (t_from, t1]` — used to harvest *multiple*
    /// alternating crossings from a single step.
    #[must_use]
    pub fn find_crossing_after(
        &self,
        i: usize,
        threshold: f64,
        rising: bool,
        t_from: f64,
    ) -> Option<f64> {
        let start = t_from.max(self.t0);
        if start >= self.t1 {
            return None;
        }
        let mut t_lo = start;
        let mut v_lo = if start == self.t0 {
            self.y0[i]
        } else {
            self.eval(i, start)
        };
        for seg in 1..=4 {
            let t_hi = if seg == 4 {
                self.t1
            } else {
                start + (self.t1 - start) * seg as f64 / 4.0
            };
            let v_hi = if seg == 4 {
                self.y1[i]
            } else {
                self.eval(i, t_hi)
            };
            let crossed = if rising {
                v_lo < threshold && v_hi >= threshold
            } else {
                v_lo > threshold && v_hi <= threshold
            };
            if crossed {
                return Some(self.bisect(i, threshold, t_lo, t_hi));
            }
            t_lo = t_hi;
            v_lo = v_hi;
        }
        None
    }

    /// Bisection on the Hermite interpolant down to f64 resolution.
    fn bisect(&self, i: usize, threshold: f64, mut lo: f64, mut hi: f64) -> f64 {
        let g_lo = self.eval(i, lo) - threshold;
        for _ in 0..80 {
            let mid = 0.5 * (lo + hi);
            if mid <= lo || mid >= hi {
                break;
            }
            let g_mid = self.eval(i, mid) - threshold;
            if (g_mid >= 0.0) == (g_lo >= 0.0) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }
}

// Dormand–Prince 5(4) tableau.
const C2: f64 = 1.0 / 5.0;
const C3: f64 = 3.0 / 10.0;
const C4: f64 = 4.0 / 5.0;
const C5: f64 = 8.0 / 9.0;
const A21: f64 = 1.0 / 5.0;
const A31: f64 = 3.0 / 40.0;
const A32: f64 = 9.0 / 40.0;
const A41: f64 = 44.0 / 45.0;
const A42: f64 = -56.0 / 15.0;
const A43: f64 = 32.0 / 9.0;
const A51: f64 = 19372.0 / 6561.0;
const A52: f64 = -25360.0 / 2187.0;
const A53: f64 = 64448.0 / 6561.0;
const A54: f64 = -212.0 / 729.0;
const A61: f64 = 9017.0 / 3168.0;
const A62: f64 = -355.0 / 33.0;
const A63: f64 = 46732.0 / 5247.0;
const A64: f64 = 49.0 / 176.0;
const A65: f64 = -5103.0 / 18656.0;
// 5th-order solution weights (also the last stage row: FSAL).
const B1: f64 = 35.0 / 384.0;
const B3: f64 = 500.0 / 1113.0;
const B4: f64 = 125.0 / 192.0;
const B5: f64 = -2187.0 / 6784.0;
const B6: f64 = 11.0 / 84.0;
// Error weights: b(5th) − b(4th).
const E1: f64 = 71.0 / 57600.0;
const E3: f64 = -71.0 / 16695.0;
const E4: f64 = 71.0 / 1920.0;
const E5: f64 = -17253.0 / 339_200.0;
const E6: f64 = 22.0 / 525.0;
const E7: f64 = -1.0 / 40.0;

/// Integrates `dy/dt = f(t, y)` from `t0` to `t_end` with the embedded
/// Dormand–Prince RK45 pair under PI step-size control, invoking
/// `on_step` with a [`DenseStep`] for every accepted step (in order).
/// Returns the final state and step statistics.
///
/// The first same as last (FSAL) property is used: one right-hand-side
/// evaluation per accepted step is shared with the next step, and its
/// value doubles as the end-point derivative of the dense interpolant.
///
/// ```
/// use ivl_analog::ode::{rk45, Rk45Options};
/// // dy/dt = -y, y(0) = 1 → y(t) = e^{-t}
/// let (y, stats) = rk45(
///     0.0,
///     5.0,
///     &[1.0],
///     &Rk45Options::default(),
///     |_t, y, dy| dy[0] = -y[0],
///     |_step| {},
/// )
/// .unwrap();
/// assert!((y[0] - (-5.0f64).exp()).abs() < 1e-7);
/// assert!(stats.accepted > 0);
/// ```
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] for a degenerate time span or
/// non-positive tolerances, and [`Error::Integration`] if the step size
/// underflows or `max_steps` is exhausted.
pub fn rk45<F, H>(
    t0: f64,
    t_end: f64,
    y0: &[f64],
    opts: &Rk45Options,
    mut f: F,
    mut on_step: H,
) -> Result<(Vec<f64>, Rk45Stats), Error>
where
    F: FnMut(f64, &[f64], &mut [f64]),
    H: for<'a> FnMut(&DenseStep<'a>),
{
    if !(t_end.is_finite() && t0.is_finite() && t_end > t0) {
        return Err(Error::InvalidParameter {
            name: "t_end",
            value: t_end,
            constraint: "must be finite and > t0",
        });
    }
    if !(opts.rtol.is_finite() && opts.rtol > 0.0) {
        return Err(Error::InvalidParameter {
            name: "rtol",
            value: opts.rtol,
            constraint: "must be finite and > 0",
        });
    }
    if !(opts.atol.is_finite() && opts.atol > 0.0) {
        return Err(Error::InvalidParameter {
            name: "atol",
            value: opts.atol,
            constraint: "must be finite and > 0",
        });
    }
    let n = y0.len();
    if let Some(h) = opts.h_max {
        if !(h.is_finite() && h > 0.0) {
            return Err(Error::InvalidParameter {
                name: "h_max",
                value: h,
                constraint: "must be finite and > 0",
            });
        }
    }
    if let Some(h) = opts.h_init {
        if !(h.is_finite() && h > 0.0) {
            return Err(Error::InvalidParameter {
                name: "h_init",
                value: h,
                constraint: "must be finite and > 0",
            });
        }
    }
    let span = t_end - t0;
    let h_max = opts.h_max.unwrap_or(span).min(span);
    let mut stats = Rk45Stats::default();

    let mut y = y0.to_vec();
    let mut y_new = vec![0.0; n];
    let mut tmp = vec![0.0; n];
    let mut k1 = vec![0.0; n];
    let mut k2 = vec![0.0; n];
    let mut k3 = vec![0.0; n];
    let mut k4 = vec![0.0; n];
    let mut k5 = vec![0.0; n];
    let mut k6 = vec![0.0; n];
    let mut k7 = vec![0.0; n];

    let mut t = t0;
    f(t, &y, &mut k1);
    stats.rhs_evals += 1;

    // Initial step: balance state scale against derivative scale.
    let mut h = opts.h_init.unwrap_or_else(|| {
        let mut d0 = 0.0;
        let mut d1 = 0.0;
        for i in 0..n {
            let sc = opts.atol + opts.rtol * y[i].abs();
            d0 += (y[i] / sc).powi(2);
            d1 += (k1[i] / sc).powi(2);
        }
        let (d0, d1) = ((d0 / n as f64).sqrt(), (d1 / n as f64).sqrt());
        if d1 > 1e-12 && d0 > 1e-12 {
            0.01 * d0 / d1
        } else {
            1e-3 * span
        }
    });
    h = h.clamp(f64::MIN_POSITIVE, h_max);

    // PI controller state (Hairer's DOPRI5 settings).
    const SAFETY: f64 = 0.9;
    const BETA: f64 = 0.04;
    const EXPO: f64 = 0.2 - BETA * 0.75;
    let mut err_prev: f64 = 1e-4;

    while t < t_end {
        if stats.accepted + stats.rejected >= opts.max_steps {
            return Err(Error::Integration {
                what: "step budget exhausted",
                t,
            });
        }
        let h_floor = t.abs().max(1.0) * f64::EPSILON * 16.0;
        if h < h_floor {
            return Err(Error::Integration {
                what: "step size underflow",
                t,
            });
        }
        let last = t + h >= t_end;
        if last {
            h = t_end - t;
        }

        for i in 0..n {
            tmp[i] = y[i] + h * A21 * k1[i];
        }
        f(t + C2 * h, &tmp, &mut k2);
        for i in 0..n {
            tmp[i] = y[i] + h * (A31 * k1[i] + A32 * k2[i]);
        }
        f(t + C3 * h, &tmp, &mut k3);
        for i in 0..n {
            tmp[i] = y[i] + h * (A41 * k1[i] + A42 * k2[i] + A43 * k3[i]);
        }
        f(t + C4 * h, &tmp, &mut k4);
        for i in 0..n {
            tmp[i] = y[i] + h * (A51 * k1[i] + A52 * k2[i] + A53 * k3[i] + A54 * k4[i]);
        }
        f(t + C5 * h, &tmp, &mut k5);
        for i in 0..n {
            tmp[i] =
                y[i] + h * (A61 * k1[i] + A62 * k2[i] + A63 * k3[i] + A64 * k4[i] + A65 * k5[i]);
        }
        f(t + h, &tmp, &mut k6);
        for i in 0..n {
            y_new[i] = y[i] + h * (B1 * k1[i] + B3 * k3[i] + B4 * k4[i] + B5 * k5[i] + B6 * k6[i]);
        }
        f(t + h, &y_new, &mut k7);
        stats.rhs_evals += 6;

        let mut err = 0.0;
        for i in 0..n {
            let e =
                h * (E1 * k1[i] + E3 * k3[i] + E4 * k4[i] + E5 * k5[i] + E6 * k6[i] + E7 * k7[i]);
            let sc = opts.atol + opts.rtol * y[i].abs().max(y_new[i].abs());
            err += (e / sc).powi(2);
        }
        err = (err / n as f64).sqrt();

        if err <= 1.0 {
            let step = DenseStep {
                t0: t,
                t1: t + h,
                y0: &y,
                y1: &y_new,
                f0: &k1,
                f1: &k7,
            };
            on_step(&step);
            t += h;
            std::mem::swap(&mut y, &mut y_new);
            std::mem::swap(&mut k1, &mut k7); // FSAL
            stats.accepted += 1;
            let err_clamped = err.max(1e-10);
            let fac = SAFETY * err_clamped.powf(-EXPO) * err_prev.powf(BETA);
            h = (h * fac.clamp(0.2, 5.0)).min(h_max);
            err_prev = err_clamped;
        } else {
            stats.rejected += 1;
            h *= (SAFETY * err.powf(-0.2)).max(0.1);
        }
    }
    Ok((y, stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponential_decay_fourth_order_accuracy() {
        // halving dt must shrink the error by ~16×
        let exact = (-2.0f64).exp();
        let err = |dt: f64| {
            let steps = (2.0 / dt).round() as usize;
            let trace = rk4(0.0, &[1.0], dt, steps, |_t, y, dy| dy[0] = -y[0]);
            (trace.last().unwrap()[0] - exact).abs()
        };
        let e1 = err(0.1);
        let e2 = err(0.05);
        let order = (e1 / e2).log2();
        assert!(order > 3.5, "observed order {order}");
    }

    #[test]
    fn harmonic_oscillator_conserves_energy() {
        // y'' = -y as a 2-state system
        let trace = rk4(0.0, &[1.0, 0.0], 0.01, 2000, |_t, y, dy| {
            dy[0] = y[1];
            dy[1] = -y[0];
        });
        for state in trace.iter().step_by(100) {
            let energy = state[0] * state[0] + state[1] * state[1];
            assert!((energy - 1.0).abs() < 1e-6, "energy drift: {energy}");
        }
    }

    #[test]
    fn time_dependent_rhs() {
        // dy/dt = t → y = t²/2
        let trace = rk4(0.0, &[0.0], 0.1, 100, |t, _y, dy| dy[0] = t);
        let y = trace.last().unwrap()[0];
        assert!((y - 50.0).abs() < 1e-9);
    }

    #[test]
    fn records_initial_state_and_length() {
        let trace = rk4(0.0, &[3.0], 0.1, 10, |_t, _y, dy| dy[0] = 0.0);
        assert_eq!(trace.len(), 11);
        assert_eq!(trace[0], vec![3.0]);
        assert_eq!(trace[10], vec![3.0]);
    }

    #[test]
    fn flat_recorder_matches_nested_trace() {
        let f = |_t: f64, y: &[f64], dy: &mut [f64]| {
            dy[0] = y[1];
            dy[1] = -y[0];
        };
        let nested = rk4(0.0, &[1.0, 0.0], 0.05, 40, f);
        let flat = rk4_flat(0.0, &[1.0, 0.0], 0.05, 40, f);
        assert_eq!(flat.len(), 41 * 2);
        for (k, row) in nested.iter().enumerate() {
            assert_eq!(&flat[2 * k..2 * k + 2], row.as_slice());
        }
    }

    #[test]
    fn recorder_sees_monotone_times_and_indices() {
        let mut seen = Vec::new();
        rk4_with(
            1.0,
            &[0.0],
            0.25,
            8,
            |_t, _y, dy| dy[0] = 1.0,
            |k, t, y| seen.push((k, t, y[0])),
        );
        assert_eq!(seen.len(), 9);
        assert_eq!(seen[0], (0, 1.0, 0.0));
        for w in seen.windows(2) {
            assert_eq!(w[1].0, w[0].0 + 1);
            assert!((w[1].1 - w[0].1 - 0.25).abs() < 1e-12);
        }
        assert!((seen[8].2 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn rk45_exponential_decay_accuracy_and_stats() {
        let opts = Rk45Options::default();
        let (y, stats) = rk45(0.0, 5.0, &[1.0], &opts, |_t, y, dy| dy[0] = -y[0], |_s| {}).unwrap();
        assert!((y[0] - (-5.0f64).exp()).abs() < 1e-7, "y = {}", y[0]);
        assert!(stats.accepted > 5);
        assert_eq!(stats.rhs_evals, 1 + 6 * (stats.accepted + stats.rejected));
    }

    #[test]
    fn rk45_takes_fewer_steps_at_looser_tolerance() {
        let run = |rtol: f64| {
            let opts = Rk45Options::with_tolerances(rtol, rtol * 1e-3);
            let (_, stats) = rk45(
                0.0,
                20.0,
                &[1.0, 0.0],
                &opts,
                |_t, y, dy| {
                    dy[0] = y[1];
                    dy[1] = -y[0];
                },
                |_s| {},
            )
            .unwrap();
            stats.accepted + stats.rejected
        };
        assert!(run(1e-3) < run(1e-9));
    }

    #[test]
    fn rk45_dense_output_is_continuous_and_accurate() {
        // compare the Hermite interpolant against the exact solution of
        // dy/dt = -y at many intra-step points
        let opts = Rk45Options::with_tolerances(1e-8, 1e-11);
        let mut worst: f64 = 0.0;
        let (_, _) = rk45(
            0.0,
            3.0,
            &[1.0],
            &opts,
            |_t, y, dy| dy[0] = -y[0],
            |step| {
                for j in 0..=10 {
                    let t = step.t0 + (step.t1 - step.t0) * j as f64 / 10.0;
                    worst = worst.max((step.eval(0, t) - (-t).exp()).abs());
                }
            },
        )
        .unwrap();
        assert!(worst < 1e-7, "dense-output error {worst}");
    }

    #[test]
    fn rk45_steps_tile_the_interval() {
        let mut t_prev = 0.0;
        let (_, _) = rk45(
            0.0,
            2.0,
            &[0.0],
            &Rk45Options::default(),
            |t, _y, dy| dy[0] = t,
            |step| {
                assert!((step.t0 - t_prev).abs() < 1e-12);
                assert!(step.t1 > step.t0);
                t_prev = step.t1;
            },
        )
        .unwrap();
        assert!((t_prev - 2.0).abs() < 1e-12);
    }

    #[test]
    fn dense_crossing_matches_exact_time() {
        // e^{-t} crosses 0.5 at ln 2
        let opts = Rk45Options::with_tolerances(1e-9, 1e-12);
        let mut t_cross = None;
        let (_, _) = rk45(
            0.0,
            2.0,
            &[1.0],
            &opts,
            |_t, y, dy| dy[0] = -y[0],
            |step| {
                if let Some(t) = step.find_crossing(0, 0.5, false) {
                    t_cross = Some(t);
                }
            },
        )
        .unwrap();
        let t_cross = t_cross.expect("must cross 0.5");
        assert!(
            (t_cross - std::f64::consts::LN_2).abs() < 1e-7,
            "crossing at {t_cross}"
        );
    }

    #[test]
    fn dense_crossing_catches_sub_step_pulse() {
        // a hand-built step whose Hermite cubic dips through the
        // threshold and back *inside* the step: endpoint comparison
        // alone would miss both edges, the quarter scan catches them.
        // y(s) = 1 - 4 s (1 - s) on s ∈ [0, 1]: crosses 0.5 downward at
        // s = (2 - √2)/4 and upward at s = (2 + √2)/4.
        let (y0, y1) = ([1.0], [1.0]);
        let (f0, f1) = ([-4.0], [4.0]);
        let step = DenseStep {
            t0: 0.0,
            t1: 1.0,
            y0: &y0,
            y1: &y1,
            f0: &f0,
            f1: &f1,
        };
        assert!((step.eval(0, 0.5) - 0.0).abs() < 1e-12);
        let down = step.find_crossing(0, 0.5, false).expect("falling edge");
        let up = step.find_crossing(0, 0.5, true).expect("rising edge");
        let s = std::f64::consts::SQRT_2 / 4.0;
        assert!((down - (0.5 - s)).abs() < 1e-9, "down at {down}");
        assert!((up - (0.5 + s)).abs() < 1e-9, "up at {up}");
        // a threshold the dip never reaches is not reported
        assert!(step.find_crossing(0, -0.5, false).is_none());
        assert!(step.find_crossing(0, -0.5, true).is_none());
    }

    #[test]
    fn rk45_validates_inputs() {
        let f = |_t: f64, _y: &[f64], dy: &mut [f64]| dy[0] = 0.0;
        assert!(rk45(0.0, 0.0, &[1.0], &Rk45Options::default(), f, |_s| {}).is_err());
        let bad_rtol = Rk45Options {
            rtol: 0.0,
            ..Rk45Options::default()
        };
        assert!(rk45(0.0, 1.0, &[1.0], &bad_rtol, f, |_s| {}).is_err());
        let bad_atol = Rk45Options {
            atol: -1.0,
            ..Rk45Options::default()
        };
        assert!(rk45(0.0, 1.0, &[1.0], &bad_atol, f, |_s| {}).is_err());
        let bad_h_max = Rk45Options {
            h_max: Some(-1.0),
            ..Rk45Options::default()
        };
        assert!(rk45(0.0, 1.0, &[1.0], &bad_h_max, f, |_s| {}).is_err());
        let bad_h_init = Rk45Options {
            h_init: Some(f64::NAN),
            ..Rk45Options::default()
        };
        assert!(rk45(0.0, 1.0, &[1.0], &bad_h_init, f, |_s| {}).is_err());
    }

    #[test]
    fn rk45_step_budget_is_enforced() {
        let opts = Rk45Options {
            max_steps: 3,
            ..Rk45Options::default()
        };
        let err = rk45(
            0.0,
            1000.0,
            &[1.0, 0.0],
            &opts,
            |_t, y, dy| {
                dy[0] = y[1];
                dy[1] = -y[0];
            },
            |_s| {},
        )
        .unwrap_err();
        assert!(matches!(err, Error::Integration { .. }));
        assert!(!err.to_string().is_empty());
    }
}
