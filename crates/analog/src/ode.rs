//! Fixed-step RK4 integration for small ODE systems.

/// Integrates `dy/dt = f(t, y)` from `t0` with fixed step `dt` for
/// `steps` steps using classic fourth-order Runge–Kutta, recording every
/// state (including the initial one).
///
/// `f` writes the derivative of `y` into its third argument.
///
/// ```
/// use ivl_analog::ode::rk4;
/// // dy/dt = -y, y(0) = 1 → y(t) = e^{-t}
/// let trace = rk4(0.0, &[1.0], 0.01, 500, |_t, y, dy| dy[0] = -y[0]);
/// let y_final = trace.last().unwrap()[0];
/// assert!((y_final - (-5.0f64).exp()).abs() < 1e-9);
/// ```
pub fn rk4<F>(t0: f64, y0: &[f64], dt: f64, steps: usize, mut f: F) -> Vec<Vec<f64>>
where
    F: FnMut(f64, &[f64], &mut [f64]),
{
    let n = y0.len();
    let mut y = y0.to_vec();
    let mut out = Vec::with_capacity(steps + 1);
    out.push(y.clone());
    let mut k1 = vec![0.0; n];
    let mut k2 = vec![0.0; n];
    let mut k3 = vec![0.0; n];
    let mut k4 = vec![0.0; n];
    let mut tmp = vec![0.0; n];
    for step in 0..steps {
        let t = t0 + step as f64 * dt;
        f(t, &y, &mut k1);
        for i in 0..n {
            tmp[i] = y[i] + 0.5 * dt * k1[i];
        }
        f(t + 0.5 * dt, &tmp, &mut k2);
        for i in 0..n {
            tmp[i] = y[i] + 0.5 * dt * k2[i];
        }
        f(t + 0.5 * dt, &tmp, &mut k3);
        for i in 0..n {
            tmp[i] = y[i] + dt * k3[i];
        }
        f(t + dt, &tmp, &mut k4);
        for i in 0..n {
            y[i] += dt / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
        }
        out.push(y.clone());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponential_decay_fourth_order_accuracy() {
        // halving dt must shrink the error by ~16×
        let exact = (-2.0f64).exp();
        let err = |dt: f64| {
            let steps = (2.0 / dt).round() as usize;
            let trace = rk4(0.0, &[1.0], dt, steps, |_t, y, dy| dy[0] = -y[0]);
            (trace.last().unwrap()[0] - exact).abs()
        };
        let e1 = err(0.1);
        let e2 = err(0.05);
        let order = (e1 / e2).log2();
        assert!(order > 3.5, "observed order {order}");
    }

    #[test]
    fn harmonic_oscillator_conserves_energy() {
        // y'' = -y as a 2-state system
        let trace = rk4(0.0, &[1.0, 0.0], 0.01, 2000, |_t, y, dy| {
            dy[0] = y[1];
            dy[1] = -y[0];
        });
        for state in trace.iter().step_by(100) {
            let energy = state[0] * state[0] + state[1] * state[1];
            assert!((energy - 1.0).abs() < 1e-6, "energy drift: {energy}");
        }
    }

    #[test]
    fn time_dependent_rhs() {
        // dy/dt = t → y = t²/2
        let trace = rk4(0.0, &[0.0], 0.1, 100, |t, _y, dy| dy[0] = t);
        let y = trace.last().unwrap()[0];
        assert!((y - 50.0).abs() < 1e-9);
    }

    #[test]
    fn records_initial_state_and_length() {
        let trace = rk4(0.0, &[3.0], 0.1, 10, |_t, _y, dy| dy[0] = 0.0);
        assert_eq!(trace.len(), 11);
        assert_eq!(trace[0], vec![3.0]);
        assert_eq!(trace[10], vec![3.0]);
    }
}
