//! CMOS inverters over the alpha-power MOSFET model.

use crate::error::Error;
use crate::mosfet::{AlphaPowerParams, Mosfet};

/// A CMOS inverter: pull-down NMOS, pull-up PMOS, and a lumped output
/// load capacitance (fF) including wire and fan-out.
///
/// The output node obeys `C·dV_out/dt = I_P − I_N` with the PMOS
/// evaluated in mirrored convention
/// (`V_GS^P = V_DD − V_in`, `V_DS^P = V_DD − V_out`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Inverter {
    nmos: Mosfet,
    pmos: Mosfet,
    c_load: f64,
}

impl Inverter {
    /// Creates an inverter.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] if `c_load ≤ 0`.
    pub fn new(nmos: Mosfet, pmos: Mosfet, c_load: f64) -> Result<Self, Error> {
        if !(c_load.is_finite() && c_load > 0.0) {
            return Err(Error::InvalidParameter {
                name: "c_load",
                value: c_load,
                constraint: "must be finite and > 0",
            });
        }
        Ok(Inverter { nmos, pmos, c_load })
    }

    /// The UMC-90-like inverter of the paper's ASIC: 0.36 µm NMOS,
    /// 0.70 µm PMOS, with `c_load` fF of output load.
    ///
    /// # Errors
    ///
    /// As [`Inverter::new`].
    pub fn umc90_like(c_load: f64) -> Result<Self, Error> {
        Inverter::new(
            Mosfet::new(AlphaPowerParams::umc90_nmos(), 0.36)?,
            Mosfet::new(AlphaPowerParams::umc90_pmos(), 0.70)?,
            c_load,
        )
    }

    /// The pull-down transistor.
    #[must_use]
    pub fn nmos(&self) -> Mosfet {
        self.nmos
    }

    /// The pull-up transistor.
    #[must_use]
    pub fn pmos(&self) -> Mosfet {
        self.pmos
    }

    /// The output load (fF).
    #[must_use]
    pub fn c_load(&self) -> f64 {
        self.c_load
    }

    /// Returns a copy with both transistor widths scaled by `factor`
    /// (drive-strength process variation; the loads stay untouched, as
    /// in the paper's Fig. 8b/8c experiment where the DUT's drive varies
    /// against a fixed measurement load).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] if `factor ≤ 0`.
    pub fn scaled_width(&self, factor: f64) -> Result<Self, Error> {
        Ok(Inverter {
            nmos: self.nmos.scaled_width(factor)?,
            pmos: self.pmos.scaled_width(factor)?,
            c_load: self.c_load,
        })
    }

    /// Returns a copy with a different load capacitance.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] if `c_load ≤ 0`.
    pub fn with_load(&self, c_load: f64) -> Result<Self, Error> {
        Inverter::new(self.nmos, self.pmos, c_load)
    }

    /// Net charging current (mA) into the output node for input voltage
    /// `v_in`, output voltage `v_out` and supply `v_dd` (ideal ground).
    #[must_use]
    pub fn output_current(&self, v_in: f64, v_out: f64, v_dd: f64) -> f64 {
        self.output_current_rails(v_in, v_out, v_dd, 0.0)
    }

    /// Net charging current with an explicit ground level `v_ss`
    /// (ground-bounce experiments): the NMOS sees `V_GS = v_in − v_ss`
    /// and `V_DS = v_out − v_ss`.
    #[must_use]
    pub fn output_current_rails(&self, v_in: f64, v_out: f64, v_dd: f64, v_ss: f64) -> f64 {
        let i_n = self.nmos.drain_current(v_in - v_ss, v_out - v_ss);
        let i_p = self.pmos.drain_current(v_dd - v_in, v_dd - v_out);
        i_p - i_n
    }

    /// `dV_out/dt` in V/ps (ideal ground).
    #[must_use]
    pub fn dv_out(&self, v_in: f64, v_out: f64, v_dd: f64) -> f64 {
        self.output_current(v_in, v_out, v_dd) / self.c_load
    }

    /// `dV_out/dt` in V/ps with an explicit ground level.
    #[must_use]
    pub fn dv_out_rails(&self, v_in: f64, v_out: f64, v_dd: f64, v_ss: f64) -> f64 {
        self.output_current_rails(v_in, v_out, v_dd, v_ss) / self.c_load
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ode::rk4;

    fn inv() -> Inverter {
        Inverter::umc90_like(5.0).unwrap()
    }

    #[test]
    fn validation() {
        let i = inv();
        assert!(Inverter::new(i.nmos(), i.pmos(), 0.0).is_err());
        assert!(i.with_load(-1.0).is_err());
        assert!(i.scaled_width(0.0).is_err());
        assert_eq!(i.c_load(), 5.0);
    }

    #[test]
    fn dc_behaviour() {
        let i = inv();
        // input low → output pulled high: at v_out just below VDD the
        // PMOS still sources current, NMOS is off
        assert!(i.output_current(0.0, 0.5, 1.0) > 0.0);
        // input high → output pulled low
        assert!(i.output_current(1.0, 0.5, 1.0) < 0.0);
        // rails are stable
        assert_eq!(i.output_current(0.0, 1.0, 1.0), 0.0);
        assert_eq!(i.output_current(1.0, 0.0, 1.0), 0.0);
    }

    #[test]
    fn transient_settles_to_inverted_rail() {
        let i = inv();
        // input steps high at t = 0, output starts at VDD
        let trace = rk4(0.0, &[1.0], 0.05, 2000, |_t, y, dy| {
            dy[0] = i.dv_out(1.0, y[0], 1.0);
        });
        let v_final = trace.last().unwrap()[0];
        assert!(v_final < 0.01, "output must settle low: {v_final}");
        // and the transition passes the midpoint within tens of ps
        let crossed = trace.iter().position(|s| s[0] < 0.5).unwrap();
        let t_cross = crossed as f64 * 0.05;
        assert!(
            (1.0..60.0).contains(&t_cross),
            "implausible delay {t_cross} ps"
        );
    }

    #[test]
    fn wider_device_switches_faster() {
        let slow = inv();
        let fast = slow.scaled_width(1.5).unwrap();
        let cross = |i: Inverter| {
            let trace = rk4(0.0, &[1.0], 0.05, 4000, |_t, y, dy| {
                dy[0] = i.dv_out(1.0, y[0], 1.0);
            });
            trace.iter().position(|s| s[0] < 0.5).unwrap()
        };
        assert!(cross(fast) < cross(slow));
    }

    #[test]
    fn lower_vdd_switches_slower() {
        let i = inv();
        let cross = |vdd: f64| {
            let trace = rk4(0.0, &[vdd], 0.05, 40000, |_t, y, dy| {
                dy[0] = i.dv_out(vdd, y[0], vdd);
            });
            trace
                .iter()
                .position(|s| s[0] < vdd / 2.0)
                .expect("must cross")
        };
        // time ≈ C·(VDD/2)/I with I ∝ (VDD − V_T)^α: the 0.6 V crossing
        // is ~1.6× slower; near-threshold supplies (0.35 V) are far worse
        let fast = cross(1.0);
        let slow = cross(0.6);
        assert!(
            slow as f64 > 1.3 * fast as f64,
            "0.6 V must be slower: {slow} vs {fast}"
        );
        let crawling = cross(0.30);
        assert!(
            crawling as f64 > 8.0 * fast as f64,
            "near-threshold must crawl: {crawling} vs {fast}"
        );
    }
}
