//! Delay characterization and model-deviation measurement: the
//! experimental procedure of Section V (\[12\]'s method).
//!
//! A single inverter inside the chain is treated as a channel. For each
//! applied input pulse width, the digitized input and output signals of
//! that stage yield one `(T, δ)` sample: `T` is the
//! previous-output-to-input offset and `δ` the input-to-output delay at
//! the switching threshold. Sweeping the pulse width sweeps `T`
//! (Fig. 7). Comparing a reference [`DelayPair`]'s prediction with the
//! analog crossing gives the deviation `D(T)` (Figs. 8 and 9).

use ivl_core::delay::{DelayPair, EmpiricalPair, PiecewiseLinearPair};
use ivl_core::{Edge, Signal};

use crate::chain::InverterChain;
use crate::error::Error;
use crate::ode::Rk45Options;
use crate::stimulus::Pulse;
use crate::supply::VddSource;

/// One characterization point: offset `T` and measured delay `δ(T)` of
/// an output transition with the given edge direction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelaySample {
    /// Previous-output-to-input offset `T` (ps).
    pub offset: f64,
    /// Input-to-output delay `δ` (ps).
    pub delay: f64,
    /// Direction of the *output* transition (`Rising` → `δ↑` sample).
    pub edge: Edge,
}

/// One deviation point: offset `T` and `D = t_actual − t_predicted` for
/// an output transition (Figs. 8/9; negative `D` means the analog
/// circuit switched earlier than the model predicted).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviationSample {
    /// Previous-output-to-input offset `T` (ps).
    pub offset: f64,
    /// Deviation `D` (ps).
    pub deviation: f64,
    /// Direction of the output transition.
    pub edge: Edge,
}

/// Which integrator drives the per-pulse chain simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum Integrator {
    /// Fixed-step RK4 over dense [`Waveform`](crate::Waveform)s at the
    /// configured `dt` — the original (slow) reference pipeline.
    Rk4,
    /// Adaptive Dormand–Prince RK45 with crossings-only event
    /// detection: no dense waveform is ever built. The default.
    Rk45(Rk45Options),
}

impl Default for Integrator {
    fn default() -> Self {
        Integrator::Rk45(Rk45Options::default())
    }
}

impl std::fmt::Display for Integrator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Integrator::Rk4 => write!(f, "rk4"),
            Integrator::Rk45(opts) => {
                write!(f, "rk45(rtol = {:e}, atol = {:e})", opts.rtol, opts.atol)
            }
        }
    }
}

/// Sweep configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepConfig {
    /// Pulse widths to apply (ps), each yielding one sample.
    pub widths: Vec<f64>,
    /// Quiet time before the first edge (ps).
    pub settle: f64,
    /// Simulation time after the last edge (ps).
    pub tail: f64,
    /// RK4 step (ps); only used when `integrator` is
    /// [`Integrator::Rk4`].
    pub dt: f64,
    /// Input slew (ps).
    pub slew: f64,
    /// Which inverter stage to measure, 0-based.
    pub stage: usize,
    /// The integrator driving each pulse simulation.
    pub integrator: Integrator,
}

impl Default for SweepConfig {
    /// 24 widths from 12 to 132 ps, 60 ps settle, 250 ps tail, 10 ps
    /// slew, measuring stage 3 of the chain (realistic interior slews,
    /// as in the paper's setup), integrated adaptively (RK45 at
    /// `rtol = 1e-6`, `atol = 1e-9`; the `dt = 0.05` step only applies
    /// after switching to [`Integrator::Rk4`]).
    fn default() -> Self {
        SweepConfig {
            widths: (0..24).map(|i| 12.0 + 5.2 * i as f64).collect(),
            settle: 60.0,
            tail: 250.0,
            dt: 0.05,
            slew: 10.0,
            stage: 3,
            integrator: Integrator::default(),
        }
    }
}

impl SweepConfig {
    /// Checks that this sweep can produce a meaningful result: a
    /// non-empty width axis of finite positive widths, finite timing
    /// knobs, and a positive integration step.
    ///
    /// Every sweep entry point calls this first, so a malformed
    /// configuration fails with a typed [`Error::InvalidSweep`] instead
    /// of panicking or silently measuring nothing.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidSweep`] naming the offending field.
    pub fn validate(&self) -> Result<(), Error> {
        let invalid = |reason: String| Err(Error::InvalidSweep { reason });
        if self.widths.is_empty() {
            return invalid("the width axis is empty".to_owned());
        }
        if let Some(w) = self.widths.iter().find(|w| !(w.is_finite() && **w > 0.0)) {
            return invalid(format!(
                "width axis entries must be finite and > 0, got {w}"
            ));
        }
        for (value, name) in [
            (self.settle, "settle"),
            (self.tail, "tail"),
            (self.slew, "slew"),
        ] {
            if !value.is_finite() {
                return invalid(format!("{name} must be finite, got {value}"));
            }
        }
        if !(self.dt.is_finite() && self.dt > 0.0) {
            return invalid(format!("dt must be finite and > 0, got {}", self.dt));
        }
        Ok(())
    }
}

/// Pairs up the transitions of a channel's digitized input and output
/// signals into `(T, δ)` samples.
///
/// The `n`-th output transition is attributed to the `n`-th input
/// transition; the first input transition has no previous output and is
/// skipped.
///
/// # Errors
///
/// Returns [`Error::DegenerateWaveform`] if the transition counts differ
/// (a pulse was swallowed analogly — reduce the sweep range).
pub fn pair_transitions(input: &Signal, output: &Signal) -> Result<Vec<DelaySample>, Error> {
    if input.len() != output.len() {
        return Err(Error::DegenerateWaveform {
            reason: "input and output transition counts differ",
        });
    }
    let mut out = Vec::new();
    for n in 1..input.len() {
        let t_in = input.transitions()[n].time;
        let prev_out = output.transitions()[n - 1].time;
        let t_out = output.transitions()[n].time;
        out.push(DelaySample {
            offset: t_in - prev_out,
            delay: t_out - t_in,
            edge: output.transitions()[n].value.edge(),
        });
    }
    Ok(out)
}

/// Runs one pulse through the chain and extracts the measured stage's
/// digitized input/output signals at the switching threshold
/// `V_DD/2` (nominal).
///
/// With [`Integrator::Rk45`] this never builds a dense waveform: the
/// crossings-only fast path digitizes straight from event detection on
/// the integrator's dense output.
pub(crate) fn run_one(
    chain: &InverterChain,
    vdd: &VddSource,
    config: &SweepConfig,
    width: f64,
    inverted: bool,
) -> Result<(Signal, Signal), Error> {
    let stim = if inverted {
        Pulse::inverted(config.settle, width, config.slew, vdd.nominal())?
    } else {
        Pulse::new(config.settle, width, config.slew, vdd.nominal())?
    };
    let t_end = config.settle + width + config.tail;
    let threshold = vdd.nominal() / 2.0;
    match &config.integrator {
        Integrator::Rk4 => {
            let run = chain.simulate(&stim, vdd, t_end, config.dt)?;
            let input = run.stage_input(config.stage).digitize(threshold)?;
            let output = run.node(config.stage).digitize(threshold)?;
            Ok((input, output))
        }
        Integrator::Rk45(opts) => {
            let run = chain.simulate_crossings(&stim, vdd, t_end, threshold, opts)?;
            Ok((
                run.stage_input(config.stage).clone(),
                run.node(config.stage).clone(),
            ))
        }
    }
}

/// Sweeps pulse widths and collects `(T, δ)` samples for the measured
/// stage. With `inverted = false` the second (and interesting) sample of
/// each run is the edge pair opposite to `inverted = true`, so calling
/// both orientations characterizes `δ↑` and `δ↓`.
///
/// # Errors
///
/// Propagates simulation errors; sweep points whose pulses are swallowed
/// analogly are skipped.
#[deprecated(
    since = "0.1.0",
    note = "superseded by `SweepRunner::sweep_samples` (parallel, bit-identical) and the \
            `faithful::Experiment` facade; this serial path remains as a compat wrapper"
)]
pub fn sweep_samples(
    chain: &InverterChain,
    vdd: &VddSource,
    config: &SweepConfig,
    inverted: bool,
) -> Result<Vec<DelaySample>, Error> {
    config.validate()?;
    let runs = config
        .widths
        .iter()
        .map(|&w| run_one(chain, vdd, config, w, inverted))
        .collect();
    collect_samples(runs, config)
}

/// Folds per-width run results into samples — the single definition of
/// the sweep's error semantics, shared by the serial entry points and
/// [`SweepRunner`](crate::SweepRunner): swallowed pulses
/// ([`Error::Core`] / [`Error::DegenerateWaveform`]) are skipped, other
/// errors propagate, an empty sweep is a [`Error::MissingCrossing`].
pub(crate) fn collect_samples(
    runs: Vec<Result<(Signal, Signal), Error>>,
    config: &SweepConfig,
) -> Result<Vec<DelaySample>, Error> {
    let mut all = Vec::new();
    for run in runs {
        match run {
            Ok((input, output)) => {
                if let Ok(samples) = pair_transitions(&input, &output) {
                    // keep only the T-dependent samples (n ≥ 1)
                    all.extend(samples);
                }
            }
            Err(Error::Core(_)) | Err(Error::DegenerateWaveform { .. }) => continue,
            Err(e) => return Err(e),
        }
    }
    if all.is_empty() {
        return Err(Error::MissingCrossing {
            what: "any usable sample in sweep",
            pulse_width: config.widths.first().copied().unwrap_or(0.0),
        });
    }
    Ok(all)
}

/// Splits samples by output edge into `(δ↑, δ↓)`, each sorted by
/// offset (shared by the serial and parallel pipelines).
pub(crate) fn partition_by_edge(
    samples: impl IntoIterator<Item = DelaySample>,
) -> (Vec<DelaySample>, Vec<DelaySample>) {
    let mut up = Vec::new();
    let mut down = Vec::new();
    for s in samples {
        match s.edge {
            Edge::Rising => up.push(s),
            Edge::Falling => down.push(s),
        }
    }
    let by_offset = |a: &DelaySample, b: &DelaySample| a.offset.total_cmp(&b.offset);
    up.sort_by(by_offset);
    down.sort_by(by_offset);
    (up, down)
}

/// Turns measured samples into deviations against a reference model
/// (shared by the serial and parallel pipelines).
pub(crate) fn apply_reference<D: DelayPair + ?Sized>(
    samples: &[DelaySample],
    reference: &D,
) -> Vec<DeviationSample> {
    samples
        .iter()
        .map(|s| DeviationSample {
            offset: s.offset,
            deviation: s.delay - reference.delta(s.edge, s.offset),
            edge: s.edge,
        })
        .collect()
}

/// Characterizes both delay functions of the measured stage: returns
/// `(δ↑ samples, δ↓ samples)` sorted by offset.
///
/// # Errors
///
/// As [`sweep_samples`].
#[deprecated(
    since = "0.1.0",
    note = "superseded by `SweepRunner::characterize` (parallel, bit-identical) and the \
            `faithful::Experiment` facade; this serial path remains as a compat wrapper"
)]
#[allow(deprecated)]
pub fn characterize(
    chain: &InverterChain,
    vdd: &VddSource,
    config: &SweepConfig,
) -> Result<(Vec<DelaySample>, Vec<DelaySample>), Error> {
    let mut all = Vec::new();
    for inverted in [false, true] {
        all.extend(sweep_samples(chain, vdd, config, inverted)?);
    }
    Ok(partition_by_edge(all))
}

/// Sorts measured samples by offset and drops points violating strict
/// monotonicity or concavity (measurement noise).
fn clean_samples(samples: &[DelaySample]) -> Vec<(f64, f64)> {
    let mut sorted: Vec<(f64, f64)> = samples.iter().map(|s| (s.offset, s.delay)).collect();
    sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut kept: Vec<(f64, f64)> = Vec::new();
    let mut prev_slope = f64::INFINITY;
    for (t, d) in sorted {
        match kept.last() {
            None => kept.push((t, d)),
            Some(&(pt, pd)) => {
                if t <= pt || d <= pd {
                    continue;
                }
                let slope = (d - pd) / (t - pt);
                if slope > prev_slope * 1.05 {
                    continue; // convexity outlier
                }
                prev_slope = slope;
                kept.push((t, d));
            }
        }
    }
    kept
}

/// Builds an involution-exact [`PiecewiseLinearPair`] from measured `δ↑`
/// samples (the derived `δ↓` is only meaningful near `T ∈ [−δ_min, 0]`,
/// which is the faithfulness-relevant region).
///
/// # Errors
///
/// Returns [`Error::Core`] if fewer than two usable points remain.
pub fn to_piecewise(up_samples: &[DelaySample]) -> Result<PiecewiseLinearPair, Error> {
    PiecewiseLinearPair::from_up_samples(&clean_samples(up_samples)).map_err(Error::Core)
}

/// Builds an [`EmpiricalPair`] from independently measured `δ↑` and `δ↓`
/// samples — the right reference for deviation experiments, which probe
/// both edges at positive offsets.
///
/// # Errors
///
/// Returns [`Error::Core`] if either sample set is unusable.
pub fn to_empirical(
    up_samples: &[DelaySample],
    down_samples: &[DelaySample],
) -> Result<EmpiricalPair, Error> {
    EmpiricalPair::from_samples(&clean_samples(up_samples), &clean_samples(down_samples))
        .map_err(Error::Core)
}

/// Sweeps pulse widths on a (possibly perturbed) chain/supply and
/// reports the deviation `D(T)` between the analog output crossings and
/// the prediction of `reference` (Figs. 8 and 9).
///
/// The prediction uses the *measured* previous output crossing as the
/// single-history anchor, exactly as in the paper's evaluation: for the
/// `n`-th transition, `t̂_out = t_in + δ_ref(T)` with
/// `T = t_in − t_out^{prev,measured}`, and `D = t_out^{measured} − t̂_out`.
///
/// # Errors
///
/// As [`sweep_samples`].
#[deprecated(
    since = "0.1.0",
    note = "superseded by `SweepRunner::measure_deviations` (parallel, bit-identical) and the \
            `faithful::Experiment` facade; this serial path remains as a compat wrapper"
)]
#[allow(deprecated)]
pub fn measure_deviations<D: DelayPair + ?Sized>(
    chain: &InverterChain,
    vdd: &VddSource,
    config: &SweepConfig,
    reference: &D,
    inverted: bool,
) -> Result<Vec<DeviationSample>, Error> {
    let samples = sweep_samples(chain, vdd, config, inverted)?;
    Ok(apply_reference(&samples, reference))
}

#[cfg(test)]
#[allow(deprecated)] // the serial compat wrappers are tested on purpose
mod tests {
    use super::*;
    use ivl_core::Bit;

    fn chain() -> InverterChain {
        InverterChain::umc90_like(7).unwrap()
    }

    fn fast_config() -> SweepConfig {
        SweepConfig {
            widths: (0..8).map(|i| 20.0 + 12.0 * i as f64).collect(),
            dt: 0.1,
            ..SweepConfig::default()
        }
    }

    #[test]
    fn pair_transitions_basic() {
        let input = Signal::pulse(10.0, 5.0).unwrap();
        let output = Signal::new(
            Bit::One,
            vec![
                ivl_core::Transition::new(12.0, Bit::Zero),
                ivl_core::Transition::new(17.5, Bit::One),
            ],
        )
        .unwrap();
        let samples = pair_transitions(&input, &output).unwrap();
        assert_eq!(samples.len(), 1);
        let s = samples[0];
        assert!((s.offset - 3.0).abs() < 1e-12); // 15 − 12
        assert!((s.delay - 2.5).abs() < 1e-12); // 17.5 − 15
        assert_eq!(s.edge, Edge::Rising);
    }

    #[test]
    fn pair_transitions_rejects_mismatch() {
        let input = Signal::pulse(10.0, 5.0).unwrap();
        let output = Signal::from_times(Bit::One, &[12.0]).unwrap();
        assert!(pair_transitions(&input, &output).is_err());
    }

    #[test]
    fn sweep_produces_increasing_offsets() {
        let samples = sweep_samples(&chain(), &VddSource::dc(1.0), &fast_config(), false).unwrap();
        assert!(samples.len() >= 6, "got {}", samples.len());
        // wider pulses → larger T
        for w in samples.windows(2) {
            assert!(w[1].offset > w[0].offset, "{samples:?}");
        }
        // delays saturate: the spread between consecutive δ shrinks
        let d_first = samples[1].delay - samples[0].delay;
        let d_last = samples[samples.len() - 1].delay - samples[samples.len() - 2].delay;
        assert!(d_last < d_first, "saturation expected: {samples:?}");
    }

    #[test]
    fn characterize_yields_both_edges() {
        let (up, down) = characterize(&chain(), &VddSource::dc(1.0), &fast_config()).unwrap();
        assert!(!up.is_empty());
        assert!(!down.is_empty());
        assert!(up.iter().all(|s| s.edge == Edge::Rising));
        assert!(down.iter().all(|s| s.edge == Edge::Falling));
        // delays are positive at these comfortable offsets
        assert!(up.iter().all(|s| s.delay > 0.0));
        assert!(down.iter().all(|s| s.delay > 0.0));
    }

    #[test]
    fn to_piecewise_builds_a_causal_pair() {
        let (up, _) = characterize(&chain(), &VddSource::dc(1.0), &fast_config()).unwrap();
        let pair = to_piecewise(&up).unwrap();
        assert!(pair.delta_up(0.0) > 0.0);
        // the pair reproduces the measured samples it kept
        let (t_lo, t_hi) = pair.t_range();
        assert!(t_lo < t_hi);
    }

    #[test]
    fn nominal_self_deviation_is_small() {
        // characterizing the nominal chain and predicting the *same*
        // chain must give tiny deviations (sanity of the whole pipeline).
        // Stage 3 is odd, so the `inverted = true` stimulus produces the
        // rising output edge that matches the fitted δ↑ samples.
        let c = chain();
        let vdd = VddSource::dc(1.0);
        let cfg = fast_config();
        let (up, _) = characterize(&c, &vdd, &cfg).unwrap();
        let pair = to_piecewise(&up).unwrap();
        let devs = measure_deviations(&c, &vdd, &cfg, &pair, true).unwrap();
        for d in &devs {
            assert_eq!(d.edge, Edge::Rising);
            assert!(d.deviation.abs() < 0.5, "self-deviation {d:?} too large");
        }
    }

    #[test]
    fn width_variation_shifts_deviations_one_sided() {
        // +10 % width → analog faster → D < 0 (Fig. 8b); −10 % → D > 0
        let c = chain();
        let vdd = VddSource::dc(1.0);
        let cfg = fast_config();
        let (up, _) = characterize(&c, &vdd, &cfg).unwrap();
        let pair = to_piecewise(&up).unwrap();
        let fast = c.scaled_width(1.1).unwrap();
        let slow = c.scaled_width(0.9).unwrap();
        let dev_fast = measure_deviations(&fast, &vdd, &cfg, &pair, true).unwrap();
        let dev_slow = measure_deviations(&slow, &vdd, &cfg, &pair, true).unwrap();
        let mean =
            |v: &[DeviationSample]| v.iter().map(|s| s.deviation).sum::<f64>() / v.len() as f64;
        assert!(mean(&dev_fast) < -0.1, "fast: {}", mean(&dev_fast));
        assert!(mean(&dev_slow) > 0.1, "slow: {}", mean(&dev_slow));
    }
}
