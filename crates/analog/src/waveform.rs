//! Uniformly sampled analog waveforms.

use ivl_core::{Bit, Signal, SignalBuilder};

use crate::error::Error;

/// A uniformly sampled voltage waveform starting at `t0` with step `dt`.
///
/// ```
/// use ivl_analog::Waveform;
/// let w = Waveform::from_fn(0.0, 0.5, 9, |t| t); // ramp 0..4 V
/// assert_eq!(w.value_at(2.25), 2.25);
/// let ups = w.rising_crossings(3.0);
/// assert_eq!(ups.len(), 1);
/// assert!((ups[0] - 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Waveform {
    t0: f64,
    dt: f64,
    samples: Vec<f64>,
}

impl Waveform {
    /// Creates a waveform from raw samples.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] if `dt ≤ 0` or fewer than two
    /// samples are given.
    pub fn new(t0: f64, dt: f64, samples: Vec<f64>) -> Result<Self, Error> {
        if !(dt.is_finite() && dt > 0.0) {
            return Err(Error::InvalidParameter {
                name: "dt",
                value: dt,
                constraint: "must be finite and > 0",
            });
        }
        if samples.len() < 2 {
            return Err(Error::DegenerateWaveform {
                reason: "need at least two samples",
            });
        }
        Ok(Waveform { t0, dt, samples })
    }

    /// Extracts one state component from a flat row-major state buffer
    /// (`rows` of `stride` values each, as produced by
    /// [`rk4_flat`](crate::ode::rk4_flat)): sample `k` is
    /// `flat[k * stride + offset]`.
    ///
    /// # Errors
    ///
    /// As [`Waveform::new`]; additionally requires `offset < stride`
    /// and a buffer length that is a multiple of `stride`.
    pub fn from_strided(
        t0: f64,
        dt: f64,
        flat: &[f64],
        offset: usize,
        stride: usize,
    ) -> Result<Self, Error> {
        if stride == 0 || offset >= stride || !flat.len().is_multiple_of(stride) {
            return Err(Error::DegenerateWaveform {
                reason: "flat buffer shape does not match stride/offset",
            });
        }
        Waveform::new(
            t0,
            dt,
            flat.iter().skip(offset).step_by(stride).copied().collect(),
        )
    }

    /// Samples `f` at `n` points spaced `dt` from `t0`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `dt ≤ 0`.
    #[must_use]
    pub fn from_fn<F: Fn(f64) -> f64>(t0: f64, dt: f64, n: usize, f: F) -> Self {
        assert!(n >= 2 && dt > 0.0);
        let samples = (0..n).map(|i| f(t0 + i as f64 * dt)).collect();
        Waveform { t0, dt, samples }
    }

    /// Start time.
    #[must_use]
    pub fn t0(&self) -> f64 {
        self.t0
    }

    /// Sample step.
    #[must_use]
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// End time (time of the last sample).
    #[must_use]
    pub fn t_end(&self) -> f64 {
        self.t0 + (self.samples.len() - 1) as f64 * self.dt
    }

    /// The raw samples.
    #[must_use]
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Linear-interpolated value at `t` (clamped to the ends).
    #[must_use]
    pub fn value_at(&self, t: f64) -> f64 {
        let x = (t - self.t0) / self.dt;
        if x <= 0.0 {
            return self.samples[0];
        }
        let last = self.samples.len() - 1;
        if x >= last as f64 {
            return self.samples[last];
        }
        let i = x.floor() as usize;
        let frac = x - i as f64;
        self.samples[i] * (1.0 - frac) + self.samples[i + 1] * frac
    }

    /// Times at which the waveform crosses `threshold` going up, by
    /// linear interpolation between samples.
    #[must_use]
    pub fn rising_crossings(&self, threshold: f64) -> Vec<f64> {
        self.crossings_impl(threshold, true)
    }

    /// Times at which the waveform crosses `threshold` going down.
    #[must_use]
    pub fn falling_crossings(&self, threshold: f64) -> Vec<f64> {
        self.crossings_impl(threshold, false)
    }

    fn crossings_impl(&self, threshold: f64, rising: bool) -> Vec<f64> {
        let mut out = Vec::new();
        for i in 1..self.samples.len() {
            let (a, b) = (self.samples[i - 1], self.samples[i]);
            let crossed = if rising {
                a < threshold && b >= threshold
            } else {
                a > threshold && b <= threshold
            };
            if crossed {
                let frac = (threshold - a) / (b - a);
                out.push(self.t0 + (i as f64 - 1.0 + frac) * self.dt);
            }
        }
        out
    }

    /// Digitizes the waveform into a binary [`Signal`] by thresholding
    /// at `threshold` (no hysteresis; the analog waveforms of a CMOS
    /// chain are monotone between switching events, so simple
    /// thresholding is clean).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Core`] if crossing times are degenerate (e.g.
    /// a waveform sitting exactly at the threshold).
    pub fn digitize(&self, threshold: f64) -> Result<Signal, Error> {
        let initial = Bit::from(self.samples[0] >= threshold);
        let mut builder = SignalBuilder::new(initial);
        let mut state = initial;
        for i in 1..self.samples.len() {
            let (a, b) = (self.samples[i - 1], self.samples[i]);
            let next = match state {
                Bit::Zero if a < threshold && b >= threshold => Bit::One,
                Bit::One if a > threshold && b <= threshold => Bit::Zero,
                _ => state,
            };
            if next != state {
                let frac = (threshold - a) / (b - a);
                builder
                    .push_time(self.t0 + (i as f64 - 1.0 + frac) * self.dt)
                    .map_err(Error::Core)?;
                state = next;
            }
        }
        Ok(builder.finish())
    }

    /// Applies `f` to every sample, returning a new waveform (e.g. a
    /// sense-amplifier gain).
    #[must_use]
    pub fn map<F: Fn(f64) -> f64>(&self, f: F) -> Self {
        Waveform {
            t0: self.t0,
            dt: self.dt,
            samples: self.samples.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Root-mean-square difference against another waveform over the
    /// overlapping time range (resampling `other` onto this grid).
    #[must_use]
    pub fn rms_difference(&self, other: &Waveform) -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for (i, &v) in self.samples.iter().enumerate() {
            let t = self.t0 + i as f64 * self.dt;
            if t >= other.t0() && t <= other.t_end() {
                let d = v - other.value_at(t);
                sum += d * d;
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            (sum / n as f64).sqrt()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(Waveform::new(0.0, 0.0, vec![0.0, 1.0]).is_err());
        assert!(Waveform::new(0.0, -0.1, vec![0.0, 1.0]).is_err());
        assert!(Waveform::new(0.0, 0.1, vec![0.0]).is_err());
        assert!(Waveform::new(0.0, 0.1, vec![0.0, 1.0]).is_ok());
    }

    #[test]
    fn interpolation_and_clamping() {
        let w = Waveform::new(10.0, 1.0, vec![0.0, 2.0, 4.0]).unwrap();
        assert_eq!(w.value_at(10.0), 0.0);
        assert_eq!(w.value_at(10.5), 1.0);
        assert_eq!(w.value_at(12.0), 4.0);
        assert_eq!(w.value_at(5.0), 0.0); // clamped left
        assert_eq!(w.value_at(20.0), 4.0); // clamped right
        assert_eq!(w.t0(), 10.0);
        assert_eq!(w.dt(), 1.0);
        assert_eq!(w.t_end(), 12.0);
        assert_eq!(w.samples().len(), 3);
    }

    #[test]
    fn crossing_detection_precise() {
        // sine wave crossing 0 at multiples of π
        let w = Waveform::from_fn(0.0, 0.01, 1001, |t| t.sin());
        let ups = w.rising_crossings(0.0);
        let downs = w.falling_crossings(0.0);
        assert_eq!(ups.len(), 1); // at 2π ≈ 6.28 within [0,10]
        assert!((ups[0] - std::f64::consts::TAU).abs() < 1e-3);
        assert_eq!(downs.len(), 2); // at π and 3π
        assert!((downs[0] - std::f64::consts::PI).abs() < 1e-3);
    }

    #[test]
    fn digitize_produces_valid_signal() {
        let w = Waveform::from_fn(0.0, 0.01, 2001, |t| (t * 1.5).sin());
        let s = w.digitize(0.5).unwrap();
        assert_eq!(s.initial(), Bit::Zero);
        assert!(s.len() >= 8);
        // transitions alternate & strictly increase by construction;
        // the first crossing is at sin(1.5t) = 0.5, i.e. t = (π/6)/1.5
        let first = s.transitions()[0].time;
        assert!((first - std::f64::consts::PI / 6.0 / 1.5).abs() < 1e-3);
    }

    #[test]
    fn digitize_initial_high() {
        let w = Waveform::from_fn(0.0, 0.1, 50, |t| 1.0 - t * 0.2);
        let s = w.digitize(0.5).unwrap();
        assert_eq!(s.initial(), Bit::One);
        assert_eq!(s.len(), 1);
        assert!((s.transitions()[0].time - 2.5).abs() < 1e-9);
    }

    #[test]
    fn map_and_rms() {
        let w = Waveform::from_fn(0.0, 0.1, 100, |t| t);
        let scaled = w.map(|v| 0.15 * v);
        assert!((scaled.value_at(5.0) - 0.75).abs() < 1e-12);
        let shifted = w.map(|v| v + 1.0);
        assert!((w.rms_difference(&shifted) - 1.0).abs() < 1e-9);
        assert!(w.rms_difference(&w.clone()) < 1e-12);
    }

    #[test]
    fn from_strided_extracts_columns() {
        // two interleaved states: [a0 b0 a1 b1 a2 b2]
        let flat = [0.0, 10.0, 1.0, 11.0, 2.0, 12.0];
        let a = Waveform::from_strided(0.0, 0.5, &flat, 0, 2).unwrap();
        let b = Waveform::from_strided(0.0, 0.5, &flat, 1, 2).unwrap();
        assert_eq!(a.samples(), &[0.0, 1.0, 2.0]);
        assert_eq!(b.samples(), &[10.0, 11.0, 12.0]);
        assert!(Waveform::from_strided(0.0, 0.5, &flat, 2, 2).is_err());
        assert!(Waveform::from_strided(0.0, 0.5, &flat[..5], 0, 2).is_err());
        assert!(Waveform::from_strided(0.0, 0.5, &flat, 0, 0).is_err());
    }

    #[test]
    fn from_fn_grid() {
        let w = Waveform::from_fn(2.0, 0.5, 5, |t| t * t);
        assert_eq!(w.samples().len(), 5);
        assert_eq!(w.value_at(4.0), 16.0);
    }
}
