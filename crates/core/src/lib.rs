//! # ivl-core
//!
//! Core library of the *faithful binary circuit model with adversarial
//! noise*, a reproduction of Függer, Maier, Najvirt, Nowak and Schmid,
//! "A Faithful Binary Circuit Model with Adversarial Noise", DATE 2018.
//!
//! The crate provides the three building blocks of the paper's circuit
//! model:
//!
//! * **Signals** ([`Signal`], [`Transition`]) — continuous-time binary
//!   waveforms given as alternating transition lists (Section II of the
//!   paper, conditions S1–S3).
//! * **Involution delay functions** ([`delay`]) — pairs of strictly
//!   increasing concave delay functions `δ↑`/`δ↓` whose negatives are
//!   mutual inverses, `−δ↑(−δ↓(T)) = T`, including the closed-form
//!   [`delay::ExpChannel`] family derived from first-order RC switching.
//! * **Channels** ([`channel`]) — single-history channels mapping input
//!   signals to output signals via the paper's output-transition
//!   generation algorithm with non-FIFO cancellation. Implementations
//!   cover the classical models (pure, inertial, degradation/DDM), the
//!   deterministic involution channel of DATE'15 and the paper's
//!   η-involution channel with per-transition adversarial noise
//!   ([`channel::EtaInvolutionChannel`], [`noise`]).
//!
//! # Quick example
//!
//! ```
//! use ivl_core::delay::ExpChannel;
//! use ivl_core::channel::{Channel, EtaInvolutionChannel};
//! use ivl_core::noise::{EtaBounds, WorstCaseAdversary};
//! use ivl_core::Signal;
//!
//! # fn main() -> Result<(), ivl_core::Error> {
//! let delay = ExpChannel::new(1.0, 0.5, 0.5)?; // τ = 1, T_p = 0.5, V_th = ½
//! let bounds = EtaBounds::new(0.05, 0.05)?;
//! let mut ch = EtaInvolutionChannel::new(delay, bounds, WorstCaseAdversary);
//! let input = Signal::pulse(0.0, 2.0)?;
//! let output = ch.apply(&input);
//! assert_eq!(output.len(), 2); // wide pulse propagates
//! # Ok(())
//! # }
//! ```
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bit;
pub mod channel;
pub mod delay;
mod error;
pub mod factory;
pub mod noise;
pub mod pulse;
pub mod signal;
mod signal_ops;

pub use bit::{Bit, Edge};
pub use error::Error;
pub use pulse::{Pulse, PulseStats};
pub use signal::{Signal, SignalBuilder, Transition};

/// Simulation time, in arbitrary but consistent units.
///
/// All of `ivl-core` is unit-agnostic; the bench harness uses seconds for
/// the theory experiments and picoseconds for the analog experiments.
pub type Time = f64;
