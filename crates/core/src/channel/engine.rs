//! The shared single-history engine implementing the paper's output
//! transition generation algorithm.

use std::collections::VecDeque;

use crate::channel::FeedEffect;
use crate::signal::Transition;

/// When does a newly computed output transition cancel against the most
/// recent retained one?
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum CancelRule {
    /// Non-FIFO cancellation (the paper's rule): the `n`-th and `m`-th
    /// pending transitions cancel if `n < m` but `t_n + δ_n ≥ t_m + δ_m`.
    NonFifo,
    /// Minimum-separation cancellation (inertial delays): cancel the pair
    /// if the new output would follow the previous one within less than
    /// the window.
    MinSeparation(f64),
}

impl CancelRule {
    fn cancels(self, last_retained: f64, new_time: f64) -> bool {
        match self {
            CancelRule::NonFifo => last_retained >= new_time,
            CancelRule::MinSeparation(w) => new_time - last_retained < w,
        }
    }
}

/// Single-history channel state machine.
///
/// Tracks `(t_{n−1}, δ_{n−1})` for the offset recursion and the stack of
/// retained (scheduled, not cancelled) output transitions for pairwise
/// cancellation. Concrete channels compute the delay `δ_n` and delegate
/// everything else here.
#[derive(Debug, Clone)]
pub(crate) struct EngineCore {
    rule: CancelRule,
    t_prev: f64,
    d_prev: f64,
    count: usize,
    /// Retained outputs in increasing time order; cancellation pops from
    /// the back, delivery bookkeeping drops from the front.
    retained: VecDeque<Transition>,
}

impl EngineCore {
    pub(crate) fn new(rule: CancelRule) -> Self {
        EngineCore {
            rule,
            t_prev: f64::NEG_INFINITY,
            d_prev: 0.0,
            count: 0,
            retained: VecDeque::new(),
        }
    }

    /// The previous-output-to-input offset `T = t − t_{n−1} − δ_{n−1}`
    /// for a new input transition at `t` (`+∞` before the first
    /// transition, matching `t_0 = −∞, δ_0 = 0`).
    pub(crate) fn offset(&self, t: f64) -> f64 {
        // IEEE-754 arithmetic gives the right answers at the extended
        // points: t − (−∞) − 0 = +∞ for the first transition, and
        // t − t_prev − (−∞) = +∞ after a domain-guarded transition.
        t - self.t_prev - self.d_prev
    }

    /// Number of input transitions fed so far.
    pub(crate) fn count(&self) -> usize {
        self.count
    }

    /// Feeds an input transition whose delay `δ_n` has already been
    /// computed (`−∞` encodes the domain-guard case).
    pub(crate) fn feed(&mut self, input: Transition, delay: f64) -> FeedEffect {
        debug_assert!(!delay.is_nan(), "delay must not be NaN");
        debug_assert!(
            input.time > self.t_prev,
            "input transitions must be fed in strictly increasing time order"
        );
        self.t_prev = input.time;
        self.d_prev = delay;
        self.count += 1;
        let on = input.time + delay;
        let cancels = match self.retained.back() {
            Some(last) => self.rule.cancels(last.time, on),
            None => on == f64::NEG_INFINITY,
        };
        if cancels {
            match self.retained.pop_back() {
                Some(cancelled) => FeedEffect::CancelledPair { cancelled },
                None => FeedEffect::Dropped,
            }
        } else {
            if let Some(last) = self.retained.back() {
                debug_assert_ne!(
                    last.value, input.value,
                    "pairwise cancellation must preserve alternation"
                );
            }
            let tr = Transition::new(on, input.value);
            self.retained.push_back(tr);
            FeedEffect::Scheduled(tr)
        }
    }

    /// Drops retained entries scheduled at or before `before` (they have
    /// been delivered by the simulator and can no longer cancel).
    pub(crate) fn discard_delivered(&mut self, before: f64) {
        while self.retained.front().is_some_and(|tr| tr.time <= before) {
            self.retained.pop_front();
        }
    }

    pub(crate) fn reset(&mut self) {
        self.t_prev = f64::NEG_INFINITY;
        self.d_prev = 0.0;
        self.count = 0;
        self.retained.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bit::Bit;

    fn tr(t: f64, v: u8) -> Transition {
        Transition::new(t, if v == 1 { Bit::One } else { Bit::Zero })
    }

    #[test]
    fn offset_extended_points() {
        let e = EngineCore::new(CancelRule::NonFifo);
        assert_eq!(e.offset(5.0), f64::INFINITY); // before first transition

        let mut e = EngineCore::new(CancelRule::NonFifo);
        e.feed(tr(1.0, 1), 0.5);
        assert_eq!(e.offset(2.0), 0.5); // 2 − 1 − 0.5

        // after a domain-guarded (−∞ delay) transition, offset is +∞
        let mut e = EngineCore::new(CancelRule::NonFifo);
        e.feed(tr(1.0, 1), 2.0);
        e.feed(tr(1.5, 0), f64::NEG_INFINITY);
        assert_eq!(e.offset(3.0), f64::INFINITY);
    }

    #[test]
    fn non_fifo_cancellation() {
        let mut e = EngineCore::new(CancelRule::NonFifo);
        assert_eq!(e.feed(tr(0.0, 1), 3.0), FeedEffect::Scheduled(tr(3.0, 1)));
        // output at 2.5 would precede the pending one at 3.0 → pair cancels
        assert_eq!(
            e.feed(tr(1.0, 0), 1.5),
            FeedEffect::CancelledPair {
                cancelled: tr(3.0, 1)
            }
        );
        // stack is empty again
        assert_eq!(e.feed(tr(2.0, 1), 1.0), FeedEffect::Scheduled(tr(3.0, 1)));
    }

    #[test]
    fn equal_times_cancel_under_non_fifo() {
        let mut e = EngineCore::new(CancelRule::NonFifo);
        e.feed(tr(0.0, 1), 2.0);
        assert!(matches!(
            e.feed(tr(1.0, 0), 1.0), // output also at 2.0
            FeedEffect::CancelledPair { .. }
        ));
    }

    #[test]
    fn cascaded_cancellation_exposes_older_entries() {
        let mut e = EngineCore::new(CancelRule::NonFifo);
        e.feed(tr(0.0, 1), 5.0); // pending at 5
        e.feed(tr(1.0, 0), 8.0); // pending at 9
                                 // new output at 7 ≤ 9 → cancels the 9-pair; 5 survives
        assert_eq!(
            e.feed(tr(2.0, 1), 5.0),
            FeedEffect::CancelledPair {
                cancelled: tr(9.0, 0)
            }
        );
        // next transition now compares against 5
        assert_eq!(
            e.feed(tr(3.0, 0), 1.0), // output at 4 ≤ 5 → cancel with 5
            FeedEffect::CancelledPair {
                cancelled: tr(5.0, 1)
            }
        );
    }

    #[test]
    fn minus_infinity_delay_cancels_or_drops() {
        let mut e = EngineCore::new(CancelRule::NonFifo);
        // no pending partner → dropped alone
        assert_eq!(e.feed(tr(0.0, 1), f64::NEG_INFINITY), FeedEffect::Dropped);
        // with a pending partner → pair cancellation
        e.feed(tr(1.0, 0), 2.0);
        assert!(matches!(
            e.feed(tr(1.5, 1), f64::NEG_INFINITY),
            FeedEffect::CancelledPair { .. }
        ));
    }

    #[test]
    fn min_separation_rule() {
        let mut e = EngineCore::new(CancelRule::MinSeparation(1.0));
        e.feed(tr(0.0, 1), 2.0); // out at 2
                                 // out at 2.5: separation 0.5 < 1 → cancel pair
        assert!(matches!(
            e.feed(tr(0.5, 0), 2.0),
            FeedEffect::CancelledPair { .. }
        ));
        // rebuild: out at 3, then out at 4.5 (separation 1.5) → retained
        e.feed(tr(1.0, 1), 2.0);
        assert!(matches!(e.feed(tr(2.5, 0), 2.0), FeedEffect::Scheduled(_)));
    }

    #[test]
    fn discard_delivered_prevents_cancellation_against_past() {
        let mut e = EngineCore::new(CancelRule::NonFifo);
        e.feed(tr(0.0, 1), 1.0); // out at 1
        e.discard_delivered(1.0); // simulator delivered it
                                  // a later non-FIFO output no longer has a partner
        assert_eq!(e.feed(tr(2.0, 0), -1.5), FeedEffect::Scheduled(tr(0.5, 0)));
    }

    #[test]
    fn count_and_reset() {
        let mut e = EngineCore::new(CancelRule::NonFifo);
        e.feed(tr(0.0, 1), 1.0);
        e.feed(tr(5.0, 0), 1.0);
        assert_eq!(e.count(), 2);
        e.reset();
        assert_eq!(e.count(), 0);
        assert_eq!(e.offset(3.0), f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    #[cfg(debug_assertions)]
    fn non_monotone_feed_panics_in_debug() {
        let mut e = EngineCore::new(CancelRule::NonFifo);
        e.feed(tr(1.0, 1), 1.0);
        e.feed(tr(0.5, 0), 1.0);
    }
}
