//! η-involution channels: involution delays with per-transition
//! adversarial noise (the paper's contribution, Section III).

use crate::channel::{CancelRule, EngineCore, FeedEffect, OnlineChannel};
use crate::delay::DelayPair;
use crate::noise::{EtaBounds, NoiseContext, NoiseSource, ZeroNoise};
use crate::signal::Transition;

/// An η-involution channel: after the involution delay `δ↑/δ↓(T)` is
/// applied, each output transition is shifted by an adversarially chosen
/// `η_n ∈ [−η⁻, η⁺]`:
///
/// ```text
/// δ_n = δ_{↑/↓}(max{t_n − t_{n−1} − δ_{n−1}, −δ∞}) + η_n
/// ```
///
/// (The domain guard returns `−∞`, cancelling the transition, exactly as
/// in the paper; note the published formula's guard constant contains a
/// typo — the correct guard for `δ↑` is `−δ↓∞`, the lower end of `δ↑`'s
/// domain, which is what this implementation uses.)
///
/// The adversary is a [`NoiseSource`]; samples outside the bounds are
/// clamped (with a `debug_assert!`). With [`ZeroNoise`] the channel is
/// exactly an [`InvolutionChannel`](crate::channel::InvolutionChannel).
///
/// Faithfulness holds under constraint (C),
/// [`EtaBounds::satisfies_constraint_c`].
///
/// ```
/// use ivl_core::channel::{Channel, EtaInvolutionChannel};
/// use ivl_core::delay::ExpChannel;
/// use ivl_core::noise::{EtaBounds, UniformNoise};
/// use ivl_core::Signal;
/// # fn main() -> Result<(), ivl_core::Error> {
/// let delay = ExpChannel::new(1.0, 0.5, 0.5)?;
/// let bounds = EtaBounds::new(0.02, 0.03)?;
/// assert!(bounds.satisfies_constraint_c(&delay));
/// let mut ch = EtaInvolutionChannel::new(delay, bounds, UniformNoise::new(7));
/// let out = ch.apply(&Signal::pulse(0.0, 5.0)?);
/// assert_eq!(out.len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct EtaInvolutionChannel<D, N> {
    delay: D,
    bounds: EtaBounds,
    noise: N,
    engine: EngineCore,
}

impl<D: DelayPair> EtaInvolutionChannel<D, ZeroNoise> {
    /// An η-involution channel with zero noise (degenerates to the
    /// deterministic involution channel).
    #[must_use]
    pub fn noiseless(delay: D) -> Self {
        EtaInvolutionChannel::new(delay, EtaBounds::zero(), ZeroNoise)
    }
}

impl<D: DelayPair, N: NoiseSource> EtaInvolutionChannel<D, N> {
    /// Creates an η-involution channel.
    #[must_use]
    pub fn new(delay: D, bounds: EtaBounds, noise: N) -> Self {
        EtaInvolutionChannel {
            delay,
            bounds,
            noise,
            engine: EngineCore::new(CancelRule::NonFifo),
        }
    }

    /// The underlying delay pair.
    #[must_use]
    pub fn delay_pair(&self) -> &D {
        &self.delay
    }

    /// The admissible η interval.
    #[must_use]
    pub fn bounds(&self) -> EtaBounds {
        self.bounds
    }

    /// The noise source.
    #[must_use]
    pub fn noise(&self) -> &N {
        &self.noise
    }

    /// Mutable access to the noise source (e.g. to replay a different
    /// adversary).
    pub fn noise_mut(&mut self) -> &mut N {
        &mut self.noise
    }

    /// Resets the noise source's internal state (RNG streams restart from
    /// their seed). [`OnlineChannel::reset`] deliberately does *not* do
    /// this, so that repeated [`Channel::apply`](crate::channel::Channel)
    /// calls see fresh noise.
    pub fn reset_noise(&mut self) {
        self.noise.reset();
    }

    /// `true` if the bounds satisfy constraint (C) for this channel's
    /// delay pair, i.e. the faithfulness theorems apply.
    #[must_use]
    pub fn is_faithful_parameterization(&self) -> bool {
        self.bounds.satisfies_constraint_c(&self.delay)
    }
}

impl<D: DelayPair, N: NoiseSource> OnlineChannel for EtaInvolutionChannel<D, N> {
    fn feed(&mut self, input: Transition) -> FeedEffect {
        let offset = self.engine.offset(input.time);
        let edge = input.value.edge();
        let base = self.delay.delta(edge, offset);
        let delay = if base == f64::NEG_INFINITY {
            // domain guard: η cannot rescue a cancelled transition
            f64::NEG_INFINITY
        } else {
            let ctx = NoiseContext {
                index: self.engine.count(),
                edge,
                input_time: input.time,
                offset,
                bounds: self.bounds,
            };
            let eta = self.noise.sample(&ctx);
            debug_assert!(
                self.bounds.contains(eta),
                "noise source produced η = {eta} outside {:?}",
                self.bounds
            );
            base + self.bounds.clamp(eta)
        };
        self.engine.feed(input, delay)
    }

    fn reset(&mut self) {
        self.engine.reset();
    }

    fn discard_delivered(&mut self, before: f64) {
        self.engine.discard_delivered(before);
    }

    fn reseed(&mut self, seed: u64) {
        self.noise.reseed(seed);
    }

    fn delay_hint(&self) -> Option<f64> {
        Some(0.5 * (self.delay.delta_up_inf() + self.delay.delta_down_inf()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{Channel, InvolutionChannel};
    use crate::delay::ExpChannel;
    use crate::noise::{
        ConstantShift, ExtendingAdversary, RecordedChoices, UniformNoise, WorstCaseAdversary,
    };
    use crate::signal::Signal;

    fn delay() -> ExpChannel {
        ExpChannel::new(1.0, 0.5, 0.5).unwrap()
    }

    #[test]
    fn zero_noise_equals_involution_channel() {
        let mut eta = EtaInvolutionChannel::noiseless(delay());
        let mut inv = InvolutionChannel::new(delay());
        for input in [
            Signal::pulse(0.0, 5.0).unwrap(),
            Signal::pulse(0.0, 0.05).unwrap(),
            Signal::pulse_train([(0.0, 2.0), (3.0, 0.8), (5.0, 0.1)]).unwrap(),
        ] {
            assert_eq!(eta.apply(&input), inv.apply(&input));
        }
    }

    #[test]
    fn constant_shift_moves_outputs() {
        let bounds = EtaBounds::new(0.0, 0.05).unwrap();
        let mut base = EtaInvolutionChannel::noiseless(delay());
        let mut shifted = EtaInvolutionChannel::new(delay(), bounds, ConstantShift(0.05));
        let input = Signal::pulse(0.0, 5.0).unwrap();
        let a = base.apply(&input);
        let b = shifted.apply(&input);
        let ta = a.transitions();
        let tb = b.transitions();
        // first output shifted by exactly η
        assert!((tb[0].time - ta[0].time - 0.05).abs() < 1e-12);
        // second output: shifted η *and* sees a different history (T
        // changes because the previous output moved)
        assert!(tb[1].time != ta[1].time);
    }

    #[test]
    fn clamping_of_out_of_bounds_noise() {
        // a rogue source returning values outside bounds is clamped
        let bounds = EtaBounds::new(0.01, 0.01).unwrap();
        let mut rogue = EtaInvolutionChannel::new(delay(), bounds, RecordedChoices::new(vec![9.0]));
        let mut max_ok =
            EtaInvolutionChannel::new(delay(), bounds, RecordedChoices::new(vec![0.01]));
        let input = Signal::pulse(0.0, 5.0).unwrap();
        // only run in release mode semantics: debug_assert would fire, so
        // guard the comparison behind cfg
        if cfg!(not(debug_assertions)) {
            let a = rogue.apply(&input);
            let b = max_ok.apply(&input);
            assert_eq!(a, b);
        } else {
            // in debug builds just check the in-bounds variant works
            let b = max_ok.apply(&input);
            assert_eq!(b.len(), 2);
        }
    }

    #[test]
    fn worst_case_adversary_shrinks_pulses() {
        let bounds = EtaBounds::new(0.05, 0.05).unwrap();
        assert!(bounds.satisfies_constraint_c(&delay()));
        let input = Signal::pulse(0.0, 3.0).unwrap();
        let mut nominal = EtaInvolutionChannel::noiseless(delay());
        let mut worst = EtaInvolutionChannel::new(delay(), bounds, WorstCaseAdversary);
        let mut extend = EtaInvolutionChannel::new(delay(), bounds, ExtendingAdversary);
        let w_nom = width(&nominal.apply(&input));
        let w_min = width(&worst.apply(&input));
        let w_max = width(&extend.apply(&input));
        assert!(w_min < w_nom, "{w_min} !< {w_nom}");
        assert!(w_nom < w_max, "{w_nom} !< {w_max}");
        // worst-case shrinks by about η⁺+η⁻ relative to extending
        assert!((w_max - w_min - 2.0 * bounds.width()).abs() < 0.05);
    }

    fn width(s: &Signal) -> f64 {
        let tr = s.transitions();
        assert_eq!(tr.len(), 2, "{s}");
        tr[1].time - tr[0].time
    }

    #[test]
    fn adversary_can_decancel_a_pulse() {
        // Find a pulse width where the nominal channel cancels but the
        // extending adversary (early rise, late fall) lets it through —
        // the "de-cancel" of Fig. 4.
        let d = delay();
        let bounds = EtaBounds::new(0.05, 0.05).unwrap();
        let mut nominal = EtaInvolutionChannel::noiseless(d.clone());
        let mut extend = EtaInvolutionChannel::new(d.clone(), bounds, ExtendingAdversary);
        let mut found = false;
        for i in 0..400 {
            let w = 0.4 + i as f64 * 0.001;
            let input = Signal::pulse(0.0, w).unwrap();
            let a = nominal.apply(&input);
            let b = extend.apply(&input);
            if a.is_zero() && !b.is_zero() {
                found = true;
                break;
            }
        }
        assert!(found, "no de-cancelled width found");
    }

    #[test]
    fn uniform_noise_outputs_stay_within_envelope() {
        // every noisy output transition lies within [nominal−…, nominal+…]
        // for the *first* transition (same history); later ones may drift
        // because the history itself shifts.
        let bounds = EtaBounds::new(0.02, 0.03).unwrap();
        let input = Signal::pulse(0.0, 5.0).unwrap();
        let mut nominal = EtaInvolutionChannel::noiseless(delay());
        let first_nominal = nominal.apply(&input).transitions()[0].time;
        for seed in 0..20 {
            let mut noisy = EtaInvolutionChannel::new(delay(), bounds, UniformNoise::new(seed));
            let out = noisy.apply(&input);
            let first = out.transitions()[0].time;
            assert!(
                first >= first_nominal - 0.02 - 1e-12 && first <= first_nominal + 0.03 + 1e-12,
                "seed {seed}: {first} vs {first_nominal}"
            );
        }
    }

    #[test]
    fn accessors_and_faithfulness_check() {
        let bounds = EtaBounds::new(0.01, 0.01).unwrap();
        let mut ch = EtaInvolutionChannel::new(delay(), bounds, UniformNoise::new(1));
        assert_eq!(ch.bounds(), bounds);
        assert_eq!(ch.delay_pair().t_p(), 0.5);
        assert!(ch.is_faithful_parameterization());
        ch.noise_mut();
        ch.reset_noise();
        let big = EtaBounds::new(1.0, 1.0).unwrap();
        let ch = EtaInvolutionChannel::new(delay(), big, ZeroNoise);
        assert!(!ch.is_faithful_parameterization());
    }

    #[test]
    fn reset_noise_reproduces_stream() {
        let bounds = EtaBounds::new(0.02, 0.02).unwrap();
        let input = Signal::pulse_train([(0.0, 2.0), (4.0, 2.0)]).unwrap();
        let mut ch = EtaInvolutionChannel::new(delay(), bounds, UniformNoise::new(5));
        let a = ch.apply(&input);
        let b = ch.apply(&input);
        assert_ne!(a, b, "fresh noise on second apply");
        ch.reset_noise();
        let c = ch.apply(&input);
        assert_eq!(a, c, "reset_noise restores the stream");
    }

    #[test]
    fn domain_guard_cancels_despite_noise() {
        // Construct a short glitch after a long stable input such that
        // T ≤ −δ↓∞ for the rising edge … that requires the previous
        // output to be far in the future, i.e. a pulse right after the
        // first transition's scheduled output. Use recorded choices to
        // keep determinism.
        let d = delay();
        let bounds = EtaBounds::new(0.05, 0.05).unwrap();
        let mut ch = EtaInvolutionChannel::new(d.clone(), bounds, RecordedChoices::new(vec![]));
        // first rising at 0 → output ≈ δ↑∞ ≈ 1.19; a falling input at
        // 0.01 has T ≈ 0.01 − 1.19 < −δ↑∞? δ↑∞ = 0.5 + ln2 ≈ 1.19; T ≈
        // −1.18 ≤ −δ↑∞ = −1.19? Not quite; make the pulse even shorter.
        let input = Signal::pulse(0.0, 0.001).unwrap();
        let out = ch.apply(&input);
        assert!(out.is_zero(), "ultra-short pulse must cancel: {out}");
    }
}
