//! The Degradation Delay Model (DDM) of Bellido-Díaz et al.

use crate::bit::Edge;
use crate::channel::{CancelRule, EngineCore, FeedEffect, OnlineChannel};
use crate::error::Error;
use crate::signal::Transition;

/// Per-edge parameters of the degradation delay model:
///
/// ```text
/// δ(T) = t_p0 · (1 − e^{−(T − T_0)/τ})
/// ```
///
/// where `T` is the previous-output-to-input offset, `t_p0` the nominal
/// (fully recovered) propagation delay, `T_0` the degradation onset and
/// `τ` the recovery time constant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DdmEdgeParams {
    /// Nominal propagation delay `t_p0 > 0`.
    pub t_p0: f64,
    /// Degradation onset `T_0 ≥ 0`; for `T ≤ T_0` the pulse is suppressed.
    pub t_0: f64,
    /// Recovery time constant `τ > 0`.
    pub tau: f64,
}

impl DdmEdgeParams {
    /// Creates per-edge parameters.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidDelayParameter`] unless `t_p0 > 0`,
    /// `t_0 ≥ 0`, `tau > 0`.
    pub fn new(t_p0: f64, t_0: f64, tau: f64) -> Result<Self, Error> {
        if !(t_p0.is_finite() && t_p0 > 0.0) {
            return Err(Error::InvalidDelayParameter {
                name: "t_p0",
                value: t_p0,
                constraint: "must be finite and > 0",
            });
        }
        if !(t_0.is_finite() && t_0 >= 0.0) {
            return Err(Error::InvalidDelayParameter {
                name: "t_0",
                value: t_0,
                constraint: "must be finite and >= 0",
            });
        }
        if !(tau.is_finite() && tau > 0.0) {
            return Err(Error::InvalidDelayParameter {
                name: "tau",
                value: tau,
                constraint: "must be finite and > 0",
            });
        }
        Ok(DdmEdgeParams { t_p0, t_0, tau })
    }

    /// Evaluates the DDM delay at offset `t` (`+∞` maps to `t_p0`).
    #[must_use]
    pub fn delay(&self, t: f64) -> f64 {
        if t == f64::INFINITY {
            return self.t_p0;
        }
        self.t_p0 * (1.0 - (-(t - self.t_0) / self.tau).exp())
    }
}

/// The Degradation Delay Model channel: delays recover exponentially with
/// the previous-output-to-input offset, so closely spaced transitions see
/// shorter delays and short pulses are gradually attenuated.
///
/// DDM is a **bounded** single-history channel (`δ(T) ∈ (−∞, t_p0]` with
/// the bound attained in the limit) and therefore not faithful — it is
/// the paper's primary non-faithful comparator. Contrast its gradual
/// attenuation with the involution channel's: DDM's delay function is
/// not an involution, so its predicted glitch trains differ precisely in
/// the fast-glitch regime discussed in the paper's introduction.
///
/// ```
/// use ivl_core::channel::{Channel, DdmEdgeParams, DegradationDelay};
/// use ivl_core::Signal;
/// # fn main() -> Result<(), ivl_core::Error> {
/// let p = DdmEdgeParams::new(1.0, 0.1, 0.8)?;
/// let mut ch = DegradationDelay::symmetric(p);
/// // a wide pulse passes with (almost) the nominal delay…
/// let out = ch.apply(&Signal::pulse(0.0, 10.0)?);
/// assert_eq!(out.len(), 2);
/// // …a very short one is suppressed
/// assert!(ch.apply(&Signal::pulse(0.0, 0.05)?).is_zero());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DegradationDelay {
    up: DdmEdgeParams,
    down: DdmEdgeParams,
    engine: EngineCore,
}

impl DegradationDelay {
    /// Creates a DDM channel with separate rising/falling parameters.
    #[must_use]
    pub fn new(up: DdmEdgeParams, down: DdmEdgeParams) -> Self {
        DegradationDelay {
            up,
            down,
            engine: EngineCore::new(CancelRule::NonFifo),
        }
    }

    /// Creates a DDM channel with identical rising/falling parameters.
    #[must_use]
    pub fn symmetric(params: DdmEdgeParams) -> Self {
        DegradationDelay::new(params, params)
    }

    /// Rising-edge parameters.
    #[must_use]
    pub fn up_params(&self) -> DdmEdgeParams {
        self.up
    }

    /// Falling-edge parameters.
    #[must_use]
    pub fn down_params(&self) -> DdmEdgeParams {
        self.down
    }
}

impl OnlineChannel for DegradationDelay {
    fn feed(&mut self, input: Transition) -> FeedEffect {
        let t = self.engine.offset(input.time);
        let delay = match input.value.edge() {
            Edge::Rising => self.up.delay(t),
            Edge::Falling => self.down.delay(t),
        };
        self.engine.feed(input, delay)
    }

    fn reset(&mut self) {
        self.engine.reset();
    }

    fn discard_delivered(&mut self, before: f64) {
        self.engine.discard_delivered(before);
    }

    fn delay_hint(&self) -> Option<f64> {
        Some(0.5 * (self.up.delay(f64::INFINITY) + self.down.delay(f64::INFINITY)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::Channel;
    use crate::signal::Signal;

    fn params() -> DdmEdgeParams {
        DdmEdgeParams::new(1.0, 0.1, 0.8).unwrap()
    }

    #[test]
    fn constructor_validates() {
        assert!(DdmEdgeParams::new(0.0, 0.1, 0.8).is_err());
        assert!(DdmEdgeParams::new(1.0, -0.1, 0.8).is_err());
        assert!(DdmEdgeParams::new(1.0, 0.1, 0.0).is_err());
        assert!(DdmEdgeParams::new(f64::NAN, 0.1, 0.8).is_err());
    }

    #[test]
    fn delay_function_shape() {
        let p = params();
        assert_eq!(p.delay(f64::INFINITY), 1.0);
        assert!((p.delay(100.0) - 1.0).abs() < 1e-12); // recovered
        assert_eq!(p.delay(p.t_0), 0.0); // onset
        assert!(p.delay(0.0) < 0.0); // below onset: suppression regime
                                     // monotonically increasing
        assert!(p.delay(0.5) < p.delay(1.0));
        assert!(p.delay(1.0) < p.delay(5.0));
    }

    #[test]
    fn boundedness_the_unfaithfulness_witness() {
        // DDM delays never exceed t_p0 — a bounded single-history channel
        let p = params();
        for i in 0..1000 {
            let t = i as f64 * 0.1;
            assert!(p.delay(t) <= p.t_p0);
        }
    }

    #[test]
    fn wide_pulse_passes_with_nominal_delay() {
        let mut ch = DegradationDelay::symmetric(params());
        let out = ch.apply(&Signal::pulse(0.0, 10.0).unwrap());
        assert_eq!(out.len(), 2);
        let tr = out.transitions();
        assert!((tr[0].time - 1.0).abs() < 1e-9);
        // the falling edge sees T = 10 − 1 = 9 ≫ τ → almost nominal delay
        assert!((tr[1].time - 11.0).abs() < 1e-4);
    }

    #[test]
    fn pulse_attenuation_is_gradual() {
        // output width shrinks continuously with input width
        let mut ch = DegradationDelay::symmetric(params());
        let mut widths = Vec::new();
        for w in [2.0, 1.5, 1.2, 1.11] {
            let out = ch.apply(&Signal::pulse(0.0, w).unwrap());
            assert_eq!(out.len(), 2, "w={w}");
            let tr = out.transitions();
            widths.push(tr[1].time - tr[0].time);
        }
        for pair in widths.windows(2) {
            assert!(pair[1] < pair[0], "attenuation must increase: {widths:?}");
        }
        // and each output pulse is narrower than its input
        assert!(widths[3] < 1.11);
    }

    #[test]
    fn short_pulse_is_suppressed() {
        let mut ch = DegradationDelay::symmetric(params());
        assert!(ch.apply(&Signal::pulse(0.0, 0.05).unwrap()).is_zero());
    }

    #[test]
    fn asymmetric_edges() {
        let up = DdmEdgeParams::new(2.0, 0.1, 0.8).unwrap();
        let down = DdmEdgeParams::new(1.0, 0.1, 0.8).unwrap();
        let mut ch = DegradationDelay::new(up, down);
        assert_eq!(ch.up_params(), up);
        assert_eq!(ch.down_params(), down);
        let out = ch.apply(&Signal::pulse(0.0, 10.0).unwrap());
        let tr = out.transitions();
        assert!((tr[0].time - 2.0).abs() < 1e-9); // rising delay
        assert!((tr[1].time - 11.0).abs() < 1e-3); // falling delay (T = 8)
    }

    #[test]
    fn glitch_train_attenuates_progressively() {
        // a fast pulse train loses pulses as degradation accumulates
        let mut ch = DegradationDelay::symmetric(params());
        let input = Signal::pulse_train((0..5).map(|i| (i as f64 * 0.6, 0.3))).unwrap();
        let out = ch.apply(&input);
        assert!(
            out.len() < input.len(),
            "expected attenuation: {} -> {}",
            input.len(),
            out.len()
        );
    }
}
