//! Deterministic involution channels (Függer et al., DATE'15).

use crate::channel::{CancelRule, EngineCore, FeedEffect, OnlineChannel};
use crate::delay::DelayPair;
use crate::signal::Transition;

/// An involution channel: the input-to-output delay of the `n`-th input
/// transition is `δ↑(T)`/`δ↓(T)` with `T = t_n − t_{n−1} − δ_{n−1}`, for
/// an involution [`DelayPair`]. The first faithful binary circuit model
/// (DATE'15); the η-involution channel of this paper generalizes it.
///
/// ```
/// use ivl_core::channel::{Channel, InvolutionChannel};
/// use ivl_core::delay::ExpChannel;
/// use ivl_core::Signal;
/// # fn main() -> Result<(), ivl_core::Error> {
/// let mut ch = InvolutionChannel::new(ExpChannel::new(1.0, 0.5, 0.5)?);
/// // a long pulse propagates with the asymptotic delay δ∞
/// let out = ch.apply(&Signal::pulse(0.0, 10.0)?);
/// assert_eq!(out.len(), 2);
/// // a sufficiently short pulse cancels inside the channel
/// assert!(ch.apply(&Signal::pulse(0.0, 0.05)?).is_zero());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct InvolutionChannel<D> {
    delay: D,
    engine: EngineCore,
}

impl<D: DelayPair> InvolutionChannel<D> {
    /// Creates an involution channel over the given delay pair.
    #[must_use]
    pub fn new(delay: D) -> Self {
        InvolutionChannel {
            delay,
            engine: EngineCore::new(CancelRule::NonFifo),
        }
    }

    /// The underlying delay pair.
    #[must_use]
    pub fn delay_pair(&self) -> &D {
        &self.delay
    }

    /// Consumes the channel, returning the delay pair.
    #[must_use]
    pub fn into_delay_pair(self) -> D {
        self.delay
    }
}

impl<D: DelayPair> OnlineChannel for InvolutionChannel<D> {
    fn feed(&mut self, input: Transition) -> FeedEffect {
        let t = self.engine.offset(input.time);
        let delay = self.delay.delta(input.value.edge(), t);
        self.engine.feed(input, delay)
    }

    fn reset(&mut self) {
        self.engine.reset();
    }

    fn discard_delivered(&mut self, before: f64) {
        self.engine.discard_delivered(before);
    }

    fn delay_hint(&self) -> Option<f64> {
        Some(0.5 * (self.delay.delta_up_inf() + self.delay.delta_down_inf()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::Channel;
    use crate::delay::{DelayPair, ExpChannel, RationalPair};
    use crate::signal::Signal;

    fn exp_channel() -> InvolutionChannel<ExpChannel> {
        InvolutionChannel::new(ExpChannel::new(1.0, 0.5, 0.5).unwrap())
    }

    #[test]
    fn first_transition_gets_asymptotic_delay() {
        let mut ch = exp_channel();
        let d_inf = ch.delay_pair().delta_up_inf();
        let out = ch.apply(&Signal::pulse(2.0, 100.0).unwrap());
        let tr = out.transitions();
        assert!((tr[0].time - (2.0 + d_inf)).abs() < 1e-12);
    }

    #[test]
    fn isolated_transitions_see_delta_inf() {
        // widely separated transitions all get ≈ δ∞
        let mut ch = exp_channel();
        let up_inf = ch.delay_pair().delta_up_inf();
        let down_inf = ch.delay_pair().delta_down_inf();
        let input = Signal::pulse_train([(0.0, 50.0), (100.0, 50.0)]).unwrap();
        let out = ch.apply(&input);
        let tr = out.transitions();
        assert_eq!(tr.len(), 4);
        assert!((tr[0].time - up_inf).abs() < 1e-9);
        assert!((tr[1].time - (50.0 + down_inf)).abs() < 1e-9);
        assert!((tr[2].time - (100.0 + up_inf)).abs() < 1e-9);
    }

    #[test]
    fn short_pulse_cancels_fig2_scenario() {
        // the second (short) pulse cancels inside the channel, as in
        // Fig. 2 of the paper
        let mut ch = exp_channel();
        let input = Signal::pulse_train([(0.0, 5.0), (10.0, 0.05)]).unwrap();
        let out = ch.apply(&input);
        assert_eq!(out.len(), 2, "short pulse must cancel: {out}");
    }

    #[test]
    fn pulse_attenuation_is_continuous_in_width() {
        let mut ch = exp_channel();
        // output width is continuous and monotone in input width
        let mut prev_width: Option<f64> = None;
        for i in 0..30 {
            let w = 0.9 + 0.05 * i as f64;
            let out = ch.apply(&Signal::pulse(0.0, w).unwrap());
            if out.len() == 2 {
                let tr = out.transitions();
                let width = tr[1].time - tr[0].time;
                assert!(width < w + 1e-9, "attenuation, not amplification");
                if let Some(p) = prev_width {
                    assert!(width >= p - 1e-9, "monotone in input width");
                }
                prev_width = Some(width);
            }
        }
        assert!(prev_width.is_some(), "some pulses must propagate");
    }

    #[test]
    fn critical_width_threshold_between_cancel_and_pass() {
        // Below δ↑∞ − δmin an isolated pulse cancels (Lemma 4 with η = 0);
        // above δ↑∞ it must pass (Lemma 3 with η = 0).
        let mut ch = exp_channel();
        let d = ch.delay_pair().clone();
        let low = d.delta_up_inf() - d.delta_min();
        let high = d.delta_up_inf();
        assert!(ch.apply(&Signal::pulse(0.0, low - 1e-6).unwrap()).is_zero());
        assert_eq!(ch.apply(&Signal::pulse(0.0, high + 1e-6).unwrap()).len(), 2);
    }

    #[test]
    fn works_with_rational_pair() {
        let mut ch = InvolutionChannel::new(RationalPair::new(2.0, 1.0, 2.0).unwrap());
        let out = ch.apply(&Signal::pulse(0.0, 20.0).unwrap());
        assert_eq!(out.len(), 2);
        assert!((out.transitions()[0].time - 2.0).abs() < 1e-9); // δ↑∞ = a = 2
    }

    #[test]
    fn into_delay_pair_roundtrip() {
        let d = ExpChannel::new(1.0, 0.5, 0.5).unwrap();
        let ch = InvolutionChannel::new(d.clone());
        assert_eq!(ch.into_delay_pair(), d);
    }

    #[test]
    fn output_respects_signal_invariants_on_fast_trains() {
        let mut ch = exp_channel();
        // aggressive glitch train near the attenuation boundary
        let input = Signal::pulse_train((0..50).map(|i| (i as f64 * 1.8, 0.9))).unwrap();
        let out = ch.apply(&input);
        // Signal construction inside apply() validates invariants; also
        // check output count parity: final values must match since the
        // input returns to 0.
        assert_eq!(out.final_value(), input.final_value());
    }
}
