//! Pure (constant transport) delay channels.

use crate::channel::{CancelRule, EngineCore, FeedEffect, OnlineChannel};
use crate::error::Error;
use crate::signal::Transition;

/// A pure delay channel: every transition is delayed by a constant
/// `d > 0`. This is the classical transport delay of VHDL/Verilog
/// simulators; it is **not** a faithful model (Függer et al., IEEE TC
/// 2016).
///
/// ```
/// use ivl_core::channel::{Channel, PureDelay};
/// use ivl_core::Signal;
/// # fn main() -> Result<(), ivl_core::Error> {
/// let mut ch = PureDelay::new(1.5)?;
/// let out = ch.apply(&Signal::pulse(0.0, 2.0)?);
/// assert_eq!(out, Signal::pulse(1.5, 2.0)?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PureDelay {
    delay: f64,
    engine: EngineCore,
}

impl PureDelay {
    /// Creates a pure delay of `delay > 0`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidDelayParameter`] if `delay` is not finite
    /// and positive.
    pub fn new(delay: f64) -> Result<Self, Error> {
        if !(delay.is_finite() && delay > 0.0) {
            return Err(Error::InvalidDelayParameter {
                name: "delay",
                value: delay,
                constraint: "must be finite and > 0",
            });
        }
        Ok(PureDelay {
            delay,
            engine: EngineCore::new(CancelRule::NonFifo),
        })
    }

    /// The constant delay.
    #[must_use]
    pub fn delay(&self) -> f64 {
        self.delay
    }
}

impl OnlineChannel for PureDelay {
    fn feed(&mut self, input: Transition) -> FeedEffect {
        self.engine.feed(input, self.delay)
    }

    fn reset(&mut self) {
        self.engine.reset();
    }

    fn discard_delivered(&mut self, before: f64) {
        self.engine.discard_delivered(before);
    }

    fn delay_hint(&self) -> Option<f64> {
        Some(self.delay)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::Channel;
    use crate::signal::Signal;

    #[test]
    fn constructor_validates() {
        assert!(PureDelay::new(1.0).is_ok());
        assert!(PureDelay::new(0.0).is_err());
        assert!(PureDelay::new(-1.0).is_err());
        assert!(PureDelay::new(f64::NAN).is_err());
        assert!(PureDelay::new(f64::INFINITY).is_err());
    }

    #[test]
    fn shifts_every_transition() {
        let mut ch = PureDelay::new(0.25).unwrap();
        let input = Signal::pulse_train([(0.0, 1.0), (2.0, 0.01)]).unwrap();
        let out = ch.apply(&input);
        assert!(out.approx_eq(&input.shifted(0.25), 1e-12));
    }

    #[test]
    fn passes_arbitrarily_short_pulses() {
        // the defining non-faithful behaviour: no attenuation at all
        let mut ch = PureDelay::new(1.0).unwrap();
        let out = ch.apply(&Signal::pulse(0.0, 1e-9).unwrap());
        assert_eq!(out.len(), 2);
        assert!((out.min_interval().unwrap() - 1e-9).abs() < 1e-15);
    }

    #[test]
    fn constant_signal_maps_to_itself() {
        let mut ch = PureDelay::new(1.0).unwrap();
        assert!(ch.apply(&Signal::zero()).is_zero());
    }

    #[test]
    fn accessor() {
        assert_eq!(PureDelay::new(2.0).unwrap().delay(), 2.0);
    }
}
