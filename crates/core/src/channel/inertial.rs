//! Inertial delay channels (transport delay plus pulse rejection).

use crate::channel::{CancelRule, EngineCore, FeedEffect, OnlineChannel};
use crate::error::Error;
use crate::signal::Transition;

/// An inertial delay channel (Unger): transitions are delayed by `d`, and
/// output transition pairs closer than the rejection `window ∆` cancel —
/// input pulses shorter than `∆` do not appear at the output.
///
/// This is the classical glitch-suppressing delay model of digital
/// simulators; like all bounded single-history channels it is **not**
/// faithful (Függer et al., IEEE TC 2016): it solves bounded-time SPF in
/// the model although no physical circuit can.
///
/// ```
/// use ivl_core::channel::{Channel, InertialDelay};
/// use ivl_core::Signal;
/// # fn main() -> Result<(), ivl_core::Error> {
/// let mut ch = InertialDelay::new(1.0, 0.5)?;
/// // a 0.2-wide pulse is swallowed whole …
/// assert!(ch.apply(&Signal::pulse(0.0, 0.2)?).is_zero());
/// // … while a 0.8-wide pulse passes unchanged
/// assert_eq!(ch.apply(&Signal::pulse(0.0, 0.8)?), Signal::pulse(1.0, 0.8)?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct InertialDelay {
    delay: f64,
    window: f64,
    engine: EngineCore,
}

impl InertialDelay {
    /// Creates an inertial delay with transport delay `delay > 0` and
    /// rejection window `window > 0`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidDelayParameter`] for non-finite or
    /// non-positive parameters.
    pub fn new(delay: f64, window: f64) -> Result<Self, Error> {
        if !(delay.is_finite() && delay > 0.0) {
            return Err(Error::InvalidDelayParameter {
                name: "delay",
                value: delay,
                constraint: "must be finite and > 0",
            });
        }
        if !(window.is_finite() && window > 0.0) {
            return Err(Error::InvalidDelayParameter {
                name: "window",
                value: window,
                constraint: "must be finite and > 0",
            });
        }
        Ok(InertialDelay {
            delay,
            window,
            engine: EngineCore::new(CancelRule::MinSeparation(window)),
        })
    }

    /// The transport delay.
    #[must_use]
    pub fn delay(&self) -> f64 {
        self.delay
    }

    /// The pulse-rejection window `∆`.
    #[must_use]
    pub fn window(&self) -> f64 {
        self.window
    }
}

impl OnlineChannel for InertialDelay {
    fn feed(&mut self, input: Transition) -> FeedEffect {
        self.engine.feed(input, self.delay)
    }

    fn reset(&mut self) {
        self.engine.reset();
    }

    fn discard_delivered(&mut self, before: f64) {
        self.engine.discard_delivered(before);
    }

    fn delay_hint(&self) -> Option<f64> {
        Some(self.delay)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::Channel;
    use crate::signal::Signal;

    #[test]
    fn constructor_validates() {
        assert!(InertialDelay::new(1.0, 0.5).is_ok());
        assert!(InertialDelay::new(0.0, 0.5).is_err());
        assert!(InertialDelay::new(1.0, 0.0).is_err());
        assert!(InertialDelay::new(1.0, -0.5).is_err());
        assert!(InertialDelay::new(f64::NAN, 0.5).is_err());
    }

    #[test]
    fn filters_short_pulses_exactly_at_threshold() {
        let mut ch = InertialDelay::new(1.0, 0.5).unwrap();
        // pulse of width exactly ∆ survives (separation not < ∆)
        assert_eq!(ch.apply(&Signal::pulse(0.0, 0.5).unwrap()).len(), 2);
        // pulse just below ∆ is rejected
        assert!(ch.apply(&Signal::pulse(0.0, 0.4999).unwrap()).is_zero());
    }

    #[test]
    fn filters_only_short_pulses_in_a_train() {
        let mut ch = InertialDelay::new(1.0, 0.5).unwrap();
        let input = Signal::pulse_train([(0.0, 0.2), (2.0, 1.0), (5.0, 0.3)]).unwrap();
        let out = ch.apply(&input);
        assert_eq!(out.len(), 2, "only the wide pulse survives: {out}");
        assert!(out.approx_eq(&Signal::pulse(3.0, 1.0).unwrap(), 1e-12));
    }

    #[test]
    fn discrete_step_behaviour_is_sharp() {
        // the discontinuity that faithfulness forbids: output jumps from
        // nothing to a full-width pulse as ∆0 crosses the window
        let mut ch = InertialDelay::new(1.0, 0.5).unwrap();
        let eps = 1e-9;
        let below = ch.apply(&Signal::pulse(0.0, 0.5 - eps).unwrap());
        let above = ch.apply(&Signal::pulse(0.0, 0.5 + eps).unwrap());
        assert!(below.is_zero());
        assert!(above.min_interval().unwrap() >= 0.5);
    }

    #[test]
    fn accessors() {
        let ch = InertialDelay::new(2.0, 0.25).unwrap();
        assert_eq!(ch.delay(), 2.0);
        assert_eq!(ch.window(), 0.25);
    }

    #[test]
    fn short_gap_between_pulses_merges_them() {
        let mut ch = InertialDelay::new(1.0, 0.5).unwrap();
        // two wide pulses separated by a 0.2 gap: the gap is rejected
        let input = Signal::pulse_train([(0.0, 1.0), (1.2, 1.0)]).unwrap();
        let out = ch.apply(&input);
        assert_eq!(out.len(), 2);
        assert!(out.approx_eq(&Signal::pulse(1.0, 2.2).unwrap(), 1e-12));
    }
}
