//! Channels: single-history delay elements mapping signals to signals.
//!
//! All channels in this module follow the paper's *output transition
//! generation algorithm* (Section II): the input-to-output delay `δ_n` of
//! the `n`-th input transition depends on the previous-output-to-input
//! offset `T = t_n − t_{n−1} − δ_{n−1}`, and non-FIFO pending output
//! transitions cancel pairwise.
//!
//! Channels come in two flavours sharing one implementation:
//!
//! * **Batch** ([`Channel::apply`]) maps a complete input [`Signal`] to
//!   the output signal — the channel-function semantics of the paper.
//! * **Online** ([`OnlineChannel::feed`]) consumes input transitions one
//!   at a time and reports scheduling/cancellation effects — what an
//!   event-driven circuit simulator needs (see the `ivl-circuit` crate).
//!
//! Implementations:
//!
//! | Type | Model | Faithful? |
//! |------|-------|-----------|
//! | [`PureDelay`] | constant transport delay | no ([IEEE TC 2016]) |
//! | [`InertialDelay`] | transport delay + pulse rejection | no |
//! | [`DegradationDelay`] | DDM (Bellido-Díaz et al.), bounded single-history | no |
//! | [`InvolutionChannel`] | involution delays (DATE'15) | yes |
//! | [`EtaInvolutionChannel`] | involution + adversarial η (this paper) | yes, under constraint (C) |
//!
//! [IEEE TC 2016]: https://doi.org/10.1109/TC.2015.2435791

mod ddm;
mod engine;
mod eta;
mod inertial;
mod involution;
mod pure;

pub use ddm::{DdmEdgeParams, DegradationDelay};
pub use eta::EtaInvolutionChannel;
pub use inertial::InertialDelay;
pub use involution::InvolutionChannel;
pub use pure::PureDelay;

pub(crate) use engine::{CancelRule, EngineCore};

use crate::signal::{Signal, Transition};

/// Effect of feeding one input transition to an [`OnlineChannel`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FeedEffect {
    /// A new pending output transition was scheduled.
    Scheduled(Transition),
    /// The most recent still-pending output transition was cancelled
    /// together with the would-be output of the fed transition (the
    /// paper's pairwise non-FIFO cancellation).
    CancelledPair {
        /// The previously pending transition that was cancelled.
        cancelled: Transition,
    },
    /// The fed transition produced no output and cancelled nothing
    /// (e.g. a domain-guard `−∞` delay with no pending partner).
    Dropped,
}

/// An incremental channel: feed input transitions in strictly increasing
/// time order and alternating values, observe scheduling effects.
///
/// Implementations keep the single-history state `(t_{n−1}, δ_{n−1})`
/// internally; [`OnlineChannel::reset`] restores the initial state.
pub trait OnlineChannel {
    /// Feeds the next input transition.
    ///
    /// The caller must feed transitions with strictly increasing times
    /// and alternating values (as they appear in a valid [`Signal`]).
    fn feed(&mut self, input: Transition) -> FeedEffect;

    /// Resets the single-history state (but not stateful noise sources;
    /// see [`EtaInvolutionChannel::reset_noise`]).
    fn reset(&mut self);

    /// Drops internal bookkeeping for output transitions scheduled at or
    /// before `before`. An event-driven simulator calls this as simulated
    /// time advances; batch evaluation never needs it.
    fn discard_delivered(&mut self, before: f64) {
        let _ = before;
    }

    /// Reseeds any internal noise/RNG streams from `seed` and restarts
    /// them. Deterministic channels ignore this (the default). Scenario
    /// sweeps use it to give every scenario an independent, reproducible
    /// adversary regardless of which worker thread runs it.
    fn reseed(&mut self, seed: u64) {
        let _ = seed;
    }

    /// A characteristic input-to-output delay of this channel, if it has
    /// one (e.g. the transport delay of a [`PureDelay`], or `δ∞` of an
    /// involution channel).
    ///
    /// This is a *scheduling hint*, not a bound: event-driven simulators
    /// use it to size their calendar-queue buckets so that typical event
    /// horizons span a handful of buckets. Returning `None` (the
    /// default) simply makes the simulator fall back to a generic bucket
    /// width — correctness never depends on the hint.
    fn delay_hint(&self) -> Option<f64> {
        None
    }
}

impl<C: OnlineChannel + ?Sized> OnlineChannel for Box<C> {
    fn feed(&mut self, input: Transition) -> FeedEffect {
        (**self).feed(input)
    }
    fn reset(&mut self) {
        (**self).reset();
    }
    fn discard_delivered(&mut self, before: f64) {
        (**self).discard_delivered(before);
    }
    fn reseed(&mut self, seed: u64) {
        (**self).reseed(seed);
    }
    fn delay_hint(&self) -> Option<f64> {
        (**self).delay_hint()
    }
}

/// An [`OnlineChannel`] that can live inside a [`Circuit`] and be fanned
/// out across simulator worker threads: cloneable (so circuits can be
/// duplicated per worker) and `Send` (so circuits can move between
/// threads).
///
/// Implemented automatically for every `OnlineChannel + Clone + Send +
/// 'static` type — all channels shipped by this crate qualify; custom
/// channels only need `#[derive(Clone)]`.
///
/// [`Circuit`]: https://docs.rs/ivl_circuit
pub trait SimChannel: OnlineChannel + Send {
    /// Clones the channel behind a fresh box (object-safe `Clone`).
    fn clone_box(&self) -> Box<dyn SimChannel>;
}

impl<C: OnlineChannel + Clone + Send + 'static> SimChannel for C {
    fn clone_box(&self) -> Box<dyn SimChannel> {
        Box::new(self.clone())
    }
}

impl Clone for Box<dyn SimChannel> {
    fn clone(&self) -> Self {
        (**self).clone_box()
    }
}

/// A channel function: maps input signals to output signals.
///
/// Takes `&mut self` because channels with noise sources draw from an
/// internal RNG stream; the single-history state is reset at the start of
/// each `apply`.
pub trait Channel {
    /// Applies the channel function to `input`.
    fn apply(&mut self, input: &Signal) -> Signal;
}

impl<C: OnlineChannel> Channel for C {
    fn apply(&mut self, input: &Signal) -> Signal {
        apply_online(self, input)
    }
}

/// Applies any [`OnlineChannel`] to a complete signal (resetting its
/// single-history state first).
pub fn apply_online<C: OnlineChannel + ?Sized>(ch: &mut C, input: &Signal) -> Signal {
    ch.reset();
    let mut out: Vec<Transition> = Vec::new();
    for tr in input {
        match ch.feed(*tr) {
            FeedEffect::Scheduled(t) => out.push(t),
            FeedEffect::CancelledPair { .. } => {
                out.pop();
            }
            FeedEffect::Dropped => {}
        }
    }
    Signal::new(input.initial(), out)
        .expect("single-history cancellation preserves signal invariants")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bit::Bit;
    use crate::delay::ExpChannel;

    #[test]
    fn boxed_online_channel_delegates() {
        let mut boxed: Box<dyn OnlineChannel> = Box::new(PureDelay::new(1.0).unwrap());
        let eff = boxed.feed(Transition::new(0.0, Bit::One));
        assert_eq!(eff, FeedEffect::Scheduled(Transition::new(1.0, Bit::One)));
        boxed.discard_delivered(0.5);
        boxed.reset();
        // after reset, history starts over
        let eff = boxed.feed(Transition::new(10.0, Bit::One));
        assert_eq!(eff, FeedEffect::Scheduled(Transition::new(11.0, Bit::One)));
    }

    #[test]
    fn channel_trait_object_via_generic() {
        fn run(ch: &mut dyn OnlineChannel, s: &Signal) -> Signal {
            apply_online(ch, s)
        }
        let mut ch = InvolutionChannel::new(ExpChannel::new(1.0, 0.5, 0.5).unwrap());
        let input = Signal::pulse(0.0, 3.0).unwrap();
        let out = run(&mut ch, &input);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn apply_is_repeatable_for_deterministic_channels() {
        let mut ch = InvolutionChannel::new(ExpChannel::new(1.0, 0.5, 0.5).unwrap());
        let input = Signal::pulse_train([(0.0, 2.0), (5.0, 0.3)]).unwrap();
        let a = ch.apply(&input);
        let b = ch.apply(&input);
        assert_eq!(a, b);
    }
}
