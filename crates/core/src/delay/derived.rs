//! Deriving a full involution pair from a single delay function.

use std::fmt;

use crate::delay::DelayPair;
use crate::error::Error;

/// An involution pair whose `δ↓` is *derived* from a user-supplied `δ↑`
/// via numeric inversion.
///
/// The involution property `−δ↑(−δ↓(T)) = T` is equivalent to
/// `δ↓(T) = −δ↑⁻¹(−T)`, so given any strictly increasing concave
/// `δ↑ : (−d_min, ∞) → (−∞, sup)` with finite `sup`, the derived pair
/// satisfies the involution property *by construction* (up to solver
/// tolerance).
///
/// `δ↑⁻¹` is computed by bisection, making evaluation of `δ↓` roughly two
/// orders of magnitude slower than a closed-form pair — use
/// [`ExpChannel`](crate::delay::ExpChannel) or
/// [`RationalPair`](crate::delay::RationalPair) when they fit.
///
/// # Examples
///
/// Re-deriving the exp-channel's `δ↓` from its `δ↑`:
///
/// ```
/// use ivl_core::delay::{DelayPair, DerivedPair, ExpChannel};
/// # fn main() -> Result<(), ivl_core::Error> {
/// let exp = ExpChannel::new(1.0, 0.5, 0.3)?;
/// let e2 = exp.clone();
/// let derived = DerivedPair::new(
///     move |t| exp.delta_up(t),
///     e2.delta_up_inf(),
///     -e2.delta_down_inf(),
/// )?;
/// let t = 0.4;
/// assert!((derived.delta_down(t) - e2.delta_down(t)).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct DerivedPair<F> {
    up: F,
    up_inf: f64,
    /// Lower end of δ↑'s domain, i.e. `−δ↓∞`.
    domain_min: f64,
    tolerance: f64,
}

impl<F: Fn(f64) -> f64> DerivedPair<F> {
    /// Creates a derived pair from `up = δ↑`, its supremum `up_inf = δ↑∞`,
    /// and the lower end of its domain `domain_min = −δ↓∞`.
    ///
    /// `up` must be strictly increasing and concave on
    /// `(domain_min, ∞)` with `up(t) → −∞` as `t → domain_min⁺` and
    /// `up(t) → up_inf` as `t → ∞`; these properties are spot-checked.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidDelayParameter`] if the spot checks fail
    /// (non-finite bounds, decreasing samples, `up(0) ≤ 0`).
    pub fn new(up: F, up_inf: f64, domain_min: f64) -> Result<Self, Error> {
        if !up_inf.is_finite() {
            return Err(Error::InvalidDelayParameter {
                name: "up_inf",
                value: up_inf,
                constraint: "must be finite",
            });
        }
        if !domain_min.is_finite() || domain_min >= 0.0 {
            return Err(Error::InvalidDelayParameter {
                name: "domain_min",
                value: domain_min,
                constraint: "must be finite and < 0 (= −δ↓∞ < 0)",
            });
        }
        let up0 = up(0.0);
        if !(up0.is_finite() && up0 > 0.0) {
            return Err(Error::InvalidDelayParameter {
                name: "up(0)",
                value: up0,
                constraint: "must be > 0 (strict causality)",
            });
        }
        // spot-check monotonicity on a few probes
        let mut prev = f64::NEG_INFINITY;
        for i in 1..=16 {
            let t = domain_min + (i as f64 / 16.0) * (2.0 * domain_min.abs() + 4.0);
            let v = up(t);
            if v.is_finite() && prev.is_finite() && v <= prev {
                return Err(Error::InvalidDelayParameter {
                    name: "up",
                    value: t,
                    constraint: "must be strictly increasing",
                });
            }
            prev = v;
        }
        Ok(DerivedPair {
            up,
            up_inf,
            domain_min,
            tolerance: 1e-12,
        })
    }

    /// Sets the bisection tolerance used when inverting `δ↑` (default
    /// `1e-12`, relative to the bracket size).
    #[must_use]
    pub fn with_tolerance(mut self, tolerance: f64) -> Self {
        self.tolerance = tolerance.abs().max(f64::EPSILON);
        self
    }

    /// Inverts δ↑: finds `x` with `up(x) = y`, for `y < up_inf`.
    fn invert_up(&self, y: f64) -> f64 {
        debug_assert!(y < self.up_inf);
        // bracket: lo just above domain_min (up → −∞), hi grows until up(hi) > y
        let mut lo = self.domain_min;
        let mut hi = self.domain_min.abs().max(1.0);
        let mut tries = 0;
        while (self.up)(hi) < y {
            hi *= 2.0;
            tries += 1;
            if tries > 200 {
                return f64::INFINITY;
            }
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if hi - lo < self.tolerance * hi.abs().max(1.0) {
                break;
            }
            if (self.up)(mid) < y {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }
}

impl<F: Fn(f64) -> f64> DelayPair for DerivedPair<F> {
    fn delta_up(&self, t: f64) -> f64 {
        if t == f64::INFINITY {
            return self.up_inf;
        }
        if t <= self.domain_min {
            return f64::NEG_INFINITY;
        }
        (self.up)(t)
    }

    fn delta_down(&self, t: f64) -> f64 {
        // δ↓(T) = −δ↑⁻¹(−T); domain T > −δ↑∞, sup = −domain_min
        if t == f64::INFINITY {
            return -self.domain_min;
        }
        if t <= -self.up_inf {
            return f64::NEG_INFINITY;
        }
        -self.invert_up(-t)
    }

    fn delta_up_inf(&self) -> f64 {
        self.up_inf
    }

    fn delta_down_inf(&self) -> f64 {
        -self.domain_min
    }
}

impl<F> fmt::Debug for DerivedPair<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DerivedPair")
            .field("up_inf", &self.up_inf)
            .field("domain_min", &self.domain_min)
            .field("tolerance", &self.tolerance)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delay::{check_involution, delta_min_of, ExpChannel, RationalPair};

    fn derived_from_exp(tau: f64, t_p: f64, v_th: f64) -> DerivedPair<impl Fn(f64) -> f64> {
        let exp = ExpChannel::new(tau, t_p, v_th).unwrap();
        let up_inf = exp.delta_up_inf();
        let domain_min = -exp.delta_down_inf();
        DerivedPair::new(move |t| exp.delta_up(t), up_inf, domain_min).unwrap()
    }

    #[test]
    fn derived_down_matches_closed_form() {
        let exp = ExpChannel::new(1.0, 0.5, 0.3).unwrap();
        let d = derived_from_exp(1.0, 0.5, 0.3);
        for &t in &[-0.4, -0.1, 0.0, 0.5, 2.0, 20.0] {
            let want = exp.delta_down(t);
            let got = d.delta_down(t);
            assert!((got - want).abs() < 1e-8, "t={t}: {got} vs {want}");
        }
    }

    #[test]
    fn involution_property_by_construction() {
        let d = derived_from_exp(0.7, 0.2, 0.6);
        let report = check_involution(&d, -0.18, 5.0, 60);
        assert!(report.max_roundtrip_error < 1e-6, "{report:?}");
    }

    #[test]
    fn delta_min_matches_underlying() {
        let d = derived_from_exp(1.0, 0.5, 0.5);
        let dm = delta_min_of(&d).unwrap();
        assert!((dm - 0.5).abs() < 1e-8);
    }

    #[test]
    fn rational_roundtrip_through_derivation() {
        let r = RationalPair::new(2.0, 1.0, 3.0).unwrap();
        let d = DerivedPair::new(move |t| r.delta_up(t), 2.0, -3.0).unwrap();
        for &t in &[-1.5, 0.0, 1.0, 4.0] {
            assert!((d.delta_down(t) - r.delta_down(t)).abs() < 1e-8, "t={t}");
        }
        assert_eq!(d.delta_down_inf(), r.delta_down_inf());
        assert_eq!(d.delta_up_inf(), r.delta_up_inf());
    }

    #[test]
    fn constructor_validates() {
        assert!(DerivedPair::new(|t: f64| t.min(1.0), f64::INFINITY, -1.0).is_err());
        assert!(DerivedPair::new(|_t: f64| -1.0, 1.0, -1.0).is_err()); // not causal
        assert!(DerivedPair::new(|t: f64| 1.0 - t, 1.0, -1.0).is_err()); // decreasing
        assert!(DerivedPair::new(|t: f64| t, 1.0, 1.0).is_err()); // domain_min >= 0
    }

    #[test]
    fn extended_arguments() {
        let d = derived_from_exp(1.0, 0.5, 0.5);
        assert_eq!(d.delta_up(f64::INFINITY), d.delta_up_inf());
        assert_eq!(d.delta_down(f64::INFINITY), d.delta_down_inf());
        assert_eq!(d.delta_up(d.delta_up(-100.0)), f64::NEG_INFINITY);
        assert_eq!(d.delta_down(-d.delta_up_inf() - 1.0), f64::NEG_INFINITY);
    }

    #[test]
    fn debug_impl_nonempty() {
        let d = derived_from_exp(1.0, 0.5, 0.5);
        assert!(!format!("{d:?}").is_empty());
    }

    #[test]
    fn with_tolerance_still_accurate_enough() {
        let exp = ExpChannel::new(1.0, 0.5, 0.4).unwrap();
        let e2 = exp.clone();
        let d = DerivedPair::new(
            move |t| exp.delta_up(t),
            e2.delta_up_inf(),
            -e2.delta_down_inf(),
        )
        .unwrap()
        .with_tolerance(1e-9);
        assert!((d.delta_down(0.5) - e2.delta_down(0.5)).abs() < 1e-6);
    }
}
