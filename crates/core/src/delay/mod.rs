//! Involution delay functions.
//!
//! An involution channel is characterized by two strictly increasing
//! concave delay functions
//! `δ↑ : (−δ↓∞, ∞) → (−∞, δ↑∞)` and `δ↓ : (−δ↑∞, ∞) → (−∞, δ↓∞)`
//! with finite limits `δ↑∞`, `δ↓∞` satisfying the involution property
//!
//! ```text
//! −δ↑(−δ↓(T)) = T   and   −δ↓(−δ↑(T)) = T .
//! ```
//!
//! The trait [`DelayPair`] captures such a pair. Implementations:
//!
//! * [`ExpChannel`] — the closed-form family arising from gates driving
//!   RC loads with a switching threshold (`δ_min = T_p` exactly);
//! * [`RationalPair`] — a fully closed-form algebraic involution family,
//!   convenient for exact tests;
//! * [`DerivedPair`] — derives `δ↓` from an arbitrary user-supplied `δ↑`
//!   via `δ↓(T) = −δ↑⁻¹(−T)`, so the involution property holds by
//!   construction;
//! * [`PiecewiseLinearPair`] — built from measured `(T, δ↑)` samples,
//!   with the reflected polyline as `δ↓` (involution-exact);
//! * [`EmpiricalPair`] — two independently measured polylines, as lab
//!   data comes (involution property approximate, quantifiable).
//!
//! Free functions [`delta_min_of`], [`check_involution`] and the
//! [`fit`] submodule (least-squares exp-channel fitting) operate on any
//! `DelayPair`.

mod derived;
mod empirical;
mod exp;
pub mod fit;
mod piecewise;
mod polyline;
mod rational;

pub use derived::DerivedPair;
pub use empirical::EmpiricalPair;
pub use exp::ExpChannel;
pub use piecewise::PiecewiseLinearPair;
pub use rational::RationalPair;

use crate::bit::Edge;
use crate::error::Error;

/// A pair of involution delay functions `(δ↑, δ↓)`.
///
/// # Conventions for extended arguments
///
/// Implementations must be total on `f64`:
///
/// * `delta_up(T)` returns `δ↑∞` for `T = +∞` and `−∞` for any
///   `T ≤ −δ↓∞` (outside the mathematical domain — this implements the
///   `max{·, −δ∞}` guard of the paper's Section III, under which such
///   transitions cancel);
/// * symmetrically for `delta_down`.
///
/// # Examples
///
/// ```
/// use ivl_core::delay::{DelayPair, ExpChannel};
/// # fn main() -> Result<(), ivl_core::Error> {
/// let d = ExpChannel::new(1.0, 0.5, 0.5)?;
/// let t = 0.3;
/// let roundtrip = -d.delta_up(-d.delta_down(t));
/// assert!((roundtrip - t).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub trait DelayPair {
    /// The rising delay `δ↑(T)`.
    fn delta_up(&self, t: f64) -> f64;

    /// The falling delay `δ↓(T)`.
    fn delta_down(&self, t: f64) -> f64;

    /// `δ↑∞ = lim_{T→∞} δ↑(T)`.
    fn delta_up_inf(&self) -> f64;

    /// `δ↓∞ = lim_{T→∞} δ↓(T)`.
    fn delta_down_inf(&self) -> f64;

    /// Dispatches on the edge: `δ↑` for rising, `δ↓` for falling.
    fn delta(&self, edge: Edge, t: f64) -> f64 {
        match edge {
            Edge::Rising => self.delta_up(t),
            Edge::Falling => self.delta_down(t),
        }
    }

    /// Limit for the given edge.
    fn delta_inf(&self, edge: Edge) -> f64 {
        match edge {
            Edge::Rising => self.delta_up_inf(),
            Edge::Falling => self.delta_down_inf(),
        }
    }

    /// The unique `δ_min > 0` with `δ↑(−δ_min) = δ_min = δ↓(−δ_min)`
    /// (Lemma 1 of the paper).
    ///
    /// The default implementation bisects; implementations with a closed
    /// form (e.g. [`ExpChannel`], where `δ_min = T_p`) override it.
    fn delta_min(&self) -> f64 {
        delta_min_of(self).expect("valid involution pair has a delta_min")
    }

    /// Derivative `δ↑′(T)`; default is a central finite difference.
    fn d_delta_up(&self, t: f64) -> f64 {
        central_difference(|x| self.delta_up(x), t)
    }

    /// Derivative `δ↓′(T)`; default is a central finite difference.
    fn d_delta_down(&self, t: f64) -> f64 {
        central_difference(|x| self.delta_down(x), t)
    }
}

impl<D: DelayPair + ?Sized> DelayPair for &D {
    fn delta_up(&self, t: f64) -> f64 {
        (**self).delta_up(t)
    }
    fn delta_down(&self, t: f64) -> f64 {
        (**self).delta_down(t)
    }
    fn delta_up_inf(&self) -> f64 {
        (**self).delta_up_inf()
    }
    fn delta_down_inf(&self) -> f64 {
        (**self).delta_down_inf()
    }
    fn delta_min(&self) -> f64 {
        (**self).delta_min()
    }
    fn d_delta_up(&self, t: f64) -> f64 {
        (**self).d_delta_up(t)
    }
    fn d_delta_down(&self, t: f64) -> f64 {
        (**self).d_delta_down(t)
    }
}

impl<D: DelayPair + ?Sized> DelayPair for Box<D> {
    fn delta_up(&self, t: f64) -> f64 {
        (**self).delta_up(t)
    }
    fn delta_down(&self, t: f64) -> f64 {
        (**self).delta_down(t)
    }
    fn delta_up_inf(&self) -> f64 {
        (**self).delta_up_inf()
    }
    fn delta_down_inf(&self) -> f64 {
        (**self).delta_down_inf()
    }
    fn delta_min(&self) -> f64 {
        (**self).delta_min()
    }
    fn d_delta_up(&self, t: f64) -> f64 {
        (**self).d_delta_up(t)
    }
    fn d_delta_down(&self, t: f64) -> f64 {
        (**self).d_delta_down(t)
    }
}

fn central_difference<F: Fn(f64) -> f64>(f: F, t: f64) -> f64 {
    let h = 1e-6 * t.abs().max(1.0);
    (f(t + h) - f(t - h)) / (2.0 * h)
}

/// Solves `δ↑(−x) = x` for the unique positive `δ_min` by bisection
/// (Lemma 1).
///
/// # Errors
///
/// Returns [`Error::SolverFailed`] if the pair is not strictly causal
/// (`δ↑(0) ≤ 0`) or no bracket can be established.
pub fn delta_min_of<D: DelayPair + ?Sized>(pair: &D) -> Result<f64, Error> {
    // g(x) = δ↑(−x) − x is strictly decreasing; g(0) = δ↑(0) > 0 for a
    // strictly causal channel, and g(x) → −∞ as x → δ↓∞.
    let g = |x: f64| pair.delta_up(-x) - x;
    let g0 = g(0.0);
    if !(g0.is_finite() && g0 > 0.0) {
        return Err(Error::SolverFailed {
            what: "delta_min: delta_up(0) must be finite and > 0 (strict causality)",
        });
    }
    // Expand hi until g(hi) < 0. For exact involution pairs g(x) → −∞ as
    // x → δ↓∞ (δ↑(−x) leaves its domain); for extrapolating families
    // (e.g. piecewise-linear) g still goes to −∞ linearly.
    let mut hi = 1.0_f64;
    let mut tries = 0;
    while g(hi) > 0.0 {
        hi *= 2.0;
        tries += 1;
        if tries > 200 {
            return Err(Error::SolverFailed {
                what: "delta_min: could not bracket root",
            });
        }
    }
    let mut lo = 0.0_f64;
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if mid <= lo || mid >= hi {
            break;
        }
        let v = g(mid);
        if v > 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(0.5 * (lo + hi))
}

/// Result of [`check_involution`]: the largest violations found.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct InvolutionReport {
    /// Largest `|−δ↑(−δ↓(T)) − T|` over the probed points.
    pub max_roundtrip_error: f64,
    /// Largest monotonicity violation of `δ↑` and `δ↓` over the probes
    /// (0 when strictly increasing).
    pub max_monotonicity_violation: f64,
    /// Largest convexity (anti-concavity) violation of the probed second
    /// differences (0 when concave).
    pub max_concavity_violation: f64,
}

impl InvolutionReport {
    /// `true` when all violations are within `tol`.
    #[must_use]
    pub fn is_valid(&self, tol: f64) -> bool {
        self.max_roundtrip_error <= tol
            && self.max_monotonicity_violation <= tol
            && self.max_concavity_violation <= tol
    }
}

/// Numerically checks the involution property, strict monotonicity and
/// concavity of a [`DelayPair`] over `n` probe points spanning
/// `(t_min, t_max)` of the *image*-side domain.
#[must_use]
pub fn check_involution<D: DelayPair + ?Sized>(
    pair: &D,
    t_min: f64,
    t_max: f64,
    n: usize,
) -> InvolutionReport {
    let mut report = InvolutionReport::default();
    if n < 3 || t_max <= t_min {
        return report;
    }
    let step = (t_max - t_min) / (n - 1) as f64;
    let mut prev_up = f64::NEG_INFINITY;
    let mut prev_down = f64::NEG_INFINITY;
    let mut prev_dup = f64::INFINITY;
    let mut prev_ddown = f64::INFINITY;
    for i in 0..n {
        let t = t_min + i as f64 * step;
        // involution round trips
        let rt1 = -pair.delta_up(-pair.delta_down(t)) - t;
        let rt2 = -pair.delta_down(-pair.delta_up(t)) - t;
        if rt1.is_finite() {
            report.max_roundtrip_error = report.max_roundtrip_error.max(rt1.abs());
        }
        if rt2.is_finite() {
            report.max_roundtrip_error = report.max_roundtrip_error.max(rt2.abs());
        }
        // monotonicity (values must strictly increase along probes)
        let up = pair.delta_up(t);
        let down = pair.delta_down(t);
        if up.is_finite() && prev_up.is_finite() {
            report.max_monotonicity_violation = report.max_monotonicity_violation.max(prev_up - up);
        }
        if down.is_finite() && prev_down.is_finite() {
            report.max_monotonicity_violation =
                report.max_monotonicity_violation.max(prev_down - down);
        }
        prev_up = up;
        prev_down = down;
        // concavity: derivative must be non-increasing
        let dup = pair.d_delta_up(t);
        let ddown = pair.d_delta_down(t);
        if dup.is_finite() && prev_dup.is_finite() {
            report.max_concavity_violation = report.max_concavity_violation.max(dup - prev_dup);
        }
        if ddown.is_finite() && prev_ddown.is_finite() {
            report.max_concavity_violation = report.max_concavity_violation.max(ddown - prev_ddown);
        }
        prev_dup = dup;
        prev_ddown = ddown;
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_min_of_exp_channel_is_tp() {
        let d = ExpChannel::new(1.0, 0.5, 0.5).unwrap();
        let dm = delta_min_of(&d).unwrap();
        assert!((dm - 0.5).abs() < 1e-9, "delta_min = {dm}, expected T_p");
    }

    #[test]
    fn delta_min_fixed_point_property() {
        let d = ExpChannel::new(2.0, 0.7, 0.4).unwrap();
        let dm = delta_min_of(&d).unwrap();
        assert!((d.delta_up(-dm) - dm).abs() < 1e-9);
        assert!((d.delta_down(-dm) - dm).abs() < 1e-9);
        assert!(dm > 0.0);
    }

    #[test]
    fn derivative_identity_of_lemma_1() {
        // δ′↑(−δ↓(T)) = 1/δ′↓(T)
        let d = ExpChannel::new(1.3, 0.4, 0.35).unwrap();
        for &t in &[-0.3, 0.0, 0.5, 2.0] {
            let lhs = d.d_delta_up(-d.delta_down(t));
            let rhs = 1.0 / d.d_delta_down(t);
            assert!(
                (lhs - rhs).abs() < 1e-4 * rhs.abs().max(1.0),
                "t={t}: {lhs} vs {rhs}"
            );
        }
    }

    #[test]
    fn check_involution_accepts_exp_channel() {
        let d = ExpChannel::new(1.0, 0.5, 0.45).unwrap();
        let report = check_involution(&d, -0.4, 5.0, 101);
        assert!(report.is_valid(1e-7), "{report:?}");
    }

    #[test]
    fn check_involution_rejects_broken_pair() {
        /// Deliberately broken pair: δ↓ shifted, so round trips fail.
        #[derive(Debug)]
        struct Broken(ExpChannel);
        impl DelayPair for Broken {
            fn delta_up(&self, t: f64) -> f64 {
                self.0.delta_up(t)
            }
            fn delta_down(&self, t: f64) -> f64 {
                self.0.delta_down(t) + 0.1
            }
            fn delta_up_inf(&self) -> f64 {
                self.0.delta_up_inf()
            }
            fn delta_down_inf(&self) -> f64 {
                self.0.delta_down_inf() + 0.1
            }
        }
        let d = Broken(ExpChannel::new(1.0, 0.5, 0.5).unwrap());
        let report = check_involution(&d, -0.3, 3.0, 51);
        assert!(!report.is_valid(1e-7));
        assert!(report.max_roundtrip_error > 0.01);
    }

    #[test]
    fn delta_dispatch_by_edge() {
        let d = ExpChannel::new(1.0, 0.5, 0.4).unwrap();
        assert_eq!(d.delta(Edge::Rising, 1.0), d.delta_up(1.0));
        assert_eq!(d.delta(Edge::Falling, 1.0), d.delta_down(1.0));
        assert_eq!(d.delta_inf(Edge::Rising), d.delta_up_inf());
        assert_eq!(d.delta_inf(Edge::Falling), d.delta_down_inf());
    }

    #[test]
    fn blanket_impls_delegate() {
        let d = ExpChannel::new(1.0, 0.5, 0.5).unwrap();
        let r = &d;
        let b: Box<dyn DelayPair> = Box::new(d.clone());
        assert_eq!(r.delta_up(0.3), d.delta_up(0.3));
        assert_eq!(b.delta_down(0.3), d.delta_down(0.3));
        assert_eq!(b.delta_min(), d.delta_min());
        assert_eq!(r.delta_up_inf(), d.delta_up_inf());
        assert_eq!(b.delta_down_inf(), d.delta_down_inf());
        assert!((b.d_delta_up(0.1) - d.d_delta_up(0.1)).abs() < 1e-12);
        assert!((r.d_delta_down(0.1) - d.d_delta_down(0.1)).abs() < 1e-12);
    }

    #[test]
    fn delta_min_rejects_non_causal() {
        // A pair with δ↑(0) < 0 is not strictly causal.
        #[derive(Debug)]
        struct Shifted(ExpChannel);
        impl DelayPair for Shifted {
            fn delta_up(&self, t: f64) -> f64 {
                self.0.delta_up(t) - 10.0
            }
            fn delta_down(&self, t: f64) -> f64 {
                self.0.delta_down(t) - 10.0
            }
            fn delta_up_inf(&self) -> f64 {
                self.0.delta_up_inf() - 10.0
            }
            fn delta_down_inf(&self) -> f64 {
                self.0.delta_down_inf() - 10.0
            }
        }
        let d = Shifted(ExpChannel::new(1.0, 0.5, 0.5).unwrap());
        assert!(delta_min_of(&d).is_err());
    }
}
