//! Least-squares fitting of exp-channel parameters to measured delay
//! samples (the procedure behind Fig. 9 of the paper).

use crate::delay::{DelayPair, ExpChannel};
use crate::error::Error;

/// Result of an exp-channel fit.
#[derive(Debug, Clone)]
pub struct FitResult {
    /// The fitted channel.
    pub channel: ExpChannel,
    /// Residual sum of squares at the optimum.
    pub rss: f64,
    /// Root-mean-square residual.
    pub rms: f64,
    /// Number of Nelder–Mead iterations performed.
    pub iterations: usize,
}

/// Fits exp-channel parameters `(τ, T_p, V_th)` to samples of `δ↑` and/or
/// `δ↓` by Nelder–Mead on log/logit-transformed parameters.
///
/// Either sample slice may be empty, but not both. Sample points that the
/// candidate model maps to `−∞` (outside its domain) incur a large finite
/// penalty instead, keeping the objective total.
///
/// # Errors
///
/// Returns [`Error::InvalidSampleData`] if both sample sets are empty and
/// [`Error::SolverFailed`] if no valid parameter vector is found.
///
/// # Examples
///
/// ```
/// use ivl_core::delay::{DelayPair, ExpChannel, fit::fit_exp_channel};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let truth = ExpChannel::new(1.2, 0.4, 0.45)?;
/// let ups: Vec<(f64, f64)> = (0..40)
///     .map(|i| { let t = -0.3 + 0.1 * i as f64; (t, truth.delta_up(t)) })
///     .collect();
/// let downs: Vec<(f64, f64)> = (0..40)
///     .map(|i| { let t = -0.3 + 0.1 * i as f64; (t, truth.delta_down(t)) })
///     .collect();
/// let fit = fit_exp_channel(&ups, &downs, None)?;
/// assert!((fit.channel.tau() - 1.2).abs() < 0.05);
/// # Ok(())
/// # }
/// ```
pub fn fit_exp_channel(
    up_samples: &[(f64, f64)],
    down_samples: &[(f64, f64)],
    initial: Option<ExpChannel>,
) -> Result<FitResult, Error> {
    if up_samples.is_empty() && down_samples.is_empty() {
        return Err(Error::InvalidSampleData {
            reason: "no samples to fit",
        });
    }
    let n_samples = up_samples.len() + down_samples.len();

    // crude scale estimate for the initial simplex
    let scale = up_samples
        .iter()
        .chain(down_samples)
        .map(|&(_, d)| d.abs())
        .fold(0.0_f64, f64::max)
        .max(1e-12);
    let init = match initial {
        Some(ch) => ch,
        None => ExpChannel::new(scale, scale / 2.0, 0.5).expect("positive parameters"),
    };

    // Parameter transform keeps (τ, T_p) > 0 and V_th ∈ (0, 1).
    let encode = |ch: &ExpChannel| [ch.tau().ln(), ch.t_p().ln(), logit(ch.v_th())];
    let decode = |x: &[f64; 3]| -> Option<ExpChannel> {
        let tau = x[0].exp();
        let t_p = x[1].exp();
        let v_th = sigmoid(x[2]);
        ExpChannel::new(tau, t_p, v_th).ok()
    };
    let objective = |x: &[f64; 3]| -> f64 {
        let Some(ch) = decode(x) else {
            return f64::INFINITY;
        };
        let mut rss = 0.0;
        for &(t, d) in up_samples {
            rss += residual(ch.delta_up(t), d, scale);
        }
        for &(t, d) in down_samples {
            rss += residual(ch.delta_down(t), d, scale);
        }
        rss
    };

    let x0 = encode(&init);
    let (x_best, rss, iterations) = nelder_mead(objective, x0, 0.4, 2000, 1e-12);
    let channel = decode(&x_best).ok_or(Error::SolverFailed {
        what: "exp-channel fit produced invalid parameters",
    })?;
    Ok(FitResult {
        channel,
        rss,
        rms: (rss / n_samples as f64).sqrt(),
        iterations,
    })
}

fn residual(model: f64, data: f64, scale: f64) -> f64 {
    if model.is_finite() {
        (model - data).powi(2)
    } else {
        // outside the model's domain: large finite penalty
        (100.0 * scale).powi(2)
    }
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

fn logit(p: f64) -> f64 {
    (p / (1.0 - p)).ln()
}

/// Minimal Nelder–Mead in 3 dimensions. Returns `(best_x, best_f, iters)`.
fn nelder_mead<F: Fn(&[f64; 3]) -> f64>(
    f: F,
    x0: [f64; 3],
    step: f64,
    max_iter: usize,
    tol: f64,
) -> ([f64; 3], f64, usize) {
    const N: usize = 3;
    let mut simplex: Vec<[f64; 3]> = vec![x0];
    for i in 0..N {
        let mut x = x0;
        x[i] += step;
        simplex.push(x);
    }
    let mut values: Vec<f64> = simplex.iter().map(&f).collect();
    let mut iters = 0;
    for _ in 0..max_iter {
        iters += 1;
        // sort simplex by value
        let mut idx: Vec<usize> = (0..=N).collect();
        idx.sort_by(|&a, &b| values[a].total_cmp(&values[b]));
        let ordered: Vec<[f64; 3]> = idx.iter().map(|&i| simplex[i]).collect();
        let ordered_vals: Vec<f64> = idx.iter().map(|&i| values[i]).collect();
        simplex = ordered;
        values = ordered_vals;
        if (values[N] - values[0]).abs() <= tol * (values[0].abs() + tol) {
            break;
        }
        // centroid of all but worst
        let mut centroid = [0.0; 3];
        for x in simplex.iter().take(N) {
            for d in 0..N {
                centroid[d] += x[d] / N as f64;
            }
        }
        let worst = simplex[N];
        let reflect = |alpha: f64| {
            let mut x = [0.0; 3];
            for d in 0..N {
                x[d] = centroid[d] + alpha * (centroid[d] - worst[d]);
            }
            x
        };
        let xr = reflect(1.0);
        let fr = f(&xr);
        if fr < values[0] {
            let xe = reflect(2.0);
            let fe = f(&xe);
            if fe < fr {
                simplex[N] = xe;
                values[N] = fe;
            } else {
                simplex[N] = xr;
                values[N] = fr;
            }
        } else if fr < values[N - 1] {
            simplex[N] = xr;
            values[N] = fr;
        } else {
            let xc = reflect(-0.5);
            let fc = f(&xc);
            if fc < values[N] {
                simplex[N] = xc;
                values[N] = fc;
            } else {
                // shrink toward best
                let best = simplex[0];
                for i in 1..=N {
                    for (d, s) in simplex[i].iter_mut().enumerate() {
                        *s = best[d] + 0.5 * (*s - best[d]);
                    }
                    values[i] = f(&simplex[i]);
                }
            }
        }
    }
    (simplex[0], values[0], iters)
}

#[cfg(test)]
mod tests {
    use super::*;

    type Samples = Vec<(f64, f64)>;

    fn sample_channel(ch: &ExpChannel, lo: f64, hi: f64, n: usize) -> (Samples, Samples) {
        let ups = (0..n)
            .map(|i| {
                let t = lo + (hi - lo) * i as f64 / (n - 1) as f64;
                (t, ch.delta_up(t))
            })
            .collect();
        let downs = (0..n)
            .map(|i| {
                let t = lo + (hi - lo) * i as f64 / (n - 1) as f64;
                (t, ch.delta_down(t))
            })
            .collect();
        (ups, downs)
    }

    #[test]
    fn recovers_exact_parameters_from_clean_data() {
        let truth = ExpChannel::new(1.5, 0.6, 0.4).unwrap();
        let (ups, downs) = sample_channel(&truth, -0.5, 5.0, 60);
        let fit = fit_exp_channel(&ups, &downs, None).unwrap();
        assert!((fit.channel.tau() - 1.5).abs() < 0.02, "{:?}", fit.channel);
        assert!((fit.channel.t_p() - 0.6).abs() < 0.02);
        assert!((fit.channel.v_th() - 0.4).abs() < 0.02);
        assert!(fit.rms < 1e-3, "rms = {}", fit.rms);
    }

    #[test]
    fn fits_up_only_data() {
        let truth = ExpChannel::new(0.8, 0.3, 0.5).unwrap();
        let (ups, _) = sample_channel(&truth, -0.2, 4.0, 50);
        let fit = fit_exp_channel(&ups, &[], None).unwrap();
        assert!(fit.rms < 1e-2, "rms = {}", fit.rms);
    }

    #[test]
    fn fits_noisy_data_with_small_rms() {
        let truth = ExpChannel::new(1.0, 0.5, 0.5).unwrap();
        let (mut ups, mut downs) = sample_channel(&truth, -0.4, 5.0, 80);
        // deterministic pseudo-noise
        for (i, s) in ups.iter_mut().enumerate() {
            s.1 += 0.002 * ((i * 2654435761) % 1000) as f64 / 1000.0 - 0.001;
        }
        for (i, s) in downs.iter_mut().enumerate() {
            s.1 += 0.002 * ((i * 1103515245) % 1000) as f64 / 1000.0 - 0.001;
        }
        let fit = fit_exp_channel(&ups, &downs, None).unwrap();
        assert!(fit.rms < 0.01, "rms = {}", fit.rms);
    }

    #[test]
    fn rejects_empty_input() {
        assert!(fit_exp_channel(&[], &[], None).is_err());
    }

    #[test]
    fn initial_guess_is_respected() {
        let truth = ExpChannel::new(2.0, 1.0, 0.6).unwrap();
        let (ups, downs) = sample_channel(&truth, -0.8, 6.0, 40);
        let init = ExpChannel::new(2.1, 0.9, 0.55).unwrap();
        let fit = fit_exp_channel(&ups, &downs, Some(init)).unwrap();
        assert!(fit.rms < 1e-3);
        assert!(fit.iterations < 2000);
    }
}
