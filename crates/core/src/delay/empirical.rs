//! Delay pairs built from *independently measured* `δ↑` and `δ↓`
//! samples.

use crate::delay::polyline::Polyline;
use crate::delay::DelayPair;
use crate::error::Error;

/// A delay pair interpolating two independently measured polylines —
/// one for `δ↑`, one for `δ↓` — as extracted from lab measurements or
/// analog simulation (the per-edge delay functions of the paper's
/// Figs. 7–9).
///
/// Unlike [`PiecewiseLinearPair`](crate::delay::PiecewiseLinearPair),
/// which *derives* `δ↓` from `δ↑` so that the involution property holds
/// exactly, an `EmpiricalPair` represents the data as measured; how
/// close it is to a true involution can be quantified with
/// [`check_involution`](crate::delay::check_involution) (and is itself a
/// modeling-accuracy question the paper's Section V investigates).
///
/// Outside the sampled ranges the polylines extrapolate with their end
/// slopes; `δ∞` values are the last sampled delays.
///
/// # Examples
///
/// ```
/// use ivl_core::delay::{DelayPair, EmpiricalPair};
/// # fn main() -> Result<(), ivl_core::Error> {
/// let up = [(0.0, 1.0), (5.0, 1.8), (20.0, 2.0)];
/// let down = [(0.0, 1.1), (5.0, 1.9), (20.0, 2.2)];
/// let d = EmpiricalPair::from_samples(&up, &down)?;
/// assert_eq!(d.delta_up(5.0), 1.8);
/// assert_eq!(d.delta_down_inf(), 2.2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EmpiricalPair {
    up: Polyline,
    down: Polyline,
}

impl EmpiricalPair {
    /// Builds the pair from `(T, δ↑)` and `(T, δ↓)` samples (each sorted
    /// by strictly increasing `T` with strictly increasing delays).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidSampleData`] if either sample set is
    /// unusable (fewer than two points, non-monotone, non-finite,
    /// strongly non-concave) or strict causality `δ(0) > 0` fails.
    pub fn from_samples(up: &[(f64, f64)], down: &[(f64, f64)]) -> Result<Self, Error> {
        let up = Polyline::new(up).ok_or(Error::InvalidSampleData {
            reason: "up samples must be >= 2 strictly increasing points",
        })?;
        let down = Polyline::new(down).ok_or(Error::InvalidSampleData {
            reason: "down samples must be >= 2 strictly increasing points",
        })?;
        for p in [&up, &down] {
            if p.max_slope_increase_ratio() > 0.15 {
                return Err(Error::InvalidSampleData {
                    reason: "data is strongly non-concave",
                });
            }
        }
        let pair = EmpiricalPair { up, down };
        if pair.delta_up(0.0) <= 0.0 || pair.delta_down(0.0) <= 0.0 {
            return Err(Error::InvalidSampleData {
                reason: "delta(0) must be > 0 (strict causality)",
            });
        }
        Ok(pair)
    }

    /// The sampled `T` range of the `δ↑` polyline.
    #[must_use]
    pub fn up_range(&self) -> (f64, f64) {
        self.up.x_range()
    }

    /// The sampled `T` range of the `δ↓` polyline.
    #[must_use]
    pub fn down_range(&self) -> (f64, f64) {
        self.down.x_range()
    }

    /// The `(T, δ↑)` sample points.
    #[must_use]
    pub fn up_samples(&self) -> Vec<(f64, f64)> {
        self.up.points().collect()
    }

    /// The `(T, δ↓)` sample points.
    #[must_use]
    pub fn down_samples(&self) -> Vec<(f64, f64)> {
        self.down.points().collect()
    }
}

impl DelayPair for EmpiricalPair {
    fn delta_up(&self, t: f64) -> f64 {
        if t == f64::INFINITY {
            return self.delta_up_inf();
        }
        self.up.eval(t)
    }

    fn delta_down(&self, t: f64) -> f64 {
        if t == f64::INFINITY {
            return self.delta_down_inf();
        }
        self.down.eval(t)
    }

    /// Last sampled `δ↑` value (saturation knee).
    fn delta_up_inf(&self) -> f64 {
        self.up.last_y()
    }

    /// Last sampled `δ↓` value (saturation knee).
    fn delta_down_inf(&self) -> f64 {
        self.down.last_y()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delay::{check_involution, delta_min_of, ExpChannel};

    fn from_exp(tau: f64, tp: f64, vth: f64, lo: f64, hi: f64, n: usize) -> EmpiricalPair {
        let d = ExpChannel::new(tau, tp, vth).unwrap();
        let sample = |f: &dyn Fn(f64) -> f64| -> Vec<(f64, f64)> {
            (0..n)
                .map(|i| {
                    let t = lo + (hi - lo) * i as f64 / (n - 1) as f64;
                    (t, f(t))
                })
                .collect()
        };
        EmpiricalPair::from_samples(&sample(&|t| d.delta_up(t)), &sample(&|t| d.delta_down(t)))
            .unwrap()
    }

    #[test]
    fn interpolates_both_edges_independently() {
        let exp = ExpChannel::new(1.0, 0.5, 0.3).unwrap();
        let p = from_exp(1.0, 0.5, 0.3, -0.3, 5.0, 80);
        for i in 0..40 {
            let t = -0.25 + i as f64 * 0.12;
            assert!((p.delta_up(t) - exp.delta_up(t)).abs() < 5e-3, "t={t}");
            assert!((p.delta_down(t) - exp.delta_down(t)).abs() < 5e-3, "t={t}");
        }
    }

    #[test]
    fn near_involution_when_data_comes_from_one() {
        // Probe the faithfulness-relevant region around −δ_min, where
        // the round-trip −δ↑(−δ↓(T)) stays inside the sampled ranges;
        // for larger T the image −δ↓(T) leaves the data and only the
        // end-slope extrapolation remains.
        let p = from_exp(1.0, 0.5, 0.4, -0.95, 4.0, 200);
        let report = check_involution(&p, -0.35, -0.15, 20);
        assert!(report.max_roundtrip_error < 0.02, "{report:?}");
    }

    #[test]
    fn delta_min_close_to_truth() {
        let p = from_exp(1.0, 0.5, 0.5, -0.45, 4.0, 100);
        let dm = delta_min_of(&p).unwrap();
        assert!((dm - 0.5).abs() < 0.02, "delta_min = {dm}");
    }

    #[test]
    fn validation() {
        assert!(EmpiricalPair::from_samples(&[(0.0, 1.0)], &[(0.0, 1.0), (1.0, 2.0)]).is_err());
        assert!(
            EmpiricalPair::from_samples(&[(0.0, 2.0), (1.0, 1.0)], &[(0.0, 1.0), (1.0, 2.0)])
                .is_err()
        );
        // convex data rejected
        assert!(EmpiricalPair::from_samples(
            &[(0.0, 1.0), (1.0, 1.1), (2.0, 3.0)],
            &[(0.0, 1.0), (1.0, 2.0)]
        )
        .is_err());
        // non-causal rejected
        assert!(EmpiricalPair::from_samples(
            &[(1.0, -3.0), (2.0, -2.0)],
            &[(0.0, 1.0), (1.0, 2.0)]
        )
        .is_err());
    }

    #[test]
    fn accessors() {
        let p = from_exp(1.0, 0.5, 0.5, 0.0, 3.0, 10);
        assert_eq!(p.up_range(), (0.0, 3.0));
        assert_eq!(p.down_range(), (0.0, 3.0));
        assert_eq!(p.up_samples().len(), 10);
        assert_eq!(p.down_samples().len(), 10);
        assert_eq!(p.delta_up(f64::INFINITY), p.delta_up_inf());
        assert_eq!(p.delta_down(f64::INFINITY), p.delta_down_inf());
    }
}
