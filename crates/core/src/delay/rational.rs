//! A fully algebraic involution family, useful for exact tests.

use crate::delay::DelayPair;
use crate::error::Error;

/// The rational involution pair
///
/// ```text
/// δ↑(T) = a − b/(T + c)   on (−c, ∞), with δ↑∞ = a,
/// δ↓(T) = c − b/(T + a)   on (−a, ∞), with δ↓∞ = c.
/// ```
///
/// Both functions are strictly increasing and concave on their domains,
/// and the involution property holds *exactly* (by algebra, not numerics):
/// solving `δ↑(x) = −T` gives `x = b/(a + T) − c`, hence
/// `−δ↑⁻¹(−T) = c − b/(T + a) = δ↓(T)`.
///
/// This family is convenient for tests because every quantity —
/// including `δ_min` — has a closed form:
/// `δ_min = ((a + c) − sqrt((a − c)² + 4b))/2` … the positive root of
/// `x² − (a + c)x + (ac − b) = 0` below `min(a, c)`.
///
/// # Examples
///
/// ```
/// use ivl_core::delay::{DelayPair, RationalPair};
/// # fn main() -> Result<(), ivl_core::Error> {
/// let d = RationalPair::new(2.0, 1.0, 2.0)?;
/// let t = 0.7;
/// assert!((-d.delta_up(-d.delta_down(t)) - t).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RationalPair {
    a: f64,
    b: f64,
    c: f64,
}

impl RationalPair {
    /// Creates the pair with `δ↑(T) = a − b/(T + c)` and
    /// `δ↓(T) = c − b/(T + a)`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidDelayParameter`] unless `a, b, c > 0` and
    /// strict causality holds: `δ↑(0) = a − b/c > 0` and
    /// `δ↓(0) = c − b/a > 0`, i.e. `b < min(ac, ca) = ac`.
    pub fn new(a: f64, b: f64, c: f64) -> Result<Self, Error> {
        for (name, value) in [("a", a), ("b", b), ("c", c)] {
            if !(value.is_finite() && value > 0.0) {
                return Err(Error::InvalidDelayParameter {
                    name: match name {
                        "a" => "a",
                        "b" => "b",
                        _ => "c",
                    },
                    value,
                    constraint: "must be finite and > 0",
                });
            }
        }
        if b >= a * c {
            return Err(Error::InvalidDelayParameter {
                name: "b",
                value: b,
                constraint: "must satisfy b < a*c (strict causality)",
            });
        }
        Ok(RationalPair { a, b, c })
    }

    /// A symmetric pair (`a = c`), for which `δ↑ = δ↓`.
    ///
    /// # Errors
    ///
    /// Same as [`RationalPair::new`].
    pub fn symmetric(a: f64, b: f64) -> Result<Self, Error> {
        RationalPair::new(a, b, a)
    }

    /// Closed-form `δ_min`: the smaller root of
    /// `x² − (a + c)x + (ac − b) = 0`.
    #[must_use]
    pub fn delta_min_closed_form(&self) -> f64 {
        let s = self.a + self.c;
        let disc = (self.a - self.c).powi(2) + 4.0 * self.b;
        0.5 * (s - disc.sqrt())
    }

    fn eval(t: f64, shift: f64, b: f64, sup: f64) -> f64 {
        if t == f64::INFINITY {
            return sup;
        }
        let denom = t + shift;
        if denom <= 0.0 {
            f64::NEG_INFINITY
        } else {
            sup - b / denom
        }
    }

    fn eval_derivative(t: f64, shift: f64, b: f64) -> f64 {
        if t == f64::INFINITY {
            return 0.0;
        }
        let denom = t + shift;
        if denom <= 0.0 {
            f64::INFINITY
        } else {
            b / (denom * denom)
        }
    }
}

impl DelayPair for RationalPair {
    fn delta_up(&self, t: f64) -> f64 {
        Self::eval(t, self.c, self.b, self.a)
    }

    fn delta_down(&self, t: f64) -> f64 {
        Self::eval(t, self.a, self.b, self.c)
    }

    fn delta_up_inf(&self) -> f64 {
        self.a
    }

    fn delta_down_inf(&self) -> f64 {
        self.c
    }

    fn delta_min(&self) -> f64 {
        self.delta_min_closed_form()
    }

    fn d_delta_up(&self, t: f64) -> f64 {
        Self::eval_derivative(t, self.c, self.b)
    }

    fn d_delta_down(&self, t: f64) -> f64 {
        Self::eval_derivative(t, self.a, self.b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delay::{check_involution, delta_min_of};

    #[test]
    fn constructor_validates() {
        assert!(RationalPair::new(1.0, 0.5, 1.0).is_ok());
        assert!(RationalPair::new(1.0, 1.0, 1.0).is_err()); // b == a*c
        assert!(RationalPair::new(1.0, 2.0, 1.0).is_err());
        assert!(RationalPair::new(0.0, 0.5, 1.0).is_err());
        assert!(RationalPair::new(1.0, -0.5, 1.0).is_err());
        assert!(RationalPair::new(f64::NAN, 0.5, 1.0).is_err());
    }

    #[test]
    fn involution_exact() {
        let d = RationalPair::new(2.0, 1.5, 3.0).unwrap();
        for i in 0..200 {
            let t = -1.9 + i as f64 * 0.05;
            let rt = -d.delta_up(-d.delta_down(t));
            assert!((rt - t).abs() < 1e-10, "t={t}, roundtrip={rt}");
            let rt = -d.delta_down(-d.delta_up(t));
            assert!((rt - t).abs() < 1e-10);
        }
    }

    #[test]
    fn closed_form_delta_min_matches_solver() {
        for (a, b, c) in [(2.0, 1.0, 2.0), (1.0, 0.3, 2.0), (5.0, 2.0, 0.9)] {
            let d = RationalPair::new(a, b, c).unwrap();
            let solver = delta_min_of(&d).unwrap();
            let closed = d.delta_min_closed_form();
            assert!((solver - closed).abs() < 1e-9, "{a},{b},{c}");
            // and it is a fixed point
            assert!((d.delta_up(-closed) - closed).abs() < 1e-12);
            assert!((d.delta_down(-closed) - closed).abs() < 1e-12);
            assert!(closed > 0.0);
        }
    }

    #[test]
    fn symmetric_pair_has_equal_functions() {
        let d = RationalPair::symmetric(2.0, 1.0).unwrap();
        for &t in &[-1.5, 0.0, 1.0, 10.0] {
            assert_eq!(d.delta_up(t), d.delta_down(t));
        }
    }

    #[test]
    fn extended_arguments_and_limits() {
        let d = RationalPair::new(2.0, 1.0, 3.0).unwrap();
        assert_eq!(d.delta_up(f64::INFINITY), 2.0);
        assert_eq!(d.delta_down(f64::INFINITY), 3.0);
        assert_eq!(d.delta_up(-3.0), f64::NEG_INFINITY);
        assert_eq!(d.delta_up(-4.0), f64::NEG_INFINITY);
        assert_eq!(d.delta_down(-2.0), f64::NEG_INFINITY);
    }

    #[test]
    fn report_is_clean() {
        let d = RationalPair::new(2.0, 1.0, 2.5).unwrap();
        let report = check_involution(&d, -1.8, 8.0, 101);
        assert!(report.is_valid(1e-8), "{report:?}");
    }

    #[test]
    fn derivatives_exact() {
        let d = RationalPair::new(2.0, 1.0, 3.0).unwrap();
        // δ↑′(T) = b/(T+c)^2
        assert!((d.d_delta_up(1.0) - 1.0 / 16.0).abs() < 1e-12);
        assert!((d.d_delta_down(1.0) - 1.0 / 9.0).abs() < 1e-12);
        assert_eq!(d.d_delta_up(f64::INFINITY), 0.0);
        assert_eq!(d.d_delta_up(-3.0), f64::INFINITY);
    }
}
