//! Shared strictly increasing polyline (internal helper for the
//! sample-based delay families).

/// A strictly increasing polyline through `(x, y)` points, extrapolated
/// beyond the sampled range with the end segments' slopes.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Polyline {
    xs: Vec<f64>,
    ys: Vec<f64>,
}

impl Polyline {
    /// Builds the polyline; returns `None` unless there are ≥ 2 finite
    /// points with strictly increasing `x` *and* `y`.
    pub(crate) fn new(points: &[(f64, f64)]) -> Option<Self> {
        if points.len() < 2 {
            return None;
        }
        let mut xs = Vec::with_capacity(points.len());
        let mut ys = Vec::with_capacity(points.len());
        for &(x, y) in points {
            if !x.is_finite() || !y.is_finite() {
                return None;
            }
            if let (Some(&px), Some(&py)) = (xs.last(), ys.last()) {
                if x <= px || y <= py {
                    return None;
                }
            }
            xs.push(x);
            ys.push(y);
        }
        Some(Polyline { xs, ys })
    }

    pub(crate) fn points(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.xs.iter().copied().zip(self.ys.iter().copied())
    }

    pub(crate) fn x_range(&self) -> (f64, f64) {
        (self.xs[0], *self.xs.last().expect("nonempty"))
    }

    pub(crate) fn last_y(&self) -> f64 {
        *self.ys.last().expect("nonempty")
    }

    /// Largest relative slope increase between consecutive segments
    /// (0 for concave data); used to validate concavity.
    pub(crate) fn max_slope_increase_ratio(&self) -> f64 {
        let mut prev = f64::INFINITY;
        let mut worst = 0.0_f64;
        for i in 1..self.xs.len() {
            let slope = (self.ys[i] - self.ys[i - 1]) / (self.xs[i] - self.xs[i - 1]);
            if prev.is_finite() && slope > prev {
                worst = worst.max(slope / prev - 1.0);
            }
            prev = slope;
        }
        worst
    }

    pub(crate) fn eval(&self, x: f64) -> f64 {
        let n = self.xs.len();
        let i = match self.xs.partition_point(|&v| v <= x) {
            0 => 0,
            k if k >= n => n - 2,
            k => k - 1,
        }
        .min(n - 2);
        let slope = (self.ys[i + 1] - self.ys[i]) / (self.xs[i + 1] - self.xs[i]);
        self.ys[i] + slope * (x - self.xs[i])
    }

    pub(crate) fn invert(&self, y: f64) -> f64 {
        let n = self.ys.len();
        let i = match self.ys.partition_point(|&v| v <= y) {
            0 => 0,
            k if k >= n => n - 2,
            k => k - 1,
        }
        .min(n - 2);
        let slope = (self.ys[i + 1] - self.ys[i]) / (self.xs[i + 1] - self.xs[i]);
        self.xs[i] + (y - self.ys[i]) / slope
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_rules() {
        assert!(Polyline::new(&[(0.0, 1.0)]).is_none());
        assert!(Polyline::new(&[(0.0, 1.0), (0.0, 2.0)]).is_none());
        assert!(Polyline::new(&[(0.0, 1.0), (1.0, 1.0)]).is_none());
        assert!(Polyline::new(&[(0.0, f64::NAN), (1.0, 2.0)]).is_none());
        assert!(Polyline::new(&[(0.0, 1.0), (1.0, 2.0)]).is_some());
    }

    #[test]
    fn eval_invert_roundtrip() {
        let p = Polyline::new(&[(0.0, 0.0), (1.0, 2.0), (3.0, 3.0)]).unwrap();
        for x in [-1.0, 0.0, 0.5, 1.0, 2.0, 3.0, 4.0] {
            let y = p.eval(x);
            assert!((p.invert(y) - x).abs() < 1e-12, "x={x}");
        }
    }

    #[test]
    fn extrapolation_uses_end_slopes() {
        let p = Polyline::new(&[(0.0, 0.0), (1.0, 2.0), (3.0, 3.0)]).unwrap();
        assert!((p.eval(-1.0) - (-2.0)).abs() < 1e-12);
        assert!((p.eval(5.0) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn slope_increase_detection() {
        let concave = Polyline::new(&[(0.0, 0.0), (1.0, 2.0), (2.0, 3.0)]).unwrap();
        assert_eq!(concave.max_slope_increase_ratio(), 0.0);
        let convex = Polyline::new(&[(0.0, 0.0), (1.0, 1.0), (2.0, 3.0)]).unwrap();
        assert!((convex.max_slope_increase_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn accessors() {
        let p = Polyline::new(&[(0.0, 1.0), (2.0, 4.0)]).unwrap();
        assert_eq!(p.x_range(), (0.0, 2.0));
        assert_eq!(p.last_y(), 4.0);
        assert_eq!(p.points().count(), 2);
    }
}
