//! Piecewise-linear involution pairs built from measured samples.

use crate::delay::polyline::Polyline;
use crate::delay::DelayPair;
use crate::error::Error;

/// An involution pair whose `δ↑` is a polyline through measured
/// `(T, δ↑(T))` samples, with `δ↓` the *reflected* polyline
/// `δ↓(T) = −δ↑⁻¹(−T)` (exact for polylines), so the involution property
/// holds by construction.
///
/// This is the natural representation for delay functions extracted from
/// measurements or analog simulation, as in Figs. 7 and 9 of the paper.
///
/// Outside the sampled range the polyline is extrapolated with the end
/// segments' slopes. Consequently `δ↑∞`/`δ↓∞` are only finite in the
/// mathematical sense if the final slope is zero; `delta_up_inf` returns
/// the extrapolation's value at the *saturation knee* — the sampled range
/// is where this family is meaningful. Slopes must be strictly positive
/// and (weakly) decreasing, which the constructor checks.
///
/// # Examples
///
/// ```
/// use ivl_core::delay::{DelayPair, PiecewiseLinearPair};
/// # fn main() -> Result<(), ivl_core::Error> {
/// // samples of a saturating delay function
/// let samples = [(-0.4, 0.2), (0.0, 0.9), (1.0, 1.4), (3.0, 1.6)];
/// let d = PiecewiseLinearPair::from_up_samples(&samples)?;
/// let t = 0.5;
/// assert!((-d.delta_up(-d.delta_down(t)) - t).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PiecewiseLinearPair {
    line: Polyline,
}

impl PiecewiseLinearPair {
    /// Builds the pair from samples of `δ↑`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidSampleData`] if fewer than two samples are
    /// given, the abscissae are not strictly increasing, the values are
    /// not strictly increasing, a slope is non-positive, the slopes
    /// increase by more than 10 % between segments (non-concave data), or
    /// strict causality `δ↑(0) > 0` fails.
    pub fn from_up_samples(samples: &[(f64, f64)]) -> Result<Self, Error> {
        let line = Polyline::new(samples).ok_or(Error::InvalidSampleData {
            reason: "need >= 2 finite samples with strictly increasing T and delay",
        })?;
        // measured data is noisy; allow mild concavity violations
        if line.max_slope_increase_ratio() > 0.1 {
            return Err(Error::InvalidSampleData {
                reason: "data is strongly non-concave",
            });
        }
        let pair = PiecewiseLinearPair { line };
        if pair.delta_up(0.0) <= 0.0 {
            return Err(Error::InvalidSampleData {
                reason: "delta_up(0) must be > 0 (strict causality)",
            });
        }
        Ok(pair)
    }

    /// The sample points `(T, δ↑(T))` this pair interpolates.
    #[must_use]
    pub fn up_samples(&self) -> Vec<(f64, f64)> {
        self.line.points().collect()
    }

    /// The sampled range of `T`.
    #[must_use]
    pub fn t_range(&self) -> (f64, f64) {
        self.line.x_range()
    }
}

impl DelayPair for PiecewiseLinearPair {
    fn delta_up(&self, t: f64) -> f64 {
        if t == f64::INFINITY {
            return self.delta_up_inf();
        }
        self.line.eval(t)
    }

    fn delta_down(&self, t: f64) -> f64 {
        if t == f64::INFINITY {
            return self.delta_down_inf();
        }
        // δ↓(T) = −δ↑⁻¹(−T), exact for polylines
        -self.line.invert(-t)
    }

    /// Value at the last sample (the saturation knee); see the type-level
    /// documentation for the extrapolation caveat.
    fn delta_up_inf(&self) -> f64 {
        self.line.last_y()
    }

    /// `−T` of the first sample's reflected image, i.e. the negated lower
    /// end of the sampled range.
    fn delta_down_inf(&self) -> f64 {
        -self.line.x_range().0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delay::{delta_min_of, DelayPair, ExpChannel};

    fn exp_sampled() -> PiecewiseLinearPair {
        let exp = ExpChannel::new(1.0, 0.5, 0.5).unwrap();
        let samples: Vec<(f64, f64)> = (0..60)
            .map(|i| {
                let t = -0.45 + i as f64 * 0.1;
                (t, exp.delta_up(t))
            })
            .collect();
        PiecewiseLinearPair::from_up_samples(&samples).unwrap()
    }

    #[test]
    fn interpolates_samples_exactly() {
        let d = exp_sampled();
        for (t, v) in d.up_samples() {
            assert!((d.delta_up(t) - v).abs() < 1e-12);
        }
    }

    #[test]
    fn involution_exact_for_polyline() {
        let d = exp_sampled();
        for i in 0..100 {
            let t = -0.4 + i as f64 * 0.05;
            let rt = -d.delta_up(-d.delta_down(t));
            assert!((rt - t).abs() < 1e-9, "t={t}: {rt}");
        }
    }

    #[test]
    fn close_to_underlying_exp_between_samples() {
        let exp = ExpChannel::new(1.0, 0.5, 0.5).unwrap();
        let d = exp_sampled();
        for i in 0..50 {
            let t = -0.4 + i as f64 * 0.11; // off-grid
            assert!((d.delta_up(t) - exp.delta_up(t)).abs() < 5e-3, "t={t}");
        }
    }

    #[test]
    fn delta_min_close_to_underlying() {
        // the fixed point sits at t = −0.5, just outside the sampled
        // range, so the solution relies on the end-slope extrapolation
        let d = exp_sampled();
        let dm = delta_min_of(&d).unwrap();
        assert!((dm - 0.5).abs() < 1e-2, "delta_min = {dm}");
    }

    #[test]
    fn constructor_validates() {
        assert!(PiecewiseLinearPair::from_up_samples(&[(0.0, 1.0)]).is_err());
        assert!(
            PiecewiseLinearPair::from_up_samples(&[(0.0, 1.0), (0.0, 2.0)]).is_err(),
            "duplicate abscissa"
        );
        assert!(
            PiecewiseLinearPair::from_up_samples(&[(0.0, 1.0), (1.0, 0.5)]).is_err(),
            "decreasing values"
        );
        assert!(
            PiecewiseLinearPair::from_up_samples(&[(0.0, 1.0), (1.0, 1.1), (2.0, 3.0)]).is_err(),
            "convex data"
        );
        assert!(
            PiecewiseLinearPair::from_up_samples(&[(0.0, f64::NAN), (1.0, 1.0)]).is_err(),
            "non-finite"
        );
        assert!(
            PiecewiseLinearPair::from_up_samples(&[(-1.0, -2.0), (4.0, -1.0)]).is_err(),
            "not causal"
        );
    }

    #[test]
    fn t_range_and_sample_access() {
        let d =
            PiecewiseLinearPair::from_up_samples(&[(-0.5, 0.1), (0.5, 0.9), (2.0, 1.5)]).unwrap();
        assert_eq!(d.t_range(), (-0.5, 2.0));
        assert_eq!(d.up_samples().len(), 3);
    }

    #[test]
    fn extrapolation_uses_end_slopes() {
        let d =
            PiecewiseLinearPair::from_up_samples(&[(0.0, 1.0), (1.0, 2.0), (2.0, 2.5)]).unwrap();
        // left slope 1.0
        assert!((d.delta_up(-1.0) - 0.0).abs() < 1e-12);
        // right slope 0.5
        assert!((d.delta_up(3.0) - 3.0).abs() < 1e-12);
        assert_eq!(d.delta_up(f64::INFINITY), d.delta_up_inf());
        assert_eq!(d.delta_down(f64::INFINITY), d.delta_down_inf());
    }
}
