//! The exp-channel: closed-form involution delays from first-order RC
//! switching.

use crate::delay::DelayPair;
use crate::error::Error;

/// The exp-channel delay-function family of the paper (Section II).
///
/// Exp-channels arise when gates drive RC loads and digital transitions
/// are generated at a threshold voltage `V_th` (normalized to
/// `V_DD = 1`). With RC constant `τ` and pure-delay component `T_p`:
///
/// ```text
/// δ↑(T) = τ ln(1 − e^{−(T + T_p − τ ln V_th)/τ})       + T_p − τ ln(1 − V_th)
/// δ↓(T) = τ ln(1 − e^{−(T + T_p − τ ln(1 − V_th))/τ})  + T_p − τ ln V_th
/// ```
///
/// Key properties (Lemma 1): `δ_min = T_p` exactly,
/// `δ↑∞ = T_p − τ ln(1 − V_th)` and `δ↓∞ = T_p − τ ln V_th`.
///
/// # Examples
///
/// ```
/// use ivl_core::delay::{DelayPair, ExpChannel};
/// # fn main() -> Result<(), ivl_core::Error> {
/// let d = ExpChannel::new(1.0, 0.5, 0.5)?;
/// assert!((d.delta_min() - 0.5).abs() < 1e-12); // δ_min = T_p
/// // a symmetric threshold makes δ↑ = δ↓
/// assert_eq!(d.delta_up(1.0), d.delta_down(1.0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ExpChannel {
    tau: f64,
    t_p: f64,
    v_th: f64,
    // cached constants
    up_inf: f64,
    down_inf: f64,
}

impl ExpChannel {
    /// Creates an exp-channel with RC constant `tau`, pure delay `t_p`,
    /// and normalized threshold `v_th ∈ (0, 1)`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidDelayParameter`] unless `tau > 0`,
    /// `t_p > 0` (strict causality) and `0 < v_th < 1`.
    pub fn new(tau: f64, t_p: f64, v_th: f64) -> Result<Self, Error> {
        if !(tau.is_finite() && tau > 0.0) {
            return Err(Error::InvalidDelayParameter {
                name: "tau",
                value: tau,
                constraint: "must be finite and > 0",
            });
        }
        if !(t_p.is_finite() && t_p > 0.0) {
            return Err(Error::InvalidDelayParameter {
                name: "t_p",
                value: t_p,
                constraint: "must be finite and > 0 (strict causality)",
            });
        }
        if !(v_th.is_finite() && v_th > 0.0 && v_th < 1.0) {
            return Err(Error::InvalidDelayParameter {
                name: "v_th",
                value: v_th,
                constraint: "must be in (0, 1)",
            });
        }
        Ok(ExpChannel {
            tau,
            t_p,
            v_th,
            up_inf: t_p - tau * (1.0 - v_th).ln(),
            down_inf: t_p - tau * v_th.ln(),
        })
    }

    /// A symmetric exp-channel (`V_th = ½`), for which `δ↑ = δ↓`.
    ///
    /// # Errors
    ///
    /// Same as [`ExpChannel::new`].
    pub fn symmetric(tau: f64, t_p: f64) -> Result<Self, Error> {
        ExpChannel::new(tau, t_p, 0.5)
    }

    /// The RC constant `τ`.
    #[must_use]
    pub fn tau(&self) -> f64 {
        self.tau
    }

    /// The pure-delay component `T_p` (equal to `δ_min`).
    #[must_use]
    pub fn t_p(&self) -> f64 {
        self.t_p
    }

    /// The normalized threshold `V_th`.
    #[must_use]
    pub fn v_th(&self) -> f64 {
        self.v_th
    }

    /// Shared evaluation: `τ ln(1 − e^{−(T + c_in)/τ}) + c_out`, with the
    /// extended-argument conventions of [`DelayPair`].
    fn eval(&self, t: f64, c_in: f64, c_out: f64) -> f64 {
        if t == f64::INFINITY {
            return c_out;
        }
        let x = (t + c_in) / self.tau;
        if x <= 0.0 {
            return f64::NEG_INFINITY;
        }
        // ln(1 − e^{−x}) computed stably ("log1mexp"): for small x the
        // cancellation hides in 1 − e^{−x} (use expm1), for large x in
        // the logarithm (use ln_1p).
        let log1mexp = if x < std::f64::consts::LN_2 {
            (-(-x).exp_m1()).ln()
        } else {
            (-(-x).exp()).ln_1p()
        };
        self.tau * log1mexp + c_out
    }

    /// Shared derivative: `u / (1 − u)` with `u = e^{−(T + c_in)/τ}`.
    fn eval_derivative(&self, t: f64, c_in: f64) -> f64 {
        if t == f64::INFINITY {
            return 0.0;
        }
        let u = (-(t + c_in) / self.tau).exp();
        if u >= 1.0 {
            f64::INFINITY
        } else {
            u / (1.0 - u)
        }
    }
}

impl DelayPair for ExpChannel {
    fn delta_up(&self, t: f64) -> f64 {
        // c_in = T_p − τ ln V_th = δ↓∞ ; c_out = T_p − τ ln(1 − V_th) = δ↑∞
        self.eval(t, self.down_inf, self.up_inf)
    }

    fn delta_down(&self, t: f64) -> f64 {
        self.eval(t, self.up_inf, self.down_inf)
    }

    fn delta_up_inf(&self) -> f64 {
        self.up_inf
    }

    fn delta_down_inf(&self) -> f64 {
        self.down_inf
    }

    fn delta_min(&self) -> f64 {
        self.t_p
    }

    fn d_delta_up(&self, t: f64) -> f64 {
        self.eval_derivative(t, self.down_inf)
    }

    fn d_delta_down(&self, t: f64) -> f64 {
        self.eval_derivative(t, self.up_inf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delay::check_involution;

    fn channels() -> Vec<ExpChannel> {
        vec![
            ExpChannel::new(1.0, 0.5, 0.5).unwrap(),
            ExpChannel::new(0.3, 0.1, 0.3).unwrap(),
            ExpChannel::new(2.5, 1.0, 0.7).unwrap(),
            ExpChannel::new(10.0, 0.01, 0.55).unwrap(),
        ]
    }

    #[test]
    fn constructor_validates() {
        assert!(ExpChannel::new(0.0, 0.5, 0.5).is_err());
        assert!(ExpChannel::new(-1.0, 0.5, 0.5).is_err());
        assert!(ExpChannel::new(1.0, 0.0, 0.5).is_err());
        assert!(ExpChannel::new(1.0, 0.5, 0.0).is_err());
        assert!(ExpChannel::new(1.0, 0.5, 1.0).is_err());
        assert!(ExpChannel::new(f64::NAN, 0.5, 0.5).is_err());
        assert!(ExpChannel::new(1.0, f64::INFINITY, 0.5).is_err());
    }

    #[test]
    fn accessors() {
        let d = ExpChannel::new(1.5, 0.25, 0.6).unwrap();
        assert_eq!(d.tau(), 1.5);
        assert_eq!(d.t_p(), 0.25);
        assert_eq!(d.v_th(), 0.6);
    }

    #[test]
    fn limits_match_closed_form() {
        let d = ExpChannel::new(2.0, 0.5, 0.3).unwrap();
        assert!((d.delta_up_inf() - (0.5 - 2.0 * (0.7f64).ln())).abs() < 1e-12);
        assert!((d.delta_down_inf() - (0.5 - 2.0 * (0.3f64).ln())).abs() < 1e-12);
        // values approach limits from below
        assert!(d.delta_up(1e6) <= d.delta_up_inf());
        assert!((d.delta_up(1e3) - d.delta_up_inf()).abs() < 1e-9);
    }

    #[test]
    fn involution_property_for_all_parameterizations() {
        // Probe up to ~8τ: beyond that δ saturates to within ≲1e−15 of
        // δ∞ and the offset information is no longer representable in
        // f64, so round-trip errors there are representation artifacts,
        // not model errors (the delays themselves are exact to ~1e−15).
        for d in channels() {
            let hi = 8.0 * d.tau();
            let report = check_involution(&d, -0.9 * d.delta_min(), hi, 200);
            assert!(report.is_valid(1e-6), "{d:?}: {report:?}");
        }
    }

    #[test]
    fn delta_min_is_tp_for_all_parameterizations() {
        for d in channels() {
            assert!((d.delta_up(-d.t_p()) - d.t_p()).abs() < 1e-12, "{d:?}");
            assert!((d.delta_down(-d.t_p()) - d.t_p()).abs() < 1e-12, "{d:?}");
            assert_eq!(d.delta_min(), d.t_p());
        }
    }

    #[test]
    fn symmetric_channel_has_equal_functions() {
        let d = ExpChannel::symmetric(1.0, 0.4).unwrap();
        for &t in &[-0.3, 0.0, 1.0, 5.0] {
            assert_eq!(d.delta_up(t), d.delta_down(t));
        }
        assert_eq!(d.delta_up_inf(), d.delta_down_inf());
    }

    #[test]
    fn extended_arguments() {
        let d = ExpChannel::new(1.0, 0.5, 0.5).unwrap();
        assert_eq!(d.delta_up(f64::INFINITY), d.delta_up_inf());
        assert_eq!(d.delta_down(f64::INFINITY), d.delta_down_inf());
        assert_eq!(d.delta_up(-d.delta_down_inf()), f64::NEG_INFINITY);
        assert_eq!(d.delta_up(-d.delta_down_inf() - 5.0), f64::NEG_INFINITY);
        assert_eq!(d.delta_down(-d.delta_up_inf() - 1.0), f64::NEG_INFINITY);
    }

    #[test]
    fn strictly_increasing_and_concave() {
        let d = ExpChannel::new(1.0, 0.5, 0.4).unwrap();
        let mut prev = f64::NEG_INFINITY;
        let mut prev_d = f64::INFINITY;
        for i in 0..100 {
            let t = -0.45 + i as f64 * 0.1;
            let v = d.delta_up(t);
            assert!(v > prev, "not increasing at {t}");
            prev = v;
            let dv = d.d_delta_up(t);
            assert!(dv <= prev_d + 1e-12, "derivative not decreasing at {t}");
            assert!(dv > 0.0);
            prev_d = dv;
        }
    }

    #[test]
    fn closed_form_derivative_matches_finite_difference() {
        let d = ExpChannel::new(1.7, 0.6, 0.45).unwrap();
        for &t in &[-0.4, 0.0, 0.8, 3.0] {
            let h = 1e-6;
            let fd = (d.delta_up(t + h) - d.delta_up(t - h)) / (2.0 * h);
            assert!((d.d_delta_up(t) - fd).abs() < 1e-5 * fd.abs().max(1.0));
            let fd = (d.delta_down(t + h) - d.delta_down(t - h)) / (2.0 * h);
            assert!((d.d_delta_down(t) - fd).abs() < 1e-5 * fd.abs().max(1.0));
        }
    }

    #[test]
    fn strict_causality() {
        for d in channels() {
            assert!(d.delta_up(0.0) > 0.0);
            assert!(d.delta_down(0.0) > 0.0);
            // and in fact δ(0) > T_p
            assert!(d.delta_up(0.0) > d.t_p());
        }
    }
}
