//! Deterministic periodic jitter and random-telegraph (burst) noise.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::noise::{NoiseContext, NoiseSource};

/// Sinusoidal jitter: `η(t) = amplitude · sin(2π t/period + phase)`,
/// evaluated at each transition's *input time* and clamped into the
/// admissible interval.
///
/// Models deterministic periodic interference (supply ripple coupling
/// into delays, as in the Section V supply-sine experiment) inside the
/// digital abstraction.
///
/// ```
/// use ivl_core::noise::{EtaBounds, NoiseContext, NoiseSource, SineJitter};
/// use ivl_core::Edge;
/// # fn main() -> Result<(), ivl_core::Error> {
/// let mut src = SineJitter::new(0.05, 10.0, 90.0)?;
/// let bounds = EtaBounds::symmetric(0.1)?;
/// let ctx = NoiseContext { index: 0, edge: Edge::Rising, input_time: 0.0, offset: 1.0, bounds };
/// assert!((src.sample(&ctx) - 0.05).abs() < 1e-12); // sin(90°) = 1
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SineJitter {
    amplitude: f64,
    period: f64,
    phase_rad: f64,
}

impl SineJitter {
    /// Creates sinusoidal jitter with the given amplitude, period and
    /// phase (degrees).
    ///
    /// # Errors
    ///
    /// Returns [`crate::Error::InvalidDelayParameter`] unless
    /// `amplitude ≥ 0` and `period > 0` (both finite).
    pub fn new(amplitude: f64, period: f64, phase_deg: f64) -> Result<Self, crate::Error> {
        if !(amplitude.is_finite() && amplitude >= 0.0) {
            return Err(crate::Error::InvalidDelayParameter {
                name: "amplitude",
                value: amplitude,
                constraint: "must be finite and >= 0",
            });
        }
        if !(period.is_finite() && period > 0.0) {
            return Err(crate::Error::InvalidDelayParameter {
                name: "period",
                value: period,
                constraint: "must be finite and > 0",
            });
        }
        if !phase_deg.is_finite() {
            return Err(crate::Error::InvalidDelayParameter {
                name: "phase_deg",
                value: phase_deg,
                constraint: "must be finite",
            });
        }
        Ok(SineJitter {
            amplitude,
            period,
            phase_rad: phase_deg.to_radians(),
        })
    }
}

impl NoiseSource for SineJitter {
    fn sample(&mut self, ctx: &NoiseContext) -> f64 {
        let eta = self.amplitude
            * (std::f64::consts::TAU * ctx.input_time / self.period + self.phase_rad).sin();
        ctx.bounds.clamp(eta)
    }
}

/// Random-telegraph ("burst" / popcorn) noise: a two-state source that
/// flips between `+level` and `−level` with probability `flip_prob` per
/// transition, clamped into the admissible interval.
///
/// Models the low-frequency burst noise of deep-submicron devices: the
/// delay error is *correlated* over many transitions rather than i.i.d.
#[derive(Debug, Clone)]
pub struct BurstNoise {
    level: f64,
    flip_prob: f64,
    state_high: bool,
    rng: StdRng,
    seed: u64,
}

impl BurstNoise {
    /// Creates a burst source with shift magnitude `level` and per-sample
    /// flip probability `flip_prob ∈ [0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`crate::Error::InvalidDelayParameter`] for invalid
    /// parameters.
    pub fn new(level: f64, flip_prob: f64, seed: u64) -> Result<Self, crate::Error> {
        if !(level.is_finite() && level >= 0.0) {
            return Err(crate::Error::InvalidDelayParameter {
                name: "level",
                value: level,
                constraint: "must be finite and >= 0",
            });
        }
        if !(flip_prob.is_finite() && (0.0..=1.0).contains(&flip_prob)) {
            return Err(crate::Error::InvalidDelayParameter {
                name: "flip_prob",
                value: flip_prob,
                constraint: "must be in [0, 1]",
            });
        }
        Ok(BurstNoise {
            level,
            flip_prob,
            state_high: false,
            rng: StdRng::seed_from_u64(seed),
            seed,
        })
    }
}

impl NoiseSource for BurstNoise {
    fn sample(&mut self, ctx: &NoiseContext) -> f64 {
        if self.rng.gen_bool(self.flip_prob) {
            self.state_high = !self.state_high;
        }
        let eta = if self.state_high {
            self.level
        } else {
            -self.level
        };
        ctx.bounds.clamp(eta)
    }

    fn reset(&mut self) {
        self.state_high = false;
        self.rng = StdRng::seed_from_u64(self.seed);
    }

    fn reseed(&mut self, seed: u64) {
        self.seed = seed;
        self.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bit::Edge;
    use crate::noise::EtaBounds;

    fn ctx(t: f64, bounds: EtaBounds) -> NoiseContext {
        NoiseContext {
            index: 0,
            edge: Edge::Rising,
            input_time: t,
            offset: 1.0,
            bounds,
        }
    }

    #[test]
    fn sine_jitter_validation_and_shape() {
        assert!(SineJitter::new(-0.1, 1.0, 0.0).is_err());
        assert!(SineJitter::new(0.1, 0.0, 0.0).is_err());
        assert!(SineJitter::new(0.1, 1.0, f64::NAN).is_err());
        let b = EtaBounds::symmetric(1.0).unwrap();
        let mut s = SineJitter::new(0.5, 8.0, 0.0).unwrap();
        assert!(s.sample(&ctx(0.0, b)).abs() < 1e-12); // sin 0
        assert!((s.sample(&ctx(2.0, b)) - 0.5).abs() < 1e-12); // quarter period
        assert!((s.sample(&ctx(6.0, b)) + 0.5).abs() < 1e-12); // three quarters
                                                               // periodicity
        assert!((s.sample(&ctx(1.0, b)) - s.sample(&ctx(9.0, b))).abs() < 1e-12);
    }

    #[test]
    fn sine_jitter_respects_bounds() {
        let b = EtaBounds::new(0.01, 0.02).unwrap();
        let mut s = SineJitter::new(5.0, 3.0, 0.0).unwrap();
        for i in 0..100 {
            let eta = s.sample(&ctx(i as f64 * 0.37, b));
            assert!(b.contains(eta));
        }
    }

    #[test]
    fn burst_noise_is_two_level_and_correlated() {
        let b = EtaBounds::symmetric(1.0).unwrap();
        let mut src = BurstNoise::new(0.3, 0.05, 7).unwrap();
        let xs: Vec<f64> = (0..2000).map(|i| src.sample(&ctx(i as f64, b))).collect();
        // exactly two levels
        assert!(xs.iter().all(|&x| x == 0.3 || x == -0.3));
        // correlated: far fewer level changes than samples
        let flips = xs.windows(2).filter(|w| w[0] != w[1]).count();
        assert!(flips > 10, "some flips expected, got {flips}");
        assert!(flips < 400, "bursty, not white: {flips}");
        // both levels visited
        assert!(xs.iter().any(|&x| x > 0.0) && xs.iter().any(|&x| x < 0.0));
    }

    #[test]
    fn burst_noise_validation_and_reset() {
        assert!(BurstNoise::new(-0.1, 0.1, 0).is_err());
        assert!(BurstNoise::new(0.1, 1.5, 0).is_err());
        let b = EtaBounds::symmetric(1.0).unwrap();
        let mut src = BurstNoise::new(0.2, 0.3, 11).unwrap();
        let first: Vec<f64> = (0..20).map(|i| src.sample(&ctx(i as f64, b))).collect();
        src.reset();
        let second: Vec<f64> = (0..20).map(|i| src.sample(&ctx(i as f64, b))).collect();
        assert_eq!(first, second);
    }

    #[test]
    fn burst_noise_clamps_to_bounds() {
        let b = EtaBounds::new(0.05, 0.01).unwrap();
        let mut src = BurstNoise::new(0.3, 0.5, 3).unwrap();
        for i in 0..100 {
            let eta = src.sample(&ctx(i as f64, b));
            assert!(eta == 0.01 || eta == -0.05);
        }
    }
}
