//! 1/f ("flicker") noise via the Voss–McCartney algorithm.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::noise::{NoiseContext, NoiseSource};

/// Pink (1/f) jitter, the slowly varying flicker noise of digital
/// electronics (Calosso & Rubiola, the paper's ref. \[4\]).
///
/// Uses the Voss–McCartney construction: `octaves` independent white
/// sources, source `k` refreshed every `2^k` samples; their sum has an
/// approximately 1/f spectrum. The output is scaled to `amplitude` RMS
/// and clamped into the admissible interval by the caller's bounds.
///
/// ```
/// use ivl_core::noise::{EtaBounds, FlickerNoise, NoiseContext, NoiseSource};
/// use ivl_core::Edge;
/// # fn main() -> Result<(), ivl_core::Error> {
/// let mut src = FlickerNoise::new(0.01, 8, 42)?;
/// let bounds = EtaBounds::symmetric(0.05)?;
/// let ctx = NoiseContext { index: 0, edge: Edge::Rising, input_time: 0.0, offset: 1.0, bounds };
/// let eta = src.sample(&ctx);
/// assert!(bounds.contains(eta));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FlickerNoise {
    amplitude: f64,
    rows: Vec<f64>,
    counter: u64,
    rng: StdRng,
    seed: u64,
}

impl FlickerNoise {
    /// Creates a flicker source with RMS `amplitude`, `octaves` rows
    /// (4–16 is typical; more octaves extend the 1/f band to lower
    /// frequencies) and a deterministic `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`crate::Error::InvalidDelayParameter`] if `amplitude` is
    /// negative/non-finite or `octaves == 0`.
    pub fn new(amplitude: f64, octaves: usize, seed: u64) -> Result<Self, crate::Error> {
        if !(amplitude.is_finite() && amplitude >= 0.0) {
            return Err(crate::Error::InvalidDelayParameter {
                name: "amplitude",
                value: amplitude,
                constraint: "must be finite and >= 0",
            });
        }
        if octaves == 0 || octaves > 62 {
            return Err(crate::Error::InvalidDelayParameter {
                name: "octaves",
                value: octaves as f64,
                constraint: "must be in 1..=62",
            });
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let rows = (0..octaves).map(|_| rng.gen_range(-1.0..1.0)).collect();
        Ok(FlickerNoise {
            amplitude,
            rows,
            counter: 0,
            rng,
            seed,
        })
    }

    fn next_value(&mut self) -> f64 {
        self.counter = self.counter.wrapping_add(1);
        // refresh row k when bit k of the counter flips from 0 — the
        // classic trailing-zeros trick
        let k = (self.counter.trailing_zeros() as usize).min(self.rows.len() - 1);
        self.rows[k] = self.rng.gen_range(-1.0..1.0);
        let sum: f64 = self.rows.iter().sum();
        // each row is uniform on [−1,1] (variance 1/3); the sum of m rows
        // has std sqrt(m/3)
        let norm = (self.rows.len() as f64 / 3.0).sqrt();
        self.amplitude * sum / norm
    }
}

impl NoiseSource for FlickerNoise {
    fn sample(&mut self, ctx: &NoiseContext) -> f64 {
        ctx.bounds.clamp(self.next_value())
    }

    fn reset(&mut self) {
        let mut rng = StdRng::seed_from_u64(self.seed);
        for row in &mut self.rows {
            *row = rng.gen_range(-1.0..1.0);
        }
        self.counter = 0;
        self.rng = rng;
    }

    fn reseed(&mut self, seed: u64) {
        self.seed = seed;
        self.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bit::Edge;
    use crate::noise::EtaBounds;

    fn ctx(bounds: EtaBounds) -> NoiseContext {
        NoiseContext {
            index: 0,
            edge: Edge::Rising,
            input_time: 0.0,
            offset: 1.0,
            bounds,
        }
    }

    #[test]
    fn constructor_validates() {
        assert!(FlickerNoise::new(0.1, 8, 0).is_ok());
        assert!(FlickerNoise::new(-0.1, 8, 0).is_err());
        assert!(FlickerNoise::new(f64::NAN, 8, 0).is_err());
        assert!(FlickerNoise::new(0.1, 0, 0).is_err());
        assert!(FlickerNoise::new(0.1, 63, 0).is_err());
    }

    #[test]
    fn stays_in_bounds() {
        let b = EtaBounds::symmetric(0.02).unwrap();
        let mut src = FlickerNoise::new(0.05, 8, 1).unwrap();
        for _ in 0..1000 {
            assert!(b.contains(src.sample(&ctx(b))));
        }
    }

    #[test]
    fn deterministic_and_resettable() {
        let b = EtaBounds::symmetric(1.0).unwrap();
        let mut a = FlickerNoise::new(0.1, 8, 99).unwrap();
        let mut bsrc = FlickerNoise::new(0.1, 8, 99).unwrap();
        let seq_a: Vec<f64> = (0..50).map(|_| a.sample(&ctx(b))).collect();
        let seq_b: Vec<f64> = (0..50).map(|_| bsrc.sample(&ctx(b))).collect();
        assert_eq!(seq_a, seq_b);
        a.reset();
        let seq_a2: Vec<f64> = (0..50).map(|_| a.sample(&ctx(b))).collect();
        assert_eq!(seq_a, seq_a2);
    }

    #[test]
    fn has_low_frequency_correlation() {
        // Pink noise must be positively correlated at lag 1, unlike white
        // noise. Estimate the lag-1 autocorrelation over many samples.
        let b = EtaBounds::symmetric(f64::INFINITY);
        assert!(b.is_err()); // infinite bounds are rejected …
        let b = EtaBounds::symmetric(1e9).unwrap(); // … so use huge finite ones
        let mut src = FlickerNoise::new(1.0, 10, 7).unwrap();
        let xs: Vec<f64> = (0..4096).map(|_| src.sample(&ctx(b))).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var: f64 = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>();
        let cov: f64 = xs
            .windows(2)
            .map(|w| (w[0] - mean) * (w[1] - mean))
            .sum::<f64>();
        let rho = cov / var;
        assert!(rho > 0.5, "lag-1 autocorrelation {rho} too small for 1/f");
    }

    #[test]
    fn rms_roughly_matches_amplitude() {
        let b = EtaBounds::symmetric(1e9).unwrap();
        let mut src = FlickerNoise::new(0.5, 8, 11).unwrap();
        let xs: Vec<f64> = (0..8192).map(|_| src.sample(&ctx(b))).collect();
        let rms = (xs.iter().map(|x| x * x).sum::<f64>() / xs.len() as f64).sqrt();
        assert!((0.2..=1.0).contains(&rms), "rms = {rms}, expected near 0.5");
    }
}
