//! Noise sources: per-transition η choices for η-involution channels.
//!
//! Section III of the paper perturbs each output transition by an
//! adversarially chosen `η_n ∈ η = [−η⁻, η⁺]`. A [`NoiseSource`]
//! produces these choices; implementations range from benign
//! ([`ZeroNoise`], random jitter) to the worst-case adversaries used in
//! the faithfulness proof (Lemma 5).

mod flicker;
mod jitter;

pub use flicker::FlickerNoise;
pub use jitter::{BurstNoise, SineJitter};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::bit::Edge;
use crate::error::Error;

/// The non-determinism interval `η = [−η⁻, η⁺]` with `η⁻, η⁺ ≥ 0`.
///
/// Faithfulness requires constraint (C) of the paper,
/// `η⁺ + η⁻ < δ↓(−η⁺) − δ_min`, which can be checked with
/// [`EtaBounds::satisfies_constraint_c`].
///
/// ```
/// use ivl_core::noise::EtaBounds;
/// use ivl_core::delay::ExpChannel;
/// # fn main() -> Result<(), ivl_core::Error> {
/// let bounds = EtaBounds::new(0.01, 0.02)?;
/// let delay = ExpChannel::new(1.0, 0.5, 0.5)?;
/// assert!(bounds.satisfies_constraint_c(&delay));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EtaBounds {
    minus: f64,
    plus: f64,
}

impl EtaBounds {
    /// Creates bounds `[−minus, plus]`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidEtaBounds`] if either bound is negative or
    /// non-finite.
    pub fn new(minus: f64, plus: f64) -> Result<Self, Error> {
        if !(minus.is_finite() && plus.is_finite() && minus >= 0.0 && plus >= 0.0) {
            return Err(Error::InvalidEtaBounds { minus, plus });
        }
        Ok(EtaBounds { minus, plus })
    }

    /// The zero interval (no noise; the channel degenerates to a plain
    /// involution channel).
    #[must_use]
    pub fn zero() -> Self {
        EtaBounds {
            minus: 0.0,
            plus: 0.0,
        }
    }

    /// Symmetric bounds `[−e, e]`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidEtaBounds`] if `e < 0` or non-finite.
    pub fn symmetric(e: f64) -> Result<Self, Error> {
        EtaBounds::new(e, e)
    }

    /// `η⁻` (magnitude of the largest allowed early shift).
    #[must_use]
    pub fn minus(&self) -> f64 {
        self.minus
    }

    /// `η⁺` (largest allowed late shift).
    #[must_use]
    pub fn plus(&self) -> f64 {
        self.plus
    }

    /// Total interval width `η⁻ + η⁺`.
    #[must_use]
    pub fn width(&self) -> f64 {
        self.minus + self.plus
    }

    /// `true` if `eta` lies in `[−η⁻, η⁺]`.
    #[must_use]
    pub fn contains(&self, eta: f64) -> bool {
        -self.minus <= eta && eta <= self.plus
    }

    /// Clamps `eta` into `[−η⁻, η⁺]`.
    #[must_use]
    pub fn clamp(&self, eta: f64) -> f64 {
        eta.clamp(-self.minus, self.plus)
    }

    /// Checks constraint (C): `η⁺ + η⁻ < δ↓(−η⁺) − δ_min`.
    ///
    /// Under (C), the faithfulness results (Lemmas 5–8, Theorems 9/12)
    /// apply.
    #[must_use]
    pub fn satisfies_constraint_c<D: crate::delay::DelayPair + ?Sized>(&self, delay: &D) -> bool {
        let dmin = delay.delta_min();
        self.plus + self.minus < delay.delta_down(-self.plus) - dmin
    }

    /// The largest `η⁻` satisfying constraint (C) for a given `η⁺`
    /// (used in Section V: `η⁻ = δ↓(−η⁺) − δ_min − η⁺`), or `None` if
    /// even `η⁻ = 0` violates (C).
    #[must_use]
    pub fn max_minus_for_plus<D: crate::delay::DelayPair + ?Sized>(
        plus: f64,
        delay: &D,
    ) -> Option<f64> {
        let slack = delay.delta_down(-plus) - delay.delta_min() - plus;
        (slack > 0.0).then_some(slack)
    }
}

impl Default for EtaBounds {
    /// The zero interval.
    fn default() -> Self {
        EtaBounds::zero()
    }
}

/// Context handed to a [`NoiseSource`] for each transition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseContext {
    /// Index of the input transition (0-based).
    pub index: usize,
    /// Edge direction of the transition.
    pub edge: Edge,
    /// Input transition time `t_n`.
    pub input_time: f64,
    /// Previous-output-to-input offset `T = t_n − t_{n−1} − δ_{n−1}`
    /// (`+∞` for the first transition).
    pub offset: f64,
    /// The admissible interval.
    pub bounds: EtaBounds,
}

/// A per-transition source of η choices.
///
/// Implementations should return values in `ctx.bounds`; the channel
/// clamps defensively (and `debug_assert!`s) otherwise.
pub trait NoiseSource {
    /// Produces `η_n` for the transition described by `ctx`.
    fn sample(&mut self, ctx: &NoiseContext) -> f64;

    /// Resets any internal state (RNG streams are *not* reseeded).
    fn reset(&mut self) {}

    /// Replaces the seed of any internal RNG stream with `seed` and
    /// restarts the stream. Deterministic sources ignore this (the
    /// default). Used by scenario sweeps to decorrelate runs.
    fn reseed(&mut self, seed: u64) {
        let _ = seed;
    }
}

impl<N: NoiseSource + ?Sized> NoiseSource for Box<N> {
    fn sample(&mut self, ctx: &NoiseContext) -> f64 {
        (**self).sample(ctx)
    }
    fn reset(&mut self) {
        (**self).reset();
    }
    fn reseed(&mut self, seed: u64) {
        (**self).reseed(seed);
    }
}

impl<N: NoiseSource + ?Sized> NoiseSource for &mut N {
    fn sample(&mut self, ctx: &NoiseContext) -> f64 {
        (**self).sample(ctx)
    }
    fn reset(&mut self) {
        (**self).reset();
    }
    fn reseed(&mut self, seed: u64) {
        (**self).reseed(seed);
    }
}

/// Always returns 0: the η-involution channel degenerates to the
/// deterministic involution channel of DATE'15.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ZeroNoise;

impl NoiseSource for ZeroNoise {
    fn sample(&mut self, _ctx: &NoiseContext) -> f64 {
        0.0
    }
}

/// Returns a fixed shift for every transition (clamped to bounds by the
/// channel). Models a deterministic mis-calibration of the delay function.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConstantShift(pub f64);

impl NoiseSource for ConstantShift {
    fn sample(&mut self, _ctx: &NoiseContext) -> f64 {
        self.0
    }
}

/// Uniform random jitter over the full admissible interval `[−η⁻, η⁺]`.
#[derive(Debug, Clone)]
pub struct UniformNoise {
    rng: StdRng,
    seed: u64,
}

impl UniformNoise {
    /// Creates a seeded uniform noise source (deterministic runs).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        UniformNoise {
            rng: StdRng::seed_from_u64(seed),
            seed,
        }
    }
}

impl NoiseSource for UniformNoise {
    fn sample(&mut self, ctx: &NoiseContext) -> f64 {
        let (lo, hi) = (-ctx.bounds.minus(), ctx.bounds.plus());
        if hi <= lo {
            return 0.0;
        }
        self.rng.gen_range(lo..=hi)
    }

    fn reset(&mut self) {
        self.rng = StdRng::seed_from_u64(self.seed);
    }

    fn reseed(&mut self, seed: u64) {
        self.seed = seed;
        self.reset();
    }
}

/// Zero-mean Gaussian jitter with standard deviation `sigma`, truncated
/// to the admissible interval. Models white phase noise (cf. Calosso &
/// Rubiola, the paper's ref. \[4\]).
#[derive(Debug, Clone)]
pub struct TruncatedGaussian {
    sigma: f64,
    rng: StdRng,
    seed: u64,
}

impl TruncatedGaussian {
    /// Creates a seeded truncated-Gaussian source with the given standard
    /// deviation.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidDelayParameter`] if `sigma` is negative or
    /// non-finite.
    pub fn new(sigma: f64, seed: u64) -> Result<Self, Error> {
        if !(sigma.is_finite() && sigma >= 0.0) {
            return Err(Error::InvalidDelayParameter {
                name: "sigma",
                value: sigma,
                constraint: "must be finite and >= 0",
            });
        }
        Ok(TruncatedGaussian {
            sigma,
            rng: StdRng::seed_from_u64(seed),
            seed,
        })
    }

    /// Box–Muller standard normal.
    fn standard_normal(&mut self) -> f64 {
        let u1: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = self.rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

impl NoiseSource for TruncatedGaussian {
    fn sample(&mut self, ctx: &NoiseContext) -> f64 {
        ctx.bounds.clamp(self.sigma * self.standard_normal())
    }

    fn reset(&mut self) {
        self.rng = StdRng::seed_from_u64(self.seed);
    }

    fn reseed(&mut self, seed: u64) {
        self.seed = seed;
        self.reset();
    }
}

/// The worst-case adversary of Lemma 5: takes every **rising** transition
/// maximally *late* (`+η⁺`) and every **falling** transition maximally
/// *early* (`−η⁻`), minimizing the up-times of the generated pulse train.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorstCaseAdversary;

impl NoiseSource for WorstCaseAdversary {
    fn sample(&mut self, ctx: &NoiseContext) -> f64 {
        match ctx.edge {
            Edge::Rising => ctx.bounds.plus(),
            Edge::Falling => -ctx.bounds.minus(),
        }
    }
}

/// The pulse-extending adversary (dual of [`WorstCaseAdversary`]): rising
/// transitions maximally early, falling maximally late. This is the
/// adversary that "de-cancels" pulses in Fig. 4 of the paper.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExtendingAdversary;

impl NoiseSource for ExtendingAdversary {
    fn sample(&mut self, ctx: &NoiseContext) -> f64 {
        match ctx.edge {
            Edge::Rising => -ctx.bounds.minus(),
            Edge::Falling => ctx.bounds.plus(),
        }
    }
}

/// Replays a recorded sequence of η choices; after the sequence is
/// exhausted it returns 0. Useful for regression tests and for matching
/// measured traces (Section V).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecordedChoices {
    choices: Vec<f64>,
    cursor: usize,
}

impl RecordedChoices {
    /// Creates a source replaying `choices` in order.
    #[must_use]
    pub fn new(choices: Vec<f64>) -> Self {
        RecordedChoices { choices, cursor: 0 }
    }

    /// The remaining (unconsumed) choices.
    #[must_use]
    pub fn remaining(&self) -> &[f64] {
        &self.choices[self.cursor.min(self.choices.len())..]
    }
}

impl NoiseSource for RecordedChoices {
    fn sample(&mut self, _ctx: &NoiseContext) -> f64 {
        let eta = self.choices.get(self.cursor).copied().unwrap_or(0.0);
        self.cursor += 1;
        eta
    }

    fn reset(&mut self) {
        self.cursor = 0;
    }
}

/// Adapts a closure `(index, edge) → η` as a noise source.
pub struct FnNoise<F>(pub F);

impl<F: FnMut(&NoiseContext) -> f64> NoiseSource for FnNoise<F> {
    fn sample(&mut self, ctx: &NoiseContext) -> f64 {
        (self.0)(ctx)
    }
}

impl<F> std::fmt::Debug for FnNoise<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("FnNoise").finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delay::ExpChannel;

    fn ctx(edge: Edge, bounds: EtaBounds) -> NoiseContext {
        NoiseContext {
            index: 0,
            edge,
            input_time: 1.0,
            offset: 0.5,
            bounds,
        }
    }

    #[test]
    fn bounds_construction_and_validation() {
        let b = EtaBounds::new(0.1, 0.2).unwrap();
        assert_eq!(b.minus(), 0.1);
        assert_eq!(b.plus(), 0.2);
        assert_eq!(b.width(), 0.1 + 0.2);
        assert!(EtaBounds::new(-0.1, 0.2).is_err());
        assert!(EtaBounds::new(0.1, f64::NAN).is_err());
        assert_eq!(EtaBounds::default(), EtaBounds::zero());
        let s = EtaBounds::symmetric(0.3).unwrap();
        assert_eq!(s.minus(), s.plus());
    }

    #[test]
    fn bounds_contains_and_clamp() {
        let b = EtaBounds::new(0.1, 0.2).unwrap();
        assert!(b.contains(0.0));
        assert!(b.contains(-0.1));
        assert!(b.contains(0.2));
        assert!(!b.contains(-0.11));
        assert!(!b.contains(0.21));
        assert_eq!(b.clamp(5.0), 0.2);
        assert_eq!(b.clamp(-5.0), -0.1);
        assert_eq!(b.clamp(0.05), 0.05);
    }

    #[test]
    fn constraint_c_holds_for_small_eta() {
        let d = ExpChannel::new(1.0, 0.5, 0.5).unwrap();
        assert!(EtaBounds::zero().satisfies_constraint_c(&d));
        assert!(EtaBounds::new(0.05, 0.05)
            .unwrap()
            .satisfies_constraint_c(&d));
        // very large eta must violate (C)
        assert!(!EtaBounds::new(2.0, 2.0).unwrap().satisfies_constraint_c(&d));
    }

    #[test]
    fn max_minus_for_plus_is_tight() {
        let d = ExpChannel::new(1.0, 0.5, 0.5).unwrap();
        let plus = 0.05;
        let minus = EtaBounds::max_minus_for_plus(plus, &d).unwrap();
        // at the boundary, (C) is an equality → strictly inside holds
        let just_inside = EtaBounds::new(minus * 0.999, plus).unwrap();
        assert!(just_inside.satisfies_constraint_c(&d));
        let outside = EtaBounds::new(minus * 1.001, plus).unwrap();
        assert!(!outside.satisfies_constraint_c(&d));
        // too large η⁺ leaves no room at all
        assert!(EtaBounds::max_minus_for_plus(10.0, &d).is_none());
    }

    #[test]
    fn zero_noise_and_constant_shift() {
        let b = EtaBounds::new(0.1, 0.1).unwrap();
        assert_eq!(ZeroNoise.sample(&ctx(Edge::Rising, b)), 0.0);
        assert_eq!(ConstantShift(0.07).sample(&ctx(Edge::Falling, b)), 0.07);
    }

    #[test]
    fn uniform_noise_stays_in_bounds_and_is_reproducible() {
        let b = EtaBounds::new(0.1, 0.2).unwrap();
        let mut n1 = UniformNoise::new(42);
        let mut n2 = UniformNoise::new(42);
        for i in 0..200 {
            let c = NoiseContext {
                index: i,
                ..ctx(Edge::Rising, b)
            };
            let a = n1.sample(&c);
            assert!(b.contains(a), "{a}");
            assert_eq!(a, n2.sample(&c));
        }
        // reset restores the stream
        let c = ctx(Edge::Rising, b);
        let mut n3 = UniformNoise::new(7);
        let first = n3.sample(&c);
        n3.sample(&c);
        n3.reset();
        assert_eq!(n3.sample(&c), first);
    }

    #[test]
    fn uniform_noise_with_zero_bounds() {
        let mut n = UniformNoise::new(1);
        assert_eq!(n.sample(&ctx(Edge::Rising, EtaBounds::zero())), 0.0);
    }

    #[test]
    fn gaussian_stays_in_bounds() {
        let b = EtaBounds::new(0.01, 0.01).unwrap();
        let mut n = TruncatedGaussian::new(0.05, 3).unwrap();
        let mut hit_edge = 0;
        for _ in 0..500 {
            let v = n.sample(&ctx(Edge::Falling, b));
            assert!(b.contains(v));
            if v == 0.01 || v == -0.01 {
                hit_edge += 1;
            }
        }
        // σ ≫ bound → truncation must actually occur
        assert!(hit_edge > 100);
        assert!(TruncatedGaussian::new(-1.0, 0).is_err());
    }

    #[test]
    fn adversaries_pick_extremes() {
        let b = EtaBounds::new(0.1, 0.2).unwrap();
        let mut w = WorstCaseAdversary;
        assert_eq!(w.sample(&ctx(Edge::Rising, b)), 0.2);
        assert_eq!(w.sample(&ctx(Edge::Falling, b)), -0.1);
        let mut e = ExtendingAdversary;
        assert_eq!(e.sample(&ctx(Edge::Rising, b)), -0.1);
        assert_eq!(e.sample(&ctx(Edge::Falling, b)), 0.2);
    }

    #[test]
    fn recorded_choices_replay_and_reset() {
        let b = EtaBounds::new(1.0, 1.0).unwrap();
        let mut r = RecordedChoices::new(vec![0.1, -0.2]);
        let c = ctx(Edge::Rising, b);
        assert_eq!(r.sample(&c), 0.1);
        assert_eq!(r.remaining(), &[-0.2]);
        assert_eq!(r.sample(&c), -0.2);
        assert_eq!(r.sample(&c), 0.0); // exhausted
        r.reset();
        assert_eq!(r.sample(&c), 0.1);
    }

    #[test]
    fn fn_noise_adapts_closures() {
        let b = EtaBounds::new(1.0, 1.0).unwrap();
        let mut n = FnNoise(|c: &NoiseContext| if c.edge.is_rising() { 0.5 } else { -0.5 });
        assert_eq!(n.sample(&ctx(Edge::Rising, b)), 0.5);
        assert_eq!(n.sample(&ctx(Edge::Falling, b)), -0.5);
        assert!(!format!("{n:?}").is_empty());
    }

    #[test]
    fn boxed_source_delegates() {
        let b = EtaBounds::new(0.1, 0.2).unwrap();
        let mut boxed: Box<dyn NoiseSource> = Box::new(WorstCaseAdversary);
        assert_eq!(boxed.sample(&ctx(Edge::Rising, b)), 0.2);
        boxed.reset();
    }
}
