use std::fmt;

/// Errors produced by `ivl-core` constructors and algorithms.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// A signal's transition times were not strictly increasing.
    NonMonotonicTimes {
        /// Index of the offending transition.
        index: usize,
        /// Time of the previous transition.
        previous: f64,
        /// Time of the offending transition.
        time: f64,
    },
    /// A signal's transition values did not alternate.
    NonAlternating {
        /// Index of the offending transition.
        index: usize,
    },
    /// A transition time was NaN or infinite.
    NonFiniteTime {
        /// Index of the offending transition.
        index: usize,
    },
    /// A delay-function parameter was out of range.
    InvalidDelayParameter {
        /// Name of the parameter.
        name: &'static str,
        /// Offending value.
        value: f64,
        /// Human-readable constraint, e.g. `"must be > 0"`.
        constraint: &'static str,
    },
    /// The noise bounds `η = [−η⁻, η⁺]` were invalid (negative or non-finite).
    InvalidEtaBounds {
        /// η⁻ as given.
        minus: f64,
        /// η⁺ as given.
        plus: f64,
    },
    /// A numeric solver failed to bracket or converge on a root.
    SolverFailed {
        /// What was being solved.
        what: &'static str,
    },
    /// A channel produced an output transition in the past of an already
    /// committed output; the adversary bounds are too large for a causal
    /// execution.
    CausalityViolation {
        /// Time at which the violation was detected.
        time: f64,
    },
    /// Piecewise-linear delay data was unusable (too few points,
    /// non-monotone, …).
    InvalidSampleData {
        /// Human-readable reason.
        reason: &'static str,
    },
    /// No [`ChannelFactory`](crate::factory::ChannelFactory) is
    /// registered for the requested kind.
    UnknownChannelKind {
        /// The kind string that failed to resolve.
        kind: String,
    },
    /// A by-name channel description had missing, mistyped or otherwise
    /// unusable parameters.
    InvalidChannelParams {
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::NonMonotonicTimes {
                index,
                previous,
                time,
            } => write!(
                f,
                "transition {index} at time {time} is not after previous transition at {previous}"
            ),
            Error::NonAlternating { index } => {
                write!(f, "transition {index} does not alternate with its predecessor")
            }
            Error::NonFiniteTime { index } => {
                write!(f, "transition {index} has a non-finite time")
            }
            Error::InvalidDelayParameter {
                name,
                value,
                constraint,
            } => write!(f, "delay parameter {name} = {value} invalid: {constraint}"),
            Error::InvalidEtaBounds { minus, plus } => write!(
                f,
                "eta bounds [-{minus}, {plus}] invalid: both must be finite and >= 0"
            ),
            Error::SolverFailed { what } => write!(f, "numeric solver failed: {what}"),
            Error::CausalityViolation { time } => write!(
                f,
                "channel output would cancel or precede an already committed transition at time {time}"
            ),
            Error::InvalidSampleData { reason } => {
                write!(f, "invalid delay sample data: {reason}")
            }
            Error::UnknownChannelKind { kind } => {
                write!(f, "no channel factory registered for kind {kind:?}")
            }
            Error::InvalidChannelParams { reason } => {
                write!(f, "invalid channel parameters: {reason}")
            }
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_for_all_variants() {
        let variants = [
            Error::NonMonotonicTimes {
                index: 1,
                previous: 2.0,
                time: 1.5,
            },
            Error::NonAlternating { index: 3 },
            Error::NonFiniteTime { index: 0 },
            Error::InvalidDelayParameter {
                name: "tau",
                value: -1.0,
                constraint: "must be > 0",
            },
            Error::InvalidEtaBounds {
                minus: -0.1,
                plus: 0.2,
            },
            Error::SolverFailed { what: "delta_min" },
            Error::UnknownChannelKind { kind: "x".into() },
            Error::InvalidChannelParams {
                reason: "missing tau".into(),
            },
            Error::CausalityViolation { time: 1.0 },
            Error::InvalidSampleData {
                reason: "fewer than two points",
            },
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
            assert!(!format!("{v:?}").is_empty());
        }
    }
}
