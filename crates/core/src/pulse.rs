//! Pulses and pulse-train statistics (up-times, periods, duty cycles).
//!
//! Lemmas 5 and 6 of the paper bound the up-times `∆_n`, periods
//! `P_n = ∆_n + ∆′_{n+1}` and duty cycles `γ_n = ∆_n / P_n` of any
//! infinite pulse train produced by the fed-back OR stage. [`PulseStats`]
//! computes exactly these quantities from a [`Signal`].

use crate::signal::Signal;

/// A maximal 1-interval of a signal: `[start, start + width)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pulse {
    /// Time of the rising transition.
    pub start: f64,
    /// Up-time (∆ in the paper); infinite if the signal never falls again.
    pub width: f64,
}

impl Pulse {
    /// Creates a pulse.
    #[must_use]
    pub fn new(start: f64, width: f64) -> Self {
        Pulse { start, width }
    }

    /// Time of the falling transition (`start + width`).
    #[must_use]
    pub fn end(&self) -> f64 {
        self.start + self.width
    }
}

/// Per-pulse statistics of a pulse train, following the paper's notation.
///
/// For pulses `∆_1, ∆_2, …` (up-times) the *period* of pulse `n` is
/// measured rising-edge to next rising-edge, `P_n = ∆_n + ∆′_{n+1}` where
/// `∆′_{n+1}` is the down-time between pulse `n` and pulse `n+1`; the duty
/// cycle is `γ_n = ∆_n / P_n`.
///
/// ```
/// use ivl_core::{PulseStats, Signal};
/// # fn main() -> Result<(), ivl_core::Error> {
/// let s = Signal::pulse_train([(0.0, 1.0), (4.0, 1.0), (8.0, 1.0)])?;
/// let stats = PulseStats::of(&s);
/// assert_eq!(stats.periods(), &[4.0, 4.0]);
/// assert_eq!(stats.duty_cycles(), &[0.25, 0.25]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PulseStats {
    pulses: Vec<Pulse>,
    down_times: Vec<f64>,
    periods: Vec<f64>,
    duty_cycles: Vec<f64>,
}

impl PulseStats {
    /// Computes pulse statistics for `signal`.
    ///
    /// Unclosed trailing pulses (infinite width) are excluded from period
    /// and duty-cycle lists but included in [`PulseStats::pulses`].
    #[must_use]
    pub fn of(signal: &Signal) -> Self {
        let pulses = signal.pulses();
        let mut down_times = Vec::new();
        let mut periods = Vec::new();
        let mut duty_cycles = Vec::new();
        for w in pulses.windows(2) {
            let down = w[1].start - w[0].end();
            down_times.push(down);
            if w[0].width.is_finite() {
                let period = w[1].start - w[0].start;
                periods.push(period);
                duty_cycles.push(w[0].width / period);
            }
        }
        PulseStats {
            pulses,
            down_times,
            periods,
            duty_cycles,
        }
    }

    /// All pulses of the signal.
    #[must_use]
    pub fn pulses(&self) -> &[Pulse] {
        &self.pulses
    }

    /// Up-times `∆_n` of all complete pulses.
    #[must_use]
    pub fn up_times(&self) -> Vec<f64> {
        self.pulses
            .iter()
            .filter(|p| p.width.is_finite())
            .map(|p| p.width)
            .collect()
    }

    /// Down-times `∆′_n` between consecutive pulses.
    #[must_use]
    pub fn down_times(&self) -> &[f64] {
        &self.down_times
    }

    /// Periods `P_n` (rising edge to next rising edge).
    #[must_use]
    pub fn periods(&self) -> &[f64] {
        &self.periods
    }

    /// Duty cycles `γ_n = ∆_n / P_n`.
    #[must_use]
    pub fn duty_cycles(&self) -> &[f64] {
        &self.duty_cycles
    }

    /// Largest finite up-time, if any.
    #[must_use]
    pub fn max_up_time(&self) -> Option<f64> {
        self.up_times().into_iter().fold(None, fmax)
    }

    /// Smallest down-time, if any.
    #[must_use]
    pub fn min_down_time(&self) -> Option<f64> {
        self.down_times.iter().copied().fold(None, fmin)
    }

    /// Smallest period, if any.
    #[must_use]
    pub fn min_period(&self) -> Option<f64> {
        self.periods.iter().copied().fold(None, fmin)
    }

    /// Largest duty cycle, if any.
    #[must_use]
    pub fn max_duty_cycle(&self) -> Option<f64> {
        self.duty_cycles.iter().copied().fold(None, fmax)
    }

    /// Number of complete (finite-width) pulses.
    #[must_use]
    pub fn pulse_count(&self) -> usize {
        self.pulses.iter().filter(|p| p.width.is_finite()).count()
    }
}

fn fmax(acc: Option<f64>, x: f64) -> Option<f64> {
    Some(acc.map_or(x, |a| a.max(x)))
}

fn fmin(acc: Option<f64>, x: f64) -> Option<f64> {
    Some(acc.map_or(x, |a| a.min(x)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::Signal;

    #[test]
    fn pulse_end() {
        let p = Pulse::new(1.0, 2.5);
        assert_eq!(p.end(), 3.5);
    }

    #[test]
    fn stats_of_regular_train() {
        let s = Signal::pulse_train([(0.0, 1.0), (3.0, 1.0), (6.0, 1.0)]).unwrap();
        let st = PulseStats::of(&s);
        assert_eq!(st.pulse_count(), 3);
        assert_eq!(st.up_times(), vec![1.0, 1.0, 1.0]);
        assert_eq!(st.down_times(), &[2.0, 2.0]);
        assert_eq!(st.periods(), &[3.0, 3.0]);
        assert!((st.max_duty_cycle().unwrap() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(st.min_period(), Some(3.0));
        assert_eq!(st.min_down_time(), Some(2.0));
        assert_eq!(st.max_up_time(), Some(1.0));
    }

    #[test]
    fn stats_of_irregular_train() {
        let s = Signal::pulse_train([(0.0, 2.0), (3.0, 0.5), (10.0, 1.0)]).unwrap();
        let st = PulseStats::of(&s);
        assert_eq!(st.periods(), &[3.0, 7.0]);
        assert_eq!(st.down_times(), &[1.0, 6.5]);
        let gammas = st.duty_cycles();
        assert!((gammas[0] - 2.0 / 3.0).abs() < 1e-12);
        assert!((gammas[1] - 0.5 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn stats_of_constant_and_single_pulse() {
        let st = PulseStats::of(&Signal::zero());
        assert_eq!(st.pulse_count(), 0);
        assert!(st.max_duty_cycle().is_none());
        assert!(st.min_period().is_none());

        let s = Signal::pulse(0.0, 1.0).unwrap();
        let st = PulseStats::of(&s);
        assert_eq!(st.pulse_count(), 1);
        assert!(st.periods().is_empty()); // no next rising edge
    }

    #[test]
    fn unclosed_tail_excluded_from_periods() {
        // rises at 0, falls at 1, rises at 2 and stays up
        let s = Signal::from_times(crate::Bit::Zero, &[0.0, 1.0, 2.0]).unwrap();
        let st = PulseStats::of(&s);
        assert_eq!(st.pulses().len(), 2);
        assert_eq!(st.pulse_count(), 1);
        assert_eq!(st.periods(), &[2.0]);
        assert_eq!(st.down_times(), &[1.0]);
    }
}
