//! Zero-time Boolean combinations of signals.
//!
//! The paper's gates compute their Boolean function in zero time; these
//! combinators implement exactly that semantics at the signal level,
//! which is handy for building stimuli and for verifying the
//! event-driven simulator against a closed form.

use crate::bit::Bit;
use crate::signal::{Signal, SignalBuilder};

impl Signal {
    /// Combines two signals through a zero-time Boolean function.
    ///
    /// The result transitions only where `f` applied to the two traces
    /// changes value; simultaneous input transitions produce a single
    /// output evaluation (no zero-width glitches), matching the gate
    /// semantics of the circuit model.
    ///
    /// ```
    /// use ivl_core::{Bit, Signal};
    /// # fn main() -> Result<(), ivl_core::Error> {
    /// let a = Signal::pulse(0.0, 4.0)?;
    /// let b = Signal::pulse(2.0, 4.0)?;
    /// let and = Signal::zip_with(&a, &b, |x, y| Bit::from(x.is_one() && y.is_one()));
    /// assert_eq!(and, Signal::pulse(2.0, 2.0)?);
    /// # Ok(())
    /// # }
    /// ```
    #[must_use]
    pub fn zip_with<F>(a: &Signal, b: &Signal, f: F) -> Signal
    where
        F: Fn(Bit, Bit) -> Bit,
    {
        let initial = f(a.initial(), b.initial());
        let mut builder = SignalBuilder::new(initial);
        let mut current = initial;
        let (ta, tb) = (a.transitions(), b.transitions());
        let (mut i, mut j) = (0usize, 0usize);
        let (mut va, mut vb) = (a.initial(), b.initial());
        while i < ta.len() || j < tb.len() {
            // advance to the next event time, consuming *all* transitions
            // at that time from both signals before evaluating f
            let time = match (ta.get(i), tb.get(j)) {
                (Some(x), Some(y)) => x.time.min(y.time),
                (Some(x), None) => x.time,
                (None, Some(y)) => y.time,
                (None, None) => unreachable!("loop condition"),
            };
            while i < ta.len() && ta[i].time == time {
                va = ta[i].value;
                i += 1;
            }
            while j < tb.len() && tb[j].time == time {
                vb = tb[j].value;
                j += 1;
            }
            let next = f(va, vb);
            if next != current {
                builder
                    .push_time(time)
                    .expect("event times are strictly increasing");
                current = next;
            }
        }
        builder.finish()
    }

    /// Pointwise AND.
    #[must_use]
    pub fn and(&self, other: &Signal) -> Signal {
        Signal::zip_with(self, other, |a, b| Bit::from(a.is_one() && b.is_one()))
    }

    /// Pointwise OR.
    #[must_use]
    pub fn or(&self, other: &Signal) -> Signal {
        Signal::zip_with(self, other, |a, b| Bit::from(a.is_one() || b.is_one()))
    }

    /// Pointwise XOR.
    #[must_use]
    pub fn xor(&self, other: &Signal) -> Signal {
        Signal::zip_with(self, other, |a, b| Bit::from(a != b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn and_or_xor_of_overlapping_pulses() {
        let a = Signal::pulse(0.0, 4.0).unwrap();
        let b = Signal::pulse(2.0, 4.0).unwrap();
        assert_eq!(a.and(&b), Signal::pulse(2.0, 2.0).unwrap());
        assert_eq!(a.or(&b), Signal::pulse(0.0, 6.0).unwrap());
        assert_eq!(
            a.xor(&b),
            Signal::pulse_train([(0.0, 2.0), (4.0, 2.0)]).unwrap()
        );
    }

    #[test]
    fn constants_behave_as_identities_and_annihilators() {
        let a = Signal::pulse(1.0, 2.0).unwrap();
        let zero = Signal::zero();
        let one = Signal::constant(Bit::One);
        assert_eq!(a.and(&one), a);
        assert!(a.and(&zero).is_zero());
        assert_eq!(a.or(&zero), a);
        assert_eq!(a.or(&one), one);
        assert_eq!(a.xor(&zero), a);
        assert_eq!(a.xor(&one), a.complemented());
    }

    #[test]
    fn simultaneous_transitions_do_not_glitch() {
        // a XOR a = 0 even though both inputs switch at identical times
        let a = Signal::pulse_train([(0.0, 1.0), (3.0, 2.0)]).unwrap();
        assert!(a.xor(&a).is_zero());
        assert_eq!(a.and(&a), a);
        assert_eq!(a.or(&a), a);
    }

    #[test]
    fn disjoint_pulses() {
        let a = Signal::pulse(0.0, 1.0).unwrap();
        let b = Signal::pulse(5.0, 1.0).unwrap();
        assert!(a.and(&b).is_zero());
        assert_eq!(
            a.or(&b),
            Signal::pulse_train([(0.0, 1.0), (5.0, 1.0)]).unwrap()
        );
    }

    #[test]
    fn initial_values_propagate() {
        let a = Signal::constant(Bit::One);
        let b = Signal::from_times(Bit::One, &[2.0]).unwrap(); // falls at 2
        let and = a.and(&b);
        assert_eq!(and.initial(), Bit::One);
        assert_eq!(and.len(), 1);
        assert_eq!(and.value_at(3.0), Bit::Zero);
    }

    #[test]
    fn custom_function_nand() {
        let a = Signal::pulse(0.0, 3.0).unwrap();
        let b = Signal::pulse(1.0, 3.0).unwrap();
        let nand = Signal::zip_with(&a, &b, |x, y| !Bit::from(x.is_one() && y.is_one()));
        assert_eq!(nand.initial(), Bit::One);
        assert_eq!(nand.value_at(2.0), Bit::Zero);
        assert_eq!(nand.value_at(3.5), Bit::One);
    }
}
