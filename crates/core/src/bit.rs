//! Binary values and transition edges.

use std::fmt;
use std::ops::Not;

/// A binary signal value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum Bit {
    /// Logic low.
    #[default]
    Zero,
    /// Logic high.
    One,
}

impl Bit {
    /// Returns `true` if the bit is [`Bit::One`].
    ///
    /// ```
    /// use ivl_core::Bit;
    /// assert!(Bit::One.is_one());
    /// assert!(!Bit::Zero.is_one());
    /// ```
    #[must_use]
    pub fn is_one(self) -> bool {
        self == Bit::One
    }

    /// Returns `true` if the bit is [`Bit::Zero`].
    #[must_use]
    pub fn is_zero(self) -> bool {
        self == Bit::Zero
    }

    /// The edge direction of a transition *to* this value: a transition to
    /// [`Bit::One`] is rising, a transition to [`Bit::Zero`] is falling.
    ///
    /// ```
    /// use ivl_core::{Bit, Edge};
    /// assert_eq!(Bit::One.edge(), Edge::Rising);
    /// ```
    #[must_use]
    pub fn edge(self) -> Edge {
        match self {
            Bit::Zero => Edge::Falling,
            Bit::One => Edge::Rising,
        }
    }

    /// Numeric value, 0 or 1.
    #[must_use]
    pub fn as_u8(self) -> u8 {
        match self {
            Bit::Zero => 0,
            Bit::One => 1,
        }
    }
}

impl Not for Bit {
    type Output = Bit;

    fn not(self) -> Bit {
        match self {
            Bit::Zero => Bit::One,
            Bit::One => Bit::Zero,
        }
    }
}

impl From<bool> for Bit {
    fn from(b: bool) -> Bit {
        if b {
            Bit::One
        } else {
            Bit::Zero
        }
    }
}

impl From<Bit> for bool {
    fn from(b: Bit) -> bool {
        b.is_one()
    }
}

impl fmt::Display for Bit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_u8())
    }
}

/// The direction of a signal transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Edge {
    /// A `0 → 1` transition.
    Rising,
    /// A `1 → 0` transition.
    Falling,
}

impl Edge {
    /// The value the signal takes *after* this edge.
    ///
    /// ```
    /// use ivl_core::{Bit, Edge};
    /// assert_eq!(Edge::Falling.target(), Bit::Zero);
    /// ```
    #[must_use]
    pub fn target(self) -> Bit {
        match self {
            Edge::Rising => Bit::One,
            Edge::Falling => Bit::Zero,
        }
    }

    /// The opposite edge.
    #[must_use]
    pub fn flipped(self) -> Edge {
        match self {
            Edge::Rising => Edge::Falling,
            Edge::Falling => Edge::Rising,
        }
    }

    /// `true` for [`Edge::Rising`].
    #[must_use]
    pub fn is_rising(self) -> bool {
        self == Edge::Rising
    }
}

impl Not for Edge {
    type Output = Edge;

    fn not(self) -> Edge {
        self.flipped()
    }
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Edge::Rising => write!(f, "↑"),
            Edge::Falling => write!(f, "↓"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn not_is_involutive() {
        assert_eq!(!!Bit::Zero, Bit::Zero);
        assert_eq!(!!Bit::One, Bit::One);
        assert_eq!(!!Edge::Rising, Edge::Rising);
        assert_eq!(!!Edge::Falling, Edge::Falling);
    }

    #[test]
    fn bool_roundtrip() {
        assert_eq!(Bit::from(true), Bit::One);
        assert_eq!(Bit::from(false), Bit::Zero);
        assert!(bool::from(Bit::One));
        assert!(!bool::from(Bit::Zero));
    }

    #[test]
    fn edge_target_matches_bit_edge() {
        for bit in [Bit::Zero, Bit::One] {
            assert_eq!(bit.edge().target(), bit);
        }
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(Bit::default(), Bit::Zero);
    }

    #[test]
    fn display() {
        assert_eq!(Bit::Zero.to_string(), "0");
        assert_eq!(Bit::One.to_string(), "1");
        assert_eq!(Edge::Rising.to_string(), "↑");
        assert_eq!(Edge::Falling.to_string(), "↓");
    }

    #[test]
    fn ordering_zero_before_one() {
        assert!(Bit::Zero < Bit::One);
    }
}
