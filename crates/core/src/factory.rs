//! Channel factories: construct channels **by name** from flat
//! parameter lists.
//!
//! Spec-driven front ends (the `faithful::Experiment` facade, stored
//! experiment files, job queues) describe channels as data — a kind
//! string plus key/value parameters — rather than as Rust constructor
//! calls. A [`ChannelRegistry`] resolves such descriptions to boxed
//! [`SimChannel`]s. The registry ships with factories for every channel
//! family of this crate (`pure`, `inertial`, `ddm`, `involution`,
//! `eta`); custom channels plug in by implementing [`ChannelFactory`]
//! and calling [`ChannelRegistry::register`].
//!
//! ```
//! use ivl_core::factory::{ChannelParams, ChannelRegistry};
//! use ivl_core::channel::Channel;
//! use ivl_core::Signal;
//!
//! # fn main() -> Result<(), ivl_core::Error> {
//! let registry = ChannelRegistry::with_builtins();
//! let params = ChannelParams::new()
//!     .with_text("delay", "exp")
//!     .with_num("tau", 1.0)
//!     .with_num("t_p", 0.5)
//!     .with_num("v_th", 0.5);
//! let mut ch = registry.build("involution", &params)?;
//! let out = ch.apply(&Signal::pulse(0.0, 3.0)?);
//! assert_eq!(out.len(), 2);
//! # Ok(())
//! # }
//! ```

use std::fmt;

use crate::channel::{
    DdmEdgeParams, DegradationDelay, EtaInvolutionChannel, InertialDelay, InvolutionChannel,
    PureDelay, SimChannel,
};
use crate::delay::{DelayPair, ExpChannel, RationalPair};
use crate::error::Error;
use crate::noise::{
    ConstantShift, EtaBounds, ExtendingAdversary, TruncatedGaussian, UniformNoise,
    WorstCaseAdversary, ZeroNoise,
};

/// A single channel parameter value.
///
/// Numbers and integers are kept apart so 64-bit seeds survive
/// serialization exactly (an `f64` cannot hold every `u64`).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ParamValue {
    /// A real-valued parameter (delays, thresholds, bounds, …).
    Num(f64),
    /// A non-negative integer parameter (seeds, counts, …).
    Int(u64),
    /// A textual parameter (sub-kind selectors like `delay = "exp"`).
    Text(String),
}

impl fmt::Display for ParamValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamValue::Num(v) => write!(f, "{v:?}"),
            ParamValue::Int(v) => write!(f, "{v}"),
            ParamValue::Text(v) => write!(f, "{v}"),
        }
    }
}

/// An ordered, flat list of named channel parameters.
///
/// Order is preserved (it is part of the serialized form) but lookups
/// are by name; duplicate names resolve to the first entry.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ChannelParams {
    entries: Vec<(String, ParamValue)>,
}

impl ChannelParams {
    /// Creates an empty parameter list.
    #[must_use]
    pub fn new() -> Self {
        ChannelParams::default()
    }

    /// Appends a real-valued parameter (builder style).
    #[must_use]
    pub fn with_num(mut self, name: impl Into<String>, value: f64) -> Self {
        self.entries.push((name.into(), ParamValue::Num(value)));
        self
    }

    /// Appends an integer parameter (builder style).
    #[must_use]
    pub fn with_int(mut self, name: impl Into<String>, value: u64) -> Self {
        self.entries.push((name.into(), ParamValue::Int(value)));
        self
    }

    /// Appends a textual parameter (builder style).
    #[must_use]
    pub fn with_text(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.entries
            .push((name.into(), ParamValue::Text(value.into())));
        self
    }

    /// All entries, in insertion order.
    #[must_use]
    pub fn entries(&self) -> &[(String, ParamValue)] {
        &self.entries
    }

    /// Looks a parameter up by name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&ParamValue> {
        self.entries.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// The real value of `name` (integers coerce losslessly enough for
    /// physical quantities).
    ///
    /// # Errors
    ///
    /// [`Error::InvalidChannelParams`] if absent or textual.
    pub fn num(&self, name: &str) -> Result<f64, Error> {
        match self.get(name) {
            Some(ParamValue::Num(v)) => Ok(*v),
            #[allow(clippy::cast_precision_loss)]
            Some(ParamValue::Int(v)) => Ok(*v as f64),
            Some(ParamValue::Text(_)) => Err(Error::InvalidChannelParams {
                reason: format!("parameter {name:?} must be numeric"),
            }),
            None => Err(Error::InvalidChannelParams {
                reason: format!("missing parameter {name:?}"),
            }),
        }
    }

    /// Like [`num`](Self::num) but with a default when absent.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidChannelParams`] if present but textual.
    pub fn num_or(&self, name: &str, default: f64) -> Result<f64, Error> {
        match self.get(name) {
            None => Ok(default),
            Some(_) => self.num(name),
        }
    }

    /// The integer value of `name`.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidChannelParams`] if absent or not an integer.
    pub fn int(&self, name: &str) -> Result<u64, Error> {
        match self.get(name) {
            Some(ParamValue::Int(v)) => Ok(*v),
            Some(_) => Err(Error::InvalidChannelParams {
                reason: format!("parameter {name:?} must be an integer"),
            }),
            None => Err(Error::InvalidChannelParams {
                reason: format!("missing parameter {name:?}"),
            }),
        }
    }

    /// Like [`int`](Self::int) but with a default when absent.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidChannelParams`] if present but not an integer.
    pub fn int_or(&self, name: &str, default: u64) -> Result<u64, Error> {
        match self.get(name) {
            None => Ok(default),
            Some(_) => self.int(name),
        }
    }

    /// The textual value of `name`.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidChannelParams`] if absent or not textual.
    pub fn text(&self, name: &str) -> Result<&str, Error> {
        match self.get(name) {
            Some(ParamValue::Text(v)) => Ok(v),
            Some(_) => Err(Error::InvalidChannelParams {
                reason: format!("parameter {name:?} must be textual"),
            }),
            None => Err(Error::InvalidChannelParams {
                reason: format!("missing parameter {name:?}"),
            }),
        }
    }

    /// Like [`text`](Self::text) but with a default when absent.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidChannelParams`] if present but not textual.
    pub fn text_or<'a>(&'a self, name: &str, default: &'a str) -> Result<&'a str, Error> {
        match self.get(name) {
            None => Ok(default),
            Some(_) => self.text(name),
        }
    }
}

/// Builds channels of one kind from [`ChannelParams`].
///
/// Implementations are registered in a [`ChannelRegistry`] and selected
/// by [`kind`](ChannelFactory::kind) string.
pub trait ChannelFactory: Send + Sync {
    /// The kind string this factory answers to (e.g. `"involution"`).
    fn kind(&self) -> &str;

    /// Builds a channel from the given parameters.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidChannelParams`] for missing or mistyped
    /// parameters, or any constructor error of the underlying channel.
    fn build(&self, params: &ChannelParams) -> Result<Box<dyn SimChannel>, Error>;
}

/// A name-indexed collection of [`ChannelFactory`]s.
pub struct ChannelRegistry {
    factories: Vec<Box<dyn ChannelFactory>>,
}

impl fmt::Debug for ChannelRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ChannelRegistry")
            .field("kinds", &self.kinds())
            .finish()
    }
}

impl Default for ChannelRegistry {
    fn default() -> Self {
        ChannelRegistry::with_builtins()
    }
}

impl ChannelRegistry {
    /// An empty registry (no kinds resolvable).
    #[must_use]
    pub fn empty() -> Self {
        ChannelRegistry {
            factories: Vec::new(),
        }
    }

    /// A registry with every built-in channel family registered:
    /// `pure`, `inertial`, `ddm`, `involution` and `eta`.
    #[must_use]
    pub fn with_builtins() -> Self {
        let mut r = ChannelRegistry::empty();
        r.register(Box::new(PureFactory));
        r.register(Box::new(InertialFactory));
        r.register(Box::new(DdmFactory));
        r.register(Box::new(InvolutionFactory));
        r.register(Box::new(EtaFactory));
        r
    }

    /// Registers a factory. Later registrations shadow earlier ones of
    /// the same kind, so built-ins can be overridden.
    pub fn register(&mut self, factory: Box<dyn ChannelFactory>) {
        self.factories.push(factory);
    }

    /// `true` if a factory for `kind` is registered.
    #[must_use]
    pub fn contains(&self, kind: &str) -> bool {
        self.factories.iter().any(|f| f.kind() == kind)
    }

    /// The registered kind strings, most recent registration first.
    #[must_use]
    pub fn kinds(&self) -> Vec<&str> {
        self.factories.iter().rev().map(|f| f.kind()).collect()
    }

    /// Builds a channel of the given kind.
    ///
    /// # Errors
    ///
    /// [`Error::UnknownChannelKind`] if no factory answers to `kind`;
    /// otherwise whatever the factory's
    /// [`build`](ChannelFactory::build) returns.
    pub fn build(&self, kind: &str, params: &ChannelParams) -> Result<Box<dyn SimChannel>, Error> {
        self.factories
            .iter()
            .rev()
            .find(|f| f.kind() == kind)
            .ok_or_else(|| Error::UnknownChannelKind {
                kind: kind.to_owned(),
            })?
            .build(params)
    }
}

/// Builds the delay pair selected by the `delay` parameter (`exp` with
/// `tau`/`t_p`/`v_th`, or `rational` with `a`/`b`/`c`), shared by the
/// `involution` and `eta` factories.
///
/// # Errors
///
/// [`Error::InvalidChannelParams`] for unknown delay families or
/// missing parameters; constructor errors for out-of-range values.
pub fn delay_pair_from(params: &ChannelParams) -> Result<DelayFamily, Error> {
    match params.text_or("delay", "exp")? {
        "exp" => Ok(DelayFamily::Exp(ExpChannel::new(
            params.num("tau")?,
            params.num("t_p")?,
            params.num_or("v_th", 0.5)?,
        )?)),
        "rational" => Ok(DelayFamily::Rational(RationalPair::new(
            params.num("a")?,
            params.num("b")?,
            params.num("c")?,
        )?)),
        other => Err(Error::InvalidChannelParams {
            reason: format!("unknown delay family {other:?} (expected exp or rational)"),
        }),
    }
}

/// A delay pair constructed by name — one variant per closed-form
/// family the factories understand.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum DelayFamily {
    /// First-order RC switching delays ([`ExpChannel`]).
    Exp(ExpChannel),
    /// The algebraic involution family ([`RationalPair`]).
    Rational(RationalPair),
}

struct PureFactory;

impl ChannelFactory for PureFactory {
    fn kind(&self) -> &str {
        "pure"
    }

    fn build(&self, params: &ChannelParams) -> Result<Box<dyn SimChannel>, Error> {
        Ok(Box::new(PureDelay::new(params.num("delay")?)?))
    }
}

struct InertialFactory;

impl ChannelFactory for InertialFactory {
    fn kind(&self) -> &str {
        "inertial"
    }

    fn build(&self, params: &ChannelParams) -> Result<Box<dyn SimChannel>, Error> {
        Ok(Box::new(InertialDelay::new(
            params.num("delay")?,
            params.num("window")?,
        )?))
    }
}

struct DdmFactory;

impl ChannelFactory for DdmFactory {
    fn kind(&self) -> &str {
        "ddm"
    }

    fn build(&self, params: &ChannelParams) -> Result<Box<dyn SimChannel>, Error> {
        // symmetric form: t_p0 / t_0 / tau; per-edge form: up_* / down_*
        if params.get("t_p0").is_some() {
            let p =
                DdmEdgeParams::new(params.num("t_p0")?, params.num("t_0")?, params.num("tau")?)?;
            return Ok(Box::new(DegradationDelay::symmetric(p)));
        }
        let up = DdmEdgeParams::new(
            params.num("up_t_p0")?,
            params.num("up_t_0")?,
            params.num("up_tau")?,
        )?;
        let down = DdmEdgeParams::new(
            params.num("down_t_p0")?,
            params.num("down_t_0")?,
            params.num("down_tau")?,
        )?;
        Ok(Box::new(DegradationDelay::new(up, down)))
    }
}

struct InvolutionFactory;

impl ChannelFactory for InvolutionFactory {
    fn kind(&self) -> &str {
        "involution"
    }

    fn build(&self, params: &ChannelParams) -> Result<Box<dyn SimChannel>, Error> {
        Ok(match delay_pair_from(params)? {
            DelayFamily::Exp(d) => Box::new(InvolutionChannel::new(d)),
            DelayFamily::Rational(d) => Box::new(InvolutionChannel::new(d)),
        })
    }
}

struct EtaFactory;

impl ChannelFactory for EtaFactory {
    fn kind(&self) -> &str {
        "eta"
    }

    fn build(&self, params: &ChannelParams) -> Result<Box<dyn SimChannel>, Error> {
        let bounds = EtaBounds::new(params.num_or("minus", 0.0)?, params.num_or("plus", 0.0)?)?;
        match delay_pair_from(params)? {
            DelayFamily::Exp(d) => build_eta(d, bounds, params),
            DelayFamily::Rational(d) => build_eta(d, bounds, params),
        }
    }
}

fn build_eta<D: DelayPair + Clone + Send + 'static>(
    delay: D,
    bounds: EtaBounds,
    params: &ChannelParams,
) -> Result<Box<dyn SimChannel>, Error> {
    Ok(match params.text_or("noise", "zero")? {
        "zero" => Box::new(EtaInvolutionChannel::new(delay, bounds, ZeroNoise)),
        "worst_case" => Box::new(EtaInvolutionChannel::new(delay, bounds, WorstCaseAdversary)),
        "extending" => Box::new(EtaInvolutionChannel::new(delay, bounds, ExtendingAdversary)),
        "uniform" => Box::new(EtaInvolutionChannel::new(
            delay,
            bounds,
            UniformNoise::new(params.int_or("seed", 0)?),
        )),
        "gaussian" => Box::new(EtaInvolutionChannel::new(
            delay,
            bounds,
            TruncatedGaussian::new(params.num("sigma")?, params.int_or("seed", 0)?)?,
        )),
        "constant" => Box::new(EtaInvolutionChannel::new(
            delay,
            bounds,
            ConstantShift(params.num("shift")?),
        )),
        other => {
            return Err(Error::InvalidChannelParams {
                reason: format!("unknown noise kind {other:?}"),
            })
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{Channel, FeedEffect, OnlineChannel};
    use crate::signal::{Signal, Transition};
    use crate::Bit;

    fn exp_params() -> ChannelParams {
        ChannelParams::new()
            .with_text("delay", "exp")
            .with_num("tau", 1.0)
            .with_num("t_p", 0.5)
            .with_num("v_th", 0.5)
    }

    #[test]
    fn builds_every_builtin_kind() {
        let r = ChannelRegistry::with_builtins();
        for kind in ["pure", "inertial", "ddm", "involution", "eta"] {
            assert!(r.contains(kind), "{kind} missing");
        }
        let input = Signal::pulse(0.0, 3.0).unwrap();
        let mut pure = r
            .build("pure", &ChannelParams::new().with_num("delay", 1.0))
            .unwrap();
        assert_eq!(pure.apply(&input).len(), 2);
        let mut inertial = r
            .build(
                "inertial",
                &ChannelParams::new()
                    .with_num("delay", 1.0)
                    .with_num("window", 0.5),
            )
            .unwrap();
        assert_eq!(inertial.apply(&input).len(), 2);
        let mut ddm = r
            .build(
                "ddm",
                &ChannelParams::new()
                    .with_num("t_p0", 1.2)
                    .with_num("t_0", 0.2)
                    .with_num("tau", 1.0),
            )
            .unwrap();
        assert_eq!(ddm.apply(&input).len(), 2);
        let mut invol = r.build("involution", &exp_params()).unwrap();
        assert_eq!(invol.apply(&input).len(), 2);
    }

    #[test]
    fn factory_channels_match_direct_construction() {
        let r = ChannelRegistry::with_builtins();
        let input = Signal::pulse_train([(0.0, 4.0), (7.0, 0.62)]).unwrap();
        let mut by_name = r.build("involution", &exp_params()).unwrap();
        let mut direct = InvolutionChannel::new(ExpChannel::new(1.0, 0.5, 0.5).unwrap());
        assert_eq!(by_name.apply(&input), direct.apply(&input));

        let eta = exp_params()
            .with_num("minus", 0.02)
            .with_num("plus", 0.02)
            .with_text("noise", "uniform")
            .with_int("seed", 7);
        let mut by_name = r.build("eta", &eta).unwrap();
        let mut direct = EtaInvolutionChannel::new(
            ExpChannel::new(1.0, 0.5, 0.5).unwrap(),
            EtaBounds::new(0.02, 0.02).unwrap(),
            UniformNoise::new(7),
        );
        assert_eq!(by_name.apply(&input), direct.apply(&input));
    }

    #[test]
    fn built_channels_clone_and_reseed() {
        let r = ChannelRegistry::with_builtins();
        let params = exp_params()
            .with_num("minus", 0.02)
            .with_num("plus", 0.02)
            .with_text("noise", "uniform")
            .with_int("seed", 1);
        let ch = r.build("eta", &params).unwrap();
        let mut a = ch.clone_box();
        let mut b = ch.clone_box();
        b.reseed(99);
        let tr = Transition::new(1.0, Bit::One);
        let fa = a.feed(tr);
        let fb = b.feed(tr);
        assert!(matches!(fa, FeedEffect::Scheduled(_)));
        assert_ne!(fa, fb, "reseeded clone must draw different noise");
    }

    #[test]
    fn unknown_kind_and_bad_params_are_rejected() {
        let r = ChannelRegistry::with_builtins();
        assert!(matches!(
            r.build("nope", &ChannelParams::new()),
            Err(Error::UnknownChannelKind { .. })
        ));
        assert!(matches!(
            r.build("pure", &ChannelParams::new()),
            Err(Error::InvalidChannelParams { .. })
        ));
        assert!(matches!(
            r.build(
                "involution",
                &ChannelParams::new().with_text("delay", "mystery")
            ),
            Err(Error::InvalidChannelParams { .. })
        ));
        assert!(matches!(
            r.build("eta", &exp_params().with_text("noise", "psychic")),
            Err(Error::InvalidChannelParams { .. })
        ));
        // type mismatches
        let p = ChannelParams::new()
            .with_text("delay", "exp")
            .with_text("tau", "one");
        assert!(matches!(
            r.build("involution", &p),
            Err(Error::InvalidChannelParams { .. })
        ));
        let p = exp_params()
            .with_num("seed", 3.5)
            .with_text("noise", "uniform");
        assert!(matches!(
            r.build("eta", &p),
            Err(Error::InvalidChannelParams { .. })
        ));
    }

    #[test]
    fn error_variants_carry_exact_payloads() {
        let r = ChannelRegistry::with_builtins();
        let fail = |kind: &str, params: &ChannelParams| {
            r.build(kind, params).err().expect("build must fail")
        };
        // unknown kind: the variant names the kind verbatim
        match fail("nope", &ChannelParams::new()) {
            Error::UnknownChannelKind { kind } => assert_eq!(kind, "nope"),
            other => panic!("expected UnknownChannelKind, got {other:?}"),
        }
        // invalid params: the reason names the offending parameter
        match fail("pure", &ChannelParams::new()) {
            Error::InvalidChannelParams { reason } => {
                assert!(reason.contains("delay"), "{reason}");
            }
            other => panic!("expected InvalidChannelParams, got {other:?}"),
        }
        match fail("inertial", &ChannelParams::new().with_num("delay", 1.0)) {
            Error::InvalidChannelParams { reason } => {
                assert!(reason.contains("window"), "{reason}");
            }
            other => panic!("expected InvalidChannelParams, got {other:?}"),
        }
    }

    #[test]
    fn shadowing_builtin_routes_error_paths_to_the_shadow() {
        struct Picky;
        impl ChannelFactory for Picky {
            fn kind(&self) -> &str {
                "pure"
            }
            fn build(&self, _params: &ChannelParams) -> Result<Box<dyn SimChannel>, Error> {
                Err(Error::InvalidChannelParams {
                    reason: "picky shadow rejects everything".into(),
                })
            }
        }
        let mut r = ChannelRegistry::with_builtins();
        r.register(Box::new(Picky));
        // parameters the builtin would happily accept now fail through
        // the shadow — later registrations win for errors too
        let err = r
            .build("pure", &ChannelParams::new().with_num("delay", 1.0))
            .err()
            .expect("shadow must reject");
        match err {
            Error::InvalidChannelParams { reason } => {
                assert_eq!(reason, "picky shadow rejects everything");
            }
            other => panic!("expected the shadow's error, got {other:?}"),
        }
        // other kinds are untouched
        assert!(r
            .build(
                "inertial",
                &ChannelParams::new()
                    .with_num("delay", 1.0)
                    .with_num("window", 0.5)
            )
            .is_ok());
    }

    #[test]
    fn custom_factories_shadow_builtins() {
        struct Shadow;
        impl ChannelFactory for Shadow {
            fn kind(&self) -> &str {
                "pure"
            }
            fn build(&self, _params: &ChannelParams) -> Result<Box<dyn SimChannel>, Error> {
                Ok(Box::new(PureDelay::new(42.0)?))
            }
        }
        let mut r = ChannelRegistry::with_builtins();
        r.register(Box::new(Shadow));
        let mut ch = r.build("pure", &ChannelParams::new()).unwrap();
        let out = ch.apply(&Signal::pulse(0.0, 100.0).unwrap());
        assert_eq!(out.transitions()[0].time, 42.0);
        assert!(r.kinds().contains(&"eta"));
        assert!(!format!("{r:?}").is_empty());
    }

    #[test]
    fn params_accessors() {
        let p = ChannelParams::new()
            .with_num("x", 1.5)
            .with_int("n", 3)
            .with_text("s", "abc");
        assert_eq!(p.num("x").unwrap(), 1.5);
        assert_eq!(p.num("n").unwrap(), 3.0);
        assert_eq!(p.int("n").unwrap(), 3);
        assert_eq!(p.text("s").unwrap(), "abc");
        assert_eq!(p.num_or("missing", 9.0).unwrap(), 9.0);
        assert_eq!(p.int_or("missing", 9).unwrap(), 9);
        assert_eq!(p.text_or("missing", "d").unwrap(), "d");
        assert!(p.num("s").is_err());
        assert!(p.int("x").is_err());
        assert!(p.text("x").is_err());
        assert!(p.num("missing").is_err());
        assert!(p.int("missing").is_err());
        assert!(p.text("missing").is_err());
        assert_eq!(p.entries().len(), 3);
        assert_eq!(format!("{}", ParamValue::Num(2.0)), "2.0");
        assert_eq!(format!("{}", ParamValue::Int(2)), "2");
        assert_eq!(format!("{}", ParamValue::Text("t".into())), "t");
    }
}
