//! Continuous-time binary signals as alternating transition lists.
//!
//! A [`Signal`] follows Section II of the paper: it has an *initial value*
//! (the transition "at time −∞") and a finite list of transitions whose
//! times are strictly increasing (condition S2) and whose values alternate.
//! Condition S1 (all finite transitions at times `t ≥ 0`) is required of
//! circuit *inputs* and can be checked with [`Signal::satisfies_s1`];
//! channel outputs are allowed to carry negative transition times so that
//! channels remain total functions. Condition S3 concerns infinite
//! signals, which are represented here by finite prefixes over a simulated
//! horizon.

use std::fmt;

use crate::bit::Bit;
use crate::error::Error;
use crate::pulse::Pulse;

/// A single signal transition: at `time` the signal takes `value`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Transition {
    /// The time of the transition.
    pub time: f64,
    /// The value of the signal immediately after the transition.
    pub value: Bit,
}

impl Transition {
    /// Creates a transition to `value` at `time`.
    ///
    /// ```
    /// use ivl_core::{Bit, Transition};
    /// let t = Transition::new(1.5, Bit::One);
    /// assert!(t.is_rising());
    /// ```
    #[must_use]
    pub fn new(time: f64, value: Bit) -> Self {
        Transition { time, value }
    }

    /// `true` if this is a rising (`0 → 1`) transition.
    #[must_use]
    pub fn is_rising(&self) -> bool {
        self.value.is_one()
    }

    /// `true` if this is a falling (`1 → 0`) transition.
    #[must_use]
    pub fn is_falling(&self) -> bool {
        self.value.is_zero()
    }
}

impl fmt::Display for Transition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.time, self.value)
    }
}

/// A continuous-time binary signal.
///
/// Invariants (checked on construction):
///
/// * transition times are finite and strictly increasing (S2);
/// * the first transition's value differs from the initial value, and
///   consecutive transition values alternate.
///
/// # Examples
///
/// ```
/// use ivl_core::{Bit, Signal};
/// # fn main() -> Result<(), ivl_core::Error> {
/// let s = Signal::pulse(1.0, 2.0)?; // up-pulse on [1, 3)
/// assert_eq!(s.value_at(0.0), Bit::Zero);
/// assert_eq!(s.value_at(1.0), Bit::One);
/// assert_eq!(s.value_at(3.5), Bit::Zero);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Signal {
    initial: Bit,
    transitions: Vec<Transition>,
}

impl Signal {
    /// Creates a signal from an initial value and a transition list.
    ///
    /// # Errors
    ///
    /// Returns an error if times are non-finite or not strictly
    /// increasing, or if values do not alternate starting from
    /// `!initial`.
    pub fn new(initial: Bit, transitions: Vec<Transition>) -> Result<Self, Error> {
        let mut expected = !initial;
        let mut prev_time = f64::NEG_INFINITY;
        for (index, tr) in transitions.iter().enumerate() {
            if !tr.time.is_finite() {
                return Err(Error::NonFiniteTime { index });
            }
            if tr.time <= prev_time {
                return Err(Error::NonMonotonicTimes {
                    index,
                    previous: prev_time,
                    time: tr.time,
                });
            }
            if tr.value != expected {
                return Err(Error::NonAlternating { index });
            }
            prev_time = tr.time;
            expected = !expected;
        }
        Ok(Signal {
            initial,
            transitions,
        })
    }

    /// Creates a signal from an initial value and transition *times* only;
    /// values are inferred by alternation.
    ///
    /// # Errors
    ///
    /// Returns an error if the times are non-finite or not strictly
    /// increasing.
    pub fn from_times(initial: Bit, times: &[f64]) -> Result<Self, Error> {
        let mut value = initial;
        let transitions = times
            .iter()
            .map(|&time| {
                value = !value;
                Transition::new(time, value)
            })
            .collect();
        Signal::new(initial, transitions)
    }

    /// The constant signal with the given value and no transitions.
    #[must_use]
    pub fn constant(value: Bit) -> Self {
        Signal {
            initial: value,
            transitions: Vec::new(),
        }
    }

    /// The zero signal (constant [`Bit::Zero`]).
    #[must_use]
    pub fn zero() -> Self {
        Signal::constant(Bit::Zero)
    }

    /// A single up-pulse of length `width` starting at time `start`
    /// (initial value 0, rising at `start`, falling at `start + width`).
    ///
    /// This is "a pulse of length ∆ at time T" in the paper's Section IV.
    ///
    /// # Errors
    ///
    /// Returns an error if `width <= 0` or the times are non-finite.
    pub fn pulse(start: f64, width: f64) -> Result<Self, Error> {
        Signal::from_times(Bit::Zero, &[start, start + width])
    }

    /// A train of up-pulses: each `(start, width)` pair contributes one
    /// pulse. Pulses must be disjoint and in increasing order.
    ///
    /// # Errors
    ///
    /// Returns an error if the resulting transition times are not strictly
    /// increasing.
    pub fn pulse_train<I>(pulses: I) -> Result<Self, Error>
    where
        I: IntoIterator<Item = (f64, f64)>,
    {
        let mut times = Vec::new();
        for (start, width) in pulses {
            times.push(start);
            times.push(start + width);
        }
        Signal::from_times(Bit::Zero, &times)
    }

    /// The initial value (the "transition at −∞").
    #[must_use]
    pub fn initial(&self) -> Bit {
        self.initial
    }

    /// The transitions, in increasing time order.
    #[must_use]
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// Number of transitions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.transitions.len()
    }

    /// `true` if the signal has no transitions (it is constant).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.transitions.is_empty()
    }

    /// `true` if this is the zero signal (constant 0).
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.initial.is_zero() && self.transitions.is_empty()
    }

    /// The signal trace value at time `t` (value of the most recent
    /// transition at or before `t`).
    #[must_use]
    pub fn value_at(&self, t: f64) -> Bit {
        match self
            .transitions
            .partition_point(|tr| tr.time <= t)
            .checked_sub(1)
        {
            Some(i) => self.transitions[i].value,
            None => self.initial,
        }
    }

    /// The value after all transitions.
    #[must_use]
    pub fn final_value(&self) -> Bit {
        self.transitions.last().map_or(self.initial, |tr| tr.value)
    }

    /// Time of the last transition, or `None` for constant signals.
    #[must_use]
    pub fn last_time(&self) -> Option<f64> {
        self.transitions.last().map(|tr| tr.time)
    }

    /// `true` if every transition happens at a time `t ≥ 0` (condition S1
    /// of the paper, required of circuit input signals).
    #[must_use]
    pub fn satisfies_s1(&self) -> bool {
        self.transitions.first().is_none_or(|tr| tr.time >= 0.0)
    }

    /// Returns the signal shifted by `dt` in time.
    #[must_use]
    pub fn shifted(&self, dt: f64) -> Self {
        let transitions = self
            .transitions
            .iter()
            .map(|tr| Transition::new(tr.time + dt, tr.value))
            .collect();
        Signal {
            initial: self.initial,
            transitions,
        }
    }

    /// The complemented signal (all values inverted, same times).
    #[must_use]
    pub fn complemented(&self) -> Self {
        let transitions = self
            .transitions
            .iter()
            .map(|tr| Transition::new(tr.time, !tr.value))
            .collect();
        Signal {
            initial: !self.initial,
            transitions,
        }
    }

    /// Maximal intervals during which the signal is 1, as [`Pulse`]s.
    /// A trailing 1-interval that never falls is reported with infinite
    /// width.
    #[must_use]
    pub fn pulses(&self) -> Vec<Pulse> {
        let mut pulses = Vec::new();
        let mut rise: Option<f64> = if self.initial.is_one() {
            Some(f64::NEG_INFINITY)
        } else {
            None
        };
        for tr in &self.transitions {
            match (tr.value, rise) {
                (Bit::One, None) => rise = Some(tr.time),
                (Bit::Zero, Some(start)) => {
                    pulses.push(Pulse::new(start, tr.time - start));
                    rise = None;
                }
                _ => unreachable!("alternation invariant"),
            }
        }
        if let Some(start) = rise {
            pulses.push(Pulse::new(start, f64::INFINITY));
        }
        pulses
    }

    /// `true` if the signal contains a (complete) up-pulse of length `< eps`
    /// or a 0-gap of length `< eps` between pulses. This is the property
    /// ruled out by SPF condition F4 ("no short pulses").
    #[must_use]
    pub fn contains_interval_shorter_than(&self, eps: f64) -> bool {
        self.transitions
            .windows(2)
            .any(|w| w[1].time - w[0].time < eps)
    }

    /// The width of the shortest interval between consecutive transitions,
    /// or `None` if there are fewer than two transitions.
    #[must_use]
    pub fn min_interval(&self) -> Option<f64> {
        self.transitions
            .windows(2)
            .map(|w| w[1].time - w[0].time)
            .fold(None, |acc, w| Some(acc.map_or(w, |a: f64| a.min(w))))
    }

    /// Restriction of the signal to `(-∞, horizon]`: transitions after
    /// `horizon` are dropped.
    #[must_use]
    pub fn truncated(&self, horizon: f64) -> Self {
        let keep = self.transitions.partition_point(|tr| tr.time <= horizon);
        Signal {
            initial: self.initial,
            transitions: self.transitions[..keep].to_vec(),
        }
    }

    /// `true` if `self` and `other` have the same initial value, the same
    /// number of transitions, and pairwise times within `tol`.
    #[must_use]
    pub fn approx_eq(&self, other: &Signal, tol: f64) -> bool {
        self.initial == other.initial
            && self.transitions.len() == other.transitions.len()
            && self
                .transitions
                .iter()
                .zip(&other.transitions)
                .all(|(a, b)| a.value == b.value && (a.time - b.time).abs() <= tol)
    }

    /// Renders the signal trace as single-line ASCII art over
    /// `[t_start, t_end]` with `width` columns — handy for examples and
    /// debugging.
    ///
    /// ```
    /// use ivl_core::Signal;
    /// # fn main() -> Result<(), ivl_core::Error> {
    /// let s = Signal::pulse(2.0, 4.0)?;
    /// let art = s.render_ascii(0.0, 8.0, 16);
    /// assert_eq!(art.chars().count(), 16);
    /// # Ok(())
    /// # }
    /// ```
    #[must_use]
    pub fn render_ascii(&self, t_start: f64, t_end: f64, width: usize) -> String {
        if width == 0 || t_end <= t_start {
            return String::new();
        }
        let dt = (t_end - t_start) / width as f64;
        let mut out = String::with_capacity(width * 3);
        let mut prev = self.value_at(t_start - dt / 2.0);
        for col in 0..width {
            let t = t_start + (col as f64 + 0.5) * dt;
            let v = self.value_at(t);
            let ch = match (prev, v) {
                (Bit::Zero, Bit::Zero) => '_',
                (Bit::One, Bit::One) => '‾',
                (Bit::Zero, Bit::One) => '/',
                (Bit::One, Bit::Zero) => '\\',
            };
            out.push(ch);
            prev = v;
        }
        out
    }
}

impl Default for Signal {
    /// The zero signal.
    fn default() -> Self {
        Signal::zero()
    }
}

impl fmt::Display for Signal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@-∞", self.initial)?;
        for tr in &self.transitions {
            write!(f, " {tr}")?;
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a Signal {
    type Item = &'a Transition;
    type IntoIter = std::slice::Iter<'a, Transition>;

    fn into_iter(self) -> Self::IntoIter {
        self.transitions.iter()
    }
}

/// Incremental builder for [`Signal`]s.
///
/// Appends transitions in time order, checking the invariants as it goes.
///
/// ```
/// use ivl_core::{Bit, SignalBuilder};
/// # fn main() -> Result<(), ivl_core::Error> {
/// let mut b = SignalBuilder::new(Bit::Zero);
/// b.push_time(1.0)?;
/// b.push_time(2.0)?;
/// let s = b.finish();
/// assert_eq!(s.len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SignalBuilder {
    initial: Bit,
    transitions: Vec<Transition>,
    next_value: Bit,
}

impl SignalBuilder {
    /// Starts a builder for a signal with the given initial value.
    #[must_use]
    pub fn new(initial: Bit) -> Self {
        SignalBuilder {
            initial,
            transitions: Vec::new(),
            next_value: !initial,
        }
    }

    /// Current value at the end of the partial signal.
    #[must_use]
    pub fn current_value(&self) -> Bit {
        !self.next_value
    }

    /// Appends a transition at `time` (value inferred by alternation).
    ///
    /// # Errors
    ///
    /// Returns an error if `time` is non-finite or not after the previous
    /// transition.
    pub fn push_time(&mut self, time: f64) -> Result<&mut Self, Error> {
        let index = self.transitions.len();
        if !time.is_finite() {
            return Err(Error::NonFiniteTime { index });
        }
        if let Some(last) = self.transitions.last() {
            if time <= last.time {
                return Err(Error::NonMonotonicTimes {
                    index,
                    previous: last.time,
                    time,
                });
            }
        }
        self.transitions
            .push(Transition::new(time, self.next_value));
        self.next_value = !self.next_value;
        Ok(self)
    }

    /// Appends a transition, checking that its value matches the expected
    /// alternation.
    ///
    /// # Errors
    ///
    /// Returns an error on broken alternation or non-monotone time.
    pub fn push(&mut self, tr: Transition) -> Result<&mut Self, Error> {
        if tr.value != self.next_value {
            return Err(Error::NonAlternating {
                index: self.transitions.len(),
            });
        }
        self.push_time(tr.time)?;
        Ok(self)
    }

    /// Number of transitions so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.transitions.len()
    }

    /// `true` if no transitions have been pushed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.transitions.is_empty()
    }

    /// Finishes the builder, producing the signal.
    #[must_use]
    pub fn finish(self) -> Signal {
        Signal {
            initial: self.initial,
            transitions: self.transitions,
        }
    }

    /// Produces the signal built so far without consuming the builder.
    ///
    /// The transition list is copied; the builder keeps recording. Event
    /// loops that reuse one builder across runs pair this with
    /// [`reset`](SignalBuilder::reset).
    #[must_use]
    pub fn snapshot(&self) -> Signal {
        Signal {
            initial: self.initial,
            transitions: self.transitions.clone(),
        }
    }

    /// Clears the builder for a new signal starting at `initial`,
    /// retaining the transition buffer's capacity.
    pub fn reset(&mut self, initial: Bit) {
        self.initial = initial;
        self.next_value = !initial;
        self.transitions.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_signals() {
        let z = Signal::zero();
        assert!(z.is_zero());
        assert!(z.is_empty());
        assert_eq!(z.value_at(-10.0), Bit::Zero);
        assert_eq!(z.final_value(), Bit::Zero);
        let one = Signal::constant(Bit::One);
        assert!(!one.is_zero());
        assert_eq!(one.value_at(5.0), Bit::One);
    }

    #[test]
    fn pulse_trace_evaluation() {
        let s = Signal::pulse(1.0, 2.0).unwrap();
        assert_eq!(s.value_at(0.999), Bit::Zero);
        assert_eq!(s.value_at(1.0), Bit::One); // most recent transition at t
        assert_eq!(s.value_at(2.999), Bit::One);
        assert_eq!(s.value_at(3.0), Bit::Zero);
        assert_eq!(s.final_value(), Bit::Zero);
        assert_eq!(s.last_time(), Some(3.0));
    }

    #[test]
    fn new_rejects_nonmonotone() {
        let err = Signal::from_times(Bit::Zero, &[1.0, 1.0]).unwrap_err();
        assert!(matches!(err, Error::NonMonotonicTimes { index: 1, .. }));
        let err = Signal::from_times(Bit::Zero, &[2.0, 1.0]).unwrap_err();
        assert!(matches!(err, Error::NonMonotonicTimes { .. }));
    }

    #[test]
    fn new_rejects_nonfinite() {
        let err = Signal::from_times(Bit::Zero, &[f64::NAN]).unwrap_err();
        assert!(matches!(err, Error::NonFiniteTime { index: 0 }));
        let err = Signal::from_times(Bit::Zero, &[f64::INFINITY]).unwrap_err();
        assert!(matches!(err, Error::NonFiniteTime { index: 0 }));
    }

    #[test]
    fn new_rejects_broken_alternation() {
        let trs = vec![
            Transition::new(1.0, Bit::One),
            Transition::new(2.0, Bit::One),
        ];
        let err = Signal::new(Bit::Zero, trs).unwrap_err();
        assert!(matches!(err, Error::NonAlternating { index: 1 }));
        let trs = vec![Transition::new(1.0, Bit::Zero)];
        let err = Signal::new(Bit::Zero, trs).unwrap_err();
        assert!(matches!(err, Error::NonAlternating { index: 0 }));
    }

    #[test]
    fn pulse_rejects_nonpositive_width() {
        assert!(Signal::pulse(0.0, 0.0).is_err());
        assert!(Signal::pulse(0.0, -1.0).is_err());
    }

    #[test]
    fn pulse_train_constructs_and_validates() {
        let s = Signal::pulse_train([(0.0, 1.0), (2.0, 0.5)]).unwrap();
        assert_eq!(s.len(), 4);
        assert_eq!(s.pulses().len(), 2);
        assert!(Signal::pulse_train([(0.0, 3.0), (2.0, 1.0)]).is_err()); // overlap
    }

    #[test]
    fn pulses_extraction() {
        let s = Signal::pulse_train([(1.0, 2.0), (5.0, 1.0)]).unwrap();
        let ps = s.pulses();
        assert_eq!(ps.len(), 2);
        assert_eq!(ps[0].start, 1.0);
        assert_eq!(ps[0].width, 2.0);
        assert_eq!(ps[1].start, 5.0);
        assert_eq!(ps[1].width, 1.0);
    }

    #[test]
    fn pulses_with_initial_one_and_unclosed_tail() {
        let s = Signal::from_times(Bit::One, &[1.0, 2.0]).unwrap(); // falls at 1, rises at 2
        let ps = s.pulses();
        assert_eq!(ps.len(), 2);
        assert_eq!(ps[0].start, f64::NEG_INFINITY);
        assert_eq!(ps[0].width, f64::INFINITY);
        assert_eq!(ps[1].start, 2.0);
        assert!(ps[1].width.is_infinite());
    }

    #[test]
    fn min_interval_and_short_pulse_detection() {
        let s = Signal::pulse_train([(0.0, 0.1), (1.0, 2.0)]).unwrap();
        assert!((s.min_interval().unwrap() - 0.1).abs() < 1e-12);
        assert!(s.contains_interval_shorter_than(0.2));
        assert!(!s.contains_interval_shorter_than(0.05));
        assert_eq!(Signal::zero().min_interval(), None);
    }

    #[test]
    fn shifted_and_complemented() {
        let s = Signal::pulse(1.0, 1.0).unwrap();
        let sh = s.shifted(-0.5);
        assert_eq!(sh.transitions()[0].time, 0.5);
        let c = s.complemented();
        assert_eq!(c.initial(), Bit::One);
        assert_eq!(c.value_at(1.5), Bit::Zero);
        assert_eq!(c.complemented(), s);
    }

    #[test]
    fn truncated_drops_late_transitions() {
        let s = Signal::pulse_train([(0.0, 1.0), (2.0, 1.0)]).unwrap();
        let t = s.truncated(1.5);
        assert_eq!(t.len(), 2);
        assert_eq!(t.final_value(), Bit::Zero);
        // truncation keeps a transition exactly at the horizon
        let t2 = s.truncated(2.0);
        assert_eq!(t2.len(), 3);
    }

    #[test]
    fn satisfies_s1() {
        assert!(Signal::pulse(0.0, 1.0).unwrap().satisfies_s1());
        assert!(Signal::zero().satisfies_s1());
        assert!(!Signal::pulse(-1.0, 0.5).unwrap().satisfies_s1());
    }

    #[test]
    fn approx_eq_tolerates_time_jitter() {
        let a = Signal::pulse(0.0, 1.0).unwrap();
        let b = Signal::pulse(0.001, 1.0).unwrap();
        assert!(a.approx_eq(&b, 0.01));
        assert!(!a.approx_eq(&b, 1e-6));
        assert!(!a.approx_eq(&Signal::zero(), 1.0));
    }

    #[test]
    fn builder_happy_path_and_errors() {
        let mut b = SignalBuilder::new(Bit::Zero);
        assert!(b.is_empty());
        b.push_time(0.5).unwrap();
        assert_eq!(b.current_value(), Bit::One);
        b.push(Transition::new(1.5, Bit::Zero)).unwrap();
        assert!(b.push(Transition::new(2.0, Bit::Zero)).is_err()); // alternation
        assert!(b.push_time(1.0).is_err()); // monotonicity
        assert_eq!(b.len(), 2);
        let s = b.finish();
        assert_eq!(s, Signal::pulse(0.5, 1.0).unwrap());
    }

    #[test]
    fn render_ascii_shape() {
        let s = Signal::pulse(2.0, 4.0).unwrap();
        let art = s.render_ascii(0.0, 8.0, 8);
        assert_eq!(art.chars().count(), 8);
        assert!(art.contains('/'));
        assert!(art.contains('\\'));
        assert!(art.starts_with('_'));
        assert_eq!(s.render_ascii(0.0, 0.0, 8), "");
        assert_eq!(s.render_ascii(0.0, 1.0, 0), "");
    }

    #[test]
    fn display_formats() {
        let s = Signal::pulse(1.0, 1.0).unwrap();
        let d = s.to_string();
        assert!(d.contains("0@-∞"));
        assert!(d.contains("(1, 1)"));
    }

    #[test]
    fn iteration() {
        let s = Signal::pulse(1.0, 1.0).unwrap();
        let times: Vec<f64> = (&s).into_iter().map(|tr| tr.time).collect();
        assert_eq!(times, vec![1.0, 2.0]);
    }

    #[test]
    fn value_at_exact_transition_time_is_post_value() {
        let s = Signal::from_times(Bit::One, &[3.0]).unwrap();
        assert_eq!(s.value_at(3.0), Bit::Zero);
        assert_eq!(s.value_at(3.0 - 1e-12), Bit::One);
    }
}
