//! Property-style tests of the channel algebra, pinned directly to the
//! paper's defining identities: the involution law of Lemma 1, the
//! constraint-(C) admissibility boundary for η-bounds, and the
//! construction invariants of `Signal`/`SignalBuilder`/`Pulse`.

use ivl_core::delay::{DelayPair, ExpChannel, RationalPair};
use ivl_core::noise::EtaBounds;
use ivl_core::{Bit, PulseStats, Signal, SignalBuilder};
use proptest::prelude::*;

fn arb_exp() -> impl Strategy<Value = ExpChannel> {
    (0.2f64..3.0, 0.05f64..1.0, 0.15f64..0.85)
        .prop_map(|(tau, tp, vth)| ExpChannel::new(tau, tp, vth).expect("valid params"))
}

fn arb_rational() -> impl Strategy<Value = RationalPair> {
    (0.5f64..4.0, 0.5f64..4.0, 0.05f64..0.9)
        .prop_map(|(a, c, bf)| RationalPair::new(a, bf * a * c, c).expect("valid params"))
}

/// Evaluates the involution residual `−δ↑(−δ↓(t)) − t` over an `n`-point
/// grid of the pair's admissible domain and returns the largest |residual|.
fn max_involution_residual<D: DelayPair>(d: &D, lo: f64, hi: f64, n: usize) -> f64 {
    (0..n)
        .map(|i| {
            let t = lo + (hi - lo) * i as f64 / (n - 1) as f64;
            (-d.delta_up(-d.delta_down(t)) - t).abs()
        })
        .fold(0.0, f64::max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // --- involution self-inverse, δ↑(−δ↓(t)) = t on a grid ---

    #[test]
    fn exp_involution_self_inverse_on_grid(d in arb_exp()) {
        // the admissible domain is (−δ_min^down, ∞); stay clear of both
        // the pole and the saturation plateau
        let lo = -0.85 * d.delta_min();
        let hi = 5.0 * d.tau();
        prop_assert!(max_involution_residual(&d, lo, hi, 257) < 1e-6);
    }

    #[test]
    fn rational_involution_self_inverse_on_grid(d in arb_rational()) {
        let lo = -0.85 * d.delta_min();
        let hi = 8.0;
        prop_assert!(max_involution_residual(&d, lo, hi, 257) < 1e-7);
    }

    #[test]
    fn involution_swap_order_also_identity(d in arb_exp(), t in -0.1f64..4.0) {
        // the dual composition −δ↓(−δ↑(t)) = t holds on the same domain
        prop_assume!(t > -0.85 * d.delta_min());
        let rt = -d.delta_down(-d.delta_up(t));
        prop_assert!((rt - t).abs() < 1e-6, "t={t} roundtrip={rt}");
    }

    // --- η-bounds: constraint (C) admissibility and rejection ---

    #[test]
    fn constraint_c_accepts_then_rejects_across_boundary(
        d in arb_exp(),
        plus in 0.0f64..0.2,
    ) {
        // Section V dimensioning: η⁻_max = δ↓(−η⁺) − δ_min − η⁺ is the
        // exact boundary — strictly inside satisfies (C), outside violates
        let Some(max_minus) = EtaBounds::max_minus_for_plus(plus, &d) else {
            // η⁺ alone already inadmissible: symmetric bounds must fail too
            prop_assert!(
                !EtaBounds::new(plus, plus).unwrap().satisfies_constraint_c(&d)
            );
            return Ok(());
        };
        let inside = EtaBounds::new(max_minus * 0.99, plus).unwrap();
        prop_assert!(inside.satisfies_constraint_c(&d));
        let outside = EtaBounds::new(max_minus * 1.01, plus).unwrap();
        prop_assert!(!outside.satisfies_constraint_c(&d));
    }

    #[test]
    fn constraint_c_is_monotone_in_eta(d in arb_exp(), e in 0.0f64..1.5, shrink in 0.1f64..0.9) {
        // if [−e, e] satisfies (C) then every narrower symmetric interval
        // does too: admissibility is downward closed
        let wide = EtaBounds::symmetric(e).unwrap();
        prop_assume!(wide.satisfies_constraint_c(&d));
        let narrow = EtaBounds::symmetric(e * shrink).unwrap();
        prop_assert!(narrow.satisfies_constraint_c(&d));
    }

    #[test]
    fn eta_wider_than_delta_min_always_violates_c(d in arb_exp(), f in 1.0f64..4.0) {
        // (C) forces η⁺ + η⁻ < δ↓(−η⁺) − δ_min < δ↑∞ − δ_min; an interval
        // at least as wide as δ_min is far past that for these channels
        let e = d.delta_min() * f;
        prop_assert!(!EtaBounds::symmetric(e).unwrap().satisfies_constraint_c(&d));
    }

    // --- pulse/signal builder invariants ---

    #[test]
    fn builder_accepts_increasing_rejects_stale_times(gaps in proptest::collection::vec(0.01f64..2.0, 1..20)) {
        let mut b = SignalBuilder::new(Bit::Zero);
        let mut t = 0.0;
        for g in &gaps {
            t += g;
            b.push_time(t).expect("strictly increasing");
        }
        // any time ≤ the last accepted one must be rejected...
        prop_assert!(b.clone().push_time(t).is_err());
        prop_assert!(b.clone().push_time(t - 1e-3).is_err());
        prop_assert!(b.clone().push_time(f64::NAN).is_err());
        // ...and rejection leaves the builder state untouched
        prop_assert_eq!(b.len(), gaps.len());
        let s = b.finish();
        prop_assert_eq!(s.len(), gaps.len());
        prop_assert!(s.satisfies_s1());
    }

    #[test]
    fn builder_alternation_is_forced(gaps in proptest::collection::vec(0.01f64..2.0, 1..20), init in 0u64..2) {
        let initial = if init == 0 { Bit::Zero } else { Bit::One };
        let mut b = SignalBuilder::new(initial);
        let mut t = 0.0;
        for g in &gaps {
            t += g;
            b.push_time(t).unwrap();
        }
        let s = b.finish();
        prop_assert_eq!(s.initial(), initial);
        // values strictly alternate starting from !initial
        let mut expect = !initial;
        for tr in s.transitions() {
            prop_assert_eq!(tr.value, expect);
            expect = !expect;
        }
        // parity determines the final value
        let want_final = if gaps.len().is_multiple_of(2) { initial } else { !initial };
        prop_assert_eq!(s.final_value(), want_final);
    }

    #[test]
    fn pulse_train_roundtrips_through_pulses(
        widths in proptest::collection::vec(0.05f64..0.9, 1..12),
    ) {
        // non-overlapping unit-spaced train: pulses() must recover it
        let train: Vec<(f64, f64)> = widths
            .iter()
            .enumerate()
            .map(|(i, &w)| (i as f64 * 2.0, w))
            .collect();
        let s = Signal::pulse_train(train.iter().copied()).unwrap();
        let pulses = s.pulses();
        prop_assert_eq!(pulses.len(), train.len());
        for (p, (start, width)) in pulses.iter().zip(&train) {
            prop_assert!((p.start - start).abs() < 1e-12);
            prop_assert!((p.width - width).abs() < 1e-12);
            prop_assert!((p.end() - (start + width)).abs() < 1e-12);
        }
        let stats = PulseStats::of(&s);
        prop_assert_eq!(stats.pulse_count(), train.len());
        prop_assert_eq!(stats.pulses(), &pulses[..]);
    }

    #[test]
    fn single_pulse_invariants(start in -3.0f64..3.0, width in 0.001f64..5.0) {
        let s = Signal::pulse(start, width).unwrap();
        prop_assert_eq!(s.len(), 2);
        prop_assert_eq!(s.initial(), Bit::Zero);
        prop_assert_eq!(s.final_value(), Bit::Zero);
        prop_assert_eq!(s.value_at(start + width / 2.0), Bit::One);
        let min = s.min_interval().unwrap();
        prop_assert!((min - width).abs() < 1e-12, "min interval {min} vs width {width}");
        let pulses = s.pulses();
        prop_assert_eq!(pulses.len(), 1);
        prop_assert!((pulses[0].start - start).abs() < 1e-12);
        prop_assert!((pulses[0].width - width).abs() < 1e-12);
        // zero/negative width is rejected
        prop_assert!(Signal::pulse(start, 0.0).is_err());
        prop_assert!(Signal::pulse(start, -width).is_err());
    }
}

#[test]
fn involution_grid_identity_for_reference_channel() {
    // the paper's running example: τ = 1, T_p = 0.5, V_th = ½
    let d = ExpChannel::new(1.0, 0.5, 0.5).unwrap();
    let residual = max_involution_residual(&d, -0.9 * d.delta_min(), 6.0, 1001);
    assert!(residual < 1e-9, "max residual {residual}");
}

#[test]
fn eta_bounds_rejects_malformed_inputs() {
    assert!(EtaBounds::new(-0.01, 0.1).is_err());
    assert!(EtaBounds::new(0.1, -0.01).is_err());
    assert!(EtaBounds::new(f64::NAN, 0.1).is_err());
    assert!(EtaBounds::new(0.1, f64::INFINITY).is_err());
    assert!(EtaBounds::symmetric(-1.0).is_err());
}
