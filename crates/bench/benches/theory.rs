//! Cost of the analytic layer: fixed-point solvers and the worst-case
//! recurrence.

use criterion::{criterion_group, criterion_main, Criterion};
use ivl_core::delay::{delta_min_of, fit::fit_exp_channel, DelayPair, ExpChannel};
use ivl_core::noise::EtaBounds;
use ivl_spf::{SpfTheory, WorstCaseRecurrence};

fn bench_solvers(c: &mut Criterion) {
    let delay = ExpChannel::new(1.0, 0.5, 0.45).unwrap();
    let bounds = EtaBounds::new(0.02, 0.02).unwrap();
    c.bench_function("delta_min_bisection", |b| {
        b.iter(|| delta_min_of(&delay).unwrap());
    });
    c.bench_function("spf_theory_compute", |b| {
        b.iter(|| SpfTheory::compute(&delay, bounds).unwrap());
    });
    let rec = WorstCaseRecurrence::new(delay.clone(), bounds);
    let th = SpfTheory::compute(&delay, bounds).unwrap();
    c.bench_function("recurrence_fate_near_threshold", |b| {
        b.iter(|| rec.fate(th.delta0_tilde + 1e-9, 100_000));
    });
}

fn bench_fit(c: &mut Criterion) {
    let truth = ExpChannel::new(1.2, 0.4, 0.45).unwrap();
    let ups: Vec<(f64, f64)> = (0..50)
        .map(|i| {
            let t = -0.3 + 0.1 * i as f64;
            (t, truth.delta_up(t))
        })
        .collect();
    let downs: Vec<(f64, f64)> = (0..50)
        .map(|i| {
            let t = -0.3 + 0.1 * i as f64;
            (t, truth.delta_down(t))
        })
        .collect();
    c.bench_function("exp_channel_fit_100pts", |b| {
        b.iter(|| fit_exp_channel(&ups, &downs, None).unwrap());
    });
}

criterion_group!(benches, bench_solvers, bench_fit);
criterion_main!(benches);
