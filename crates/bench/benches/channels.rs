//! Throughput of the channel implementations on long glitch trains.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ivl_core::channel::{
    Channel, DdmEdgeParams, DegradationDelay, EtaInvolutionChannel, InertialDelay,
    InvolutionChannel, PureDelay,
};
use ivl_core::delay::ExpChannel;
use ivl_core::noise::{EtaBounds, UniformNoise, WorstCaseAdversary};
use ivl_core::Signal;

fn glitch_train(n_pulses: usize) -> Signal {
    // period 2.5, widths cycling through attenuation-relevant values
    Signal::pulse_train((0..n_pulses).map(|i| {
        let w = 0.6 + 0.5 * ((i % 7) as f64 / 7.0);
        (i as f64 * 2.5, w)
    }))
    .expect("valid train")
}

fn bench_channels(c: &mut Criterion) {
    let mut group = c.benchmark_group("channel_apply");
    for &n in &[100usize, 1000, 10_000] {
        let input = glitch_train(n);
        group.throughput(Throughput::Elements(input.len() as u64));
        group.bench_with_input(BenchmarkId::new("pure", n), &input, |b, s| {
            let mut ch = PureDelay::new(1.0).unwrap();
            b.iter(|| ch.apply(s));
        });
        group.bench_with_input(BenchmarkId::new("inertial", n), &input, |b, s| {
            let mut ch = InertialDelay::new(1.0, 0.7).unwrap();
            b.iter(|| ch.apply(s));
        });
        group.bench_with_input(BenchmarkId::new("ddm", n), &input, |b, s| {
            let mut ch = DegradationDelay::symmetric(DdmEdgeParams::new(1.0, 0.1, 0.8).unwrap());
            b.iter(|| ch.apply(s));
        });
        group.bench_with_input(BenchmarkId::new("involution_exp", n), &input, |b, s| {
            let mut ch = InvolutionChannel::new(ExpChannel::new(1.0, 0.5, 0.5).unwrap());
            b.iter(|| ch.apply(s));
        });
        group.bench_with_input(BenchmarkId::new("eta_worst_case", n), &input, |b, s| {
            let mut ch = EtaInvolutionChannel::new(
                ExpChannel::new(1.0, 0.5, 0.5).unwrap(),
                EtaBounds::new(0.02, 0.02).unwrap(),
                WorstCaseAdversary,
            );
            b.iter(|| ch.apply(s));
        });
        group.bench_with_input(BenchmarkId::new("eta_uniform_rng", n), &input, |b, s| {
            let mut ch = EtaInvolutionChannel::new(
                ExpChannel::new(1.0, 0.5, 0.5).unwrap(),
                EtaBounds::new(0.02, 0.02).unwrap(),
                UniformNoise::new(42),
            );
            b.iter(|| ch.apply(s));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_channels);
criterion_main!(benches);
