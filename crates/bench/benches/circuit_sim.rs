//! Event-driven simulator throughput: pipelines and the oscillating SPF
//! loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ivl_circuit::{CircuitBuilder, GateKind, Simulator};
use ivl_core::channel::InvolutionChannel;
use ivl_core::delay::ExpChannel;
use ivl_core::noise::{EtaBounds, WorstCaseAdversary};
use ivl_core::{Bit, Signal};
use ivl_spf::SpfCircuit;

fn build_pipeline(stages: usize) -> Simulator {
    let d = ExpChannel::new(1.0, 0.5, 0.5).unwrap();
    let mut b = CircuitBuilder::new();
    let a = b.input("a");
    let y = b.output("y");
    let mut prev = a;
    for i in 0..stages {
        let g = b.gate(
            &format!("inv{i}"),
            GateKind::Not,
            if i.is_multiple_of(2) {
                Bit::One
            } else {
                Bit::Zero
            },
        );
        if i == 0 {
            b.connect_direct(prev, g, 0).unwrap();
        } else {
            b.connect(prev, g, 0, InvolutionChannel::new(d.clone()))
                .unwrap();
        }
        prev = g;
    }
    b.connect(prev, y, 0, InvolutionChannel::new(d)).unwrap();
    Simulator::new(b.build().unwrap())
}

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_sim");
    let input = Signal::pulse_train((0..200).map(|i| (i as f64 * 4.0, 2.0))).unwrap();
    for &stages in &[2usize, 8, 32] {
        group.throughput(Throughput::Elements((input.len() * stages) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(stages), &stages, |b, &s| {
            let mut sim = build_pipeline(s);
            sim.set_input("a", input.clone()).unwrap();
            b.iter(|| sim.run(1e9).unwrap());
        });
    }
    group.finish();
}

fn bench_spf_loop(c: &mut Criterion) {
    let mut group = c.benchmark_group("spf_loop");
    let delay = ExpChannel::new(1.0, 0.5, 0.5).unwrap();
    let bounds = EtaBounds::new(0.02, 0.02).unwrap();
    let spf = SpfCircuit::dimensioned(delay, bounds).unwrap();
    let th = spf.theory().unwrap();
    // a long metastable oscillation: hundreds of loop events
    let input = Signal::pulse(0.0, th.delta0_tilde).unwrap();
    group.bench_function("metastable_oscillation_400tu", |b| {
        b.iter(|| spf.simulate(WorstCaseAdversary, &input, 400.0).unwrap());
    });
    let latch_input = Signal::pulse(0.0, th.lock_bound + 0.5).unwrap();
    group.bench_function("clean_latch", |b| {
        b.iter(|| {
            spf.simulate(WorstCaseAdversary, &latch_input, 400.0)
                .unwrap()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline, bench_spf_loop);
criterion_main!(benches);
