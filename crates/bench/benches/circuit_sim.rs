//! Event-driven simulator throughput: pipelines, the oscillating SPF
//! loop, state-reuse on ≥1k-gate chains, fanout grids, cancel-heavy
//! inertial workloads, and parallel scenario sweeps.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ivl_circuit::{Circuit, CircuitBuilder, GateKind, Scenario, ScenarioRunner, Simulator};
use ivl_core::channel::{InertialDelay, InvolutionChannel, PureDelay};
use ivl_core::delay::ExpChannel;
use ivl_core::noise::{EtaBounds, WorstCaseAdversary};
use ivl_core::{Bit, Signal};
use ivl_spf::SpfCircuit;

fn pipeline_circuit(stages: usize) -> Circuit {
    let d = ExpChannel::new(1.0, 0.5, 0.5).unwrap();
    let mut b = CircuitBuilder::new();
    let a = b.input("a");
    let y = b.output("y");
    let mut prev = a;
    for i in 0..stages {
        let g = b.gate(
            &format!("inv{i}"),
            GateKind::Not,
            if i.is_multiple_of(2) {
                Bit::One
            } else {
                Bit::Zero
            },
        );
        if i == 0 {
            b.connect_direct(prev, g, 0).unwrap();
        } else {
            b.connect(prev, g, 0, InvolutionChannel::new(d.clone()))
                .unwrap();
        }
        prev = g;
    }
    b.connect(prev, y, 0, InvolutionChannel::new(d)).unwrap();
    b.build().unwrap()
}

fn build_pipeline(stages: usize) -> Simulator {
    Simulator::new(pipeline_circuit(stages))
}

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_sim");
    let input = Signal::pulse_train((0..200).map(|i| (i as f64 * 4.0, 2.0))).unwrap();
    for &stages in &[2usize, 8, 32] {
        group.throughput(Throughput::Elements((input.len() * stages) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(stages), &stages, |b, &s| {
            let mut sim = build_pipeline(s);
            sim.set_input("a", input.clone()).unwrap();
            b.iter(|| sim.run(1e9).unwrap());
        });
    }
    group.finish();
}

fn bench_spf_loop(c: &mut Criterion) {
    let mut group = c.benchmark_group("spf_loop");
    let delay = ExpChannel::new(1.0, 0.5, 0.5).unwrap();
    let bounds = EtaBounds::new(0.02, 0.02).unwrap();
    let spf = SpfCircuit::dimensioned(delay, bounds).unwrap();
    let th = spf.theory().unwrap();
    // a long metastable oscillation: hundreds of loop events
    let input = Signal::pulse(0.0, th.delta0_tilde).unwrap();
    group.bench_function("metastable_oscillation_400tu", |b| {
        b.iter(|| spf.simulate(WorstCaseAdversary, &input, 400.0).unwrap());
    });
    let latch_input = Signal::pulse(0.0, th.lock_bound + 0.5).unwrap();
    group.bench_function("clean_latch", |b| {
        b.iter(|| {
            spf.simulate(WorstCaseAdversary, &latch_input, 400.0)
                .unwrap()
        });
    });
    group.finish();
}

/// Repeated `run` on a ≥1k-gate inverter chain: after the warmup run,
/// the reused `SimState` makes every iteration pool/recorder
/// allocation-free — this bench is the wall-clock witness of the slab
/// event pool and in-place state rebuild.
fn bench_reused_run_1k_chain(c: &mut Criterion) {
    let mut group = c.benchmark_group("reused_run_1k_chain");
    let input = Signal::pulse_train((0..20).map(|i| (i as f64 * 40.0, 20.0))).unwrap();
    for &stages in &[1024usize, 2048] {
        group.throughput(Throughput::Elements((input.len() * stages) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(stages), &stages, |b, &s| {
            let mut sim = build_pipeline(s);
            sim.set_input("a", input.clone()).unwrap();
            sim.run(1e9).unwrap(); // warmup: grow pool + recorders
            let capacity = sim.event_pool_capacity();
            b.iter(|| sim.run(1e9).unwrap());
            assert_eq!(sim.event_pool_capacity(), capacity, "pool must not grow");
        });
    }
    group.finish();
}

/// Fanout grid: one driver into `width` parallel buffer columns of
/// `depth` stages each — stresses the per-edge pending queues and the
/// dirty set.
fn bench_fanout_grid(c: &mut Criterion) {
    let mut group = c.benchmark_group("fanout_grid");
    let input = Signal::pulse_train((0..10).map(|i| (i as f64 * 10.0, 5.0))).unwrap();
    for &(width, depth) in &[(32usize, 8usize), (64, 16)] {
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let root = b.gate("root", GateKind::Buf, Bit::Zero);
        b.connect_direct(a, root, 0).unwrap();
        for w in 0..width {
            let mut prev = root;
            for d in 0..depth {
                let g = b.gate(&format!("b{w}_{d}"), GateKind::Buf, Bit::Zero);
                b.connect(prev, g, 0, PureDelay::new(0.1 + w as f64 * 1e-3).unwrap())
                    .unwrap();
                prev = g;
            }
            let y = b.output(&format!("y{w}"));
            b.connect(prev, y, 0, PureDelay::new(0.1).unwrap()).unwrap();
        }
        let mut sim = Simulator::new(b.build().unwrap());
        sim.set_input("a", input.clone()).unwrap();
        group.throughput(Throughput::Elements((input.len() * width * depth) as u64));
        group.bench_function(
            BenchmarkId::from_parameter(format!("{width}x{depth}")),
            |b| {
                b.iter(|| sim.run(1e9).unwrap());
            },
        );
    }
    group.finish();
}

/// Cancel-heavy inertial workload: a pulse train whose odd pulses are
/// narrower than the rejection window, so about a third of the scheduled
/// events are cancelled — stresses slab recycling and generation
/// stamping.
fn bench_cancel_heavy_inertial(c: &mut Criterion) {
    let mut group = c.benchmark_group("cancel_heavy_inertial");
    // alternating wide (passed) and narrow (cancelled) pulses
    let input = Signal::pulse_train((0..200).map(|i| {
        let t = i as f64 * 10.0;
        if i % 2 == 0 {
            (t, 4.0)
        } else {
            (t, 0.4)
        }
    }))
    .unwrap();
    for &stages in &[4usize, 16] {
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let mut prev = a;
        for i in 0..stages {
            let g = b.gate(&format!("buf{i}"), GateKind::Buf, Bit::Zero);
            if i == 0 {
                b.connect_direct(prev, g, 0).unwrap();
            } else {
                b.connect(prev, g, 0, InertialDelay::new(0.5, 1.0).unwrap())
                    .unwrap();
            }
            prev = g;
        }
        let y = b.output("y");
        b.connect(prev, y, 0, InertialDelay::new(0.5, 1.0).unwrap())
            .unwrap();
        let mut sim = Simulator::new(b.build().unwrap());
        sim.set_input("a", input.clone()).unwrap();
        let probe = sim.run(1e9).unwrap();
        assert!(
            probe.scheduled_events() > probe.processed_events(),
            "workload must actually cancel"
        );
        group.throughput(Throughput::Elements(probe.scheduled_events() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(stages), &stages, |b, _| {
            b.iter(|| sim.run(1e9).unwrap());
        });
    }
    group.finish();
}

/// Multi-scenario sweep over worker counts: the same 64-scenario batch
/// on 1, 2 and 4 threads — wall clock should drop with workers.
fn bench_scenario_sweep_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scenario_sweep");
    let scenarios: Vec<Scenario> = (0..64u64)
        .map(|k| {
            Scenario::new(format!("s{k}"))
                .with_input(
                    "a",
                    Signal::pulse_train((0..10).map(|i| (i as f64 * 40.0, 15.0 + k as f64 * 0.1)))
                        .unwrap(),
                )
                .with_seed(k)
        })
        .collect();
    group.throughput(Throughput::Elements(scenarios.len() as u64));
    for &workers in &[1usize, 2, 4] {
        let runner = ScenarioRunner::new(pipeline_circuit(128), 1e9).with_workers(workers);
        group.bench_with_input(BenchmarkId::new("workers", workers), &workers, |b, _| {
            b.iter(|| {
                let sweep = runner.run(&scenarios);
                assert_eq!(sweep.stats().failures, 0);
                sweep
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_pipeline,
    bench_spf_loop,
    bench_reused_run_1k_chain,
    bench_fanout_grid,
    bench_cancel_heavy_inertial,
    bench_scenario_sweep_scaling
);
criterion_main!(benches);
