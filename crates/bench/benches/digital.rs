//! Digital event-driven simulator cost: calendar queue vs reference
//! heap vs the adaptive `Auto` backend on the three canonical workloads
//! (1k-gate chain, fanout grid, cancel-heavy inertial churn), the
//! persistent scenario worker pool vs the old spawn-per-sweep
//! discipline at 1/2/4 workers, a `sweep_10k` tier (10 000
//! scenarios) sized to actually saturate cores at 1/2/4/8 workers —
//! the old 64-scenario sweep finished in ~18 ms and measured spawn
//! overhead, not scaling — and a `service` tier pushing a batch of
//! distinct specs through an in-process `faithful-serve` daemon cold
//! (every spec computed) and hot (pure content-addressed cache replay),
//! recording specs/sec and client-observed p50/p99 latency for both,
//! and a `scale` tier — a 100k-gate involution chain (always, CI smoke
//! included) and a million-gate 2-D grid (behind `IVL_BENCH_FULL=1`) —
//! simulated with a single watched output and recorded with build/run
//! wall time plus peak RSS (`VmHWM`), so memory cost per gate is
//! tracked across PRs alongside speed.
//!
//! Besides the criterion groups, the harness emits a machine-readable
//! `BENCH_digital.json` baseline at the workspace root (override the
//! directory with `BENCH_DIR`) so the perf trajectory of the digital
//! pipeline is tracked across PRs. The baseline records `host_cpus`
//! (`available_parallelism`) — parallel speedups are only meaningful
//! relative to the cores the recording host actually had. In `--test`
//! mode (CI smoke) every measurement runs exactly once. With
//! `IVL_BENCH_CHECK=1` the harness exits non-zero if (a) the calendar
//! queue is slower than the heap on the 1k-chain case, (b) the `Auto`
//! backend lands below 0.95× heap on *any* benched topology, (c) —
//! on hosts with ≥ 4 cores — the 4-worker `sweep_10k` fails to beat
//! 1 worker, or (d) a scale workload's peak RSS per gate grows more
//! than 10% past the committed baseline.
//!
//! Before timing anything the harness *verifies* that both queue
//! backends and both sweep disciplines produce bit-identical outputs on
//! the measured workloads — a speedup on wrong answers is worthless.

use std::time::Instant;

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use faithful::service::{run_batch, BatchOptions, ServeConfig, Server};
use faithful::{
    ChannelSpec, DigitalSpec, Experiment, ExperimentSpec, FailurePolicySpec, NoiseSpec,
    OutputSelect, ScenarioSpec, SignalSpec, TopologySpec,
};
use ivl_circuit::{
    Circuit, CircuitBuilder, GateKind, QueueBackend, Scenario, ScenarioRunner, SimResult,
    Simulator, SweepResult,
};
use ivl_core::channel::{InertialDelay, InvolutionChannel, PureDelay};
use ivl_core::delay::ExpChannel;
use ivl_core::{Bit, Signal};

// ======================================================================
// Workloads
// ======================================================================

fn pipeline_circuit(stages: usize) -> Circuit {
    let d = ExpChannel::new(1.0, 0.5, 0.5).unwrap();
    let mut b = CircuitBuilder::new();
    let a = b.input("a");
    let y = b.output("y");
    let mut prev = a;
    for i in 0..stages {
        let g = b.gate(
            &format!("inv{i}"),
            GateKind::Not,
            if i % 2 == 0 { Bit::One } else { Bit::Zero },
        );
        if i == 0 {
            b.connect_direct(prev, g, 0).unwrap();
        } else {
            b.connect(prev, g, 0, InvolutionChannel::new(d.clone()))
                .unwrap();
        }
        prev = g;
    }
    b.connect(prev, y, 0, InvolutionChannel::new(d)).unwrap();
    b.build().unwrap()
}

fn chain_input() -> Signal {
    Signal::pulse_train((0..20).map(|i| (f64::from(i) * 40.0, 20.0))).unwrap()
}

fn fanout_grid_circuit(width: usize, depth: usize) -> Circuit {
    let mut b = CircuitBuilder::new();
    let a = b.input("a");
    let root = b.gate("root", GateKind::Buf, Bit::Zero);
    b.connect_direct(a, root, 0).unwrap();
    for w in 0..width {
        let mut prev = root;
        for d in 0..depth {
            let g = b.gate(&format!("b{w}_{d}"), GateKind::Buf, Bit::Zero);
            b.connect(prev, g, 0, PureDelay::new(0.1 + w as f64 * 1e-3).unwrap())
                .unwrap();
            prev = g;
        }
        let y = b.output(&format!("y{w}"));
        b.connect(prev, y, 0, PureDelay::new(0.1).unwrap()).unwrap();
    }
    b.build().unwrap()
}

fn grid_input() -> Signal {
    Signal::pulse_train((0..10).map(|i| (f64::from(i) * 10.0, 5.0))).unwrap()
}

/// Cancel-heavy inertial workload with a *large resident event
/// population*: one root gate fans out to `width` parallel inertial
/// buffers whose transport delays put pending events far in the future.
/// Two thirds of the input pulses are narrower than the rejection
/// window, so most scheduled events are cancelled before delivery —
/// the queue discipline (eager discard, O(1) push) dominates run time.
fn cancel_heavy_circuit(width: usize) -> Circuit {
    let mut b = CircuitBuilder::new();
    let a = b.input("a");
    let root = b.gate("root", GateKind::Buf, Bit::Zero);
    b.connect_direct(a, root, 0).unwrap();
    for w in 0..width {
        let g = b.gate(&format!("buf{w}"), GateKind::Buf, Bit::Zero);
        // long transport delays (spread per edge, as process variation
        // would) keep tens of thousands of cancelled events resident:
        // the lazy heap carries them all as stale keys, the calendar
        // queue discards them eagerly from their buckets
        b.connect(
            root,
            g,
            0,
            InertialDelay::new(120.0 + w as f64 * 0.1, 7.0).unwrap(),
        )
        .unwrap();
        let y = b.output(&format!("y{w}"));
        b.connect(g, y, 0, PureDelay::new(0.5).unwrap()).unwrap();
    }
    b.build().unwrap()
}

fn cancel_heavy_input() -> Signal {
    // width 6 (rejected by the 7-wide window) for fifteen pulses out of
    // sixteen, width 9 (passes) for the sixteenth: ~15/16 of scheduled
    // events cancel, the rest flow through to the outputs
    Signal::pulse_train((0..64).map(|i| {
        let t = f64::from(i) * 16.0;
        if i % 16 == 15 {
            (t, 9.0)
        } else {
            (t, 6.0)
        }
    }))
    .unwrap()
}

fn run_once(circuit: &Circuit, input: &Signal, backend: QueueBackend) -> SimResult {
    let mut sim = Simulator::new(circuit.clone()).with_queue_backend(backend);
    sim.set_input("a", input.clone()).unwrap();
    sim.run(1e9).unwrap()
}

/// A simulator warmed until its backend choice is settled: one run for
/// a concrete backend, four for `Auto` (untimed cold run, heap probe,
/// wheel probe, committed winner) — so what gets timed is Auto's
/// steady state, not its measurement phase.
fn warmed_sim(circuit: &Circuit, input: &Signal, backend: QueueBackend) -> Simulator {
    let mut sim = Simulator::new(circuit.clone()).with_queue_backend(backend);
    sim.set_input("a", input.clone()).unwrap();
    let warmups = if backend == QueueBackend::Auto { 4 } else { 1 };
    for _ in 0..warmups {
        sim.run(1e9).unwrap();
    }
    sim
}

// ======================================================================
// Sweep disciplines: persistent pool vs spawn-per-sweep
// ======================================================================

/// The input signal scenario `k` assigns to port "a" — shared by the
/// pool scenarios and the spawn reference so both disciplines always
/// simulate identical workloads.
fn scenario_signal(k: u64) -> Signal {
    Signal::pulse_train((0..10).map(|i| (f64::from(i) * 40.0, 15.0 + k as f64 * 0.1))).unwrap()
}

fn sweep_scenarios(n: usize) -> Vec<Scenario> {
    (0..n as u64)
        .map(|k| {
            Scenario::new(format!("s{k}"))
                .with_input("a", scenario_signal(k))
                .with_seed(k)
        })
        .collect()
}

/// The `sweep_10k` tier: a short per-scenario workload (5 pulses
/// through a 64-stage pipeline) times 10 000 scenarios. Individually
/// cheap scenarios at high volume are exactly where per-worker netlist
/// clones and spawn overhead used to drown the parallel speedup.
fn sweep10k_signal(k: u64) -> Signal {
    Signal::pulse_train((0..5).map(|i| (f64::from(i) * 40.0, 15.0 + k as f64 * 1e-3))).unwrap()
}

fn sweep10k_scenarios(n: usize) -> Vec<Scenario> {
    (0..n as u64)
        .map(|k| {
            Scenario::new(format!("t{k}"))
                .with_input("a", sweep10k_signal(k))
                .with_seed(k)
        })
        .collect()
}

/// The pre-pool discipline, reconstructed on the public API: spawn
/// fresh threads per sweep, statically assign scenario `i` to worker
/// `i % workers`, fresh circuit clones every time.
fn spawn_per_sweep(
    circuit: &Circuit,
    scenarios: &[Scenario],
    horizon: f64,
    workers: usize,
) -> Vec<Option<SimResult>> {
    let n = scenarios.len();
    let mut slots: Vec<Option<SimResult>> = Vec::new();
    slots.resize_with(n, || None);
    let sims: Vec<Simulator> = (0..workers.min(n))
        .map(|_| Simulator::new(circuit.clone()))
        .collect();
    let workers = sims.len();
    std::thread::scope(|scope| {
        let handles: Vec<_> = sims
            .into_iter()
            .enumerate()
            .map(|(w, mut sim)| {
                scope.spawn(move || {
                    let mut out = Vec::new();
                    let mut idx = w;
                    while idx < n {
                        let sc = &scenarios[idx];
                        sim.reset_inputs();
                        if let Some(seed) = sc.seed() {
                            sim.reseed_noise(seed);
                        }
                        // scenarios here assign only port "a"
                        // (Scenario does not expose its inputs; the
                        // shared constructor keeps both sides equal)
                        sim.set_input("a", scenario_signal(idx as u64)).unwrap();
                        out.push((idx, sim.run(horizon).unwrap()));
                        idx += workers;
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            for (idx, res) in h.join().expect("spawn worker panicked") {
                slots[idx] = Some(res);
            }
        }
    });
    slots
}

// ======================================================================
// Criterion groups
// ======================================================================

fn bench_queue_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    group.sample_size(10);
    let workloads: Vec<(&str, Circuit, Signal)> = vec![
        ("chain_1k", pipeline_circuit(1024), chain_input()),
        ("fanout_grid", fanout_grid_circuit(64, 16), grid_input()),
        (
            "cancel_heavy_inertial",
            cancel_heavy_circuit(4096),
            cancel_heavy_input(),
        ),
    ];
    for (name, circuit, input) in &workloads {
        let probe = run_once(circuit, input, QueueBackend::Heap);
        group.throughput(Throughput::Elements(probe.scheduled_events() as u64));
        for (backend, tag) in [
            (QueueBackend::Heap, "heap"),
            (QueueBackend::Calendar, "wheel"),
            (QueueBackend::Auto, "auto"),
        ] {
            let mut sim = warmed_sim(circuit, input, backend);
            group.bench_function(BenchmarkId::new(*name, tag), |b| {
                b.iter(|| sim.run(1e9).unwrap());
            });
        }
    }
    group.finish();
}

fn bench_scenario_pool(c: &mut Criterion) {
    let mut group = c.benchmark_group("scenario_pool");
    group.sample_size(10);
    let circuit = pipeline_circuit(128);
    let scenarios = sweep_scenarios(64);
    group.throughput(Throughput::Elements(scenarios.len() as u64));
    for workers in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("spawn", workers), &workers, |b, &w| {
            b.iter(|| spawn_per_sweep(&circuit, &scenarios, 1e9, w));
        });
        let runner = ScenarioRunner::new(circuit.clone(), 1e9).with_workers(workers);
        let _ = runner.run(&scenarios); // spawn + warm the pool
        group.bench_with_input(BenchmarkId::new("pool", workers), &workers, |b, _| {
            b.iter(|| {
                let sweep = runner.run(&scenarios);
                assert_eq!(sweep.stats().failures, 0);
                sweep
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_queue_backends, bench_scenario_pool);

// ======================================================================
// BENCH_digital.json baseline
// ======================================================================

/// Median wall-clock seconds of `iters` runs of `f` (one run in
/// `--test` mode).
fn median_secs<F: FnMut()>(iters: usize, mut f: F) -> f64 {
    let mut samples: Vec<f64> = (0..iters)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

/// Interleaved best-of-`samples` per-run seconds for a set of warmed
/// simulators on the same workload. Round-robin timing means a host
/// slowdown hits every backend equally instead of whichever happened
/// to be measured last, each sample is batched to span >= 10 ms (a
/// sub-millisecond run is dominated by timer granularity and
/// preemption spikes), and preemption only ever *adds* time, so the
/// per-backend minimum is the least-noisy per-run estimate — the
/// speedup ratios recorded in the baseline are taken between minima.
fn interleaved_best_secs(sims: &mut [Simulator], samples: usize) -> Vec<f64> {
    let t0 = Instant::now();
    sims[0].run(1e9).unwrap();
    let single = t0.elapsed().as_secs_f64();
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let reps = ((0.01 / single.max(1e-9)).ceil() as usize).clamp(1, 64);
    let mut best = vec![f64::INFINITY; sims.len()];
    for _ in 0..samples {
        for (i, sim) in sims.iter_mut().enumerate() {
            let t0 = Instant::now();
            for _ in 0..reps {
                sim.run(1e9).unwrap();
            }
            best[i] = best[i].min(t0.elapsed().as_secs_f64() / reps as f64);
        }
    }
    best
}

/// Bit-identity gate: both backends must agree on every workload, and
/// the pool must agree with the spawn reference for every worker count,
/// before any number is recorded.
fn verify_bit_identity(
    workloads: &[(&str, Circuit, Signal)],
    circuit: &Circuit,
    scenarios: &[Scenario],
) {
    for (name, wl_circuit, input) in workloads {
        let heap = run_once(wl_circuit, input, QueueBackend::Heap);
        for (backend, tag) in [
            (QueueBackend::Calendar, "wheel"),
            (QueueBackend::Auto, "auto"),
        ] {
            let other = run_once(wl_circuit, input, backend);
            assert_eq!(
                heap.processed_events(),
                other.processed_events(),
                "{name}: processed-event mismatch vs {tag}"
            );
            for node in wl_circuit.node_names() {
                assert_eq!(
                    heap.signal(node).unwrap(),
                    other.signal(node).unwrap(),
                    "{name}: node {node} diverges between heap and {tag}"
                );
            }
        }
    }
    let reference = spawn_per_sweep(circuit, scenarios, 1e9, 1);
    for workers in [1usize, 2, 4] {
        let sweep = ScenarioRunner::new(circuit.clone(), 1e9)
            .with_workers(workers)
            .run(scenarios);
        for (slot, outcome) in reference.iter().zip(sweep.outcomes()) {
            let reference_run = slot.as_ref().unwrap();
            let pool_run = outcome.result().as_ref().unwrap();
            assert_eq!(
                reference_run.signal("y").unwrap(),
                pool_run.signal("y").unwrap(),
                "pool (workers={workers}) diverges from spawn reference on {}",
                outcome.label()
            );
        }
    }
    println!(
        "bit-identity verified: heap == wheel == auto on all workloads, pool == spawn at 1/2/4 workers"
    );
}

// ======================================================================
// The `service` tier: faithful-serve cold vs hot cache throughput
// ======================================================================

/// One spec of the service batch: a seeded (hence cacheable) sweep.
/// The document is deliberately *short* (12 pulses) but the simulation
/// *heavy* (a 128-stage chain), so a cold submission is dominated by
/// event processing while a hot replay pays only parse + hash + frame
/// I/O — the asymmetry the cache exists to exploit.
fn service_spec(k: u64) -> String {
    ExperimentSpec::digital(
        DigitalSpec::new(
            TopologySpec::InverterChain {
                stages: 128,
                channel: ChannelSpec::eta_exp(
                    1.0,
                    0.5,
                    0.5,
                    0.02,
                    0.02,
                    NoiseSpec::Uniform { seed: 0 },
                ),
            },
            2000.0,
        )
        .with_scenario(ScenarioSpec::new(format!("k{k}")).with_seed(k).with_input(
            "a",
            SignalSpec::train((0..12).map(|i| (f64::from(i) * 75.0, 15.0))),
        )),
    )
    .to_string()
}

/// Runs the experiment-service tier: an in-process `faithful-serve`
/// pool fed one batch of distinct specs over 4 pipelined connections,
/// cold (every spec computed) then hot (pure cache replay). Returns the
/// recorded `(metric, value)` pairs; under `IVL_BENCH_CHECK` asserts
/// the hot batch sustains >= 10x the cold specs/sec.
fn service_tier(test_mode: bool) -> Vec<(String, f64)> {
    let batch = if test_mode { 256 } else { 1000 };
    let specs: Vec<String> = (0..batch).map(service_spec).collect();
    let server = Server::bind(ServeConfig::default()).expect("bind service bench server");
    let addr = server.local_addr().expect("service bench addr").to_string();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run());
    let options = BatchOptions {
        connections: 4,
        pipeline: 32,
    };
    let cold = run_batch(&addr, &specs, &options).expect("cold service batch");
    assert!(cold.errors.is_empty(), "{:?}", cold.errors);
    assert_eq!(cold.ok, specs.len());
    assert_eq!(cold.cached, 0, "distinct cold specs cannot hit the cache");
    let hot = run_batch(&addr, &specs, &options).expect("hot service batch");
    assert_eq!(
        hot.cached,
        specs.len(),
        "the hot batch must be pure cache replay"
    );
    handle.shutdown();
    let summary = join.join().expect("service bench server");
    assert_eq!(summary.jobs, specs.len() as u64);

    let ratio = hot.specs_per_sec() / cold.specs_per_sec().max(1e-12);
    println!(
        "service tier ({batch} specs): cold {:.0} specs/sec (p50 {:.2}ms, p99 {:.2}ms), \
         hot {:.0} specs/sec (p50 {:.2}ms, p99 {:.2}ms), {ratio:.1}x",
        cold.specs_per_sec(),
        cold.latency_ms(0.5).unwrap_or(0.0),
        cold.latency_ms(0.99).unwrap_or(0.0),
        hot.specs_per_sec(),
        hot.latency_ms(0.5).unwrap_or(0.0),
        hot.latency_ms(0.99).unwrap_or(0.0),
    );
    if std::env::var_os("IVL_BENCH_CHECK").is_some() {
        assert!(
            ratio >= 10.0,
            "regression gate: hot-cache service throughput only {ratio:.1}x cold \
             (hot {:.0} vs cold {:.0} specs/sec)",
            hot.specs_per_sec(),
            cold.specs_per_sec()
        );
        println!("IVL_BENCH_CHECK passed: service hot vs cold = {ratio:.1}x");
    }
    vec![
        ("cold_specs_per_sec".to_owned(), cold.specs_per_sec()),
        ("hot_specs_per_sec".to_owned(), hot.specs_per_sec()),
        ("hot_vs_cold".to_owned(), ratio),
        (
            "cold_p50_ms".to_owned(),
            cold.latency_ms(0.5).unwrap_or(0.0),
        ),
        (
            "cold_p99_ms".to_owned(),
            cold.latency_ms(0.99).unwrap_or(0.0),
        ),
        ("hot_p50_ms".to_owned(), hot.latency_ms(0.5).unwrap_or(0.0)),
        ("hot_p99_ms".to_owned(), hot.latency_ms(0.99).unwrap_or(0.0)),
    ]
}

// ======================================================================
// The `scale` tier: chain_100k / grid_1M with peak-RSS accounting
// ======================================================================

/// The process peak resident set (`VmHWM` from `/proc/self/status`), in
/// bytes. `None` off Linux or if the field is missing.
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// Resets the kernel's peak-RSS watermark so each scale workload reads
/// its *own* high-water mark instead of whatever an earlier bench
/// peaked at. Best-effort: on kernels without `clear_refs` support the
/// recorded peak is a process-lifetime bound, which only over-reports.
fn reset_peak_rss() {
    let _ = std::fs::write("/proc/self/clear_refs", "5");
}

/// One measured scale workload.
struct ScaleResult {
    name: &'static str,
    gates: u64,
    build_secs: f64,
    run_secs: f64,
    peak_rss_bytes: u64,
    processed_events: usize,
}

impl ScaleResult {
    #[allow(clippy::cast_precision_loss)]
    fn rss_per_gate(&self) -> f64 {
        self.peak_rss_bytes as f64 / self.gates as f64
    }
}

/// Builds, watches and runs one scale workload, recording wall time for
/// construction and simulation plus the peak RSS across both. Only the
/// output port is watched — the whole point of the tier is that working
/// memory tracks the watch set, not the netlist.
fn run_scale_workload(
    name: &'static str,
    gates: u64,
    input: &Signal,
    build: impl FnOnce() -> Circuit,
) -> ScaleResult {
    reset_peak_rss();
    let t0 = Instant::now();
    let circuit = build();
    let build_secs = t0.elapsed().as_secs_f64();
    let mut sim = Simulator::new(circuit);
    sim.set_watch(["y"]).unwrap();
    sim.set_input("a", input.clone()).unwrap();
    let t0 = Instant::now();
    let run = sim.run(1e9).unwrap();
    let run_secs = t0.elapsed().as_secs_f64();
    assert!(
        run.processed_events() as u64 >= gates,
        "{name}: the workload must exercise every gate at least once \
         ({} events over {gates} gates)",
        run.processed_events()
    );
    assert!(run.signal("y").is_ok(), "{name}: watched output missing");
    let result = ScaleResult {
        name,
        gates,
        build_secs,
        run_secs,
        peak_rss_bytes: peak_rss_bytes().unwrap_or(0),
        processed_events: run.processed_events(),
    };
    println!(
        "scale tier {name}: {gates} gates, build {:.2}s, run {:.2}s, \
         {} events, peak RSS {:.1} MiB ({:.0} B/gate)",
        result.build_secs,
        result.run_secs,
        result.processed_events,
        result.peak_rss_bytes as f64 / (1024.0 * 1024.0),
        result.rss_per_gate(),
    );
    result
}

/// The `scale` tier: a 100k-gate involution chain always (CI smoke
/// included — it is the per-PR peak-RSS sentinel), and a million-gate
/// 2-D grid behind `IVL_BENCH_FULL=1` (it costs several seconds and a
/// few hundred MB, which is full-run territory, not smoke).
fn scale_tier() -> Vec<ScaleResult> {
    let mut out = Vec::new();

    let d = ExpChannel::new(1.0, 0.5, 0.5).unwrap();
    let chain_input = Signal::pulse_train((0..5).map(|i| (f64::from(i) * 40.0, 20.0))).unwrap();
    out.push(run_scale_workload(
        "chain_100k",
        100_000,
        &chain_input,
        || {
            ivl_circuit::generate::inverter_chain(100_000, || {
                Box::new(InvolutionChannel::new(d.clone()))
            })
            .unwrap()
        },
    ));

    if std::env::var_os("IVL_BENCH_FULL").is_some() {
        let grid_input = Signal::pulse_train([(0.0, 500.0), (2000.0, 500.0)]).unwrap();
        out.push(run_scale_workload(
            "grid_1M",
            1_000_000,
            &grid_input,
            || {
                ivl_circuit::generate::grid(1000, 1000, || Box::new(PureDelay::new(0.9).unwrap()))
                    .unwrap()
            },
        ));
    } else {
        println!("scale tier: grid_1M skipped (set IVL_BENCH_FULL=1 to run it)");
    }
    out
}

/// Extracts `"rss_per_gate"` for one scale workload from a previously
/// committed `BENCH_digital.json`, without a JSON parser: finds the
/// workload's key and reads the first `rss_per_gate` number after it.
fn prior_rss_per_gate(baseline: &str, name: &str) -> Option<f64> {
    let start = baseline.find(&format!("\"{name}\""))?;
    let rest = &baseline[start..];
    let key = "\"rss_per_gate\":";
    let tail = rest[rest.find(key)? + key.len()..].trim_start();
    let end = tail.find([',', '\n', '}'])?;
    tail[..end].trim().parse().ok()
}

/// A spec-driven digital sweep through the `Experiment` facade — the
/// facade dispatches to the same `ScenarioRunner`, so it inherits the
/// calendar queue and the worker pool for free; this entry pins that.
fn facade_sweep() -> DigitalSpec {
    DigitalSpec {
        topology: TopologySpec::InverterChain {
            stages: 128,
            channel: ChannelSpec::involution_exp(1.0, 0.5, 0.5),
        },
        scenarios: (0..32u64)
            .map(|k| ScenarioSpec {
                label: format!("f{k}"),
                seed: Some(k),
                inputs: vec![(
                    "a".to_owned(),
                    SignalSpec::pulse(0.0, 20.0 + k as f64 * 0.25),
                )],
            })
            .collect(),
        horizon: 1e9,
        workers: Some(4),
        max_events: None,
        on_failure: FailurePolicySpec::default(),
        outputs: OutputSelect {
            signals: false,
            stats: true,
            vcd: false,
            watch: Vec::new(),
        },
    }
}

/// Emits the `BENCH_digital.json` perf baseline: heap vs calendar vs
/// auto queue on the three workloads, spawn vs pool at 1/2/4 workers,
/// the facade-driven sweep, and the `sweep_10k` scaling tier.
#[allow(clippy::too_many_lines)]
fn emit_baseline(test_mode: bool) {
    let iters = if test_mode { 1 } else { 5 };
    let workloads: Vec<(&str, Circuit, Signal)> = vec![
        ("chain_1k", pipeline_circuit(1024), chain_input()),
        ("fanout_grid", fanout_grid_circuit(64, 16), grid_input()),
        (
            "cancel_heavy_inertial",
            cancel_heavy_circuit(4096),
            cancel_heavy_input(),
        ),
    ];
    let sweep_circuit = pipeline_circuit(128);
    let scenarios = sweep_scenarios(64);
    verify_bit_identity(&workloads, &sweep_circuit, &scenarios);

    let mut entries: Vec<(String, f64)> = Vec::new();
    let mut queue_speedups: Vec<(String, f64)> = Vec::new();
    let mut auto_speedups: Vec<(String, f64)> = Vec::new();
    for (name, circuit, input) in &workloads {
        let mut sims = [
            warmed_sim(circuit, input, QueueBackend::Heap),
            warmed_sim(circuit, input, QueueBackend::Calendar),
            warmed_sim(circuit, input, QueueBackend::Auto),
        ];
        let mut secs = interleaved_best_secs(&mut sims, iters);
        // The recorded auto-vs-heap ratio feeds the >= 0.95 acceptance
        // gate; while it looks marginal, re-measure and keep per-backend
        // minima so the JSON records the converged ratio rather than one
        // noisy attempt. A true regression (the prober committing the
        // wheel where it loses ~20%) sits near 0.8 and stays there no
        // matter how often it is re-measured.
        for _ in 0..2 {
            if test_mode || secs[0] / secs[2].max(1e-12) >= 0.95 {
                break;
            }
            let again = interleaved_best_secs(&mut sims, iters);
            for (s, a) in secs.iter_mut().zip(again) {
                *s = s.min(a);
            }
        }
        for (slot, tag) in [(0usize, "heap"), (1, "wheel"), (2, "auto")] {
            entries.push((format!("{name}_{tag}"), secs[slot]));
        }
        queue_speedups.push(((*name).to_owned(), secs[0] / secs[1].max(1e-12)));
        auto_speedups.push(((*name).to_owned(), secs[0] / secs[2].max(1e-12)));
    }

    // (entry, failed, retried) per sweep workload: clean benchmark runs
    // must report zero failures, and the recorded counts let a baseline
    // diff spot a sweep that silently started skipping scenarios
    let mut sweep_health: Vec<(String, usize, u64)> = Vec::new();
    let mut pool_speedups: Vec<(usize, f64)> = Vec::new();
    for workers in [1usize, 2, 4] {
        let spawn_t = median_secs(iters, || {
            spawn_per_sweep(&sweep_circuit, &scenarios, 1e9, workers);
        });
        entries.push((format!("spawn_sweep_{workers}w"), spawn_t));
        let runner = ScenarioRunner::new(sweep_circuit.clone(), 1e9).with_workers(workers);
        let _ = runner.run(&scenarios); // spawn + warm the pool
        let pool_t = median_secs(iters, || {
            let sweep: SweepResult = runner.run(&scenarios);
            assert_eq!(sweep.stats().failures, 0);
        });
        entries.push((format!("pool_sweep_{workers}w"), pool_t));
        pool_speedups.push((workers, spawn_t / pool_t.max(1e-12)));
        let stats = runner.run(&scenarios).stats().clone();
        sweep_health.push((
            format!("pool_sweep_{workers}w"),
            stats.failures,
            stats.retried,
        ));
    }

    // sweep_10k: the scaling tier. 10k cheap scenarios at 1/2/4/8
    // workers — large enough that per-scenario setup cost or a
    // per-worker netlist clone would dominate the wall time, small
    // enough per scenario that the pool's chunked cursor matters.
    let sweep10k_circuit = pipeline_circuit(64);
    let sweep10k = sweep10k_scenarios(10_000);
    let sweep10k_iters = if test_mode { 1 } else { 3 };
    let mut sweep10k_times: Vec<(usize, f64)> = Vec::new();
    for workers in [1usize, 2, 4, 8] {
        let runner = ScenarioRunner::new(sweep10k_circuit.clone(), 1e9).with_workers(workers);
        let _ = runner.run(&sweep10k[..64.min(sweep10k.len())]); // spawn + warm the pool
        let t = median_secs(sweep10k_iters, || {
            let sweep: SweepResult = runner.run(&sweep10k);
            assert_eq!(sweep.stats().failures, 0);
        });
        entries.push((format!("sweep_10k_{workers}w"), t));
        sweep10k_times.push((workers, t));
        let stats = runner.run(&sweep10k).stats().clone();
        sweep_health.push((
            format!("sweep_10k_{workers}w"),
            stats.failures,
            stats.retried,
        ));
    }

    let spec = facade_sweep();
    let facade_t = median_secs(iters, || {
        let result = Experiment::digital(spec.clone()).run().unwrap();
        let stats = result.digital().unwrap().stats.as_ref().unwrap();
        assert_eq!(stats.failures, 0);
    });
    entries.push(("facade_sweep_4w".to_owned(), facade_t));
    let facade_result = Experiment::digital(spec.clone()).run().unwrap();
    let facade_digital = facade_result.digital().unwrap();
    // clean-run gate: the supervised facade path must report zero
    // failures and zero retries on a fault-free workload
    assert_eq!(
        facade_digital.failed, 0,
        "clean facade sweep reported failures"
    );
    assert_eq!(
        facade_digital.retried, 0,
        "clean facade sweep reported retries"
    );
    assert!(facade_digital.failures.is_empty());
    assert!(facade_digital.quarantine.is_empty());
    sweep_health.push((
        "facade_sweep_4w".to_owned(),
        facade_digital.failed,
        facade_digital.retried,
    ));
    for (name, failed, retried) in &sweep_health {
        assert_eq!(
            *failed, 0,
            "{name}: clean benchmark sweep reported failures"
        );
        assert_eq!(
            *retried, 0,
            "{name}: clean benchmark sweep reported retries"
        );
    }

    let service = service_tier(test_mode);
    let scale = scale_tier();

    let host_cpus = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"digital\",\n");
    json.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if test_mode { "test" } else { "full" }
    ));
    json.push_str(&format!("  \"host_cpus\": {host_cpus},\n"));
    json.push_str("  \"results\": {\n");
    for (i, (name, secs)) in entries.iter().enumerate() {
        let comma = if i + 1 < entries.len() { "," } else { "" };
        json.push_str(&format!("    \"{name}\": {secs:.9}{comma}\n"));
    }
    json.push_str("  },\n");
    json.push_str("  \"speedup_wheel_vs_heap\": {\n");
    for (i, (name, s)) in queue_speedups.iter().enumerate() {
        let comma = if i + 1 < queue_speedups.len() {
            ","
        } else {
            ""
        };
        json.push_str(&format!("    \"{name}\": {s:.2}{comma}\n"));
    }
    json.push_str("  },\n");
    json.push_str("  \"speedup_auto_vs_heap\": {\n");
    for (i, (name, s)) in auto_speedups.iter().enumerate() {
        let comma = if i + 1 < auto_speedups.len() { "," } else { "" };
        json.push_str(&format!("    \"{name}\": {s:.2}{comma}\n"));
    }
    json.push_str("  },\n");
    json.push_str("  \"speedup_pool_vs_spawn\": {\n");
    for (i, (workers, s)) in pool_speedups.iter().enumerate() {
        let comma = if i + 1 < pool_speedups.len() { "," } else { "" };
        json.push_str(&format!("    \"{workers}w\": {s:.2}{comma}\n"));
    }
    json.push_str("  },\n");
    json.push_str("  \"sweep_10k_scaling\": {\n");
    let base_10k = sweep10k_times[0].1;
    for (i, (workers, t)) in sweep10k_times.iter().enumerate() {
        let comma = if i + 1 < sweep10k_times.len() {
            ","
        } else {
            ""
        };
        let s = base_10k / t.max(1e-12);
        json.push_str(&format!("    \"{workers}w\": {s:.2}{comma}\n"));
    }
    json.push_str("  },\n");
    json.push_str("  \"service\": {\n");
    for (i, (name, v)) in service.iter().enumerate() {
        let comma = if i + 1 < service.len() { "," } else { "" };
        json.push_str(&format!("    \"{name}\": {v:.3}{comma}\n"));
    }
    json.push_str("  },\n");
    json.push_str("  \"scale\": {\n");
    for (i, r) in scale.iter().enumerate() {
        let comma = if i + 1 < scale.len() { "," } else { "" };
        json.push_str(&format!(
            "    \"{}\": {{ \"gates\": {}, \"build_secs\": {:.3}, \"run_secs\": {:.3}, \
             \"processed_events\": {}, \"peak_rss_bytes\": {}, \"rss_per_gate\": {:.1} }}{comma}\n",
            r.name,
            r.gates,
            r.build_secs,
            r.run_secs,
            r.processed_events,
            r.peak_rss_bytes,
            r.rss_per_gate(),
        ));
    }
    json.push_str("  },\n");
    json.push_str("  \"sweep_health\": {\n");
    for (i, (name, failed, retried)) in sweep_health.iter().enumerate() {
        let comma = if i + 1 < sweep_health.len() { "," } else { "" };
        json.push_str(&format!(
            "    \"{name}\": {{ \"failed\": {failed}, \"retried\": {retried} }}{comma}\n"
        ));
    }
    json.push_str("  }\n");
    json.push_str("}\n");

    let dir = std::env::var_os("BENCH_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| {
            std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                .ancestors()
                .nth(2)
                .expect("workspace root exists")
                .to_path_buf()
        });
    let path = dir.join("BENCH_digital.json");
    // the committed baseline feeds the peak-RSS regression gate, so it
    // must be read before this run's numbers replace it
    let prior_baseline = std::fs::read_to_string(&path).unwrap_or_default();
    std::fs::write(&path, json).expect("can write bench baseline");
    println!("baseline written to {}", path.display());
    for (name, s) in &queue_speedups {
        println!("speedup wheel vs heap, {name}: {s:.1}x");
    }
    for (name, s) in &auto_speedups {
        println!("speedup auto vs heap, {name}: {s:.1}x");
    }
    for (workers, s) in &pool_speedups {
        println!("speedup pool vs spawn, {workers}w: {s:.1}x");
    }
    for (workers, t) in &sweep10k_times {
        println!("sweep_10k {workers}w: {t:.3}s ({:.2}x vs 1w)", base_10k / t);
    }

    if std::env::var_os("IVL_BENCH_CHECK").is_some() {
        // Peak-RSS-per-gate gate: memory cost per gate must not creep
        // more than 10% past the committed baseline. Wall time on a
        // shared runner is noisy; the high-water mark of a fixed
        // workload is not, so this tolerance is tight on purpose.
        for r in &scale {
            let Some(prior) = prior_rss_per_gate(&prior_baseline, r.name) else {
                println!(
                    "IVL_BENCH_CHECK: no committed rss_per_gate for {}, skipped",
                    r.name
                );
                continue;
            };
            let now = r.rss_per_gate();
            assert!(
                now <= prior * 1.10,
                "regression gate: {} peak RSS per gate grew {:.0} -> {:.0} bytes (>10%)",
                r.name,
                prior,
                now
            );
            println!(
                "IVL_BENCH_CHECK passed: {} rss_per_gate {:.0} vs baseline {:.0}",
                r.name, now, prior
            );
        }
        bench_check(&workloads, &sweep10k_circuit, &sweep10k, host_cpus);
    }
}

/// Interleaved best-of-9 of heap vs challenger runs on a pair of
/// already-warmed simulators: alternating the backends within each
/// round means a scheduler hiccup on a shared CI runner hits both
/// sides, not one, and taking each side's *minimum* discards the
/// hiccups entirely — preemption only ever adds time, so the min is
/// the least-noisy estimate of true cost a shared runner can produce.
fn measure_speedup(sims: &mut [Simulator; 2]) -> f64 {
    // Size each timed sample to span >= 25 ms: a sub-millisecond run is
    // dominated by timer granularity and single preemption spikes, which
    // is exactly the noise a 2% gate threshold cannot tolerate.
    let t0 = Instant::now();
    sims[0].run(1e9).unwrap();
    let single = t0.elapsed().as_secs_f64();
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let reps = ((0.025 / single.max(1e-9)).ceil() as usize).clamp(1, 64);
    let mut best = [f64::INFINITY, f64::INFINITY];
    for _ in 0..9 {
        for (i, sim) in sims.iter_mut().enumerate() {
            let t0 = Instant::now();
            for _ in 0..reps {
                sim.run(1e9).unwrap();
            }
            best[i] = best[i].min(t0.elapsed().as_secs_f64());
        }
    }
    best[0] / best[1].max(1e-12)
}

/// Gate measurement with up to three attempts over the *same* warmed
/// simulators: a marginal ratio is re-measured and the best attempt
/// kept, so scheduler noise on a busy shared runner is absorbed. The
/// warmup happens exactly once — for the `Auto` challenger the warmup
/// is where the probe commits its backend, and re-measuring the same
/// committed simulator means a misprediction fails every attempt. (The
/// old version re-warmed per attempt, handing a mispredicting probe
/// three fresh chances to luck into the right backend — which is
/// exactly how the fanout_grid regression slid through this gate.)
fn gate_speedup_retrying(
    circuit: &Circuit,
    input: &Signal,
    challenger: QueueBackend,
    floor: f64,
) -> f64 {
    let mut sims = [
        warmed_sim(circuit, input, QueueBackend::Heap),
        warmed_sim(circuit, input, challenger),
    ];
    let mut best_ratio = 0.0f64;
    for _ in 0..3 {
        best_ratio = best_ratio.max(measure_speedup(&mut sims));
        if best_ratio >= floor {
            break;
        }
    }
    best_ratio
}

/// The `IVL_BENCH_CHECK` regression gates, run even in `--test` mode:
///
/// 1. wheel ≥ 0.95× heap on the 1k chain (the original gate; a real
///    queue regression shows up far below the 5% noise tolerance);
/// 2. `Auto` ≥ 0.95× heap on *every* benched topology — the adaptive
///    backend's whole contract is "never lose to the reference heap",
///    fanout_grid included. The floor sits at 0.95 because a real
///    misprediction (committing the wheel where it loses ~20%) reads
///    ~0.8× every attempt, while `Auto`'s honest per-op dispatch cost
///    plus 1-CPU scheduler noise is a 2–3% band — a 0.98 floor would
///    flake on noise without catching anything 0.95 misses;
/// 3. on hosts with ≥ 4 cores, the 4-worker `sweep_10k` must beat
///    1 worker (the pool-scaling smoke). Skipped below 4 cores: with
///    nothing to run on in parallel, a scaling assertion only measures
///    the scheduler.
fn bench_check(
    workloads: &[(&str, Circuit, Signal)],
    sweep10k_circuit: &Circuit,
    sweep10k: &[Scenario],
    host_cpus: usize,
) {
    let (name, circuit, input) = &workloads[0];
    assert_eq!(*name, "chain_1k");
    let speedup = gate_speedup_retrying(circuit, input, QueueBackend::Calendar, 0.95);
    assert!(
        speedup >= 0.95,
        "regression gate: calendar queue slower than heap on chain_1k ({speedup:.2}x)"
    );
    println!("IVL_BENCH_CHECK passed: wheel vs heap on chain_1k = {speedup:.2}x");

    for (name, circuit, input) in workloads {
        let auto = gate_speedup_retrying(circuit, input, QueueBackend::Auto, 0.95);
        assert!(
            auto >= 0.95,
            "regression gate: Auto backend loses to heap on {name} ({auto:.2}x)"
        );
        println!("IVL_BENCH_CHECK passed: auto vs heap on {name} = {auto:.2}x");
    }

    if host_cpus >= 4 {
        let time_at = |workers: usize| {
            let runner = ScenarioRunner::new(sweep10k_circuit.clone(), 1e9).with_workers(workers);
            let _ = runner.run(&sweep10k[..64.min(sweep10k.len())]); // spawn + warm
            let t0 = Instant::now();
            let sweep = runner.run(sweep10k);
            assert_eq!(sweep.stats().failures, 0);
            t0.elapsed().as_secs_f64()
        };
        let t1 = time_at(1);
        let t4 = time_at(4);
        assert!(
            t4 < t1,
            "scaling gate: sweep_10k at 4 workers ({t4:.3}s) does not beat 1 worker ({t1:.3}s)"
        );
        println!(
            "IVL_BENCH_CHECK passed: sweep_10k 4w beats 1w ({:.2}x)",
            t1 / t4
        );
    } else {
        println!("IVL_BENCH_CHECK: pool-scaling smoke skipped (host has {host_cpus} cpu)");
    }
}

fn main() {
    benches();
    // only rewrite the tracked baseline on full, unfiltered runs (or
    // CI's `--test` smoke); a name-filtered dev invocation should
    // neither pay for the baseline suite nor clobber its numbers. A
    // bare argument counts as a filter only when it does not directly
    // follow a `--option` (which may be consuming it as a value).
    let args: Vec<String> = std::env::args().skip(1).collect();
    let filtered = args.iter().enumerate().any(|(i, a)| {
        let follows_option = i > 0 && args[i - 1].starts_with("--");
        !a.is_empty() && !a.starts_with("--") && !follows_option
    });
    if !filtered {
        emit_baseline(args.iter().any(|a| a == "--test"));
    }
}
