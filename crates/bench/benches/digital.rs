//! Digital event-driven simulator cost: calendar queue vs reference
//! heap on the three canonical workloads (1k-gate chain, fanout grid,
//! cancel-heavy inertial churn), and the persistent scenario worker
//! pool vs the old spawn-per-sweep discipline at 1/2/4 workers.
//!
//! Besides the criterion groups, the harness emits a machine-readable
//! `BENCH_digital.json` baseline at the workspace root (override the
//! directory with `BENCH_DIR`) so the perf trajectory of the digital
//! pipeline is tracked across PRs. In `--test` mode (CI smoke) every
//! measurement runs exactly once. With `IVL_BENCH_CHECK=1` the harness
//! exits non-zero if the calendar queue is slower than the heap on the
//! 1k-chain case — the CI regression gate.
//!
//! Before timing anything the harness *verifies* that both queue
//! backends and both sweep disciplines produce bit-identical outputs on
//! the measured workloads — a speedup on wrong answers is worthless.

use std::time::Instant;

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use faithful::{
    ChannelSpec, DigitalSpec, Experiment, OutputSelect, ScenarioSpec, SignalSpec, TopologySpec,
};
use ivl_circuit::{
    Circuit, CircuitBuilder, GateKind, QueueBackend, Scenario, ScenarioRunner, SimResult,
    Simulator, SweepResult,
};
use ivl_core::channel::{InertialDelay, InvolutionChannel, PureDelay};
use ivl_core::delay::ExpChannel;
use ivl_core::{Bit, Signal};

// ======================================================================
// Workloads
// ======================================================================

fn pipeline_circuit(stages: usize) -> Circuit {
    let d = ExpChannel::new(1.0, 0.5, 0.5).unwrap();
    let mut b = CircuitBuilder::new();
    let a = b.input("a");
    let y = b.output("y");
    let mut prev = a;
    for i in 0..stages {
        let g = b.gate(
            &format!("inv{i}"),
            GateKind::Not,
            if i % 2 == 0 { Bit::One } else { Bit::Zero },
        );
        if i == 0 {
            b.connect_direct(prev, g, 0).unwrap();
        } else {
            b.connect(prev, g, 0, InvolutionChannel::new(d.clone()))
                .unwrap();
        }
        prev = g;
    }
    b.connect(prev, y, 0, InvolutionChannel::new(d)).unwrap();
    b.build().unwrap()
}

fn chain_input() -> Signal {
    Signal::pulse_train((0..20).map(|i| (f64::from(i) * 40.0, 20.0))).unwrap()
}

fn fanout_grid_circuit(width: usize, depth: usize) -> Circuit {
    let mut b = CircuitBuilder::new();
    let a = b.input("a");
    let root = b.gate("root", GateKind::Buf, Bit::Zero);
    b.connect_direct(a, root, 0).unwrap();
    for w in 0..width {
        let mut prev = root;
        for d in 0..depth {
            let g = b.gate(&format!("b{w}_{d}"), GateKind::Buf, Bit::Zero);
            b.connect(prev, g, 0, PureDelay::new(0.1 + w as f64 * 1e-3).unwrap())
                .unwrap();
            prev = g;
        }
        let y = b.output(&format!("y{w}"));
        b.connect(prev, y, 0, PureDelay::new(0.1).unwrap()).unwrap();
    }
    b.build().unwrap()
}

fn grid_input() -> Signal {
    Signal::pulse_train((0..10).map(|i| (f64::from(i) * 10.0, 5.0))).unwrap()
}

/// Cancel-heavy inertial workload with a *large resident event
/// population*: one root gate fans out to `width` parallel inertial
/// buffers whose transport delays put pending events far in the future.
/// Two thirds of the input pulses are narrower than the rejection
/// window, so most scheduled events are cancelled before delivery —
/// the queue discipline (eager discard, O(1) push) dominates run time.
fn cancel_heavy_circuit(width: usize) -> Circuit {
    let mut b = CircuitBuilder::new();
    let a = b.input("a");
    let root = b.gate("root", GateKind::Buf, Bit::Zero);
    b.connect_direct(a, root, 0).unwrap();
    for w in 0..width {
        let g = b.gate(&format!("buf{w}"), GateKind::Buf, Bit::Zero);
        // long transport delays (spread per edge, as process variation
        // would) keep tens of thousands of cancelled events resident:
        // the lazy heap carries them all as stale keys, the calendar
        // queue discards them eagerly from their buckets
        b.connect(
            root,
            g,
            0,
            InertialDelay::new(120.0 + w as f64 * 0.1, 7.0).unwrap(),
        )
        .unwrap();
        let y = b.output(&format!("y{w}"));
        b.connect(g, y, 0, PureDelay::new(0.5).unwrap()).unwrap();
    }
    b.build().unwrap()
}

fn cancel_heavy_input() -> Signal {
    // width 6 (rejected by the 7-wide window) for fifteen pulses out of
    // sixteen, width 9 (passes) for the sixteenth: ~15/16 of scheduled
    // events cancel, the rest flow through to the outputs
    Signal::pulse_train((0..64).map(|i| {
        let t = f64::from(i) * 16.0;
        if i % 16 == 15 {
            (t, 9.0)
        } else {
            (t, 6.0)
        }
    }))
    .unwrap()
}

fn run_once(circuit: &Circuit, input: &Signal, backend: QueueBackend) -> SimResult {
    let mut sim = Simulator::new(circuit.clone()).with_queue_backend(backend);
    sim.set_input("a", input.clone()).unwrap();
    sim.run(1e9).unwrap()
}

// ======================================================================
// Sweep disciplines: persistent pool vs spawn-per-sweep
// ======================================================================

/// The input signal scenario `k` assigns to port "a" — shared by the
/// pool scenarios and the spawn reference so both disciplines always
/// simulate identical workloads.
fn scenario_signal(k: u64) -> Signal {
    Signal::pulse_train((0..10).map(|i| (f64::from(i) * 40.0, 15.0 + k as f64 * 0.1))).unwrap()
}

fn sweep_scenarios(n: usize) -> Vec<Scenario> {
    (0..n as u64)
        .map(|k| {
            Scenario::new(format!("s{k}"))
                .with_input("a", scenario_signal(k))
                .with_seed(k)
        })
        .collect()
}

/// The pre-pool discipline, reconstructed on the public API: spawn
/// fresh threads per sweep, statically assign scenario `i` to worker
/// `i % workers`, fresh circuit clones every time.
fn spawn_per_sweep(
    circuit: &Circuit,
    scenarios: &[Scenario],
    horizon: f64,
    workers: usize,
) -> Vec<Option<SimResult>> {
    let n = scenarios.len();
    let mut slots: Vec<Option<SimResult>> = Vec::new();
    slots.resize_with(n, || None);
    let sims: Vec<Simulator> = (0..workers.min(n))
        .map(|_| Simulator::new(circuit.clone()))
        .collect();
    let workers = sims.len();
    std::thread::scope(|scope| {
        let handles: Vec<_> = sims
            .into_iter()
            .enumerate()
            .map(|(w, mut sim)| {
                scope.spawn(move || {
                    let mut out = Vec::new();
                    let mut idx = w;
                    while idx < n {
                        let sc = &scenarios[idx];
                        sim.reset_inputs();
                        if let Some(seed) = sc.seed() {
                            sim.reseed_noise(seed);
                        }
                        // scenarios here assign only port "a"
                        // (Scenario does not expose its inputs; the
                        // shared constructor keeps both sides equal)
                        sim.set_input("a", scenario_signal(idx as u64)).unwrap();
                        out.push((idx, sim.run(horizon).unwrap()));
                        idx += workers;
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            for (idx, res) in h.join().expect("spawn worker panicked") {
                slots[idx] = Some(res);
            }
        }
    });
    slots
}

// ======================================================================
// Criterion groups
// ======================================================================

fn bench_queue_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    group.sample_size(10);
    let workloads: Vec<(&str, Circuit, Signal)> = vec![
        ("chain_1k", pipeline_circuit(1024), chain_input()),
        ("fanout_grid", fanout_grid_circuit(64, 16), grid_input()),
        (
            "cancel_heavy_inertial",
            cancel_heavy_circuit(4096),
            cancel_heavy_input(),
        ),
    ];
    for (name, circuit, input) in &workloads {
        let probe = run_once(circuit, input, QueueBackend::Heap);
        group.throughput(Throughput::Elements(probe.scheduled_events() as u64));
        for (backend, tag) in [
            (QueueBackend::Heap, "heap"),
            (QueueBackend::Calendar, "wheel"),
        ] {
            let mut sim = Simulator::new(circuit.clone()).with_queue_backend(backend);
            sim.set_input("a", input.clone()).unwrap();
            sim.run(1e9).unwrap(); // warm the pool/recorders
            group.bench_function(BenchmarkId::new(*name, tag), |b| {
                b.iter(|| sim.run(1e9).unwrap());
            });
        }
    }
    group.finish();
}

fn bench_scenario_pool(c: &mut Criterion) {
    let mut group = c.benchmark_group("scenario_pool");
    group.sample_size(10);
    let circuit = pipeline_circuit(128);
    let scenarios = sweep_scenarios(64);
    group.throughput(Throughput::Elements(scenarios.len() as u64));
    for workers in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("spawn", workers), &workers, |b, &w| {
            b.iter(|| spawn_per_sweep(&circuit, &scenarios, 1e9, w));
        });
        let runner = ScenarioRunner::new(circuit.clone(), 1e9).with_workers(workers);
        let _ = runner.run(&scenarios); // spawn + warm the pool
        group.bench_with_input(BenchmarkId::new("pool", workers), &workers, |b, _| {
            b.iter(|| {
                let sweep = runner.run(&scenarios);
                assert_eq!(sweep.stats().failures, 0);
                sweep
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_queue_backends, bench_scenario_pool);

// ======================================================================
// BENCH_digital.json baseline
// ======================================================================

/// Median wall-clock seconds of `iters` runs of `f` (one run in
/// `--test` mode).
fn median_secs<F: FnMut()>(iters: usize, mut f: F) -> f64 {
    let mut samples: Vec<f64> = (0..iters)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

/// Bit-identity gate: both backends must agree on every workload, and
/// the pool must agree with the spawn reference for every worker count,
/// before any number is recorded.
fn verify_bit_identity(
    workloads: &[(&str, Circuit, Signal)],
    circuit: &Circuit,
    scenarios: &[Scenario],
) {
    for (name, wl_circuit, input) in workloads {
        let heap = run_once(wl_circuit, input, QueueBackend::Heap);
        let calendar = run_once(wl_circuit, input, QueueBackend::Calendar);
        assert_eq!(
            heap.processed_events(),
            calendar.processed_events(),
            "{name}: processed-event mismatch"
        );
        for node in wl_circuit.node_names() {
            assert_eq!(
                heap.signal(node).unwrap(),
                calendar.signal(node).unwrap(),
                "{name}: node {node} diverges between queue backends"
            );
        }
    }
    let reference = spawn_per_sweep(circuit, scenarios, 1e9, 1);
    for workers in [1usize, 2, 4] {
        let sweep = ScenarioRunner::new(circuit.clone(), 1e9)
            .with_workers(workers)
            .run(scenarios);
        for (slot, outcome) in reference.iter().zip(sweep.outcomes()) {
            let reference_run = slot.as_ref().unwrap();
            let pool_run = outcome.result().as_ref().unwrap();
            assert_eq!(
                reference_run.signal("y").unwrap(),
                pool_run.signal("y").unwrap(),
                "pool (workers={workers}) diverges from spawn reference on {}",
                outcome.label()
            );
        }
    }
    println!(
        "bit-identity verified: heap == wheel on all workloads, pool == spawn at 1/2/4 workers"
    );
}

/// A spec-driven digital sweep through the `Experiment` facade — the
/// facade dispatches to the same `ScenarioRunner`, so it inherits the
/// calendar queue and the worker pool for free; this entry pins that.
fn facade_sweep() -> DigitalSpec {
    DigitalSpec {
        topology: TopologySpec::InverterChain {
            stages: 128,
            channel: ChannelSpec::involution_exp(1.0, 0.5, 0.5),
        },
        scenarios: (0..32u64)
            .map(|k| ScenarioSpec {
                label: format!("f{k}"),
                seed: Some(k),
                inputs: vec![(
                    "a".to_owned(),
                    SignalSpec::pulse(0.0, 20.0 + k as f64 * 0.25),
                )],
            })
            .collect(),
        horizon: 1e9,
        workers: Some(4),
        max_events: None,
        outputs: OutputSelect {
            signals: false,
            stats: true,
            vcd: false,
        },
    }
}

/// Emits the `BENCH_digital.json` perf baseline: heap vs calendar queue
/// on the three workloads, spawn vs pool at 1/2/4 workers, and the
/// facade-driven sweep.
#[allow(clippy::too_many_lines)]
fn emit_baseline(test_mode: bool) {
    let iters = if test_mode { 1 } else { 5 };
    let workloads: Vec<(&str, Circuit, Signal)> = vec![
        ("chain_1k", pipeline_circuit(1024), chain_input()),
        ("fanout_grid", fanout_grid_circuit(64, 16), grid_input()),
        (
            "cancel_heavy_inertial",
            cancel_heavy_circuit(4096),
            cancel_heavy_input(),
        ),
    ];
    let sweep_circuit = pipeline_circuit(128);
    let scenarios = sweep_scenarios(64);
    verify_bit_identity(&workloads, &sweep_circuit, &scenarios);

    let mut entries: Vec<(String, f64)> = Vec::new();
    let mut queue_speedups: Vec<(String, f64)> = Vec::new();
    for (name, circuit, input) in &workloads {
        let mut secs = [0.0f64; 2];
        for (slot, backend, tag) in [
            (0usize, QueueBackend::Heap, "heap"),
            (1, QueueBackend::Calendar, "wheel"),
        ] {
            let mut sim = Simulator::new(circuit.clone()).with_queue_backend(backend);
            sim.set_input("a", input.clone()).unwrap();
            sim.run(1e9).unwrap(); // warm
            let t = median_secs(iters, || {
                sim.run(1e9).unwrap();
            });
            entries.push((format!("{name}_{tag}"), t));
            secs[slot] = t;
        }
        queue_speedups.push(((*name).to_owned(), secs[0] / secs[1].max(1e-12)));
    }

    let mut pool_speedups: Vec<(usize, f64)> = Vec::new();
    for workers in [1usize, 2, 4] {
        let spawn_t = median_secs(iters, || {
            spawn_per_sweep(&sweep_circuit, &scenarios, 1e9, workers);
        });
        entries.push((format!("spawn_sweep_{workers}w"), spawn_t));
        let runner = ScenarioRunner::new(sweep_circuit.clone(), 1e9).with_workers(workers);
        let _ = runner.run(&scenarios); // spawn + warm the pool
        let pool_t = median_secs(iters, || {
            let sweep: SweepResult = runner.run(&scenarios);
            assert_eq!(sweep.stats().failures, 0);
        });
        entries.push((format!("pool_sweep_{workers}w"), pool_t));
        pool_speedups.push((workers, spawn_t / pool_t.max(1e-12)));
    }

    let spec = facade_sweep();
    let facade_t = median_secs(iters, || {
        let result = Experiment::digital(spec.clone()).run().unwrap();
        let stats = result.digital().unwrap().stats.as_ref().unwrap();
        assert_eq!(stats.failures, 0);
    });
    entries.push(("facade_sweep_4w".to_owned(), facade_t));

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"digital\",\n");
    json.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if test_mode { "test" } else { "full" }
    ));
    json.push_str("  \"results\": {\n");
    for (i, (name, secs)) in entries.iter().enumerate() {
        let comma = if i + 1 < entries.len() { "," } else { "" };
        json.push_str(&format!("    \"{name}\": {secs:.9}{comma}\n"));
    }
    json.push_str("  },\n");
    json.push_str("  \"speedup_wheel_vs_heap\": {\n");
    for (i, (name, s)) in queue_speedups.iter().enumerate() {
        let comma = if i + 1 < queue_speedups.len() {
            ","
        } else {
            ""
        };
        json.push_str(&format!("    \"{name}\": {s:.2}{comma}\n"));
    }
    json.push_str("  },\n");
    json.push_str("  \"speedup_pool_vs_spawn\": {\n");
    for (i, (workers, s)) in pool_speedups.iter().enumerate() {
        let comma = if i + 1 < pool_speedups.len() { "," } else { "" };
        json.push_str(&format!("    \"{workers}w\": {s:.2}{comma}\n"));
    }
    json.push_str("  }\n");
    json.push_str("}\n");

    let dir = std::env::var_os("BENCH_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| {
            std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                .ancestors()
                .nth(2)
                .expect("workspace root exists")
                .to_path_buf()
        });
    let path = dir.join("BENCH_digital.json");
    std::fs::write(&path, json).expect("can write bench baseline");
    println!("baseline written to {}", path.display());
    for (name, s) in &queue_speedups {
        println!("speedup wheel vs heap, {name}: {s:.1}x");
    }
    for (workers, s) in &pool_speedups {
        println!("speedup pool vs spawn, {workers}w: {s:.1}x");
    }

    if std::env::var_os("IVL_BENCH_CHECK").is_some() {
        // dedicated gate measurement: interleaved medians of 7 (even in
        // --test mode) so one scheduler hiccup on a shared CI runner
        // cannot produce a phantom regression, and a 5% noise tolerance
        // on top — a real queue regression shows up far below 0.95
        let (name, circuit, input) = &workloads[0];
        assert_eq!(*name, "chain_1k");
        let mut sims: Vec<Simulator> = [QueueBackend::Heap, QueueBackend::Calendar]
            .into_iter()
            .map(|backend| {
                let mut sim = Simulator::new(circuit.clone()).with_queue_backend(backend);
                sim.set_input("a", input.clone()).unwrap();
                sim.run(1e9).unwrap(); // warm
                sim
            })
            .collect();
        let mut samples = [Vec::new(), Vec::new()];
        for _ in 0..7 {
            for (i, sim) in sims.iter_mut().enumerate() {
                let t0 = Instant::now();
                sim.run(1e9).unwrap();
                samples[i].push(t0.elapsed().as_secs_f64());
            }
        }
        for s in &mut samples {
            s.sort_by(|a, b| a.total_cmp(b));
        }
        let speedup = samples[0][3] / samples[1][3].max(1e-12);
        assert!(
            speedup >= 0.95,
            "regression gate: calendar queue slower than heap on chain_1k ({speedup:.2}x)"
        );
        println!("IVL_BENCH_CHECK passed: wheel vs heap on chain_1k = {speedup:.2}x");
    }
}

fn main() {
    benches();
    // only rewrite the tracked baseline on full, unfiltered runs (or
    // CI's `--test` smoke); a name-filtered dev invocation should
    // neither pay for the baseline suite nor clobber its numbers. A
    // bare argument counts as a filter only when it does not directly
    // follow a `--option` (which may be consuming it as a value).
    let args: Vec<String> = std::env::args().skip(1).collect();
    let filtered = args.iter().enumerate().any(|(i, a)| {
        let follows_option = i > 0 && args[i - 1].starts_with("--");
        !a.is_empty() && !a.starts_with("--") && !follows_option
    });
    if !filtered {
        emit_baseline(args.iter().any(|a| a == "--test"));
    }
}
