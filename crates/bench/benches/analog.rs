//! Analog substrate cost: fixed-step RK4 vs adaptive RK45 chain
//! integration, characterization sweeps, and the parallel sweep runner.
//!
//! Besides the criterion groups, the harness emits a machine-readable
//! `BENCH_analog.json` baseline at the workspace root (override the
//! directory with `BENCH_DIR`) so the perf trajectory of the analog
//! pipeline is tracked across PRs. The parallel tier sweeps a 64-width
//! grid at 1/2/4/8 workers — the old default-sized sweep finished in
//! ~2.4 ms and measured thread-spawn overhead, which is how 4 workers
//! came out *slower* than 1 in earlier baselines. The recorded
//! `host_cpus` says how many cores the numbers were taken on. In
//! `--test` mode (CI smoke) every measurement runs exactly once.

use std::time::Instant;

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use ivl_analog::chain::InverterChain;
#[allow(deprecated)] // the serial compat wrapper stays benchmarked as the baseline
use ivl_analog::characterize::sweep_samples;
use ivl_analog::characterize::{Integrator, SweepConfig};
use ivl_analog::ode::Rk45Options;
use ivl_analog::stimulus::Pulse;
use ivl_analog::supply::VddSource;
use ivl_analog::SweepRunner;

fn bench_chain_transient(c: &mut Criterion) {
    let mut group = c.benchmark_group("chain_transient");
    group.sample_size(20);
    let stim = Pulse::new(60.0, 80.0, 10.0, 1.0).unwrap();
    let vdd = VddSource::dc(1.0);
    for &stages in &[3usize, 7, 15] {
        let chain = InverterChain::umc90_like(stages).unwrap();
        let steps = (400.0 / 0.1) as u64 * stages as u64;
        group.throughput(Throughput::Elements(steps));
        group.bench_with_input(BenchmarkId::from_parameter(stages), &chain, |b, ch| {
            b.iter(|| ch.simulate(&stim, &vdd, 400.0, 0.1).unwrap());
        });
    }
    group.finish();
}

fn bench_integrators(c: &mut Criterion) {
    let mut group = c.benchmark_group("chain_simulate");
    group.sample_size(20);
    let stim = Pulse::new(60.0, 80.0, 10.0, 1.0).unwrap();
    let vdd = VddSource::dc(1.0);
    let chain = InverterChain::umc90_like(7).unwrap();
    let opts = Rk45Options::default();
    group.bench_function("rk4_7stage", |b| {
        b.iter(|| chain.simulate(&stim, &vdd, 400.0, 0.05).unwrap());
    });
    group.bench_function("rk45_dense_7stage", |b| {
        b.iter(|| {
            chain
                .simulate_adaptive(&stim, &vdd, 400.0, 0.05, &opts)
                .unwrap()
        });
    });
    group.bench_function("rk45_crossings_7stage", |b| {
        b.iter(|| {
            chain
                .simulate_crossings(&stim, &vdd, 400.0, 0.5, &opts)
                .unwrap()
        });
    });
    group.finish();
}

fn characterize_config(integrator: Integrator) -> SweepConfig {
    SweepConfig {
        widths: (0..8).map(|i| 20.0 + 12.0 * i as f64).collect(),
        integrator,
        ..SweepConfig::default()
    }
}

fn bench_characterization(c: &mut Criterion) {
    let mut group = c.benchmark_group("characterization");
    group.sample_size(10);
    let chain = InverterChain::umc90_like(7).unwrap();
    let vdd = VddSource::dc(1.0);
    let cfg = SweepConfig {
        widths: vec![40.0, 70.0, 100.0],
        ..SweepConfig::default()
    };
    group.bench_function("three_point_sweep", |b| {
        #[allow(deprecated)] // serial baseline for the parallel runner numbers
        b.iter(|| sweep_samples(&chain, &vdd, &cfg, false).unwrap());
    });
    let full = characterize_config(Integrator::default());
    group.bench_function("characterize_7stage", |b| {
        b.iter(|| {
            SweepRunner::new()
                .with_workers(1)
                .characterize(&chain, &vdd, &full)
                .unwrap()
        });
    });
    group.finish();
}

/// The parallel tier's workload: a 64-width grid (~8× the default
/// characterization grid), big enough that integration work — not
/// thread spawn — dominates the wall time at every worker count.
fn parallel_sweep_config() -> SweepConfig {
    SweepConfig {
        widths: (0..64).map(|i| 16.0 + 2.0 * i as f64).collect(),
        ..SweepConfig::default()
    }
}

fn bench_parallel_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_sweep");
    group.sample_size(10);
    let chain = InverterChain::umc90_like(7).unwrap();
    let vdd = VddSource::dc(1.0);
    let cfg = parallel_sweep_config();
    for &workers in &[1usize, 2, 4, 8] {
        group.throughput(Throughput::Elements(cfg.widths.len() as u64));
        group.bench_with_input(BenchmarkId::new("workers", workers), &workers, |b, &w| {
            let runner = SweepRunner::new().with_workers(w);
            b.iter(|| runner.sweep_samples(&chain, &vdd, &cfg, false).unwrap());
        });
    }
    group.finish();
}

/// Median wall-clock seconds of `iters` runs of `f` (one run in
/// `--test` mode).
fn median_secs<F: FnMut()>(iters: usize, mut f: F) -> f64 {
    let mut samples: Vec<f64> = (0..iters)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

/// Emits the `BENCH_analog.json` perf baseline: the RK4-vs-RK45 hot
/// paths and the parallel sweep at 1/2/4/8 workers.
fn emit_baseline(test_mode: bool) {
    let iters = if test_mode { 1 } else { 5 };
    let stim = Pulse::new(60.0, 80.0, 10.0, 1.0).unwrap();
    let vdd = VddSource::dc(1.0);
    let chain = InverterChain::umc90_like(7).unwrap();
    let opts = Rk45Options::default();

    let mut entries: Vec<(String, f64)> = Vec::new();
    entries.push((
        "chain_simulate_rk4".into(),
        median_secs(iters, || {
            chain.simulate(&stim, &vdd, 400.0, 0.05).unwrap();
        }),
    ));
    entries.push((
        "chain_simulate_rk45".into(),
        median_secs(iters, || {
            chain
                .simulate_crossings(&stim, &vdd, 400.0, 0.5, &opts)
                .unwrap();
        }),
    ));
    let cfg_rk4 = characterize_config(Integrator::Rk4);
    let cfg_rk45 = characterize_config(Integrator::default());
    entries.push((
        "characterize_7stage_rk4".into(),
        median_secs(iters.min(3), || {
            SweepRunner::new()
                .with_workers(1)
                .characterize(&chain, &vdd, &cfg_rk4)
                .unwrap();
        }),
    ));
    entries.push((
        "characterize_7stage_rk45".into(),
        median_secs(iters, || {
            SweepRunner::new()
                .with_workers(1)
                .characterize(&chain, &vdd, &cfg_rk45)
                .unwrap();
        }),
    ));
    let cfg_parallel = parallel_sweep_config();
    let mut parallel_times: Vec<(usize, f64)> = Vec::new();
    for workers in [1usize, 2, 4, 8] {
        let runner = SweepRunner::new().with_workers(workers);
        let t = median_secs(iters.min(3), || {
            runner
                .sweep_samples(&chain, &vdd, &cfg_parallel, false)
                .unwrap();
        });
        entries.push((format!("parallel_sweep_{workers}w"), t));
        parallel_times.push((workers, t));
    }

    let host_cpus = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let speedup_sim = entries[0].1 / entries[1].1.max(1e-12);
    let speedup_char = entries[2].1 / entries[3].1.max(1e-12);
    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"analog\",\n");
    json.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if test_mode { "test" } else { "full" }
    ));
    json.push_str(&format!("  \"host_cpus\": {host_cpus},\n"));
    json.push_str("  \"results\": {\n");
    for (i, (name, secs)) in entries.iter().enumerate() {
        let comma = if i + 1 < entries.len() { "," } else { "" };
        json.push_str(&format!("    \"{name}\": {secs:.9}{comma}\n"));
    }
    json.push_str("  },\n");
    json.push_str(&format!(
        "  \"speedup_rk45_vs_rk4_simulate\": {speedup_sim:.2},\n"
    ));
    json.push_str(&format!(
        "  \"speedup_rk45_vs_rk4_characterize\": {speedup_char:.2},\n"
    ));
    json.push_str("  \"parallel_sweep_scaling\": {\n");
    let base_par = parallel_times[0].1;
    for (i, (workers, t)) in parallel_times.iter().enumerate() {
        let comma = if i + 1 < parallel_times.len() {
            ","
        } else {
            ""
        };
        let s = base_par / t.max(1e-12);
        json.push_str(&format!("    \"{workers}w\": {s:.2}{comma}\n"));
    }
    json.push_str("  }\n");
    json.push_str("}\n");

    let dir = std::env::var_os("BENCH_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| {
            std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                .ancestors()
                .nth(2)
                .expect("workspace root exists")
                .to_path_buf()
        });
    let path = dir.join("BENCH_analog.json");
    std::fs::write(&path, json).expect("can write bench baseline");
    println!("baseline written to {}", path.display());
    println!("speedup rk45 vs rk4: simulate {speedup_sim:.1}x, characterize {speedup_char:.1}x");
    for (workers, t) in &parallel_times {
        println!(
            "parallel_sweep {workers}w: {t:.3}s ({:.2}x vs 1w)",
            base_par / t
        );
    }
}

criterion_group!(
    benches,
    bench_chain_transient,
    bench_integrators,
    bench_characterization,
    bench_parallel_sweep
);

fn main() {
    benches();
    // only rewrite the tracked baseline on full, unfiltered runs (or
    // CI's `--test` smoke); a name-filtered dev invocation should
    // neither pay for the baseline suite nor clobber its numbers. A
    // bare argument counts as a filter only when it does not directly
    // follow a `--option` (which may be consuming it as a value).
    let args: Vec<String> = std::env::args().skip(1).collect();
    let filtered = args.iter().enumerate().any(|(i, a)| {
        let follows_option = i > 0 && args[i - 1].starts_with("--");
        !a.is_empty() && !a.starts_with("--") && !follows_option
    });
    if !filtered {
        emit_baseline(args.iter().any(|a| a == "--test"));
    }
}
