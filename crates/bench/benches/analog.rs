//! Analog substrate cost: RK4 chain integration and characterization.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ivl_analog::chain::InverterChain;
use ivl_analog::characterize::{sweep_samples, SweepConfig};
use ivl_analog::stimulus::Pulse;
use ivl_analog::supply::VddSource;

fn bench_chain_transient(c: &mut Criterion) {
    let mut group = c.benchmark_group("chain_transient");
    group.sample_size(20);
    let stim = Pulse::new(60.0, 80.0, 10.0, 1.0).unwrap();
    let vdd = VddSource::dc(1.0);
    for &stages in &[3usize, 7, 15] {
        let chain = InverterChain::umc90_like(stages).unwrap();
        let steps = (400.0 / 0.1) as u64 * stages as u64;
        group.throughput(Throughput::Elements(steps));
        group.bench_with_input(BenchmarkId::from_parameter(stages), &chain, |b, ch| {
            b.iter(|| ch.simulate(&stim, &vdd, 400.0, 0.1).unwrap());
        });
    }
    group.finish();
}

fn bench_characterization_point(c: &mut Criterion) {
    let mut group = c.benchmark_group("characterization");
    group.sample_size(10);
    let chain = InverterChain::umc90_like(7).unwrap();
    let vdd = VddSource::dc(1.0);
    let cfg = SweepConfig {
        widths: vec![40.0, 70.0, 100.0],
        dt: 0.1,
        ..SweepConfig::default()
    };
    group.bench_function("three_point_sweep", |b| {
        b.iter(|| sweep_samples(&chain, &vdd, &cfg, false).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_chain_transient, bench_characterization_point);
criterion_main!(benches);
