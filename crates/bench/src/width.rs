//! Shared driver for the Fig. 8b/8c transistor-width experiments.

use crate::{ascii_plot, write_csv, Series};
use faithful::{AnalogSpec, AnalogTask, ChainSpec, Experiment, Orientation, ReferenceSpec};
use ivl_core::delay::fit::fit_exp_channel;
use ivl_core::noise::EtaBounds;

/// Characterizes the nominal chain, measures `D(T)` on a width-scaled
/// copy, plots/writes the figure, and asserts the paper's one-sidedness.
/// Both steps are declarative [`Experiment`]s: the characterization is
/// an `analog`/`characterize` spec, the deviation run an
/// `analog`/`deviations` spec that embeds the measured reference
/// samples ([`ReferenceSpec::empirical`]), so the nominal chain is
/// characterized exactly once.
pub fn run_width_experiment(
    name: &str,
    factor: f64,
    expect_negative: bool,
) -> Result<(), Box<dyn std::error::Error>> {
    let result = Experiment::analog(AnalogSpec::new(7, AnalogTask::Characterize)).run()?;
    let (up, down) = result
        .analog()
        .expect("analog workload")
        .characterization()
        .expect("characterize task");
    let ups: Vec<(f64, f64)> = up.iter().map(|s| (s.offset, s.delay)).collect();
    let downs: Vec<(f64, f64)> = down.iter().map(|s| (s.offset, s.delay)).collect();
    let fitted = fit_exp_channel(&ups, &downs, None)?.channel;
    let eta_plus = 0.3;
    let eta_minus = EtaBounds::max_minus_for_plus(eta_plus, &fitted)
        .expect("eta_plus small enough for (C)")
        * 0.999;
    println!("η-band from constraint (C): [−{eta_minus:.3}, +{eta_plus:.3}] ps");

    let spec = AnalogSpec::new(
        7,
        AnalogTask::Deviations {
            reference: ReferenceSpec::empirical(up, down),
            orientation: Orientation::Both,
        },
    )
    .with_chain(ChainSpec::umc90(7).with_width_scale(factor));
    let result = Experiment::analog(spec).run()?;
    let deviations = result
        .analog()
        .expect("analog workload")
        .deviations()
        .expect("deviations task");
    let mut d_up = Vec::new();
    let mut d_down = Vec::new();
    for s in deviations {
        match s.edge {
            ivl_core::Edge::Rising => d_up.push((s.offset, s.deviation)),
            ivl_core::Edge::Falling => d_down.push((s.offset, s.deviation)),
        }
    }
    let t_max = d_up
        .iter()
        .chain(&d_down)
        .map(|p| p.0)
        .fold(f64::MIN, f64::max);
    let series = vec![
        Series::new("delta_down", d_down.clone()),
        Series::new("delta_up", d_up.clone()),
        Series::new("eta_hi", vec![(0.0, eta_plus), (t_max, eta_plus)]),
        Series::new("eta_lo", vec![(0.0, -eta_minus), (t_max, -eta_minus)]),
    ];
    println!("\n{}", ascii_plot(&series, 72, 18));
    let path = write_csv(name, "T_ps", "D_ps", &series);
    println!("CSV written to {}", path.display());

    // headline shape: clearly one-sided cloud
    let all: Vec<f64> = d_up.iter().chain(&d_down).map(|p| p.1).collect();
    let mean = all.iter().sum::<f64>() / all.len() as f64;
    if expect_negative {
        assert!(mean < -0.1, "expected negative deviations, mean = {mean}");
        println!("shape check passed: mean D = {mean:.3} ps < 0 (faster circuit)");
    } else {
        assert!(mean > 0.1, "expected positive deviations, mean = {mean}");
        println!("shape check passed: mean D = {mean:.3} ps > 0 (slower circuit)");
    }
    Ok(())
}
