//! # ivl-bench
//!
//! Benchmark and figure-reproduction harness. Each binary in `src/bin`
//! regenerates one figure (or analytic result) of the paper's evaluation
//! and writes a CSV under `figures/`; the `benches/` directory holds
//! criterion throughput benchmarks. See `EXPERIMENTS.md` at the
//! workspace root for the figure-by-figure index.

#![warn(missing_docs)]

pub mod width;

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

/// A series of `(x, y)` points with a name, for CSV output and ASCII
/// plotting.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label (also the CSV column name).
    pub label: String,
    /// The points.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series.
    #[must_use]
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series {
            label: label.into(),
            points,
        }
    }
}

/// Resolves the output directory for figure CSVs: `$FIGURES_DIR` or
/// `figures/` under the workspace root (created if absent).
#[must_use]
pub fn figures_dir() -> PathBuf {
    let dir = std::env::var_os("FIGURES_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            // workspace root = two levels above this crate's manifest
            Path::new(env!("CARGO_MANIFEST_DIR"))
                .ancestors()
                .nth(2)
                .expect("workspace root exists")
                .join("figures")
        });
    fs::create_dir_all(&dir).expect("can create figures directory");
    dir
}

/// Writes series as a long-format CSV (`series,x,y`) into
/// `figures/<name>.csv` and returns the path.
pub fn write_csv(name: &str, x_label: &str, y_label: &str, series: &[Series]) -> PathBuf {
    let mut out = String::new();
    let _ = writeln!(out, "series,{x_label},{y_label}");
    for s in series {
        for (x, y) in &s.points {
            let _ = writeln!(out, "{},{x},{y}", s.label);
        }
    }
    let path = figures_dir().join(format!("{name}.csv"));
    fs::write(&path, out).expect("can write figure CSV");
    path
}

/// Renders series as a compact ASCII scatter plot (distinct markers per
/// series, shared axes).
#[must_use]
pub fn ascii_plot(series: &[Series], width: usize, height: usize) -> String {
    const MARKS: [char; 8] = ['o', 'x', '+', '*', '#', '@', '%', '&'];
    let pts: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .collect();
    if pts.is_empty() || width < 8 || height < 3 {
        return String::from("(no data)\n");
    }
    let (mut x0, mut x1, mut y0, mut y1) = (f64::MAX, f64::MIN, f64::MAX, f64::MIN);
    for &(x, y) in &pts {
        x0 = x0.min(x);
        x1 = x1.max(x);
        y0 = y0.min(y);
        y1 = y1.max(y);
    }
    if x1 <= x0 {
        x1 = x0 + 1.0;
    }
    if y1 <= y0 {
        y1 = y0 + 1.0;
    }
    let mut grid = vec![vec![' '; width]; height];
    // zero line if visible
    if y0 < 0.0 && y1 > 0.0 {
        let row = ((y1) / (y1 - y0) * (height - 1) as f64).round() as usize;
        if row < height {
            for c in grid[row].iter_mut() {
                *c = '·';
            }
        }
    }
    for (si, s) in series.iter().enumerate() {
        let mark = MARKS[si % MARKS.len()];
        for &(x, y) in &s.points {
            let col = ((x - x0) / (x1 - x0) * (width - 1) as f64).round() as usize;
            let row = ((y1 - y) / (y1 - y0) * (height - 1) as f64).round() as usize;
            if row < height && col < width {
                grid[row][col] = mark;
            }
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "  {y1:>10.3} ┐");
    for row in &grid {
        let _ = writeln!(out, "             │{}", row.iter().collect::<String>());
    }
    let _ = writeln!(out, "  {y0:>10.3} ┘");
    let _ = writeln!(
        out,
        "              x ∈ [{x0:.3}, {x1:.3}]   legend: {}",
        series
            .iter()
            .enumerate()
            .map(|(i, s)| format!("{}={}", MARKS[i % MARKS.len()], s.label))
            .collect::<Vec<_>>()
            .join("  ")
    );
    out
}

/// `true` when the environment variable `name` is set to a non-empty
/// value other than `0` (the truthiness rule shared by all figure-bin
/// knobs).
#[must_use]
pub fn env_flag(name: &str) -> bool {
    std::env::var(name).is_ok_and(|v| !v.is_empty() && v != "0")
}

/// `true` when `IVL_FAST_FIGS` is on — figure bins then shrink their
/// sweeps so CI can exercise the full pipeline on every push.
#[must_use]
pub fn fast_figs() -> bool {
    env_flag("IVL_FAST_FIGS")
}

/// Prints a standard figure banner.
pub fn banner(figure: &str, caption: &str) {
    println!("==========================================================");
    println!("{figure}: {caption}");
    println!("==========================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join("ivl-bench-test-figs");
        std::env::set_var("FIGURES_DIR", &dir);
        let s = Series::new("a", vec![(0.0, 1.0), (1.0, 2.0)]);
        let path = write_csv("unit_test_fig", "x", "y", &[s]);
        let content = std::fs::read_to_string(path).unwrap();
        assert!(content.starts_with("series,x,y"));
        assert!(content.contains("a,1,2"));
        std::env::remove_var("FIGURES_DIR");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn ascii_plot_has_axes_and_marks() {
        let s = vec![
            Series::new("up", vec![(0.0, -1.0), (5.0, 1.0)]),
            Series::new("down", vec![(2.5, 0.5)]),
        ];
        let art = ascii_plot(&s, 40, 10);
        assert!(art.contains('o'));
        assert!(art.contains('x'));
        assert!(art.contains('·'), "zero line expected:\n{art}");
        assert!(art.contains("legend"));
        assert_eq!(ascii_plot(&[], 40, 10), "(no data)\n");
    }
}
