//! Figs. 1–4 — the illustrative single-history / η-involution traces:
//! pulse attenuation, cancellation, and the adversary's freedom to
//! shift, extend and de-cancel pulses.
//!
//! Run with `cargo run --release -p ivl_bench --bin fig_traces`.

use ivl_bench::{banner, write_csv, Series};
use ivl_core::channel::{Channel, EtaInvolutionChannel, InvolutionChannel};
use ivl_core::delay::ExpChannel;
use ivl_core::noise::{EtaBounds, ExtendingAdversary, WorstCaseAdversary, ZeroNoise};
use ivl_core::Signal;

fn series_of(label: &str, s: &Signal) -> Series {
    // encode a trace as a step series for plotting tools
    let mut pts = vec![(-1.0, s.initial().as_u8() as f64)];
    for tr in s.transitions() {
        let v = tr.value.as_u8() as f64;
        pts.push((tr.time, 1.0 - v));
        pts.push((tr.time, v));
    }
    Series::new(label, pts)
}

fn show(label: &str, s: &Signal, t1: f64) {
    println!("{label:>16}: {}", s.render_ascii(-0.5, t1, 64));
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner(
        "Figs. 1–4",
        "single-history semantics: attenuation, cancellation, adversarial shifts",
    );
    let delay = ExpChannel::new(1.0, 0.5, 0.5)?;
    // Fig. 1/2 input: a healthy pulse followed by a short one that the
    // deterministic channel cancels
    let input = Signal::pulse_train([(0.0, 4.0), (7.0, 0.62)])?;
    let t1 = 12.0;
    show("input", &input, t1);

    let mut det = InvolutionChannel::new(delay.clone());
    let out_det = det.apply(&input);
    show("involution", &out_det, t1);
    assert_eq!(out_det.len(), 2, "second pulse must cancel (Fig. 2)");

    // Fig. 3/4: the η adversary can move transitions within [−η⁻, η⁺];
    // different choices yield different feasible output traces
    let bounds = EtaBounds::new(0.06, 0.06)?;
    let mut zero = EtaInvolutionChannel::new(delay.clone(), bounds, ZeroNoise);
    let out1 = zero.apply(&input);
    show("η = 0", &out1, t1);

    let mut late = EtaInvolutionChannel::new(delay.clone(), bounds, WorstCaseAdversary);
    let out2 = late.apply(&input);
    show("η shrinking", &out2, t1);

    let mut extend = EtaInvolutionChannel::new(delay, bounds, ExtendingAdversary);
    let out3 = extend.apply(&input);
    show("η de-cancel", &out3, t1);
    assert!(
        out3.len() > out_det.len(),
        "the extending adversary must de-cancel the second pulse (Fig. 4): {out3}"
    );

    let path = write_csv(
        "fig_traces",
        "t",
        "level",
        &[
            series_of("input", &input),
            series_of("involution", &out_det),
            series_of("eta_zero", &out1),
            series_of("eta_shrinking", &out2),
            series_of("eta_decancel", &out3),
        ],
    );
    println!("\nCSV written to {}", path.display());
    println!("shape check passed: cancellation (Fig. 2) and de-cancellation (Fig. 4) reproduced");
    Ok(())
}
