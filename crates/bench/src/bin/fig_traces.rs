//! Figs. 1–4 — the illustrative single-history / η-involution traces:
//! pulse attenuation, cancellation, and the adversary's freedom to
//! shift, extend and de-cancel pulses.
//!
//! Every trace is one declarative `channel` [`Experiment`]: the same
//! stimulus run through channels that differ only in their spec.
//!
//! Run with `cargo run --release -p ivl_bench --bin fig_traces`.

use faithful::{ChannelSpec, Experiment, NoiseSpec, Signal, SignalSpec};
use ivl_bench::{banner, write_csv, Series};

fn series_of(label: &str, s: &Signal) -> Series {
    // encode a trace as a step series for plotting tools
    let mut pts = vec![(-1.0, s.initial().as_u8() as f64)];
    for tr in s.transitions() {
        let v = tr.value.as_u8() as f64;
        pts.push((tr.time, 1.0 - v));
        pts.push((tr.time, v));
    }
    Series::new(label, pts)
}

fn show(label: &str, s: &Signal, t1: f64) {
    println!("{label:>16}: {}", s.render_ascii(-0.5, t1, 64));
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner(
        "Figs. 1–4",
        "single-history semantics: attenuation, cancellation, adversarial shifts",
    );
    let (tau, t_p, v_th) = (1.0, 0.5, 0.5);
    // Fig. 1/2 input: a healthy pulse followed by a short one that the
    // deterministic channel cancels
    let input = SignalSpec::train([(0.0, 4.0), (7.0, 0.62)]);
    let t1 = 12.0;
    show("input", &input.build()?, t1);

    let run = |channel: ChannelSpec| -> Result<Signal, faithful::Error> {
        Ok(Experiment::channel(channel, input.clone())
            .run()?
            .channel()
            .expect("channel workload")
            .output
            .clone())
    };

    let out_det = run(ChannelSpec::involution_exp(tau, t_p, v_th))?;
    show("involution", &out_det, t1);
    assert_eq!(out_det.len(), 2, "second pulse must cancel (Fig. 2)");

    // Fig. 3/4: the η adversary can move transitions within [−η⁻, η⁺];
    // different choices yield different feasible output traces
    let eta = |noise| ChannelSpec::eta_exp(tau, t_p, v_th, 0.06, 0.06, noise);
    let out1 = run(eta(NoiseSpec::Zero))?;
    show("η = 0", &out1, t1);

    let out2 = run(eta(NoiseSpec::WorstCase))?;
    show("η shrinking", &out2, t1);

    let out3 = run(eta(NoiseSpec::Extending))?;
    show("η de-cancel", &out3, t1);
    assert!(
        out3.len() > out_det.len(),
        "the extending adversary must de-cancel the second pulse (Fig. 4): {out3}"
    );

    let path = write_csv(
        "fig_traces",
        "t",
        "level",
        &[
            series_of("input", &input.build()?),
            series_of("involution", &out_det),
            series_of("eta_zero", &out1),
            series_of("eta_shrinking", &out2),
            series_of("eta_decancel", &out3),
        ],
    );
    println!("\nCSV written to {}", path.display());
    println!("shape check passed: cancellation (Fig. 2) and de-cancellation (Fig. 4) reproduced");
    Ok(())
}
