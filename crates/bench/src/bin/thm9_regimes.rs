//! Theorem 9 / Theorem 12 — the three-regime classification of the SPF
//! circuit across the input pulse width, for the worst-case and random
//! adversaries, with theory, recurrence and simulation side by side.
//!
//! Run with `cargo run --release -p ivl_bench --bin thm9_regimes`.

use faithful::spf::SpfRun;
use faithful::{Experiment, NoiseSpec, SignalSpec, SpfSpec, SpfTask};
use ivl_bench::{banner, write_csv, Series};
use ivl_core::delay::ExpChannel;
use ivl_core::noise::EtaBounds;
use ivl_spf::{LoopOutcome, PulseTrainFate, WorstCaseRecurrence};

/// One facade run of the Fig. 5 circuit on a `d0`-wide pulse.
fn simulate(noise: NoiseSpec, d0: f64, horizon: f64) -> Result<SpfRun, faithful::Error> {
    let spec = SpfSpec::exp(1.0, 0.5, 0.5, 0.02, 0.02).with_task(SpfTask::Simulate {
        noise,
        input: SignalSpec::pulse(0.0, d0),
        horizon,
    });
    Ok(Experiment::spf(spec)
        .run()?
        .spf()
        .expect("spf workload")
        .run
        .clone()
        .expect("simulation requested"))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner(
        "Thm. 9",
        "regimes: filtered / metastable window / latched, with boundaries from theory",
    );
    let delay = ExpChannel::new(1.0, 0.5, 0.5)?;
    let bounds = EtaBounds::new(0.02, 0.02)?;
    let th = Experiment::spf(SpfSpec::exp(1.0, 0.5, 0.5, 0.02, 0.02))
        .run()?
        .spf()
        .expect("spf workload")
        .theory;
    let rec = WorstCaseRecurrence::new(delay, bounds);
    println!(
        "boundaries: filter ≤ {:.4}   ∆̃₀ = {:.4}   lock ≥ {:.4}",
        th.filter_bound, th.delta0_tilde, th.lock_bound
    );

    let horizon = 400.0;
    let lo = th.filter_bound * 0.6;
    let hi = th.lock_bound * 1.2;
    let n = 33;
    let mut sim_code = Vec::new();
    let mut rec_code = Vec::new();
    let mut pulses_series = Vec::new();
    println!(
        "\n{:>9} | {:>11} | {:>12} | {:>12} | {:>6}",
        "∆₀", "recurrence", "sim (worst)", "sim (seed 7)", "pulses"
    );
    for i in 0..n {
        let d0 = lo + (hi - lo) * i as f64 / (n - 1) as f64;
        let fate = rec.fate(d0, 5000);
        let wc = simulate(NoiseSpec::WorstCase, d0, horizon)?;
        let wc_out = LoopOutcome::classify(&wc.or_signal, horizon, 20.0);
        let rnd = simulate(NoiseSpec::Uniform { seed: 7 }, d0, horizon)?;
        let rnd_out = LoopOutcome::classify(&rnd.or_signal, horizon, 20.0);
        let code = |o: &LoopOutcome| match o {
            LoopOutcome::Filtered { .. } => 0.0,
            LoopOutcome::Oscillating { .. } => 0.5,
            LoopOutcome::Latched { .. } => 1.0,
        };
        let fate_code = match fate {
            PulseTrainFate::Dies { .. } => 0.0,
            PulseTrainFate::Oscillating { .. } => 0.5,
            PulseTrainFate::Locks { .. } => 1.0,
        };
        let pulses = match wc_out {
            LoopOutcome::Filtered { pulses }
            | LoopOutcome::Latched { pulses, .. }
            | LoopOutcome::Oscillating { pulses } => pulses,
        };
        println!(
            "{d0:>9.4} | {:>11} | {:>12} | {:>12} | {pulses:>6}",
            fmt_fate(&fate),
            fmt_outcome(&wc_out),
            fmt_outcome(&rnd_out)
        );
        sim_code.push((d0, code(&wc_out)));
        rec_code.push((d0, fate_code));
        pulses_series.push((d0, pulses as f64));

        // consistency: away from the metastable window, recurrence and
        // simulation must agree
        if d0 < th.filter_bound * 0.98 {
            assert_eq!(fate_code, 0.0, "below filter bound at {d0}");
            assert_eq!(code(&wc_out), 0.0);
        }
        if d0 > th.lock_bound * 1.02 {
            assert_eq!(fate_code, 1.0, "above lock bound at {d0}");
            assert_eq!(code(&wc_out), 1.0);
        }
    }
    let path = write_csv(
        "thm9_regimes",
        "delta0",
        "outcome",
        &[
            Series::new("recurrence", rec_code),
            Series::new("simulation_worst_case", sim_code),
            Series::new("feedback_pulses", pulses_series),
        ],
    );
    println!("\nCSV written to {}", path.display());
    println!("shape check passed: regimes agree outside the metastable window");
    Ok(())
}

fn fmt_fate(f: &PulseTrainFate) -> &'static str {
    match f {
        PulseTrainFate::Dies { .. } => "dies",
        PulseTrainFate::Locks { .. } => "locks",
        PulseTrainFate::Oscillating { .. } => "oscillates",
    }
}

fn fmt_outcome(o: &LoopOutcome) -> &'static str {
    match o {
        LoopOutcome::Filtered { .. } => "filtered",
        LoopOutcome::Latched { .. } => "latched",
        LoopOutcome::Oscillating { .. } => "oscillating",
    }
}
