//! Fig. 7 — measured `δ↓(T)` of the inverter chain for several supply
//! voltages.
//!
//! Paper shape: every curve increases and saturates in `T`; lowering
//! `V_DD` shifts the whole curve up (dramatically near threshold).
//!
//! Each supply point is one declarative [`Experiment`] over the
//! `analog` workload; only the supply voltage and the scaled sweep
//! fields differ between specs.
//!
//! Run with `cargo run --release -p ivl_bench --bin fig7_delay_functions`.

use faithful::{AnalogSpec, AnalogTask, Experiment, SupplySpec, SweepSpec};
use ivl_bench::{ascii_plot, banner, write_csv, Series};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner(
        "Fig. 7",
        "δ↓(T) per V_DD — curves saturate in T and shift up as V_DD drops",
    );
    let vdds: [f64; 6] = [1.0, 0.9, 0.8, 0.7, 0.6, 0.5];
    let mut series = Vec::new();
    for &v in &vdds {
        // switching slows roughly like the inverse drive current; scale
        // the sweep so each supply probes a comparable T range
        let f = ((1.0 - 0.29) / (v - 0.29)).powf(1.3_f64);
        let sweep = SweepSpec {
            widths: (0..16).map(|i| (18.0 + 8.0 * i as f64) * f).collect(),
            settle: 60.0 * f,
            tail: 300.0 * f,
            slew: 10.0 * f.min(3.0),
            stage: 3,
            // adaptive RK45 via the crossings-only fast path (default
            // integrator): the step controller absorbs the slower
            // low-V_DD dynamics that used to require scaling `dt`
            ..SweepSpec::default()
        };
        // `inverted = false` yields the falling output edge at stage 3,
        // i.e. δ↓ samples
        let spec = AnalogSpec::new(7, AnalogTask::Samples { inverted: false })
            .with_supply(SupplySpec::Dc { volts: v })
            .with_sweep(sweep);
        let result = Experiment::analog(spec).run()?;
        let samples = result
            .analog()
            .expect("analog workload")
            .samples()
            .expect("samples task")
            .to_vec();
        let points: Vec<(f64, f64)> = samples.iter().map(|s| (s.offset, s.delay)).collect();
        println!(
            "V_DD = {v:.1} V: {} samples, δ↓ ∈ [{:.1}, {:.1}] ps over T ∈ [{:.1}, {:.1}] ps",
            points.len(),
            points.iter().map(|p| p.1).fold(f64::MAX, f64::min),
            points.iter().map(|p| p.1).fold(f64::MIN, f64::max),
            points.first().map_or(0.0, |p| p.0),
            points.last().map_or(0.0, |p| p.0),
        );
        series.push(Series::new(format!("{v:.1}V"), points));
    }
    println!("\n{}", ascii_plot(&series, 72, 20));
    let path = write_csv("fig7_delay_functions", "T_ps", "delta_down_ps", &series);
    println!("CSV written to {}", path.display());

    // headline check: mean δ↓ strictly increases as V_DD drops
    let mean = |s: &Series| s.points.iter().map(|p| p.1).sum::<f64>() / s.points.len() as f64;
    for w in series.windows(2) {
        assert!(
            mean(&w[1]) > mean(&w[0]),
            "lower V_DD must be slower: {} vs {}",
            w[1].label,
            w[0].label
        );
    }
    println!("shape check passed: curves shift up monotonically with falling V_DD");
    Ok(())
}
