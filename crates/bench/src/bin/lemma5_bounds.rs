//! Lemma 5/6 — the worst-case pulse-train quantities (`τ = P`, `∆`, `γ`)
//! as functions of the adversary power `η`, up to the constraint-(C)
//! boundary.
//!
//! Each η point is one declarative `spf`/`theory` [`Experiment`]; the
//! specs differ only in their bound fields.
//!
//! Run with `cargo run --release -p ivl_bench --bin lemma5_bounds`.

use faithful::{Experiment, SpfSpec};
use ivl_bench::{ascii_plot, banner, write_csv, Series};
use ivl_core::delay::{DelayPair, ExpChannel};
use ivl_core::noise::EtaBounds;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner(
        "Lem. 5/6",
        "worst-case ∆, P = τ, γ vs symmetric adversary power η under (C)",
    );
    let (tau_c, t_p, v_th) = (1.0, 0.5, 0.5);
    let delay = ExpChannel::new(tau_c, t_p, v_th)?;
    println!(
        "channel: δ_min = {:.4}, δ↑∞ = δ↓∞ = {:.4}",
        delay.delta_min(),
        delay.delta_up_inf()
    );

    // find the symmetric η where (C) breaks
    let mut eta_max = 0.0;
    for i in 0..1000 {
        let eta = i as f64 * 1e-4;
        if !EtaBounds::new(eta, eta)?.satisfies_constraint_c(&delay) {
            break;
        }
        eta_max = eta;
    }
    println!("constraint (C) admits symmetric η up to ≈ {eta_max:.4}");

    let mut s_tau = Vec::new();
    let mut s_delta = Vec::new();
    let mut s_gamma = Vec::new();
    let mut s_window = Vec::new();
    println!(
        "\n{:>8} | {:>8} | {:>8} | {:>8} | {:>10}",
        "η", "τ = P", "∆", "γ", "meta-window"
    );
    let n = 20;
    for i in 0..n {
        let eta = eta_max * i as f64 / n as f64;
        let result = Experiment::spf(SpfSpec::exp(tau_c, t_p, v_th, eta, eta)).run()?;
        let th = result.spf().expect("spf workload").theory;
        assert!(th.satisfies_lemma5_inequalities(&delay), "η = {eta}");
        assert!(th.gamma < 1.0);
        let window = th.lock_bound - th.filter_bound;
        println!(
            "{eta:>8.4} | {:>8.4} | {:>8.4} | {:>8.4} | {window:>10.4}",
            th.tau, th.delta_bar, th.gamma
        );
        s_tau.push((eta, th.tau));
        s_delta.push((eta, th.delta_bar));
        s_gamma.push((eta, th.gamma));
        s_window.push((eta, window));
    }
    let series = vec![
        Series::new("tau", s_tau),
        Series::new("delta_bar", s_delta.clone()),
        Series::new("gamma", s_gamma.clone()),
        Series::new("metastable_window", s_window.clone()),
    ];
    println!("\n{}", ascii_plot(&series, 72, 16));
    let path = write_csv("lemma5_bounds", "eta", "value", &series);
    println!("CSV written to {}", path.display());

    // headline shapes: the metastable window widens with η; γ stays < 1;
    // ∆ stays below δ_min
    assert!(s_window.last().unwrap().1 > s_window.first().unwrap().1);
    assert!(s_gamma.iter().all(|p| p.1 < 1.0));
    assert!(s_delta.iter().all(|p| p.1 < delay.delta_min()));
    println!("shape check passed: window grows with η, γ < 1, ∆ < δ_min throughout");
    Ok(())
}
