//! Fig. 9 — fitting an exp-channel involution to the measured delay data
//! and plotting the resulting deviation `D(T)`.
//!
//! Paper shape: the simple exp-channel mispredicts only mildly near
//! `T ≈ 0` but deviates increasingly (tens of ps in the paper's ns-scale
//! setup) for large `T` — harmless for faithfulness, which only concerns
//! `T ∈ [−δ_min, 0]`.
//!
//! Two declarative [`Experiment`]s: a `characterize` spec to measure
//! the samples, then a `deviations` spec whose reference is the fitted
//! exp-channel's parameters ([`ReferenceSpec::Exp`]) — the fitted model
//! itself travels inside the spec.
//!
//! Run with `cargo run --release -p ivl_bench --bin fig9_exp_fit`.

use faithful::{AnalogSpec, AnalogTask, Experiment, Orientation, ReferenceSpec, SweepSpec};
use ivl_bench::{ascii_plot, banner, write_csv, Series};
use ivl_core::delay::fit::fit_exp_channel;
use ivl_core::delay::DelayPair;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner(
        "Fig. 9",
        "exp-channel fitted to measured data — D(T) small near T≈0, growing with T",
    );
    // extend the sweep so the large-T misfit becomes visible
    let sweep = SweepSpec {
        widths: (0..28).map(|i| 12.0 + 9.0 * i as f64).collect(),
        tail: 350.0,
        ..SweepSpec::default()
    };

    let result =
        Experiment::analog(AnalogSpec::new(7, AnalogTask::Characterize).with_sweep(sweep.clone()))
            .run()?;
    let (up, down) = result
        .analog()
        .expect("analog workload")
        .characterization()
        .expect("characterize task");
    let ups: Vec<(f64, f64)> = up.iter().map(|s| (s.offset, s.delay)).collect();
    let downs: Vec<(f64, f64)> = down.iter().map(|s| (s.offset, s.delay)).collect();
    let fit = fit_exp_channel(&ups, &downs, None)?;
    println!(
        "fitted exp-channel: τ = {:.2} ps, T_p = {:.2} ps, V_th = {:.3}  (rms {:.3} ps)",
        fit.channel.tau(),
        fit.channel.t_p(),
        fit.channel.v_th(),
        fit.rms
    );
    println!(
        "fitted asymptotics: δ↑∞ = {:.2} ps, δ↓∞ = {:.2} ps, δ_min = {:.2} ps",
        fit.channel.delta_up_inf(),
        fit.channel.delta_down_inf(),
        fit.channel.delta_min()
    );

    let spec = AnalogSpec::new(
        7,
        AnalogTask::Deviations {
            reference: ReferenceSpec::Exp {
                tau: fit.channel.tau(),
                t_p: fit.channel.t_p(),
                v_th: fit.channel.v_th(),
            },
            orientation: Orientation::Both,
        },
    )
    .with_sweep(sweep);
    let result = Experiment::analog(spec).run()?;
    let mut d_up = Vec::new();
    let mut d_down = Vec::new();
    for s in result
        .analog()
        .expect("analog workload")
        .deviations()
        .expect("deviations task")
    {
        match s.edge {
            ivl_core::Edge::Rising => d_up.push((s.offset, s.deviation)),
            ivl_core::Edge::Falling => d_down.push((s.offset, s.deviation)),
        }
    }
    let series = vec![
        Series::new("delta_down", d_down.clone()),
        Series::new("delta_up", d_up.clone()),
    ];
    println!("\n{}", ascii_plot(&series, 72, 18));
    let path = write_csv("fig9_exp_fit", "T_ps", "D_ps", &series);
    println!("CSV written to {}", path.display());

    // headline shape: |D| near the smallest sampled T is a small
    // fraction of |D| at the largest sampled T for at least one edge
    let spread = |v: &[(f64, f64)]| -> (f64, f64) {
        let lo_t = v.iter().map(|p| p.0).fold(f64::MAX, f64::min);
        let hi_t = v.iter().map(|p| p.0).fold(f64::MIN, f64::max);
        let near: Vec<f64> = v
            .iter()
            .filter(|p| p.0 < lo_t + 0.25 * (hi_t - lo_t))
            .map(|p| p.1.abs())
            .collect();
        let far: Vec<f64> = v
            .iter()
            .filter(|p| p.0 > lo_t + 0.75 * (hi_t - lo_t))
            .map(|p| p.1.abs())
            .collect();
        (
            near.iter().sum::<f64>() / near.len().max(1) as f64,
            far.iter().sum::<f64>() / far.len().max(1) as f64,
        )
    };
    let (near_up, far_up) = spread(&d_up);
    let (near_down, far_down) = spread(&d_down);
    println!(
        "mean |D|: δ↑ near {near_up:.3} / far {far_up:.3} ps,  δ↓ near {near_down:.3} / far {far_down:.3} ps"
    );
    // Shape note vs the paper: the misfit is strongly T-structured in
    // both cases, but its *location* differs. The paper's measured chip
    // keeps drifting at large T (slow thermal/supply time constants), so
    // the exp fit errs in the tail; our alpha-power substrate is
    // near-first-order, so the fit nails the tail and errs at the
    // attenuation knee instead. Either way the error is a few percent of
    // the absolute delay, i.e. "minor mispredictions" in the paper's
    // wording, and the faithfulness-relevant region stays coverable.
    let mean_delay = ups.iter().map(|p| p.1).sum::<f64>() / ups.len() as f64;
    let worst = [near_up, far_up, near_down, far_down]
        .into_iter()
        .fold(0.0_f64, f64::max);
    assert!(
        (near_up - far_up).abs() > 0.1 || (near_down - far_down).abs() > 0.1,
        "misfit must be T-structured"
    );
    assert!(
        worst < 0.05 * mean_delay,
        "worst regional misfit {worst:.3} ps should stay below 5 % of the mean delay {mean_delay:.1} ps"
    );
    println!("shape check passed: T-structured misfit, bounded by 5 % of the delay scale");
    Ok(())
}
