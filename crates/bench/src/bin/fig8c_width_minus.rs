//! Fig. 8c — deviation `D(T)` for a chain with 10 % *narrower*
//! transistors against the nominal delay model.
//!
//! Paper shape: the narrower (slower) circuit switches later than
//! predicted, so the cloud sits *above* zero and exceeds the η-band with
//! increasing `T`.
//!
//! Run with `cargo run --release -p ivl_bench --bin fig8c_width_minus`.

use ivl_bench::banner;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner(
        "Fig. 8c",
        "D(T) for −10 % transistor width — one-sided positive deviations",
    );
    ivl_bench::width::run_width_experiment("fig8c_width_minus", 0.9, false)
}
