//! Ablation — dimensioning the high-threshold buffer (Lemmas 10/11).
//!
//! Theorem 12 needs an exp-channel whose threshold sits above the
//! worst-case duty cycle γ and whose time constant dwarfs the worst-case
//! period. This ablation sweeps the buffer's `V_th` across γ and shows
//! the F2/F4-relevant failure on the *other* side: with the threshold at
//! or below γ, a sustained metastable train leaks through the buffer as
//! pulses; above γ it is filtered to a clean output.
//!
//! Run with `cargo run --release -p ivl_bench --bin ablation_buffer`.

use faithful::{Experiment, SpfSpec};
use ivl_bench::{banner, write_csv, Series};
use ivl_core::delay::ExpChannel;
use ivl_core::noise::{EtaBounds, WorstCaseAdversary};
use ivl_core::Signal;
use ivl_spf::{dimension_buffer, SpfCircuit};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner(
        "Ablation",
        "buffer threshold sweep across the worst-case duty cycle γ",
    );
    let delay = ExpChannel::new(1.0, 0.5, 0.5)?;
    let bounds = EtaBounds::new(0.02, 0.02)?;
    // the reference theory comes from the facade's spf workload; the
    // threshold sweep below needs custom buffers, which stay on the
    // underlying SpfCircuit::new
    let th = Experiment::spf(SpfSpec::exp(1.0, 0.5, 0.5, 0.02, 0.02))
        .run()?
        .spf()
        .expect("spf workload")
        .theory;
    let auto_buffer = dimension_buffer(&th);
    println!(
        "γ = {:.4}, P = {:.4}; auto-dimensioned buffer: V_th = {:.3}, τ = {:.2}",
        th.gamma,
        th.period,
        auto_buffer.v_th(),
        auto_buffer.tau()
    );

    // drive the loop into a long metastable train
    let input = Signal::pulse(0.0, th.delta0_tilde)?;
    let horizon = 300.0;
    let tau_buf = 10.0 * th.period;
    println!(
        "\n{:>8} | {:>14} | {:>10} | verdict",
        "V_th", "out transitions", "final"
    );
    let mut series = Vec::new();
    for i in 0..10 {
        let v_th = (th.gamma * (0.55 + 0.11 * i as f64)).min(0.97);
        let buffer = ExpChannel::new(tau_buf, 0.05, v_th)?;
        let circuit = SpfCircuit::new(delay.clone(), bounds, buffer);
        let run = circuit.simulate(WorstCaseAdversary, &input, horizon)?;
        let clean = run.output.len() <= 1;
        println!(
            "{v_th:>8.3} | {:>14} | {:>10} | {}",
            run.output.len(),
            run.output.final_value(),
            if clean { "clean" } else { "LEAKS PULSES" }
        );
        series.push((v_th, run.output.len() as f64));
        if v_th > th.gamma * 1.15 {
            assert!(
                clean,
                "threshold well above γ must filter the train: V_th = {v_th}"
            );
        }
    }
    // the sweep must show the boundary: some low threshold leaks (or at
    // least produces an early rise), every high threshold is clean
    let leaky = series.iter().filter(|p| p.1 > 1.0).count();
    println!(
        "\n{} of {} thresholds leak the metastable train through the buffer",
        leaky,
        series.len()
    );
    let path = write_csv(
        "ablation_buffer",
        "v_th",
        "output_transitions",
        &[Series::new("output_transitions", series)],
    );
    println!("CSV written to {}", path.display());
    println!("ablation complete: Lemma 11's dimensioning margin is visible");
    Ok(())
}
