//! Lemma 7 / Theorem 9 — geometric divergence from the metastable fixed
//! point and the logarithmic stabilization-time law
//! `pulses ∼ log_a(1/(∆₀ − ∆̃₀))`.
//!
//! Run with `cargo run --release -p ivl_bench --bin lemma7_growth`.

use faithful::{Experiment, NoiseSpec, SignalSpec, SpfSpec, SpfTask};
use ivl_bench::{ascii_plot, banner, write_csv, Series};
use ivl_core::delay::ExpChannel;
use ivl_core::noise::EtaBounds;
use ivl_spf::{LoopOutcome, WorstCaseRecurrence};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner(
        "Lem. 7",
        "log-law: feedback pulses until lock vs log10(∆₀ − ∆̃₀), slope 1/log10(a)",
    );
    let delay = ExpChannel::new(1.0, 0.5, 0.5)?;
    let bounds = EtaBounds::new(0.02, 0.02)?;
    let rec = WorstCaseRecurrence::new(delay, bounds);
    // theory and every simulated gap point run through the facade's
    // `spf` workload; only the input pulse width differs between specs
    let spf_spec = SpfSpec::exp(1.0, 0.5, 0.5, 0.02, 0.02);
    let th = Experiment::spf(spf_spec.clone())
        .run()?
        .spf()
        .expect("spf workload")
        .theory;
    // Lemma 7's a = 1 + δ′↑(0) is a *lower bound* on the growth rate; the
    // actual rate at the fixed point is f′(∆), estimated numerically.
    let h = 1e-7;
    let f_prime = (rec.next_pulse(th.delta_bar + h).unwrap()
        - rec.next_pulse(th.delta_bar - h).unwrap())
        / (2.0 * h);
    println!(
        "growth: lower bound a = {:.4} (Lemma 7), actual f′(∆) = {:.4}",
        th.growth, f_prime
    );
    let expected_slope = (10.0f64).ln() / f_prime.ln();
    let max_slope = (10.0f64).ln() / th.growth.ln();
    println!(
        "expected slope ≈ {expected_slope:.2} pulses/decade (Lemma 7 caps it at {max_slope:.2})"
    );

    let mut s_rec = Vec::new();
    let mut s_sim = Vec::new();
    println!(
        "\n{:>10} | {:>16} | {:>16}",
        "gap", "recurrence pulses", "simulated pulses"
    );
    for exp in 1..=9 {
        let gap = 10f64.powi(-exp);
        let d0 = th.delta0_tilde + gap;
        let rec_pulses = match rec.fate(d0, 100_000) {
            ivl_spf::PulseTrainFate::Locks { pulses } => pulses as f64,
            other => panic!("expected lock for gap {gap}: {other:?}"),
        };
        let result = Experiment::spf(spf_spec.clone().with_task(SpfTask::Simulate {
            noise: NoiseSpec::WorstCase,
            input: SignalSpec::pulse(0.0, d0),
            horizon: 5000.0,
        }))
        .run()?;
        let run = result
            .spf()
            .expect("spf workload")
            .run
            .clone()
            .expect("simulation requested");
        let sim_pulses = match LoopOutcome::classify(&run.or_signal, 5000.0, 50.0) {
            LoopOutcome::Latched { pulses, .. } => pulses as f64,
            other => panic!("expected latch for gap {gap}: {other:?}"),
        };
        println!("{gap:>10.0e} | {rec_pulses:>16} | {sim_pulses:>16}");
        s_rec.push((-(exp as f64), rec_pulses));
        s_sim.push((-(exp as f64), sim_pulses));
        // recurrence and simulation agree to within a pulse or two
        assert!(
            (rec_pulses - sim_pulses).abs() <= 2.0,
            "gap {gap}: {rec_pulses} vs {sim_pulses}"
        );
    }
    let series = vec![
        Series::new("recurrence", s_rec.clone()),
        Series::new("simulation", s_sim.clone()),
        Series::new(
            "worst_case_trajectory",
            rec.trajectory(th.delta0_tilde + 1e-6, 40)
                .iter()
                .enumerate()
                .map(|(i, w)| (i as f64 - 9.0, *w * 10.0)) // overlay, scaled
                .collect(),
        ),
    ];
    println!("\n{}", ascii_plot(&series[..2], 72, 16));
    let path = write_csv("lemma7_growth", "log10_gap", "pulses_to_lock", &series);
    println!("CSV written to {}", path.display());

    // headline shape: linear in the decade index, slope matching f′(∆)
    // and never below the Lemma 7 cap's implication (slope ≤ max_slope)
    let diffs: Vec<f64> = s_rec.windows(2).map(|w| w[1].1 - w[0].1).collect();
    let mean_slope = diffs.iter().sum::<f64>() / diffs.len() as f64;
    println!(
        "observed slope {mean_slope:.2} pulses/decade vs f′(∆) prediction {expected_slope:.2}"
    );
    assert!(
        (mean_slope - expected_slope).abs() < 0.35 * expected_slope,
        "slope must match the log-law within 35 %"
    );
    assert!(
        mean_slope <= max_slope + 0.5,
        "Lemma 7 lower-bounds growth, hence caps the slope"
    );
    println!("shape check passed: logarithmic stabilization law reproduced");
    Ok(())
}
