//! Ablation — why constraint (C) is the load-bearing wall.
//!
//! The paper restricts the adversary by
//! `(C): η⁺ + η⁻ < δ↓(−η⁺) − δ_min` to prove faithfulness. This ablation
//! shows what actually breaks as η crosses that boundary:
//!
//! 1. the fixed-point equation (6) loses its bracket (`h(τ₀) ≤ 0`), so
//!    the worst-case self-repeating train — the backbone of Lemma 5 —
//!    no longer exists;
//! 2. operationally, the extending adversary can then keep *de-cancelling*
//!    pulses: the worst-case duty cycle bound γ < 1 fails, and no
//!    high-threshold buffer dimensioning per Lemmas 10/11 remains valid
//!    (any threshold below 1 is eventually crossed).
//!
//! Run with `cargo run --release -p ivl_bench --bin ablation_constraint_c`.

use faithful::{ChannelSpec, Experiment, NoiseSpec, SignalSpec, SpfSpec};
use ivl_bench::{banner, write_csv, Series};
use ivl_core::delay::{DelayPair, ExpChannel};
use ivl_core::noise::EtaBounds;
use ivl_core::PulseStats;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner(
        "Ablation",
        "crossing constraint (C): fixed point vanishes, duty cycle escapes to 1",
    );
    let delay = ExpChannel::new(1.0, 0.5, 0.5)?;
    let dmin = delay.delta_min();

    // the symmetric boundary: η⁺ + η⁻ = δ↓(−η⁺) − δ_min
    let mut eta_c = 0.0;
    for i in 0..100_000 {
        let eta = i as f64 * 1e-5;
        if !(EtaBounds::new(eta, eta)?.satisfies_constraint_c(&delay)) {
            break;
        }
        eta_c = eta;
    }
    println!("symmetric (C) boundary: η_C ≈ {eta_c:.4}   (δ_min = {dmin:.4})");

    // 1) theory: the facade's spf/theory workload must exist below,
    //    and be rejected above
    println!(
        "\n{:>8} | {:>10} | {:>10} | {:>10}",
        "η", "theory", "γ", "∆"
    );
    let mut gamma_series = Vec::new();
    for i in 0..14 {
        let eta = eta_c * (0.2 + 0.1 * i as f64);
        match Experiment::spf(SpfSpec::exp(1.0, 0.5, 0.5, eta, eta))
            .run()
            .map(|r| r.spf().expect("spf workload").theory)
        {
            Ok(th) => {
                println!(
                    "{eta:>8.4} | {:>10} | {:>10.4} | {:>10.4}",
                    "ok", th.gamma, th.delta_bar
                );
                gamma_series.push((eta, th.gamma));
                assert!(eta <= eta_c + 1e-9, "theory must reject beyond (C)");
            }
            Err(_) => {
                println!(
                    "{eta:>8.4} | {:>10} | {:>10} | {:>10}",
                    "REJECTED", "—", "—"
                );
                assert!(eta > eta_c - 1e-4, "theory must accept below (C)");
            }
        }
    }

    // 2) operation: the extending adversary sustains ever-denser trains.
    // Feed a fast pulse train through a single η-involution channel and
    // measure the output duty cycle as η grows past the boundary.
    println!("\nextending adversary on a fast train (period 1.2, width 0.55):");
    println!("{:>8} | {:>12} | {:>12}", "η", "out pulses", "max duty");
    let input = SignalSpec::train((0..200).map(|i| (i as f64 * 1.2, 0.55)));
    let mut duty_series = Vec::new();
    for mult in [0.25, 0.5, 0.75, 1.0, 1.5, 2.5, 4.0] {
        let eta = eta_c * mult;
        let channel = ChannelSpec::eta_exp(1.0, 0.5, 0.5, eta, eta, NoiseSpec::Extending);
        let result = Experiment::channel(channel, input.clone()).run()?;
        let out = result.channel().expect("channel workload").output.clone();
        let stats = PulseStats::of(&out);
        // beyond (C) the adversary fuses the train into one giant pulse
        // covering (almost) the whole stimulus: report duty cycle 1
        let span = 200.0 * 1.2;
        let fused = stats.pulse_count() <= 3 && stats.max_up_time().unwrap_or(0.0) > 0.5 * span;
        let duty = if fused {
            1.0
        } else {
            stats.max_duty_cycle().unwrap_or(0.0)
        };
        println!(
            "{eta:>8.4} | {:>12} | {duty:>12.4}{}",
            stats.pulse_count(),
            if fused { "  (merged to solid 1)" } else { "" }
        );
        duty_series.push((eta, duty));
    }
    // duty cycle grows monotonically with adversary power, reaching 1
    // (train fused) beyond the boundary
    for w in duty_series.windows(2) {
        assert!(
            w[1].1 >= w[0].1 - 1e-9,
            "duty must grow with η: {duty_series:?}"
        );
    }
    assert!(
        duty_series.last().unwrap().1 >= 1.0 - 1e-9,
        "far beyond (C) the train must fuse: {duty_series:?}"
    );

    let path = write_csv(
        "ablation_constraint_c",
        "eta",
        "value",
        &[
            Series::new("gamma_theory", gamma_series),
            Series::new("max_duty_extending", duty_series),
        ],
    );
    println!("\nCSV written to {}", path.display());
    println!("ablation complete: (C) is exactly where the worst-case train structure is lost");
    Ok(())
}
