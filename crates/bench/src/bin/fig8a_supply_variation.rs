//! Fig. 8a — deviation `D(T)` between involution-model prediction and
//! analog crossings under a ±1 % supply sine with random phase, with the
//! admissible η-band.
//!
//! Paper shape: δ↓ and δ↑ clouds straddle zero; the band covers the
//! small-`T` region; δ↑ is flatter than δ↓ (the supply barely affects
//! the edge whose driving transistor is closing).
//!
//! The characterization and every per-phase deviation sweep are
//! declarative [`Experiment`]s; the per-phase specs differ only in the
//! supply's phase field, so the whole figure is a list of specs.
//!
//! Run with `cargo run --release -p ivl_bench --bin fig8a_supply_variation`.
//! Set `IVL_FAST_FIGS=1` for a reduced sweep (fewer widths and phases)
//! that exercises the whole parallel pipeline in a couple of seconds —
//! CI runs it on every push.

use faithful::{
    AnalogSpec, AnalogTask, Experiment, IntegratorSpec, Orientation, ReferenceSpec, SupplySpec,
    SweepSpec,
};
use ivl_bench::{ascii_plot, banner, fast_figs, write_csv, Series};
use ivl_core::delay::fit::fit_exp_channel;
use ivl_core::noise::EtaBounds;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner(
        "Fig. 8a",
        "D(T) under ±1 % V_DD sine (random phase) with the η-band",
    );
    let fast = fast_figs();
    let mut sweep = if fast {
        println!("IVL_FAST_FIGS=1: reduced sweep (12 widths, 3 phases)");
        SweepSpec::default().with_widths((0..12).map(|i| 14.0 + 10.0 * f64::from(i)))
    } else {
        SweepSpec::default()
    };
    // A/B escape hatch for perf regression runs: IVL_FORCE_RK4=1 pins
    // the original dense fixed-step pipeline
    if ivl_bench::env_flag("IVL_FORCE_RK4") {
        println!("IVL_FORCE_RK4=1: dense fixed-step RK4 pipeline");
        sweep.integrator = IntegratorSpec::Rk4;
    }
    let phases = if fast { 3 } else { 6 };

    let result =
        Experiment::analog(AnalogSpec::new(7, AnalogTask::Characterize).with_sweep(sweep.clone()))
            .run()?;
    let (up, down) = result
        .analog()
        .expect("analog workload")
        .characterization()
        .expect("characterize task");
    let reference = ivl_analog::characterize::to_empirical(up, down)?;
    let ups: Vec<(f64, f64)> = up.iter().map(|s| (s.offset, s.delay)).collect();
    let downs: Vec<(f64, f64)> = down.iter().map(|s| (s.offset, s.delay)).collect();
    let fitted = fit_exp_channel(&ups, &downs, None)?.channel;

    let eta_plus = 0.3;
    let eta_minus = EtaBounds::max_minus_for_plus(eta_plus, &fitted)
        .expect("eta_plus small enough for (C)")
        * 0.999;
    println!("η-band from constraint (C): [−{eta_minus:.3}, +{eta_plus:.3}] ps");

    let mut rng = StdRng::seed_from_u64(2018);
    let mut d_up = Vec::new();
    let mut d_down = Vec::new();
    // predictions are only meaningful inside the characterized T range;
    // below it the polyline extrapolates and D measures nothing physical
    let (up_lo, _) = reference.up_range();
    let (down_lo, _) = reference.down_range();
    for _ in 0..phases {
        let phase = rng.gen_range(0.0..360.0);
        let spec = AnalogSpec::new(
            7,
            AnalogTask::Deviations {
                // the one characterization above, embedded as data —
                // every per-phase spec reuses it instead of re-measuring
                reference: ReferenceSpec::empirical(up, down),
                orientation: Orientation::Both,
            },
        )
        .with_supply(SupplySpec::Sine {
            nominal: 1.0,
            amplitude: 0.01,
            period: 120.0,
            phase,
        })
        .with_sweep(sweep.clone());
        let result = Experiment::analog(spec).run()?;
        for s in result
            .analog()
            .expect("analog workload")
            .deviations()
            .expect("deviations task")
        {
            match s.edge {
                ivl_core::Edge::Rising if s.offset >= up_lo => {
                    d_up.push((s.offset, s.deviation));
                }
                ivl_core::Edge::Falling if s.offset >= down_lo => {
                    d_down.push((s.offset, s.deviation));
                }
                _ => {}
            }
        }
    }
    let t_max = d_up
        .iter()
        .chain(&d_down)
        .map(|p| p.0)
        .fold(f64::MIN, f64::max);
    let series = vec![
        Series::new("delta_down", d_down.clone()),
        Series::new("delta_up", d_up.clone()),
        Series::new("eta_hi", vec![(0.0, eta_plus), (t_max, eta_plus)]),
        Series::new("eta_lo", vec![(0.0, -eta_minus), (t_max, -eta_minus)]),
    ];
    println!("\n{}", ascii_plot(&series, 72, 18));
    let path = write_csv("fig8a_supply_variation", "T_ps", "D_ps", &series);
    println!("CSV written to {}", path.display());

    let band = EtaBounds::new(eta_minus, eta_plus)?;
    let covered = |v: &[(f64, f64)]| v.iter().filter(|p| band.contains(p.1)).count();
    println!(
        "coverage: δ↓ {}/{}   δ↑ {}/{}",
        covered(&d_down),
        d_down.len(),
        covered(&d_up),
        d_up.len()
    );
    // headline shape: the combined cloud straddles zero (the random sine
    // phase swings the delay both ways) and stays in the few-ps range;
    // as the paper notes, one edge reacts much less than the other
    // because its driving transistor is already closing.
    let combined: Vec<f64> = d_up.iter().chain(&d_down).map(|p| p.1).collect();
    assert!(combined.iter().any(|&d| d > 0.0) && combined.iter().any(|&d| d < 0.0));
    assert!(combined.iter().all(|&d| d.abs() < 5.0));
    let spread = |v: &[(f64, f64)]| {
        v.iter().map(|p| p.1).fold(f64::MIN, f64::max)
            - v.iter().map(|p| p.1).fold(f64::MAX, f64::min)
    };
    println!(
        "edge sensitivity: spread(δ↓) = {:.3} ps, spread(δ↑) = {:.3} ps",
        spread(&d_down),
        spread(&d_up)
    );
    println!("shape check passed: zero-straddling few-ps cloud, band covers the bulk");
    Ok(())
}
