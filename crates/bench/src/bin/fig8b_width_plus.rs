//! Fig. 8b — deviation `D(T)` for a chain with 10 % *wider* transistors
//! against the nominal delay model.
//!
//! Paper shape: the wider (faster) circuit switches earlier than the
//! nominal model predicts, so the whole cloud sits *below* zero and
//! eventually leaves the η-band as `T` grows.
//!
//! Run with `cargo run --release -p ivl_bench --bin fig8b_width_plus`.

use ivl_bench::banner;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner(
        "Fig. 8b",
        "D(T) for +10 % transistor width — one-sided negative deviations",
    );
    ivl_bench::width::run_width_experiment("fig8b_width_plus", 1.1, true)
}
