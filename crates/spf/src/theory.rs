//! Analytic quantities of the faithfulness proof (Section IV).

use ivl_core::delay::DelayPair;
use ivl_core::noise::EtaBounds;

use crate::error::Error;

/// The closed set of quantities appearing in Lemmas 1–8 and Theorem 9,
/// computed for a delay pair and η bounds satisfying constraint (C).
///
/// All fields are public read-only data; construct via
/// [`SpfTheory::compute`].
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub struct SpfTheory {
    /// `δ_min` of the delay pair (Lemma 1).
    pub delta_min: f64,
    /// `η⁻` of the bounds used.
    pub eta_minus: f64,
    /// `η⁺` of the bounds used.
    pub eta_plus: f64,
    /// The smallest positive fixed point `τ` of
    /// `δ↓(η⁺ − τ) + δ↑(−η⁻ − τ) = τ` (Lemma 5). Equals the worst-case
    /// period `P`.
    pub tau: f64,
    /// Worst-case self-repeating up-time `∆ = δ↓(η⁺ − τ)` (Lemma 5);
    /// an upper bound on every pulse of an infinite train, with
    /// `∆ < δ_min`.
    pub delta_bar: f64,
    /// Worst-case period `P = τ`; `P − ∆` lower-bounds every down-time.
    pub period: f64,
    /// Worst-case duty cycle `γ = ∆/P < 1` (Lemma 6).
    pub gamma: f64,
    /// Lemma 8 threshold `∆̃₀`: input pulses longer than this resolve to
    /// a stable 1.
    pub delta0_tilde: f64,
    /// Growth ratio `a = 1 + δ′↑(0) > 1` of Lemma 7.
    pub growth: f64,
    /// Lemma 4 bound: input pulses with `∆₀ ≤ δ↑∞ − δ_min − η⁺ − η⁻`
    /// are filtered by the feedback channel.
    pub filter_bound: f64,
    /// Lemma 3 bound: input pulses with `∆₀ ≥ δ↑∞ + η⁺` lock the loop.
    pub lock_bound: f64,
}

impl SpfTheory {
    /// Computes all quantities for `delay` and `bounds`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ConstraintCViolated`] if constraint (C) fails and
    /// [`Error::Solver`] if a fixed-point bracket cannot be established
    /// (which constraint (C) rules out for exact involution pairs).
    pub fn compute<D: DelayPair + ?Sized>(delay: &D, bounds: EtaBounds) -> Result<Self, Error> {
        let delta_min = delay.delta_min();
        let (eta_minus, eta_plus) = (bounds.minus(), bounds.plus());
        let slack = delay.delta_down(-eta_plus) - delta_min - (eta_plus + eta_minus);
        if slack <= 0.0 {
            return Err(Error::ConstraintCViolated {
                minus: eta_minus,
                plus: eta_plus,
                slack,
            });
        }

        // τ: root of h(τ) = δ↓(η⁺−τ) + δ↑(−η⁻−τ) − τ, strictly
        // decreasing on (τ0, τ1) with h(τ0) > 0 under (C) and h(τ1) = −∞.
        let h =
            |tau: f64| delay.delta_down(eta_plus - tau) + delay.delta_up(-eta_minus - tau) - tau;
        let tau0 = eta_plus + delta_min;
        let tau1 = (delay.delta_down_inf() - eta_minus).min(delay.delta_up_inf() + eta_plus);
        let tau = bisect_decreasing(h, tau0, tau1).ok_or(Error::Solver {
            what: "tau: fixed point of eq. (6)",
        })?;

        let delta_bar = delay.delta_down(eta_plus - tau);
        let period = tau;
        let gamma = delta_bar / period;
        let growth = 1.0 + delay.d_delta_up(0.0);
        let up_inf = delay.delta_up_inf();
        let filter_bound = up_inf - delta_min - eta_plus - eta_minus;
        let lock_bound = up_inf + eta_plus;

        // ∆̃₀: root of g(∆₀) = ∆ with g increasing (Lemma 8), where
        // g(∆₀) = δ↓(∆₀ − η⁺ − δ↑∞) + ∆₀ − η⁻ − η⁺ − δ↑∞ is the width of
        // the first feedback pulse under the worst-case adversary.
        let g =
            |d0: f64| delay.delta_down(d0 - eta_plus - up_inf) + d0 - eta_minus - eta_plus - up_inf;
        let lo = eta_plus + up_inf - delta_min;
        let hi = eta_minus + eta_plus + up_inf;
        let delta0_tilde =
            bisect_increasing(|x| g(x) - delta_bar, lo, hi).ok_or(Error::Solver {
                what: "delta0_tilde: threshold of Lemma 8",
            })?;

        Ok(SpfTheory {
            delta_min,
            eta_minus,
            eta_plus,
            tau,
            delta_bar,
            period,
            gamma,
            delta0_tilde,
            growth,
            filter_bound,
            lock_bound,
        })
    }

    /// The worst-case first feedback pulse `∆₁ = g(∆₀)` for an input
    /// pulse of width `delta0` (Lemma 8), or `None` if it cancels.
    #[must_use]
    pub fn first_pulse<D: DelayPair + ?Sized>(&self, delay: &D, delta0: f64) -> Option<f64> {
        let up_inf = delay.delta_up_inf();
        let d1 = delay.delta_down(delta0 - self.eta_plus - up_inf) + delta0
            - self.eta_minus
            - self.eta_plus
            - up_inf;
        (d1.is_finite() && d1 > 0.0).then_some(d1)
    }

    /// Upper bound on the number of feedback pulses before stabilization
    /// for `∆₀ > ∆̃₀`: on the order of `log_a(1/(∆₀ − ∆̃₀))` plus the
    /// pulses needed to reach the lock bound (Theorem 9).
    #[must_use]
    pub fn stabilization_pulse_bound(&self, delta0: f64) -> Option<f64> {
        if delta0 <= self.delta0_tilde {
            return None;
        }
        let gap = delta0 - self.delta0_tilde;
        // pulses to grow the deviation from `gap` to the full lock bound
        let n = ((self.lock_bound / gap).ln() / self.growth.ln()).max(0.0);
        Some(n + 1.0)
    }

    /// Validates the inequality chain asserted by Lemma 5:
    /// `0 < η⁺ + δ_min < τ < min(−η⁻ + δ↓∞, η⁺ + δ↑∞)` and `∆ < δ_min`.
    #[must_use]
    pub fn satisfies_lemma5_inequalities<D: DelayPair + ?Sized>(&self, delay: &D) -> bool {
        let tau1 =
            (delay.delta_down_inf() - self.eta_minus).min(delay.delta_up_inf() + self.eta_plus);
        0.0 < self.eta_plus + self.delta_min
            && self.eta_plus + self.delta_min < self.tau
            && self.tau < tau1
            && self.delta_bar < self.delta_min
    }
}

/// Bisects a strictly decreasing function for its root in `(lo, hi)`.
fn bisect_decreasing<F: Fn(f64) -> f64>(f: F, mut lo: f64, mut hi: f64) -> Option<f64> {
    // bracket checks; partial_cmp makes the NaN → None behaviour explicit
    use std::cmp::Ordering::{Greater, Less};
    if lo.partial_cmp(&hi) != Some(Less) || f(lo).partial_cmp(&0.0) != Some(Greater) {
        return None;
    }
    // f(hi) may be −∞; that is a valid bracket
    if f(hi).partial_cmp(&0.0) != Some(Less) {
        return None;
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if mid <= lo || mid >= hi {
            break;
        }
        if f(mid) > 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(0.5 * (lo + hi))
}

/// Bisects a strictly increasing function for its root in `(lo, hi)`.
fn bisect_increasing<F: Fn(f64) -> f64>(f: F, lo: f64, hi: f64) -> Option<f64> {
    bisect_decreasing(|x| -f(x), lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivl_core::delay::{DelayPair, ExpChannel, RationalPair};

    fn exp() -> ExpChannel {
        ExpChannel::new(1.0, 0.5, 0.5).unwrap()
    }

    #[test]
    fn computes_for_zero_eta() {
        // η = 0 degenerates to the DATE'15 singular pulse train
        let d = exp();
        let th = SpfTheory::compute(&d, EtaBounds::zero()).unwrap();
        // τ solves δ↓(−τ) + δ↑(−τ) = τ; for the symmetric channel
        // 2δ(−τ) = τ, and ∆ = δ↓(−τ) = τ/2 → duty cycle exactly ½
        assert!((th.gamma - 0.5).abs() < 1e-9, "gamma = {}", th.gamma);
        assert!((th.delta_bar - th.tau / 2.0).abs() < 1e-9);
        assert!(th.satisfies_lemma5_inequalities(&d));
    }

    #[test]
    fn fixed_point_satisfies_equation_6() {
        let d = exp();
        let b = EtaBounds::new(0.03, 0.05).unwrap();
        let th = SpfTheory::compute(&d, b).unwrap();
        let lhs = d.delta_down(b.plus() - th.tau) + d.delta_up(-b.minus() - th.tau);
        assert!((lhs - th.tau).abs() < 1e-9, "h(tau) != 0");
        // and ∆ is the fixed point of the worst-case map f (eq. (2))
        let f = |x: f64| {
            d.delta_down(x - b.plus() - d.delta_up(-x)) + x - b.minus() - b.plus() - d.delta_up(-x)
        };
        assert!((f(th.delta_bar) - th.delta_bar).abs() < 1e-9);
    }

    #[test]
    fn lemma5_inequalities_hold_across_parameterizations() {
        for (tau, tp, vth) in [(1.0, 0.5, 0.5), (0.3, 0.1, 0.4), (2.5, 1.0, 0.6)] {
            let d = ExpChannel::new(tau, tp, vth).unwrap();
            for eta in [0.0, 0.01, 0.05] {
                let b = EtaBounds::new(eta, eta).unwrap();
                if !b.satisfies_constraint_c(&d) {
                    continue;
                }
                let th = SpfTheory::compute(&d, b).unwrap();
                assert!(
                    th.satisfies_lemma5_inequalities(&d),
                    "({tau},{tp},{vth}) eta={eta}: {th:?}"
                );
                assert!(th.gamma < 1.0);
                assert!(
                    th.gamma <= th.delta_min / (th.delta_min + eta) + 1e-9,
                    "Lemma 6 refinement"
                );
                assert!(th.growth > 1.0);
            }
        }
    }

    #[test]
    fn constraint_c_violation_is_rejected() {
        let d = exp();
        let b = EtaBounds::new(1.0, 1.0).unwrap();
        assert!(matches!(
            SpfTheory::compute(&d, b),
            Err(Error::ConstraintCViolated { .. })
        ));
    }

    #[test]
    fn eta_grows_delta_bar_but_keeps_it_below_delta_min() {
        // Larger adversary power *lowers* the worst-case map f, and since
        // the fixed point is expanding (f′ > 1, Lemma 7), the
        // self-sustaining pulse width ∆ moves up with η — yet stays below
        // δ_min (Lemma 5).
        let d = exp();
        let th0 = SpfTheory::compute(&d, EtaBounds::zero()).unwrap();
        let th1 = SpfTheory::compute(&d, EtaBounds::new(0.02, 0.02).unwrap()).unwrap();
        let th2 = SpfTheory::compute(&d, EtaBounds::new(0.05, 0.05).unwrap()).unwrap();
        assert!(th1.delta_bar > th0.delta_bar);
        assert!(th2.delta_bar > th1.delta_bar);
        for th in [th0, th1, th2] {
            assert!(th.delta_bar < th.delta_min);
        }
        // the metastable window of Theorem 9 widens with η
        assert!(th2.lock_bound - th2.filter_bound > th0.lock_bound - th0.filter_bound);
    }

    #[test]
    fn delta0_tilde_is_a_g_root_and_orders_correctly() {
        let d = exp();
        let b = EtaBounds::new(0.02, 0.03).unwrap();
        let th = SpfTheory::compute(&d, b).unwrap();
        // g(∆̃₀) = ∆
        let first = th.first_pulse(&d, th.delta0_tilde).unwrap();
        assert!((first - th.delta_bar).abs() < 1e-8);
        // ordering: filter bound < ∆̃₀ < lock bound
        assert!(th.filter_bound < th.delta0_tilde);
        assert!(th.delta0_tilde < th.lock_bound);
    }

    #[test]
    fn first_pulse_none_below_filter_bound() {
        let d = exp();
        let b = EtaBounds::new(0.02, 0.02).unwrap();
        let th = SpfTheory::compute(&d, b).unwrap();
        assert!(th.first_pulse(&d, th.filter_bound * 0.9).is_none());
        assert!(th.first_pulse(&d, th.delta0_tilde * 1.05).is_some());
    }

    #[test]
    fn stabilization_bound_shrinks_with_distance() {
        let d = exp();
        let th = SpfTheory::compute(&d, EtaBounds::zero()).unwrap();
        let near = th
            .stabilization_pulse_bound(th.delta0_tilde + 1e-6)
            .unwrap();
        let far = th.stabilization_pulse_bound(th.delta0_tilde + 0.1).unwrap();
        assert!(near > far, "{near} vs {far}");
        assert!(th.stabilization_pulse_bound(th.delta0_tilde).is_none());
    }

    #[test]
    fn works_with_rational_pair() {
        let d = RationalPair::new(2.0, 1.0, 2.0).unwrap();
        let b = EtaBounds::new(0.02, 0.02).unwrap();
        assert!(b.satisfies_constraint_c(&d));
        let th = SpfTheory::compute(&d, b).unwrap();
        assert!(th.satisfies_lemma5_inequalities(&d));
        assert!(th.delta_bar > 0.0);
    }

    #[test]
    fn asymmetric_eta_bounds() {
        let d = exp();
        let only_plus = SpfTheory::compute(&d, EtaBounds::new(0.0, 0.08).unwrap()).unwrap();
        let only_minus = SpfTheory::compute(&d, EtaBounds::new(0.08, 0.0).unwrap()).unwrap();
        assert!(only_plus.satisfies_lemma5_inequalities(&d));
        assert!(only_minus.satisfies_lemma5_inequalities(&d));
        assert_ne!(only_plus.tau, only_minus.tau);
    }
}
