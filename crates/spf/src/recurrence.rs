//! The worst-case pulse-train recurrence of Lemma 5 (Eq. (2)).
//!
//! In the fed-back OR of Fig. 5, the `n`-th feedback pulse width under
//! the worst-case adversary (rising maximally late, falling maximally
//! early) satisfies
//!
//! ```text
//! ∆_n = f(∆_{n−1}) = δ↓(∆_{n−1} − η⁺ − δ↑(−∆_{n−1}))
//!                    + ∆_{n−1} − η⁻ − η⁺ − δ↑(−∆_{n−1})
//! ```
//!
//! with the expanding fixed point `∆` computed by
//! [`SpfTheory`]. Iterating `f` classifies the
//! fate of the loop for a given input pulse.

use ivl_core::delay::DelayPair;
use ivl_core::noise::EtaBounds;

use crate::theory::SpfTheory;

/// The fate of the OR-loop pulse train for a given input pulse width.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PulseTrainFate {
    /// The train died out (a pulse cancelled); the loop output resolves
    /// to constant 0. `pulses` counts the feedback pulses produced.
    Dies {
        /// Number of feedback pulses before cancellation.
        pulses: usize,
    },
    /// A pulse reached the lock bound `δ↑∞ + η⁺`; the loop output
    /// resolves to constant 1.
    Locks {
        /// Number of feedback pulses before locking.
        pulses: usize,
    },
    /// Neither happened within the iteration budget — the metastable
    /// regime near the fixed point.
    Oscillating {
        /// Number of iterations observed.
        observed: usize,
        /// The last pulse width.
        last_width: f64,
    },
}

impl PulseTrainFate {
    /// `true` for [`PulseTrainFate::Locks`].
    #[must_use]
    pub fn locks(&self) -> bool {
        matches!(self, PulseTrainFate::Locks { .. })
    }

    /// `true` for [`PulseTrainFate::Dies`].
    #[must_use]
    pub fn dies(&self) -> bool {
        matches!(self, PulseTrainFate::Dies { .. })
    }
}

/// Iterator-style driver for the worst-case recurrence.
#[derive(Debug, Clone)]
pub struct WorstCaseRecurrence<D> {
    delay: D,
    bounds: EtaBounds,
    lock_bound: f64,
}

impl<D: DelayPair> WorstCaseRecurrence<D> {
    /// Creates the recurrence for a delay pair and η bounds.
    #[must_use]
    pub fn new(delay: D, bounds: EtaBounds) -> Self {
        let lock_bound = delay.delta_up_inf() + bounds.plus();
        WorstCaseRecurrence {
            delay,
            bounds,
            lock_bound,
        }
    }

    /// The lock bound `δ↑∞ + η⁺` (Lemma 3).
    #[must_use]
    pub fn lock_bound(&self) -> f64 {
        self.lock_bound
    }

    /// The first feedback pulse `∆₁` produced by an input pulse of width
    /// `delta0` (the map `g` of Lemma 8), or `None` if it cancels.
    #[must_use]
    pub fn first_pulse(&self, delta0: f64) -> Option<f64> {
        let up_inf = self.delay.delta_up_inf();
        let d1 = self.delay.delta_down(delta0 - self.bounds.plus() - up_inf) + delta0
            - self.bounds.minus()
            - self.bounds.plus()
            - up_inf;
        (d1.is_finite() && d1 > 0.0).then_some(d1)
    }

    /// One application of the worst-case map `f` (Eq. (2)), or `None` if
    /// the pulse cancels.
    #[must_use]
    pub fn next_pulse(&self, delta: f64) -> Option<f64> {
        let du = self.delay.delta_up(-delta);
        if !du.is_finite() {
            // ∆ ≥ δ↓∞: the rising edge's delay leaves the domain, which
            // only happens far above the lock bound
            return Some(f64::INFINITY);
        }
        let arg = delta - self.bounds.plus() - du;
        let dn = self.delay.delta_down(arg) + delta - self.bounds.minus() - self.bounds.plus() - du;
        (dn.is_finite() && dn > 0.0).then_some(dn)
    }

    /// Iterates the recurrence from an *input* pulse of width `delta0`,
    /// classifying the fate within `max_pulses` iterations.
    #[must_use]
    pub fn fate(&self, delta0: f64, max_pulses: usize) -> PulseTrainFate {
        if delta0 >= self.lock_bound {
            return PulseTrainFate::Locks { pulses: 0 };
        }
        let Some(mut width) = self.first_pulse(delta0) else {
            return PulseTrainFate::Dies { pulses: 0 };
        };
        for n in 1..=max_pulses {
            if width >= self.lock_bound {
                return PulseTrainFate::Locks { pulses: n };
            }
            match self.next_pulse(width) {
                Some(next) => width = next,
                None => return PulseTrainFate::Dies { pulses: n },
            }
        }
        PulseTrainFate::Oscillating {
            observed: max_pulses,
            last_width: width,
        }
    }

    /// The full worst-case pulse-width sequence `∆₁, ∆₂, …` (up to
    /// `max_pulses`), for inspection and plotting.
    #[must_use]
    pub fn trajectory(&self, delta0: f64, max_pulses: usize) -> Vec<f64> {
        let mut out = Vec::new();
        let Some(mut width) = self.first_pulse(delta0) else {
            return out;
        };
        out.push(width);
        for _ in 1..max_pulses {
            match self.next_pulse(width) {
                Some(next) if next.is_finite() => {
                    width = next;
                    out.push(width);
                    if width >= self.lock_bound {
                        break;
                    }
                }
                _ => break,
            }
        }
        out
    }

    /// The theory bundle for these parameters.
    ///
    /// # Errors
    ///
    /// As [`SpfTheory::compute`].
    pub fn theory(&self) -> Result<SpfTheory, crate::error::Error> {
        SpfTheory::compute(&self.delay, self.bounds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivl_core::delay::ExpChannel;

    fn rec(eta: f64) -> WorstCaseRecurrence<ExpChannel> {
        WorstCaseRecurrence::new(
            ExpChannel::new(1.0, 0.5, 0.5).unwrap(),
            EtaBounds::new(eta, eta).unwrap(),
        )
    }

    #[test]
    fn three_regimes_of_theorem_9() {
        let r = rec(0.02);
        let th = r.theory().unwrap();
        // far below the filter bound: dies immediately
        assert_eq!(
            r.fate(th.filter_bound * 0.5, 1000),
            PulseTrainFate::Dies { pulses: 0 }
        );
        // far above the lock bound: locks immediately
        assert_eq!(
            r.fate(th.lock_bound + 1.0, 1000),
            PulseTrainFate::Locks { pulses: 0 }
        );
        // above ∆̃₀ but below lock: locks after finitely many pulses
        let fate = r.fate(th.delta0_tilde + 0.05, 1000);
        assert!(fate.locks(), "{fate:?}");
        // below ∆̃₀: dies after finitely many pulses
        let fate = r.fate(th.delta0_tilde - 0.05, 1000);
        assert!(fate.dies(), "{fate:?}");
    }

    #[test]
    fn fixed_point_oscillates() {
        let r = rec(0.02);
        let th = r.theory().unwrap();
        // start the *feedback* width exactly at ∆: stays at ∆
        let next = r.next_pulse(th.delta_bar).unwrap();
        assert!((next - th.delta_bar).abs() < 1e-9);
        // an input pulse of width exactly ∆̃₀ stays near ∆ for many pulses
        let fate = r.fate(th.delta0_tilde, 50);
        if let PulseTrainFate::Oscillating { last_width, .. } = fate {
            assert!((last_width - th.delta_bar).abs() < 0.05, "{last_width}");
        }
        // (floating point may eventually tip it either way; both fates
        // are legitimate metastability resolutions)
    }

    #[test]
    fn growth_rate_matches_lemma_7() {
        // f(∆₁) − ∆ ≥ a (∆₁ − ∆) with a = 1 + δ′↑(0)
        let r = rec(0.03);
        let th = r.theory().unwrap();
        for gap in [1e-4, 1e-3, 1e-2] {
            let d1 = th.delta_bar + gap;
            let d2 = r.next_pulse(d1).unwrap();
            assert!(
                d2 - th.delta_bar >= th.growth * gap - 1e-9,
                "gap {gap}: {} < {}",
                d2 - th.delta_bar,
                th.growth * gap
            );
        }
    }

    #[test]
    fn stabilization_time_is_logarithmic() {
        // pulses-to-lock grows like log(1/(∆0 − ∆̃0))
        let r = rec(0.02);
        let th = r.theory().unwrap();
        let mut counts = Vec::new();
        for exp in 1..=6 {
            let gap = 10f64.powi(-exp);
            match r.fate(th.delta0_tilde + gap, 10_000) {
                PulseTrainFate::Locks { pulses } => counts.push(pulses as f64),
                other => panic!("expected lock for gap {gap}: {other:?}"),
            }
        }
        // roughly linear in the exponent: each decade adds a bounded
        // number of pulses
        let diffs: Vec<f64> = counts.windows(2).map(|w| w[1] - w[0]).collect();
        for d in &diffs {
            assert!(*d >= 0.0, "more pulses for smaller gap: {counts:?}");
            assert!(*d < 40.0, "log-law violated: {counts:?}");
        }
        // and the bound from theory dominates the observed count
        for (exp, count) in (1..=6).zip(&counts) {
            let gap = 10f64.powi(-exp);
            let bound = th.stabilization_pulse_bound(th.delta0_tilde + gap).unwrap();
            // bound is asymptotic (order-of); allow a constant factor
            assert!(
                *count <= 3.0 * bound + 10.0,
                "gap {gap}: count {count} vs bound {bound}"
            );
        }
    }

    #[test]
    fn trajectory_is_monotone_away_from_fixed_point() {
        let r = rec(0.02);
        let th = r.theory().unwrap();
        let up = r.trajectory(th.delta0_tilde + 0.01, 100);
        for w in up.windows(2) {
            assert!(w[1] > w[0], "diverging upward: {up:?}");
        }
        let down = r.trajectory(th.delta0_tilde - 0.01, 100);
        for w in down.windows(2) {
            assert!(w[1] < w[0], "diverging downward: {down:?}");
        }
    }

    #[test]
    fn zero_eta_reduces_to_deterministic_model() {
        let r = rec(0.0);
        let th = r.theory().unwrap();
        // the singular point: filter and lock regions touch the
        // oscillation window (δ↑∞ − δmin, δ↑∞)
        assert!((th.filter_bound - (r.delay.delta_up_inf() - th.delta_min)).abs() < 1e-12);
        assert!((th.lock_bound - r.delay.delta_up_inf()).abs() < 1e-12);
        let fate = r.fate(th.delta0_tilde + 1e-3, 1000);
        assert!(fate.locks());
    }

    #[test]
    fn lock_bound_accessor() {
        let r = rec(0.01);
        assert!((r.lock_bound() - (r.delay.delta_up_inf() + 0.01)).abs() < 1e-12);
    }
}
