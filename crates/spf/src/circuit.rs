//! The SPF circuit of Fig. 5: a fed-back OR gate with an η-involution
//! channel, followed by a high-threshold exp-channel buffer.

use std::sync::Mutex;

use ivl_circuit::{CircuitBuilder, EdgeId, GateKind, NodeId, Simulator};
use ivl_core::channel::{EtaInvolutionChannel, InvolutionChannel};
use ivl_core::delay::{DelayPair, ExpChannel};
use ivl_core::noise::{EtaBounds, NoiseSource, ZeroNoise};
use ivl_core::{Bit, Signal};

use crate::error::Error;
use crate::theory::SpfTheory;

/// The unbounded-SPF circuit of Fig. 5.
///
/// Topology: input port `i` → OR pin 0; OR output fed back through the
/// η-involution channel `c` to OR pin 1 (the storage loop); OR output
/// also drives the high-threshold buffer `HT` (a deterministic
/// involution channel over a high-`V_th` exp-channel) to the output port
/// `o`.
///
/// Construct with [`SpfCircuit::new`] (explicit buffer) or
/// [`SpfCircuit::dimensioned`] (buffer chosen per Lemmas 10/11);
/// then [`simulate`](SpfCircuit::simulate) with any adversary.
///
/// ```
/// use ivl_core::delay::ExpChannel;
/// use ivl_core::noise::{EtaBounds, WorstCaseAdversary};
/// use ivl_core::Signal;
/// use ivl_spf::SpfCircuit;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let delay = ExpChannel::new(1.0, 0.5, 0.5)?;
/// let spf = SpfCircuit::dimensioned(delay, EtaBounds::new(0.02, 0.02)?)?;
/// // a long pulse latches the loop; the output eventually rises
/// let run = spf.simulate(WorstCaseAdversary, &Signal::pulse(0.0, 3.0)?, 200.0)?;
/// assert_eq!(run.output.len(), 1);
/// # Ok(())
/// # }
/// ```
pub struct SpfCircuit<D> {
    delay: D,
    bounds: EtaBounds,
    buffer: ExpChannel,
    /// Lazily built simulator over the Fig. 5 netlist, reused across
    /// [`simulate`](SpfCircuit::simulate) calls: the netlist, name table
    /// and per-run state are constructed once; only the feedback
    /// channel (which carries the per-call adversary) is swapped per
    /// run. Clones start with an empty cache.
    cache: Mutex<Option<CachedSim>>,
}

/// The cached simulator plus the node/edge handles `simulate` reads.
struct CachedSim {
    sim: Simulator,
    or_id: NodeId,
    feedback: EdgeId,
}

impl<D: std::fmt::Debug> std::fmt::Debug for SpfCircuit<D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpfCircuit")
            .field("delay", &self.delay)
            .field("bounds", &self.bounds)
            .field("buffer", &self.buffer)
            .finish_non_exhaustive()
    }
}

impl<D: Clone> Clone for SpfCircuit<D> {
    fn clone(&self) -> Self {
        SpfCircuit {
            delay: self.delay.clone(),
            bounds: self.bounds,
            buffer: self.buffer.clone(),
            cache: Mutex::new(None),
        }
    }
}

/// The recorded signals of one SPF circuit run.
#[derive(Debug, Clone)]
pub struct SpfRun {
    /// The OR gate's output (the storage-loop signal analysed by
    /// Theorem 9).
    pub or_signal: Signal,
    /// The feedback channel's output (OR pin 1).
    pub feedback_signal: Signal,
    /// The circuit output `o` (after the high-threshold buffer).
    pub output: Signal,
    /// Number of simulation events processed.
    pub events: usize,
}

impl<D: DelayPair + Clone + Send + 'static> SpfCircuit<D> {
    /// Creates the circuit with an explicit high-threshold buffer.
    #[must_use]
    pub fn new(delay: D, bounds: EtaBounds, buffer: ExpChannel) -> Self {
        SpfCircuit {
            delay,
            bounds,
            buffer,
            cache: Mutex::new(None),
        }
    }

    /// Creates the circuit with a buffer dimensioned from the theory:
    /// the buffer's threshold is placed above the worst-case duty cycle
    /// `γ` (Lemma 11: for every `Θ, Γ < 1` a filtering exp-channel
    /// exists) and its time constant well above the worst-case period,
    /// so pulse trains bounded by Lemma 5 are mapped to zero.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ConstraintCViolated`] if the bounds violate (C).
    pub fn dimensioned(delay: D, bounds: EtaBounds) -> Result<Self, Error> {
        let theory = SpfTheory::compute(&delay, bounds)?;
        let buffer = dimension_buffer(&theory);
        Ok(SpfCircuit::new(delay, bounds, buffer))
    }

    /// The feedback channel's delay pair.
    #[must_use]
    pub fn delay_pair(&self) -> &D {
        &self.delay
    }

    /// The adversary interval.
    #[must_use]
    pub fn bounds(&self) -> EtaBounds {
        self.bounds
    }

    /// The high-threshold buffer's exp-channel.
    #[must_use]
    pub fn buffer(&self) -> &ExpChannel {
        &self.buffer
    }

    /// The theory bundle for the feedback parameters.
    ///
    /// # Errors
    ///
    /// As [`SpfTheory::compute`].
    pub fn theory(&self) -> Result<SpfTheory, Error> {
        SpfTheory::compute(&self.delay, self.bounds)
    }

    /// Builds the Fig. 5 netlist with a placeholder (zero-noise)
    /// feedback channel; `simulate` swaps the real adversary in per
    /// call.
    fn build_cached(&self) -> Result<CachedSim, Error> {
        let mut b = CircuitBuilder::new();
        let i = b.input("i");
        let or = b.gate("or", GateKind::Or, Bit::Zero);
        let o = b.output("o");
        b.connect_direct(i, or, 0)?;
        let feedback = b.connect(
            or,
            or,
            1,
            EtaInvolutionChannel::new(self.delay.clone(), self.bounds, ZeroNoise),
        )?;
        b.connect(or, o, 0, InvolutionChannel::new(self.buffer.clone()))?;
        let circuit = b.build()?;
        let or_id = circuit.node("or").expect("or gate exists");
        Ok(CachedSim {
            sim: Simulator::new(circuit),
            or_id,
            feedback,
        })
    }

    /// Runs `input` through the circuit under the given adversary until
    /// `horizon`.
    ///
    /// The netlist and simulator state are built once per `SpfCircuit`
    /// and reused across calls: only the feedback channel — which
    /// carries the per-call adversary — is swapped, a single box-slot
    /// write that leaves the `Arc`-shared topology untouched (no netlist
    /// re-clone). The recorded signals are returned by move, so repeated
    /// calls in a sweep pay for the event loop alone rather than
    /// rebuilding and copying.
    ///
    /// # Errors
    ///
    /// Propagates circuit construction and simulation errors.
    pub fn simulate<N>(&self, noise: N, input: &Signal, horizon: f64) -> Result<SpfRun, Error>
    where
        N: NoiseSource + Clone + Send + 'static,
    {
        let mut guard = self
            .cache
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let cached = match &mut *guard {
            Some(cached) => cached,
            none => none.insert(self.build_cached()?),
        };
        cached.sim.replace_channel(
            cached.feedback,
            Box::new(EtaInvolutionChannel::new(
                self.delay.clone(),
                self.bounds,
                noise,
            )),
        );
        cached.sim.set_input("i", input.clone())?;
        let mut run = cached.sim.run(horizon)?;
        Ok(SpfRun {
            or_signal: run.take_node_signal(cached.or_id),
            feedback_signal: run.take_edge_signal(cached.feedback),
            output: run.take_signal("o")?,
            events: run.processed_events(),
        })
    }
}

/// Chooses a high-threshold exp-channel filtering every pulse train with
/// duty cycle `≤ γ(1+ε)` and bounded pulses, per Lemmas 10/11.
///
/// Heuristic construction (verified empirically by the test suite and
/// the Theorem 12 integration tests): threshold midway between the
/// worst-case duty cycle and 1 (capped at 0.97), time constant an order
/// of magnitude above the worst-case period so per-pulse ripple stays
/// below the threshold margin.
#[must_use]
pub fn dimension_buffer(theory: &SpfTheory) -> ExpChannel {
    let v_th = (0.5 * (theory.gamma + 1.0)).clamp(0.55, 0.97);
    let tau = 10.0 * theory.period.max(theory.delta_min);
    let t_p = 0.1 * theory.delta_min;
    ExpChannel::new(tau, t_p, v_th).expect("positive parameters by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivl_core::noise::{UniformNoise, WorstCaseAdversary, ZeroNoise};
    use ivl_core::PulseStats;

    fn spf() -> SpfCircuit<ExpChannel> {
        SpfCircuit::dimensioned(
            ExpChannel::new(1.0, 0.5, 0.5).unwrap(),
            EtaBounds::new(0.02, 0.02).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn zero_input_zero_output_f2() {
        let run = spf().simulate(ZeroNoise, &Signal::zero(), 100.0).unwrap();
        assert!(run.or_signal.is_zero());
        assert!(run.output.is_zero());
    }

    #[test]
    fn long_pulse_latches_lemma_3() {
        let c = spf();
        let th = c.theory().unwrap();
        let run = c
            .simulate(
                WorstCaseAdversary,
                &Signal::pulse(0.0, th.lock_bound + 0.1).unwrap(),
                300.0,
            )
            .unwrap();
        // OR output: unique rising transition at time 0, no fall
        assert_eq!(run.or_signal.len(), 1, "{}", run.or_signal);
        assert_eq!(run.or_signal.transitions()[0].time, 0.0);
        assert_eq!(run.or_signal.final_value(), Bit::One);
        // circuit output: single eventual rising transition
        assert_eq!(run.output.len(), 1, "{}", run.output);
        assert_eq!(run.output.final_value(), Bit::One);
    }

    #[test]
    fn short_pulse_filtered_lemma_4() {
        let c = spf();
        let th = c.theory().unwrap();
        let run = c
            .simulate(
                WorstCaseAdversary,
                &Signal::pulse(0.0, th.filter_bound * 0.9).unwrap(),
                300.0,
            )
            .unwrap();
        // OR output contains only the input pulse
        assert_eq!(run.or_signal.len(), 2, "{}", run.or_signal);
        assert!(run.output.is_zero(), "{}", run.output);
    }

    #[test]
    fn worst_case_train_respects_lemma_5_bounds() {
        let c = spf();
        let th = c.theory().unwrap();
        // start near the metastable threshold to get a long train
        let run = c
            .simulate(
                WorstCaseAdversary,
                &Signal::pulse(0.0, th.delta0_tilde).unwrap(),
                400.0,
            )
            .unwrap();
        let stats = PulseStats::of(&run.or_signal);
        assert!(
            stats.pulse_count() >= 3,
            "need a real train: {}",
            run.or_signal
        );
        // Lemma 5: every feedback pulse (n ≥ 1, i.e. skip the input pulse
        // itself) has up-time ≤ ∆ and period ≥ P; Lemma 6: duty ≤ γ.
        let ups = stats.up_times();
        for &u in &ups[1..] {
            assert!(u <= th.delta_bar + 1e-9, "up {u} > ∆ {}", th.delta_bar);
        }
        for (i, &p) in stats.periods().iter().enumerate() {
            if i == 0 {
                continue;
            }
            assert!(p >= th.period - 1e-9, "period {p} < P {}", th.period);
        }
        for (i, &g) in stats.duty_cycles().iter().enumerate() {
            if i == 0 {
                continue;
            }
            assert!(g <= th.gamma + 1e-9, "duty {g} > γ {}", th.gamma);
        }
    }

    #[test]
    fn random_adversaries_always_yield_clean_outputs() {
        // F4 in action: under any adversary and any input width, the
        // output is either zero or a single rising transition
        let c = spf();
        let th = c.theory().unwrap();
        for seed in 0..10 {
            for frac in [0.3, 0.8, 0.95, 1.0, 1.05, 1.2, 2.0] {
                let w = th.delta0_tilde * frac;
                let run = c
                    .simulate(
                        UniformNoise::new(seed),
                        &Signal::pulse(0.0, w).unwrap(),
                        400.0,
                    )
                    .unwrap();
                assert!(
                    run.output.len() <= 1,
                    "seed {seed}, width {w}: output {}",
                    run.output
                );
                if run.output.len() == 1 {
                    assert_eq!(run.output.final_value(), Bit::One);
                }
            }
        }
    }

    #[test]
    fn recurrence_predicts_simulated_widths() {
        // the simulated worst-case feedback pulse widths must match the
        // recurrence of Eq. (2)
        let c = spf();
        let th = c.theory().unwrap();
        let d0 = th.delta0_tilde + 0.02;
        let run = c
            .simulate(WorstCaseAdversary, &Signal::pulse(0.0, d0).unwrap(), 400.0)
            .unwrap();
        let rec = crate::recurrence::WorstCaseRecurrence::new(c.delay_pair().clone(), c.bounds());
        let predicted = rec.trajectory(d0, 50);
        let stats = PulseStats::of(&run.or_signal);
        let simulated = stats.up_times();
        // simulated[0] is the input pulse itself (possibly extended by the
        // feedback); compare the subsequent train
        let n = predicted
            .len()
            .min(simulated.len().saturating_sub(1))
            .min(6);
        assert!(n >= 2, "need at least two comparable pulses");
        for k in 0..n {
            let sim_w = simulated[k + 1];
            let pred_w = predicted[k];
            assert!(
                (sim_w - pred_w).abs() < 1e-6,
                "pulse {k}: simulated {sim_w} vs predicted {pred_w}"
            );
        }
    }

    #[test]
    fn dimensioned_buffer_fields_are_sane() {
        let c = spf();
        let th = c.theory().unwrap();
        let buf = c.buffer();
        assert!(buf.v_th() > th.gamma);
        assert!(buf.tau() >= th.period);
        assert_eq!(c.bounds().plus(), 0.02);
        assert_eq!(c.delay_pair().t_p(), 0.5);
    }

    #[test]
    fn constraint_violation_propagates() {
        let res = SpfCircuit::dimensioned(
            ExpChannel::new(1.0, 0.5, 0.5).unwrap(),
            EtaBounds::new(2.0, 2.0).unwrap(),
        );
        assert!(matches!(res, Err(Error::ConstraintCViolated { .. })));
    }
}
