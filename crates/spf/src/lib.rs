//! # ivl-spf
//!
//! Short-Pulse Filtration (SPF) with η-involution channels: the theory
//! and circuit of Section IV of *"A Faithful Binary Circuit Model with
//! Adversarial Noise"* (DATE 2018).
//!
//! A circuit solves SPF if (Definition 2 of the paper):
//!
//! * **F1** it has exactly one input and one output port;
//! * **F2** a zero input produces a zero output;
//! * **F3** some input pulse produces a non-zero output;
//! * **F4** there is an `ε > 0` such that no input pulse ever produces an
//!   output pulse shorter than `ε`.
//!
//! The crate provides:
//!
//! * [`theory`] — the analytic quantities of Lemmas 1–8: `δ_min`, the
//!   worst-case fixed point `τ` of `δ↓(η⁺−τ) + δ↑(−η⁻−τ) = τ`, the
//!   pulse-train bounds `∆`, `P`, `γ`, the threshold `∆̃₀` and the growth
//!   ratio `a = 1 + δ′↑(0)`;
//! * [`recurrence`] — the worst-case pulse-train recurrence (Eq. (2))
//!   and its fate classification;
//! * [`circuit`] — the SPF circuit of Fig. 5 (fed-back OR with an
//!   η-involution channel plus a high-threshold exp-channel buffer),
//!   including automatic buffer dimensioning per Lemmas 10/11;
//! * [`verify`] — executable checks of F1–F4 over pulse and adversary
//!   batteries.
//!
//! ```
//! use ivl_core::delay::ExpChannel;
//! use ivl_core::noise::EtaBounds;
//! use ivl_spf::theory::SpfTheory;
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let delay = ExpChannel::new(1.0, 0.5, 0.5)?;
//! let bounds = EtaBounds::new(0.02, 0.02)?;
//! let th = SpfTheory::compute(&delay, bounds)?;
//! assert!(th.delta_bar < th.delta_min); // Lemma 5: ∆ < δ_min
//! assert!(th.gamma < 1.0);              // Lemma 6: γ < 1
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod circuit;
mod error;
pub mod latch;
pub mod recurrence;
pub mod theory;
pub mod verify;

pub use circuit::{dimension_buffer, SpfCircuit, SpfRun};
pub use error::Error;
pub use recurrence::{PulseTrainFate, WorstCaseRecurrence};
pub use theory::SpfTheory;
pub use verify::{verify_spf, LoopOutcome, SpfReport};
