//! A one-shot latch built from the SPF circuit.
//!
//! The paper (Section I, following Barros & Johnson) notes that SPF and
//! the *one-shot latch* — a latch whose enable performs a single up and
//! a single down transition — are mutually reducible, so faithfulness
//! w.r.t. SPF extends to one-shot latches. This module realizes the
//! SPF → latch direction as an executable circuit:
//!
//! ```text
//!  d ──┐
//!      AND ──channel──► (fed-back OR) ──HT──► q
//! en ──┘                   ▲    │
//!                          └─ η-channel (storage loop)
//! ```
//!
//! The AND of data and enable produces a pulse whose width is the
//! overlap of `d = 1` with the enable window; the SPF stage stores a
//! sufficiently long overlap as a stable 1 and filters a short one to a
//! stable 0 — and for marginal overlaps it may take arbitrarily long to
//! decide (metastability), but its output is always *clean*: zero or a
//! single rising transition (condition F4).

use ivl_circuit::{CircuitBuilder, GateKind, Simulator};
use ivl_core::channel::{EtaInvolutionChannel, InvolutionChannel};
use ivl_core::delay::{DelayPair, ExpChannel};
use ivl_core::noise::{EtaBounds, NoiseSource};
use ivl_core::{Bit, Signal};

use crate::circuit::dimension_buffer;
use crate::error::Error;
use crate::theory::SpfTheory;

/// A one-shot latch over η-involution channels.
///
/// ```
/// use ivl_core::delay::ExpChannel;
/// use ivl_core::noise::{EtaBounds, WorstCaseAdversary, ZeroNoise};
/// use ivl_core::Signal;
/// use ivl_spf::latch::OneShotLatch;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let latch = OneShotLatch::dimensioned(
///     ExpChannel::new(1.0, 0.5, 0.5)?,
///     EtaBounds::new(0.02, 0.02)?,
/// )?;
/// // data high across the whole enable window → captures 1
/// let d = Signal::pulse(0.0, 20.0)?;
/// let en = Signal::pulse(5.0, 10.0)?;
/// let run = latch.capture(ZeroNoise, WorstCaseAdversary, &d, &en, 200.0)?;
/// assert_eq!(run.q.len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct OneShotLatch<D> {
    delay: D,
    bounds: EtaBounds,
    buffer: ExpChannel,
}

/// Recorded signals of one latch capture.
#[derive(Debug, Clone)]
pub struct LatchRun {
    /// The latch output.
    pub q: Signal,
    /// The AND (overlap) pulse driving the storage stage.
    pub overlap: Signal,
    /// The storage loop (OR output).
    pub loop_signal: Signal,
}

impl<D: DelayPair + Clone + Send + 'static> OneShotLatch<D> {
    /// Creates a latch with an explicit high-threshold buffer.
    #[must_use]
    pub fn new(delay: D, bounds: EtaBounds, buffer: ExpChannel) -> Self {
        OneShotLatch {
            delay,
            bounds,
            buffer,
        }
    }

    /// Creates a latch with the buffer dimensioned per Lemmas 10/11.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ConstraintCViolated`] if the bounds violate (C).
    pub fn dimensioned(delay: D, bounds: EtaBounds) -> Result<Self, Error> {
        let theory = SpfTheory::compute(&delay, bounds)?;
        Ok(OneShotLatch::new(delay, bounds, dimension_buffer(&theory)))
    }

    /// The theory bundle of the storage loop.
    ///
    /// # Errors
    ///
    /// As [`SpfTheory::compute`].
    pub fn theory(&self) -> Result<SpfTheory, Error> {
        SpfTheory::compute(&self.delay, self.bounds)
    }

    /// Captures `d` under the one-shot enable `en`.
    ///
    /// `noise_in` drives the AND→OR channel, `noise_loop` the storage
    /// loop's feedback channel.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Sim`]/[`Error::Circuit`] on simulation problems,
    /// and [`Error::Core`] if `en` is not one-shot (more than one pulse).
    pub fn capture<N1, N2>(
        &self,
        noise_in: N1,
        noise_loop: N2,
        d: &Signal,
        en: &Signal,
        horizon: f64,
    ) -> Result<LatchRun, Error>
    where
        N1: NoiseSource + Clone + Send + 'static,
        N2: NoiseSource + Clone + Send + 'static,
    {
        if en.len() > 2 || en.initial() == Bit::One {
            return Err(Error::Core(ivl_core::Error::InvalidSampleData {
                reason: "enable must be one-shot: initial 0 with at most one pulse",
            }));
        }
        let mut b = CircuitBuilder::new();
        let d_in = b.input("d");
        let en_in = b.input("en");
        let and = b.gate("and", GateKind::And, Bit::Zero);
        let or = b.gate("or", GateKind::Or, Bit::Zero);
        let q = b.output("q");
        b.connect_direct(d_in, and, 0)?;
        b.connect_direct(en_in, and, 1)?;
        b.connect(
            and,
            or,
            0,
            EtaInvolutionChannel::new(self.delay.clone(), self.bounds, noise_in),
        )?;
        b.connect(
            or,
            or,
            1,
            EtaInvolutionChannel::new(self.delay.clone(), self.bounds, noise_loop),
        )?;
        b.connect(or, q, 0, InvolutionChannel::new(self.buffer.clone()))?;
        let circuit = b.build()?;
        let and_id = circuit.node("and").expect("and exists");
        let or_id = circuit.node("or").expect("or exists");
        let mut sim = Simulator::new(circuit);
        sim.set_input("d", d.clone())?;
        sim.set_input("en", en.clone())?;
        let run = sim.run(horizon)?;
        Ok(LatchRun {
            q: run.signal("q")?.clone(),
            overlap: run.node_signal(and_id).clone(),
            loop_signal: run.node_signal(or_id).clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivl_core::noise::{UniformNoise, WorstCaseAdversary, ZeroNoise};

    fn latch() -> OneShotLatch<ExpChannel> {
        OneShotLatch::dimensioned(
            ExpChannel::new(1.0, 0.5, 0.5).unwrap(),
            EtaBounds::new(0.02, 0.02).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn captures_one_when_data_covers_enable() {
        let l = latch();
        let d = Signal::pulse(0.0, 30.0).unwrap();
        let en = Signal::pulse(5.0, 10.0).unwrap();
        let run = l.capture(ZeroNoise, ZeroNoise, &d, &en, 300.0).unwrap();
        assert_eq!(run.overlap.len(), 2, "overlap = en window");
        assert_eq!(run.q.len(), 1, "{}", run.q);
        assert_eq!(run.q.final_value(), Bit::One);
        assert_eq!(run.loop_signal.final_value(), Bit::One);
    }

    #[test]
    fn captures_zero_when_data_low() {
        let l = latch();
        let d = Signal::zero();
        let en = Signal::pulse(5.0, 10.0).unwrap();
        let run = l.capture(ZeroNoise, ZeroNoise, &d, &en, 300.0).unwrap();
        assert!(run.overlap.is_zero());
        assert!(run.q.is_zero());
    }

    #[test]
    fn captures_zero_for_tiny_overlap() {
        let l = latch();
        let th = l.theory().unwrap();
        // data goes high just before enable falls: overlap ≪ filter bound
        let overlap = th.filter_bound * 0.3;
        let en = Signal::pulse(5.0, 10.0).unwrap();
        let d = Signal::pulse(15.0 - overlap, 20.0).unwrap();
        let run = l.capture(ZeroNoise, ZeroNoise, &d, &en, 300.0).unwrap();
        assert!(run.q.is_zero(), "{}", run.q);
    }

    #[test]
    fn output_is_always_clean_across_overlap_sweep() {
        // the faithful latch never glitches: q is constant 0 or a single
        // rising transition, for any overlap and any adversary
        let l = latch();
        let th = l.theory().unwrap();
        let en = Signal::pulse(5.0, 10.0).unwrap();
        for i in 0..30 {
            let overlap = 0.05 + (th.lock_bound * 1.3 - 0.05) * i as f64 / 29.0;
            let d = Signal::pulse(15.0 - overlap, overlap + 20.0).unwrap();
            for seed in [3u64, 19] {
                let run = l
                    .capture(
                        UniformNoise::new(seed),
                        UniformNoise::new(seed.wrapping_add(1)),
                        &d,
                        &en,
                        400.0,
                    )
                    .unwrap();
                assert!(
                    run.q.len() <= 1,
                    "overlap {overlap}, seed {seed}: q = {}",
                    run.q
                );
                if run.q.len() == 1 {
                    assert_eq!(run.q.final_value(), Bit::One);
                }
            }
        }
    }

    #[test]
    fn marginal_overlap_can_oscillate_before_resolving() {
        let l = latch();
        let th = l.theory().unwrap();
        // the AND→OR channel attenuates the overlap pulse; aim the
        // *loop-side* pulse near ∆̃₀ by probing a few source widths
        let en = Signal::pulse(5.0, 30.0).unwrap();
        let mut max_pulses = 0;
        for i in 0..60 {
            let overlap = th.delta0_tilde * (0.9 + 0.02 * i as f64);
            let d = Signal::pulse(35.0 - overlap, overlap + 20.0).unwrap();
            let run = l
                .capture(WorstCaseAdversary, WorstCaseAdversary, &d, &en, 400.0)
                .unwrap();
            let pulses = ivl_core::PulseStats::of(&run.loop_signal).pulse_count();
            max_pulses = max_pulses.max(pulses);
        }
        assert!(
            max_pulses >= 3,
            "some marginal overlap must produce a metastable train, got {max_pulses}"
        );
    }

    #[test]
    fn rejects_non_one_shot_enable() {
        let l = latch();
        let en = Signal::pulse_train([(0.0, 1.0), (5.0, 1.0)]).unwrap();
        let d = Signal::pulse(0.0, 10.0).unwrap();
        assert!(l.capture(ZeroNoise, ZeroNoise, &d, &en, 100.0).is_err());
        let en_high = Signal::constant(Bit::One);
        assert!(l
            .capture(ZeroNoise, ZeroNoise, &d, &en_high, 100.0)
            .is_err());
    }
}
