use std::fmt;

use ivl_circuit::{CircuitError, SimError};

/// Errors of the SPF theory and circuit layer.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// The η bounds violate constraint (C); the faithfulness results do
    /// not apply and the worst-case quantities are undefined.
    ConstraintCViolated {
        /// `η⁻` of the offending bounds.
        minus: f64,
        /// `η⁺` of the offending bounds.
        plus: f64,
        /// The slack `δ↓(−η⁺) − δ_min − (η⁺ + η⁻)` (negative here).
        slack: f64,
    },
    /// A fixed-point solver failed to bracket or converge.
    Solver {
        /// What was being solved.
        what: &'static str,
    },
    /// Propagated core error.
    Core(ivl_core::Error),
    /// Propagated circuit construction error.
    Circuit(CircuitError),
    /// Propagated simulation error.
    Sim(SimError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::ConstraintCViolated { minus, plus, slack } => write!(
                f,
                "eta bounds [-{minus}, {plus}] violate constraint (C) by {slack}"
            ),
            Error::Solver { what } => write!(f, "solver failed: {what}"),
            Error::Core(e) => write!(f, "{e}"),
            Error::Circuit(e) => write!(f, "{e}"),
            Error::Sim(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Core(e) => Some(e),
            Error::Circuit(e) => Some(e),
            Error::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ivl_core::Error> for Error {
    fn from(e: ivl_core::Error) -> Self {
        Error::Core(e)
    }
}

impl From<CircuitError> for Error {
    fn from(e: CircuitError) -> Self {
        Error::Circuit(e)
    }
}

impl From<SimError> for Error {
    fn from(e: SimError) -> Self {
        Error::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error as _;
        let e = Error::ConstraintCViolated {
            minus: 0.5,
            plus: 0.5,
            slack: -0.1,
        };
        assert!(e.to_string().contains("constraint (C)"));
        assert!(e.source().is_none());
        let e = Error::from(ivl_core::Error::SolverFailed { what: "x" });
        assert!(e.source().is_some());
        let e = Error::from(SimError::UnknownPort { name: "i".into() });
        assert!(!e.to_string().is_empty());
        let e = Error::from(CircuitError::UnknownNode { index: 0 });
        assert!(!e.to_string().is_empty());
        assert!(!Error::Solver { what: "tau" }.to_string().is_empty());
    }
}
